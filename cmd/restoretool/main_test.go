package main

import (
	"bytes"
	"context"
	"math/rand"
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"

	gpuckpt "github.com/gpuckpt/gpuckpt"
	"github.com/gpuckpt/gpuckpt/internal/server"
)

// buildLineage writes a 3-checkpoint Tree lineage and returns the
// stream file, the lineage dir, and the final golden state file.
func buildLineage(t *testing.T) (stream, dir, golden string) {
	t.Helper()
	base := t.TempDir()
	dir = filepath.Join(base, "lineage")
	rng := rand.New(rand.NewSource(51))
	buf := make([]byte, 8192)
	rng.Read(buf)

	ck, err := gpuckpt.New(gpuckpt.Config{
		Method: gpuckpt.MethodTree, ChunkSize: 64,
		Compression: "LZ4", PersistDir: dir,
	}, len(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer ck.Close()
	var streamBuf bytes.Buffer
	for i := 0; i < 3; i++ {
		if i > 0 {
			off := rng.Intn(len(buf) - 256)
			rng.Read(buf[off : off+256])
		}
		if _, err := ck.Checkpoint(buf); err != nil {
			t.Fatal(err)
		}
		if err := ck.WriteDiff(i, &streamBuf); err != nil {
			t.Fatal(err)
		}
	}
	stream = filepath.Join(base, "lineage.bin")
	if err := os.WriteFile(stream, streamBuf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	golden = filepath.Join(base, "golden.bin")
	if err := os.WriteFile(golden, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	return stream, dir, golden
}

func TestInfoFromStreamAndDir(t *testing.T) {
	stream, dir, _ := buildLineage(t)
	for _, args := range [][]string{
		{"-record", stream, "-info"},
		{"-dir", dir, "-info"},
	} {
		var out bytes.Buffer
		if err := run(args, &out); err != nil {
			t.Fatalf("%v: %v", args, err)
		}
		s := out.String()
		if !strings.Contains(s, "Tree") || !strings.Contains(s, "ckpt") {
			t.Fatalf("%v: info output wrong:\n%s", args, s)
		}
	}
}

func TestRestoreAndVerify(t *testing.T) {
	stream, dir, golden := buildLineage(t)
	outFile := filepath.Join(t.TempDir(), "state.bin")
	var out bytes.Buffer
	if err := run([]string{"-record", stream, "-restore", "2", "-o", outFile, "-verify", golden}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "verification OK") {
		t.Fatalf("verification not reported:\n%s", out.String())
	}
	want, _ := os.ReadFile(golden)
	got, err := os.ReadFile(outFile)
	if err != nil || !bytes.Equal(got, want) {
		t.Fatalf("written state wrong: %v", err)
	}
	// From the directory too, parallel restore.
	out.Reset()
	if err := run([]string{"-dir", dir, "-restore", "2", "-parallel", "4", "-verify", golden}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "verification OK") {
		t.Fatalf("dir verification failed:\n%s", out.String())
	}
}

func TestVerifyMismatchFails(t *testing.T) {
	stream, _, golden := buildLineage(t)
	var out bytes.Buffer
	// Checkpoint 0 differs from the final golden state.
	if err := run([]string{"-record", stream, "-restore", "0", "-verify", golden}, &out); err == nil {
		t.Fatal("mismatched verification succeeded")
	}
}

func TestRestoretoolErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{}, &out); err == nil {
		t.Fatal("no source accepted")
	}
	stream, dir, _ := buildLineage(t)
	if err := run([]string{"-record", stream, "-dir", dir}, &out); err == nil {
		t.Fatal("both sources accepted")
	}
	if err := run([]string{"-record", stream}, &out); err == nil {
		t.Fatal("no action accepted")
	}
	if err := run([]string{"-record", stream, "-restore", "99"}, &out); err == nil {
		t.Fatal("out-of-range restore accepted")
	}
	if err := run([]string{"-dir", t.TempDir(), "-info"}, &out); err == nil {
		t.Fatal("empty dir accepted")
	}
}

// startCkptd serves a ckptd server over root on an ephemeral port.
func startCkptd(t *testing.T, root string) (string, func()) {
	t.Helper()
	srv, err := server.New(server.Config{Root: root, Logf: func(string, ...any) {}})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ctx, ln) }()
	return ln.Addr().String(), func() {
		cancel()
		if err := <-done; err != nil {
			t.Errorf("Serve: %v", err)
		}
	}
}

func TestRemoteRestore(t *testing.T) {
	_, dir, golden := buildLineage(t)
	// Serve the lineage's parent directory: the lineage dir name
	// becomes the lineage name.
	addr, stop := startCkptd(t, filepath.Dir(dir))
	defer stop()

	var out bytes.Buffer
	if err := run([]string{"-remote", addr, "-lineage", "lineage", "-info",
		"-restore", "2", "-verify", golden}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "pulled lineage") || !strings.Contains(s, "Tree") ||
		!strings.Contains(s, "verification OK") {
		t.Fatalf("remote restore output wrong:\n%s", s)
	}
}

func TestRemoteFlagValidation(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-remote", "127.0.0.1:1", "-info"}, &out); err == nil {
		t.Fatal("-remote without -lineage accepted")
	}
	if err := run([]string{"-lineage", "x", "-info"}, &out); err == nil {
		t.Fatal("-lineage without -remote accepted")
	}
	stream, _, _ := buildLineage(t)
	if err := run([]string{"-record", stream, "-remote", "a", "-lineage", "x"}, &out); err == nil {
		t.Fatal("two sources accepted")
	}
	if err := run([]string{"-remote", "127.0.0.1:1", "-lineage", "missing", "-timeout", "2s", "-info"}, &out); err == nil {
		t.Fatal("unreachable server accepted")
	}
}
