package main

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	gpuckpt "github.com/gpuckpt/gpuckpt"
)

// buildLineage writes a 3-checkpoint Tree lineage and returns the
// stream file, the lineage dir, and the final golden state file.
func buildLineage(t *testing.T) (stream, dir, golden string) {
	t.Helper()
	base := t.TempDir()
	dir = filepath.Join(base, "lineage")
	rng := rand.New(rand.NewSource(51))
	buf := make([]byte, 8192)
	rng.Read(buf)

	ck, err := gpuckpt.New(gpuckpt.Config{
		Method: gpuckpt.MethodTree, ChunkSize: 64,
		Compression: "LZ4", PersistDir: dir,
	}, len(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer ck.Close()
	var streamBuf bytes.Buffer
	for i := 0; i < 3; i++ {
		if i > 0 {
			off := rng.Intn(len(buf) - 256)
			rng.Read(buf[off : off+256])
		}
		if _, err := ck.Checkpoint(buf); err != nil {
			t.Fatal(err)
		}
		if err := ck.WriteDiff(i, &streamBuf); err != nil {
			t.Fatal(err)
		}
	}
	stream = filepath.Join(base, "lineage.bin")
	if err := os.WriteFile(stream, streamBuf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	golden = filepath.Join(base, "golden.bin")
	if err := os.WriteFile(golden, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	return stream, dir, golden
}

func TestInfoFromStreamAndDir(t *testing.T) {
	stream, dir, _ := buildLineage(t)
	for _, args := range [][]string{
		{"-record", stream, "-info"},
		{"-dir", dir, "-info"},
	} {
		var out bytes.Buffer
		if err := run(args, &out); err != nil {
			t.Fatalf("%v: %v", args, err)
		}
		s := out.String()
		if !strings.Contains(s, "Tree") || !strings.Contains(s, "ckpt") {
			t.Fatalf("%v: info output wrong:\n%s", args, s)
		}
	}
}

func TestRestoreAndVerify(t *testing.T) {
	stream, dir, golden := buildLineage(t)
	outFile := filepath.Join(t.TempDir(), "state.bin")
	var out bytes.Buffer
	if err := run([]string{"-record", stream, "-restore", "2", "-o", outFile, "-verify", golden}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "verification OK") {
		t.Fatalf("verification not reported:\n%s", out.String())
	}
	want, _ := os.ReadFile(golden)
	got, err := os.ReadFile(outFile)
	if err != nil || !bytes.Equal(got, want) {
		t.Fatalf("written state wrong: %v", err)
	}
	// From the directory too, parallel restore.
	out.Reset()
	if err := run([]string{"-dir", dir, "-restore", "2", "-parallel", "4", "-verify", golden}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "verification OK") {
		t.Fatalf("dir verification failed:\n%s", out.String())
	}
}

func TestVerifyMismatchFails(t *testing.T) {
	stream, _, golden := buildLineage(t)
	var out bytes.Buffer
	// Checkpoint 0 differs from the final golden state.
	if err := run([]string{"-record", stream, "-restore", "0", "-verify", golden}, &out); err == nil {
		t.Fatal("mismatched verification succeeded")
	}
}

func TestRestoretoolErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{}, &out); err == nil {
		t.Fatal("no source accepted")
	}
	stream, dir, _ := buildLineage(t)
	if err := run([]string{"-record", stream, "-dir", dir}, &out); err == nil {
		t.Fatal("both sources accepted")
	}
	if err := run([]string{"-record", stream}, &out); err == nil {
		t.Fatal("no action accepted")
	}
	if err := run([]string{"-record", stream, "-restore", "99"}, &out); err == nil {
		t.Fatal("out-of-range restore accepted")
	}
	if err := run([]string{"-dir", t.TempDir(), "-info"}, &out); err == nil {
		t.Fatal("empty dir accepted")
	}
}
