// Command restoretool inspects and restores checkpoint records stored
// in the canonical diff wire format (a concatenation of encoded
// diffs, as written by Checkpointer.WriteDiff).
//
// Usage:
//
//	restoretool -record lineage.bin -info
//	restoretool -dir lineage/ -info                  # PersistDir layout
//	restoretool -record lineage.bin -restore 3 -o state.bin
//	restoretool -dir lineage/ -restore 3 -verify golden.bin
//	restoretool -remote host:9090 -lineage proc-00 -restore 3
//
// With -remote, the record is pulled over the network from a ckptd
// checkpoint server (cmd/ckptd) instead of read from local files.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	gpuckpt "github.com/gpuckpt/gpuckpt"
	"github.com/gpuckpt/gpuckpt/internal/checkpoint"
	"github.com/gpuckpt/gpuckpt/internal/compress"
	"github.com/gpuckpt/gpuckpt/internal/metrics"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "restoretool:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("restoretool", flag.ContinueOnError)
	var (
		recordPath = fs.String("record", "", "checkpoint record file (single stream)")
		dirPath    = fs.String("dir", "", "checkpoint lineage directory (PersistDir layout)")
		remote     = fs.String("remote", "", "ckptd server address (host:port) to pull the lineage from")
		lineage    = fs.String("lineage", "", "lineage name on the remote server (with -remote)")
		timeout    = fs.Duration("timeout", 30*time.Second, "network timeout for -remote operations")
		info       = fs.Bool("info", false, "print per-checkpoint record info")
		restore    = fs.Int("restore", -1, "restore this checkpoint id")
		parallel   = fs.Int("parallel", 0, "restore workers (0 = GOMAXPROCS)")
		out        = fs.String("o", "", "write the restored buffer to this file")
		verify     = fs.String("verify", "", "compare the restored buffer with this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	sources := 0
	for _, set := range []bool{*recordPath != "", *dirPath != "", *remote != ""} {
		if set {
			sources++
		}
	}
	if sources != 1 {
		return fmt.Errorf("pass exactly one of -record, -dir or -remote")
	}
	if (*remote != "") != (*lineage != "") {
		return fmt.Errorf("-remote and -lineage go together")
	}

	// Collect the raw diff stream for the -info report.
	var raw []byte
	switch {
	case *recordPath != "":
		var err error
		raw, err = os.ReadFile(*recordPath)
		if err != nil {
			return err
		}
	case *remote != "":
		cl, err := gpuckpt.Dial(*remote, *timeout)
		if err != nil {
			return err
		}
		defer cl.Close()
		n, err := cl.Len(*lineage)
		if err != nil {
			return err
		}
		if n == 0 {
			return fmt.Errorf("lineage %q on %s is empty", *lineage, *remote)
		}
		for ck := 0; ck < n; ck++ {
			b, err := cl.PullDiff(*lineage, ck)
			if err != nil {
				return err
			}
			raw = append(raw, b...)
		}
		fmt.Fprintf(stdout, "pulled lineage %q (%d checkpoints, %s) from %s\n",
			*lineage, n, metrics.Bytes(int64(len(raw))), *remote)
	default:
		store, err := checkpoint.NewFileStore(*dirPath)
		if err != nil {
			return err
		}
		files, err := store.Files()
		if err != nil {
			return err
		}
		if len(files) == 0 {
			return fmt.Errorf("lineage directory %s is empty", *dirPath)
		}
		for _, f := range files {
			b, err := os.ReadFile(f)
			if err != nil {
				return err
			}
			raw = append(raw, b...)
		}
	}

	if *info {
		t := metrics.NewTable("checkpoint record", "ckpt", "method", "stored", "metadata", "data", "codec", "regions")
		r := bytes.NewReader(raw)
		for {
			d, err := checkpoint.Decode(r)
			if err != nil {
				break
			}
			codec := "-"
			if d.DataCodec != 0 {
				if c, err := compress.ByID(d.DataCodec); err == nil {
					codec = c.Name()
				}
			}
			t.Add(
				fmt.Sprintf("%d", d.CkptID),
				d.Method.String(),
				metrics.Bytes(d.TotalBytes()),
				metrics.Bytes(d.MetadataBytes()),
				metrics.Bytes(int64(len(d.Data))),
				codec,
				fmt.Sprintf("%d+%d", len(d.FirstOcur), len(d.ShiftDupl)),
			)
		}
		if err := t.Render(stdout); err != nil {
			return err
		}
	}

	if *restore < 0 {
		if !*info {
			return fmt.Errorf("nothing to do: pass -info or -restore")
		}
		return nil
	}

	rec, err := gpuckpt.ReadRecord(bytes.NewReader(raw))
	if err != nil {
		return err
	}
	rec.Parallel(*parallel)
	state, err := rec.Restore(*restore)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "restored checkpoint %d: %s\n", *restore, metrics.Bytes(int64(len(state))))

	if *out != "" {
		if err := os.WriteFile(*out, state, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote %s\n", *out)
	}
	if *verify != "" {
		golden, err := os.ReadFile(*verify)
		if err != nil {
			return err
		}
		if !bytes.Equal(state, golden) {
			return fmt.Errorf("verification FAILED: restored state differs from %s", *verify)
		}
		fmt.Fprintln(stdout, "verification OK: restored state is bit-exact")
	}
	return nil
}
