// Command restoretool inspects, restores, and compacts checkpoint
// records stored in the canonical diff wire format (a concatenation of
// encoded diffs, as written by Checkpointer.WriteDiff).
//
// Usage:
//
//	restoretool -record lineage.bin -info
//	restoretool -dir lineage/ -info                  # PersistDir layout
//	restoretool -record lineage.bin -restore 3 -o state.bin
//	restoretool -dir lineage/ -restore 3 -verify golden.bin
//	restoretool -dir lineage/ -compact keep-last=8
//	restoretool -remote host:9090 -lineage proc-00 -restore 3
//	restoretool -remote host:9090 -lineage proc-00 -compact keep-last=8
//
// With -remote, the record is pulled over the network from a ckptd
// checkpoint server (cmd/ckptd) instead of read from local files, and
// -compact runs as a server-side transaction.
//
// A compacted lineage keeps its original absolute checkpoint indices:
// after compacting to baseline 8, -restore 8 and up keep working and
// restore the same bytes as before, while earlier indices are gone.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	gpuckpt "github.com/gpuckpt/gpuckpt"
	"github.com/gpuckpt/gpuckpt/internal/checkpoint"
	"github.com/gpuckpt/gpuckpt/internal/compress"
	"github.com/gpuckpt/gpuckpt/internal/metrics"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "restoretool:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("restoretool", flag.ContinueOnError)
	var (
		recordPath = fs.String("record", "", "checkpoint record file (single stream)")
		dirPath    = fs.String("dir", "", "checkpoint lineage directory (PersistDir layout)")
		remote     = fs.String("remote", "", "ckptd server address (host:port) to pull the lineage from")
		lineage    = fs.String("lineage", "", "lineage name on the remote server (with -remote)")
		timeout    = fs.Duration("timeout", 30*time.Second, "network timeout for -remote operations")
		info       = fs.Bool("info", false, "print per-checkpoint record info")
		restore    = fs.Int("restore", -1, "restore this checkpoint id")
		parallel   = fs.Int("parallel", 0, "restore workers (0 = GOMAXPROCS)")
		compact    = fs.String("compact", "", "compact the lineage under this retention policy (keep-all, keep-last=N, keep-every=K) before other actions")
		out        = fs.String("o", "", "write the restored buffer to this file")
		verify     = fs.String("verify", "", "compare the restored buffer with this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	sources := 0
	for _, set := range []bool{*recordPath != "", *dirPath != "", *remote != ""} {
		if set {
			sources++
		}
	}
	if sources != 1 {
		return fmt.Errorf("pass exactly one of -record, -dir or -remote")
	}
	if (*remote != "") != (*lineage != "") {
		return fmt.Errorf("-remote and -lineage go together")
	}
	if *compact != "" && *recordPath != "" {
		return fmt.Errorf("-compact needs a lineage (-dir or -remote), not a flat -record stream")
	}

	var cl *gpuckpt.Client
	if *remote != "" {
		var err error
		cl, err = gpuckpt.Dial(*remote, *timeout)
		if err != nil {
			return err
		}
		defer cl.Close()
	}

	// Compaction runs first so -info and -restore report the state the
	// tool leaves behind.
	if *compact != "" {
		var (
			oldBase, newBase, pruned, rewritten int
			freed                               int64
		)
		if cl != nil {
			if err := cl.SetRetention(*lineage, *compact); err != nil {
				return err
			}
			ci, err := cl.Compact(*lineage)
			if err != nil {
				return err
			}
			oldBase, newBase, pruned, rewritten, freed = ci.OldBase, ci.NewBase, ci.Pruned, ci.Rewritten, ci.FreedBytes
		} else {
			cs, err := gpuckpt.CompactDir(*dirPath, *compact, *parallel)
			if err != nil {
				return err
			}
			oldBase, newBase, pruned, rewritten, freed = cs.OldBase, cs.NewBase, cs.PrunedDiffs, cs.RewrittenDiffs, cs.FreedBytes
		}
		if newBase == oldBase {
			fmt.Fprintf(stdout, "compaction (%s): nothing to fold, baseline stays %d\n", *compact, oldBase)
		} else {
			fmt.Fprintf(stdout, "compacted (%s): baseline %d -> %d, pruned %d diffs, rewrote %d, freed %s\n",
				*compact, oldBase, newBase, pruned, rewritten, metrics.Bytes(freed))
		}
	}

	// Collect the raw diff stream for the -info report. Ids in the
	// stream are absolute: a compacted lineage starts at its baseline.
	var raw []byte
	switch {
	case *recordPath != "":
		var err error
		raw, err = os.ReadFile(*recordPath)
		if err != nil {
			return err
		}
	case cl != nil:
		base, n, err := cl.Span(*lineage)
		if err != nil {
			return err
		}
		if n == base {
			return fmt.Errorf("lineage %q on %s is empty", *lineage, *remote)
		}
		for ck := base; ck < n; ck++ {
			b, err := cl.PullDiff(*lineage, ck)
			if err != nil {
				return err
			}
			raw = append(raw, b...)
		}
		fmt.Fprintf(stdout, "pulled lineage %q (checkpoints [%d,%d), %s) from %s\n",
			*lineage, base, n, metrics.Bytes(int64(len(raw))), *remote)
	default:
		store, err := checkpoint.NewFileStore(*dirPath)
		if err != nil {
			return err
		}
		defer store.Close()
		n, err := store.Len()
		if err != nil {
			return err
		}
		if n == store.Base() {
			return fmt.Errorf("lineage directory %s is empty", *dirPath)
		}
		// DiffBytes verifies and strips each file's integrity footer
		// and reassembles block-mapped containers from the shared
		// block store, so raw is always the canonical diff stream.
		for ck := store.Base(); ck < n; ck++ {
			b, err := store.DiffBytes(ck)
			if err != nil {
				return err
			}
			raw = append(raw, b...)
		}
		if man := store.Manifest(); man.Base > 0 || len(man.Pins) > 0 {
			fmt.Fprintf(stdout, "manifest: baseline %d, generation %d, pins %v\n",
				man.Base, man.Generation, man.Pins)
		}
	}

	if *info {
		t := metrics.NewTable("checkpoint record", "ckpt", "method", "stored", "metadata", "data", "codec", "regions")
		r := bytes.NewReader(raw)
		for {
			d, err := checkpoint.Decode(r)
			if err != nil {
				break
			}
			codec := "-"
			if d.DataCodec != 0 {
				if c, err := compress.ByID(d.DataCodec); err == nil {
					codec = c.Name()
				}
			}
			t.Add(
				fmt.Sprintf("%d", d.CkptID),
				d.Method.String(),
				metrics.Bytes(d.TotalBytes()),
				metrics.Bytes(d.MetadataBytes()),
				metrics.Bytes(int64(len(d.Data))),
				codec,
				fmt.Sprintf("%d+%d", len(d.FirstOcur), len(d.ShiftDupl)),
			)
		}
		if err := t.Render(stdout); err != nil {
			return err
		}
	}

	if *restore < 0 {
		if !*info && *compact == "" {
			return fmt.Errorf("nothing to do: pass -info, -restore or -compact")
		}
		return nil
	}

	// Restore goes through the base-aware loaders, not the raw stream:
	// a compacted lineage's diffs carry absolute ids that only the
	// store/client know how to rebase.
	var (
		rec *gpuckpt.Record
		err error
	)
	switch {
	case *recordPath != "":
		rec, err = gpuckpt.ReadRecord(bytes.NewReader(raw))
	case cl != nil:
		rec, err = cl.Pull(*lineage)
	default:
		rec, err = gpuckpt.ReadRecordDir(*dirPath)
	}
	if err != nil {
		return err
	}
	rec.Parallel(*parallel)
	state, err := rec.Restore(*restore)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "restored checkpoint %d: %s\n", *restore, metrics.Bytes(int64(len(state))))

	if *out != "" {
		if err := os.WriteFile(*out, state, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote %s\n", *out)
	}
	if *verify != "" {
		golden, err := os.ReadFile(*verify)
		if err != nil {
			return err
		}
		if !bytes.Equal(state, golden) {
			return fmt.Errorf("verification FAILED: restored state differs from %s", *verify)
		}
		fmt.Fprintln(stdout, "verification OK: restored state is bit-exact")
	}
	return nil
}
