// Command ckptlint runs the project's static-analysis suite over the
// module rooted at the given directory (default ".").
//
// Each finding is printed as "file:line: [check] message" and the exit
// status is nonzero when any check fires, so `go run ./cmd/ckptlint`
// slots directly into `make ci`. Individual lines can be waived with a
// `//ckptlint:ignore <check> <reason>` comment on or directly above the
// offending line; see internal/lint for the check catalogue.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"github.com/gpuckpt/gpuckpt/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ckptlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	only := fs.String("checks", "", "comma-separated subset of checks to run (default: all)")
	list := fs.Bool("list", false, "list available checks and exit")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: ckptlint [flags] [dir]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	checks := lint.Checks()
	if *list {
		for _, c := range checks {
			fmt.Fprintf(stdout, "%-14s %s\n", c.Name(), c.Doc())
		}
		return 0
	}
	if *only != "" {
		want := map[string]bool{}
		for _, name := range strings.Split(*only, ",") {
			want[strings.TrimSpace(name)] = true
		}
		var kept []lint.Check
		for _, c := range checks {
			if want[c.Name()] {
				kept = append(kept, c)
				delete(want, c.Name())
			}
		}
		for name := range want {
			fmt.Fprintf(stderr, "ckptlint: unknown check %q\n", name)
			return 2
		}
		checks = kept
	}

	root := "."
	if fs.NArg() > 0 {
		root = fs.Arg(0)
	}
	diags, err := lint.Run(root, checks)
	if err != nil {
		fmt.Fprintf(stderr, "ckptlint: %v\n", err)
		return 2
	}
	for _, d := range diags {
		fmt.Fprintln(stdout, d.String())
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "ckptlint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}
