// Command ckptlint runs the project's static-analysis suite over the
// module rooted at the given directory (default "."; a go-style
// "./..." spelling is accepted and means the same tree walk).
//
// Each finding is printed as "file:line: [check] message" and the exit
// status is nonzero when any check fires, so `go run ./cmd/ckptlint`
// slots directly into `make ci`. With -json every finding is emitted
// as one JSON object per line — {"file","line","check","msg","waived"}
// — including waived ones, so editors and CI can consume the results;
// -summary appends a totals line in either mode. Individual lines can
// be waived with a `//ckptlint:ignore <check> <reason>` comment on or
// directly above the offending line; see internal/lint for the check
// catalogue.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"github.com/gpuckpt/gpuckpt/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// finding is the machine-readable rendering of one diagnostic.
type finding struct {
	File   string `json:"file"`
	Line   int    `json:"line"`
	Check  string `json:"check"`
	Msg    string `json:"msg"`
	Waived bool   `json:"waived"`
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ckptlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	only := fs.String("checks", "", "comma-separated subset of checks to run (default: all)")
	list := fs.Bool("list", false, "list available checks and exit")
	asJSON := fs.Bool("json", false, "emit one JSON object per finding (including waived ones)")
	summary := fs.Bool("summary", false, "append a totals line")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: ckptlint [flags] [dir]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	checks := lint.Checks()
	if *list {
		for _, c := range checks {
			fmt.Fprintf(stdout, "%-14s %s\n", c.Name(), c.Doc())
		}
		return 0
	}
	if *only != "" {
		want := map[string]bool{}
		for _, name := range strings.Split(*only, ",") {
			want[strings.TrimSpace(name)] = true
		}
		var kept []lint.Check
		for _, c := range checks {
			if want[c.Name()] {
				kept = append(kept, c)
				delete(want, c.Name())
			}
		}
		for name := range want {
			fmt.Fprintf(stderr, "ckptlint: unknown check %q\n", name)
			return 2
		}
		checks = kept
	}

	root := "."
	if fs.NArg() > 0 {
		root = fs.Arg(0)
	}
	// Accept the go-tool spelling "dir/..." — the walk is always
	// recursive, so it names the same tree.
	if root == "..." {
		root = "."
	} else if strings.HasSuffix(root, "/...") {
		root = strings.TrimSuffix(root, "/...")
	}

	all, err := lint.RunAll(root, checks)
	if err != nil {
		fmt.Fprintf(stderr, "ckptlint: %v\n", err)
		return 2
	}
	findings, waived := 0, 0
	enc := json.NewEncoder(stdout)
	for _, d := range all {
		if d.Waived {
			waived++
		} else {
			findings++
		}
		if *asJSON {
			enc.Encode(finding{
				File:   d.Pos.Filename,
				Line:   d.Pos.Line,
				Check:  d.Check,
				Msg:    d.Message,
				Waived: d.Waived,
			})
		} else if !d.Waived {
			fmt.Fprintln(stdout, d.String())
		}
	}
	if *summary {
		if *asJSON {
			enc.Encode(map[string]int{"findings": findings, "waived": waived})
		} else {
			fmt.Fprintf(stdout, "ckptlint: %d finding(s), %d waived\n", findings, waived)
		}
	}
	if findings > 0 {
		fmt.Fprintf(stderr, "ckptlint: %d finding(s)\n", findings)
		return 1
	}
	return 0
}
