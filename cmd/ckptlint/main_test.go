package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeModule lays out a one-file module under dir.
func writeModule(t *testing.T, dir, src string) {
	t.Helper()
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module example.com/m\n\ngo 1.22\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "main.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestRunCleanModule(t *testing.T) {
	dir := t.TempDir()
	writeModule(t, dir, "package m\n\nfunc ok() int { return 1 }\n")
	var out, errOut strings.Builder
	if code := run([]string{dir}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d on clean module; stdout=%q stderr=%q", code, out.String(), errOut.String())
	}
	if out.Len() != 0 {
		t.Fatalf("unexpected output: %q", out.String())
	}
}

func TestRunReportsFindings(t *testing.T) {
	dir := t.TempDir()
	writeModule(t, dir, `package m

import "fmt"

//ckptlint:noalloc
func hot() string { return fmt.Sprintf("%d", 1) }
`)
	var out, errOut strings.Builder
	if code := run([]string{dir}, &out, &errOut); code != 1 {
		t.Fatalf("exit %d, want 1; stderr=%q", code, errOut.String())
	}
	if !strings.Contains(out.String(), "[noalloc]") || !strings.Contains(out.String(), "main.go:6:") {
		t.Fatalf("diagnostic not in expected format: %q", out.String())
	}
}

func TestRunChecksSubset(t *testing.T) {
	dir := t.TempDir()
	writeModule(t, dir, `package m

import "fmt"

//ckptlint:noalloc
func hot() string { return fmt.Sprintf("%d", 1) }
`)
	var out, errOut strings.Builder
	if code := run([]string{"-checks", "wireerr", dir}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d with noalloc disabled; stdout=%q", code, out.String())
	}
	if code := run([]string{"-checks", "nosuch", dir}, &out, &errOut); code != 2 {
		t.Fatalf("exit %d for unknown check, want 2", code)
	}
}

func TestRunList(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d", code)
	}
	for _, name := range []string{
		"noalloc", "clockguard", "closecontract", "wireerr", "nowallclock",
		"retryable", "bufreuse", "guardedby", "lockorder", "goroleak",
	} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing %s", name)
		}
	}
	if n := strings.Count(strings.TrimRight(out.String(), "\n"), "\n") + 1; n != 10 {
		t.Errorf("-list printed %d checks, want 10:\n%s", n, out.String())
	}
}

// fixture returns one golden lint fixture package; those trees
// deliberately contain findings, so they exercise the nonzero exit
// path and the output formats without touching the real sources.
func fixture(name string) string {
	return filepath.Join("..", "..", "internal", "lint", "testdata", "src", name)
}

func TestRunJSONFindings(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run([]string{"-json", "-summary", fixture("goroleak")}, &out, &errOut)
	if code != 1 {
		t.Fatalf("exit %d over bad fixture, want 1 (stderr %q)", code, errOut.String())
	}
	var findings []finding
	var summary map[string]int
	sc := bufio.NewScanner(&out)
	for sc.Scan() {
		line := sc.Bytes()
		var f finding
		if err := json.Unmarshal(line, &f); err == nil && f.Check != "" {
			findings = append(findings, f)
			continue
		}
		if err := json.Unmarshal(line, &summary); err != nil {
			t.Fatalf("line is neither finding nor summary: %s", line)
		}
	}
	if len(findings) == 0 {
		t.Fatal("no JSON findings over the goroleak fixture")
	}
	unwaived := 0
	for _, f := range findings {
		if f.Check != "goroleak" {
			t.Errorf("unexpected check %q in goroleak fixture: %+v", f.Check, f)
		}
		if f.File == "" || f.Line == 0 || f.Msg == "" {
			t.Errorf("incomplete finding: %+v", f)
		}
		if !f.Waived {
			unwaived++
		}
	}
	if summary == nil {
		t.Fatal("-summary totals line missing from -json output")
	}
	if summary["findings"] != unwaived {
		t.Errorf("summary findings = %d, want %d", summary["findings"], unwaived)
	}
}

func TestRunDotDotDotSpelling(t *testing.T) {
	var out, errOut bytes.Buffer
	// The go-style "dir/..." spelling must mean the same tree walk.
	code := run([]string{"-summary", fixture("lockorder") + "/..."}, &out, &errOut)
	if code != 1 {
		t.Fatalf("exit %d, want 1 (stderr %q)", code, errOut.String())
	}
	text := out.String()
	if !strings.Contains(text, "[lockorder]") {
		t.Errorf("human output missing [lockorder] tag:\n%s", text)
	}
	if !strings.Contains(text, "waived") {
		t.Errorf("human -summary totals line missing:\n%s", text)
	}
}
