package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeModule lays out a one-file module under dir.
func writeModule(t *testing.T, dir, src string) {
	t.Helper()
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module example.com/m\n\ngo 1.22\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "main.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestRunCleanModule(t *testing.T) {
	dir := t.TempDir()
	writeModule(t, dir, "package m\n\nfunc ok() int { return 1 }\n")
	var out, errOut strings.Builder
	if code := run([]string{dir}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d on clean module; stdout=%q stderr=%q", code, out.String(), errOut.String())
	}
	if out.Len() != 0 {
		t.Fatalf("unexpected output: %q", out.String())
	}
}

func TestRunReportsFindings(t *testing.T) {
	dir := t.TempDir()
	writeModule(t, dir, `package m

import "fmt"

//ckptlint:noalloc
func hot() string { return fmt.Sprintf("%d", 1) }
`)
	var out, errOut strings.Builder
	if code := run([]string{dir}, &out, &errOut); code != 1 {
		t.Fatalf("exit %d, want 1; stderr=%q", code, errOut.String())
	}
	if !strings.Contains(out.String(), "[noalloc]") || !strings.Contains(out.String(), "main.go:6:") {
		t.Fatalf("diagnostic not in expected format: %q", out.String())
	}
}

func TestRunChecksSubset(t *testing.T) {
	dir := t.TempDir()
	writeModule(t, dir, `package m

import "fmt"

//ckptlint:noalloc
func hot() string { return fmt.Sprintf("%d", 1) }
`)
	var out, errOut strings.Builder
	if code := run([]string{"-checks", "wireerr", dir}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d with noalloc disabled; stdout=%q", code, out.String())
	}
	if code := run([]string{"-checks", "nosuch", dir}, &out, &errOut); code != 2 {
		t.Fatalf("exit %d for unknown check, want 2", code)
	}
}

func TestRunList(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d", code)
	}
	for _, name := range []string{"noalloc", "clockguard", "closecontract", "wireerr", "nowallclock"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing %s", name)
		}
	}
}
