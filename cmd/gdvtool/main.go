// Command gdvtool runs the ORANGES driver application standalone:
// it computes graphlet degree vectors over a synthetic or user-supplied
// (Matrix Market) graph and reports orbit statistics, optionally
// dumping the raw GDV image that the checkpointing experiments
// de-duplicate.
//
// Usage:
//
//	gdvtool -graph "Hugebubbles" -vertices 10000 -maxk 4
//	gdvtool -mtx input.mtx -maxk 5 -dump gdv.bin
//	gdvtool -mtx a.mtx -compare b.mtx        # GDV graph matching
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/gpuckpt/gpuckpt/internal/graph"
	"github.com/gpuckpt/gpuckpt/internal/metrics"
	"github.com/gpuckpt/gpuckpt/internal/oranges"
	"github.com/gpuckpt/gpuckpt/internal/parallel"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "gdvtool:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("gdvtool", flag.ContinueOnError)
	var (
		name     = fs.String("graph", "Message Race", "Table 1 graph name (ignored with -mtx)")
		vertices = fs.Int("vertices", 10000, "target vertex count for synthetic graphs")
		seed     = fs.Int64("seed", 42, "generator seed")
		mtx      = fs.String("mtx", "", "read this Matrix Market file instead of generating")
		maxK     = fs.Int("maxk", 4, "largest graphlet size (2-5)")
		workers  = fs.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS)")
		dump     = fs.String("dump", "", "write the raw little-endian GDV image to this file")
		top      = fs.Int("top", 10, "print the top-N most populated orbits")
		compare  = fs.String("compare", "", "Matrix Market file to compare against (GDV graph matching)")
		orbits   = fs.Bool("orbits", false, "print the graphlet/orbit reference tables and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *orbits {
		return printOrbits(stdout)
	}

	var g *graph.Graph
	var err error
	if *mtx != "" {
		f, err2 := os.Open(*mtx)
		if err2 != nil {
			return err2
		}
		defer f.Close()
		g, err = graph.ReadMatrixMarket(f, *mtx)
	} else {
		var entry graph.CatalogEntry
		entry, err = graph.CatalogByName(*name)
		if err == nil {
			g, err = entry.Generate(*vertices, *seed)
		}
	}
	if err != nil {
		return err
	}

	runner, err := oranges.NewRunner(g, parallel.NewPool(*workers), *maxK)
	if err != nil {
		return err
	}
	if err := runner.ProcessRange(0, g.NumVertices()); err != nil {
		return err
	}
	gdv := runner.GDV()

	fmt.Fprintf(stdout, "graph %s: %d vertices, %d edges; enumerated %d subgraphs (size <= %d)\n",
		g.Name(), g.NumVertices(), g.NumEdges()/2, runner.SubgraphCount(), *maxK)
	fmt.Fprintf(stdout, "GDV: %d x %d counters = %s\n",
		g.NumVertices(), oranges.NumOrbits, metrics.Bytes(int64(gdv.SizeBytes())))

	// Orbit population census.
	totals := make([]uint64, oranges.NumOrbits)
	populated := 0
	for v := int32(0); int(v) < g.NumVertices(); v++ {
		for o := 0; o < oranges.NumOrbits; o++ {
			totals[o] += uint64(gdv.Count(v, o))
		}
	}
	for _, tot := range totals {
		if tot > 0 {
			populated++
		}
	}
	fmt.Fprintf(stdout, "populated orbits: %d of %d (sparse graphs populate few, §3.2)\n", populated, oranges.NumOrbits)

	type oc struct {
		orbit int
		total uint64
	}
	ranked := make([]oc, 0, oranges.NumOrbits)
	for o, tot := range totals {
		ranked = append(ranked, oc{o, tot})
	}
	for i := 0; i < len(ranked); i++ {
		for j := i + 1; j < len(ranked); j++ {
			if ranked[j].total > ranked[i].total {
				ranked[i], ranked[j] = ranked[j], ranked[i]
			}
		}
	}
	t := metrics.NewTable("top orbits", "orbit", "total count")
	for i := 0; i < *top && i < len(ranked) && ranked[i].total > 0; i++ {
		t.Add(fmt.Sprintf("%d", ranked[i].orbit), fmt.Sprintf("%d", ranked[i].total))
	}
	if err := t.Render(stdout); err != nil {
		return err
	}

	if *dump != "" {
		if err := os.WriteFile(*dump, gdv.Serialize(), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote %s\n", *dump)
	}

	if *compare != "" {
		f, err := os.Open(*compare)
		if err != nil {
			return err
		}
		other, err := graph.ReadMatrixMarket(f, *compare)
		f.Close()
		if err != nil {
			return err
		}
		runner2, err := oranges.NewRunner(other, parallel.NewPool(*workers), *maxK)
		if err != nil {
			return err
		}
		if err := runner2.ProcessRange(0, other.NumVertices()); err != nil {
			return err
		}
		score, err := oranges.GraphSimilarity(gdv, runner2.GDV())
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "GDV graph similarity vs %s: %.4f (1.0 = matching signatures)\n", *compare, score)
	}
	return nil
}

// printOrbits renders the 30 graphlet classes and 73 orbits this
// package enumerates — the reference for interpreting GDV columns.
func printOrbits(stdout io.Writer) error {
	t := metrics.NewTable(
		fmt.Sprintf("%d graphlets, %d orbits (ordering: size, edges, canonical mask; a deterministic relabeling of the Pržulj numbering)",
			oranges.NumGraphlets, oranges.NumOrbits),
		"graphlet", "size", "edges", "canonical mask", "orbits", "orbit of position")
	for _, cls := range oranges.DefaultTables().Classes {
		t.Add(
			fmt.Sprintf("G%d", cls.ID),
			fmt.Sprintf("%d", cls.Size),
			fmt.Sprintf("%d", cls.Edges),
			fmt.Sprintf("%0*b", cls.Size*(cls.Size-1)/2, cls.CanonicalMask),
			fmt.Sprintf("%d", cls.NumOrbits),
			fmt.Sprint(cls.OrbitOfPosition),
		)
	}
	return t.Render(stdout)
}
