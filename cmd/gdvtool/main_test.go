package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/gpuckpt/gpuckpt/internal/graph"
	"github.com/gpuckpt/gpuckpt/internal/oranges"
)

func TestSyntheticRun(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-graph", "Message Race", "-vertices", "800", "-maxk", "3"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "populated orbits") || !strings.Contains(s, "top orbits") {
		t.Fatalf("missing report sections:\n%s", s)
	}
}

func TestDumpAndMtxInput(t *testing.T) {
	dir := t.TempDir()
	mtx := filepath.Join(dir, "g.mtx")
	g, err := graph.Bubbles(10, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(mtx)
	if err != nil {
		t.Fatal(err)
	}
	if err := graph.WriteMatrixMarket(f, g); err != nil {
		t.Fatal(err)
	}
	f.Close()

	dump := filepath.Join(dir, "gdv.bin")
	var out bytes.Buffer
	if err := run([]string{"-mtx", mtx, "-maxk", "3", "-dump", dump}, &out); err != nil {
		t.Fatal(err)
	}
	img, err := os.ReadFile(dump)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := oranges.DeserializeGDV(img, g.NumVertices()); err != nil {
		t.Fatalf("dumped image invalid: %v", err)
	}
}

func TestCompare(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, g *graph.Graph) string {
		p := filepath.Join(dir, name)
		f, err := os.Create(p)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		if err := graph.WriteMatrixMarket(f, g); err != nil {
			t.Fatal(err)
		}
		return p
	}
	a, _ := graph.Bubbles(8, 8, 1)
	b, _ := graph.Bubbles(8, 8, 1)
	pa := write("a.mtx", a)
	pb := write("b.mtx", b)
	var out bytes.Buffer
	if err := run([]string{"-mtx", pa, "-maxk", "3", "-compare", pb}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "similarity") || !strings.Contains(out.String(), "1.0000") {
		t.Fatalf("identical graphs did not score 1.0:\n%s", out.String())
	}
}

func TestGdvtoolErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-graph", "nope"}, &out); err == nil {
		t.Fatal("unknown graph accepted")
	}
	if err := run([]string{"-mtx", "/does/not/exist.mtx"}, &out); err == nil {
		t.Fatal("missing mtx accepted")
	}
	if err := run([]string{"-graph", "Asia OSM", "-vertices", "500", "-maxk", "9"}, &out); err == nil {
		t.Fatal("bad maxk accepted")
	}
}

func TestOrbitsReference(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-orbits"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "G0") || !strings.Contains(s, "G29") {
		t.Fatalf("orbit table incomplete:\n%.400s", s)
	}
	if !strings.Contains(s, "30 graphlets, 73 orbits") {
		t.Fatalf("census missing:\n%.200s", s)
	}
}
