// Command graphgen generates the paper's synthetic input graphs
// (Table 1 topology classes) and writes them as Matrix Market files,
// optionally Gorder-reordered (§3.2).
//
// Usage:
//
//	graphgen -graph "Message Race" -vertices 20000 -o mr.mtx
//	graphgen -list
//	graphgen -graph "Asia OSM" -vertices 10000 -stats
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/gpuckpt/gpuckpt/internal/graph"
	"github.com/gpuckpt/gpuckpt/internal/metrics"
	"github.com/gpuckpt/gpuckpt/internal/oranges"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "graphgen:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("graphgen", flag.ContinueOnError)
	var (
		name     = fs.String("graph", "Message Race", "Table 1 graph name")
		vertices = fs.Int("vertices", 20000, "target vertex count")
		seed     = fs.Int64("seed", 42, "generator seed")
		out      = fs.String("o", "", "output Matrix Market file (default stdout)")
		gorder   = fs.Bool("gorder", false, "apply the Gorder reordering before writing")
		stats    = fs.Bool("stats", false, "print summary statistics instead of the graph")
		list     = fs.Bool("list", false, "list the available graph names")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		for _, e := range graph.Catalog() {
			fmt.Fprintf(stdout, "%-20s (paper: %d vertices)\n", e.Name, e.PaperVertices)
		}
		return nil
	}

	entry, err := graph.CatalogByName(*name)
	if err != nil {
		return err
	}
	g, err := entry.Generate(*vertices, *seed)
	if err != nil {
		return err
	}
	if *gorder {
		if g, err = graph.ApplyGorder(g, 5); err != nil {
			return err
		}
	}

	if *stats {
		s := g.Summary()
		t := metrics.NewTable("", "graph", "|V|", "|E|", "max deg", "avg deg", "GDV size", "locality")
		t.Add(s.Name,
			fmt.Sprintf("%d", s.Vertices),
			fmt.Sprintf("%d", s.Edges/2),
			fmt.Sprintf("%d", s.MaxDegree),
			fmt.Sprintf("%.2f", s.AvgDegree),
			metrics.Bytes(int64(s.Vertices)*oranges.NumOrbits*4),
			fmt.Sprintf("%.1f", g.EdgeLocality()),
		)
		return t.Render(stdout)
	}

	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return graph.WriteMatrixMarket(w, g)
}
