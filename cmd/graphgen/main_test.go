package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestList(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-list"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"Message Race", "Asia OSM", "Delaunay N24"} {
		if !strings.Contains(out.String(), name) {
			t.Fatalf("list missing %q:\n%s", name, out.String())
		}
	}
}

func TestStats(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-graph", "Hugebubbles", "-vertices", "1000", "-stats"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Hugebubbles") || !strings.Contains(out.String(), "avg deg") {
		t.Fatalf("stats output wrong:\n%s", out.String())
	}
}

func TestWriteMatrixMarket(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-graph", "Asia OSM", "-vertices", "500", "-gorder"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out.String(), "%%MatrixMarket") {
		t.Fatalf("not a matrix market file:\n%.80s", out.String())
	}
	// To a file too.
	path := filepath.Join(t.TempDir(), "g.mtx")
	if err := run([]string{"-graph", "Asia OSM", "-vertices", "500", "-o", path}, &out); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil || !bytes.HasPrefix(b, []byte("%%MatrixMarket")) {
		t.Fatalf("file output wrong: %v", err)
	}
}

func TestErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-graph", "nope"}, &out); err == nil {
		t.Fatal("unknown graph accepted")
	}
	if err := run([]string{"-bogus-flag"}, &out); err == nil {
		t.Fatal("bad flag accepted")
	}
}
