package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"

	gpuckpt "github.com/gpuckpt/gpuckpt"
	"github.com/gpuckpt/gpuckpt/internal/experiments"
	"github.com/gpuckpt/gpuckpt/internal/metrics"
)

// dedupxExperiment measures what the content-addressed block store
// buys across lineages: N tenants checkpoint perturbed copies of ONE
// model state (the §2.3 many-writers regime where every process holds
// almost the same parameters), and the same workload runs twice —
// once with each lineage self-contained, once with every lineage
// interning its diff payloads into a shared block store. The ratio of
// the two on-disk footprints is the cross-lineage de-duplication
// factor, a saving the per-lineage incremental checkpointing of the
// paper cannot see because it de-duplicates only against a lineage's
// own history.
//
// Every lineage is restored byte-exactly from disk in both
// configurations before any byte count is reported, so the table is
// also an end-to-end correctness check of the shared-store read path.
//
// The run fails if the cross-lineage ratio does not clear 1.8x: with
// tenants that share almost all of their state, a working intern path
// must nearly collapse the N copies into one.
func dedupxExperiment(cfg experiments.Config, nLineages int, jsonPath string) (*metrics.Table, error) {
	if nLineages < 2 {
		return nil, fmt.Errorf("-lineages must be >= 2 to measure cross-lineage sharing, got %d", nLineages)
	}
	const bufLen = 256 << 10
	numCkpts := cfg.NumCheckpoints
	if numCkpts <= 0 || numCkpts > 8 {
		numCkpts = 5
	}

	// One base model; each lineage rewrites its own contiguous ~2%
	// region (the fine-tuned head of an otherwise shared parameter
	// set), then all lineages evolve in parallel with small per-step
	// mutations.
	rng := rand.New(rand.NewSource(cfg.Seed))
	base := make([]byte, bufLen)
	rng.Read(base)
	bufs := make(map[string][]byte, nLineages)
	names := make([]string, nLineages)
	head := bufLen / 50
	for i := range names {
		names[i] = fmt.Sprintf("tenant-%02d", i)
		b := append([]byte(nil), base...)
		off := rng.Intn(bufLen - head)
		rng.Read(b[off : off+head])
		bufs[names[i]] = b
	}

	run := func(shared bool) (lineageBytes map[string]int64, blockBytes int64, err error) {
		root, err := os.MkdirTemp("", "ckptbench-dedupx-")
		if err != nil {
			return nil, 0, err
		}
		defer os.RemoveAll(root)
		if shared {
			if err := os.Mkdir(filepath.Join(root, "_blocks"), 0o755); err != nil {
				return nil, 0, err
			}
		}
		g := gpuckpt.NewGroup(gpuckpt.Config{
			Method: gpuckpt.MethodTree, ChunkSize: cfg.ChunkSize,
			Workers: cfg.Workers, PersistDir: root,
		})
		defer g.Close()
		// Deterministic per-step mutations, identical in both runs.
		mrng := rand.New(rand.NewSource(cfg.Seed + 1))
		work := make(map[string][]byte, nLineages)
		for _, n := range names {
			work[n] = append([]byte(nil), bufs[n]...)
			if err := g.Protect(n, bufLen); err != nil {
				return nil, 0, err
			}
		}
		for k := 0; k < numCkpts; k++ {
			if k > 0 {
				for _, n := range names {
					for s := 0; s < 4; s++ {
						off := mrng.Intn(bufLen - 64)
						mrng.Read(work[n][off : off+64])
					}
				}
			}
			if _, err := g.Checkpoint(work); err != nil {
				return nil, 0, err
			}
		}
		g.Close()

		// Byte-exact restores from disk before any accounting.
		for _, n := range names {
			rec, err := gpuckpt.ReadRecordDir(filepath.Join(root, n))
			if err != nil {
				return nil, 0, fmt.Errorf("lineage %s: %w", n, err)
			}
			got, err := rec.Restore(numCkpts - 1)
			if err != nil {
				return nil, 0, fmt.Errorf("lineage %s restore: %w", n, err)
			}
			if !bytes.Equal(got, work[n]) {
				return nil, 0, fmt.Errorf("lineage %s: restored state diverges from source", n)
			}
		}

		lineageBytes = make(map[string]int64, nLineages)
		for _, n := range names {
			sz, err := duDir(filepath.Join(root, n))
			if err != nil {
				return nil, 0, err
			}
			lineageBytes[n] = sz
		}
		if shared {
			if blockBytes, err = duDir(filepath.Join(root, "_blocks")); err != nil {
				return nil, 0, err
			}
		}
		return lineageBytes, blockBytes, nil
	}

	solo, _, err := run(false)
	if err != nil {
		return nil, fmt.Errorf("self-contained run: %w", err)
	}
	sharedLin, blockBytes, err := run(true)
	if err != nil {
		return nil, fmt.Errorf("shared-store run: %w", err)
	}

	t := metrics.NewTable(
		fmt.Sprintf("cross-lineage de-duplication: %d tenants, perturbed copies of one model", nLineages),
		"lineage", "self-contained", "shared (containers)", "saved")
	var totalSolo, totalShared int64
	for _, n := range names {
		totalSolo += solo[n]
		totalShared += sharedLin[n]
		t.Add(n, metrics.Bytes(solo[n]), metrics.Bytes(sharedLin[n]),
			metrics.Bytes(solo[n]-sharedLin[n]))
	}
	sharedTotal := totalShared + blockBytes
	ratio := float64(totalSolo) / float64(sharedTotal)
	t.Add("block store", "-", metrics.Bytes(blockBytes), "-")
	t.Add("total", metrics.Bytes(totalSolo), metrics.Bytes(sharedTotal),
		fmt.Sprintf("%.2fx", ratio))

	if jsonPath != "" {
		out := struct {
			Note               string  `json:"note"`
			Lineages           int     `json:"lineages"`
			Checkpoints        int     `json:"checkpoints"`
			ChunkSize          int     `json:"chunk_size"`
			BufLen             int     `json:"buf_len"`
			SelfContainedBytes int64   `json:"self_contained_bytes"`
			SharedBytes        int64   `json:"shared_bytes"`
			BlockStoreBytes    int64   `json:"block_store_bytes"`
			Ratio              float64 `json:"cross_lineage_dedup_ratio"`
		}{
			Note: "cross-lineage dedup via the shared block store; " +
				"regenerate with `go run ./cmd/ckptbench -exp dedupx -json BENCH_dedupx.json`",
			Lineages: nLineages, Checkpoints: numCkpts,
			ChunkSize: cfg.ChunkSize, BufLen: bufLen,
			SelfContainedBytes: totalSolo, SharedBytes: sharedTotal,
			BlockStoreBytes: blockBytes, Ratio: ratio,
		}
		b, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			return nil, err
		}
		if err := os.WriteFile(jsonPath, append(b, '\n'), 0o644); err != nil {
			return nil, err
		}
	}

	if ratio <= 1.8 {
		return t, fmt.Errorf("cross-lineage dedup ratio %.2fx, want > 1.8x", ratio)
	}
	return t, nil
}

// duDir sums the sizes of the regular files under dir, recursively.
func duDir(dir string) (int64, error) {
	var total int64
	err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			return nil
		}
		fi, err := d.Info()
		if err != nil {
			return err
		}
		total += fi.Size()
		return nil
	})
	return total, err
}
