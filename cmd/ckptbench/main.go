// Command ckptbench regenerates the tables and figures of the paper's
// evaluation section (Tan et al., ICPP 2023, §3) at a configurable
// scale.
//
// Usage:
//
//	ckptbench -exp table1|fig4|fig5|fig6|ablation|compact|all [flags]
//
// Examples:
//
//	ckptbench -exp fig4 -vertices 20000
//	ckptbench -exp fig6 -procs 1,2,4,8,16,32,64 -csv fig6.csv
//	ckptbench -exp all -vertices 5000 -maxk 3   # quick pass
//	ckptbench -exp push -remote localhost:9090  # push to a ckptd server
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	gpuckpt "github.com/gpuckpt/gpuckpt"
	"github.com/gpuckpt/gpuckpt/internal/experiments"
	"github.com/gpuckpt/gpuckpt/internal/metrics"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ckptbench:", err)
		os.Exit(1)
	}
}

func parseInts(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, fmt.Errorf("bad integer list %q: %w", s, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("ckptbench", flag.ContinueOnError)
	var (
		exp      = fs.String("exp", "all", "experiment: table1, fig4, fig5, fig6, overhead, ablation, extensions, adjoint, headline, compact, faults, dedupx, failover, all")
		vertices = fs.Int("vertices", 20000, "target vertices per input graph (paper: 11-18 M)")
		maxK     = fs.Int("maxk", 4, "largest graphlet size for ORANGES (paper: 5)")
		chunks   = fs.String("chunks", "32,64,128,256,512", "chunk sizes for fig4")
		chunk    = fs.Int("chunk", 128, "chunk size for fig5/fig6/ablation")
		freqs    = fs.String("freqs", "5,10,20", "checkpoint counts for fig5")
		procs    = fs.String("procs", "1,2,4,8,16,32,64", "process counts for fig6")
		nCkpts   = fs.Int("n", 10, "checkpoints for fig4/fig6/ablation")
		workers  = fs.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS)")
		seed     = fs.Int64("seed", 42, "graph generator seed")
		verify   = fs.Bool("verify", false, "verify every restore bit-exactly")
		csvPath  = fs.String("csv", "", "also write results as CSV to this file prefix")
		gorder   = fs.Bool("gorder", false, "apply the Gorder pre-process (generators emit trace order natively)")
		remote   = fs.String("remote", "", "ckptd server address (host:port) for -exp push")
		lineage  = fs.String("lineage", "ckptbench", "lineage name on the server for -exp push")
		keepLast = fs.Int("keeplast", 4, "retained checkpoints for -exp compact (keep-last=K)")
		lineages = fs.Int("lineages", 4, "tenant count for -exp dedupx")
		jsonPath = fs.String("json", "", "write -exp dedupx/saturate/failover/heal results as JSON to this file")
		chainLen = fs.Int("chain", 64, "checkpoint chain length for -exp saturate/failover/heal")
		frames   = fs.Int("frames", gpuckpt.DefaultWindowFrames, "streaming window frame bound for -exp saturate")
		frameB   = fs.Int64("framebytes", gpuckpt.DefaultWindowBytes, "streaming window byte bound for -exp saturate")
		pipeline = fs.Bool("pipeline", false, "overlap each checkpoint's store with the next one's dedup (CheckpointAsync)")
		cpuProf  = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = fs.String("memprofile", "", "write a heap profile to this file on exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			return fmt.Errorf("-cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("-cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintln(os.Stderr, "ckptbench: -memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows live objects
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "ckptbench: -memprofile:", err)
			}
		}()
	}

	chunkSizes, err := parseInts(*chunks)
	if err != nil {
		return err
	}
	frequencies, err := parseInts(*freqs)
	if err != nil {
		return err
	}
	procCounts, err := parseInts(*procs)
	if err != nil {
		return err
	}
	cfg := experiments.Config{
		TargetVertices:  *vertices,
		Workers:         *workers,
		Seed:            *seed,
		MaxGraphletSize: *maxK,
		ChunkSizes:      chunkSizes,
		Frequencies:     frequencies,
		ProcCounts:      procCounts,
		NumCheckpoints:  *nCkpts,
		ChunkSize:       *chunk,
		VerifyRestore:   *verify,
		ApplyGorder:     *gorder,
		Pipelined:       *pipeline,
	}

	emit := func(name string, t *metrics.Table) error {
		if err := t.Render(stdout); err != nil {
			return err
		}
		fmt.Fprintln(stdout)
		if *csvPath != "" {
			f, err := os.Create(*csvPath + "-" + name + ".csv")
			if err != nil {
				return err
			}
			defer f.Close()
			if err := t.WriteCSV(f); err != nil {
				return err
			}
			fmt.Fprintf(stdout, "wrote %s\n\n", f.Name())
		}
		return nil
	}

	runs := map[string]func() error{
		"table1": func() error {
			t, err := experiments.Table1(cfg)
			if err != nil {
				return err
			}
			return emit("table1", t)
		},
		"fig4": func() error {
			t, _, err := experiments.Fig4(cfg)
			if err != nil {
				return err
			}
			return emit("fig4", t)
		},
		"fig5": func() error {
			t, _, err := experiments.Fig5(cfg)
			if err != nil {
				return err
			}
			return emit("fig5", t)
		},
		"fig6": func() error {
			t, _, err := experiments.Fig6(cfg)
			if err != nil {
				return err
			}
			return emit("fig6", t)
		},
		"overhead": func() error {
			t, _, err := experiments.Overhead(cfg)
			if err != nil {
				return err
			}
			return emit("overhead", t)
		},
		"extensions": func() error {
			t, _, err := experiments.Extensions(cfg)
			if err != nil {
				return err
			}
			return emit("extensions", t)
		},
		"headline": func() error {
			t, claims, err := experiments.Headline(cfg)
			if err != nil {
				return err
			}
			if err := emit("headline", t); err != nil {
				return err
			}
			for _, c := range claims {
				if !c.Pass {
					return fmt.Errorf("headline claim %s failed: %s (%s)", c.ID, c.Text, c.Detail)
				}
			}
			return nil
		},
		"adjoint": func() error {
			t, _, err := experiments.Adjoint(cfg)
			if err != nil {
				return err
			}
			return emit("adjoint", t)
		},
		"ablation": func() error {
			t, _, err := experiments.Ablation(cfg)
			if err != nil {
				return err
			}
			return emit("ablation", t)
		},
		"push": func() error {
			if *remote == "" {
				return fmt.Errorf("-exp push requires -remote host:port (a running ckptd)")
			}
			t, err := pushExperiment(*remote, *lineage, cfg)
			if err != nil {
				return err
			}
			return emit("push", t)
		},
		"compact": func() error {
			t, err := compactExperiment(cfg, *keepLast)
			if err != nil {
				return err
			}
			return emit("compact", t)
		},
		"faults": func() error {
			t, err := faultsExperiment(cfg)
			if err != nil {
				return err
			}
			return emit("faults", t)
		},
		"saturate": func() error {
			t, err := saturateExperiment(cfg, *chainLen, *frames, *frameB, *jsonPath)
			if t != nil {
				if eerr := emit("saturate", t); eerr != nil {
					return eerr
				}
			}
			return err
		},
		"failover": func() error {
			t, err := failoverExperiment(cfg, *chainLen, *jsonPath)
			if t != nil {
				if eerr := emit("failover", t); eerr != nil {
					return eerr
				}
			}
			return err
		},
		"heal": func() error {
			t, err := healExperiment(cfg, *chainLen, *jsonPath)
			if t != nil {
				if eerr := emit("heal", t); eerr != nil {
					return eerr
				}
			}
			return err
		},
		"dedupx": func() error {
			t, err := dedupxExperiment(cfg, *lineages, *jsonPath)
			if t != nil {
				if eerr := emit("dedupx", t); eerr != nil {
					return eerr
				}
			}
			return err
		},
	}
	// "push" needs a live ckptd server, and "faults"/"failover"/"heal"
	// are resilience drills rather than paper experiments, so "all"
	// (the offline reproduction pass) includes none of them.
	order := []string{"table1", "fig4", "fig5", "fig6", "overhead", "ablation", "extensions", "adjoint", "headline", "compact"}

	if *exp == "all" {
		for _, name := range order {
			fmt.Fprintf(stdout, "=== %s ===\n", name)
			if err := runs[name](); err != nil {
				return fmt.Errorf("%s: %w", name, err)
			}
		}
		return nil
	}
	fn, ok := runs[*exp]
	if !ok {
		return fmt.Errorf("unknown experiment %q (want one of %s, push, all)", *exp, strings.Join(order, ", "))
	}
	return fn()
}

// pushExperiment drives the §2.3 "many writers, one storage service"
// regime against a live ckptd: it checkpoints the ORANGES workload
// series with the Tree method, pushes every diff to the server as it
// is produced, pulls the lineage back and verifies the final restore
// bit-exactly.
func pushExperiment(remote, lineage string, cfg experiments.Config) (*metrics.Table, error) {
	series, err := gpuckpt.BuildWorkloadSeries(gpuckpt.WorkloadConfig{
		TargetVertices:  cfg.TargetVertices,
		Checkpoints:     cfg.NumCheckpoints,
		MaxGraphletSize: cfg.MaxGraphletSize,
		Seed:            cfg.Seed,
		Workers:         cfg.Workers,
		ApplyGorder:     cfg.ApplyGorder,
	})
	if err != nil {
		return nil, err
	}
	ck, err := gpuckpt.New(gpuckpt.Config{
		Method: gpuckpt.MethodTree, ChunkSize: cfg.ChunkSize, Workers: cfg.Workers,
	}, series.DataLen)
	if err != nil {
		return nil, err
	}
	defer ck.Close()
	cl, err := gpuckpt.Dial(remote, 0)
	if err != nil {
		return nil, err
	}
	defer cl.Close()

	var inputBytes, pushed int64
	for _, img := range series.Images {
		res, err := ck.Checkpoint(img)
		if err != nil {
			return nil, err
		}
		inputBytes += res.InputBytes
		if _, err := cl.PushCheckpointer(lineage, ck); err != nil {
			return nil, err
		}
	}
	infos, err := cl.List()
	if err != nil {
		return nil, err
	}
	for _, in := range infos {
		if in.Name == lineage {
			pushed = in.Bytes
		}
	}
	rec, err := cl.Pull(lineage)
	if err != nil {
		return nil, err
	}
	state, err := rec.Restore(rec.Len() - 1)
	if err != nil {
		return nil, err
	}
	verified := "OK"
	if !bytes.Equal(state, series.Images[len(series.Images)-1]) {
		verified = "FAILED"
	}
	st, err := cl.Stats()
	if err != nil {
		return nil, err
	}

	t := metrics.NewTable("remote push ("+remote+")",
		"lineage", "ckpts", "input", "stored remotely", "ratio", "server reqs", "restore")
	ratio := 0.0
	if pushed > 0 {
		ratio = float64(inputBytes) / float64(pushed)
	}
	t.Add(lineage,
		fmt.Sprintf("%d", rec.Len()),
		metrics.Bytes(inputBytes),
		metrics.Bytes(pushed),
		fmt.Sprintf("%.2fx", ratio),
		fmt.Sprintf("%d", st.Requests),
		verified)
	if verified != "OK" {
		return nil, fmt.Errorf("remote restore differs from the original buffer")
	}
	return t, nil
}
