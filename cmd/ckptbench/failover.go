package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net"
	"os"
	"sort"
	"sync"
	"time"

	gpuckpt "github.com/gpuckpt/gpuckpt"
	"github.com/gpuckpt/gpuckpt/internal/experiments"
	"github.com/gpuckpt/gpuckpt/internal/metrics"
	"github.com/gpuckpt/gpuckpt/internal/server"
)

// failoverExperiment measures the hot-standby promise end to end: a
// loopback primary receives a checkpoint chain one diff at a time
// while a live follower tails its v5 subscription stream; then the
// primary is killed and the follower promoted. Three numbers matter:
//
//   - replication lag: push-commit to standby-applied-and-durable, per
//     diff (p50/p99 reported) — the data-loss window a real failover
//     would see;
//   - promotion wall: the Promote() call itself. The standby applies
//     every diff as it arrives, so promotion replays NOTHING — this
//     must not scale with the chain;
//   - kill→serving: primary kill to a byte-verified serving state.
//
// The run fails unless the promoted state is byte-identical to the
// last pushed image, promotion performed zero diff applies (cost
// O(last diff), paid before the failure), and kill→serving stayed
// under failoverMaxServing — the gate `make bench-failover` and the CI
// smoke lean on.
func failoverExperiment(cfg experiments.Config, chain int, jsonPath string) (*metrics.Table, error) {
	if chain < 2 {
		return nil, fmt.Errorf("-chain must be >= 2, got %d", chain)
	}
	const bufLen = 256 << 10
	chunk := cfg.ChunkSize
	if chunk <= 0 {
		chunk = 128
	}

	ck, err := gpuckpt.New(gpuckpt.Config{
		Method: gpuckpt.MethodTree, ChunkSize: chunk, Workers: cfg.Workers,
	}, bufLen)
	if err != nil {
		return nil, err
	}
	defer ck.Close()

	// Primary on tmpfs-backed loopback, like the saturate experiment:
	// this measures replication and promotion, not disk latency.
	root, err := benchTempDir("ckptbench-failover-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(root)
	srv, err := server.New(server.Config{Root: root, Logf: func(string, ...any) {}})
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		srv.Close()
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ctx, ln) }()
	primaryDown := false
	killPrimary := func() {
		cancel()
		<-done
		srv.Close()
		primaryDown = true
	}
	defer func() {
		if !primaryDown {
			killPrimary()
		}
	}()

	// The standby, with per-checkpoint apply timestamps.
	mirror, err := benchTempDir("ckptbench-standby-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(mirror)
	var (
		lagMu   sync.Mutex
		applyAt = make([]time.Time, chain)
	)
	fl, err := gpuckpt.NewFollower(ln.Addr().String(), gpuckpt.FollowerConfig{
		Lineage: "failover",
		Dir:     mirror,
		OnApply: func(k int) {
			lagMu.Lock()
			if k < chain {
				applyAt[k] = time.Now()
			}
			lagMu.Unlock()
		},
	})
	if err != nil {
		return nil, err
	}
	defer fl.Close()
	fctx, fcancel := context.WithCancel(context.Background())
	defer fcancel()
	flDone := make(chan struct{})
	go func() { defer close(flDone); fl.Run(fctx) }()
	defer func() { fcancel(); <-flDone }()

	cl, err := gpuckpt.Dial(ln.Addr().String(), 30*time.Second)
	if err != nil {
		return nil, err
	}
	defer cl.Close()

	// Push the chain one diff at a time, timestamping each commit —
	// the live regime a training job's checkpoint loop produces.
	rng := rand.New(rand.NewSource(cfg.Seed))
	buf := make([]byte, bufLen)
	rng.Read(buf)
	pushAt := make([]time.Time, chain)
	for k := 0; k < chain; k++ {
		if k > 0 {
			for s := 0; s < 8; s++ {
				off := rng.Intn(bufLen - 64)
				rng.Read(buf[off : off+64])
			}
		}
		if _, err := ck.Checkpoint(buf); err != nil {
			return nil, err
		}
		// Timestamp the push START: the standby's fan-out runs inside
		// the commit, so it usually applies before the ack drains back —
		// lag measured from the ack would always clamp to zero.
		pushAt[k] = time.Now()
		if _, err := cl.PushCheckpointer("failover", ck); err != nil {
			return nil, fmt.Errorf("push %d: %w", k, err)
		}
	}
	want, err := ck.RestoreLatest()
	if err != nil {
		return nil, err
	}

	// Let the standby catch up fully, then kill the primary.
	deadline := time.Now().Add(30 * time.Second)
	for fl.Stats().Next < chain {
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("standby stuck at %+v, want %d", fl.Stats(), chain)
		}
		time.Sleep(500 * time.Microsecond)
	}
	preStats := fl.Stats()

	// The pusher is done; close its connection so the kill below
	// measures the standby, not the server waiting out an idle client's
	// drain budget. The follower's own subscription is shut down by the
	// server's stop signal in microseconds.
	cl.Close()

	tKill := time.Now()
	killPrimary()
	promoteStart := time.Now()
	p, err := fl.Promote()
	if err != nil {
		return nil, err
	}
	promoteWall := time.Since(promoteStart)
	if !bytes.Equal(p.State, want) {
		return nil, fmt.Errorf("promoted state diverges from the last pushed image")
	}
	killToServing := time.Since(tKill)
	postStats := fl.Stats()

	// The whole point: promotion applied nothing. Every diff was
	// applied when it arrived; the replica was already serving-ready.
	if postStats.Applied != preStats.Applied {
		return nil, fmt.Errorf("promotion replayed %d diffs, want 0", postStats.Applied-preStats.Applied)
	}
	if preStats.Applied != uint64(chain) || preStats.Resyncs != 0 {
		return nil, fmt.Errorf("replication was not a clean tail: %+v", preStats)
	}
	if got, err := p.Record.Restore(chain - 1); err != nil || !bytes.Equal(got, want) {
		return nil, fmt.Errorf("promoted record restore diverges (%v)", err)
	}

	lags := make([]time.Duration, 0, chain)
	lagMu.Lock()
	for k := 0; k < chain; k++ {
		if applyAt[k].IsZero() {
			lagMu.Unlock()
			return nil, fmt.Errorf("checkpoint %d never reached the standby's apply hook", k)
		}
		lags = append(lags, applyAt[k].Sub(pushAt[k]))
	}
	lagMu.Unlock()
	sort.Slice(lags, func(i, j int) bool { return lags[i] < lags[j] })
	p50 := lags[len(lags)/2]
	p99 := lags[(len(lags)*99)/100]

	t := metrics.NewTable(
		fmt.Sprintf("failover: %d-diff chain, live v5 tail, kill-primary promotion", chain),
		"chain", "lag p50", "lag p99", "promote", "kill->serving", "replayed", "state")
	t.Add(fmt.Sprint(chain),
		p50.Round(time.Microsecond).String(),
		p99.Round(time.Microsecond).String(),
		promoteWall.Round(time.Microsecond).String(),
		killToServing.Round(time.Microsecond).String(),
		"0 diffs", "byte-exact")

	if jsonPath != "" {
		out := struct {
			Note            string  `json:"note"`
			Chain           int     `json:"chain"`
			ChunkSize       int     `json:"chunk_size"`
			BufLen          int     `json:"buf_len"`
			LagP50Ns        int64   `json:"replication_lag_p50_ns"`
			LagP99Ns        int64   `json:"replication_lag_p99_ns"`
			PromoteWallNs   int64   `json:"promote_wall_ns"`
			KillToServingNs int64   `json:"kill_to_serving_ns"`
			ReplayedDiffs   uint64  `json:"promotion_replayed_diffs"`
			TailFrames      uint64  `json:"tail_frames"`
			KillToServingS  float64 `json:"kill_to_serving_s"`
		}{
			Note: "hot-standby failover over loopback: live wire v5 tail, primary killed, " +
				"follower promoted; regenerate with `make bench-failover`",
			Chain: chain, ChunkSize: chunk, BufLen: bufLen,
			LagP50Ns: p50.Nanoseconds(), LagP99Ns: p99.Nanoseconds(),
			PromoteWallNs: promoteWall.Nanoseconds(), KillToServingNs: killToServing.Nanoseconds(),
			ReplayedDiffs: 0, TailFrames: postStats.TailFrames,
			KillToServingS: killToServing.Seconds(),
		}
		b, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			return nil, err
		}
		if err := os.WriteFile(jsonPath, append(b, '\n'), 0o644); err != nil {
			return nil, err
		}
	}

	if killToServing > failoverMaxServing {
		return t, fmt.Errorf("kill->serving took %s, gate is %s", killToServing, failoverMaxServing)
	}
	return t, nil
}

// failoverMaxServing is the promotion gate: primary kill to verified
// serving state. Promotion applies no diffs, so even on a loaded CI
// host this is pure teardown + verification overhead.
const failoverMaxServing = time.Second
