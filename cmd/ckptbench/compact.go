package main

import (
	"bytes"
	"fmt"
	"os"
	"time"

	gpuckpt "github.com/gpuckpt/gpuckpt"
	"github.com/gpuckpt/gpuckpt/internal/experiments"
	"github.com/gpuckpt/gpuckpt/internal/metrics"
)

// compactExperiment measures what the lifecycle subsystem buys:
// on-disk lineage size and latest-checkpoint restore latency as a
// function of chain length, before and after compacting the lineage
// under keep-last=K retention. Restores are verified bit-exact against
// the original workload image in both configurations, so the table
// doubles as an end-to-end correctness check of the compaction
// transaction (DESIGN.md §10).
//
// Both the Basic and Tree methods run, because they sit on opposite
// sides of the compaction trade-off: Basic diffs store every changed
// chunk, so folding the prefix reclaims real bytes; Tree diffs are
// already deduplicated down to first occurrences, so the consolidated
// full baseline can cost more disk than the folded prefix frees (freed
// is negative) — what compaction buys there is the bounded restore
// chain and the freedom to delete history.
//
// Restore latency here is host wall time for loading the persisted
// lineage and replaying it — the quantity compaction bounds by
// replacing an O(chain) replay with an O(keep-last) one.
func compactExperiment(cfg experiments.Config, keepLast int) (*metrics.Table, error) {
	if keepLast < 1 {
		return nil, fmt.Errorf("-keeplast must be >= 1, got %d", keepLast)
	}
	lengths := cfg.Frequencies
	if len(lengths) == 0 {
		lengths = []int{5, 10, 20}
	}
	t := metrics.NewTable(
		fmt.Sprintf("lineage lifecycle: compaction under keep-last=%d (Message Race)", keepLast),
		"method", "chain", "disk", "restore", "disk (compacted)", "restore (compacted)", "pruned", "rewritten", "freed")

	methods := []struct {
		name   string
		method gpuckpt.Method
	}{
		{"Basic", gpuckpt.MethodBasic},
		{"Tree", gpuckpt.MethodTree},
	}
	for _, m := range methods {
		for _, chain := range lengths {
			if err := compactOne(cfg, t, m.name, m.method, chain, keepLast); err != nil {
				return nil, fmt.Errorf("%s chain %d: %w", m.name, chain, err)
			}
		}
	}
	return t, nil
}

// compactOne runs one (method, chain length) cell and appends its row.
func compactOne(cfg experiments.Config, t *metrics.Table, name string, method gpuckpt.Method, chain, keepLast int) error {
	series, err := gpuckpt.BuildWorkloadSeries(gpuckpt.WorkloadConfig{
		TargetVertices:  cfg.TargetVertices,
		Checkpoints:     chain,
		MaxGraphletSize: cfg.MaxGraphletSize,
		Seed:            cfg.Seed,
		Workers:         cfg.Workers,
		ApplyGorder:     cfg.ApplyGorder,
	})
	if err != nil {
		return err
	}
	dir, err := os.MkdirTemp("", "ckptbench-compact-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	ck, err := gpuckpt.New(gpuckpt.Config{
		Method: method, ChunkSize: cfg.ChunkSize, Workers: cfg.Workers,
		PersistDir: dir,
	}, series.DataLen)
	if err != nil {
		return err
	}
	for _, img := range series.Images {
		if _, err := ck.Checkpoint(img); err != nil {
			ck.Close()
			return err
		}
	}
	ck.Close()
	latest := series.Images[len(series.Images)-1]

	rawBytes, rawLat, err := timedRestore(dir, chain-1, cfg.Workers, latest)
	if err != nil {
		return fmt.Errorf("pre-compaction restore: %w", err)
	}

	cs, err := gpuckpt.CompactDir(dir, fmt.Sprintf("keep-last=%d", keepLast), cfg.Workers)
	if err != nil {
		return err
	}
	compBytes, compLat, err := timedRestore(dir, chain-1, cfg.Workers, latest)
	if err != nil {
		return fmt.Errorf("post-compaction restore: %w", err)
	}

	t.Add(
		name,
		fmt.Sprintf("%d", chain),
		metrics.Bytes(rawBytes),
		fmt.Sprintf("%v", rawLat.Round(time.Microsecond)),
		metrics.Bytes(compBytes),
		fmt.Sprintf("%v", compLat.Round(time.Microsecond)),
		fmt.Sprintf("%d", cs.PrunedDiffs),
		fmt.Sprintf("%d", cs.RewrittenDiffs),
		signedBytes(cs.FreedBytes),
	)
	return nil
}

// signedBytes renders a byte delta, which is negative when the
// consolidated baseline costs more than the folded prefix freed.
func signedBytes(n int64) string {
	if n < 0 {
		return "-" + metrics.Bytes(-n)
	}
	return metrics.Bytes(n)
}

// timedRestore loads the persisted lineage, restores absolute index k,
// and verifies it against want. It returns the lineage's stored size
// and the wall time of the load+restore.
func timedRestore(dir string, k, workers int, want []byte) (int64, time.Duration, error) {
	start := time.Now()
	rec, err := gpuckpt.ReadRecordDir(dir)
	if err != nil {
		return 0, 0, err
	}
	rec.Parallel(workers)
	state, err := rec.Restore(k)
	if err != nil {
		return 0, 0, err
	}
	elapsed := time.Since(start)
	if !bytes.Equal(state, want) {
		return 0, 0, fmt.Errorf("checkpoint %d restored with wrong bytes", k)
	}
	return rec.TotalBytes(), elapsed, nil
}
