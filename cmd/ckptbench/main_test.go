package main

import (
	"bytes"
	"context"
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/gpuckpt/gpuckpt/internal/server"
)

func tiny(extra ...string) []string {
	base := []string{"-vertices", "1200", "-maxk", "3", "-n", "4",
		"-chunks", "64,256", "-freqs", "2,4", "-procs", "1,2"}
	return append(base, extra...)
}

func TestParseInts(t *testing.T) {
	got, err := parseInts("1, 2,3")
	if err != nil || len(got) != 3 || got[2] != 3 {
		t.Fatalf("parseInts: %v %v", got, err)
	}
	if _, err := parseInts("1,x"); err == nil {
		t.Fatal("bad list accepted")
	}
	if got, err := parseInts(""); err != nil || got != nil {
		t.Fatal("empty list mishandled")
	}
}

func TestTable1CLI(t *testing.T) {
	var out bytes.Buffer
	if err := run(tiny("-exp", "table1"), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Delaunay N24") {
		t.Fatalf("table1 output wrong:\n%s", out.String())
	}
}

func TestFig6CLIWithCSV(t *testing.T) {
	dir := t.TempDir()
	prefix := filepath.Join(dir, "res")
	var out bytes.Buffer
	if err := run(tiny("-exp", "fig6", "-csv", prefix), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Tree") {
		t.Fatalf("fig6 output wrong:\n%s", out.String())
	}
	csv, err := os.ReadFile(prefix + "-fig6.csv")
	if err != nil || !bytes.Contains(csv, []byte("Procs")) {
		t.Fatalf("csv missing: %v", err)
	}
}

func TestExtensionsCLI(t *testing.T) {
	var out bytes.Buffer
	if err := run(tiny("-exp", "extensions"), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Cascaded") {
		t.Fatalf("extensions output wrong:\n%s", out.String())
	}
}

func TestCkptbenchErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-exp", "nope"}, &out); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	if err := run([]string{"-chunks", "a,b"}, &out); err == nil {
		t.Fatal("bad chunk list accepted")
	}
	if err := run(tiny("-exp", "fig5", "-freqs", "3,4"), &out); err == nil {
		t.Fatal("non-divisor frequencies accepted")
	}
}

func TestPushCLI(t *testing.T) {
	srv, err := server.New(server.Config{Root: t.TempDir(), Logf: func(string, ...any) {}})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ctx, ln) }()
	defer func() {
		cancel()
		if err := <-done; err != nil {
			t.Errorf("Serve: %v", err)
		}
	}()

	var out bytes.Buffer
	args := tiny("-exp", "push", "-remote", ln.Addr().String(), "-lineage", "bench-test")
	if err := run(args, &out); err != nil {
		t.Fatalf("push experiment: %v\n%s", err, out.String())
	}
	s := out.String()
	if !strings.Contains(s, "bench-test") || !strings.Contains(s, "OK") {
		t.Fatalf("push output wrong:\n%s", s)
	}
	if st := srv.Stats(); st.Requests == 0 || st.Lineages != 1 {
		t.Fatalf("server saw no traffic: %+v", st)
	}
}

func TestPushCLIRequiresRemote(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-exp", "push"}, &out); err == nil {
		t.Fatal("push without -remote accepted")
	}
}
