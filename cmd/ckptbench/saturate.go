package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net"
	"os"
	"time"

	gpuckpt "github.com/gpuckpt/gpuckpt"
	"github.com/gpuckpt/gpuckpt/internal/experiments"
	"github.com/gpuckpt/gpuckpt/internal/metrics"
	"github.com/gpuckpt/gpuckpt/internal/server"
)

// saturateExperiment measures what the v4 streaming push protocol buys
// over v3 request/response on the wire itself: ONE checkpoint chain is
// pushed to a loopback ckptd twice — once against a server pinned to
// protocol 3 (every diff waits out a full round trip) and once against
// a v4 server (a window of frames rides the connection back-to-back,
// acks returning out-of-band). Same client, same diffs, same loopback;
// the only variable is the protocol.
//
// Two methodology choices keep the comparison about the wire:
//
//   - the server stores lineages on tmpfs when the host has one
//     (/dev/shm), so per-diff fsync latency — identical in both modes
//     and unrelated to this PR — does not drown the round-trip time
//     being measured;
//   - each mode runs saturateReps times and reports its best wall
//     time, squeezing scheduler noise out of a sub-second measurement.
//
// Both lineages are pulled back and the final checkpoint compared
// byte-exactly before any number is reported. The run fails if the
// streamed push is not at least saturateMinSpeedup times faster — the
// regression gate `make bench-wire` and the CI smoke both lean on.
func saturateExperiment(cfg experiments.Config, chain, windowFrames int, windowBytes int64, jsonPath string) (*metrics.Table, error) {
	if chain < 2 {
		return nil, fmt.Errorf("-chain must be >= 2, got %d", chain)
	}
	const bufLen = 256 << 10
	chunk := cfg.ChunkSize
	if chunk <= 0 {
		chunk = 128
	}

	// One chain, shared by both modes: a seeded buffer with a few
	// chunk-sized splotches rewritten per step, so each incremental
	// diff is small and the per-frame wire overhead actually shows.
	ck, err := gpuckpt.New(gpuckpt.Config{
		Method: gpuckpt.MethodTree, ChunkSize: chunk, Workers: cfg.Workers,
	}, bufLen)
	if err != nil {
		return nil, err
	}
	defer ck.Close()
	rng := rand.New(rand.NewSource(cfg.Seed))
	buf := make([]byte, bufLen)
	rng.Read(buf)
	for k := 0; k < chain; k++ {
		if k > 0 {
			for s := 0; s < 8; s++ {
				off := rng.Intn(bufLen - 64)
				rng.Read(buf[off : off+64])
			}
		}
		if _, err := ck.Checkpoint(buf); err != nil {
			return nil, err
		}
	}
	payload := ck.RecordBytes()
	want, err := ck.RestoreLatest()
	if err != nil {
		return nil, err
	}

	type mode struct {
		name     string
		protocol uint8
	}
	modes := []mode{
		{"sequential (v3)", 3},
		{"streamed (v4)", 0}, // 0 = server default, currently v4
	}

	// Both modes run against live servers at once and their reps are
	// INTERLEAVED (seq, stream, seq, stream, ...): environmental drift
	// — a noisy neighbor, a GC pause, a frequency change — lands on
	// neighboring reps of both modes instead of on whichever mode
	// happened to run second, so the best-of walls stay comparable.
	runners := make([]*saturateRunner, len(modes))
	for i, m := range modes {
		r, err := newSaturateRunner(m.protocol, windowFrames, windowBytes)
		if err != nil {
			for _, p := range runners[:i] {
				p.close()
			}
			return nil, fmt.Errorf("%s: %w", m.name, err)
		}
		runners[i] = r
	}
	defer func() {
		for _, r := range runners {
			if r != nil {
				r.close()
			}
		}
	}()
	walls := make([]time.Duration, len(modes))
	for rep := 0; rep < saturateRepsFor(chain); rep++ {
		for i, m := range modes {
			wall, err := runners[i].push(ck, chain, rep)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", m.name, err)
			}
			if walls[i] == 0 || wall < walls[i] {
				walls[i] = wall
			}
		}
	}
	for i, m := range modes {
		if err := runners[i].verify(chain, want); err != nil {
			return nil, fmt.Errorf("%s: %w", m.name, err)
		}
	}

	t := metrics.NewTable(
		fmt.Sprintf("wire saturation: %d-diff chain over loopback, window %d frames / %s",
			chain, windowFrames, metrics.Bytes(windowBytes)),
		"mode", "diffs", "payload", "wall", "diffs/s", "throughput")
	for i, m := range modes {
		t.Add(m.name, fmt.Sprint(chain), metrics.Bytes(payload), walls[i].Round(time.Microsecond).String(),
			fmt.Sprintf("%.0f", float64(chain)/walls[i].Seconds()),
			fmt.Sprintf("%s/s", metrics.Bytes(int64(float64(payload)/walls[i].Seconds()))))
	}
	speedup := float64(walls[0]) / float64(walls[1])
	t.Add("speedup", "-", "-", "-", "-", fmt.Sprintf("%.2fx", speedup))

	if jsonPath != "" {
		out := struct {
			Note          string  `json:"note"`
			Chain         int     `json:"chain"`
			ChunkSize     int     `json:"chunk_size"`
			BufLen        int     `json:"buf_len"`
			WindowFrames  int     `json:"window_frames"`
			WindowBytes   int64   `json:"window_bytes"`
			PayloadBytes  int64   `json:"payload_bytes"`
			SeqWallNs     int64   `json:"sequential_wall_ns"`
			StreamWallNs  int64   `json:"streamed_wall_ns"`
			SeqDiffsPerS  float64 `json:"sequential_diffs_per_s"`
			StrmDiffsPerS float64 `json:"streamed_diffs_per_s"`
			Speedup       float64 `json:"streamed_vs_sequential_speedup"`
		}{
			Note: "v4 windowed streaming push vs v3 request/response over loopback; " +
				"regenerate with `make bench-wire`",
			Chain: chain, ChunkSize: chunk, BufLen: bufLen,
			WindowFrames: windowFrames, WindowBytes: windowBytes,
			PayloadBytes: payload,
			SeqWallNs:    walls[0].Nanoseconds(), StreamWallNs: walls[1].Nanoseconds(),
			SeqDiffsPerS:  float64(chain) / walls[0].Seconds(),
			StrmDiffsPerS: float64(chain) / walls[1].Seconds(),
			Speedup:       speedup,
		}
		b, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			return nil, err
		}
		if err := os.WriteFile(jsonPath, append(b, '\n'), 0o644); err != nil {
			return nil, err
		}
	}

	if chain >= saturateGateChain && speedup < saturateMinSpeedup {
		return t, fmt.Errorf("streamed push only %.2fx faster than sequential, want >= %.1fx", speedup, saturateMinSpeedup)
	}
	return t, nil
}

const (
	// saturateReps is the floor on how many times each mode runs; the
	// best wall time is reported. Short chains run more reps (see
	// saturateRepsFor) because their sub-millisecond walls are at the
	// mercy of scheduler and GC hiccups, and a best-of only converges
	// to the true floor with enough draws.
	saturateReps = 3
	// saturateMinSpeedup is the regression gate on streamed vs
	// sequential throughput.
	saturateMinSpeedup = 3.0
	// saturateGateChain is the smallest chain the speedup gate applies
	// to: below it, per-run fixed costs (dial, handshake, server
	// startup) dilute the per-frame effect being gated.
	saturateGateChain = 64
)

// saturateRepsFor picks the rep count for a chain length: enough reps
// that roughly 2048 diffs are pushed per mode, floored at
// saturateReps, so short chains still accumulate a stable best-of.
func saturateRepsFor(chain int) int {
	reps := 2048 / chain
	if reps < saturateReps {
		return saturateReps
	}
	return reps
}

// saturateRunner is one mode's half of the interleaved measurement: a
// loopback server pinned to a protocol (0 = server default) plus a
// client dialed at the configured window. Every push rep targets a
// fresh lineage on the same server; verify pulls the last rep's
// lineage back and byte-compares its final restore.
type saturateRunner struct {
	root   string
	cancel context.CancelFunc
	done   chan error
	cl     *gpuckpt.Client
	last   string // lineage name of the most recent rep
}

func newSaturateRunner(protocol uint8, windowFrames int, windowBytes int64) (*saturateRunner, error) {
	root, err := benchTempDir("ckptbench-saturate-")
	if err != nil {
		return nil, err
	}
	r := &saturateRunner{root: root, done: make(chan error, 1)}
	srv, err := server.New(server.Config{Root: root, Protocol: protocol, Logf: func(string, ...any) {}})
	if err != nil {
		os.RemoveAll(root)
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		os.RemoveAll(root)
		return nil, err
	}
	var ctx context.Context
	ctx, r.cancel = context.WithCancel(context.Background())
	go func() { r.done <- srv.Serve(ctx, ln) }()
	r.cl, err = gpuckpt.DialConfigured(ln.Addr().String(), gpuckpt.DialConfig{
		Timeout:      30 * time.Second,
		WindowFrames: windowFrames,
		WindowBytes:  windowBytes,
	})
	if err != nil {
		r.close()
		return nil, err
	}
	return r, nil
}

func (r *saturateRunner) push(ck *gpuckpt.Checkpointer, chain, rep int) (time.Duration, error) {
	r.last = fmt.Sprintf("saturate-%d", rep)
	start := time.Now()
	n, err := r.cl.PushCheckpointer(r.last, ck)
	wall := time.Since(start)
	if err != nil {
		return 0, err
	}
	if n != chain {
		return 0, fmt.Errorf("pushed %d diffs, want %d", n, chain)
	}
	return wall, nil
}

func (r *saturateRunner) verify(chain int, want []byte) error {
	rec, err := r.cl.Pull(r.last)
	if err != nil {
		return err
	}
	got, err := rec.Restore(chain - 1)
	if err != nil {
		return err
	}
	if !bytes.Equal(got, want) {
		return fmt.Errorf("restored chain diverges from source")
	}
	return nil
}

func (r *saturateRunner) close() {
	if r.cl != nil {
		r.cl.Close()
		r.cl = nil
	}
	if r.cancel != nil {
		r.cancel()
		<-r.done
		r.cancel = nil
	}
	os.RemoveAll(r.root)
}

// benchTempDir prefers tmpfs (/dev/shm) for the server store so disk
// latency does not pollute a wire measurement, falling back to the
// regular temp dir.
func benchTempDir(prefix string) (string, error) {
	if fi, err := os.Stat("/dev/shm"); err == nil && fi.IsDir() {
		if dir, err := os.MkdirTemp("/dev/shm", prefix); err == nil {
			return dir, nil
		}
	}
	return os.MkdirTemp("", prefix)
}
