package main

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"os"
	"time"

	gpuckpt "github.com/gpuckpt/gpuckpt"
	"github.com/gpuckpt/gpuckpt/internal/checkpoint"
	"github.com/gpuckpt/gpuckpt/internal/dedup"
	"github.com/gpuckpt/gpuckpt/internal/device"
	"github.com/gpuckpt/gpuckpt/internal/experiments"
	"github.com/gpuckpt/gpuckpt/internal/faults"
	"github.com/gpuckpt/gpuckpt/internal/metrics"
	"github.com/gpuckpt/gpuckpt/internal/parallel"
	"github.com/gpuckpt/gpuckpt/internal/server"
)

// faultsExperiment drives seeded fault schedules (internal/faults)
// against a live in-process ckptd and a local checkpoint store, one
// row per seam: mid-frame connection resets and dial failures absorbed
// by the client's retry loop, on-disk bit rot detected by Scrub and
// repaired from the server replica, and injected kernel failures in
// the dedup pipeline retried at the checkpoint boundary. Every row
// ends with a byte-exact restore verification; the schedule is fully
// determined by -seed, so a reported failure reproduces exactly.
func faultsExperiment(cfg experiments.Config) (*metrics.Table, error) {
	const (
		dataLen = 64 << 10
		nCkpts  = 8
	)
	chunk := cfg.ChunkSize
	if chunk <= 0 {
		chunk = 128
	}

	t := metrics.NewTable(
		fmt.Sprintf("fault injection (seed %d): recovered vs failed operations", cfg.Seed),
		"seam", "ops", "faults fired", "recovered", "failed", "restore")

	images := faultImages(cfg.Seed, dataLen, nCkpts)
	encoded, err := encodeLineage(images, dataLen, chunk, cfg.Workers)
	if err != nil {
		return nil, err
	}

	root, err := os.MkdirTemp("", "ckptbench-faults-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(root)
	addr, stop, err := startBenchServer(root)
	if err != nil {
		return nil, err
	}
	defer stop()

	if err := networkRow(t, cfg.Seed, addr, images, encoded); err != nil {
		return nil, fmt.Errorf("network seam: %w", err)
	}
	if err := storageRow(t, cfg.Seed, addr, images, encoded); err != nil {
		return nil, fmt.Errorf("storage seam: %w", err)
	}
	if err := pipelineRow(t, cfg.Seed, images, dataLen, chunk, cfg.Workers); err != nil {
		return nil, fmt.Errorf("pipeline seam: %w", err)
	}
	return t, nil
}

// faultImages builds the deterministic mutation series the three rows
// share: a seeded random base image, then scattered splotches
// rewritten per step.
func faultImages(seed int64, dataLen, n int) [][]byte {
	rng := rand.New(rand.NewSource(seed))
	img := make([]byte, dataLen)
	rng.Read(img)
	out := make([][]byte, n)
	out[0] = append([]byte(nil), img...)
	for i := 1; i < n; i++ {
		for s := 0; s < 8; s++ {
			off := rng.Intn(dataLen - 64)
			rng.Read(img[off : off+64])
		}
		out[i] = append([]byte(nil), img...)
	}
	return out
}

// encodeLineage checkpoints images and returns each diff's canonical
// encoding.
func encodeLineage(images [][]byte, dataLen, chunk, workers int) ([][]byte, error) {
	ck, err := gpuckpt.New(gpuckpt.Config{
		Method: gpuckpt.MethodTree, ChunkSize: chunk, Workers: workers,
	}, dataLen)
	if err != nil {
		return nil, err
	}
	defer ck.Close()
	out := make([][]byte, len(images))
	for i, img := range images {
		if _, err := ck.Checkpoint(img); err != nil {
			return nil, err
		}
		var buf bytes.Buffer
		if err := ck.WriteDiff(i, &buf); err != nil {
			return nil, err
		}
		out[i] = buf.Bytes()
	}
	return out, nil
}

func startBenchServer(root string) (string, func(), error) {
	srv, err := server.New(server.Config{Root: root, Logf: func(string, ...any) {}})
	if err != nil {
		return "", nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ctx, ln) }()
	stop := func() {
		cancel()
		<-done
	}
	return ln.Addr().String(), stop, nil
}

// networkRow pushes the lineage through a dialer that tears the first
// two connections mid-frame and refuses the third dial; the client's
// bounded-backoff retry loop must absorb every fault.
func networkRow(t *metrics.Table, seed int64, addr string, images, encoded [][]byte) error {
	in := faults.New(seed)
	cl, err := gpuckpt.DialConfigured(addr, gpuckpt.DialConfig{
		Timeout: 2 * time.Second,
		Retry: gpuckpt.RetryPolicy{
			MaxAttempts: 6, BaseDelay: 2 * time.Millisecond,
			MaxDelay: 20 * time.Millisecond, Seed: seed,
		},
		Dialer: in.Dialer(faults.ConnPlan{
			Reset: faults.On(1, 2), ResetAfter: 600,
			FailDial: faults.On(3),
		}),
	})
	if err != nil {
		return err
	}
	defer cl.Close()

	failed := 0
	for i, enc := range encoded {
		if err := cl.Push("net-chaos", i, enc); err != nil {
			failed++
		}
	}
	rec, err := cl.Pull("net-chaos")
	ops := len(encoded) + 1
	outcome := "byte-exact"
	if err != nil {
		failed++
		outcome = "pull failed: " + err.Error()
	} else if err := verifyRecord(rec, images, 0); err != nil {
		outcome = err.Error()
	}
	t.Add("network (reset, dial-fail)",
		fmt.Sprintf("%d", ops),
		fmt.Sprintf("%d", len(in.Trace())),
		fmt.Sprintf("%d", ops-failed),
		fmt.Sprintf("%d", failed),
		outcome)
	if failed > 0 {
		return fmt.Errorf("%d of %d operations never recovered", failed, ops)
	}
	return nil
}

// storageRow rots two stored diffs on disk, scrubs (detect +
// quarantine) and repairs them from the server replica the row pushes
// first over a clean connection.
func storageRow(t *metrics.Table, seed int64, addr string, images, encoded [][]byte) error {
	in := faults.New(seed)
	dir, err := os.MkdirTemp("", "ckptbench-faults-store-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	fs, err := checkpoint.NewFileStore(dir)
	if err != nil {
		return err
	}
	defer fs.Close()
	cl, err := gpuckpt.Dial(addr, 5*time.Second)
	if err != nil {
		return err
	}
	defer cl.Close()
	for i, enc := range encoded {
		d, err := checkpoint.Decode(bytes.NewReader(enc))
		if err != nil {
			return err
		}
		if err := fs.Append(d); err != nil {
			return err
		}
		if err := cl.Push("store-chaos", i, enc); err != nil {
			return err
		}
	}

	// Rot two diffs on disk: one deterministic bit flipped in each.
	files, err := fs.Files()
	if err != nil {
		return err
	}
	victims := []int{1, len(files) - 2}
	for _, v := range victims {
		raw, err := os.ReadFile(files[v])
		if err != nil {
			return err
		}
		if err := os.WriteFile(files[v], in.FlipBit(raw), 0o644); err != nil {
			return err
		}
	}

	rep, err := cl.Repair(dir, "store-chaos")
	if err != nil {
		return err
	}
	ops := len(encoded) + 1 + len(rep.Corrupt) // appends, scrub, refetches
	outcome := "byte-exact"
	failed := len(rep.Corrupt) - len(rep.Repaired)
	if err := verifyDir(dir, images); err != nil {
		outcome = err.Error()
	}
	t.Add("storage (bit rot x2)",
		fmt.Sprintf("%d", ops),
		fmt.Sprintf("%d", len(victims)),
		fmt.Sprintf("%d scrubbed, %d repaired", len(rep.Corrupt), len(rep.Repaired)),
		fmt.Sprintf("%d", failed),
		outcome)
	if failed > 0 || !rep.OK() {
		return fmt.Errorf("repair left %d diffs unrepaired", failed)
	}
	return nil
}

// pipelineRow injects front-stage kernel failures into the pipelined
// dedup path and retries each failed checkpoint (the front stage fails
// before any state changes, so a retry is exact); the committed record
// must restore every image byte-exactly. Back-stage failures poison
// the pipeline by contract and are exercised by the chaos suite.
func pipelineRow(t *metrics.Table, seed int64, images [][]byte, dataLen, chunk, workers int) error {
	in := faults.New(seed)
	if workers <= 0 {
		workers = 2
	}
	pool := parallel.NewPool(workers)
	defer pool.Close()
	dev := device.New(device.A100(), pool, nil)
	d, err := dedup.New(checkpoint.MethodTree, dataLen, dev, dedup.Options{
		ChunkSize:     chunk,
		FaultInjector: in.PipelineInjector(faults.PipelinePlan{Front: faults.On(2, 5)}),
	})
	if err != nil {
		return err
	}
	defer d.Close()

	failed, retried := 0, 0
	for _, img := range images {
		committed := false
		for attempt := 0; attempt < 4 && !committed; attempt++ {
			ch, err := d.CheckpointAsync(img)
			if err != nil {
				if !errors.Is(err, faults.ErrInjected) {
					return err
				}
				retried++
				continue
			}
			if res := <-ch; res.Err != nil {
				return res.Err
			}
			committed = true
		}
		if !committed {
			failed++
		}
	}
	ops := len(images)
	outcome := "byte-exact"
	if err := verifyRecord(d.Record(), images, 0); err != nil {
		outcome = err.Error()
	}
	t.Add("pipeline (kernel faults)",
		fmt.Sprintf("%d", ops),
		fmt.Sprintf("%d", len(in.Trace())),
		fmt.Sprintf("%d (retried %d)", ops-failed, retried),
		fmt.Sprintf("%d", failed),
		outcome)
	if failed > 0 {
		return fmt.Errorf("%d checkpoints never committed", failed)
	}
	return nil
}

func verifyRecord(rec interface {
	Restore(int) ([]byte, error)
}, images [][]byte, base int) error {
	for k := base; k < len(images); k++ {
		got, err := rec.Restore(k)
		if err != nil {
			return fmt.Errorf("restore %d: %v", k, err)
		}
		if !bytes.Equal(got, images[k]) {
			return fmt.Errorf("restore %d diverges", k)
		}
	}
	return nil
}

func verifyDir(dir string, images [][]byte) error {
	fs, err := checkpoint.NewFileStore(dir)
	if err != nil {
		return err
	}
	defer fs.Close()
	rec, err := fs.Load()
	if err != nil {
		return err
	}
	if rec.Len() != len(images) {
		return fmt.Errorf("store holds %d checkpoints, want %d", rec.Len(), len(images))
	}
	return verifyRecord(rec, images, 0)
}
