package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net"
	"os"
	"path/filepath"
	"time"

	gpuckpt "github.com/gpuckpt/gpuckpt"
	"github.com/gpuckpt/gpuckpt/internal/experiments"
	"github.com/gpuckpt/gpuckpt/internal/metrics"
	"github.com/gpuckpt/gpuckpt/internal/server"
)

// healExperiment measures anti-entropy repair end to end: two peered
// ckptd replicas hold the same checkpoint chain, a quarter of the
// diffs on one replica are bit-rotted on disk, and both daemons are
// started with the background reconciler pointed at each other. The
// numbers that matter:
//
//   - heal wall: replica start to full convergence (every rotten diff
//     quarantined, re-pulled from the healthy peer, verified and
//     reinstalled, zero quarantines left) — the window during which a
//     client restore through the damaged span would fail;
//   - heal throughput: verified bytes refetched per second of wall,
//     the capacity number for sizing anti-entropy against rot rates;
//   - digest rounds: how many reconciliation passes convergence took.
//
// The run fails unless the damaged replica converges inside
// healMaxConverge, restores its full chain byte-exactly afterwards,
// no lineage fail-stopped (the rot is one-sided, so it is healable by
// construction), and the healthy peer healed nothing (repair is
// pull-only; damage must never propagate) — the gate `make
// bench-heal` and the CI heal-smoke lean on.
func healExperiment(cfg experiments.Config, chain int, jsonPath string) (*metrics.Table, error) {
	if chain < 4 {
		return nil, fmt.Errorf("-chain must be >= 4, got %d", chain)
	}
	const bufLen = 256 << 10
	chunk := cfg.ChunkSize
	if chunk <= 0 {
		chunk = 128
	}

	ck, err := gpuckpt.New(gpuckpt.Config{
		Method: gpuckpt.MethodTree, ChunkSize: chunk, Workers: cfg.Workers,
	}, bufLen)
	if err != nil {
		return nil, err
	}
	defer ck.Close()

	// Build the chain once, offline.
	rng := rand.New(rand.NewSource(cfg.Seed))
	buf := make([]byte, bufLen)
	rng.Read(buf)
	encoded := make([][]byte, chain)
	for k := 0; k < chain; k++ {
		if k > 0 {
			for s := 0; s < 8; s++ {
				off := rng.Intn(bufLen - 64)
				rng.Read(buf[off : off+64])
			}
		}
		if _, err := ck.Checkpoint(buf); err != nil {
			return nil, err
		}
		var bb bytes.Buffer
		if err := ck.WriteDiff(k, &bb); err != nil {
			return nil, err
		}
		encoded[k] = append([]byte(nil), bb.Bytes()...)
	}
	want, err := ck.RestoreLatest()
	if err != nil {
		return nil, err
	}

	rootA, err := benchTempDir("ckptbench-heal-a-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(rootA)
	rootB, err := benchTempDir("ckptbench-heal-b-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(rootB)

	silent := func(string, ...any) {}
	start := func(cfg server.Config, ln net.Listener) (*server.Server, func(), error) {
		cfg.Logf = silent
		srv, err := server.New(cfg)
		if err != nil {
			return nil, nil, err
		}
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan error, 1)
		go func() { done <- srv.Serve(ctx, ln) }()
		stop := func() {
			cancel()
			<-done
			srv.Close()
		}
		return srv, stop, nil
	}

	// Seed both replicas, then stop the seeders so the rot can be
	// injected under the servers' feet.
	lnA, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	lnB, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	addrA, addrB := lnA.Addr().String(), lnB.Addr().String()
	seed := func(cfg server.Config, ln net.Listener, addr string) error {
		_, stop, err := start(cfg, ln)
		if err != nil {
			return err
		}
		defer stop()
		cl, err := gpuckpt.Dial(addr, 30*time.Second)
		if err != nil {
			return err
		}
		defer cl.Close()
		for k, enc := range encoded {
			if err := cl.Push("heal", k, enc); err != nil {
				return fmt.Errorf("seed push %d: %w", k, err)
			}
		}
		return nil
	}
	if err := seed(server.Config{Root: rootA}, lnA, addrA); err != nil {
		return nil, err
	}
	if err := seed(server.Config{Root: rootB}, lnB, addrB); err != nil {
		return nil, err
	}

	// Bit-rot a quarter of A's stored diffs, spread across the span so
	// the bisection has real work.
	rotted := chain / 4
	if rotted < 1 {
		rotted = 1
	}
	stride := chain / rotted
	for i := 0; i < rotted; i++ {
		path := filepath.Join(rootA, "heal", fmt.Sprintf("ckpt-%06d.gckp", i*stride))
		raw, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		bit := rng.Intn(len(raw) * 8)
		raw[bit/8] ^= 1 << (bit % 8)
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			return nil, err
		}
	}

	// Restart the pair peered at each other and let anti-entropy run.
	lnA2, err := net.Listen("tcp", addrA)
	if err != nil {
		return nil, err
	}
	lnB2, err := net.Listen("tcp", addrB)
	if err != nil {
		return nil, err
	}
	const interval = 10 * time.Millisecond
	tStart := time.Now()
	srvA, stopA, err := start(server.Config{
		Root: rootA, Peers: []string{addrB}, AntiEntropyInterval: interval,
	}, lnA2)
	if err != nil {
		return nil, err
	}
	defer stopA()
	srvB, stopB, err := start(server.Config{
		Root: rootB, Peers: []string{addrA}, AntiEntropyInterval: interval,
	}, lnB2)
	if err != nil {
		return nil, err
	}
	defer stopB()

	var healWall time.Duration
	for {
		st := srvA.Stats()
		if st.SpansHealed >= uint64(rotted) && st.Quarantined == 0 {
			healWall = time.Since(tStart)
			break
		}
		if time.Since(tStart) > healMaxConverge {
			return nil, fmt.Errorf("no convergence after %s: stats %+v", healMaxConverge, st)
		}
		time.Sleep(time.Millisecond)
	}
	stA, stB := srvA.Stats(), srvB.Stats()
	if stA.HealQuarantines != 0 || stB.HealQuarantines != 0 {
		return nil, fmt.Errorf("one-sided rot fail-stopped a lineage (A=%d B=%d)",
			stA.HealQuarantines, stB.HealQuarantines)
	}
	if stB.SpansHealed != 0 {
		return nil, fmt.Errorf("healthy peer healed %d spans: damage propagated", stB.SpansHealed)
	}

	// The healed replica serves the full chain byte-exactly.
	cl, err := gpuckpt.Dial(addrA, 30*time.Second)
	if err != nil {
		return nil, err
	}
	defer cl.Close()
	pulled, err := cl.Pull("heal")
	if err != nil {
		return nil, fmt.Errorf("pull after heal: %w", err)
	}
	got, err := pulled.Restore(chain - 1)
	if err != nil {
		return nil, fmt.Errorf("restore after heal: %w", err)
	}
	if !bytes.Equal(got, want) {
		return nil, fmt.Errorf("healed replica diverges from the pushed chain")
	}

	throughput := float64(stA.BytesRefetched) / healWall.Seconds()
	t := metrics.NewTable(
		fmt.Sprintf("heal: %d-diff chain, %d diffs rotted, 2-replica anti-entropy", chain, rotted),
		"chain", "rotted", "heal wall", "refetched", "throughput", "rounds", "state")
	t.Add(fmt.Sprint(chain), fmt.Sprint(rotted),
		healWall.Round(time.Microsecond).String(),
		fmt.Sprintf("%d B", stA.BytesRefetched),
		fmt.Sprintf("%.1f MB/s", throughput/1e6),
		fmt.Sprint(stA.DigestRounds), "byte-exact")

	if jsonPath != "" {
		out := struct {
			Note              string  `json:"note"`
			Chain             int     `json:"chain"`
			Rotted            int     `json:"rotted_diffs"`
			ChunkSize         int     `json:"chunk_size"`
			BufLen            int     `json:"buf_len"`
			HealWallNs        int64   `json:"heal_wall_ns"`
			SpansHealed       uint64  `json:"spans_healed"`
			BytesRefetched    uint64  `json:"bytes_refetched"`
			ThroughputBps     float64 `json:"heal_throughput_bytes_per_s"`
			DigestRounds      uint64  `json:"digest_rounds"`
			HealQuarantines   uint64  `json:"heal_quarantines"`
			PeerSpansHealed   uint64  `json:"healthy_peer_spans_healed"`
			AntiEntropyPollMs int64   `json:"anti_entropy_interval_ms"`
		}{
			Note: "two peered ckptd replicas, one bit-rotted, background anti-entropy " +
				"convergence over loopback; regenerate with `make bench-heal`",
			Chain: chain, Rotted: rotted, ChunkSize: chunk, BufLen: bufLen,
			HealWallNs: healWall.Nanoseconds(), SpansHealed: stA.SpansHealed,
			BytesRefetched: stA.BytesRefetched, ThroughputBps: throughput,
			DigestRounds: stA.DigestRounds, HealQuarantines: stA.HealQuarantines,
			PeerSpansHealed: stB.SpansHealed, AntiEntropyPollMs: interval.Milliseconds(),
		}
		b, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			return nil, err
		}
		if err := os.WriteFile(jsonPath, append(b, '\n'), 0o644); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// healMaxConverge is the convergence gate: replica start to a fully
// healed, quarantine-free span. Loopback pulls of a quarter of the
// chain are milliseconds of work; the budget absorbs loaded CI hosts.
const healMaxConverge = 30 * time.Second
