// Command ckptd is the networked checkpoint daemon: it hosts many
// named checkpoint lineages (one FileStore directory per lineage under
// -root) behind the framed TCP protocol of internal/wire, so that many
// concurrent writers can drain incremental diffs into one storage
// service — the paper's §2.3 shared parallel-file-system endpoint as a
// Go service.
//
// Usage:
//
//	ckptd -listen :9090 -root /var/lib/ckptd
//
// Push lineages with the gpuckpt.Client (Dial/Push/Pull/List/Stats)
// and restore them remotely with `restoretool -remote host:9090
// -lineage name`. The daemon shuts down gracefully on SIGINT/SIGTERM:
// it stops accepting, drains in-flight requests, then exits.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/gpuckpt/gpuckpt/internal/server"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ckptd:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("ckptd", flag.ContinueOnError)
	var (
		listen       = fs.String("listen", ":9090", "TCP listen address")
		root         = fs.String("root", "", "directory holding one sub-directory per lineage (required)")
		maxConns     = fs.Int("max-conns", 64, "maximum concurrently served connections")
		maxPayload   = fs.Uint("max-payload", 0, "maximum frame payload bytes (0 = default 256 MiB)")
		readTimeout  = fs.Duration("read-timeout", 30*time.Second, "per-request read deadline")
		writeTimeout = fs.Duration("write-timeout", 30*time.Second, "per-response write deadline")
		drainTimeout = fs.Duration("drain-timeout", 5*time.Second, "shutdown drain budget for in-flight requests")
		quiet        = fs.Bool("quiet", false, "suppress per-connection logging")
		retention    = fs.String("retention", "keep-all", "default retention policy per lineage: keep-all, keep-last=N, or keep-every=K")
		compactEvery = fs.Duration("compact-interval", 0, "background compaction sweep interval (0 disables; compaction then runs only on client request)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *root == "" {
		return fmt.Errorf("-root is required")
	}

	cfg := server.Config{
		Root:            *root,
		MaxConns:        *maxConns,
		MaxPayload:      uint32(*maxPayload),
		ReadTimeout:     *readTimeout,
		WriteTimeout:    *writeTimeout,
		DrainTimeout:    *drainTimeout,
		Retention:       *retention,
		CompactInterval: *compactEvery,
	}
	if *quiet {
		cfg.Logf = func(string, ...any) {}
	} else {
		cfg.Logf = log.Printf
	}

	srv, err := server.New(cfg)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	// The resolved address (meaningful with ":0") goes to stdout so
	// scripts and tests can discover the port.
	fmt.Fprintf(stdout, "ckptd: listening on %s (root %s)\n", ln.Addr(), *root)
	err = srv.Serve(ctx, ln)
	if cerr := srv.Close(); cerr != nil && err == nil {
		err = cerr
	}
	fmt.Fprintln(stdout, "ckptd: shut down")
	return err
}
