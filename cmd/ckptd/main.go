// Command ckptd is the networked checkpoint daemon: it hosts many
// named checkpoint lineages (one FileStore directory per lineage under
// -root) behind the framed TCP protocol of internal/wire, so that many
// concurrent writers can drain incremental diffs into one storage
// service — the paper's §2.3 shared parallel-file-system endpoint as a
// Go service.
//
// Usage:
//
//	ckptd -listen :9090 -root /var/lib/ckptd
//
// Push lineages with the gpuckpt.Client (Dial/Push/Pull/List/Stats)
// and restore them remotely with `restoretool -remote host:9090
// -lineage name`. The daemon shuts down gracefully on SIGINT/SIGTERM:
// it stops accepting, drains in-flight requests, then exits.
//
// # Hot standby
//
//	ckptd -listen :9091 -root /var/lib/ckptd-standby \
//	      -follow primary:9090 -failover-after 3s
//
// With -follow the daemon runs as a live replica instead of a
// primary: it discovers the primary's lineages, tails each one's diff
// stream (wire v5 subscription, poll fallback on v4), and mirrors
// them under -root. When the primary stays unreachable for
// -failover-after (0 disables automatic promotion), the standby
// promotes: replication stops, and the same process starts serving
// the mirrored root on -listen. Promotion applies no diffs — every
// mirror is kept serving-ready while the primary is alive.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/gpuckpt/gpuckpt/internal/server"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ckptd:", err)
		os.Exit(1)
	}
}

// splitPeers parses the -peers flag: comma-separated addresses,
// empty entries dropped.
func splitPeers(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func run(ctx context.Context, args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("ckptd", flag.ContinueOnError)
	var (
		listen       = fs.String("listen", ":9090", "TCP listen address")
		root         = fs.String("root", "", "directory holding one sub-directory per lineage (required)")
		maxConns     = fs.Int("max-conns", 64, "maximum concurrently served connections")
		maxPayload   = fs.Uint("max-payload", 0, "maximum frame payload bytes (0 = default 256 MiB)")
		readTimeout  = fs.Duration("read-timeout", 30*time.Second, "per-request read deadline")
		writeTimeout = fs.Duration("write-timeout", 30*time.Second, "per-response write deadline")
		drainTimeout = fs.Duration("drain-timeout", 5*time.Second, "shutdown drain budget for in-flight requests")
		quiet        = fs.Bool("quiet", false, "suppress per-connection logging")
		retention    = fs.String("retention", "keep-all", "default retention policy per lineage: keep-all, keep-last=N, or keep-every=K")
		compactEvery = fs.Duration("compact-interval", 0, "background compaction sweep interval (0 disables; compaction then runs only on client request)")
		follow       = fs.String("follow", "", "run as hot standby of the primary at this address (mirrors its lineages under -root)")
		followRescan = fs.Duration("follow-rescan", 2*time.Second, "standby mode: how often to rediscover the primary's lineages")
		failAfter    = fs.Duration("failover-after", 3*time.Second, "standby mode: promote after the primary has been unreachable this long (0 = never promote automatically)")
		peers        = fs.String("peers", "", "comma-separated replica addresses to reconcile against (anti-entropy)")
		aeInterval   = fs.Duration("anti-entropy-interval", 5*time.Second, "cadence of anti-entropy digest rounds against each peer")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *root == "" {
		return fmt.Errorf("-root is required")
	}

	cfg := server.Config{
		Root:                *root,
		MaxConns:            *maxConns,
		MaxPayload:          uint32(*maxPayload),
		ReadTimeout:         *readTimeout,
		WriteTimeout:        *writeTimeout,
		DrainTimeout:        *drainTimeout,
		Retention:           *retention,
		CompactInterval:     *compactEvery,
		Peers:               splitPeers(*peers),
		AntiEntropyInterval: *aeInterval,
	}
	if *quiet {
		cfg.Logf = func(string, ...any) {}
	} else {
		cfg.Logf = log.Printf
	}

	if *follow != "" {
		return runStandby(ctx, stdout, standbyConfig{
			primary:   *follow,
			listen:    *listen,
			rescan:    *followRescan,
			failAfter: *failAfter,
			server:    cfg,
		})
	}

	srv, err := server.New(cfg)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	// The resolved address (meaningful with ":0") goes to stdout so
	// scripts and tests can discover the port.
	fmt.Fprintf(stdout, "ckptd: listening on %s (root %s)\n", ln.Addr(), *root)
	err = srv.Serve(ctx, ln)
	if cerr := srv.Close(); cerr != nil && err == nil {
		err = cerr
	}
	fmt.Fprintln(stdout, "ckptd: shut down")
	return err
}
