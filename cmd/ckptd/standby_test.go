package main

import (
	"bufio"
	"bytes"
	"context"
	"io"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"
	"time"

	gpuckpt "github.com/gpuckpt/gpuckpt"
)

// standbyDaemon runs ckptd in -follow mode and returns a channel of
// its stdout lines (fed by a single reader goroutine, closed on EOF)
// plus the shutdown func.
func standbyDaemon(t *testing.T, args []string) (<-chan string, func()) {
	t.Helper()
	pr, pw := io.Pipe()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		err := run(ctx, args, pw)
		pw.Close()
		done <- err
	}()
	lines := make(chan string, 64)
	go func() {
		defer close(lines)
		br := bufio.NewReader(pr)
		for {
			line, err := br.ReadString('\n')
			if line != "" {
				lines <- line
			}
			if err != nil {
				return
			}
		}
	}()
	return lines, func() {
		cancel()
		go io.Copy(io.Discard, pr)
		if err := <-done; err != nil {
			t.Errorf("standby run returned %v", err)
		}
	}
}

// waitLine drains daemon stdout until a line containing marker appears.
func waitLine(t *testing.T, lines <-chan string, marker string) string {
	t.Helper()
	deadline := time.After(15 * time.Second)
	var seen []string
	for {
		select {
		case line, ok := <-lines:
			if !ok {
				t.Fatalf("daemon stdout closed before %q; saw %q", marker, seen)
			}
			seen = append(seen, line)
			if strings.Contains(line, marker) {
				return line
			}
		case <-deadline:
			t.Fatalf("no %q line within deadline; saw %q", marker, seen)
		}
	}
}

// TestStandbyFailover is the daemon-level failover path: a standby
// mirrors a primary's lineage, the primary dies, the standby promotes
// itself, and a client pulling from the promoted address restores
// every checkpoint byte-exactly.
func TestStandbyFailover(t *testing.T) {
	primaryRoot, standbyRoot := t.TempDir(), t.TempDir()
	primaryAddr, stopPrimary := startDaemon(t, []string{
		"-listen", "127.0.0.1:0", "-root", primaryRoot, "-quiet"})

	// Seed the primary with a deterministic chain.
	const chain = 5
	rng := rand.New(rand.NewSource(42))
	images := make([][]byte, chain)
	img := make([]byte, 2048)
	rng.Read(img)
	ck, err := gpuckpt.New(gpuckpt.Config{Method: gpuckpt.MethodTree, ChunkSize: 128}, len(img))
	if err != nil {
		t.Fatal(err)
	}
	defer ck.Close()
	for i := range images {
		if i > 0 {
			off := rng.Intn(len(img) - 64)
			rng.Read(img[off : off+64])
		}
		images[i] = append([]byte(nil), img...)
		if _, err := ck.Checkpoint(img); err != nil {
			t.Fatal(err)
		}
	}
	cl, err := gpuckpt.Dial(primaryAddr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.PushCheckpointer("job", ck); err != nil {
		t.Fatal(err)
	}
	cl.Close()

	lines, stopStandby := standbyDaemon(t, []string{
		"-listen", "127.0.0.1:0", "-root", standbyRoot, "-quiet",
		"-follow", primaryAddr,
		"-follow-rescan", "50ms",
		"-failover-after", "300ms"})
	defer stopStandby()
	waitLine(t, lines, `following lineage "job"`)

	// Wait for the mirror to hold the whole chain before the kill.
	mirrorReady := func() bool {
		files, _ := filepath.Glob(filepath.Join(standbyRoot, "job", "ckpt-*.gckp"))
		return len(files) == chain
	}
	deadline := time.Now().Add(10 * time.Second)
	for !mirrorReady() && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if !mirrorReady() {
		t.Fatal("mirror never converged before the kill")
	}

	stopPrimary()
	line := waitLine(t, lines, "promoted: listening on ")
	fields := strings.Fields(line[strings.Index(line, "listening on ")+len("listening on "):])
	promotedAddr := fields[0]

	clean, err := gpuckpt.Dial(promotedAddr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer clean.Close()
	rec, err := clean.Pull("job")
	if err != nil {
		t.Fatal(err)
	}
	if rec.Len() != chain {
		t.Fatalf("promoted server holds %d checkpoints, want %d", rec.Len(), chain)
	}
	for k := range images {
		got, err := rec.Restore(k)
		if err != nil {
			t.Fatalf("restore %d from promoted server: %v", k, err)
		}
		if !bytes.Equal(got, images[k]) {
			t.Fatalf("restore %d diverges after failover", k)
		}
	}
}
