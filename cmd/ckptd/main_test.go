package main

import (
	"bufio"
	"context"
	"io"
	"strings"
	"testing"
	"time"

	gpuckpt "github.com/gpuckpt/gpuckpt"
)

// startDaemon runs the ckptd entrypoint on an ephemeral port and
// returns the resolved listen address.
func startDaemon(t *testing.T, args []string) (string, func()) {
	t.Helper()
	pr, pw := io.Pipe()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		err := run(ctx, args, pw)
		pw.Close()
		done <- err
	}()

	// The first stdout line announces the resolved address.
	line, err := bufio.NewReader(pr).ReadString('\n')
	if err != nil {
		cancel()
		t.Fatalf("no startup line: %v (run: %v)", err, <-done)
	}
	const marker = "listening on "
	i := strings.Index(line, marker)
	if i < 0 {
		cancel()
		t.Fatalf("unexpected startup line %q", line)
	}
	addr := strings.Fields(line[i+len(marker):])[0]
	return addr, func() {
		cancel()
		go io.Copy(io.Discard, pr) // drain the shutdown message
		if err := <-done; err != nil {
			t.Errorf("run returned %v", err)
		}
	}
}

func TestCkptdServesClients(t *testing.T) {
	addr, stop := startDaemon(t, []string{"-listen", "127.0.0.1:0", "-root", t.TempDir(), "-quiet"})
	defer stop()

	cl, err := gpuckpt.Dial(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if n, err := cl.Len("lineage"); err != nil || n != 0 {
		t.Fatalf("len: %d %v", n, err)
	}
	st, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Requests == 0 || st.ActiveConns != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestCkptdFlagValidation(t *testing.T) {
	if err := run(context.Background(), []string{"-listen", "127.0.0.1:0"}, io.Discard); err == nil {
		t.Fatal("missing -root accepted")
	}
	if err := run(context.Background(), []string{"-bogus"}, io.Discard); err == nil {
		t.Fatal("unknown flag accepted")
	}
}

func TestCkptdGracefulShutdown(t *testing.T) {
	addr, stop := startDaemon(t, []string{"-listen", "127.0.0.1:0", "-root", t.TempDir(), "-quiet",
		"-drain-timeout", "500ms"})
	cl, err := gpuckpt.Dial(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Stats(); err != nil {
		t.Fatal(err)
	}
	cl.Close()
	stop() // must return promptly, not hang
}
