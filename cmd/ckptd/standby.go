// Standby mode: ckptd as a live replica of another ckptd. The daemon
// discovers the primary's lineages, runs one follower per lineage
// (each mirroring into the same per-lineage directory layout a primary
// uses), and — when the primary stays unreachable past the configured
// grace — promotes: every follower's serving-ready state is sealed,
// the mirrors are handed to a regular server, and the process starts
// listening. Promotion replays nothing; the followers kept every
// lineage applied to its newest checkpoint while the primary lived.
package main

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"path/filepath"
	"sync"
	"time"

	"github.com/gpuckpt/gpuckpt/internal/follower"
	"github.com/gpuckpt/gpuckpt/internal/server"
)

type standbyConfig struct {
	primary   string
	listen    string
	rescan    time.Duration
	failAfter time.Duration
	server    server.Config
}

// downProbe is the tightened discovery cadence while the primary is
// unreachable: failover latency is bounded by failAfter + downProbe,
// not failAfter + rescan.
const downProbe = 100 * time.Millisecond

func runStandby(ctx context.Context, stdout io.Writer, cfg standbyConfig) error {
	logf := cfg.server.Logf
	fmt.Fprintf(stdout, "ckptd: standby of %s (root %s)\n", cfg.primary, cfg.server.Root)

	fctx, fcancel := context.WithCancel(context.Background())
	defer fcancel()
	var (
		wg        sync.WaitGroup
		followers = map[string]*follower.Follower{}
		order     []string // deterministic promote/close order
		downSince time.Time
	)
	// stopReplication ends every follower's Run loop and joins them;
	// the followers themselves stay open for Promote/Close.
	stopReplication := func() {
		fcancel()
		wg.Wait()
	}
	closeAll := func() {
		for _, name := range order {
			if err := followers[name].Close(); err != nil {
				logf("ckptd: standby: closing follower %q: %v", name, err)
			}
		}
	}

	// The standby runs its own anti-entropy against the primary: on
	// the configured cadence each follower scans its mirror for
	// on-disk rot and re-pulls damaged diffs. Replication converges
	// the suffix; Heal converges bytes that rotted after they arrived.
	healEvery := cfg.server.AntiEntropyInterval
	if healEvery <= 0 {
		healEvery = 5 * time.Second
	}
	var lastHeal time.Time

	promote := false
	for !promote {
		infos, err := follower.Lineages(cfg.primary, cfg.server.ReadTimeout, nil)
		switch {
		case err != nil:
			if downSince.IsZero() {
				downSince = time.Now()
				logf("ckptd: standby: primary unreachable: %v", err)
			}
			if cfg.failAfter > 0 && time.Since(downSince) >= cfg.failAfter {
				promote = true
				continue
			}
		default:
			downSince = time.Time{}
			for _, info := range infos {
				if _, ok := followers[info.Name]; ok {
					continue
				}
				fl, ferr := follower.New(follower.Options{
					Addr:    cfg.primary,
					Lineage: info.Name,
					Dir:     filepath.Join(cfg.server.Root, info.Name),
					Logf:    logf,
				})
				if ferr != nil {
					logf("ckptd: standby: cannot follow %q: %v", info.Name, ferr)
					continue
				}
				followers[info.Name] = fl
				order = append(order, info.Name)
				fmt.Fprintf(stdout, "ckptd: following lineage %q\n", info.Name)
				wg.Add(1)
				go func(fl *follower.Follower) {
					defer wg.Done()
					fl.Run(fctx)
				}(fl)
			}
			if time.Since(lastHeal) >= healEvery {
				lastHeal = time.Now()
				for _, name := range order {
					if healed, herr := followers[name].Heal(); herr != nil {
						logf("ckptd: standby: healing %q: %v", name, herr)
					} else if healed > 0 {
						logf("ckptd: standby: healed %d rotten diff(s) in %q", healed, name)
					}
				}
			}
		}
		wait := cfg.rescan
		if !downSince.IsZero() {
			wait = downProbe
		}
		timer := time.NewTimer(wait)
		select {
		case <-ctx.Done():
			timer.Stop()
			stopReplication()
			closeAll()
			fmt.Fprintln(stdout, "ckptd: standby shut down")
			return nil
		case <-timer.C:
		}
	}

	// Promotion: seal every mirror, then serve the root. The followers
	// must be closed before the server opens the same directories.
	stopReplication()
	for _, name := range order {
		fl := followers[name]
		p, err := fl.Promote()
		switch {
		case errors.Is(err, follower.ErrMirrorCorrupt):
			// The mirror rotted while the standby idled and the primary
			// is gone, so it cannot be healed. Refuse the whole
			// promotion rather than serve a lineage whose bytes no
			// longer verify — fail-stop, never silent corruption.
			closeAll()
			return fmt.Errorf("refusing promotion: %w", err)
		case err != nil:
			logf("ckptd: standby: promoting %q: %v", name, err)
		default:
			fmt.Fprintf(stdout, "ckptd: promoted lineage %q [%d,%d)\n", name, p.Base, p.Len)
		}
	}
	closeAll()

	srv, err := server.New(cfg.server)
	if err != nil {
		return fmt.Errorf("promoted server: %w", err)
	}
	ln, err := net.Listen("tcp", cfg.listen)
	if err != nil {
		srv.Close()
		return err
	}
	fmt.Fprintf(stdout, "ckptd: promoted: listening on %s (root %s)\n", ln.Addr(), cfg.server.Root)
	err = srv.Serve(ctx, ln)
	if cerr := srv.Close(); cerr != nil && err == nil {
		err = cerr
	}
	fmt.Fprintln(stdout, "ckptd: shut down")
	return err
}
