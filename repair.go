package gpuckpt

import (
	"bytes"
	"fmt"
	"math"
	"sort"

	"github.com/gpuckpt/gpuckpt/internal/antientropy"
	"github.com/gpuckpt/gpuckpt/internal/checkpoint"
	"github.com/gpuckpt/gpuckpt/internal/wire"
)

// RepairReport summarizes a ScrubDir or Client.Repair pass over a
// local checkpoint store.
type RepairReport struct {
	// Checked is how many stored diffs were read and verified.
	Checked int
	// Corrupt lists the absolute checkpoint ids that failed
	// verification and were quarantined.
	Corrupt []int
	// Repaired lists the quarantined ids that were refetched from the
	// server and reinstalled; on a successful repair it equals Corrupt.
	Repaired []int
	// Unverified lists legacy footer-less diffs that decoded cleanly
	// but carry no checksum.
	Unverified []int
}

// OK reports whether the store ended the pass fully verified: nothing
// corrupt, or everything corrupt repaired.
func (r *RepairReport) OK() bool { return len(r.Corrupt) == len(r.Repaired) }

// ScrubDir verifies every diff in the checkpoint directory dir:
// checksum footers, structural decode, id-vs-filename agreement.
// Corrupt files are quarantined (renamed aside, removed from the
// restorable range) but not repaired — use Client.Repair to refetch
// them from a ckptd server holding the same lineage.
func ScrubDir(dir string) (*RepairReport, error) {
	fs, err := checkpoint.NewFileStore(dir)
	if err != nil {
		return nil, err
	}
	defer fs.Close()
	sr, err := fs.Scrub()
	if err != nil {
		return nil, err
	}
	return &RepairReport{Checked: sr.Checked, Corrupt: sr.Corrupt, Unverified: sr.Unverified}, nil
}

// clientPeer adapts a *Client into the reconciler's Peer view of the
// server: digests ride TDigest, pulls ride TPull, both under the
// client's pooling and retry policy.
type clientPeer struct{ c *Client }

func (p *clientPeer) Addr() string { return p.c.addr }

func (p *clientPeer) Digest(name string, q wire.DigestReq) (wire.DigestResp, error) {
	d, err := p.c.Digest(name, int(q.Lo), int(q.Hi), q.Detail)
	if err != nil {
		return wire.DigestResp{}, err
	}
	if d.Len > math.MaxUint32 {
		return wire.DigestResp{}, fmt.Errorf("gpuckpt: digest length %d overflows the wire form", d.Len)
	}
	return wire.DigestResp{
		Base:       uint32(d.Base),
		Len:        uint32(d.Len),
		Generation: d.Generation,
		CRC:        d.CRC,
		Root:       d.Root,
		SpanLo:     uint32(d.SpanLo),
		SpanHi:     uint32(d.SpanHi),
		Detail:     d.Detail,
	}, nil
}

func (p *clientPeer) Pull(name string, ck int) ([]byte, error) { return p.c.PullDiff(name, ck) }

func (p *clientPeer) Close() error { return nil }

// Repair converges the local checkpoint directory dir with the
// server's lineage name — the recovery path for bit rot on a node's
// local store when a ckptd peer holds a replica. It runs one
// anti-entropy reconciliation round (internal/antientropy, the same
// machinery ckptd peers use continuously): scrub and quarantine local
// rot, refill quarantine holes from the server, pull any missing
// suffix, and bisect span digests down to whatever damage the scrub's
// footer check cannot see. Every refetched diff is verified before it
// is reinstalled; after a full repair every restore is byte-exact
// again. A local diff that verifies but disagrees with the server's
// equally-verified copy is divergence and comes back as an error
// matching antientropy.ErrDiverged — Repair never overwrites good
// local data with conflicting server data.
//
// Against a server predating wire v6 digests, Repair degrades to the
// scrub-and-refetch pass over the locally detected damage alone.
//
// Repair returns the report even when some diffs could not be
// repaired (server missing the lineage, id compacted away); the error
// then describes the first failure and report.OK() is false.
func (c *Client) Repair(dir, name string) (*RepairReport, error) {
	fs, err := checkpoint.NewFileStore(dir)
	if err != nil {
		return nil, err
	}
	defer fs.Close()
	sr, err := fs.Scrub()
	if err != nil {
		return nil, err
	}
	quarantined, err := fs.QuarantinedIDs()
	if err != nil {
		return nil, err
	}
	seen := make(map[int]bool, len(sr.Corrupt)+len(quarantined))
	broken := make([]int, 0, len(sr.Corrupt)+len(quarantined))
	for _, ck := range append(append([]int(nil), sr.Corrupt...), quarantined...) {
		if !seen[ck] {
			seen[ck] = true
			broken = append(broken, ck)
		}
	}
	sort.Ints(broken)
	rep := &RepairReport{Checked: sr.Checked, Corrupt: broken, Unverified: sr.Unverified}

	rec, err := antientropy.NewReconciler(antientropy.Config{
		Lineage: name,
		Store:   fs,
		Peer:    &clientPeer{c: c},
	})
	if err != nil {
		return rep, err
	}
	res, roundErr := rec.Round()
	if roundErr == nil && res.Outcome == antientropy.OutcomeUnsupported {
		return c.repairLegacy(fs, rep, dir, name, broken)
	}
	// Repaired is whatever stopped being an open hole: the scrub's
	// damage list minus the quarantines still standing afterwards.
	still := map[int]bool{}
	if after, qerr := fs.QuarantinedIDs(); qerr == nil {
		for _, ck := range after {
			still[ck] = true
		}
	} else if roundErr == nil {
		roundErr = qerr
	}
	for _, ck := range broken {
		if !still[ck] {
			rep.Repaired = append(rep.Repaired, ck)
		}
	}
	if roundErr != nil {
		roundErr = fmt.Errorf("gpuckpt: repair %s: %w", dir, roundErr)
	}
	return rep, roundErr
}

// repairLegacy refetches the locally detected damage diff-by-diff —
// the pre-digest repair path, kept for servers without TDigest.
func (c *Client) repairLegacy(fs *checkpoint.FileStore, rep *RepairReport, dir, name string, broken []int) (*RepairReport, error) {
	var firstErr error
	for _, ck := range broken {
		b, err := c.PullDiff(name, ck)
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("gpuckpt: repair %s ckpt %d: %w", dir, ck, err)
			}
			continue
		}
		d, err := checkpoint.Decode(bytes.NewReader(b))
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("gpuckpt: repair %s ckpt %d: server bytes undecodable: %w", dir, ck, err)
			}
			continue
		}
		if int(d.CkptID) != ck {
			if firstErr == nil {
				firstErr = fmt.Errorf("gpuckpt: repair %s ckpt %d: server returned diff id %d", dir, ck, d.CkptID)
			}
			continue
		}
		if err := fs.ReinstallDiff(d); err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("gpuckpt: repair %s ckpt %d: %w", dir, ck, err)
			}
			continue
		}
		if err := fs.ClearQuarantine(ck); err != nil && firstErr == nil {
			firstErr = err
		}
		rep.Repaired = append(rep.Repaired, ck)
	}
	return rep, firstErr
}
