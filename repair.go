package gpuckpt

import (
	"bytes"
	"fmt"
	"sort"

	"github.com/gpuckpt/gpuckpt/internal/checkpoint"
)

// RepairReport summarizes a ScrubDir or Client.Repair pass over a
// local checkpoint store.
type RepairReport struct {
	// Checked is how many stored diffs were read and verified.
	Checked int
	// Corrupt lists the absolute checkpoint ids that failed
	// verification and were quarantined.
	Corrupt []int
	// Repaired lists the quarantined ids that were refetched from the
	// server and reinstalled; on a successful repair it equals Corrupt.
	Repaired []int
	// Unverified lists legacy footer-less diffs that decoded cleanly
	// but carry no checksum.
	Unverified []int
}

// OK reports whether the store ended the pass fully verified: nothing
// corrupt, or everything corrupt repaired.
func (r *RepairReport) OK() bool { return len(r.Corrupt) == len(r.Repaired) }

// ScrubDir verifies every diff in the checkpoint directory dir:
// checksum footers, structural decode, id-vs-filename agreement.
// Corrupt files are quarantined (renamed aside, removed from the
// restorable range) but not repaired — use Client.Repair to refetch
// them from a ckptd server holding the same lineage.
func ScrubDir(dir string) (*RepairReport, error) {
	fs, err := checkpoint.NewFileStore(dir)
	if err != nil {
		return nil, err
	}
	defer fs.Close()
	sr, err := fs.Scrub()
	if err != nil {
		return nil, err
	}
	return &RepairReport{Checked: sr.Checked, Corrupt: sr.Corrupt, Unverified: sr.Unverified}, nil
}

// Repair scrubs the local checkpoint directory dir and refetches every
// quarantined diff from the server's lineage name — the recovery path
// for bit rot on a node's local store when a ckptd peer holds a
// replica. Diffs quarantined by an earlier scrub (this process or a
// previous one) are repaired too: their ids are recovered from the
// quarantine file names, since a quarantined diff is a hole the store's
// restorable range already shrank past. Each refetched diff is verified
// (the pull payload decodes and carries the expected checkpoint id)
// before it is reinstalled; after a full repair the store's restorable
// range is what it was before the corruption and every restore is
// byte-exact again.
//
// Repair returns the report even when some diffs could not be
// repaired (server missing the lineage, id compacted away); the error
// then describes the first failure and report.OK() is false.
func (c *Client) Repair(dir, name string) (*RepairReport, error) {
	fs, err := checkpoint.NewFileStore(dir)
	if err != nil {
		return nil, err
	}
	defer fs.Close()
	sr, err := fs.Scrub()
	if err != nil {
		return nil, err
	}
	quarantined, err := fs.QuarantinedIDs()
	if err != nil {
		return nil, err
	}
	seen := make(map[int]bool, len(sr.Corrupt)+len(quarantined))
	broken := make([]int, 0, len(sr.Corrupt)+len(quarantined))
	for _, ck := range append(append([]int(nil), sr.Corrupt...), quarantined...) {
		if !seen[ck] {
			seen[ck] = true
			broken = append(broken, ck)
		}
	}
	sort.Ints(broken)
	rep := &RepairReport{Checked: sr.Checked, Corrupt: broken, Unverified: sr.Unverified}
	var firstErr error
	for _, ck := range broken {
		b, err := c.PullDiff(name, ck)
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("gpuckpt: repair %s ckpt %d: %w", dir, ck, err)
			}
			continue
		}
		d, err := checkpoint.Decode(bytes.NewReader(b))
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("gpuckpt: repair %s ckpt %d: server bytes undecodable: %w", dir, ck, err)
			}
			continue
		}
		if int(d.CkptID) != ck {
			if firstErr == nil {
				firstErr = fmt.Errorf("gpuckpt: repair %s ckpt %d: server returned diff id %d", dir, ck, d.CkptID)
			}
			continue
		}
		if err := fs.ReinstallDiff(d); err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("gpuckpt: repair %s ckpt %d: %w", dir, ck, err)
			}
			continue
		}
		if err := fs.ClearQuarantine(ck); err != nil && firstErr == nil {
			firstErr = err
		}
		rep.Repaired = append(rep.Repaired, ck)
	}
	return rep, firstErr
}
