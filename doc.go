// Package gpuckpt is a scalable incremental-checkpointing library
// based on GPU-accelerated de-duplication, reproducing Tan et al.,
// "Scalable Incremental Checkpointing using GPU-Accelerated
// De-Duplication" (ICPP 2023).
//
// The core object is the Checkpointer: it owns the checkpoint record
// of one fixed-size application buffer and, for every Checkpoint call,
// produces a consolidated difference containing only the data never
// seen before in the record — de-duplicated at fine granularity across
// space (within the buffer) and time (across all previous checkpoints)
// — plus a compact Merkle-tree region metadata describing how to
// reassemble the buffer. Any checkpoint in the record can be restored
// bit-exactly.
//
// Four methods are available: the paper's Tree contribution and the
// Full/Basic/List baselines it is evaluated against. Kernels execute
// on a simulated GPU: the data-parallel algorithms run for real on a
// CPU worker pool while an A100-like analytical cost model accounts
// the modeled device time, making throughput results deterministic and
// reproducible (see DESIGN.md for the substitution rationale).
//
// A minimal session:
//
//	ck, err := gpuckpt.New(gpuckpt.Config{Method: gpuckpt.MethodTree, ChunkSize: 128}, len(buf))
//	if err != nil { ... }
//	defer ck.Close()
//	for step := 0; step < n; step++ {
//		mutate(buf)
//		res, err := ck.Checkpoint(buf)   // stores only the new bytes
//		if err != nil { ... }
//		log.Printf("ckpt %d: %s", res.CkptID, res)
//	}
//	state, err := ck.Restore(2)          // any checkpoint, bit-exact
//
// The package also exposes the paper's evaluation workload (the
// ORANGES graphlet-counting application over synthetic Table 1 input
// graphs) through BuildWorkloadSeries, so the examples and benchmarks
// are reproducible end to end.
//
// For remote storage, Client (Dial/Push/Pull/List/Stats) speaks to the
// ckptd checkpoint server (cmd/ckptd): many processes drain their
// diffs into one storage service over TCP and any machine can pull a
// lineage back and restore it bit-exactly — the networked form of the
// paper's §2.3 multi-level storage hierarchy. See the README section
// "Running the checkpoint server".
package gpuckpt
