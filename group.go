package gpuckpt

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"github.com/gpuckpt/gpuckpt/internal/blockstore"
	"github.com/gpuckpt/gpuckpt/internal/checkpoint"
	"github.com/gpuckpt/gpuckpt/internal/dedup"
	"github.com/gpuckpt/gpuckpt/internal/device"
	"github.com/gpuckpt/gpuckpt/internal/parallel"
)

// Group checkpoints several named buffers of one process together on a
// single simulated GPU — the usual shape of real applications, which
// protect multiple data structures per rank (the paper's processes
// checkpoint their GDV plus solver state). Every member keeps its own
// Merkle tree and historical record, but they share the device (and
// therefore the modeled clock, memory capacity and transfer
// contention).
//
// A Group is not safe for concurrent use.
type Group struct {
	cfg     Config
	dev     *device.Device
	members map[string]*groupMember
	order   []string
	ckpts   int
	closed  bool
	// blocks is the PersistDir's shared content-addressed block store,
	// opened once for all members when <PersistDir>/_blocks exists.
	// One handle serves every member store: the block store's journal
	// must never be open twice, and sharing is the point — identical
	// chunks across members are stored once.
	blocks *blockstore.Store
}

type groupMember struct {
	d     *dedup.Deduplicator
	store *checkpoint.FileStore
	size  int
}

// NewGroup creates an empty group. Config applies to every member;
// PersistDir, when set, receives one subdirectory per member.
func NewGroup(cfg Config) *Group {
	pool := parallel.NewPool(cfg.Workers)
	return &Group{
		cfg:     cfg,
		dev:     device.New(cfg.GPU.toParams(), pool, nil),
		members: make(map[string]*groupMember),
	}
}

// Protect registers a named buffer of exactly dataLen bytes. All
// members must be registered before the first Checkpoint.
func (g *Group) Protect(name string, dataLen int) error {
	if g.closed {
		return ErrGroupClosed
	}
	if name == "" {
		return fmt.Errorf("gpuckpt: empty member name")
	}
	if _, dup := g.members[name]; dup {
		return fmt.Errorf("gpuckpt: member %q already protected", name)
	}
	if g.ckpts > 0 {
		return fmt.Errorf("gpuckpt: cannot add member %q after the first checkpoint", name)
	}
	d, err := newDedup(g.cfg, dataLen, g.dev)
	if err != nil {
		return err
	}
	m := &groupMember{d: d, size: dataLen}
	if g.cfg.PersistDir != "" {
		if err := g.attachBlocks(); err != nil {
			d.Close()
			return err
		}
		store, err := checkpoint.NewFileStoreWith(filepath.Join(g.cfg.PersistDir, name), g.blocks)
		if err != nil {
			d.Close()
			return err
		}
		if n, err := store.Len(); err != nil {
			d.Close()
			return err
		} else if n != 0 {
			d.Close()
			return fmt.Errorf("gpuckpt: member dir for %q already holds %d diffs", name, n)
		}
		m.store = store
	}
	g.members[name] = m
	g.order = append(g.order, name)
	sort.Strings(g.order)
	return nil
}

// attachBlocks opens the group-wide block store when the PersistDir
// carries one, exactly once.
func (g *Group) attachBlocks() error {
	if g.blocks != nil {
		return nil
	}
	dir := filepath.Join(g.cfg.PersistDir, blockstore.DirName)
	fi, err := os.Stat(dir)
	if err != nil || !fi.IsDir() {
		return nil // self-contained member lineages
	}
	bs, err := blockstore.Open(dir, blockstore.Options{})
	if err != nil {
		return err
	}
	g.blocks = bs
	return nil
}

// Members lists the protected buffer names, sorted.
func (g *Group) Members() []string {
	out := make([]string, len(g.order))
	copy(out, g.order)
	return out
}

// ErrGroupClosed is returned by operations on a closed Group.
var ErrGroupClosed = fmt.Errorf("gpuckpt: group closed")

// GroupResult aggregates one group checkpoint.
type GroupResult struct {
	// CkptID is the group checkpoint index.
	CkptID int
	// PerMember holds each member's individual result.
	PerMember map[string]Result
	// InputBytes and StoredBytes are summed over members.
	InputBytes, StoredBytes int64
	// DedupTime and TransferTime are summed over members (they share
	// one GPU, so the phases serialize).
	DedupTime, TransferTime time.Duration
}

// Ratio returns the aggregate de-duplication ratio of this checkpoint.
func (r GroupResult) Ratio() float64 {
	if r.StoredBytes == 0 {
		return 0
	}
	return float64(r.InputBytes) / float64(r.StoredBytes)
}

// Checkpoint captures all members atomically-by-convention: buffers
// must contain exactly the registered names with their registered
// lengths.
func (g *Group) Checkpoint(buffers map[string][]byte) (GroupResult, error) {
	if g.closed {
		return GroupResult{}, ErrGroupClosed
	}
	if len(g.members) == 0 {
		return GroupResult{}, fmt.Errorf("gpuckpt: group has no members")
	}
	if len(buffers) != len(g.members) {
		return GroupResult{}, fmt.Errorf("gpuckpt: got %d buffers, group protects %d", len(buffers), len(g.members))
	}
	for name := range buffers {
		if _, ok := g.members[name]; !ok {
			return GroupResult{}, fmt.Errorf("gpuckpt: unknown member %q", name)
		}
	}
	res := GroupResult{CkptID: g.ckpts, PerMember: make(map[string]Result, len(g.members))}
	for _, name := range g.order {
		m := g.members[name]
		buf := buffers[name]
		diff, st, err := m.d.Checkpoint(buf)
		if err != nil {
			return GroupResult{}, fmt.Errorf("gpuckpt: member %q: %w", name, err)
		}
		if m.store != nil {
			if err := m.store.Append(diff); err != nil {
				return GroupResult{}, fmt.Errorf("gpuckpt: persisting member %q: %w", name, err)
			}
		}
		r := Result{
			CkptID:        st.CkptID,
			InputBytes:    st.InputBytes,
			StoredBytes:   st.DiffBytes,
			MetadataBytes: st.MetadataBytes,
			DataBytes:     st.DataBytes,
			FirstRegions:  st.NumFirstOcur,
			ShiftRegions:  st.NumShiftDupl,
			FixedChunks:   st.FixedLeaves,
			DedupTime:     st.DedupTime,
			TransferTime:  st.TransferTime,
		}
		res.PerMember[name] = r
		res.InputBytes += r.InputBytes
		res.StoredBytes += r.StoredBytes
		res.DedupTime += r.DedupTime
		res.TransferTime += r.TransferTime
	}
	g.ckpts++
	return res, nil
}

// NumCheckpoints returns the number of group checkpoints taken.
func (g *Group) NumCheckpoints() int { return g.ckpts }

// RecordBytes returns the total serialized size across all members.
func (g *Group) RecordBytes() int64 {
	var total int64
	for _, m := range g.members {
		total += m.d.Record().TotalBytes()
	}
	return total
}

// ModeledTime returns the cumulative modeled device time of the group.
func (g *Group) ModeledTime() time.Duration { return g.dev.Elapsed() }

// Restore reconstructs every member as of group checkpoint k.
func (g *Group) Restore(k int) (map[string][]byte, error) {
	if k < 0 || k >= g.ckpts {
		return nil, fmt.Errorf("gpuckpt: group checkpoint %d out of range [0,%d)", k, g.ckpts)
	}
	out := make(map[string][]byte, len(g.members))
	for _, name := range g.order {
		state, err := g.members[name].d.Restore(k)
		if err != nil {
			return nil, fmt.Errorf("gpuckpt: member %q: %w", name, err)
		}
		out[name] = state
	}
	return out, nil
}

// RestoreLatest reconstructs every member at the latest checkpoint.
func (g *Group) RestoreLatest() (map[string][]byte, error) {
	return g.Restore(g.ckpts - 1)
}

// Close releases the modeled device memory of every member and the
// shared block store, if one was attached.
func (g *Group) Close() {
	if g.closed {
		return
	}
	for _, m := range g.members {
		m.d.Close()
	}
	if g.blocks != nil {
		g.blocks.Close()
		g.blocks = nil
	}
	g.closed = true
}
