package gpuckpt

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"github.com/gpuckpt/gpuckpt/internal/checkpoint"
	"github.com/gpuckpt/gpuckpt/internal/wire"
)

// Client talks to a ckptd checkpoint server (cmd/ckptd): it pushes
// encoded diffs into named lineages and pulls them back for restore on
// a machine that never held the original Checkpointer — the networked
// form of the paper's §2.3 storage hierarchy bottom.
//
// A Client owns one TCP connection and is safe for concurrent use; the
// protocol is strictly request/response, so concurrent calls serialize
// on the connection. Transient transport failures (broken connection,
// timeout) are retried once on a fresh connection; errors reported by
// the server itself (RemoteError) are not retried.
type Client struct {
	addr    string
	timeout time.Duration

	mu      sync.Mutex
	conn    net.Conn
	handles map[string]uint32 // lineage name -> server handle (per connection epoch)
}

// RemoteError is a failure reported by the server for one request. The
// connection remains usable and the request is known not to have a
// transport problem, so it is never retried.
type RemoteError = wire.RemoteError

// ErrUnsupported matches (via errors.Is) a RemoteError from a server
// that does not implement the request type — e.g. a lifecycle request
// against a pre-lifecycle ckptd build.
var ErrUnsupported = wire.ErrUnsupported

// LineageInfo describes one lineage hosted by the server.
type LineageInfo struct {
	// Name is the lineage name as passed to Push/Pull.
	Name string
	// Len is one past the highest stored checkpoint index.
	Len int
	// Base is the compaction baseline; checkpoints [Base, Len) are
	// restorable. Zero for a never-compacted lineage.
	Base int
	// Bytes is the total stored diff size on the server.
	Bytes int64
}

// ServerStats reports the server's operational counters.
type ServerStats struct {
	// Requests counts requests the server has accepted (including the
	// stats request reporting them).
	Requests uint64
	// BytesIn and BytesOut count protocol bytes received from and sent
	// to clients.
	BytesIn, BytesOut uint64
	// ActiveConns is the number of currently served connections.
	ActiveConns uint64
	// Conns counts connections accepted over the server lifetime.
	Conns uint64
	// Lineages is the number of lineages the server hosts.
	Lineages uint64
	// Compactions counts committed compaction transactions;
	// CompactedDiffs the diff files they deleted; ReclaimedBytes the
	// net disk bytes they freed.
	Compactions, CompactedDiffs, ReclaimedBytes uint64
}

// CompactInfo reports one server-side compaction transaction.
type CompactInfo struct {
	// OldBase and NewBase are the lineage baseline before and after;
	// equal when the retention policy had nothing to fold.
	OldBase, NewBase int
	// Pruned counts deleted diff files; Rewritten counts retained
	// diffs rewritten to drop references into the folded prefix.
	Pruned, Rewritten int
	// FreedBytes is the net on-disk change (can be negative for short
	// chains, where the full baseline outweighs the folded diffs).
	FreedBytes int64
}

// Dial connects to a ckptd server. timeout bounds the dial and every
// per-request network operation (0 selects 30s).
func Dial(addr string, timeout time.Duration) (*Client, error) {
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	c := &Client{addr: addr, timeout: timeout}
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.connectLocked(); err != nil {
		return nil, err
	}
	return c, nil
}

// connectLocked (re)establishes the connection and handshakes.
// Handles are connection-epoch-scoped defensively: a reconnect may
// reach a restarted server whose handle assignment differs.
func (c *Client) connectLocked() error {
	if c.conn != nil {
		c.conn.Close()
		c.conn = nil
	}
	conn, err := net.DialTimeout("tcp", c.addr, c.timeout)
	if err != nil {
		return fmt.Errorf("gpuckpt: dial %s: %w", c.addr, err)
	}
	conn.SetDeadline(time.Now().Add(c.timeout))
	if err := wire.Handshake(conn); err != nil {
		conn.Close()
		return fmt.Errorf("gpuckpt: handshake with %s: %w", c.addr, err)
	}
	c.conn = conn
	c.handles = make(map[string]uint32)
	return nil
}

// Close releases the connection.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		return nil
	}
	err := c.conn.Close()
	c.conn = nil
	return err
}

// transient reports whether err warrants one retry on a fresh
// connection: anything that broke the transport, but never a
// RemoteError (the server answered; replaying would duplicate work).
func transient(err error) bool {
	var re *RemoteError
	if errors.As(err, &re) {
		return false
	}
	return true
}

// roundTrip sends req and returns the server's response, retrying once
// on transient transport errors.
func (c *Client) roundTrip(req *wire.Frame) (*wire.Frame, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var lastErr error
	for attempt := 0; attempt < 2; attempt++ {
		if c.conn == nil {
			if err := c.connectLocked(); err != nil {
				lastErr = err
				continue
			}
		}
		resp, err := c.exchangeLocked(req)
		if err == nil {
			return resp, nil
		}
		lastErr = err
		if !transient(err) {
			return nil, err
		}
		// Broken transport: drop the connection (and handle cache) and
		// let the next attempt redial.
		if c.conn != nil {
			c.conn.Close()
			c.conn = nil
		}
	}
	return nil, lastErr
}

func (c *Client) exchangeLocked(req *wire.Frame) (*wire.Frame, error) {
	c.conn.SetDeadline(time.Now().Add(c.timeout))
	if err := wire.WriteFrame(c.conn, req); err != nil {
		return nil, err
	}
	resp, err := wire.ReadFrame(c.conn, 0)
	if err != nil {
		return nil, err
	}
	if err := resp.Err(); err != nil {
		return nil, err
	}
	if resp.Type != req.Type {
		return nil, fmt.Errorf("gpuckpt: server answered type 0x%02x to request 0x%02x", resp.Type, req.Type)
	}
	return resp, nil
}

// open resolves a lineage name to its server handle, current length,
// and compaction baseline. The handle is cached per connection epoch;
// length and base are always fresh. A version-1 server omits the base
// payload; DecodeOpenInfo maps that to base 0.
func (c *Client) open(name string) (handle uint32, length, base int, err error) {
	resp, err := c.roundTrip(&wire.Frame{Type: wire.TOpen, Payload: []byte(name)})
	if err != nil {
		return 0, 0, 0, err
	}
	b, err := wire.DecodeOpenInfo(resp.Payload)
	if err != nil {
		return 0, 0, 0, fmt.Errorf("gpuckpt: open %q: %w", name, err)
	}
	c.mu.Lock()
	if c.handles != nil {
		c.handles[name] = resp.Lineage
	}
	c.mu.Unlock()
	return resp.Lineage, int(resp.Ckpt), int(b), nil
}

// handle returns the cached handle for name, opening it if needed.
func (c *Client) handle(name string) (uint32, error) {
	c.mu.Lock()
	h, ok := c.handles[name]
	c.mu.Unlock()
	if ok {
		return h, nil
	}
	h, _, _, err := c.open(name)
	return h, err
}

// Len returns the number of checkpoints the server holds for lineage
// name (creating the lineage, empty, if it does not exist). After a
// compaction only indices [Span] of those remain restorable.
func (c *Client) Len(name string) (int, error) {
	_, n, _, err := c.open(name)
	return n, err
}

// Span returns the restorable index range [base, length) of the named
// lineage: base is the compaction baseline (0 if never compacted) and
// length is one past the highest stored checkpoint.
func (c *Client) Span(name string) (base, length int, err error) {
	_, n, b, err := c.open(name)
	return b, n, err
}

// Push uploads one encoded diff (as produced by Checkpointer.WriteDiff
// or Record.WriteDiff) as checkpoint ckptID of the named lineage. The
// server enforces contiguity: ckptID must equal the lineage's current
// length, and exactly one concurrent pusher of a given id wins.
func (c *Client) Push(name string, ckptID int, encoded []byte) error {
	h, err := c.handle(name)
	if err != nil {
		return err
	}
	_, err = c.roundTrip(&wire.Frame{Type: wire.TPush, Lineage: h, Ckpt: uint32(ckptID), Payload: encoded})
	return err
}

// PullDiff downloads the encoded diff of checkpoint ckptID of the
// named lineage.
func (c *Client) PullDiff(name string, ckptID int) ([]byte, error) {
	h, err := c.handle(name)
	if err != nil {
		return nil, err
	}
	resp, err := c.roundTrip(&wire.Frame{Type: wire.TPull, Lineage: h, Ckpt: uint32(ckptID)})
	if err != nil {
		return nil, err
	}
	return resp.Payload, nil
}

// Pull downloads the restorable span of the named lineage and
// assembles it into a Record. After a server-side compaction the span
// starts at the compaction baseline, not 0; Record.Base reports it and
// Record.Restore keeps accepting the original absolute indices.
func (c *Client) Pull(name string) (*Record, error) {
	_, n, base, err := c.open(name)
	if err != nil {
		return nil, err
	}
	if n == base {
		return nil, fmt.Errorf("gpuckpt: lineage %q is empty on %s", name, c.addr)
	}
	rec := checkpoint.NewRecord()
	for ck := base; ck < n; ck++ {
		b, err := c.PullDiff(name, ck)
		if err != nil {
			return nil, err
		}
		d, err := checkpoint.Decode(bytes.NewReader(b))
		if err != nil {
			return nil, fmt.Errorf("gpuckpt: lineage %q diff %d: %w", name, ck, err)
		}
		if err := d.Rebase(-int64(base)); err != nil {
			return nil, fmt.Errorf("gpuckpt: lineage %q diff %d: %w", name, ck, err)
		}
		if err := rec.Append(d); err != nil {
			return nil, err
		}
	}
	return &Record{rec: rec, base: base}, nil
}

// PushRecord uploads every diff of rec that the server does not
// already hold for the named lineage, returning the number pushed.
func (c *Client) PushRecord(name string, rec *Record) (int, error) {
	return c.pushDiffs(name, rec.Len(), rec.WriteDiff)
}

// PushCheckpointer uploads every diff of ck's record that the server
// does not already hold for the named lineage, returning the number
// pushed. Call it after each Checkpoint (incremental push) or once at
// the end (bulk push) — contiguity makes both equivalent.
func (c *Client) PushCheckpointer(name string, ck *Checkpointer) (int, error) {
	return c.pushDiffs(name, ck.NumCheckpoints(), ck.WriteDiff)
}

func (c *Client) pushDiffs(name string, total int, writeDiff func(k int, w io.Writer) error) (int, error) {
	_, have, _, err := c.open(name)
	if err != nil {
		return 0, err
	}
	pushed := 0
	for k := have; k < total; k++ {
		var buf bytes.Buffer
		if err := writeDiff(k, &buf); err != nil {
			return pushed, err
		}
		if err := c.Push(name, k, buf.Bytes()); err != nil {
			return pushed, err
		}
		pushed++
	}
	return pushed, nil
}

// List returns the lineages hosted by the server.
func (c *Client) List() ([]LineageInfo, error) {
	resp, err := c.roundTrip(&wire.Frame{Type: wire.TList})
	if err != nil {
		return nil, err
	}
	raw, err := wire.DecodeList(resp.Payload)
	if err != nil {
		return nil, err
	}
	out := make([]LineageInfo, len(raw))
	for i, in := range raw {
		out[i] = LineageInfo{Name: in.Name, Len: int(in.Len), Base: int(in.Base), Bytes: int64(in.Bytes)}
	}
	return out, nil
}

// Stats returns the server's operational counters.
func (c *Client) Stats() (ServerStats, error) {
	resp, err := c.roundTrip(&wire.Frame{Type: wire.TStats})
	if err != nil {
		return ServerStats{}, err
	}
	st, err := wire.DecodeStats(resp.Payload)
	if err != nil {
		return ServerStats{}, err
	}
	return ServerStats{
		Requests:       st.Requests,
		BytesIn:        st.BytesIn,
		BytesOut:       st.BytesOut,
		ActiveConns:    st.ActiveConns,
		Conns:          st.Conns,
		Lineages:       st.Lineages,
		Compactions:    st.Compactions,
		CompactedDiffs: st.CompactedDiffs,
		ReclaimedBytes: st.ReclaimedBytes,
	}, nil
}

// compact issues one TCompact request. target is an absolute
// checkpoint index, or wire.CompactAuto to let the server's retention
// policy choose.
func (c *Client) compact(name string, target uint32) (CompactInfo, error) {
	h, err := c.handle(name)
	if err != nil {
		return CompactInfo{}, err
	}
	resp, err := c.roundTrip(&wire.Frame{Type: wire.TCompact, Lineage: h, Ckpt: target})
	if err != nil {
		return CompactInfo{}, err
	}
	res, err := wire.DecodeCompactResult(resp.Payload)
	if err != nil {
		return CompactInfo{}, fmt.Errorf("gpuckpt: compact %q: %w", name, err)
	}
	return CompactInfo{
		OldBase:    int(res.OldBase),
		NewBase:    int(res.NewBase),
		Pruned:     int(res.Pruned),
		Rewritten:  int(res.Rewritten),
		FreedBytes: res.FreedBytes,
	}, nil
}

// Compact asks the server to fold the named lineage's prefix into a
// full baseline at the index chosen by its retention policy, then
// delete the folded diff files. The transaction is crash-safe on the
// server and every retained checkpoint restores byte-identically
// afterwards. Returns ErrUnsupported (via errors.Is) from servers
// predating lifecycle support.
func (c *Client) Compact(name string) (CompactInfo, error) {
	return c.compact(name, wire.CompactAuto)
}

// CompactTo is Compact with an explicit target baseline k, overriding
// the server's retention policy (but still refusing to fold past a
// pinned checkpoint).
func (c *Client) CompactTo(name string, k int) (CompactInfo, error) {
	if k < 0 || uint32(k) == wire.CompactAuto {
		return CompactInfo{}, fmt.Errorf("gpuckpt: compact target %d out of range", k)
	}
	return c.compact(name, uint32(k))
}

// SetRetention replaces the named lineage's retention policy; policy
// uses the same syntax as ckptd's -retention flag ("keep-all",
// "keep-last=N", "keep-every=K"). It changes which baseline future
// compactions choose; it does not itself compact.
func (c *Client) SetRetention(name, policy string) error {
	h, err := c.handle(name)
	if err != nil {
		return err
	}
	_, err = c.roundTrip(&wire.Frame{Type: wire.TPolicy, Lineage: h, Payload: []byte(policy)})
	return err
}

// Retention reports the named lineage's current retention policy.
func (c *Client) Retention(name string) (string, error) {
	h, err := c.handle(name)
	if err != nil {
		return "", err
	}
	resp, err := c.roundTrip(&wire.Frame{Type: wire.TPolicy, Lineage: h})
	if err != nil {
		return "", err
	}
	return string(resp.Payload), nil
}

// WriteDiff serializes checkpoint k (absolute index) of the record to
// w in the canonical wire format — the Record counterpart of
// Checkpointer.WriteDiff, used to push archived records to a server.
// For a record loaded from a compacted lineage (Base > 0) the encoded
// ids are rewritten back to absolute form so the bytes match what the
// originating store holds.
func (r *Record) WriteDiff(k int, w io.Writer) error {
	if k < r.base || k >= r.Len() {
		return fmt.Errorf("gpuckpt: checkpoint %d out of range [%d,%d)", k, r.base, r.Len())
	}
	d := r.rec.Diff(k - r.base)
	if r.base > 0 {
		d = d.CloneShallow()
		if err := d.Rebase(int64(r.base)); err != nil {
			return err
		}
	}
	return d.Encode(w)
}
