package gpuckpt

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"time"

	"github.com/gpuckpt/gpuckpt/internal/checkpoint"
	"github.com/gpuckpt/gpuckpt/internal/connpool"
	"github.com/gpuckpt/gpuckpt/internal/wire"
)

// Client talks to a ckptd checkpoint server (cmd/ckptd): it pushes
// encoded diffs into named lineages and pulls them back for restore on
// a machine that never held the original Checkpointer — the networked
// form of the paper's §2.3 storage hierarchy bottom.
//
// A Client multiplexes its operations over a bounded pool of
// connections (internal/connpool) and is safe for concurrent use:
// concurrent calls proceed in parallel up to MaxConns and serialize
// beyond it. Each pooled connection carries its own protocol session —
// the negotiated wire version, an epoch-scoped lineage-handle cache and
// the reusable staging buffers of the zero-copy push path — so state
// cached against one socket can never leak across a reconnect.
//
// Bulk pushes (PushRecord, PushCheckpointer) switch automatically to
// the v4 streaming protocol when the server's handshake advertises it:
// a window of TPushStream frames rides the connection back-to-back and
// acknowledgements return asynchronously, hiding the per-request
// round-trip that bounds v3 push throughput. Against a v3 server the
// same calls degrade to sequential request/response pushes.
//
// Failures are classified by wire.Transient: transport errors (torn
// connection, deadline expiry, dial failure) are retried on a fresh
// connection under the client's RetryPolicy (bounded attempts,
// exponential backoff with jitter); a StatusBusy response from a
// load-shedding server is retried after honoring its retry-after hint;
// a StatusUnknownHandle response prunes the stale handle cache and
// retries after re-resolving the name; any other error the server
// itself reports (RemoteError) is terminal — the server answered, so
// replaying would duplicate work. Push replays are safe either way:
// the protocol's content-hash precondition makes a duplicate push of
// identical bytes idempotent on the server, and a streamed push
// resumes from the server's authoritative lineage length.
type Client struct {
	addr    string
	timeout time.Duration
	retry   RetryPolicy
	dialer  func(addr string, timeout time.Duration) (net.Conn, error)
	window  streamWindow

	pool *connpool.Pool

	mu  sync.Mutex
	rng *rand.Rand // jitter source; guarded by mu
}

// streamWindow bounds how much of a streamed push may be in flight
// (written but unacknowledged) at once. Both limits apply: the frame
// bound caps ack-matching state, the byte bound caps the kernel-buffer
// memory a slow server can pin on the client.
type streamWindow struct {
	frames int
	bytes  int64
}

// Streaming push window defaults (DialConfig zero values).
const (
	DefaultWindowFrames = 32
	DefaultWindowBytes  = 8 << 20
)

// DefaultMaxConns is the connection-pool bound a zero
// DialConfig.MaxConns selects.
const DefaultMaxConns = 4

// RetryPolicy bounds and paces the client's retries of transiently
// failed requests. The delay before attempt k (k≥2) is
// BaseDelay·Multiplier^(k-2) clamped to MaxDelay, spread by ±Jitter,
// and floored at a load-shedding server's retry-after hint.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries per request, first
	// attempt included (default 4).
	MaxAttempts int
	// BaseDelay is the backoff before the second attempt (default 50ms).
	BaseDelay time.Duration
	// MaxDelay caps the grown backoff (default 2s).
	MaxDelay time.Duration
	// Multiplier grows the delay between consecutive attempts
	// (default 2).
	Multiplier float64
	// Jitter spreads each delay uniformly over ±Jitter·delay so
	// lock-step clients don't retry in convoy (default 0.2).
	Jitter float64
	// Seed seeds the jitter RNG; 0 selects a fixed default. Tests use
	// distinct seeds for reproducible-yet-decorrelated schedules.
	Seed int64
	// Sleep replaces the retry wait; tests stub it to run retry
	// schedules instantly. When nil (the default) the wait runs on a
	// timer that a cancelled context abandons immediately — a stubbed
	// Sleep is still bracketed by context checks, but cannot itself be
	// interrupted mid-wait.
	Sleep func(time.Duration)
}

func (p *RetryPolicy) fill() {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 4
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 50 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 2 * time.Second
	}
	if p.Multiplier < 1 {
		p.Multiplier = 2
	}
	if p.Jitter < 0 || p.Jitter > 1 {
		p.Jitter = 0.2
	}
}

// delay computes the pre-attempt backoff: attempt counts from 2 (the
// first retry), hint is a server-provided retry-after floor (0 if
// none).
func (p *RetryPolicy) delay(attempt int, hint time.Duration, rng *rand.Rand) time.Duration {
	d := float64(p.BaseDelay)
	for i := 2; i < attempt; i++ {
		d *= p.Multiplier
		if d >= float64(p.MaxDelay) {
			break
		}
	}
	if d > float64(p.MaxDelay) {
		d = float64(p.MaxDelay)
	}
	if p.Jitter > 0 {
		d *= 1 + p.Jitter*(2*rng.Float64()-1)
	}
	out := time.Duration(d)
	if out < hint {
		out = hint
	}
	return out
}

// DialConfig parameterizes DialConfigured.
type DialConfig struct {
	// Timeout bounds the dial, the handshake, and each per-operation
	// read and write (0 selects 30s).
	Timeout time.Duration
	// Retry is the transient-failure retry policy; zero fields take
	// defaults.
	Retry RetryPolicy
	// Dialer replaces net.DialTimeout, letting tests interpose a
	// fault-injecting connection (see internal/faults).
	Dialer func(addr string, timeout time.Duration) (net.Conn, error)
	// MaxConns bounds the connection pool: concurrent operations
	// beyond it wait for a connection instead of dialing more
	// (0 selects DefaultMaxConns).
	MaxConns int
	// WindowFrames caps how many streamed push frames may be in
	// flight unacknowledged (0 selects DefaultWindowFrames).
	WindowFrames int
	// WindowBytes caps how many streamed push payload bytes may be in
	// flight unacknowledged (0 selects DefaultWindowBytes).
	WindowBytes int64
}

// RemoteError is a failure reported by the server for one request. The
// connection remains usable and the request is known not to have a
// transport problem, so it is never retried (StatusBusy and
// StatusUnknownHandle excepted — those assert the request was NOT
// executed, making a replay safe).
type RemoteError = wire.RemoteError

// ErrUnsupported matches (via errors.Is) a RemoteError from a server
// that does not implement the request type — e.g. a lifecycle request
// against a pre-lifecycle ckptd build.
var ErrUnsupported = wire.ErrUnsupported

// LineageInfo describes one lineage hosted by the server.
type LineageInfo struct {
	// Name is the lineage name as passed to Push/Pull.
	Name string
	// Len is one past the highest stored checkpoint index.
	Len int
	// Base is the compaction baseline; checkpoints [Base, Len) are
	// restorable. Zero for a never-compacted lineage.
	Base int
	// Bytes is the total stored diff size on the server.
	Bytes int64
}

// ServerStats reports the server's operational counters.
type ServerStats struct {
	// Requests counts requests the server has accepted (including the
	// stats request reporting them).
	Requests uint64
	// BytesIn and BytesOut count protocol bytes received from and sent
	// to clients.
	BytesIn, BytesOut uint64
	// ActiveConns is the number of currently served connections.
	ActiveConns uint64
	// Conns counts connections accepted over the server lifetime.
	Conns uint64
	// Lineages is the number of lineages the server hosts.
	Lineages uint64
	// Compactions counts committed compaction transactions;
	// CompactedDiffs the diff files they deleted; ReclaimedBytes the
	// net disk bytes they freed.
	Compactions, CompactedDiffs, ReclaimedBytes uint64
	// BusyRejects counts requests and connections the server shed with
	// StatusBusy (connection limit or lineage queue saturation).
	BusyRejects uint64
	// BlocksInterned counts unique blocks written into the server's
	// shared content-addressed block store; BlockDedupHits counts
	// intern requests satisfied by an already-stored block (within or
	// across lineages); BlockBytesSaved is the payload bytes those
	// hits avoided writing.
	BlocksInterned, BlockDedupHits, BlockBytesSaved uint64
	// BlockGCBlocks and BlockGCBytes count unreferenced blocks (and
	// their payload bytes) reclaimed by block-store garbage collection.
	BlockGCBlocks, BlockGCBytes uint64
	// Quarantined is the number of diff files currently quarantined
	// across all lineages — open damage awaiting repair (a gauge).
	Quarantined uint64
	// DigestRounds counts anti-entropy digest rounds the server ran
	// against its peers; SpansHealed the diffs those rounds repaired
	// or installed; BytesRefetched the encoded bytes pulled to do so.
	DigestRounds, SpansHealed, BytesRefetched uint64
	// HealQuarantines counts lineages the reconciler fail-stopped
	// after repeated heal failures or divergence.
	HealQuarantines uint64
	// Degraded is the number of configured peers currently
	// unreachable (a gauge; nonzero means reduced redundancy).
	Degraded uint64
}

// CompactInfo reports one server-side compaction transaction.
type CompactInfo struct {
	// OldBase and NewBase are the lineage baseline before and after;
	// equal when the retention policy had nothing to fold.
	OldBase, NewBase int
	// Pruned counts deleted diff files; Rewritten counts retained
	// diffs rewritten to drop references into the folded prefix.
	Pruned, Rewritten int
	// FreedBytes is the net on-disk change (can be negative for short
	// chains, where the full baseline outweighs the folded diffs).
	FreedBytes int64
}

// session is the per-connection protocol state parked in the pool's
// opaque Session slot. It lives and dies with its socket: a discarded
// connection takes its handle cache and buffers with it, so a handle
// from one server epoch can never be replayed against another.
//
// The buffers make the push path allocation-free in steady state:
// stage holds each frame's [header|checksum|diff prefix] block, vec
// carries the writev segment list, ack/ackBuf absorb responses, and
// pending tracks the in-flight stream window. None of them need
// locking — a session is only ever touched by the goroutine holding
// its connection checked out.
type session struct {
	version uint8             // negotiated wire protocol version
	handles map[string]uint32 // lineage name -> server handle (this connection epoch)

	stage   []byte      // staged frame header + checksum (+ encoded prefix)
	enc     sliceWriter // v3 fallback: encodes the whole diff into stage
	vec     net.Buffers // writev segment list over stage and diff sections
	ack     wire.Frame  // response frame, payload aliasing ackBuf
	ackBuf  []byte
	pending []inflight    // unacknowledged stream frames
	staged  []stagedFrame // coalesced frames staged but not yet written
}

// inflight is one streamed push frame awaiting its ack.
type inflight struct {
	ckpt uint32
	size int64 // full frame size, for the window byte budget
}

// stagedFrame is one coalesced stream frame awaiting the next writev:
// its header+checksum+prefix block ends at stage[end] (frames pack
// back-to-back, so it starts at the previous frame's end), and the
// bitmap/data sections ride by reference. Offsets, not subslices,
// because staging the next frame may grow — and move — the stage
// buffer; the segment list is built only at flush time, when the
// buffer has settled.
type stagedFrame struct {
	end    int
	bitmap []byte
	data   []byte
}

// sliceWriter is an io.Writer appending to a reusable slice — the v3
// push path's staging sink (bytes.Buffer would re-allocate its
// internals across uses; this keeps one backing array per session).
type sliceWriter struct{ b []byte }

func (w *sliceWriter) Write(p []byte) (int, error) {
	w.b = append(w.b, p...)
	return len(p), nil
}

// Dial connects to a ckptd server. timeout bounds the dial and every
// per-request network operation (0 selects 30s).
func Dial(addr string, timeout time.Duration) (*Client, error) {
	return DialConfigured(addr, DialConfig{Timeout: timeout})
}

// DialConfigured connects to a ckptd server with an explicit retry
// policy, pool and window bounds, and (optionally) a custom dialer.
// The first connection is established eagerly so an unreachable
// address fails here, not on the first operation.
func DialConfigured(addr string, cfg DialConfig) (*Client, error) {
	if cfg.Timeout <= 0 {
		cfg.Timeout = 30 * time.Second
	}
	cfg.Retry.fill()
	if cfg.Dialer == nil {
		cfg.Dialer = func(addr string, timeout time.Duration) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, timeout)
		}
	}
	if cfg.MaxConns <= 0 {
		cfg.MaxConns = DefaultMaxConns
	}
	if cfg.WindowFrames <= 0 {
		cfg.WindowFrames = DefaultWindowFrames
	}
	if cfg.WindowBytes <= 0 {
		cfg.WindowBytes = DefaultWindowBytes
	}
	seed := cfg.Retry.Seed
	if seed == 0 {
		seed = 1
	}
	c := &Client{
		addr:    addr,
		timeout: cfg.Timeout,
		retry:   cfg.Retry,
		dialer:  cfg.Dialer,
		window:  streamWindow{frames: cfg.WindowFrames, bytes: cfg.WindowBytes},
		rng:     rand.New(rand.NewSource(seed)),
	}
	pool, err := connpool.New(connpool.Options{
		Dial:        c.dialSession,
		MaxActive:   cfg.MaxConns,
		WaitTimeout: cfg.Timeout,
	})
	if err != nil {
		return nil, err
	}
	c.pool = pool
	pc, err := c.pool.Get()
	if err != nil {
		c.pool.Close()
		return nil, err
	}
	pc.Release()
	return c, nil
}

// dialSession opens one pooled connection: dial, handshake, fresh
// session. The deadline covers only the handshake — each operation
// then arms its own read/write deadlines, so a long-lived pooled
// connection never runs on a stale connect-time deadline.
func (c *Client) dialSession() (net.Conn, any, error) {
	conn, err := c.dialer(c.addr, c.timeout)
	if err != nil {
		return nil, nil, fmt.Errorf("gpuckpt: dial %s: %w", c.addr, err)
	}
	conn.SetDeadline(time.Now().Add(c.timeout))
	v, err := wire.Handshake(conn)
	if err != nil {
		conn.Close()
		return nil, nil, fmt.Errorf("gpuckpt: handshake with %s: %w", c.addr, err)
	}
	conn.SetDeadline(time.Time{})
	return conn, &session{version: v, handles: make(map[string]uint32)}, nil
}

// Close releases every pooled connection.
func (c *Client) Close() error {
	return c.pool.Close()
}

// backoff waits before retry attempt (≥2), flooring the jittered
// exponential delay at a busy server's retry-after hint. The wait
// observes ctx: a caller cancelled mid-schedule gets its context
// error back immediately instead of sleeping through the remaining
// attempts against a server that may be gone.
func (c *Client) backoff(ctx context.Context, attempt int, lastErr error) error {
	var hint time.Duration
	var re *RemoteError
	if errors.As(lastErr, &re) && re.Busy {
		hint = re.RetryAfter
	}
	c.mu.Lock()
	d := c.retry.delay(attempt, hint, c.rng)
	c.mu.Unlock()
	if err := ctx.Err(); err != nil {
		return err
	}
	if c.retry.Sleep != nil {
		c.retry.Sleep(d)
		return ctx.Err()
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-timer.C:
		return nil
	}
}

// dropHandle prunes name's cached handle from every idle session, so
// a handle the server declared unknown is not replayed from a sibling
// connection that cached it in the same dead epoch.
func (c *Client) dropHandle(name string) {
	c.pool.ForEachIdle(func(_ net.Conn, s any) {
		delete(s.(*session).handles, name)
	})
}

// settle disposes of a checked-out connection after a failed attempt
// and reports whether the failure is worth another attempt. Remote
// errors keep the connection (the server answered; the transport is
// fine); only busy sheds and unknown-handle epochs among them are
// retryable. Everything else — transport errors, protocol violations —
// taints the connection.
func (c *Client) settle(pc *connpool.Conn, name string, err error) bool {
	var re *RemoteError
	if errors.As(err, &re) {
		if re.UnknownHandle && name != "" {
			delete(pc.Session.(*session).handles, name)
			c.dropHandle(name)
		}
		pc.Release()
		return re.Busy || re.UnknownHandle
	}
	pc.Discard()
	// wire.Transient calls net.ErrClosed terminal (a server must not
	// spin on its own closed listener), but here it can only mean the
	// pooled socket died under us, and redialing is the right response.
	//ckptlint:ignore retryable deliberate client-side exception to the wire taxonomy, see above
	return wire.Transient(err) || errors.Is(err, net.ErrClosed)
}

// exchange performs one framed request/response on a pooled
// connection with per-operation deadlines: the write deadline arms
// before the request goes out, the read deadline arms after it, so a
// slow large pull gets the full timeout for its read phase rather
// than whatever the write left over.
func (c *Client) exchange(pc *connpool.Conn, req *wire.Frame) (*wire.Frame, error) {
	pc.NC.SetWriteDeadline(time.Now().Add(c.timeout))
	if err := wire.WriteFrame(pc.NC, req); err != nil {
		return nil, err
	}
	pc.NC.SetReadDeadline(time.Now().Add(c.timeout))
	resp, err := wire.ReadFrame(pc.NC, 0)
	if err != nil {
		return nil, err
	}
	if err := resp.Err(); err != nil {
		return nil, err
	}
	if resp.Type != req.Type {
		return nil, fmt.Errorf("gpuckpt: server answered type 0x%02x to request 0x%02x", resp.Type, req.Type)
	}
	return resp, nil
}

// resolve returns name's lineage handle on this connection, opening
// it if the session has not cached it yet.
func (c *Client) resolve(pc *connpool.Conn, name string) (uint32, error) {
	sess := pc.Session.(*session)
	if h, ok := sess.handles[name]; ok {
		return h, nil
	}
	resp, err := c.exchange(pc, &wire.Frame{Type: wire.TOpen, Payload: []byte(name)})
	if err != nil {
		return 0, err
	}
	sess.handles[name] = resp.Lineage
	return resp.Lineage, nil
}

// tryOn runs one attempt of req on a checked-out connection,
// resolving name's handle on that same connection first (an explicit
// TOpen refreshes the cache instead).
func (c *Client) tryOn(pc *connpool.Conn, name string, req *wire.Frame) (*wire.Frame, error) {
	if name != "" {
		if req.Type == wire.TOpen {
			resp, err := c.exchange(pc, req)
			if err == nil {
				pc.Session.(*session).handles[name] = resp.Lineage
			}
			return resp, err
		}
		h, err := c.resolve(pc, name)
		if err != nil {
			return nil, err
		}
		req.Lineage = h
	}
	return c.exchange(pc, req)
}

// do sends req and returns the server's response, retrying transient
// failures under the client's RetryPolicy on fresh pool checkouts.
// When name is non-empty the request addresses that lineage: its
// handle is resolved per connection, and a StatusUnknownHandle
// response prunes the stale cache before the retry re-resolves it.
// Cancelling ctx between attempts ends the retry schedule with the
// context's error wrapping whatever failed last.
func (c *Client) do(ctx context.Context, name string, req *wire.Frame) (*wire.Frame, error) {
	var lastErr error
	for attempt := 1; attempt <= c.retry.MaxAttempts; attempt++ {
		if attempt > 1 {
			if err := c.backoff(ctx, attempt, lastErr); err != nil {
				return nil, fmt.Errorf("%w (last attempt: %w)", err, lastErr)
			}
		}
		pc, err := c.pool.Get()
		if err != nil {
			if errors.Is(err, connpool.ErrClosed) {
				return nil, err
			}
			lastErr = err
			continue
		}
		resp, err := c.tryOn(pc, name, req)
		if err == nil {
			pc.Release()
			return resp, nil
		}
		lastErr = err
		if !c.settle(pc, name, err) {
			return nil, err
		}
	}
	return nil, fmt.Errorf("gpuckpt: request failed after %d attempts: %w", c.retry.MaxAttempts, lastErr)
}

// roundTrip sends a raw frame without lineage addressing — the
// retrying core shared by the directory and stats operations (and the
// protocol tests).
func (c *Client) roundTrip(req *wire.Frame) (*wire.Frame, error) {
	return c.do(context.Background(), "", req)
}

// open resolves a lineage name to its server handle, current length,
// and compaction baseline. The handle lands in the serving
// connection's session cache; length and base are always fresh. A
// version-1 server omits the base payload; DecodeOpenInfo maps that
// to base 0.
func (c *Client) open(name string) (handle uint32, length, base int, err error) {
	resp, err := c.do(context.Background(), name, &wire.Frame{Type: wire.TOpen, Payload: []byte(name)})
	if err != nil {
		return 0, 0, 0, err
	}
	b, err := wire.DecodeOpenInfo(resp.Payload)
	if err != nil {
		return 0, 0, 0, fmt.Errorf("gpuckpt: open %q: %w", name, err)
	}
	return resp.Lineage, int(resp.Ckpt), int(b), nil
}

// Len returns the number of checkpoints the server holds for lineage
// name (creating the lineage, empty, if it does not exist). After a
// compaction only indices [Span] of those remain restorable.
func (c *Client) Len(name string) (int, error) {
	_, n, _, err := c.open(name)
	return n, err
}

// Span returns the restorable index range [base, length) of the named
// lineage: base is the compaction baseline (0 if never compacted) and
// length is one past the highest stored checkpoint.
func (c *Client) Span(name string) (base, length int, err error) {
	_, n, b, err := c.open(name)
	return b, n, err
}

// Push uploads one encoded diff (as produced by Checkpointer.WriteDiff
// or Record.WriteDiff) as checkpoint ckptID of the named lineage. The
// server enforces contiguity: ckptID must equal the lineage's current
// length, and exactly one concurrent pusher of a given id wins. The
// payload travels with a CRC32C precondition, which doubles as the
// idempotency key: a retried push whose response was lost lands as a
// no-op OK instead of a duplicate-append error.
//
// The frame is staged zero-copy: the session's reused buffer holds
// only the header and checksum, and encoded rides to the socket by
// reference (writev), so the push path allocates nothing in steady
// state.
func (c *Client) Push(name string, ckptID int, encoded []byte) error {
	return c.PushContext(context.Background(), name, ckptID, encoded)
}

// PushContext is Push bounded by a context: cancellation between
// retry attempts ends the schedule immediately with the context's
// error. In-flight network operations still run under the client's
// Timeout; the context governs the waits between them.
func (c *Client) PushContext(ctx context.Context, name string, ckptID int, encoded []byte) error {
	var lastErr error
	for attempt := 1; attempt <= c.retry.MaxAttempts; attempt++ {
		if attempt > 1 {
			if err := c.backoff(ctx, attempt, lastErr); err != nil {
				return fmt.Errorf("%w (last attempt: %w)", err, lastErr)
			}
		}
		pc, err := c.pool.Get()
		if err != nil {
			if errors.Is(err, connpool.ErrClosed) {
				return err
			}
			lastErr = err
			continue
		}
		err = c.pushOn(pc, name, uint32(ckptID), encoded)
		if err == nil {
			pc.Release()
			return nil
		}
		lastErr = err
		if !c.settle(pc, name, err) {
			return err
		}
	}
	return fmt.Errorf("gpuckpt: request failed after %d attempts: %w", c.retry.MaxAttempts, lastErr)
}

// pushOn runs one TPush attempt on a checked-out connection.
func (c *Client) pushOn(pc *connpool.Conn, name string, ckpt uint32, encoded []byte) error {
	h, err := c.resolve(pc, name)
	if err != nil {
		return err
	}
	sess := pc.Session.(*session)
	if err := sess.stagePush(wire.TPush, h, ckpt, encoded); err != nil {
		return err
	}
	pc.NC.SetWriteDeadline(time.Now().Add(c.timeout))
	if err := sess.writeStaged(pc.NC); err != nil {
		return err
	}
	pc.NC.SetReadDeadline(time.Now().Add(c.timeout))
	return sess.readResp(pc.NC, wire.TPush)
}

// stagePush builds a push frame around encoded without copying it:
// the reused stage buffer holds [header|checksum] and the vec ships
// encoded by reference.
func (s *session) stagePush(typ uint8, h, ckpt uint32, encoded []byte) error {
	stage, err := wire.AppendFrameHeader(s.stage[:0], typ, 0, h, ckpt, wire.PushChecksumSize+len(encoded))
	if err != nil {
		return err
	}
	stage = binary.BigEndian.AppendUint32(stage, wire.Checksum(encoded))
	s.stage = stage
	s.vec = append(s.vec[:0], stage, encoded)
	return nil
}

// writeStaged ships the staged segment list in one scatter/gather
// write. WriteTo consumes s.vec in place (a stack copy's address
// would escape and cost an allocation per frame), so the slice header
// is restored afterwards to keep the backing array for the next
// frame's re-append.
func (s *session) writeStaged(w io.Writer) error {
	saved := s.vec
	err := wire.WriteFrameVec(w, &s.vec)
	s.vec = saved[:0]
	return err
}

// readResp reads one response into the session's reused frame and
// checks it, allocation-free on the OK path.
func (s *session) readResp(r io.Reader, wantType uint8) error {
	if err := wire.ReadFrameInto(r, 0, &s.ack, &s.ackBuf); err != nil {
		return err
	}
	if err := s.ack.Err(); err != nil {
		return err
	}
	if s.ack.Type != wantType {
		return fmt.Errorf("gpuckpt: server answered type 0x%02x to request 0x%02x", s.ack.Type, wantType)
	}
	return nil
}

// PullDiff downloads the encoded diff of checkpoint ckptID of the
// named lineage.
func (c *Client) PullDiff(name string, ckptID int) ([]byte, error) {
	resp, err := c.do(context.Background(), name, &wire.Frame{Type: wire.TPull, Ckpt: uint32(ckptID)})
	if err != nil {
		return nil, err
	}
	return resp.Payload, nil
}

// Pull downloads the restorable span of the named lineage and
// assembles it into a Record. After a server-side compaction the span
// starts at the compaction baseline, not 0; Record.Base reports it and
// Record.Restore keeps accepting the original absolute indices.
func (c *Client) Pull(name string) (*Record, error) {
	_, n, base, err := c.open(name)
	if err != nil {
		return nil, err
	}
	if n == base {
		return nil, fmt.Errorf("gpuckpt: lineage %q is empty on %s", name, c.addr)
	}
	rec := checkpoint.NewRecord()
	for ck := base; ck < n; ck++ {
		b, err := c.PullDiff(name, ck)
		if err != nil {
			return nil, err
		}
		d, err := checkpoint.Decode(bytes.NewReader(b))
		if err != nil {
			return nil, fmt.Errorf("gpuckpt: lineage %q diff %d: %w", name, ck, err)
		}
		if err := d.Rebase(-int64(base)); err != nil {
			return nil, fmt.Errorf("gpuckpt: lineage %q diff %d: %w", name, ck, err)
		}
		if err := rec.Append(d); err != nil {
			return nil, err
		}
	}
	return &Record{rec: rec, base: base}, nil
}

// PushRecord uploads every diff of rec that the server does not
// already hold for the named lineage, returning the number pushed.
// Against a v4 server the missing suffix streams as a pipelined
// window; against a v3 server it degrades to sequential pushes.
func (c *Client) PushRecord(name string, rec *Record) (int, error) {
	return c.pushDiffs(context.Background(), name, rec.Len(), rec.diffAt, rec.WriteDiff)
}

// PushRecordContext is PushRecord bounded by a context: cancellation
// between retry attempts ends the schedule immediately.
func (c *Client) PushRecordContext(ctx context.Context, name string, rec *Record) (int, error) {
	return c.pushDiffs(ctx, name, rec.Len(), rec.diffAt, rec.WriteDiff)
}

// PushCheckpointer uploads every diff of ck's record that the server
// does not already hold for the named lineage, returning the number
// pushed. Call it after each Checkpoint (incremental push) or once at
// the end (bulk push) — contiguity makes both equivalent.
func (c *Client) PushCheckpointer(name string, ck *Checkpointer) (int, error) {
	return c.pushDiffs(context.Background(), name, ck.NumCheckpoints(), ck.diffAt, ck.WriteDiff)
}

// pushDiffs syncs diffs [have, total) of a lineage to the server,
// where have is the server's authoritative length learned from a
// fresh open on the serving connection. Appends are contiguous, so
// after ANY failure — torn stream, busy shed, handle epoch change —
// the retry re-opens for a fresh length and resumes exactly at the
// gap; diffs that landed before the failure are never re-sent.
// Returns the number of diffs newly acknowledged by the server.
func (c *Client) pushDiffs(ctx context.Context, name string, total int, diffAt func(int) (*checkpoint.Diff, error), writeDiff func(int, io.Writer) error) (int, error) {
	pushed := 0
	var lastErr error
	for attempt := 1; attempt <= c.retry.MaxAttempts; attempt++ {
		if attempt > 1 {
			if err := c.backoff(ctx, attempt, lastErr); err != nil {
				return pushed, fmt.Errorf("%w (last attempt: %w)", err, lastErr)
			}
		}
		pc, err := c.pool.Get()
		if err != nil {
			if errors.Is(err, connpool.ErrClosed) {
				return pushed, err
			}
			lastErr = err
			continue
		}
		resp, err := c.tryOn(pc, name, &wire.Frame{Type: wire.TOpen, Payload: []byte(name)})
		if err != nil {
			lastErr = err
			if !c.settle(pc, name, err) {
				return pushed, err
			}
			continue
		}
		h, have := resp.Lineage, int(resp.Ckpt)
		if have >= total {
			pc.Release()
			return pushed, nil
		}
		sess := pc.Session.(*session)
		if sess.version >= 4 {
			err = c.streamPush(pc, sess, h, have, total, diffAt, &pushed)
		} else {
			err = c.pushSeq(pc, sess, h, have, total, writeDiff, &pushed)
		}
		if err == nil {
			pc.Release()
			return pushed, nil
		}
		lastErr = err
		if !c.settle(pc, name, err) {
			return pushed, err
		}
	}
	return pushed, fmt.Errorf("gpuckpt: push to %q failed after %d attempts: %w", name, c.retry.MaxAttempts, lastErr)
}

// streamCoalesceFrames is how many staged frames ride one writev.
// Small diffs make frame headers and syscalls the dominant per-frame
// cost; packing a run of frames into a single scatter/gather write
// amortizes both without copying any payload byte. The window still
// governs how much is in flight — coalescing only changes how many
// syscalls carry it.
const streamCoalesceFrames = 16

// streamPush ships diffs [have, total) as pipelined TPushStream
// frames over one connection, keeping up to the configured window in
// flight and matching acknowledgements by checkpoint id in whatever
// order they return. A per-frame error ack stops new sends, drains
// the window (frames behind the failure fail the server's contiguity
// check and ack as errors too) and surfaces the lowest failed frame
// as a StreamFrameError; a transport error tears the attempt and
// leaves resumption to pushDiffs. The send path allocates nothing per
// frame: headers, checksums and diff prefixes pack back-to-back into
// the session's reused stage buffer, bitmap and data sections ride to
// the socket by reference, and up to streamCoalesceFrames frames
// leave in one writev. Anything staged is flushed before the stream
// ever waits for an ack, so coalescing cannot deadlock the window.
func (c *Client) streamPush(pc *connpool.Conn, sess *session, h uint32, have, total int, diffAt func(int) (*checkpoint.Diff, error), pushed *int) error {
	nc := pc.NC
	sess.pending = sess.pending[:0]
	sess.stage = sess.stage[:0]
	sess.staged = sess.staged[:0]
	var inFlight int64
	var frameErr error
	k := have
	for {
		if len(sess.pending) > 0 && (frameErr != nil || k >= total ||
			len(sess.pending) >= c.window.frames || inFlight >= c.window.bytes) {
			nc.SetWriteDeadline(time.Now().Add(c.timeout))
			if err := sess.flushStaged(nc); err != nil {
				return err // transport: the stream is torn
			}
			nc.SetReadDeadline(time.Now().Add(c.timeout))
			size, err := sess.consumeAck(nc, pushed, &frameErr)
			if err != nil {
				return err
			}
			inFlight -= size
			continue
		}
		if k >= total || frameErr != nil {
			break
		}
		d, err := diffAt(k)
		if err == nil {
			var size int64
			if size, err = sess.stageStreamFrame(h, uint32(k), d); err == nil {
				sess.pending = append(sess.pending, inflight{ckpt: uint32(k), size: size})
				inFlight += size
				k++
				if len(sess.staged) >= streamCoalesceFrames {
					nc.SetWriteDeadline(time.Now().Add(c.timeout))
					if err = sess.flushStaged(nc); err != nil {
						return err
					}
				}
				continue
			}
		}
		// Local failure producing frame k: ship what is staged so the
		// server acks it, drain the window so the connection is left
		// clean, then report it.
		nc.SetWriteDeadline(time.Now().Add(c.timeout))
		if ferr := sess.flushStaged(nc); ferr != nil {
			return ferr
		}
		for len(sess.pending) > 0 {
			nc.SetReadDeadline(time.Now().Add(c.timeout))
			if _, derr := sess.consumeAck(nc, pushed, &frameErr); derr != nil {
				return derr
			}
		}
		return err
	}
	return frameErr
}

// stageStreamFrame builds one TPushStream frame for d and coalesces
// it behind any frames already staged: [frame header | CRC32C | diff
// header+metadata] appends to the shared stage buffer, the bitmap and
// data sections are recorded by reference, and nothing touches the
// socket until flushStaged. The checksum over the scattered segments
// is computed incrementally — the encoded diff bytes are never
// gathered on the client. On error the stage buffer is rolled back to
// the previous frame boundary, so a half-built frame can never leak
// into the next flush.
func (s *session) stageStreamFrame(h, ckpt uint32, d *checkpoint.Diff) (int64, error) {
	mark := len(s.stage)
	payloadLen := int64(wire.PushChecksumSize) + d.TotalBytes()
	stage, err := wire.AppendFrameHeader(s.stage, wire.TPushStream, 0, h, ckpt, int(payloadLen))
	if err != nil {
		return 0, err
	}
	crcOff := len(stage)
	stage = append(stage, 0, 0, 0, 0)
	metaOff := len(stage)
	stage, err = d.AppendPrefix(stage)
	if err != nil {
		s.stage = stage[:mark]
		return 0, err
	}
	sum := wire.ChecksumAdd(0, stage[metaOff:])
	sum = wire.ChecksumAdd(sum, d.Bitmap)
	sum = wire.ChecksumAdd(sum, d.Data)
	binary.BigEndian.PutUint32(stage[crcOff:], sum)
	s.stage = stage
	s.staged = append(s.staged, stagedFrame{end: len(stage), bitmap: d.Bitmap, data: d.Data})
	return wire.HeaderSize + payloadLen, nil
}

// flushStaged ships every coalesced frame in one scatter/gather write
// and resets the staging state. The segment list is assembled here —
// not at stage time — because only now is the stage buffer done
// moving; each frame contributes its header block plus its referenced
// bitmap/data sections, in order. A no-op when nothing is staged.
func (s *session) flushStaged(w io.Writer) error {
	if len(s.staged) == 0 {
		return nil
	}
	vec := s.vec[:0]
	start := 0
	for i := range s.staged {
		f := &s.staged[i]
		vec = append(vec, s.stage[start:f.end])
		if len(f.bitmap) > 0 {
			vec = append(vec, f.bitmap)
		}
		if len(f.data) > 0 {
			vec = append(vec, f.data)
		}
		start = f.end
	}
	saved := vec
	s.vec = vec
	err := wire.WriteFrameVec(w, &s.vec)
	s.vec = saved[:0]
	s.stage = s.stage[:0]
	s.staged = s.staged[:0]
	return err
}

// consumeAck reads one stream acknowledgement and settles it against
// the pending window. An OK ack counts toward pushed; an error ack
// records the lowest-numbered failed frame in *frameErr (the root
// cause — later frames fail as contiguity collateral) and keeps
// draining. The returned size is the acknowledged frame's wire size,
// credited back to the window byte budget. Only a transport or
// protocol failure returns a non-nil error.
func (s *session) consumeAck(r io.Reader, pushed *int, frameErr *error) (int64, error) {
	if err := wire.ReadFrameInto(r, 0, &s.ack, &s.ackBuf); err != nil {
		return 0, err
	}
	if s.ack.Type != wire.TPushStream {
		return 0, fmt.Errorf("gpuckpt: server answered type 0x%02x inside a push stream", s.ack.Type)
	}
	a, err := wire.DecodeStreamAck(s.ack.Payload)
	if err != nil {
		return 0, fmt.Errorf("gpuckpt: push stream ack: %w", err)
	}
	idx := -1
	for i := range s.pending {
		if s.pending[i].ckpt == a.Ckpt {
			idx = i
			break
		}
	}
	if idx < 0 {
		return 0, fmt.Errorf("gpuckpt: unsolicited stream ack for checkpoint %d", a.Ckpt)
	}
	size := s.pending[idx].size
	s.pending[idx] = s.pending[len(s.pending)-1]
	s.pending = s.pending[:len(s.pending)-1]
	if ackErr := a.Err(s.ack.Status); ackErr != nil {
		var cur *wire.StreamFrameError
		if *frameErr == nil || (errors.As(*frameErr, &cur) && a.Ckpt < cur.Ckpt) {
			*frameErr = &wire.StreamFrameError{Ckpt: a.Ckpt, Err: ackErr}
		}
		return size, nil
	}
	*pushed++
	return size, nil
}

// pushGap reserves room for [frame header | CRC32C] ahead of an
// encoded diff staged in place.
var pushGap [wire.HeaderSize + wire.PushChecksumSize]byte

// pushSeq is the v3 fallback: sequential request/response pushes on
// one connection. Each diff encodes into the session's reused staging
// buffer directly behind its frame header — the one copy the
// request/response protocol requires, but no per-diff allocation.
func (c *Client) pushSeq(pc *connpool.Conn, sess *session, h uint32, have, total int, writeDiff func(int, io.Writer) error, pushed *int) error {
	for k := have; k < total; k++ {
		if err := sess.stageEncoded(wire.TPush, h, uint32(k), k, writeDiff); err != nil {
			return err
		}
		pc.NC.SetWriteDeadline(time.Now().Add(c.timeout))
		if err := sess.writeStaged(pc.NC); err != nil {
			return err
		}
		pc.NC.SetReadDeadline(time.Now().Add(c.timeout))
		if err := sess.readResp(pc.NC, wire.TPush); err != nil {
			return err
		}
		*pushed++
	}
	return nil
}

// stageEncoded stages a complete push frame, encoding the diff
// through writeDiff directly into the reused stage buffer behind a
// reserved header gap, then patching the header and checksum once the
// encoded length is known.
func (s *session) stageEncoded(typ uint8, h, ckpt uint32, k int, writeDiff func(int, io.Writer) error) error {
	s.enc.b = append(s.stage[:0], pushGap[:]...)
	if err := writeDiff(k, &s.enc); err != nil {
		s.stage = s.enc.b
		return err
	}
	stage := s.enc.b
	enc := stage[len(pushGap):]
	if _, err := wire.AppendFrameHeader(stage[:0], typ, 0, h, ckpt, wire.PushChecksumSize+len(enc)); err != nil {
		s.stage = stage
		return err
	}
	binary.BigEndian.PutUint32(stage[wire.HeaderSize:], wire.Checksum(enc))
	s.stage = stage
	s.vec = append(s.vec[:0], stage)
	return nil
}

// List returns the lineages hosted by the server.
func (c *Client) List() ([]LineageInfo, error) {
	resp, err := c.roundTrip(&wire.Frame{Type: wire.TList})
	if err != nil {
		return nil, err
	}
	raw, err := wire.DecodeList(resp.Payload)
	if err != nil {
		return nil, err
	}
	out := make([]LineageInfo, len(raw))
	for i, in := range raw {
		out[i] = LineageInfo{Name: in.Name, Len: int(in.Len), Base: int(in.Base), Bytes: int64(in.Bytes)}
	}
	return out, nil
}

// Stats returns the server's operational counters.
func (c *Client) Stats() (ServerStats, error) {
	resp, err := c.roundTrip(&wire.Frame{Type: wire.TStats})
	if err != nil {
		return ServerStats{}, err
	}
	st, err := wire.DecodeStats(resp.Payload)
	if err != nil {
		return ServerStats{}, err
	}
	return ServerStats{
		Requests:        st.Requests,
		BytesIn:         st.BytesIn,
		BytesOut:        st.BytesOut,
		ActiveConns:     st.ActiveConns,
		Conns:           st.Conns,
		Lineages:        st.Lineages,
		Compactions:     st.Compactions,
		CompactedDiffs:  st.CompactedDiffs,
		ReclaimedBytes:  st.ReclaimedBytes,
		BusyRejects:     st.BusyRejects,
		BlocksInterned:  st.BlocksInterned,
		BlockDedupHits:  st.BlockDedupHits,
		BlockBytesSaved: st.BlockBytesSaved,
		BlockGCBlocks:   st.BlockGCBlocks,
		BlockGCBytes:    st.BlockGCBytes,
		Quarantined:     st.Quarantined,
		DigestRounds:    st.DigestRounds,
		SpansHealed:     st.SpansHealed,
		BytesRefetched:  st.BytesRefetched,
		HealQuarantines: st.HealQuarantines,
		Degraded:        st.Degraded,
	}, nil
}

// LineageDigest is the compact anti-entropy summary of a lineage
// span, as served by wire v6 TDigest: coordinates plus a rolling
// CRC32C and a murmur3-128 merkle root over per-diff content
// checksums. Two replicas whose digests match hold byte-identical
// canonical encodings over the span.
type LineageDigest struct {
	// Base and Len delimit the server's stored span.
	Base, Len int
	// Generation is the lineage's compaction generation; it advances
	// when a fold rewrites history, telling reconcilers a span must be
	// resynced wholesale rather than patched.
	Generation uint64
	// SpanLo and SpanHi delimit the digested span (the request clipped
	// to what the server stores).
	SpanLo, SpanHi int
	// CRC folds the span's per-diff checksums; Root is their merkle
	// root, which localizes where two spans differ.
	CRC  uint32
	Root [16]byte
	// Detail holds the per-diff content checksums when requested.
	Detail []uint32
}

// Digest requests a span digest of the named lineage. lo == hi == 0
// digests the server's whole stored span. With detail, the response
// carries per-diff checksums (the span must then be at most
// wire.DigestMaxDetail wide). Returns ErrUnsupported (via errors.Is)
// from servers predating wire v6.
func (c *Client) Digest(name string, lo, hi int, detail bool) (LineageDigest, error) {
	resp, err := c.do(context.Background(), name, &wire.Frame{
		Type:    wire.TDigest,
		Payload: wire.EncodeDigestReq(wire.DigestReq{Lo: uint32(lo), Hi: uint32(hi), Detail: detail}),
	})
	if err != nil {
		return LineageDigest{}, err
	}
	d, err := wire.DecodeDigestResp(resp.Payload)
	if err != nil {
		return LineageDigest{}, fmt.Errorf("gpuckpt: digest %q: %w", name, err)
	}
	return LineageDigest{
		Base:       int(d.Base),
		Len:        int(d.Len),
		Generation: d.Generation,
		SpanLo:     int(d.SpanLo),
		SpanHi:     int(d.SpanHi),
		CRC:        d.CRC,
		Root:       d.Root,
		Detail:     d.Detail,
	}, nil
}

// compact issues one TCompact request. target is an absolute
// checkpoint index, or wire.CompactAuto to let the server's retention
// policy choose.
func (c *Client) compact(name string, target uint32) (CompactInfo, error) {
	resp, err := c.do(context.Background(), name, &wire.Frame{Type: wire.TCompact, Ckpt: target})
	if err != nil {
		return CompactInfo{}, err
	}
	res, err := wire.DecodeCompactResult(resp.Payload)
	if err != nil {
		return CompactInfo{}, fmt.Errorf("gpuckpt: compact %q: %w", name, err)
	}
	return CompactInfo{
		OldBase:    int(res.OldBase),
		NewBase:    int(res.NewBase),
		Pruned:     int(res.Pruned),
		Rewritten:  int(res.Rewritten),
		FreedBytes: res.FreedBytes,
	}, nil
}

// Compact asks the server to fold the named lineage's prefix into a
// full baseline at the index chosen by its retention policy, then
// delete the folded diff files. The transaction is crash-safe on the
// server and every retained checkpoint restores byte-identically
// afterwards. Returns ErrUnsupported (via errors.Is) from servers
// predating lifecycle support.
func (c *Client) Compact(name string) (CompactInfo, error) {
	return c.compact(name, wire.CompactAuto)
}

// CompactTo is Compact with an explicit target baseline k, overriding
// the server's retention policy (but still refusing to fold past a
// pinned checkpoint).
func (c *Client) CompactTo(name string, k int) (CompactInfo, error) {
	if k < 0 || uint32(k) == wire.CompactAuto {
		return CompactInfo{}, fmt.Errorf("gpuckpt: compact target %d out of range", k)
	}
	return c.compact(name, uint32(k))
}

// SetRetention replaces the named lineage's retention policy; policy
// uses the same syntax as ckptd's -retention flag ("keep-all",
// "keep-last=N", "keep-every=K"). It changes which baseline future
// compactions choose; it does not itself compact.
func (c *Client) SetRetention(name, policy string) error {
	_, err := c.do(context.Background(), name, &wire.Frame{Type: wire.TPolicy, Payload: []byte(policy)})
	return err
}

// Retention reports the named lineage's current retention policy.
func (c *Client) Retention(name string) (string, error) {
	resp, err := c.do(context.Background(), name, &wire.Frame{Type: wire.TPolicy})
	if err != nil {
		return "", err
	}
	return string(resp.Payload), nil
}

// diffAt returns checkpoint k (absolute index) of the record in its
// canonical absolute form — the Diff handed to the zero-copy push
// path. For a record loaded from a compacted lineage (Base > 0) the
// ids are rewritten back to absolute form on a shallow clone, so the
// bytes on the wire match what the originating store holds.
func (r *Record) diffAt(k int) (*checkpoint.Diff, error) {
	if k < r.base || k >= r.Len() {
		return nil, fmt.Errorf("gpuckpt: checkpoint %d out of range [%d,%d)", k, r.base, r.Len())
	}
	d := r.rec.Diff(k - r.base)
	if r.base > 0 {
		d = d.CloneShallow()
		if err := d.Rebase(int64(r.base)); err != nil {
			return nil, err
		}
	}
	return d, nil
}

// WriteDiff serializes checkpoint k (absolute index) of the record to
// w in the canonical wire format — the Record counterpart of
// Checkpointer.WriteDiff, used to push archived records to a server.
func (r *Record) WriteDiff(k int, w io.Writer) error {
	d, err := r.diffAt(k)
	if err != nil {
		return err
	}
	return d.Encode(w)
}
