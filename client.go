package gpuckpt

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"time"

	"github.com/gpuckpt/gpuckpt/internal/checkpoint"
	"github.com/gpuckpt/gpuckpt/internal/wire"
)

// Client talks to a ckptd checkpoint server (cmd/ckptd): it pushes
// encoded diffs into named lineages and pulls them back for restore on
// a machine that never held the original Checkpointer — the networked
// form of the paper's §2.3 storage hierarchy bottom.
//
// A Client owns one TCP connection and is safe for concurrent use; the
// protocol is strictly request/response, so concurrent calls serialize
// on the connection. Failures are classified by wire.Transient:
// transport errors (torn connection, deadline expiry, dial failure)
// are retried on a fresh connection under the client's RetryPolicy
// (bounded attempts, exponential backoff with jitter); a StatusBusy
// response from a load-shedding server is retried on the same
// connection after honoring its retry-after hint; any other error the
// server itself reports (RemoteError) is terminal — the server
// answered, so replaying would duplicate work. Push replays are safe
// either way: the v3 protocol's content-hash precondition makes a
// duplicate push of identical bytes idempotent on the server.
type Client struct {
	addr    string
	timeout time.Duration
	retry   RetryPolicy
	dialer  func(addr string, timeout time.Duration) (net.Conn, error)

	mu      sync.Mutex
	conn    net.Conn
	handles map[string]uint32 // lineage name -> server handle (per connection epoch)
	rng     *rand.Rand        // jitter source; guarded by mu
}

// RetryPolicy bounds and paces the client's retries of transiently
// failed requests. The delay before attempt k (k≥2) is
// BaseDelay·Multiplier^(k-2) clamped to MaxDelay, spread by ±Jitter,
// and floored at a load-shedding server's retry-after hint.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries per request, first
	// attempt included (default 4).
	MaxAttempts int
	// BaseDelay is the backoff before the second attempt (default 50ms).
	BaseDelay time.Duration
	// MaxDelay caps the grown backoff (default 2s).
	MaxDelay time.Duration
	// Multiplier grows the delay between consecutive attempts
	// (default 2).
	Multiplier float64
	// Jitter spreads each delay uniformly over ±Jitter·delay so
	// lock-step clients don't retry in convoy (default 0.2).
	Jitter float64
	// Seed seeds the jitter RNG; 0 selects a fixed default. Tests use
	// distinct seeds for reproducible-yet-decorrelated schedules.
	Seed int64
	// Sleep is the delay function (default time.Sleep). Tests stub it
	// to run retry schedules instantly.
	Sleep func(time.Duration)
}

func (p *RetryPolicy) fill() {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 4
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 50 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 2 * time.Second
	}
	if p.Multiplier < 1 {
		p.Multiplier = 2
	}
	if p.Jitter < 0 || p.Jitter > 1 {
		p.Jitter = 0.2
	}
	if p.Sleep == nil {
		p.Sleep = time.Sleep
	}
}

// delay computes the pre-attempt backoff: attempt counts from 2 (the
// first retry), hint is a server-provided retry-after floor (0 if
// none).
func (p *RetryPolicy) delay(attempt int, hint time.Duration, rng *rand.Rand) time.Duration {
	d := float64(p.BaseDelay)
	for i := 2; i < attempt; i++ {
		d *= p.Multiplier
		if d >= float64(p.MaxDelay) {
			break
		}
	}
	if d > float64(p.MaxDelay) {
		d = float64(p.MaxDelay)
	}
	if p.Jitter > 0 {
		d *= 1 + p.Jitter*(2*rng.Float64()-1)
	}
	out := time.Duration(d)
	if out < hint {
		out = hint
	}
	return out
}

// DialConfig parameterizes DialConfigured.
type DialConfig struct {
	// Timeout bounds the dial, the handshake, and each per-operation
	// read and write (0 selects 30s).
	Timeout time.Duration
	// Retry is the transient-failure retry policy; zero fields take
	// defaults.
	Retry RetryPolicy
	// Dialer replaces net.DialTimeout, letting tests interpose a
	// fault-injecting connection (see internal/faults).
	Dialer func(addr string, timeout time.Duration) (net.Conn, error)
}

// RemoteError is a failure reported by the server for one request. The
// connection remains usable and the request is known not to have a
// transport problem, so it is never retried.
type RemoteError = wire.RemoteError

// ErrUnsupported matches (via errors.Is) a RemoteError from a server
// that does not implement the request type — e.g. a lifecycle request
// against a pre-lifecycle ckptd build.
var ErrUnsupported = wire.ErrUnsupported

// LineageInfo describes one lineage hosted by the server.
type LineageInfo struct {
	// Name is the lineage name as passed to Push/Pull.
	Name string
	// Len is one past the highest stored checkpoint index.
	Len int
	// Base is the compaction baseline; checkpoints [Base, Len) are
	// restorable. Zero for a never-compacted lineage.
	Base int
	// Bytes is the total stored diff size on the server.
	Bytes int64
}

// ServerStats reports the server's operational counters.
type ServerStats struct {
	// Requests counts requests the server has accepted (including the
	// stats request reporting them).
	Requests uint64
	// BytesIn and BytesOut count protocol bytes received from and sent
	// to clients.
	BytesIn, BytesOut uint64
	// ActiveConns is the number of currently served connections.
	ActiveConns uint64
	// Conns counts connections accepted over the server lifetime.
	Conns uint64
	// Lineages is the number of lineages the server hosts.
	Lineages uint64
	// Compactions counts committed compaction transactions;
	// CompactedDiffs the diff files they deleted; ReclaimedBytes the
	// net disk bytes they freed.
	Compactions, CompactedDiffs, ReclaimedBytes uint64
	// BusyRejects counts requests and connections the server shed with
	// StatusBusy (connection limit or lineage queue saturation).
	BusyRejects uint64
	// BlocksInterned counts unique blocks written into the server's
	// shared content-addressed block store; BlockDedupHits counts
	// intern requests satisfied by an already-stored block (within or
	// across lineages); BlockBytesSaved is the payload bytes those
	// hits avoided writing.
	BlocksInterned, BlockDedupHits, BlockBytesSaved uint64
	// BlockGCBlocks and BlockGCBytes count unreferenced blocks (and
	// their payload bytes) reclaimed by block-store garbage collection.
	BlockGCBlocks, BlockGCBytes uint64
}

// CompactInfo reports one server-side compaction transaction.
type CompactInfo struct {
	// OldBase and NewBase are the lineage baseline before and after;
	// equal when the retention policy had nothing to fold.
	OldBase, NewBase int
	// Pruned counts deleted diff files; Rewritten counts retained
	// diffs rewritten to drop references into the folded prefix.
	Pruned, Rewritten int
	// FreedBytes is the net on-disk change (can be negative for short
	// chains, where the full baseline outweighs the folded diffs).
	FreedBytes int64
}

// Dial connects to a ckptd server. timeout bounds the dial and every
// per-request network operation (0 selects 30s).
func Dial(addr string, timeout time.Duration) (*Client, error) {
	return DialConfigured(addr, DialConfig{Timeout: timeout})
}

// DialConfigured connects to a ckptd server with an explicit retry
// policy and (optionally) a custom dialer.
func DialConfigured(addr string, cfg DialConfig) (*Client, error) {
	if cfg.Timeout <= 0 {
		cfg.Timeout = 30 * time.Second
	}
	cfg.Retry.fill()
	if cfg.Dialer == nil {
		cfg.Dialer = func(addr string, timeout time.Duration) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, timeout)
		}
	}
	seed := cfg.Retry.Seed
	if seed == 0 {
		seed = 1
	}
	c := &Client{
		addr:    addr,
		timeout: cfg.Timeout,
		retry:   cfg.Retry,
		dialer:  cfg.Dialer,
		rng:     rand.New(rand.NewSource(seed)),
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.connectLocked(); err != nil {
		return nil, err
	}
	return c, nil
}

// connectLocked (re)establishes the connection and handshakes.
// Handles are connection-epoch-scoped defensively: a reconnect may
// reach a restarted server whose handle assignment differs.
func (c *Client) connectLocked() error {
	if c.conn != nil {
		c.conn.Close()
		c.conn = nil
	}
	conn, err := c.dialer(c.addr, c.timeout)
	if err != nil {
		return fmt.Errorf("gpuckpt: dial %s: %w", c.addr, err)
	}
	// The deadline here covers only the handshake; it is cleared once
	// the connection is established, and each operation then arms its
	// own read/write deadlines. A single connect-time deadline would go
	// stale on a long-lived session: every round trip after
	// connect+timeout would fail no matter how healthy the peer is.
	conn.SetDeadline(time.Now().Add(c.timeout))
	if err := wire.Handshake(conn); err != nil {
		conn.Close()
		return fmt.Errorf("gpuckpt: handshake with %s: %w", c.addr, err)
	}
	conn.SetDeadline(time.Time{})
	c.conn = conn
	c.handles = make(map[string]uint32)
	return nil
}

// Close releases the connection.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		return nil
	}
	err := c.conn.Close()
	c.conn = nil
	return err
}

// roundTrip sends req and returns the server's response, retrying
// transient failures under the client's RetryPolicy. Classification is
// wire.Transient: transport failures drop the connection (the next
// attempt redials); a StatusBusy shed keeps the connection and honors
// the server's retry-after hint as the backoff floor; every other
// server-reported error is terminal.
func (c *Client) roundTrip(req *wire.Frame) (*wire.Frame, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var lastErr error
	for attempt := 1; attempt <= c.retry.MaxAttempts; attempt++ {
		if attempt > 1 {
			var hint time.Duration
			var re *RemoteError
			if errors.As(lastErr, &re) && re.Busy {
				hint = re.RetryAfter
			}
			c.retry.Sleep(c.retry.delay(attempt, hint, c.rng))
		}
		if c.conn == nil {
			if err := c.connectLocked(); err != nil {
				lastErr = err
				continue
			}
		}
		resp, err := c.exchangeLocked(req)
		if err == nil {
			return resp, nil
		}
		lastErr = err
		// wire.Transient calls net.ErrClosed terminal (a server must not
		// spin on its own closed listener), but here it can only mean the
		// socket died under us: roundTrip holds c.mu, so Client.Close
		// cannot be mid-request, and redialing is the right response.
		//ckptlint:ignore retryable deliberate client-side exception to the wire taxonomy, see above
		if !wire.Transient(err) && !errors.Is(err, net.ErrClosed) {
			return nil, err
		}
		// Busy is a polite shed over a healthy connection: keep it.
		// Anything else transient means the transport is suspect — drop
		// the connection (and handle cache) and let the next attempt
		// redial.
		var re *RemoteError
		if !(errors.As(err, &re) && re.Busy) && c.conn != nil {
			c.conn.Close()
			c.conn = nil
		}
	}
	return nil, fmt.Errorf("gpuckpt: request failed after %d attempts: %w", c.retry.MaxAttempts, lastErr)
}

// exchangeLocked performs one framed request/response with
// per-operation deadlines: the write deadline arms before the request
// goes out, the read deadline arms after it, so a slow large pull gets
// the full timeout for its read phase rather than whatever the write
// left over.
func (c *Client) exchangeLocked(req *wire.Frame) (*wire.Frame, error) {
	c.conn.SetWriteDeadline(time.Now().Add(c.timeout))
	if err := wire.WriteFrame(c.conn, req); err != nil {
		return nil, err
	}
	c.conn.SetReadDeadline(time.Now().Add(c.timeout))
	resp, err := wire.ReadFrame(c.conn, 0)
	if err != nil {
		return nil, err
	}
	if err := resp.Err(); err != nil {
		return nil, err
	}
	if resp.Type != req.Type {
		return nil, fmt.Errorf("gpuckpt: server answered type 0x%02x to request 0x%02x", resp.Type, req.Type)
	}
	return resp, nil
}

// open resolves a lineage name to its server handle, current length,
// and compaction baseline. The handle is cached per connection epoch;
// length and base are always fresh. A version-1 server omits the base
// payload; DecodeOpenInfo maps that to base 0.
func (c *Client) open(name string) (handle uint32, length, base int, err error) {
	resp, err := c.roundTrip(&wire.Frame{Type: wire.TOpen, Payload: []byte(name)})
	if err != nil {
		return 0, 0, 0, err
	}
	b, err := wire.DecodeOpenInfo(resp.Payload)
	if err != nil {
		return 0, 0, 0, fmt.Errorf("gpuckpt: open %q: %w", name, err)
	}
	c.mu.Lock()
	if c.handles != nil {
		c.handles[name] = resp.Lineage
	}
	c.mu.Unlock()
	return resp.Lineage, int(resp.Ckpt), int(b), nil
}

// handle returns the cached handle for name, opening it if needed.
func (c *Client) handle(name string) (uint32, error) {
	c.mu.Lock()
	h, ok := c.handles[name]
	c.mu.Unlock()
	if ok {
		return h, nil
	}
	h, _, _, err := c.open(name)
	return h, err
}

// Len returns the number of checkpoints the server holds for lineage
// name (creating the lineage, empty, if it does not exist). After a
// compaction only indices [Span] of those remain restorable.
func (c *Client) Len(name string) (int, error) {
	_, n, _, err := c.open(name)
	return n, err
}

// Span returns the restorable index range [base, length) of the named
// lineage: base is the compaction baseline (0 if never compacted) and
// length is one past the highest stored checkpoint.
func (c *Client) Span(name string) (base, length int, err error) {
	_, n, b, err := c.open(name)
	return b, n, err
}

// Push uploads one encoded diff (as produced by Checkpointer.WriteDiff
// or Record.WriteDiff) as checkpoint ckptID of the named lineage. The
// server enforces contiguity: ckptID must equal the lineage's current
// length, and exactly one concurrent pusher of a given id wins. The
// payload travels with a CRC32C precondition, which doubles as the
// idempotency key: a retried push whose response was lost lands as a
// no-op OK instead of a duplicate-append error.
func (c *Client) Push(name string, ckptID int, encoded []byte) error {
	h, err := c.handle(name)
	if err != nil {
		return err
	}
	_, err = c.roundTrip(&wire.Frame{Type: wire.TPush, Lineage: h, Ckpt: uint32(ckptID), Payload: wire.EncodePush(encoded)})
	return err
}

// PullDiff downloads the encoded diff of checkpoint ckptID of the
// named lineage.
func (c *Client) PullDiff(name string, ckptID int) ([]byte, error) {
	h, err := c.handle(name)
	if err != nil {
		return nil, err
	}
	resp, err := c.roundTrip(&wire.Frame{Type: wire.TPull, Lineage: h, Ckpt: uint32(ckptID)})
	if err != nil {
		return nil, err
	}
	return resp.Payload, nil
}

// Pull downloads the restorable span of the named lineage and
// assembles it into a Record. After a server-side compaction the span
// starts at the compaction baseline, not 0; Record.Base reports it and
// Record.Restore keeps accepting the original absolute indices.
func (c *Client) Pull(name string) (*Record, error) {
	_, n, base, err := c.open(name)
	if err != nil {
		return nil, err
	}
	if n == base {
		return nil, fmt.Errorf("gpuckpt: lineage %q is empty on %s", name, c.addr)
	}
	rec := checkpoint.NewRecord()
	for ck := base; ck < n; ck++ {
		b, err := c.PullDiff(name, ck)
		if err != nil {
			return nil, err
		}
		d, err := checkpoint.Decode(bytes.NewReader(b))
		if err != nil {
			return nil, fmt.Errorf("gpuckpt: lineage %q diff %d: %w", name, ck, err)
		}
		if err := d.Rebase(-int64(base)); err != nil {
			return nil, fmt.Errorf("gpuckpt: lineage %q diff %d: %w", name, ck, err)
		}
		if err := rec.Append(d); err != nil {
			return nil, err
		}
	}
	return &Record{rec: rec, base: base}, nil
}

// PushRecord uploads every diff of rec that the server does not
// already hold for the named lineage, returning the number pushed.
func (c *Client) PushRecord(name string, rec *Record) (int, error) {
	return c.pushDiffs(name, rec.Len(), rec.WriteDiff)
}

// PushCheckpointer uploads every diff of ck's record that the server
// does not already hold for the named lineage, returning the number
// pushed. Call it after each Checkpoint (incremental push) or once at
// the end (bulk push) — contiguity makes both equivalent.
func (c *Client) PushCheckpointer(name string, ck *Checkpointer) (int, error) {
	return c.pushDiffs(name, ck.NumCheckpoints(), ck.WriteDiff)
}

func (c *Client) pushDiffs(name string, total int, writeDiff func(k int, w io.Writer) error) (int, error) {
	_, have, _, err := c.open(name)
	if err != nil {
		return 0, err
	}
	pushed := 0
	for k := have; k < total; k++ {
		var buf bytes.Buffer
		if err := writeDiff(k, &buf); err != nil {
			return pushed, err
		}
		if err := c.Push(name, k, buf.Bytes()); err != nil {
			return pushed, err
		}
		pushed++
	}
	return pushed, nil
}

// List returns the lineages hosted by the server.
func (c *Client) List() ([]LineageInfo, error) {
	resp, err := c.roundTrip(&wire.Frame{Type: wire.TList})
	if err != nil {
		return nil, err
	}
	raw, err := wire.DecodeList(resp.Payload)
	if err != nil {
		return nil, err
	}
	out := make([]LineageInfo, len(raw))
	for i, in := range raw {
		out[i] = LineageInfo{Name: in.Name, Len: int(in.Len), Base: int(in.Base), Bytes: int64(in.Bytes)}
	}
	return out, nil
}

// Stats returns the server's operational counters.
func (c *Client) Stats() (ServerStats, error) {
	resp, err := c.roundTrip(&wire.Frame{Type: wire.TStats})
	if err != nil {
		return ServerStats{}, err
	}
	st, err := wire.DecodeStats(resp.Payload)
	if err != nil {
		return ServerStats{}, err
	}
	return ServerStats{
		Requests:        st.Requests,
		BytesIn:         st.BytesIn,
		BytesOut:        st.BytesOut,
		ActiveConns:     st.ActiveConns,
		Conns:           st.Conns,
		Lineages:        st.Lineages,
		Compactions:     st.Compactions,
		CompactedDiffs:  st.CompactedDiffs,
		ReclaimedBytes:  st.ReclaimedBytes,
		BusyRejects:     st.BusyRejects,
		BlocksInterned:  st.BlocksInterned,
		BlockDedupHits:  st.BlockDedupHits,
		BlockBytesSaved: st.BlockBytesSaved,
		BlockGCBlocks:   st.BlockGCBlocks,
		BlockGCBytes:    st.BlockGCBytes,
	}, nil
}

// compact issues one TCompact request. target is an absolute
// checkpoint index, or wire.CompactAuto to let the server's retention
// policy choose.
func (c *Client) compact(name string, target uint32) (CompactInfo, error) {
	h, err := c.handle(name)
	if err != nil {
		return CompactInfo{}, err
	}
	resp, err := c.roundTrip(&wire.Frame{Type: wire.TCompact, Lineage: h, Ckpt: target})
	if err != nil {
		return CompactInfo{}, err
	}
	res, err := wire.DecodeCompactResult(resp.Payload)
	if err != nil {
		return CompactInfo{}, fmt.Errorf("gpuckpt: compact %q: %w", name, err)
	}
	return CompactInfo{
		OldBase:    int(res.OldBase),
		NewBase:    int(res.NewBase),
		Pruned:     int(res.Pruned),
		Rewritten:  int(res.Rewritten),
		FreedBytes: res.FreedBytes,
	}, nil
}

// Compact asks the server to fold the named lineage's prefix into a
// full baseline at the index chosen by its retention policy, then
// delete the folded diff files. The transaction is crash-safe on the
// server and every retained checkpoint restores byte-identically
// afterwards. Returns ErrUnsupported (via errors.Is) from servers
// predating lifecycle support.
func (c *Client) Compact(name string) (CompactInfo, error) {
	return c.compact(name, wire.CompactAuto)
}

// CompactTo is Compact with an explicit target baseline k, overriding
// the server's retention policy (but still refusing to fold past a
// pinned checkpoint).
func (c *Client) CompactTo(name string, k int) (CompactInfo, error) {
	if k < 0 || uint32(k) == wire.CompactAuto {
		return CompactInfo{}, fmt.Errorf("gpuckpt: compact target %d out of range", k)
	}
	return c.compact(name, uint32(k))
}

// SetRetention replaces the named lineage's retention policy; policy
// uses the same syntax as ckptd's -retention flag ("keep-all",
// "keep-last=N", "keep-every=K"). It changes which baseline future
// compactions choose; it does not itself compact.
func (c *Client) SetRetention(name, policy string) error {
	h, err := c.handle(name)
	if err != nil {
		return err
	}
	_, err = c.roundTrip(&wire.Frame{Type: wire.TPolicy, Lineage: h, Payload: []byte(policy)})
	return err
}

// Retention reports the named lineage's current retention policy.
func (c *Client) Retention(name string) (string, error) {
	h, err := c.handle(name)
	if err != nil {
		return "", err
	}
	resp, err := c.roundTrip(&wire.Frame{Type: wire.TPolicy, Lineage: h})
	if err != nil {
		return "", err
	}
	return string(resp.Payload), nil
}

// WriteDiff serializes checkpoint k (absolute index) of the record to
// w in the canonical wire format — the Record counterpart of
// Checkpointer.WriteDiff, used to push archived records to a server.
// For a record loaded from a compacted lineage (Base > 0) the encoded
// ids are rewritten back to absolute form so the bytes match what the
// originating store holds.
func (r *Record) WriteDiff(k int, w io.Writer) error {
	if k < r.base || k >= r.Len() {
		return fmt.Errorf("gpuckpt: checkpoint %d out of range [%d,%d)", k, r.base, r.Len())
	}
	d := r.rec.Diff(k - r.base)
	if r.base > 0 {
		d = d.CloneShallow()
		if err := d.Rebase(int64(r.base)); err != nil {
			return err
		}
	}
	return d.Encode(w)
}
