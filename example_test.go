package gpuckpt_test

import (
	"bytes"
	"fmt"
	"log"

	gpuckpt "github.com/gpuckpt/gpuckpt"
)

// ExampleNew shows the minimal checkpoint/restore loop: only bytes
// never seen before in the record are stored.
func ExampleNew() {
	buf := make([]byte, 64*1024)
	for i := range buf {
		buf[i] = byte(i / 256) // compressible, deterministic content
	}

	ck, err := gpuckpt.New(gpuckpt.Config{Method: gpuckpt.MethodTree, ChunkSize: 128}, len(buf))
	if err != nil {
		log.Fatal(err)
	}
	defer ck.Close()

	// Each 256-byte run of equal bytes spans two 128-byte chunks, so
	// even the first checkpoint halves via spatial de-duplication.
	res0, _ := ck.Checkpoint(buf)
	copy(buf[1000:1100], []byte("a sparse update to the application state, tracked below"))
	res1, _ := ck.Checkpoint(buf) // second: only the touched chunks

	fmt.Printf("ckpt 0 stored %d bytes of %d\n", res0.DataBytes, res0.InputBytes)
	fmt.Printf("ckpt 1 stored %d bytes of %d\n", res1.DataBytes, res1.InputBytes)

	state, _ := ck.Restore(0)
	fmt.Println("restore 0 exact:", state[1000] == byte(1000/256))
	// Output:
	// ckpt 0 stored 32768 bytes of 65536
	// ckpt 1 stored 256 bytes of 65536
	// restore 0 exact: true
}

// ExampleGroup protects two buffers of one process together.
func ExampleGroup() {
	grid := bytes.Repeat([]byte{1}, 4096)
	solver := bytes.Repeat([]byte{2}, 1024)

	g := gpuckpt.NewGroup(gpuckpt.Config{Method: gpuckpt.MethodTree, ChunkSize: 64})
	defer g.Close()
	if err := g.Protect("grid", len(grid)); err != nil {
		log.Fatal(err)
	}
	if err := g.Protect("solver", len(solver)); err != nil {
		log.Fatal(err)
	}

	res, err := g.Checkpoint(map[string][]byte{"grid": grid, "solver": solver})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("members:", g.Members())
	fmt.Println("input bytes:", res.InputBytes)

	states, _ := g.RestoreLatest()
	fmt.Println("grid restored:", bytes.Equal(states["grid"], grid))
	// Output:
	// members: [grid solver]
	// input bytes: 5120
	// grid restored: true
}

// ExampleReadRecord restores a lineage on a machine that never held
// the Checkpointer, from the serialized diff stream alone.
func ExampleReadRecord() {
	buf := bytes.Repeat([]byte{9}, 8192)
	ck, err := gpuckpt.New(gpuckpt.Config{Method: gpuckpt.MethodTree, ChunkSize: 64}, len(buf))
	if err != nil {
		log.Fatal(err)
	}
	defer ck.Close()

	var stream bytes.Buffer
	for i := 0; i < 2; i++ {
		if i > 0 {
			copy(buf[0:5], "hello")
		}
		if _, err := ck.Checkpoint(buf); err != nil {
			log.Fatal(err)
		}
		if err := ck.WriteDiff(i, &stream); err != nil {
			log.Fatal(err)
		}
	}

	rec, err := gpuckpt.ReadRecord(&stream)
	if err != nil {
		log.Fatal(err)
	}
	state, _ := rec.Restore(1)
	fmt.Println("checkpoints:", rec.Len())
	fmt.Printf("state prefix: %s\n", state[0:5])
	// Output:
	// checkpoints: 2
	// state prefix: hello
}
