package gpuckpt

import (
	"fmt"

	"github.com/gpuckpt/gpuckpt/internal/graph"
	"github.com/gpuckpt/gpuckpt/internal/oranges"
	"github.com/gpuckpt/gpuckpt/internal/parallel"
	"github.com/gpuckpt/gpuckpt/internal/workload"
)

// WorkloadConfig parameterizes BuildWorkloadSeries.
type WorkloadConfig struct {
	// Graph is one of the Table 1 input names (see WorkloadGraphs).
	Graph string
	// TargetVertices scales the synthetic graph (the paper's inputs
	// have 11-18 M vertices; default 30000 for laptop-scale runs).
	TargetVertices int
	// Checkpoints is the number of evenly spaced GDV snapshots
	// (default 10).
	Checkpoints int
	// MaxGraphletSize bounds the enumerated graphlets, 2..5
	// (default 4; 5 is exact-paper but far more expensive).
	MaxGraphletSize int
	// Seed makes the synthetic graph deterministic.
	Seed int64
	// Workers bounds the enumeration worker pool (0 = GOMAXPROCS).
	Workers int
	// ApplyGorder enables the Gorder cache-reordering pre-process the
	// paper applies to every input (§3.2). The synthetic generators
	// already emit vertices in trace order (the locality Gorder exists
	// to recover on arbitrarily-ordered real inputs), so it is off by
	// default; see DESIGN.md.
	ApplyGorder bool
	// Processes and Rank select a strong-scaling partition: this
	// series captures the GDV replica of process Rank out of
	// Processes, which enumerates the interleaved root share
	// Rank, Rank+Processes, ... (§3.3). Zero Processes means a single
	// process owning all roots.
	Processes int
	Rank      int
}

func (c WorkloadConfig) withDefaults() WorkloadConfig {
	if c.Graph == "" {
		c.Graph = "Message Race"
	}
	if c.TargetVertices <= 0 {
		c.TargetVertices = 30000
	}
	if c.Checkpoints <= 0 {
		c.Checkpoints = 10
	}
	if c.MaxGraphletSize == 0 {
		c.MaxGraphletSize = 4
	}
	return c
}

// WorkloadSeries is a reproducible checkpoint workload: the GDV
// snapshots of one ORANGES run over a synthetic Table 1 graph. Feed
// Images[0], Images[1], ... to a Checkpointer to reproduce the paper's
// checkpointing pattern.
type WorkloadSeries struct {
	// GraphName is the Table 1 input name.
	GraphName string
	// Vertices and Edges describe the generated graph (Edges counts
	// directed adjacency entries).
	Vertices int
	Edges    int64
	// DataLen is the GDV buffer size in bytes (Table 1's "GDV size").
	DataLen int
	// Images are the checkpoint snapshots, in order.
	Images [][]byte
}

// WorkloadGraphs lists the Table 1 input names accepted by
// BuildWorkloadSeries.
func WorkloadGraphs() []string {
	var names []string
	for _, e := range graph.Catalog() {
		names = append(names, e.Name)
	}
	return names
}

// BuildWorkloadSeries generates a Table 1 input graph at the requested
// scale, applies Gorder, runs the ORANGES graphlet-degree-vector
// application over it, and captures the checkpoint snapshot series of
// §3.2's scenarios.
func BuildWorkloadSeries(cfg WorkloadConfig) (*WorkloadSeries, error) {
	cfg = cfg.withDefaults()
	entry, err := graph.CatalogByName(cfg.Graph)
	if err != nil {
		return nil, fmt.Errorf("gpuckpt: %w (known graphs: %v)", err, WorkloadGraphs())
	}
	g, err := entry.Generate(cfg.TargetVertices, cfg.Seed)
	if err != nil {
		return nil, err
	}
	if cfg.ApplyGorder {
		g, err = graph.ApplyGorder(g, 5)
		if err != nil {
			return nil, err
		}
	}
	pool := parallel.NewPool(cfg.Workers)
	out := &WorkloadSeries{
		GraphName: g.Name(),
		Vertices:  g.NumVertices(),
		Edges:     g.NumEdges(),
	}
	if cfg.Processes > 1 {
		if cfg.Rank < 0 || cfg.Rank >= cfg.Processes {
			return nil, fmt.Errorf("gpuckpt: rank %d outside [0,%d)", cfg.Rank, cfg.Processes)
		}
		r, err := oranges.NewRunner(g, pool, cfg.MaxGraphletSize)
		if err != nil {
			return nil, err
		}
		out.DataLen = r.GDV().SizeBytes()
		err = r.RunStrideWithSnapshots(cfg.Rank, cfg.Processes, cfg.Checkpoints, func(ck int, img []byte) error {
			cp := make([]byte, len(img))
			copy(cp, img)
			out.Images = append(out.Images, cp)
			return nil
		})
		if err != nil {
			return nil, err
		}
		return out, nil
	}
	series, err := workload.BuildGDVSeries(g, cfg.Checkpoints, cfg.MaxGraphletSize, pool)
	if err != nil {
		return nil, err
	}
	out.DataLen = series.DataLen
	out.Images = series.Images
	return out, nil
}
