# gpuckpt build/verify entry points. `make ci` is what a CI job runs:
# formatting, vet, the project's own static-analysis suite (ckptlint),
# build, the full test suite under the race detector (the ckptd server
# and client are required to be race-clean), and a short fuzz pass over
# every untrusted decode surface.

GO ?= go

# Fuzz targets and their packages; fuzz-smoke runs each for
# $(FUZZTIME), fuzz for $(FUZZTIME_LONG). Native fuzzing allows one
# -fuzz target per invocation, hence the loop.
FUZZ_TARGETS = \
	FuzzFrameDecode:./internal/wire \
	FuzzHandshake:./internal/wire \
	FuzzStreamAck:./internal/wire \
	FuzzSubscribeDecode:./internal/wire \
	FuzzDigestDecode:./internal/wire \
	FuzzDiffDecode:./internal/checkpoint \
	FuzzRestore:./internal/checkpoint \
	FuzzManifestDecode:./internal/checkpoint \
	FuzzDiffChecksum:./internal/checkpoint \
	FuzzBlockIndexDecode:./internal/blockstore \
	FuzzBlockJournalDecode:./internal/blockstore
FUZZTIME ?= 5s
FUZZTIME_LONG ?= 5m

.PHONY: ci fmt vet lint build test race bench bench-smoke bench-json bench-wire bench-failover bench-heal saturate-smoke failover-smoke heal-smoke fuzz fuzz-smoke chaos-smoke race-chaos

ci: fmt vet lint build race bench-smoke saturate-smoke failover-smoke heal-smoke fuzz-smoke chaos-smoke

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

# lint runs the repo-specific checks — noalloc, clockguard,
# closecontract, wireerr, retryable, nowallclock, bufreuse, and the
# whole-repo concurrency-contract analyses guardedby, lockorder, and
# goroleak; see internal/lint and `go run ./cmd/ckptlint -list`.
# Add -json for machine-readable output.
lint:
	$(GO) run ./cmd/ckptlint .

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ ./...

# bench-smoke keeps every benchmark compiling and running (one
# iteration each) so perf-tracking code cannot rot unnoticed.
bench-smoke:
	$(GO) test -bench=. -benchtime=1x -run=^$$ ./...

# bench-json regenerates BENCH_hotpath.json with full measured runs of
# the HotPath suite (ns/op, B/op, allocs/op, real GB/s per method).
bench-json:
	GPUCKPT_BENCH_JSON=BENCH_hotpath.json $(GO) test -run TestWriteHotPathBenchJSON -v .

# bench-wire regenerates BENCH_wire.json from the loopback saturation
# experiment: v4 windowed streaming push vs v3 request/response on the
# same chain. The run itself enforces the >= 3x streamed-speedup gate
# at this chain length and fails the target when the wire regresses.
bench-wire:
	$(GO) run ./cmd/ckptbench -exp saturate -chain 256 -json BENCH_wire.json

# saturate-smoke is the CI slice of bench-wire: the same experiment
# and speedup gate at the smallest gated chain, without rewriting the
# checked-in JSON.
saturate-smoke:
	$(GO) run ./cmd/ckptbench -exp saturate -chain 64

# bench-failover regenerates BENCH_failover.json from the hot-standby
# drill: a follower tails a live primary's v5 subscription stream, the
# primary is killed, and the follower promotes. The run enforces the
# byte-exact-state, zero-replay and sub-second kill->serving gates.
bench-failover:
	$(GO) run ./cmd/ckptbench -exp failover -chain 64 -json BENCH_failover.json

# failover-smoke is the CI slice of bench-failover: same experiment
# and gates on a shorter chain, without rewriting the checked-in JSON.
failover-smoke:
	$(GO) run ./cmd/ckptbench -exp failover -chain 12

# bench-heal regenerates BENCH_heal.json from the anti-entropy drill:
# two peered replicas, a quarter of one replica's diffs bit-rotted on
# disk, background reconcilers healing to convergence. The run
# enforces the converge-within-budget, byte-exact-restore, pull-only
# (healthy peer untouched) and zero-fail-stop gates.
bench-heal:
	$(GO) run ./cmd/ckptbench -exp heal -chain 64 -json BENCH_heal.json

# heal-smoke is the CI slice of bench-heal: same experiment and gates
# on a shorter chain, without rewriting the checked-in JSON.
heal-smoke:
	$(GO) run ./cmd/ckptbench -exp heal -chain 16

# fuzz-smoke gives each decode-surface fuzz target a short budget on
# top of the checked-in seed corpus; enough to catch regressions in the
# validation paths without stalling CI.
fuzz-smoke:
	@for t in $(FUZZ_TARGETS); do \
		name=$${t%%:*}; pkg=$${t##*:}; \
		echo "fuzz $$name ($(FUZZTIME))"; \
		$(GO) test -run='^$$' -fuzz="^$$name$$" -fuzztime=$(FUZZTIME) $$pkg || exit 1; \
	done

# chaos-smoke runs the seeded fault-injection suite (internal/faults)
# under the race detector, plus the TestRace concurrency regression
# tests guarding the bugs the guardedby/lockorder/goroleak analyzers
# found (Serve worker join, locked pin reads, idle-session pruning).
# Every schedule is deterministic — a failure reproduces by rerunning
# the named test, no flake triage needed.
chaos-smoke:
	$(GO) test -race -count=1 -run '^TestChaos' ./internal/faults
	$(GO) test -race -count=1 -run '^TestRace' \
		./internal/server ./internal/lifecycle ./internal/connpool

# race-chaos is the long variant: the same chaos schedules and race
# regression tests, repeated so the scheduler explores more
# interleavings. RACE_COUNT bounds the run; it stays seeded and
# deterministic per iteration.
RACE_COUNT ?= 5
race-chaos:
	$(GO) test -race -count=$(RACE_COUNT) -run '^TestChaos' ./internal/faults
	$(GO) test -race -count=$(RACE_COUNT) -run '^TestRace' \
		./internal/server ./internal/lifecycle ./internal/connpool

fuzz:
	@for t in $(FUZZ_TARGETS); do \
		name=$${t%%:*}; pkg=$${t##*:}; \
		echo "fuzz $$name ($(FUZZTIME_LONG))"; \
		$(GO) test -run='^$$' -fuzz="^$$name$$" -fuzztime=$(FUZZTIME_LONG) $$pkg || exit 1; \
	done
