# gpuckpt build/verify entry points. `make ci` is what a CI job runs:
# formatting, vet, build, and the full test suite under the race
# detector (the ckptd server and client are required to be race-clean).

GO ?= go

.PHONY: ci fmt vet build test race bench

ci: fmt vet build race

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ ./...
