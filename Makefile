# gpuckpt build/verify entry points. `make ci` is what a CI job runs:
# formatting, vet, build, and the full test suite under the race
# detector (the ckptd server and client are required to be race-clean).

GO ?= go

.PHONY: ci fmt vet build test race bench bench-smoke bench-json

ci: fmt vet build race bench-smoke

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ ./...

# bench-smoke keeps every benchmark compiling and running (one
# iteration each) so perf-tracking code cannot rot unnoticed.
bench-smoke:
	$(GO) test -bench=. -benchtime=1x -run=^$$ ./...

# bench-json regenerates BENCH_hotpath.json with full measured runs of
# the HotPath suite (ns/op, B/op, allocs/op, real GB/s per method).
bench-json:
	GPUCKPT_BENCH_JSON=BENCH_hotpath.json $(GO) test -run TestWriteHotPathBenchJSON -v .
