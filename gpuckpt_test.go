package gpuckpt

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/gpuckpt/gpuckpt/internal/device"
)

func TestPublicAPIRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	buf := make([]byte, 64*1024+17)
	rng.Read(buf)

	for _, m := range []Method{MethodFull, MethodBasic, MethodList, MethodTree} {
		ck, err := New(Config{Method: m, ChunkSize: 64}, len(buf))
		if err != nil {
			t.Fatal(err)
		}
		snaps := [][]byte{append([]byte(nil), buf...)}
		for i := 0; i < 4; i++ {
			off := rng.Intn(len(buf) - 500)
			rng.Read(buf[off : off+500])
			snaps = append(snaps, append([]byte(nil), buf...))
		}
		for i, s := range snaps {
			res, err := ck.Checkpoint(s)
			if err != nil {
				t.Fatalf("%v ckpt %d: %v", m, i, err)
			}
			if res.CkptID != uint32(i) || res.InputBytes != int64(len(buf)) {
				t.Fatalf("%v: bad result %+v", m, res)
			}
			if res.String() == "" {
				t.Fatal("empty result string")
			}
		}
		if ck.NumCheckpoints() != len(snaps) {
			t.Fatalf("%v: %d checkpoints recorded", m, ck.NumCheckpoints())
		}
		for i, s := range snaps {
			got, err := ck.Restore(i)
			if err != nil {
				t.Fatalf("%v restore %d: %v", m, i, err)
			}
			if !bytes.Equal(got, s) {
				t.Fatalf("%v restore %d mismatch", m, i)
			}
		}
		latest, err := ck.RestoreLatest()
		if err != nil || !bytes.Equal(latest, snaps[len(snaps)-1]) {
			t.Fatalf("%v restore latest failed: %v", m, err)
		}
		if ck.RecordBytes() <= 0 || ck.ModeledTime() <= 0 {
			t.Fatalf("%v: degenerate accounting", m)
		}
		ck.Close()
	}
}

func TestTreeBeatsFullOnRecordSize(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	buf := make([]byte, 1<<17)
	rng.Read(buf)
	record := func(m Method) int64 {
		ck, err := New(Config{Method: m, ChunkSize: 128}, len(buf))
		if err != nil {
			t.Fatal(err)
		}
		defer ck.Close()
		b := append([]byte(nil), buf...)
		for i := 0; i < 6; i++ {
			if i > 0 {
				off := rng.Intn(len(b) - 100)
				rng.Read(b[off : off+100])
			}
			if _, err := ck.Checkpoint(b); err != nil {
				t.Fatal(err)
			}
		}
		return ck.RecordBytes()
	}
	tree := record(MethodTree)
	full := record(MethodFull)
	if tree*5 > full {
		t.Fatalf("Tree record %d not well below Full %d on sparse updates", tree, full)
	}
}

func TestResultMetrics(t *testing.T) {
	var zero Result
	if zero.Ratio() != 0 || zero.Throughput() != 0 {
		t.Fatal("zero result not handled")
	}
	r := Result{InputBytes: 100, StoredBytes: 50, DedupTime: 1e9, TransferTime: 1e9}
	if r.Ratio() != 2 {
		t.Fatal("ratio wrong")
	}
	if r.Throughput() != 50 {
		t.Fatalf("throughput %v", r.Throughput())
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}, 0); err == nil {
		t.Fatal("zero length accepted")
	}
	if _, err := New(Config{Method: Method(9)}, 100); err == nil {
		t.Fatal("bad method accepted")
	}
}

func TestWriteDiffAndReadRecord(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	buf := make([]byte, 8192)
	rng.Read(buf)
	ck, err := New(Config{Method: MethodTree, ChunkSize: 64}, len(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer ck.Close()
	var stream bytes.Buffer
	snaps := [][]byte{}
	for i := 0; i < 3; i++ {
		if i > 0 {
			off := rng.Intn(len(buf) - 256)
			rng.Read(buf[off : off+256])
		}
		snaps = append(snaps, append([]byte(nil), buf...))
		if _, err := ck.Checkpoint(buf); err != nil {
			t.Fatal(err)
		}
		if err := ck.WriteDiff(i, &stream); err != nil {
			t.Fatal(err)
		}
	}
	if err := ck.WriteDiff(99, &stream); err == nil {
		t.Fatal("out-of-range diff written")
	}

	rec, err := ReadRecord(bytes.NewReader(stream.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if rec.Len() != 3 || rec.TotalBytes() <= 0 {
		t.Fatalf("record has %d diffs", rec.Len())
	}
	for i, s := range snaps {
		got, err := rec.Restore(i)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, s) {
			t.Fatalf("record restore %d mismatch", i)
		}
	}
	// Truncated stream mid-diff must error.
	if _, err := ReadRecord(bytes.NewReader(stream.Bytes()[:stream.Len()-5])); err == nil {
		t.Fatal("truncated record accepted")
	}
	// Empty stream must error.
	if _, err := ReadRecord(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty record accepted")
	}
}

func TestRestoreLatestEmpty(t *testing.T) {
	ck, err := New(Config{Method: MethodTree}, 100)
	if err != nil {
		t.Fatal(err)
	}
	defer ck.Close()
	if _, err := ck.RestoreLatest(); err == nil {
		t.Fatal("restore of empty record succeeded")
	}
}

func TestQuickRoundTripTree(t *testing.T) {
	f := func(seed int64, sizeRaw uint16) bool {
		size := int(sizeRaw)%5000 + 100
		rng := rand.New(rand.NewSource(seed))
		buf := make([]byte, size)
		rng.Read(buf)
		ck, err := New(Config{Method: MethodTree, ChunkSize: 48}, size)
		if err != nil {
			return false
		}
		defer ck.Close()
		var snaps [][]byte
		for i := 0; i < 3; i++ {
			if i > 0 {
				n := rng.Intn(size/2) + 1
				off := rng.Intn(size - n + 1)
				rng.Read(buf[off : off+n])
			}
			snaps = append(snaps, append([]byte(nil), buf...))
			if _, err := ck.Checkpoint(buf); err != nil {
				return false
			}
		}
		for i, s := range snaps {
			got, err := ck.Restore(i)
			if err != nil || !bytes.Equal(got, s) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestAblationConfigsStillCorrect(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	buf := make([]byte, 32768)
	rng.Read(buf)
	ablations := []Ablation{
		{SingleStage: true},
		{PerThreadGather: true},
		{UnfusedKernels: true},
		{HashCostMultiplier: 20},
		{SingleStage: true, PerThreadGather: true, UnfusedKernels: true},
	}
	for i, ab := range ablations {
		ck, err := New(Config{Method: MethodTree, ChunkSize: 64, Ablation: ab}, len(buf))
		if err != nil {
			t.Fatal(err)
		}
		b := append([]byte(nil), buf...)
		if _, err := ck.Checkpoint(b); err != nil {
			t.Fatal(err)
		}
		copy(b[100:], b[5000:5500])
		if _, err := ck.Checkpoint(b); err != nil {
			t.Fatal(err)
		}
		got, err := ck.RestoreLatest()
		if err != nil || !bytes.Equal(got, b) {
			t.Fatalf("ablation %d broke restore: %v", i, err)
		}
		ck.Close()
	}
}

func TestBuildWorkloadSeries(t *testing.T) {
	for _, name := range WorkloadGraphs() {
		s, err := BuildWorkloadSeries(WorkloadConfig{
			Graph:          name,
			TargetVertices: 1500,
			Checkpoints:    3,
		})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(s.Images) != 3 {
			t.Fatalf("%s: %d images", name, len(s.Images))
		}
		padded := (s.Vertices + 127) / 128 * 128
		if s.DataLen != padded*73*4 {
			t.Fatalf("%s: GDV size %d for %d vertices", name, s.DataLen, s.Vertices)
		}
		if s.Edges <= 0 {
			t.Fatalf("%s: no edges", name)
		}
		// The series feeds straight into a Checkpointer.
		ck, err := New(Config{Method: MethodTree, ChunkSize: 128}, s.DataLen)
		if err != nil {
			t.Fatal(err)
		}
		for _, img := range s.Images {
			if _, err := ck.Checkpoint(img); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
		}
		got, err := ck.RestoreLatest()
		if err != nil || !bytes.Equal(got, s.Images[2]) {
			t.Fatalf("%s: workload restore failed: %v", name, err)
		}
		ck.Close()
	}
	if _, err := BuildWorkloadSeries(WorkloadConfig{Graph: "bogus"}); err == nil {
		t.Fatal("unknown graph accepted")
	}
}

func TestGPUModelDefaults(t *testing.T) {
	m := A100()
	if m.MemBandwidth <= 0 || m.PCIeBandwidth <= 0 || m.MemCapacity <= 0 {
		t.Fatal("A100 model degenerate")
	}
	if len(WorkloadGraphs()) != 5 {
		t.Fatal("workload graph list incomplete")
	}
}

func TestGPUModelCustomFieldsSurvive(t *testing.T) {
	def := device.A100()

	// Regression: a custom model with MemBandwidth unset but other
	// fields set used to be silently replaced by the full A100
	// profile, discarding the explicit values.
	custom := GPUModel{Name: "toy", PCIeBandwidth: 1e9, MemCapacity: 1 << 30}
	p := custom.toParams()
	if p.Name != "toy" || p.PCIeBandwidth != 1e9 || p.MemCapacity != 1<<30 {
		t.Fatalf("explicit fields lost: %+v", p)
	}
	// Unset fields are filled from defaults, individually.
	if p.MemBandwidth != def.MemBandwidth || p.HashRate != def.HashRate ||
		p.MapOpRate != def.MapOpRate || p.KernelLaunchLatency != def.KernelLaunchLatency ||
		p.ChunkSetupRate != def.ChunkSetupRate {
		t.Fatalf("unset fields not defaulted: %+v", p)
	}

	// The zero model still selects the full default profile.
	if got := (GPUModel{}).toParams(); got != def {
		t.Fatalf("zero model: got %+v want %+v", got, def)
	}

	// A fully specified model passes through untouched.
	full := GPUModel{Name: "x", MemBandwidth: 1, PCIeBandwidth: 2, HashRate: 3,
		MapOpRate: 4, KernelLaunchLatency: 5, MemCapacity: 6}
	fp := full.toParams()
	if fp.Name != "x" || fp.MemBandwidth != 1 || fp.PCIeBandwidth != 2 ||
		fp.HashRate != 3 || fp.MapOpRate != 4 || fp.KernelLaunchLatency != 5 || fp.MemCapacity != 6 {
		t.Fatalf("full model mangled: %+v", fp)
	}
}
