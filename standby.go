package gpuckpt

import (
	"context"
	"net"
	"time"

	"github.com/gpuckpt/gpuckpt/internal/follower"
)

// FollowerConfig configures a hot standby for one lineage.
type FollowerConfig struct {
	// Lineage is the lineage to mirror. Required.
	Lineage string
	// Dir is the local mirror directory; a non-empty mirror resumes
	// from its stored cursor. Required.
	Dir string
	// Timeout bounds dials and round trips (default 10s).
	Timeout time.Duration
	// PollInterval is the tail cadence against a v4 primary that
	// cannot stream (default 200ms).
	PollInterval time.Duration
	// Dialer replaces net.DialTimeout, letting tests interpose a
	// fault-injecting transport.
	Dialer func(addr string, timeout time.Duration) (net.Conn, error)
	// Logf sinks follower logs (default: silent).
	Logf func(format string, args ...any)
	// OnApply, if set, runs after each checkpoint is applied and
	// durable locally — the hook failover measurements hang off.
	OnApply func(ckpt int)
}

// FollowerStats mirrors the standby's replication progress; see the
// field docs on the internal type for exact semantics.
type FollowerStats = follower.Stats

// Promotion is the serving-ready result of Follower.Promote: the
// mirrored span plus the already-materialized state of its newest
// checkpoint. No diff was applied on the way here — the standby paid
// that cost incrementally while the primary was alive.
type Promotion struct {
	// Lineage and Dir identify the promoted mirror.
	Lineage, Dir string
	// Base and Len delimit the restorable span [Base, Len).
	Base, Len int
	// Record restores any checkpoint in the span by absolute index.
	// Nil when the lineage was empty at promotion.
	Record *Record
	// State is the newest checkpoint's materialized image (nil when
	// empty). Owned by the caller from here on.
	State []byte
}

// Follower is a live hot standby: it tails a primary's diff stream
// for one lineage (wire v5 subscription, with poll fallback against
// v4 primaries) and keeps both a durable local mirror and an applied
// in-memory image current. Promote turns it into a serving-ready
// replica in O(1). A Follower must be Closed.
type Follower struct {
	fl *follower.Follower
}

// NewFollower builds a hot standby mirroring cfg.Lineage from the
// primary at addr. Drive it with Run; it replicates until Promote or
// Close.
func NewFollower(addr string, cfg FollowerConfig) (*Follower, error) {
	fl, err := follower.New(follower.Options{
		Addr:         addr,
		Lineage:      cfg.Lineage,
		Dir:          cfg.Dir,
		Timeout:      cfg.Timeout,
		PollInterval: cfg.PollInterval,
		Dialer:       cfg.Dialer,
		Logf:         cfg.Logf,
		OnApply:      cfg.OnApply,
	})
	if err != nil {
		return nil, err
	}
	return &Follower{fl: fl}, nil
}

// Run replicates until ctx is cancelled or Promote/Close is called.
// It reconnects through primary outages with bounded backoff and
// always returns nil on a deliberate stop — a standby's job is to
// outlive its primary.
func (f *Follower) Run(ctx context.Context) error { return f.fl.Run(ctx) }

// Stats snapshots replication progress.
func (f *Follower) Stats() FollowerStats { return f.fl.Stats() }

// Promote stops replication and returns the serving-ready replica.
// The mirror directory stays owned by the Follower until Close; a
// caller that wants to serve Dir with its own store (e.g. a promoted
// ckptd) must Close first.
func (f *Follower) Promote() (*Promotion, error) {
	p, err := f.fl.Promote()
	if err != nil {
		return nil, err
	}
	out := &Promotion{Lineage: p.Lineage, Dir: p.Dir, Base: p.Base, Len: p.Len, State: p.State}
	if p.Record != nil {
		out.Record = &Record{rec: p.Record, base: p.Base}
	}
	return out, nil
}

// Close stops replication and releases the connection pool and the
// mirror store. Idempotent.
func (f *Follower) Close() error { return f.fl.Close() }

// Lineages lists the lineage directory of the primary at addr — the
// discovery step before spawning one Follower per lineage.
func Lineages(addr string, timeout time.Duration) ([]LineageInfo, error) {
	infos, err := follower.Lineages(addr, timeout, nil)
	if err != nil {
		return nil, err
	}
	out := make([]LineageInfo, len(infos))
	for i, in := range infos {
		out[i] = LineageInfo{Name: in.Name, Len: int(in.Len), Base: int(in.Base), Bytes: int64(in.Bytes)}
	}
	return out, nil
}
