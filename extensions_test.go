package gpuckpt

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"testing"
	"time"
)

func sparseCounters(rng *rand.Rand, n int) []byte {
	b := make([]byte, n)
	for i := 0; i+4 <= n; i += 4 {
		if rng.Intn(6) == 0 {
			binary.LittleEndian.PutUint32(b[i:], uint32(rng.Intn(40)))
		}
	}
	return b
}

func TestCompressionConfig(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	buf := sparseCounters(rng, 128*1024)

	record := func(codec string) int64 {
		ck, err := New(Config{Method: MethodTree, ChunkSize: 128, Compression: codec}, len(buf))
		if err != nil {
			t.Fatal(err)
		}
		defer ck.Close()
		b := append([]byte(nil), buf...)
		var snaps [][]byte
		for i := 0; i < 4; i++ {
			if i > 0 {
				off := rng.Intn(len(b) - 4096)
				copy(b[off:off+4096], sparseCounters(rng, 4096))
			}
			snaps = append(snaps, append([]byte(nil), b...))
			if _, err := ck.Checkpoint(b); err != nil {
				t.Fatal(err)
			}
		}
		for i, s := range snaps {
			got, err := ck.Restore(i)
			if err != nil || !bytes.Equal(got, s) {
				t.Fatalf("codec %q restore %d failed: %v", codec, i, err)
			}
		}
		return ck.RecordBytes()
	}

	raw := record("")
	for _, codec := range []string{"LZ4", "Cascaded", "Bitcomp", "Deflate", "Zstd*"} {
		comp := record(codec)
		if comp >= raw {
			t.Errorf("codec %q record %d not below raw %d", codec, comp, raw)
		}
	}
	if _, err := New(Config{Compression: "nope"}, 100); err == nil {
		t.Fatal("unknown codec accepted")
	}
}

func TestStreamingConfig(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	buf := make([]byte, 1<<20)
	rng.Read(buf)

	run := func(streaming bool) Result {
		ck, err := New(Config{Method: MethodFull, Streaming: streaming}, len(buf))
		if err != nil {
			t.Fatal(err)
		}
		defer ck.Close()
		res, err := ck.Checkpoint(buf)
		if err != nil {
			t.Fatal(err)
		}
		if got, err := ck.Restore(0); err != nil || !bytes.Equal(got, buf) {
			t.Fatalf("restore failed: %v", err)
		}
		return res
	}
	blocking := run(false)
	streamed := run(true)
	if streamed.TransferTime > blocking.TransferTime {
		t.Fatalf("streaming transfer %v exceeds blocking %v",
			streamed.TransferTime, blocking.TransferTime)
	}
}

func TestVerifyDuplicatesConfig(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	buf := make([]byte, 64*1024)
	rng.Read(buf)
	ck, err := New(Config{Method: MethodTree, ChunkSize: 64, VerifyDuplicates: true}, len(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer ck.Close()
	if _, err := ck.Checkpoint(buf); err != nil {
		t.Fatal(err)
	}
	copy(buf[0:8192], buf[16384:24576]) // aligned move
	if _, err := ck.Checkpoint(buf); err != nil {
		t.Fatal(err)
	}
	got, err := ck.RestoreLatest()
	if err != nil || !bytes.Equal(got, buf) {
		t.Fatalf("verified restore failed: %v", err)
	}
}

func TestRebase(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	buf := make([]byte, 32*1024)
	rng.Read(buf)
	ck, err := New(Config{Method: MethodTree, ChunkSize: 64}, len(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer ck.Close()

	if _, err := ck.Rebase(); err == nil {
		t.Fatal("rebase of empty record succeeded")
	}

	var snaps [][]byte
	for i := 0; i < 4; i++ {
		if i > 0 {
			off := rng.Intn(len(buf) - 512)
			rng.Read(buf[off : off+512])
		}
		snaps = append(snaps, append([]byte(nil), buf...))
		if _, err := ck.Checkpoint(buf); err != nil {
			t.Fatal(err)
		}
	}

	archived, err := ck.Rebase()
	if err != nil {
		t.Fatal(err)
	}
	// The archive still restores every old version.
	if archived.Len() != 4 {
		t.Fatalf("archive has %d checkpoints", archived.Len())
	}
	for i, s := range snaps {
		got, err := archived.Restore(i)
		if err != nil || !bytes.Equal(got, s) {
			t.Fatalf("archived restore %d failed: %v", i, err)
		}
	}
	// The live lineage restarts with one full checkpoint of the latest
	// state and keeps working.
	if ck.NumCheckpoints() != 1 {
		t.Fatalf("rebased lineage has %d checkpoints, want 1", ck.NumCheckpoints())
	}
	got, err := ck.Restore(0)
	if err != nil || !bytes.Equal(got, snaps[3]) {
		t.Fatalf("rebased baseline mismatch: %v", err)
	}
	off := rng.Intn(len(buf) - 512)
	rng.Read(buf[off : off+512])
	res, err := ck.Checkpoint(buf)
	if err != nil {
		t.Fatal(err)
	}
	if res.CkptID != 1 {
		t.Fatalf("post-rebase checkpoint id %d, want 1", res.CkptID)
	}
	if got, err := ck.RestoreLatest(); err != nil || !bytes.Equal(got, buf) {
		t.Fatalf("post-rebase restore failed: %v", err)
	}
	// Rebasing bounds the record: the live record holds only the
	// baseline plus the one new diff.
	if ck.RecordBytes() >= archived.TotalBytes()+int64(len(buf)) {
		t.Log("note: rebase record size check is workload-dependent; sizes:",
			ck.RecordBytes(), archived.TotalBytes())
	}
}

func TestPersistDirAndReadRecordDir(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	buf := make([]byte, 16*1024)
	rng.Read(buf)
	dir := t.TempDir() + "/lineage"

	ck, err := New(Config{Method: MethodTree, ChunkSize: 64, PersistDir: dir}, len(buf))
	if err != nil {
		t.Fatal(err)
	}
	var snaps [][]byte
	for i := 0; i < 3; i++ {
		if i > 0 {
			off := rng.Intn(len(buf) - 256)
			rng.Read(buf[off : off+256])
		}
		snaps = append(snaps, append([]byte(nil), buf...))
		if _, err := ck.Checkpoint(buf); err != nil {
			t.Fatal(err)
		}
	}

	// A different "machine" restores from the directory alone.
	rec, err := ReadRecordDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	rec.Parallel(4)
	if rec.Len() != 3 {
		t.Fatalf("loaded %d checkpoints", rec.Len())
	}
	for i, s := range snaps {
		got, err := rec.Restore(i)
		if err != nil || !bytes.Equal(got, s) {
			t.Fatalf("persisted restore %d failed: %v", i, err)
		}
	}

	// Rebase archives the directory and starts fresh.
	if _, err := ck.Rebase(); err != nil {
		t.Fatal(err)
	}
	fresh, err := ReadRecordDir(dir)
	if err != nil || fresh.Len() != 1 {
		t.Fatalf("post-rebase dir: len=%v err=%v", fresh, err)
	}
	archived, err := ReadRecordDir(dir + ".pre-rebase-0")
	if err != nil || archived.Len() != 3 {
		t.Fatalf("archived dir: err=%v", err)
	}
	// Checkpointing continues into the fresh directory.
	rng.Read(buf[0:128])
	if _, err := ck.Checkpoint(buf); err != nil {
		t.Fatal(err)
	}
	fresh2, err := ReadRecordDir(dir)
	if err != nil || fresh2.Len() != 2 {
		t.Fatalf("post-rebase append: err=%v", err)
	}
	if got, err := fresh2.Restore(1); err != nil || !bytes.Equal(got, buf) {
		t.Fatalf("post-rebase persisted restore failed: %v", err)
	}
	ck.Close()

	// Opening a new checkpointer over a non-empty dir is refused.
	if _, err := New(Config{PersistDir: dir}, len(buf)); err == nil {
		t.Fatal("reuse of non-empty persist dir accepted")
	}
}

func TestSaveRecordDir(t *testing.T) {
	rng := rand.New(rand.NewSource(36))
	buf := make([]byte, 8*1024)
	rng.Read(buf)
	ck, err := New(Config{Method: MethodList, ChunkSize: 64}, len(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer ck.Close()
	if _, err := ck.Checkpoint(buf); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir() + "/saved"
	if err := ck.SaveRecordDir(dir); err != nil {
		t.Fatal(err)
	}
	rec, err := ReadRecordDir(dir)
	if err != nil || rec.Len() != 1 {
		t.Fatalf("save/load failed: %v", err)
	}
	got, err := rec.Restore(0)
	if err != nil || !bytes.Equal(got, buf) {
		t.Fatalf("saved restore failed: %v", err)
	}
	if err := ck.SaveRecordDir(dir); err == nil {
		t.Fatal("save into non-empty dir accepted")
	}
}

func TestKernelStats(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	buf := make([]byte, 32*1024)
	rng.Read(buf)
	ck, err := New(Config{Method: MethodTree, ChunkSize: 64, Compression: "Cascaded"}, len(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer ck.Close()
	if _, err := ck.Checkpoint(sparseCounters(rng, len(buf))); err != nil {
		t.Fatal(err)
	}
	stats := ck.KernelStats()
	for _, name := range []string{"tree-dedup", "d2h", "compress"} {
		st, ok := stats[name]
		if !ok || st.Launches < 1 || st.Modeled <= 0 {
			t.Fatalf("kernel %q missing or degenerate: %+v (have %v)", name, st, stats)
		}
	}
	var total time.Duration
	for _, st := range stats {
		total += st.Modeled
	}
	if total != ck.ModeledTime() {
		t.Fatalf("kernel stats sum %v != modeled time %v", total, ck.ModeledTime())
	}
}
