package gpuckpt

// This file holds the benchmark harness that regenerates every table
// and figure of the paper's evaluation (Tan et al., ICPP 2023, §3) and
// the ablation studies of the §2 design choices. Each benchmark runs
// the corresponding experiment at a laptop scale (the BENCH_VERTICES
// environment variable overrides it) and reports the headline numbers
// as custom benchmark metrics; the full tables are printed by
// `go run ./cmd/ckptbench`.
//
//	go test -bench=. -benchmem            # everything
//	go test -bench=Fig6                   # one figure
//	BENCH_VERTICES=64000 go test -bench=Fig4 -benchtime=1x

import (
	"math/rand"
	"os"
	"strconv"
	"testing"

	"github.com/gpuckpt/gpuckpt/internal/experiments"
	"github.com/gpuckpt/gpuckpt/internal/workload"
)

// benchConfig returns the experiment scale for benchmarks.
func benchConfig() experiments.Config {
	cfg := experiments.DefaultConfig()
	cfg.TargetVertices = 8000
	cfg.MaxGraphletSize = 4
	cfg.NumCheckpoints = 10
	cfg.Seed = 42
	if v := os.Getenv("BENCH_VERTICES"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			cfg.TargetVertices = n
		}
	}
	return cfg
}

// pick returns the first row matching the predicate.
func pick(rows []workload.Row, f func(workload.Row) bool) workload.Row {
	for _, r := range rows {
		if f(r) {
			return r
		}
	}
	return workload.Row{}
}

// BenchmarkTable1InputGraphs regenerates Table 1 (the five input
// graphs at the benchmark scale).
func BenchmarkTable1InputGraphs(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table1(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig4ChunkSize regenerates Figure 4: ratio and throughput vs
// chunk size for Tree/List/Basic/Full on the four single-GPU graphs.
// Reported metrics are the Message Race Tree-vs-List ratios at 64 B.
func BenchmarkFig4ChunkSize(b *testing.B) {
	cfg := benchConfig()
	var rows []workload.Row
	for i := 0; i < b.N; i++ {
		var err error
		_, rows, err = experiments.Fig4(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	tree := pick(rows, func(r workload.Row) bool {
		return r.Graph == "Message Race" && r.Label == "Tree" && r.ChunkSize == 64
	})
	list := pick(rows, func(r workload.Row) bool {
		return r.Graph == "Message Race" && r.Label == "List" && r.ChunkSize == 64
	})
	b.ReportMetric(tree.Ratio, "tree-ratio-64B")
	b.ReportMetric(list.Ratio, "list-ratio-64B")
	b.ReportMetric(tree.Throughput/1e9, "tree-GB/s-64B")
}

// BenchmarkFig5Frequency regenerates Figure 5: ratio and throughput vs
// checkpoint frequency (N = 5, 10, 20) including the compression
// baselines. Reported metrics are the Tree and Zstd* ratios at N=20 on
// Message Race (the paper's crossover claim).
func BenchmarkFig5Frequency(b *testing.B) {
	cfg := benchConfig()
	var rows []workload.Row
	for i := 0; i < b.N; i++ {
		var err error
		_, rows, err = experiments.Fig5(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	tree := pick(rows, func(r workload.Row) bool {
		return r.Graph == "Message Race" && r.Label == "Tree" && r.NumCkpts == 20
	})
	zstd := pick(rows, func(r workload.Row) bool {
		return r.Graph == "Message Race" && r.Label == "Zstd*" && r.NumCkpts == 20
	})
	b.ReportMetric(tree.Ratio, "tree-ratio-N20")
	b.ReportMetric(zstd.Ratio, "zstd-ratio-N20")
}

// BenchmarkFig6StrongScaling regenerates Figure 6: total checkpoint
// size and aggregate throughput, Tree vs Full, 1..64 processes.
// Reported metric is the total-size reduction factor at the largest
// process count (the paper's 215x headline).
func BenchmarkFig6StrongScaling(b *testing.B) {
	cfg := benchConfig()
	cfg.TargetVertices = 6000 // 64 procs x 10 ckpts is the expensive axis
	var rows []workload.ScalingRow
	for i := 0; i < b.N; i++ {
		var err error
		_, rows, err = experiments.Fig6(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	maxProcs := 0
	var full, tree int64
	for _, r := range rows {
		if r.Procs > maxProcs {
			maxProcs = r.Procs
		}
	}
	for _, r := range rows {
		if r.Procs == maxProcs {
			if r.Method == "Full" {
				full = r.TotalStored
			} else if r.Method == "Tree" {
				tree = r.TotalStored
			}
		}
	}
	if tree > 0 {
		b.ReportMetric(float64(full)/float64(tree), "reduction-at-max-procs")
	}
	b.ReportMetric(float64(maxProcs), "max-procs")
}

// benchAblationRows runs the ablation experiment once per iteration
// and returns the final rows.
func benchAblationRows(b *testing.B) []workload.Row {
	b.Helper()
	cfg := benchConfig()
	var rows []workload.Row
	for i := 0; i < b.N; i++ {
		var err error
		_, rows, err = experiments.Ablation(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	return rows
}

// BenchmarkAblationMetadataCompaction isolates the §2.2 compact
// metadata contribution: Tree vs List metadata bytes.
func BenchmarkAblationMetadataCompaction(b *testing.B) {
	rows := benchAblationRows(b)
	b.ReportMetric(float64(rows[0].MetaBytes), "tree-meta-bytes")
	b.ReportMetric(float64(rows[1].MetaBytes), "list-meta-bytes")
}

// BenchmarkAblationTwoStage compares the two-stage labeling of §2.2
// against single-stage labeling (missed same-checkpoint matches).
func BenchmarkAblationTwoStage(b *testing.B) {
	rows := benchAblationRows(b)
	b.ReportMetric(float64(rows[0].StoredBytes), "two-stage-bytes")
	b.ReportMetric(float64(rows[2].StoredBytes), "single-stage-bytes")
}

// BenchmarkAblationGather compares team-based coalesced serialization
// (§2.4) against one thread per region.
func BenchmarkAblationGather(b *testing.B) {
	rows := benchAblationRows(b)
	b.ReportMetric(rows[0].Throughput/1e9, "team-gather-GB/s")
	b.ReportMetric(rows[3].Throughput/1e9, "per-thread-GB/s")
}

// BenchmarkAblationFusedKernels compares the single fused kernel of
// §2.4 against per-phase/per-level launches.
func BenchmarkAblationFusedKernels(b *testing.B) {
	rows := benchAblationRows(b)
	b.ReportMetric(rows[0].Throughput/1e9, "fused-GB/s")
	b.ReportMetric(rows[4].Throughput/1e9, "unfused-GB/s")
}

// BenchmarkAblationHash compares Murmur3 against an MD5-class
// cryptographic hash (§2.4: "slow cryptographic hash functions ...
// would introduce a bottleneck").
func BenchmarkAblationHash(b *testing.B) {
	rows := benchAblationRows(b)
	b.ReportMetric(rows[0].Throughput/1e9, "murmur3-GB/s")
	b.ReportMetric(rows[5].Throughput/1e9, "md5-class-GB/s")
}

// BenchmarkCheckpointTree measures the real (wall-clock) cost of the
// public-API Tree checkpoint path on a 16 MiB buffer with 1% sparse
// updates per checkpoint.
func BenchmarkCheckpointTree(b *testing.B) {
	const size = 16 << 20
	rng := rand.New(rand.NewSource(7))
	buf := make([]byte, size)
	rng.Read(buf)
	ck, err := New(Config{Method: MethodTree, ChunkSize: 128}, size)
	if err != nil {
		b.Fatal(err)
	}
	defer ck.Close()
	if _, err := ck.Checkpoint(buf); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(size)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		off := rng.Intn(size - size/100)
		rng.Read(buf[off : off+size/100])
		if _, err := ck.Checkpoint(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRestoreTree measures full lineage restores.
func BenchmarkRestoreTree(b *testing.B) {
	const size = 4 << 20
	rng := rand.New(rand.NewSource(8))
	buf := make([]byte, size)
	rng.Read(buf)
	ck, err := New(Config{Method: MethodTree, ChunkSize: 128}, size)
	if err != nil {
		b.Fatal(err)
	}
	defer ck.Close()
	for k := 0; k < 10; k++ {
		if k > 0 {
			off := rng.Intn(size - 4096)
			rng.Read(buf[off : off+4096])
		}
		if _, err := ck.Checkpoint(buf); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(size)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ck.Restore(9); err != nil {
			b.Fatal(err)
		}
	}
}
