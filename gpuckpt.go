package gpuckpt

import (
	"errors"
	"fmt"
	"io"
	"os"
	"time"

	"github.com/gpuckpt/gpuckpt/internal/checkpoint"
	"github.com/gpuckpt/gpuckpt/internal/compress"
	"github.com/gpuckpt/gpuckpt/internal/dedup"
	"github.com/gpuckpt/gpuckpt/internal/device"
	"github.com/gpuckpt/gpuckpt/internal/lifecycle"
	"github.com/gpuckpt/gpuckpt/internal/parallel"
)

// Method selects the de-duplication strategy.
type Method = checkpoint.Method

// The implemented methods (§3.2 of the paper).
const (
	// MethodFull stores the complete buffer every checkpoint.
	MethodFull = checkpoint.MethodFull
	// MethodBasic stores a dirty-chunk bitmap plus changed chunks.
	MethodBasic = checkpoint.MethodBasic
	// MethodList de-duplicates chunks spatially and temporally but
	// stores one metadata entry per chunk.
	MethodList = checkpoint.MethodList
	// MethodTree is the paper's contribution: hash-based
	// de-duplication with Merkle-tree compacted region metadata.
	MethodTree = checkpoint.MethodTree
)

// GPUModel describes the simulated accelerator used to model
// de-duplication and transfer time. The zero value selects A100().
type GPUModel struct {
	// Name labels the model in reports.
	Name string
	// MemBandwidth is the effective device-memory bandwidth (B/s).
	MemBandwidth float64
	// PCIeBandwidth is the device-to-host bandwidth (B/s).
	PCIeBandwidth float64
	// HashRate is the aggregate chunk-hashing throughput (B/s).
	HashRate float64
	// MapOpRate is the hash-table operation rate (ops/s).
	MapOpRate float64
	// KernelLaunchLatency is the fixed per-kernel submission cost.
	KernelLaunchLatency time.Duration
	// MemCapacity is the device memory available for the checkpoint
	// record (bytes).
	MemCapacity int64
}

// A100 returns the default GPU model, calibrated to the NVIDIA A100
// systems of the paper's evaluation (§3.1).
func A100() GPUModel {
	p := device.A100()
	return GPUModel{
		Name:                p.Name,
		MemBandwidth:        p.MemBandwidth,
		PCIeBandwidth:       p.PCIeBandwidth,
		HashRate:            p.HashRate,
		MapOpRate:           p.MapOpRate,
		KernelLaunchLatency: p.KernelLaunchLatency,
		MemCapacity:         p.MemCapacity,
	}
}

// toParams converts the model to device parameters. Unset (zero)
// fields are filled from the A100 defaults individually, so a custom
// model that only overrides some fields — including one that leaves
// MemBandwidth at zero — keeps its explicit values instead of being
// silently replaced by the full default profile.
func (m GPUModel) toParams() device.Params {
	p := device.A100()
	if m.Name != "" {
		p.Name = m.Name
	}
	if m.MemBandwidth != 0 {
		p.MemBandwidth = m.MemBandwidth
	}
	if m.PCIeBandwidth != 0 {
		p.PCIeBandwidth = m.PCIeBandwidth
	}
	if m.HashRate != 0 {
		p.HashRate = m.HashRate
	}
	if m.MapOpRate != 0 {
		p.MapOpRate = m.MapOpRate
	}
	if m.KernelLaunchLatency != 0 {
		p.KernelLaunchLatency = m.KernelLaunchLatency
	}
	if m.MemCapacity != 0 {
		p.MemCapacity = m.MemCapacity
	}
	return p
}

// Ablation switches off individual design choices of §2 for study.
// The zero value is the paper's configuration.
type Ablation struct {
	// SingleStage disables the two-stage labeling parallelization:
	// shifted regions can no longer match first-occurrence regions of
	// the same checkpoint, fragmenting the compact metadata.
	SingleStage bool
	// PerThreadGather disables the team-based coalesced serialization.
	PerThreadGather bool
	// UnfusedKernels launches one kernel per phase and tree level
	// instead of a single fused kernel.
	UnfusedKernels bool
	// HashCostMultiplier scales the modeled hash cost (e.g. ~20 for an
	// MD5-class cryptographic hash). 0 means 1.
	HashCostMultiplier float64
}

// Config parameterizes a Checkpointer.
type Config struct {
	// Method selects the strategy. Default MethodTree.
	Method Method
	// ChunkSize is the de-duplication granularity in bytes (the paper
	// sweeps 32-512). Default 128.
	ChunkSize int
	// GPU is the simulated device model. Zero value = A100.
	GPU GPUModel
	// Workers bounds the CPU worker pool that executes the kernels
	// (0 = GOMAXPROCS).
	Workers int
	// MapCapacity overrides the sizing of the historical record of
	// unique hashes (entries). Default: 3x the Merkle tree node count.
	MapCapacity int
	// Seed is the Murmur3 hash seed.
	Seed uint32
	// Compression names a codec ("LZ4", "Deflate", "Zstd*",
	// "Cascaded", "Bitcomp") that compresses the first-occurrence data
	// inside every diff — the §5 future-work extension. Empty disables
	// it. Compression is kept per diff only when it actually shrinks
	// the data section.
	Compression string
	// Streaming models the §5 streaming extension: diff transfers
	// overlap de-duplication, so only the non-overlapped transfer tail
	// blocks the application.
	Streaming bool
	// VerifyDuplicates byte-compares every shifted-duplicate chunk
	// against its recorded source before trusting a digest match (the
	// §2.4 hash-collision mitigation).
	VerifyDuplicates bool
	// AutoFallback stores a plain Full diff for any checkpoint whose
	// buffer fully changed (§2.4: incremental checkpointing "can be
	// deactivated" when the data fully changes in an interval).
	AutoFallback bool
	// PersistDir, when set, appends every produced diff to a lineage
	// directory (one atomically-written file per checkpoint) so the
	// record survives the process — the bottom of the §2.3 storage
	// hierarchy. Restore it later with ReadRecordDir.
	PersistDir string
	// Ablation switches for the §2.4 design-choice studies.
	Ablation Ablation
}

// Result reports one checkpoint operation.
type Result struct {
	// CkptID is the checkpoint's position in the record (0-based).
	CkptID uint32
	// InputBytes is the buffer size.
	InputBytes int64
	// StoredBytes is the serialized diff size.
	StoredBytes int64
	// MetadataBytes is the metadata portion of the diff.
	MetadataBytes int64
	// DataBytes is the first-occurrence data portion of the diff.
	DataBytes int64
	// FirstRegions and ShiftRegions count the emitted metadata
	// entries; FixedChunks counts chunks that cost nothing.
	FirstRegions, ShiftRegions, FixedChunks int
	// DedupTime and TransferTime are the modeled device times.
	DedupTime, TransferTime time.Duration
}

// Ratio returns InputBytes/StoredBytes for this checkpoint.
func (r Result) Ratio() float64 {
	if r.StoredBytes == 0 {
		return 0
	}
	return float64(r.InputBytes) / float64(r.StoredBytes)
}

// Throughput returns the paper's metric: input bytes divided by the
// modeled time to create and ship the checkpoint (B/s).
func (r Result) Throughput() float64 {
	t := r.DedupTime + r.TransferTime
	if t <= 0 {
		return 0
	}
	return float64(r.InputBytes) / t.Seconds()
}

// String renders a one-line summary.
func (r Result) String() string {
	return fmt.Sprintf("ckpt %d: %d -> %d bytes (%.2fx, %d+%d regions, %v dedup, %v transfer)",
		r.CkptID, r.InputBytes, r.StoredBytes, r.Ratio(),
		r.FirstRegions, r.ShiftRegions, r.DedupTime, r.TransferTime)
}

// Checkpointer owns the incremental checkpoint record of one
// fixed-size buffer on one simulated GPU. It is not safe for
// concurrent use; the parallelism lives inside the kernels.
type Checkpointer struct {
	d       *dedup.Deduplicator
	dev     *device.Device
	pool    *parallel.Pool
	cfg     Config
	dataLen int
	store   *checkpoint.FileStore
}

// New creates a Checkpointer for buffers of exactly dataLen bytes.
func New(cfg Config, dataLen int) (*Checkpointer, error) {
	if dataLen <= 0 {
		return nil, fmt.Errorf("gpuckpt: data length must be positive, got %d", dataLen)
	}
	pool := parallel.NewPool(cfg.Workers)
	dev := device.New(cfg.GPU.toParams(), pool, nil)
	d, err := newDedup(cfg, dataLen, dev)
	if err != nil {
		return nil, err
	}
	c := &Checkpointer{d: d, dev: dev, pool: pool, cfg: cfg, dataLen: dataLen}
	if cfg.PersistDir != "" {
		store, err := checkpoint.NewFileStore(cfg.PersistDir)
		if err != nil {
			return nil, err
		}
		if n, err := store.Len(); err != nil {
			return nil, err
		} else if n != 0 {
			return nil, fmt.Errorf("gpuckpt: persist dir %s already holds %d diffs", cfg.PersistDir, n)
		}
		c.store = store
	}
	return c, nil
}

// newDedup builds the engine for one lineage.
func newDedup(cfg Config, dataLen int, dev *device.Device) (*dedup.Deduplicator, error) {
	opts := dedup.Options{
		ChunkSize:          cfg.ChunkSize,
		Seed:               cfg.Seed,
		MapCapacity:        cfg.MapCapacity,
		SingleStage:        cfg.Ablation.SingleStage,
		PerThreadGather:    cfg.Ablation.PerThreadGather,
		Unfused:            cfg.Ablation.UnfusedKernels,
		HashCostMultiplier: cfg.Ablation.HashCostMultiplier,
		StreamingTransfer:  cfg.Streaming,
		VerifyDuplicates:   cfg.VerifyDuplicates,
		AutoFallback:       cfg.AutoFallback,
	}
	if cfg.Compression != "" {
		codec, err := compress.ByName(cfg.Compression)
		if err != nil {
			return nil, fmt.Errorf("gpuckpt: %w", err)
		}
		opts.Compressor = codec
	}
	return dedup.New(cfg.Method, dataLen, dev, opts)
}

// Rebase squashes the lineage: the current latest state becomes the
// full first checkpoint of a fresh record (with a fresh historical
// record of unique hashes), and the previous lineage is returned as a
// read-only Record for archival. Long-running applications rebase
// periodically to bound restore chain length and GPU-resident
// metadata.
// With PersistDir configured, the old lineage directory is renamed to
// `<dir>.pre-rebase-<k>` and a fresh directory takes its place.
func (c *Checkpointer) Rebase() (*Record, error) {
	n := c.NumCheckpoints()
	if n == 0 {
		return nil, errors.New("gpuckpt: nothing to rebase")
	}
	state, err := c.d.Restore(n - 1)
	if err != nil {
		return nil, fmt.Errorf("gpuckpt: rebase restore: %w", err)
	}
	if c.store != nil {
		dir := c.store.Dir()
		var archived string
		for k := 0; ; k++ {
			archived = fmt.Sprintf("%s.pre-rebase-%d", dir, k)
			if _, err := os.Stat(archived); errors.Is(err, os.ErrNotExist) {
				break
			}
		}
		if err := os.Rename(dir, archived); err != nil {
			return nil, fmt.Errorf("gpuckpt: archiving lineage dir: %w", err)
		}
		// Close before reopening: an auto-attached shared block store
		// must never be open under two journal handles at once.
		if err := c.store.Close(); err != nil {
			return nil, fmt.Errorf("gpuckpt: closing archived lineage store: %w", err)
		}
		store, err := checkpoint.NewFileStore(dir)
		if err != nil {
			return nil, err
		}
		c.store = store
	}
	old := c.d
	fresh, err := newDedup(c.cfg, c.dataLen, c.dev)
	if err != nil {
		return nil, err
	}
	if _, _, err := fresh.Checkpoint(state); err != nil {
		fresh.Close()
		return nil, fmt.Errorf("gpuckpt: rebase baseline: %w", err)
	}
	if c.store != nil {
		if err := c.store.Append(fresh.Record().Diff(0)); err != nil {
			fresh.Close()
			return nil, fmt.Errorf("gpuckpt: persisting rebase baseline: %w", err)
		}
	}
	c.d = fresh
	old.Close()
	// Detach the archived lineage from the pool: it outlives this
	// Checkpointer (and hence the pool's lifetime). Re-enable parallel
	// restores with Record.Parallel if wanted.
	archivedRec := old.Record()
	archivedRec.SetPool(nil)
	return &Record{rec: archivedRec}, nil
}

// Checkpoint de-duplicates data against the record and appends the
// resulting difference. data must have the configured length.
func (c *Checkpointer) Checkpoint(data []byte) (Result, error) {
	diff, st, err := c.d.Checkpoint(data)
	if err != nil {
		return Result{}, err
	}
	if c.store != nil {
		if err := c.store.Append(diff); err != nil {
			return Result{}, fmt.Errorf("gpuckpt: persisting diff: %w", err)
		}
	}
	return Result{
		CkptID:        st.CkptID,
		InputBytes:    st.InputBytes,
		StoredBytes:   st.DiffBytes,
		MetadataBytes: st.MetadataBytes,
		DataBytes:     st.DataBytes,
		FirstRegions:  st.NumFirstOcur,
		ShiftRegions:  st.NumShiftDupl,
		FixedChunks:   st.FixedLeaves,
		DedupTime:     st.DedupTime,
		TransferTime:  st.TransferTime,
	}, nil
}

// NumCheckpoints returns the number of checkpoints in the record.
func (c *Checkpointer) NumCheckpoints() int { return c.d.Record().Len() }

// RecordBytes returns the total serialized size of the record — the
// space-utilization metric of §1.
func (c *Checkpointer) RecordBytes() int64 { return c.d.Record().TotalBytes() }

// Restore reconstructs the buffer as of checkpoint k (bit-exact).
func (c *Checkpointer) Restore(k int) ([]byte, error) { return c.d.Restore(k) }

// RestoreLatest reconstructs the most recent checkpoint.
func (c *Checkpointer) RestoreLatest() ([]byte, error) {
	n := c.NumCheckpoints()
	if n == 0 {
		return nil, errors.New("gpuckpt: empty checkpoint record")
	}
	return c.d.Restore(n - 1)
}

// WriteDiff serializes checkpoint k's difference to w in the canonical
// wire format (readable by ReadRecord).
func (c *Checkpointer) WriteDiff(k int, w io.Writer) error {
	d, err := c.diffAt(k)
	if err != nil {
		return err
	}
	return d.Encode(w)
}

// diffAt returns checkpoint k's diff by reference — the in-memory form
// the client's zero-copy streaming push stages section-by-section
// instead of gathering through Encode.
func (c *Checkpointer) diffAt(k int) (*checkpoint.Diff, error) {
	rec := c.d.Record()
	if k < 0 || k >= rec.Len() {
		return nil, fmt.Errorf("gpuckpt: checkpoint %d out of range [0,%d)", k, rec.Len())
	}
	return rec.Diff(k), nil
}

// ModeledTime returns the cumulative modeled device time spent by this
// checkpointer (kernels + transfers).
func (c *Checkpointer) ModeledTime() time.Duration { return c.dev.Elapsed() }

// KernelStat reports the modeled cost of one kernel family.
type KernelStat struct {
	// Launches counts kernel submissions (1 per checkpoint for the
	// fused pipeline; one per phase and tree level when unfused).
	Launches int64
	// Modeled is the cumulative modeled device time.
	Modeled time.Duration
}

// KernelStats breaks the modeled device time down by kernel family
// ("tree-dedup", "d2h", "compress", ...) — the profile a performance
// engineer would read off nsys on the real system.
func (c *Checkpointer) KernelStats() map[string]KernelStat {
	out := make(map[string]KernelStat)
	for name, st := range c.dev.Stats() {
		out[name] = KernelStat{Launches: st.Launches, Modeled: st.Modeled}
	}
	return out
}

// Close releases the modeled device memory and stops the worker pool.
// The record remains restorable (region assembly falls back to
// sequential), but no further checkpoints can be taken.
func (c *Checkpointer) Close() {
	// Record() drains any in-flight pipelined backend; detach the pool
	// before stopping it so later Restore calls don't launch on a
	// closed pool.
	c.d.Record().SetPool(nil)
	c.d.Close()
	c.pool.Close()
	if c.store != nil {
		// Releases the lineage's auto-attached block store, if any.
		c.store.Close()
		c.store = nil
	}
}

// Record is a read-only checkpoint lineage reconstructed from
// serialized diffs, for restore on a machine that never held the
// original Checkpointer. A record loaded from a compacted lineage
// keeps the original absolute indexing: its checkpoints are
// [Base, Len), and Restore takes those absolute indices.
type Record struct {
	rec  *checkpoint.Record
	base int
}

// ReadRecord decodes consecutive diffs (checkpoint 0, 1, ...) from r
// until EOF and returns the restorable record.
func ReadRecord(r io.Reader) (*Record, error) {
	rec := checkpoint.NewRecord()
	for {
		d, err := checkpoint.Decode(r)
		if err != nil {
			// A clean EOF at a diff boundary ends the record; EOF
			// mid-diff surfaces as ErrUnexpectedEOF and is an error.
			if errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) && rec.Len() > 0 {
				break
			}
			return nil, err
		}
		if err := rec.Append(d); err != nil {
			return nil, err
		}
	}
	return &Record{rec: rec}, nil
}

// Parallel enables multi-worker region assembly during restores (the
// §5 "scalable reconstruction" extension). workers <= 0 selects
// GOMAXPROCS. Restored bytes are identical either way.
func (r *Record) Parallel(workers int) {
	r.rec.SetPool(parallel.NewPool(workers))
}

// Len returns one past the highest checkpoint index in the record.
// The restorable range is [Base(), Len()).
func (r *Record) Len() int { return r.base + r.rec.Len() }

// Base returns the record's first restorable checkpoint index — the
// compaction baseline of the lineage it was loaded from, or 0 for a
// never-compacted lineage.
func (r *Record) Base() int { return r.base }

// Restore reconstructs the buffer as of checkpoint k. k is an
// absolute lineage index: for a record pulled from a compacted
// lineage it must lie in [Base(), Len()), and restores the same bytes
// that index restored before compaction.
func (r *Record) Restore(k int) ([]byte, error) {
	if k < r.base || k >= r.Len() {
		return nil, fmt.Errorf("gpuckpt: checkpoint %d out of range [%d,%d)", k, r.base, r.Len())
	}
	return r.rec.Restore(k - r.base)
}

// TotalBytes returns the cumulative serialized size of the record.
func (r *Record) TotalBytes() int64 { return r.rec.TotalBytes() }

// SaveRecordDir persists the current lineage into an empty directory,
// one atomically-written diff file per checkpoint.
func (c *Checkpointer) SaveRecordDir(dir string) error {
	store, err := checkpoint.NewFileStore(dir)
	if err != nil {
		return err
	}
	defer store.Close()
	return store.WriteRecord(c.d.Record())
}

// ReadRecordDir loads a lineage directory written by PersistDir or
// SaveRecordDir into a restorable Record. For a compacted directory
// the record's Base reports the compaction baseline and Restore keeps
// accepting the original absolute indices.
func ReadRecordDir(dir string) (*Record, error) {
	store, err := checkpoint.NewFileStore(dir)
	if err != nil {
		return nil, err
	}
	// Load reassembles block-mapped diffs into memory, so the store
	// (and any auto-attached block store) can be released right after.
	defer store.Close()
	rec, err := store.Load()
	if err != nil {
		return nil, err
	}
	return &Record{rec: rec, base: store.Base()}, nil
}

// CompactStats reports one committed lineage compaction.
type CompactStats struct {
	// OldBase and NewBase are the restorable-range start before and
	// after; equal when the policy had nothing to fold.
	OldBase, NewBase int
	// PrunedDiffs counts deleted diff files; RewrittenDiffs counts
	// retained diffs rewritten to drop references into the folded
	// prefix.
	PrunedDiffs, RewrittenDiffs int
	// FreedBytes is the net on-disk change (negative when the new full
	// baseline outweighs the folded diffs, as happens on short chains).
	FreedBytes int64
}

// CompactDir folds the prefix of the lineage directory dir into a full
// baseline at the index chosen by policy ("keep-all", "keep-last=N",
// "keep-every=K") and deletes the folded diff files. The transaction
// is crash-safe: interrupted runs leave every retained checkpoint
// restorable, and the next open (or CompactDir call) completes the
// cleanup. workers bounds the restore worker pool (0 = GOMAXPROCS).
func CompactDir(dir, policy string, workers int) (CompactStats, error) {
	pol, err := lifecycle.ParsePolicy(policy)
	if err != nil {
		return CompactStats{}, err
	}
	store, err := checkpoint.NewFileStore(dir)
	if err != nil {
		return CompactStats{}, err
	}
	defer store.Close()
	mgr, err := lifecycle.New(store, pol, lifecycle.Options{Workers: workers})
	if err != nil {
		return CompactStats{}, err
	}
	defer mgr.Close()
	st, err := mgr.Compact()
	if err != nil {
		return CompactStats{}, err
	}
	return CompactStats{
		OldBase:        st.OldBase,
		NewBase:        st.NewBase,
		PrunedDiffs:    st.PrunedDiffs,
		RewrittenDiffs: st.RewrittenDiffs,
		FreedBytes:     st.FreedBytes,
	}, nil
}
