module github.com/gpuckpt/gpuckpt

go 1.22
