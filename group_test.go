package gpuckpt

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

func TestGroupRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	grid := make([]byte, 32*1024)
	solver := make([]byte, 8*1024)
	rng.Read(grid)
	rng.Read(solver)

	g := NewGroup(Config{Method: MethodTree, ChunkSize: 64})
	defer g.Close()
	if err := g.Protect("grid", len(grid)); err != nil {
		t.Fatal(err)
	}
	if err := g.Protect("solver", len(solver)); err != nil {
		t.Fatal(err)
	}
	if got := g.Members(); len(got) != 2 || got[0] != "grid" || got[1] != "solver" {
		t.Fatalf("members = %v", got)
	}

	type snap struct{ grid, solver []byte }
	var snaps []snap
	for k := 0; k < 4; k++ {
		if k > 0 {
			off := rng.Intn(len(grid) - 512)
			rng.Read(grid[off : off+512])
			rng.Read(solver[:128])
		}
		snaps = append(snaps, snap{
			grid:   append([]byte(nil), grid...),
			solver: append([]byte(nil), solver...),
		})
		res, err := g.Checkpoint(map[string][]byte{"grid": grid, "solver": solver})
		if err != nil {
			t.Fatal(err)
		}
		if res.CkptID != k {
			t.Fatalf("group ckpt id %d, want %d", res.CkptID, k)
		}
		if res.InputBytes != int64(len(grid)+len(solver)) {
			t.Fatalf("input bytes %d", res.InputBytes)
		}
		if len(res.PerMember) != 2 || res.Ratio() <= 0 {
			t.Fatalf("bad group result: %+v", res)
		}
	}
	if g.NumCheckpoints() != 4 {
		t.Fatalf("group has %d checkpoints", g.NumCheckpoints())
	}
	if g.RecordBytes() <= 0 || g.ModeledTime() <= 0 {
		t.Fatal("degenerate group accounting")
	}
	for k, s := range snaps {
		got, err := g.Restore(k)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got["grid"], s.grid) || !bytes.Equal(got["solver"], s.solver) {
			t.Fatalf("group restore %d mismatch", k)
		}
	}
	latest, err := g.RestoreLatest()
	if err != nil || !bytes.Equal(latest["grid"], snaps[3].grid) {
		t.Fatalf("restore latest failed: %v", err)
	}
}

func TestGroupValidation(t *testing.T) {
	g := NewGroup(Config{Method: MethodTree, ChunkSize: 64})
	defer g.Close()
	if _, err := g.Checkpoint(nil); err == nil {
		t.Fatal("empty group checkpointed")
	}
	if err := g.Protect("", 100); err == nil {
		t.Fatal("empty name accepted")
	}
	if err := g.Protect("a", 0); err == nil {
		t.Fatal("zero-length member accepted")
	}
	if err := g.Protect("a", 100); err != nil {
		t.Fatal(err)
	}
	if err := g.Protect("a", 100); err == nil {
		t.Fatal("duplicate member accepted")
	}
	if _, err := g.Checkpoint(map[string][]byte{"b": make([]byte, 100)}); err == nil {
		t.Fatal("unknown member accepted")
	}
	if _, err := g.Checkpoint(map[string][]byte{}); err == nil {
		t.Fatal("missing buffers accepted")
	}
	if _, err := g.Checkpoint(map[string][]byte{"a": make([]byte, 55)}); err == nil {
		t.Fatal("wrong-length buffer accepted")
	}
	if _, err := g.Restore(0); err == nil {
		t.Fatal("restore before any checkpoint succeeded")
	}
	if _, err := g.Checkpoint(map[string][]byte{"a": make([]byte, 100)}); err != nil {
		t.Fatal(err)
	}
	if err := g.Protect("late", 10); err == nil {
		t.Fatal("member added after first checkpoint")
	}
	g.Close()
	g.Close() // idempotent
	if err := g.Protect("x", 10); err == nil {
		t.Fatal("protect after close accepted")
	}
	if _, err := g.Checkpoint(map[string][]byte{"a": make([]byte, 100)}); err == nil {
		t.Fatal("checkpoint after close accepted")
	}
}

func TestGroupPersistDir(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	a := make([]byte, 4096)
	b := make([]byte, 2048)
	rng.Read(a)
	rng.Read(b)
	dir := t.TempDir()

	g := NewGroup(Config{Method: MethodTree, ChunkSize: 64, PersistDir: dir})
	defer g.Close()
	if err := g.Protect("a", len(a)); err != nil {
		t.Fatal(err)
	}
	if err := g.Protect("b", len(b)); err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 2; k++ {
		if k > 0 {
			rng.Read(a[100:200])
		}
		if _, err := g.Checkpoint(map[string][]byte{"a": a, "b": b}); err != nil {
			t.Fatal(err)
		}
	}
	// Each member's lineage loads independently.
	recA, err := ReadRecordDir(dir + "/a")
	if err != nil || recA.Len() != 2 {
		t.Fatalf("member a lineage: %v", err)
	}
	got, err := recA.Restore(1)
	if err != nil || !bytes.Equal(got, a) {
		t.Fatalf("member a restore: %v", err)
	}
	recB, err := ReadRecordDir(dir + "/b")
	if err != nil || recB.Len() != 2 {
		t.Fatalf("member b lineage: %v", err)
	}
}

// TestGroupSharedBlockStore checks that a PersistDir carrying a
// _blocks directory makes member lineages intern their diff payloads
// into one shared content-addressed store: two members protecting
// identical buffers store the data once, and both lineages still load
// and restore byte-exactly through the public API.
func TestGroupSharedBlockStore(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	buf := make([]byte, 4096)
	rng.Read(buf)
	dir := t.TempDir()
	if err := os.Mkdir(filepath.Join(dir, "_blocks"), 0o755); err != nil {
		t.Fatal(err)
	}

	g := NewGroup(Config{Method: MethodTree, ChunkSize: 64, PersistDir: dir})
	defer g.Close()
	for _, name := range []string{"solver", "gdv"} {
		if err := g.Protect(name, len(buf)); err != nil {
			t.Fatal(err)
		}
	}
	// Both members checkpoint the same bytes: every chunk the second
	// member interns must hit the block the first already stored.
	if _, err := g.Checkpoint(map[string][]byte{"solver": buf, "gdv": buf}); err != nil {
		t.Fatal(err)
	}
	st := g.blocks.Stats()
	if st.Interned == 0 {
		t.Fatal("no blocks interned into the shared store")
	}
	if st.DedupHits == 0 {
		t.Fatalf("identical member buffers produced no dedup hits: %+v", st)
	}
	g.Close()

	for _, name := range []string{"solver", "gdv"} {
		rec, err := ReadRecordDir(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("member %s lineage: %v", name, err)
		}
		got, err := rec.Restore(0)
		if err != nil || !bytes.Equal(got, buf) {
			t.Fatalf("member %s restore mismatch: %v", name, err)
		}
	}
}
