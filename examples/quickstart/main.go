// Quickstart: incremental checkpointing of an evolving buffer with the
// Tree method, restore of any version, and a look at what each
// checkpoint actually cost.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"
	"os"

	gpuckpt "github.com/gpuckpt/gpuckpt"
)

func main() {
	const size = 8 << 20 // an 8 MiB application buffer
	rng := rand.New(rand.NewSource(1))
	buf := make([]byte, size)
	rng.Read(buf)

	ck, err := gpuckpt.New(gpuckpt.Config{
		Method:    gpuckpt.MethodTree,
		ChunkSize: 128,
	}, size)
	if err != nil {
		log.Fatal(err)
	}
	defer ck.Close()

	// Keep golden copies so we can prove restores are bit-exact.
	var golden [][]byte

	for step := 0; step < 6; step++ {
		if step > 0 {
			// The application does sparse work: overwrite a few small
			// regions and move one block (the shifted-duplicate case).
			for i := 0; i < 3; i++ {
				off := rng.Intn(size - 4096)
				rng.Read(buf[off : off+4096])
			}
			// Chunk-aligned moves de-duplicate as shifted regions;
			// unaligned ones would be new data (fixed-size chunking).
			src := rng.Intn(size/2-65536) / 128 * 128
			dst := (size/2 + rng.Intn(size/2-65536)) / 128 * 128
			copy(buf[dst:dst+65536], buf[src:src+65536])
		}
		golden = append(golden, append([]byte(nil), buf...))

		res, err := ck.Checkpoint(buf)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("checkpoint %d: stored %8d of %d bytes (ratio %6.1fx, %3d+%3d regions, modeled %v)\n",
			res.CkptID, res.StoredBytes, res.InputBytes, res.Ratio(),
			res.FirstRegions, res.ShiftRegions, res.DedupTime+res.TransferTime)
	}

	fmt.Printf("\ncheckpoint record: %d checkpoints, %d bytes total (%.1fx smaller than full)\n",
		ck.NumCheckpoints(), ck.RecordBytes(),
		float64(len(golden))*float64(size)/float64(ck.RecordBytes()))

	// Restore every version and verify.
	for i, want := range golden {
		got, err := ck.Restore(i)
		if err != nil {
			log.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			log.Fatalf("restore %d is not bit-exact", i)
		}
	}
	fmt.Println("all versions restored bit-exactly")

	// Persist the lineage and restore it on a "different machine"
	// (inspect the same directory with `go run ./cmd/restoretool -dir ...`).
	dir, err := os.MkdirTemp("", "gpuckpt-quickstart-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	if err := ck.SaveRecordDir(dir + "/lineage"); err != nil {
		log.Fatal(err)
	}
	rec, err := gpuckpt.ReadRecordDir(dir + "/lineage")
	if err != nil {
		log.Fatal(err)
	}
	rec.Parallel(0)
	state, err := rec.Restore(rec.Len() - 1)
	if err != nil || !bytes.Equal(state, golden[len(golden)-1]) {
		log.Fatalf("persisted restore failed: %v", err)
	}
	fmt.Printf("lineage persisted to disk and restored independently (%d diffs)\n", rec.Len())
}
