// Restart demonstrates the paper's §1 resilience scenario end to end
// through the public API and the on-disk lineage: a simulated solver
// checkpoints into a PersistDir, the process "crashes" (all in-memory
// state is discarded), and a fresh process restores the latest
// checkpoint from the directory alone and resumes — finishing with
// exactly the state an uninterrupted run produces.
//
// Run with:
//
//	go run ./examples/restart [-steps 30] [-crash 12]
package main

import (
	"bytes"
	"encoding/binary"
	"flag"
	"fmt"
	"log"
	"os"

	gpuckpt "github.com/gpuckpt/gpuckpt"
)

// solver is a deterministic fixed-point reaction process: each step
// mixes neighboring cells. Restoring its serialized state resumes it
// bit-exactly.
type solver struct {
	cells []uint32
}

func newSolver(n int) *solver {
	s := &solver{cells: make([]uint32, n)}
	for i := range s.cells {
		s.cells[i] = uint32(i%97) * 3
	}
	return s
}

func (s *solver) step() {
	n := len(s.cells)
	next := make([]uint32, n)
	for i := range s.cells {
		l := s.cells[(i+n-1)%n]
		r := s.cells[(i+1)%n]
		next[i] = s.cells[i] + (l^r)>>3 + 1
	}
	s.cells = next
}

func (s *solver) serialize() []byte {
	out := make([]byte, len(s.cells)*4)
	for i, v := range s.cells {
		binary.LittleEndian.PutUint32(out[i*4:], v)
	}
	return out
}

func (s *solver) restore(img []byte) {
	for i := range s.cells {
		s.cells[i] = binary.LittleEndian.Uint32(img[i*4:])
	}
}

func main() {
	steps := flag.Int("steps", 30, "total solver steps")
	crash := flag.Int("crash", 12, "step after which the process crashes")
	cells := flag.Int("cells", 65536, "solver cells")
	flag.Parse()
	if *crash >= *steps {
		log.Fatal("crash step must precede the final step")
	}

	dir, err := os.MkdirTemp("", "gpuckpt-restart-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	lineage := dir + "/lineage"

	// Reference: the uninterrupted run.
	ref := newSolver(*cells)
	for i := 0; i < *steps; i++ {
		ref.step()
	}

	// Run 1: checkpoint every step into the lineage, then "crash".
	run1 := newSolver(*cells)
	stateLen := len(run1.serialize())
	ck, err := gpuckpt.New(gpuckpt.Config{
		Method: gpuckpt.MethodTree, ChunkSize: 128, PersistDir: lineage,
	}, stateLen)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < *crash; i++ {
		run1.step()
		if _, err := ck.Checkpoint(run1.serialize()); err != nil {
			log.Fatal(err)
		}
	}
	ck.Close()
	run1 = nil // the crash: every in-memory artifact is gone
	fmt.Printf("crashed after step %d; lineage on disk: %d checkpoints\n", *crash, *crash)

	// Run 2: a fresh process recovers from the directory alone.
	rec, err := gpuckpt.ReadRecordDir(lineage)
	if err != nil {
		log.Fatal(err)
	}
	img, err := rec.Restore(rec.Len() - 1)
	if err != nil {
		log.Fatal(err)
	}
	run2 := newSolver(*cells)
	run2.restore(img)
	fmt.Printf("restored checkpoint %d (%d bytes), resuming\n", rec.Len()-1, len(img))
	for i := *crash; i < *steps; i++ {
		run2.step()
	}

	if !bytes.Equal(run2.serialize(), ref.serialize()) {
		log.Fatal("restarted run diverged from the uninterrupted run")
	}
	fmt.Printf("restarted run matches the uninterrupted run bit-exactly after %d steps\n", *steps)
}
