// Adjoint demonstrates the paper's future-work scenario (§5 and §1):
// high-frequency checkpointing of intermediate states for adjoint
// computations, where every forward-pass step must be revisited in the
// backward pass. A 2-D heat-equation stencil advances its state and
// checkpoints EVERY step; the backward pass then walks the lineage in
// reverse, restoring each intermediate state bit-exactly.
//
// Because consecutive stencil states change almost everywhere but only
// slightly, this workload stresses a different redundancy structure
// than the graph application: most chunks change every step, yet
// quantization keeps many regions identical across space and time.
//
// Run with:
//
//	go run ./examples/adjoint [-grid 256] [-steps 40]
package main

import (
	"bytes"
	"encoding/binary"
	"flag"
	"fmt"
	"log"
	"math"

	gpuckpt "github.com/gpuckpt/gpuckpt"
)

// field is a 2-D grid of quantized temperatures. Quantization (fixed
// point) is what a solver that checkpoints in reduced precision does,
// and it is what creates de-duplicable plateaus.
type field struct {
	n    int
	temp []float64
	buf  []byte // fixed-point serialization, the checkpointed object
}

func newField(n int) *field {
	f := &field{n: n, temp: make([]float64, n*n), buf: make([]byte, n*n*4)}
	// A hot square in the middle of a cold plate.
	for y := n / 4; y < 3*n/4; y++ {
		for x := n / 4; x < 3*n/4; x++ {
			f.temp[y*n+x] = 100
		}
	}
	return f
}

// step advances the explicit heat stencil.
func (f *field) step() {
	n := f.n
	next := make([]float64, n*n)
	const alpha = 0.2
	for y := 1; y < n-1; y++ {
		for x := 1; x < n-1; x++ {
			i := y*n + x
			lap := f.temp[i-1] + f.temp[i+1] + f.temp[i-n] + f.temp[i+n] - 4*f.temp[i]
			next[i] = f.temp[i] + alpha*lap
		}
	}
	f.temp = next
}

// serialize quantizes to 1/16-degree fixed point.
func (f *field) serialize() []byte {
	for i, t := range f.temp {
		binary.LittleEndian.PutUint32(f.buf[i*4:], uint32(int32(math.Round(t*16))))
	}
	return f.buf
}

func main() {
	grid := flag.Int("grid", 256, "grid side length")
	steps := flag.Int("steps", 40, "forward steps (one checkpoint per step)")
	flag.Parse()

	f := newField(*grid)
	size := len(f.serialize())

	run := func(m gpuckpt.Method) (int64, [][]byte) {
		ck, err := gpuckpt.New(gpuckpt.Config{Method: m, ChunkSize: 64}, size)
		if err != nil {
			log.Fatal(err)
		}
		defer ck.Close()
		f := newField(*grid)
		var golden [][]byte
		for s := 0; s < *steps; s++ {
			img := f.serialize()
			golden = append(golden, append([]byte(nil), img...))
			if _, err := ck.Checkpoint(img); err != nil {
				log.Fatal(err)
			}
			f.step()
		}
		// Backward pass: restore every intermediate state in reverse.
		for s := *steps - 1; s >= 0; s-- {
			got, err := ck.Restore(s)
			if err != nil {
				log.Fatal(err)
			}
			if !bytes.Equal(got, golden[s]) {
				log.Fatalf("%v: backward pass state %d mismatch", m, s)
			}
		}
		return ck.RecordBytes(), golden
	}

	treeBytes, _ := run(gpuckpt.MethodTree)
	fullBytes, _ := run(gpuckpt.MethodFull)

	fmt.Printf("adjoint forward pass: %d steps of a %dx%d stencil (%d bytes per state)\n",
		*steps, *grid, *grid, size)
	fmt.Printf("  Full record: %10d bytes\n", fullBytes)
	fmt.Printf("  Tree record: %10d bytes (%.1fx smaller)\n",
		treeBytes, float64(fullBytes)/float64(treeBytes))
	fmt.Println("backward pass restored every intermediate state bit-exactly for both methods")
}
