// Multigpu reproduces the strong-scaling story of Figure 6 through the
// public API: P simulated processes each own a full-size GDV replica
// of the Delaunay input, enumerate an interleaved share of the roots,
// and checkpoint independently (ORANGES is embarrassingly parallel,
// Tan et al., ICPP 2023, §3.3). The total checkpoint record shrinks by
// orders of magnitude under the Tree method because each process's
// updates get sparser as P grows.
//
// Run with:
//
//	go run ./examples/multigpu [-procs 8] [-vertices 10000]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	gpuckpt "github.com/gpuckpt/gpuckpt"
)

func main() {
	procs := flag.Int("procs", 8, "number of simulated processes (one GPU each)")
	vertices := flag.Int("vertices", 10000, "Delaunay graph scale")
	n := flag.Int("n", 10, "checkpoints per process")
	flag.Parse()

	fmt.Printf("strong scaling: %d processes over Delaunay (~%d vertices), %d checkpoints each\n\n",
		*procs, *vertices, *n)

	type total struct {
		stored  int64
		input   int64
		maxTime time.Duration
	}
	totals := map[gpuckpt.Method]*total{
		gpuckpt.MethodFull: {},
		gpuckpt.MethodTree: {},
	}

	for rank := 0; rank < *procs; rank++ {
		series, err := gpuckpt.BuildWorkloadSeries(gpuckpt.WorkloadConfig{
			Graph:          "Delaunay N24",
			TargetVertices: *vertices,
			Checkpoints:    *n,
			Processes:      *procs,
			Rank:           rank,
		})
		if err != nil {
			log.Fatal(err)
		}
		for m, t := range totals {
			ck, err := gpuckpt.New(gpuckpt.Config{Method: m, ChunkSize: 128}, series.DataLen)
			if err != nil {
				log.Fatal(err)
			}
			for _, img := range series.Images {
				res, err := ck.Checkpoint(img)
				if err != nil {
					log.Fatal(err)
				}
				t.stored += res.StoredBytes
				t.input += res.InputBytes
			}
			if ck.ModeledTime() > t.maxTime {
				t.maxTime = ck.ModeledTime()
			}
			ck.Close()
		}
	}

	full := totals[gpuckpt.MethodFull]
	tree := totals[gpuckpt.MethodTree]
	fmt.Printf("%-6s  %16s  %12s  %16s\n", "method", "total ckpt size", "reduction", "agg throughput")
	for _, row := range []struct {
		name string
		t    *total
	}{{"Full", full}, {"Tree", tree}} {
		fmt.Printf("%-6s  %13.2f MiB  %11.1fx  %13.2f GB/s\n",
			row.name,
			float64(row.t.stored)/(1<<20),
			float64(full.stored)/float64(row.t.stored),
			float64(row.t.input)/row.t.maxTime.Seconds()/1e9)
	}
	fmt.Printf("\nat %d processes the Tree record is %.1fx smaller than Full (paper: 215x at 64 GPUs, full scale)\n",
		*procs, float64(full.stored)/float64(tree.stored))
}
