// Graphapp reproduces the paper's driver scenario end to end: the
// ORANGES application computes graphlet degree vectors over a Message
// Race event graph, snapshotting the GDV array at 10 evenly spaced
// moments; each snapshot is checkpointed with all four methods and the
// resulting record sizes and modeled throughputs are compared (the
// single-GPU scenario of Tan et al., ICPP 2023, §3.2).
//
// Run with:
//
//	go run ./examples/graphapp [-graph "Asia OSM"] [-vertices 20000]
package main

import (
	"bytes"
	"flag"
	"fmt"
	"log"

	gpuckpt "github.com/gpuckpt/gpuckpt"
)

func main() {
	graphName := flag.String("graph", "Message Race", "Table 1 input graph")
	vertices := flag.Int("vertices", 16000, "graph scale (paper: 11-18 M)")
	chunk := flag.Int("chunk", 128, "de-duplication chunk size in bytes")
	n := flag.Int("n", 10, "number of checkpoints")
	flag.Parse()

	fmt.Printf("running ORANGES over %q (~%d vertices), %d checkpoints...\n",
		*graphName, *vertices, *n)
	series, err := gpuckpt.BuildWorkloadSeries(gpuckpt.WorkloadConfig{
		Graph:          *graphName,
		TargetVertices: *vertices,
		Checkpoints:    *n,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: %d vertices, %d edges; GDV buffer: %.2f MiB\n\n",
		series.Vertices, series.Edges/2, float64(series.DataLen)/(1<<20))

	methods := []gpuckpt.Method{
		gpuckpt.MethodFull, gpuckpt.MethodBasic, gpuckpt.MethodList, gpuckpt.MethodTree,
	}
	fmt.Printf("%-6s  %14s  %9s  %14s\n", "method", "record size", "ratio", "modeled time")
	for _, m := range methods {
		ck, err := gpuckpt.New(gpuckpt.Config{Method: m, ChunkSize: *chunk}, series.DataLen)
		if err != nil {
			log.Fatal(err)
		}
		for _, img := range series.Images {
			if _, err := ck.Checkpoint(img); err != nil {
				log.Fatal(err)
			}
		}
		// Prove the record is complete: restore the final state.
		got, err := ck.RestoreLatest()
		if err != nil {
			log.Fatal(err)
		}
		if !bytes.Equal(got, series.Images[len(series.Images)-1]) {
			log.Fatalf("%v: restore mismatch", m)
		}
		totalInput := int64(series.DataLen) * int64(len(series.Images))
		fmt.Printf("%-6v  %14d  %8.1fx  %14v\n",
			m, ck.RecordBytes(), float64(totalInput)/float64(ck.RecordBytes()), ck.ModeledTime())
		ck.Close()
	}
	fmt.Println("\nall methods restored the final GDV bit-exactly")
}
