package gpuckpt

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"

	"github.com/gpuckpt/gpuckpt/internal/server"
	"github.com/gpuckpt/gpuckpt/internal/wire"
)

// startTestServer runs a ckptd server on an ephemeral port.
func startTestServer(t *testing.T, cfg server.Config) (string, func()) {
	t.Helper()
	_, addr, shutdown := startTestServerH(t, cfg)
	return addr, shutdown
}

// startTestServerH additionally returns the server handle for
// server-side stats inspection.
func startTestServerH(t *testing.T, cfg server.Config) (*server.Server, string, func()) {
	t.Helper()
	cfg.Logf = func(string, ...any) {}
	srv, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ctx, ln) }()
	return srv, ln.Addr().String(), func() {
		cancel()
		if err := <-done; err != nil {
			t.Errorf("Serve: %v", err)
		}
	}
}

// mutate flips a few scattered regions of buf, checkpoint-workload
// style: some new bytes, some shifted content, most unchanged.
func mutate(rng *rand.Rand, buf []byte) {
	for r := 0; r < 4; r++ {
		off := rng.Intn(len(buf) - 512)
		n := 64 + rng.Intn(448)
		rng.Read(buf[off : off+n])
	}
	// Shift a block to create shifted duplicates.
	src := rng.Intn(len(buf) - 2048)
	dst := rng.Intn(len(buf) - 2048)
	copy(buf[dst:dst+1024], buf[src:src+1024])
}

// TestClientServerEndToEnd is the acceptance test of the ckptd
// subsystem: 8 goroutine clients concurrently push interleaved diffs
// of distinct lineages to one server, then pull them back and restore
// bit-exactly; STATS must report matching request counters.
func TestClientServerEndToEnd(t *testing.T) {
	const (
		numClients = 8
		numCkpts   = 4
		bufLen     = 64 << 10
	)
	srv, addr, shutdown := startTestServerH(t, server.Config{Root: t.TempDir(), MaxConns: numClients + 4})
	defer shutdown()

	goldens := make([][]byte, numClients)
	var pushedBytes [2]int64 // [0]=diff payload bytes pushed (atomic via mu)
	var mu sync.Mutex

	var wg sync.WaitGroup
	errs := make(chan error, numClients)
	for i := 0; i < numClients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs <- func() error {
				cl, err := Dial(addr, 10*time.Second)
				if err != nil {
					return err
				}
				defer cl.Close()
				lineage := fmt.Sprintf("proc-%02d", i)

				ck, err := New(Config{Method: MethodTree, ChunkSize: 128}, bufLen)
				if err != nil {
					return err
				}
				defer ck.Close()

				rng := rand.New(rand.NewSource(int64(1000 + i)))
				buf := make([]byte, bufLen)
				rng.Read(buf)

				// Push each diff right after producing it, so the
				// server sees the lineages' appends interleaved.
				for k := 0; k < numCkpts; k++ {
					if k > 0 {
						mutate(rng, buf)
					}
					if _, err := ck.Checkpoint(buf); err != nil {
						return err
					}
					var enc bytes.Buffer
					if err := ck.WriteDiff(k, &enc); err != nil {
						return err
					}
					if err := cl.Push(lineage, k, enc.Bytes()); err != nil {
						return fmt.Errorf("push %s ckpt %d: %w", lineage, k, err)
					}
					mu.Lock()
					pushedBytes[0] += int64(enc.Len())
					mu.Unlock()
				}
				mu.Lock()
				goldens[i] = append([]byte(nil), buf...)
				mu.Unlock()
				return nil
			}()
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	// Pull every lineage back over the network (one shared client, as
	// a restore host would) and verify bit-exact restores.
	cl, err := Dial(addr, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for i := 0; i < numClients; i++ {
		lineage := fmt.Sprintf("proc-%02d", i)
		rec, err := cl.Pull(lineage)
		if err != nil {
			t.Fatalf("pull %s: %v", lineage, err)
		}
		if rec.Len() != numCkpts {
			t.Fatalf("%s: pulled %d checkpoints, want %d", lineage, rec.Len(), numCkpts)
		}
		state, err := rec.Restore(numCkpts - 1)
		if err != nil {
			t.Fatalf("restore %s: %v", lineage, err)
		}
		if !bytes.Equal(state, goldens[i]) {
			t.Fatalf("%s: restored buffer differs from original", lineage)
		}
	}

	infos, err := cl.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != numClients {
		t.Fatalf("list has %d lineages, want %d", len(infos), numClients)
	}
	var storedBytes int64
	for _, in := range infos {
		if in.Len != numCkpts {
			t.Fatalf("lineage %s has %d checkpoints, want %d", in.Name, in.Len, numCkpts)
		}
		storedBytes += in.Bytes
	}
	if storedBytes != pushedBytes[0] {
		t.Fatalf("server stores %d bytes, clients pushed %d", storedBytes, pushedBytes[0])
	}

	// The pushers closed their connections; wait for the server to
	// notice (teardown is asynchronous) before sampling counters.
	for deadline := time.Now().Add(5 * time.Second); ; {
		if srv.Stats().ActiveConns == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never drained pusher connections: %+v", srv.Stats())
		}
		time.Sleep(5 * time.Millisecond)
	}

	st, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	// Exact request bookkeeping: each pusher sends 1 OPEN (first Push
	// resolves the handle) + numCkpts PUSH. The restore client sends,
	// per lineage, 1 OPEN (Pull re-opens for a fresh length) +
	// numCkpts PULL, then 1 LIST and this 1 STATS.
	wantRequests := uint64(numClients*(1+numCkpts) + numClients*(1+numCkpts) + 1 + 1)
	if st.Requests != wantRequests {
		t.Fatalf("server served %d requests, want %d", st.Requests, wantRequests)
	}
	if st.Lineages != numClients {
		t.Fatalf("stats report %d lineages", st.Lineages)
	}
	if st.Conns != numClients+1 || st.ActiveConns != 1 {
		t.Fatalf("conn counters: %+v", st)
	}
	// Every pushed diff byte crossed the wire in, and out again on
	// pull, plus framing overhead.
	if st.BytesIn < uint64(pushedBytes[0]) {
		t.Fatalf("bytesIn %d < pushed %d", st.BytesIn, pushedBytes[0])
	}
	if st.BytesOut < uint64(pushedBytes[0]) {
		t.Fatalf("bytesOut %d < pulled %d", st.BytesOut, pushedBytes[0])
	}
}

// TestClientPushCheckpointerAndRecord covers the bulk-push helpers and
// incremental sync: only diffs the server lacks are sent.
func TestClientPushCheckpointerAndRecord(t *testing.T) {
	addr, shutdown := startTestServer(t, server.Config{Root: t.TempDir()})
	defer shutdown()
	cl, err := Dial(addr, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	const bufLen = 32 << 10
	ck, err := New(Config{Method: MethodTree, ChunkSize: 128}, bufLen)
	if err != nil {
		t.Fatal(err)
	}
	defer ck.Close()
	rng := rand.New(rand.NewSource(42))
	buf := make([]byte, bufLen)
	rng.Read(buf)
	for k := 0; k < 3; k++ {
		if k > 0 {
			mutate(rng, buf)
		}
		if _, err := ck.Checkpoint(buf); err != nil {
			t.Fatal(err)
		}
	}

	if n, err := cl.PushCheckpointer("bulk", ck); err != nil || n != 3 {
		t.Fatalf("bulk push: n=%d err=%v", n, err)
	}
	// Re-push is an incremental no-op.
	if n, err := cl.PushCheckpointer("bulk", ck); err != nil || n != 0 {
		t.Fatalf("re-push: n=%d err=%v", n, err)
	}
	// Extend and sync only the new diff.
	mutate(rng, buf)
	if _, err := ck.Checkpoint(buf); err != nil {
		t.Fatal(err)
	}
	if n, err := cl.PushCheckpointer("bulk", ck); err != nil || n != 1 {
		t.Fatalf("incremental push: n=%d err=%v", n, err)
	}
	if n, err := cl.Len("bulk"); err != nil || n != 4 {
		t.Fatalf("server len %d err %v", n, err)
	}

	// Pull to a Record, push the Record to a second lineage, pull
	// again: still bit-exact.
	rec, err := cl.Pull("bulk")
	if err != nil {
		t.Fatal(err)
	}
	if n, err := cl.PushRecord("copy", rec); err != nil || n != 4 {
		t.Fatalf("record push: n=%d err=%v", n, err)
	}
	rec2, err := cl.Pull("copy")
	if err != nil {
		t.Fatal(err)
	}
	want, err := ck.RestoreLatest()
	if err != nil {
		t.Fatal(err)
	}
	got, err := rec2.Restore(3)
	if err != nil || !bytes.Equal(got, want) {
		t.Fatalf("copied lineage restore mismatch (err %v)", err)
	}
	if err := rec.WriteDiff(99, &bytes.Buffer{}); err == nil {
		t.Fatal("out-of-range WriteDiff accepted")
	}
}

// TestClientRemoteErrors verifies clean server-side failures surface
// as RemoteError and are not retried into duplicates.
func TestClientRemoteErrors(t *testing.T) {
	addr, shutdown := startTestServer(t, server.Config{Root: t.TempDir()})
	defer shutdown()
	cl, err := Dial(addr, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	if _, err := cl.Pull("missing"); err == nil {
		t.Fatal("pull of empty lineage succeeded")
	}
	if err := cl.Push("lin", 5, []byte("garbage")); err == nil {
		t.Fatal("garbage push succeeded")
	}
	var re *RemoteError
	if err := cl.Push("bad/name", 0, nil); err == nil {
		t.Fatal("bad lineage name accepted")
	} else if !errors.As(err, &re) {
		t.Fatalf("bad name error is not remote: %v", err)
	}
	// The connection survives remote errors.
	if _, err := cl.Stats(); err != nil {
		t.Fatalf("connection dead after remote errors: %v", err)
	}
}

// TestClientReconnects verifies retry-on-transient-error: the client
// survives its connection being torn down between requests.
func TestClientReconnects(t *testing.T) {
	addr, shutdown := startTestServer(t, server.Config{Root: t.TempDir()})
	defer shutdown()
	cl, err := Dial(addr, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.Len("lin"); err != nil {
		t.Fatal(err)
	}
	// Sever the connection behind the client's back.
	cl.mu.Lock()
	cl.conn.Close()
	cl.mu.Unlock()
	// The next request must transparently redial.
	if _, err := cl.Stats(); err != nil {
		t.Fatalf("request after connection loss failed: %v", err)
	}
	if err := cl.Push("lin", 0, encodeFullDiff(t, 0)); err != nil {
		t.Fatalf("push after reconnect: %v", err)
	}
}

func encodeFullDiff(t *testing.T, ck int) []byte {
	t.Helper()
	ckp, err := New(Config{Method: MethodFull, ChunkSize: 128}, 4096)
	if err != nil {
		t.Fatal(err)
	}
	defer ckp.Close()
	buf := make([]byte, 4096)
	for k := 0; k <= ck; k++ {
		if _, err := ckp.Checkpoint(buf); err != nil {
			t.Fatal(err)
		}
	}
	var enc bytes.Buffer
	if err := ckp.WriteDiff(ck, &enc); err != nil {
		t.Fatal(err)
	}
	return enc.Bytes()
}

// TestClientConnectionLimitError verifies the server's over-limit
// rejection surfaces as a readable error, not a silent hang.
func TestClientConnectionLimitError(t *testing.T) {
	addr, shutdown := startTestServer(t, server.Config{Root: t.TempDir(), MaxConns: 1})
	defer shutdown()
	c1, err := Dial(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	if _, err := c1.Stats(); err != nil {
		t.Fatal(err)
	}
	c2, err := Dial(addr, 5*time.Second)
	if err != nil {
		// Acceptable: rejection during dial.
		return
	}
	defer c2.Close()
	if _, err := c2.Stats(); err == nil {
		t.Fatal("over-limit client served")
	}
}

// Guard against protocol drift: the version the client speaks is the
// version the server checks.
func TestClientProtocolVersion(t *testing.T) {
	if wire.Version != 1 {
		t.Fatalf("protocol version bumped to %d: update compatibility notes", wire.Version)
	}
}
