package gpuckpt

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"

	"github.com/gpuckpt/gpuckpt/internal/server"
	"github.com/gpuckpt/gpuckpt/internal/wire"
)

// startTestServer runs a ckptd server on an ephemeral port.
func startTestServer(t *testing.T, cfg server.Config) (string, func()) {
	t.Helper()
	_, addr, shutdown := startTestServerH(t, cfg)
	return addr, shutdown
}

// startTestServerH additionally returns the server handle for
// server-side stats inspection.
func startTestServerH(t *testing.T, cfg server.Config) (*server.Server, string, func()) {
	t.Helper()
	cfg.Logf = func(string, ...any) {}
	srv, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ctx, ln) }()
	return srv, ln.Addr().String(), func() {
		cancel()
		if err := <-done; err != nil {
			t.Errorf("Serve: %v", err)
		}
	}
}

// mutate flips a few scattered regions of buf, checkpoint-workload
// style: some new bytes, some shifted content, most unchanged.
func mutate(rng *rand.Rand, buf []byte) {
	for r := 0; r < 4; r++ {
		off := rng.Intn(len(buf) - 512)
		n := 64 + rng.Intn(448)
		rng.Read(buf[off : off+n])
	}
	// Shift a block to create shifted duplicates.
	src := rng.Intn(len(buf) - 2048)
	dst := rng.Intn(len(buf) - 2048)
	copy(buf[dst:dst+1024], buf[src:src+1024])
}

// TestClientServerEndToEnd is the acceptance test of the ckptd
// subsystem: 8 goroutine clients concurrently push interleaved diffs
// of distinct lineages to one server, then pull them back and restore
// bit-exactly; STATS must report matching request counters.
func TestClientServerEndToEnd(t *testing.T) {
	const (
		numClients = 8
		numCkpts   = 4
		bufLen     = 64 << 10
	)
	srv, addr, shutdown := startTestServerH(t, server.Config{Root: t.TempDir(), MaxConns: numClients + 4})
	defer shutdown()

	goldens := make([][]byte, numClients)
	var pushedBytes [2]int64 // [0]=diff payload bytes pushed (atomic via mu)
	var mu sync.Mutex

	var wg sync.WaitGroup
	errs := make(chan error, numClients)
	for i := 0; i < numClients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs <- func() error {
				cl, err := Dial(addr, 10*time.Second)
				if err != nil {
					return err
				}
				defer cl.Close()
				lineage := fmt.Sprintf("proc-%02d", i)

				ck, err := New(Config{Method: MethodTree, ChunkSize: 128}, bufLen)
				if err != nil {
					return err
				}
				defer ck.Close()

				rng := rand.New(rand.NewSource(int64(1000 + i)))
				buf := make([]byte, bufLen)
				rng.Read(buf)

				// Push each diff right after producing it, so the
				// server sees the lineages' appends interleaved.
				for k := 0; k < numCkpts; k++ {
					if k > 0 {
						mutate(rng, buf)
					}
					if _, err := ck.Checkpoint(buf); err != nil {
						return err
					}
					var enc bytes.Buffer
					if err := ck.WriteDiff(k, &enc); err != nil {
						return err
					}
					if err := cl.Push(lineage, k, enc.Bytes()); err != nil {
						return fmt.Errorf("push %s ckpt %d: %w", lineage, k, err)
					}
					mu.Lock()
					pushedBytes[0] += int64(enc.Len())
					mu.Unlock()
				}
				mu.Lock()
				goldens[i] = append([]byte(nil), buf...)
				mu.Unlock()
				return nil
			}()
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	// Pull every lineage back over the network (one shared client, as
	// a restore host would) and verify bit-exact restores.
	cl, err := Dial(addr, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for i := 0; i < numClients; i++ {
		lineage := fmt.Sprintf("proc-%02d", i)
		rec, err := cl.Pull(lineage)
		if err != nil {
			t.Fatalf("pull %s: %v", lineage, err)
		}
		if rec.Len() != numCkpts {
			t.Fatalf("%s: pulled %d checkpoints, want %d", lineage, rec.Len(), numCkpts)
		}
		state, err := rec.Restore(numCkpts - 1)
		if err != nil {
			t.Fatalf("restore %s: %v", lineage, err)
		}
		if !bytes.Equal(state, goldens[i]) {
			t.Fatalf("%s: restored buffer differs from original", lineage)
		}
	}

	infos, err := cl.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != numClients {
		t.Fatalf("list has %d lineages, want %d", len(infos), numClients)
	}
	var storedBytes int64
	for _, in := range infos {
		if in.Len != numCkpts {
			t.Fatalf("lineage %s has %d checkpoints, want %d", in.Name, in.Len, numCkpts)
		}
		storedBytes += in.Bytes
	}
	// The server interns every diff's data section into its shared
	// block store, so the lineage directories hold block-mapped
	// containers — far smaller on disk than the canonical bytes the
	// clients pushed (which the pulls above reassembled bit-exactly).
	if storedBytes >= pushedBytes[0] {
		t.Fatalf("server stores %d bytes in lineage files; interning should undercut the %d pushed",
			storedBytes, pushedBytes[0])
	}
	st0, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st0.BlocksInterned == 0 {
		t.Fatal("stats report zero interned blocks after pushes")
	}

	// The pushers closed their connections; wait for the server to
	// notice (teardown is asynchronous) before sampling counters.
	for deadline := time.Now().Add(5 * time.Second); ; {
		if srv.Stats().ActiveConns == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never drained pusher connections: %+v", srv.Stats())
		}
		time.Sleep(5 * time.Millisecond)
	}

	st, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	// Exact request bookkeeping: each pusher sends 1 OPEN (first Push
	// resolves the handle) + numCkpts PUSH. The restore client sends,
	// per lineage, 1 OPEN (Pull re-opens for a fresh length) +
	// numCkpts PULL, then 1 LIST and 2 STATS (the block-store sample
	// above and this one).
	wantRequests := uint64(numClients*(1+numCkpts) + numClients*(1+numCkpts) + 1 + 2)
	if st.Requests != wantRequests {
		t.Fatalf("server served %d requests, want %d", st.Requests, wantRequests)
	}
	if st.Lineages != numClients {
		t.Fatalf("stats report %d lineages", st.Lineages)
	}
	if st.Conns != numClients+1 || st.ActiveConns != 1 {
		t.Fatalf("conn counters: %+v", st)
	}
	// Every pushed diff byte crossed the wire in, and out again on
	// pull, plus framing overhead.
	if st.BytesIn < uint64(pushedBytes[0]) {
		t.Fatalf("bytesIn %d < pushed %d", st.BytesIn, pushedBytes[0])
	}
	if st.BytesOut < uint64(pushedBytes[0]) {
		t.Fatalf("bytesOut %d < pulled %d", st.BytesOut, pushedBytes[0])
	}
}

// TestClientPushCheckpointerAndRecord covers the bulk-push helpers and
// incremental sync: only diffs the server lacks are sent.
func TestClientPushCheckpointerAndRecord(t *testing.T) {
	addr, shutdown := startTestServer(t, server.Config{Root: t.TempDir()})
	defer shutdown()
	cl, err := Dial(addr, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	const bufLen = 32 << 10
	ck, err := New(Config{Method: MethodTree, ChunkSize: 128}, bufLen)
	if err != nil {
		t.Fatal(err)
	}
	defer ck.Close()
	rng := rand.New(rand.NewSource(42))
	buf := make([]byte, bufLen)
	rng.Read(buf)
	for k := 0; k < 3; k++ {
		if k > 0 {
			mutate(rng, buf)
		}
		if _, err := ck.Checkpoint(buf); err != nil {
			t.Fatal(err)
		}
	}

	if n, err := cl.PushCheckpointer("bulk", ck); err != nil || n != 3 {
		t.Fatalf("bulk push: n=%d err=%v", n, err)
	}
	// Re-push is an incremental no-op.
	if n, err := cl.PushCheckpointer("bulk", ck); err != nil || n != 0 {
		t.Fatalf("re-push: n=%d err=%v", n, err)
	}
	// Extend and sync only the new diff.
	mutate(rng, buf)
	if _, err := ck.Checkpoint(buf); err != nil {
		t.Fatal(err)
	}
	if n, err := cl.PushCheckpointer("bulk", ck); err != nil || n != 1 {
		t.Fatalf("incremental push: n=%d err=%v", n, err)
	}
	if n, err := cl.Len("bulk"); err != nil || n != 4 {
		t.Fatalf("server len %d err %v", n, err)
	}

	// Pull to a Record, push the Record to a second lineage, pull
	// again: still bit-exact.
	rec, err := cl.Pull("bulk")
	if err != nil {
		t.Fatal(err)
	}
	if n, err := cl.PushRecord("copy", rec); err != nil || n != 4 {
		t.Fatalf("record push: n=%d err=%v", n, err)
	}
	rec2, err := cl.Pull("copy")
	if err != nil {
		t.Fatal(err)
	}
	want, err := ck.RestoreLatest()
	if err != nil {
		t.Fatal(err)
	}
	got, err := rec2.Restore(3)
	if err != nil || !bytes.Equal(got, want) {
		t.Fatalf("copied lineage restore mismatch (err %v)", err)
	}
	if err := rec.WriteDiff(99, &bytes.Buffer{}); err == nil {
		t.Fatal("out-of-range WriteDiff accepted")
	}
}

// TestClientRemoteErrors verifies clean server-side failures surface
// as RemoteError and are not retried into duplicates.
func TestClientRemoteErrors(t *testing.T) {
	addr, shutdown := startTestServer(t, server.Config{Root: t.TempDir()})
	defer shutdown()
	cl, err := Dial(addr, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	if _, err := cl.Pull("missing"); err == nil {
		t.Fatal("pull of empty lineage succeeded")
	}
	if err := cl.Push("lin", 5, []byte("garbage")); err == nil {
		t.Fatal("garbage push succeeded")
	}
	var re *RemoteError
	if err := cl.Push("bad/name", 0, nil); err == nil {
		t.Fatal("bad lineage name accepted")
	} else if !errors.As(err, &re) {
		t.Fatalf("bad name error is not remote: %v", err)
	}
	// The connection survives remote errors.
	if _, err := cl.Stats(); err != nil {
		t.Fatalf("connection dead after remote errors: %v", err)
	}
}

// TestClientReconnects verifies retry-on-transient-error: the client
// survives its connection being torn down between requests.
func TestClientReconnects(t *testing.T) {
	addr, shutdown := startTestServer(t, server.Config{Root: t.TempDir()})
	defer shutdown()
	cl, err := Dial(addr, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.Len("lin"); err != nil {
		t.Fatal(err)
	}
	// Sever every parked connection behind the client's back.
	cl.pool.ForEachIdle(func(nc net.Conn, _ any) { nc.Close() })
	// The next request must transparently redial.
	if _, err := cl.Stats(); err != nil {
		t.Fatalf("request after connection loss failed: %v", err)
	}
	if err := cl.Push("lin", 0, encodeFullDiff(t, 0)); err != nil {
		t.Fatalf("push after reconnect: %v", err)
	}
}

// TestClientPerOperationDeadlines pins down that Timeout is armed per
// operation, not once at connect time: a session that lives many times
// longer than Timeout keeps working as long as each individual round
// trip is fast. A single connect-time SetDeadline would go stale and
// fail every request issued after the first Timeout elapsed. Retries
// are disabled so a stale deadline cannot be papered over by a redial.
func TestClientPerOperationDeadlines(t *testing.T) {
	addr, shutdown := startTestServer(t, server.Config{Root: t.TempDir()})
	defer shutdown()

	const opTimeout = 150 * time.Millisecond
	cl, err := DialConfigured(addr, DialConfig{
		Timeout: opTimeout,
		Retry:   RetryPolicy{MaxAttempts: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	start := time.Now()
	for k := 0; k < 8; k++ {
		if err := cl.Push("lin", k, encodeFullDiff(t, k)); err != nil {
			t.Fatalf("push %d at t=%v: %v", k, time.Since(start), err)
		}
		if n, err := cl.Len("lin"); err != nil {
			t.Fatalf("len at t=%v: %v", time.Since(start), err)
		} else if n != k+1 {
			t.Fatalf("len %d after push %d", n, k)
		}
		time.Sleep(opTimeout / 3) // stretch the session well past one timeout
	}
	if elapsed := time.Since(start); elapsed <= opTimeout {
		t.Fatalf("session only lasted %v; test proves nothing", elapsed)
	}
	// The whole session must have run on the original connection — a
	// reconnect would mean some operation hit a stale deadline.
	if st, err := cl.Stats(); err != nil {
		t.Fatal(err)
	} else if st.Conns != 1 {
		t.Fatalf("session used %d connections, want 1", st.Conns)
	}
}

// TestClientBackoffObservesContext is the regression test for retry
// waits ignoring cancellation: a client retrying against a dead
// server with a long backoff schedule must return as soon as its
// context is cancelled — with the context's error — instead of
// sleeping through the remaining attempts.
func TestClientBackoffObservesContext(t *testing.T) {
	addr, shutdown := startTestServer(t, server.Config{Root: t.TempDir()})
	cl, err := DialConfigured(addr, DialConfig{
		Timeout: time.Second,
		// A schedule that would block for minutes if the wait ignored
		// cancellation. Sleep is deliberately NOT stubbed: the timer
		// path under test is the production one.
		Retry: RetryPolicy{MaxAttempts: 10, BaseDelay: 30 * time.Second, MaxDelay: 30 * time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	shutdown() // kill the server: every attempt now fails at dial

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(100 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	pushErr := cl.PushContext(ctx, "lin", 0, encodeFullDiff(t, 0))
	elapsed := time.Since(start)
	if pushErr == nil {
		t.Fatal("push against a dead server succeeded")
	}
	if !errors.Is(pushErr, context.Canceled) {
		t.Fatalf("push error %v does not match context.Canceled", pushErr)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("cancelled push took %v: backoff ignored the context", elapsed)
	}
}

// TestClientDigest round-trips a wire v6 span digest: the summary
// must cover the pushed span, and the per-diff detail must match the
// server's canonical content checksums.
func TestClientDigest(t *testing.T) {
	addr, shutdown := startTestServer(t, server.Config{Root: t.TempDir()})
	defer shutdown()
	cl, err := Dial(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	const n = 5
	payloads := make([][]byte, n)
	for k := 0; k < n; k++ {
		payloads[k] = encodeFullDiff(t, k)
		if err := cl.Push("lin", k, payloads[k]); err != nil {
			t.Fatal(err)
		}
	}
	d, err := cl.Digest("lin", 0, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	if d.Base != 0 || d.Len != n || d.SpanLo != 0 || d.SpanHi != n {
		t.Fatalf("digest span = base %d len %d [%d,%d), want [0,%d)", d.Base, d.Len, d.SpanLo, d.SpanHi, n)
	}
	if len(d.Detail) != n {
		t.Fatalf("detail carries %d checksums, want %d", len(d.Detail), n)
	}
	for k, enc := range payloads {
		if want := wire.Checksum(enc); d.Detail[k] != want {
			t.Fatalf("detail[%d] = %08x, want content checksum %08x", k, d.Detail[k], want)
		}
	}
	if d.CRC == 0 && d.Root == ([16]byte{}) {
		t.Fatal("summary digest is zero over a non-empty span")
	}
}

func encodeFullDiff(t *testing.T, ck int) []byte {
	t.Helper()
	ckp, err := New(Config{Method: MethodFull, ChunkSize: 128}, 4096)
	if err != nil {
		t.Fatal(err)
	}
	defer ckp.Close()
	buf := make([]byte, 4096)
	for k := 0; k <= ck; k++ {
		if _, err := ckp.Checkpoint(buf); err != nil {
			t.Fatal(err)
		}
	}
	var enc bytes.Buffer
	if err := ckp.WriteDiff(ck, &enc); err != nil {
		t.Fatal(err)
	}
	return enc.Bytes()
}

// TestClientConnectionLimitError verifies the server's over-limit
// rejection surfaces as a readable error, not a silent hang.
func TestClientConnectionLimitError(t *testing.T) {
	addr, shutdown := startTestServer(t, server.Config{Root: t.TempDir(), MaxConns: 1})
	defer shutdown()
	c1, err := Dial(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	if _, err := c1.Stats(); err != nil {
		t.Fatal(err)
	}
	c2, err := Dial(addr, 5*time.Second)
	if err != nil {
		// Acceptable: rejection during dial.
		return
	}
	defer c2.Close()
	if _, err := c2.Stats(); err == nil {
		t.Fatal("over-limit client served")
	}
}

// Guard against protocol drift: the version the client speaks is the
// version the server checks. Version 2 added the lifecycle requests
// (TCompact/TPolicy), the open-info base payload, and the extended
// list/stats encodings. Version 3 added the CRC32C push precondition,
// StatusBusy load shedding with a retry-after hint, and the busy-
// reject stats counter. Version 4 added TPushStream windowed
// streaming pushes with out-of-order StreamAcks. Version 5 added the
// replication surface: TSubscribe with resume cursors, server-pushed
// TTail frames, and TResync barriers (lag shed / compaction fold);
// v5 clients fall back to length-polling against v4 servers.
// Version 6 added the anti-entropy surface: TDigest span digests
// (summary CRC + merkle root + optional per-diff detail) and the
// extended stats encoding with the reconciliation counters; v6
// reconcilers degrade to doing nothing against pre-v6 peers.
func TestClientProtocolVersion(t *testing.T) {
	if wire.Version != 6 {
		t.Fatalf("protocol version bumped to %d: update compatibility notes", wire.Version)
	}
	if wire.MinVersion != 3 {
		t.Fatalf("minimum supported version now %d: v3 sequential-push fallback notes are stale", wire.MinVersion)
	}
}

// TestClientUnsupportedRequestTyped is the regression test for the
// unknown-opcode path: a request type the server does not implement
// must come back as a typed error matching ErrUnsupported — not a
// generic remote error, and not a torn connection.
func TestClientUnsupportedRequestTyped(t *testing.T) {
	addr, shutdown := startTestServer(t, server.Config{Root: t.TempDir()})
	defer shutdown()
	cl, err := Dial(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	_, err = cl.roundTrip(&wire.Frame{Type: 0x99})
	if err == nil {
		t.Fatal("unknown request type succeeded")
	}
	if !errors.Is(err, ErrUnsupported) {
		t.Fatalf("unknown request type returned %v, want ErrUnsupported match", err)
	}
	// An ordinary failed request must NOT match the sentinel.
	if _, err := cl.PullDiff("no-such-lineage", 3); errors.Is(err, ErrUnsupported) {
		t.Fatalf("generic remote error matched ErrUnsupported: %v", err)
	}
	// The connection survives the refused request.
	if _, err := cl.List(); err != nil {
		t.Fatalf("connection unusable after unsupported request: %v", err)
	}
}

// TestClientCompactionLifecycle drives retention and compaction
// end-to-end through the public client API: push, set policy, compact,
// pull the shortened lineage, restore absolute indices bit-exactly.
func TestClientCompactionLifecycle(t *testing.T) {
	const (
		bufLen   = 32 << 10
		numCkpts = 10
	)
	addr, shutdown := startTestServer(t, server.Config{Root: t.TempDir()})
	defer shutdown()
	cl, err := Dial(addr, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	ck, err := New(Config{Method: MethodTree, ChunkSize: 128}, bufLen)
	if err != nil {
		t.Fatal(err)
	}
	defer ck.Close()

	rng := rand.New(rand.NewSource(11))
	buf := make([]byte, bufLen)
	rng.Read(buf)
	goldens := make([][]byte, numCkpts)
	for k := 0; k < numCkpts; k++ {
		if k > 0 {
			mutate(rng, buf)
		}
		if _, err := ck.Checkpoint(buf); err != nil {
			t.Fatal(err)
		}
		goldens[k] = append([]byte(nil), buf...)
	}
	if _, err := cl.PushCheckpointer("lin", ck); err != nil {
		t.Fatal(err)
	}

	if err := cl.SetRetention("lin", "keep-last=4"); err != nil {
		t.Fatal(err)
	}
	if pol, err := cl.Retention("lin"); err != nil || pol != "keep-last=4" {
		t.Fatalf("retention %q (%v)", pol, err)
	}
	if err := cl.SetRetention("lin", "nonsense"); err == nil {
		t.Fatal("bogus retention accepted")
	}

	info, err := cl.Compact("lin")
	if err != nil {
		t.Fatal(err)
	}
	if info.OldBase != 0 || info.NewBase != numCkpts-4 || info.Pruned != numCkpts-4 {
		t.Fatalf("compact: %+v", info)
	}
	base, n, err := cl.Span("lin")
	if err != nil || base != numCkpts-4 || n != numCkpts {
		t.Fatalf("span [%d,%d) (%v)", base, n, err)
	}

	rec, err := cl.Pull("lin")
	if err != nil {
		t.Fatal(err)
	}
	if rec.Base() != base || rec.Len() != numCkpts {
		t.Fatalf("pulled record spans [%d,%d)", rec.Base(), rec.Len())
	}
	for k := base; k < numCkpts; k++ {
		state, err := rec.Restore(k)
		if err != nil {
			t.Fatalf("restore %d: %v", k, err)
		}
		if !bytes.Equal(state, goldens[k]) {
			t.Fatalf("checkpoint %d not byte-identical after remote compaction", k)
		}
	}
	if _, err := rec.Restore(base - 1); err == nil {
		t.Fatal("restore below the baseline succeeded")
	}

	// Explicit-target materialization past the policy's point.
	info, err = cl.CompactTo("lin", numCkpts-2)
	if err != nil || info.NewBase != numCkpts-2 {
		t.Fatalf("compact to: %+v (%v)", info, err)
	}
	if _, err := cl.CompactTo("lin", 1); err == nil {
		t.Fatal("backwards compaction target accepted")
	}

	st, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Compactions < 2 || st.CompactedDiffs < uint64(numCkpts-2) {
		t.Fatalf("stats after compactions: %+v", st)
	}
}

// TestClientCompactionRace races pushers and pullers against an
// aggressive background compaction worker, one lineage per diff
// method. A Pull that spans a concurrent baseline move may fail (the
// span it opened no longer exists) and is retried; every Pull that
// SUCCEEDS must restore bit-exactly. Run under -race this also proves
// the server/lifecycle locking.
func TestClientCompactionRace(t *testing.T) {
	const (
		bufLen   = 16 << 10
		numCkpts = 16
	)
	methods := []Method{MethodBasic, MethodList, MethodTree}
	_, addr, shutdown := startTestServerH(t, server.Config{
		Root:            t.TempDir(),
		Retention:       "keep-last=4",
		CompactInterval: 3 * time.Millisecond,
		MaxConns:        2*len(methods) + 2,
	})
	defer shutdown()

	var wg sync.WaitGroup
	errs := make(chan error, 2*len(methods))
	for mi, method := range methods {
		lineage := fmt.Sprintf("race-%d", method)
		var mu sync.Mutex
		goldens := make([][]byte, 0, numCkpts)
		record := func(img []byte) {
			mu.Lock()
			goldens = append(goldens, append([]byte(nil), img...))
			mu.Unlock()
		}
		pusherDone := make(chan struct{})

		wg.Add(1)
		go func(mi int, method Method) { // pusher
			defer wg.Done()
			defer close(pusherDone)
			errs <- func() error {
				cl, err := Dial(addr, 10*time.Second)
				if err != nil {
					return err
				}
				defer cl.Close()
				ck, err := New(Config{Method: method, ChunkSize: 128}, bufLen)
				if err != nil {
					return err
				}
				defer ck.Close()
				rng := rand.New(rand.NewSource(int64(100 + mi)))
				buf := make([]byte, bufLen)
				rng.Read(buf)
				for k := 0; k < numCkpts; k++ {
					if k > 0 {
						mutate(rng, buf)
					}
					if _, err := ck.Checkpoint(buf); err != nil {
						return err
					}
					record(buf)
					if _, err := cl.PushCheckpointer(lineage, ck); err != nil {
						return fmt.Errorf("push %s/%d: %w", lineage, k, err)
					}
					time.Sleep(2 * time.Millisecond)
				}
				return nil
			}()
		}(mi, method)

		wg.Add(1)
		go func() { // puller
			defer wg.Done()
			errs <- func() error {
				cl, err := Dial(addr, 10*time.Second)
				if err != nil {
					return err
				}
				defer cl.Close()
				verified, attempts := 0, 0
				verify := func() error {
					attempts++
					rec, err := cl.Pull(lineage)
					if err != nil {
						return nil // span raced a compaction or push; retry
					}
					mu.Lock()
					have := len(goldens)
					mu.Unlock()
					if rec.Len() > have {
						return fmt.Errorf("%s: pulled %d checkpoints, only %d pushed", lineage, rec.Len(), have)
					}
					for k := rec.Base(); k < rec.Len(); k++ {
						state, err := rec.Restore(k)
						if err != nil {
							return fmt.Errorf("%s: restore %d: %w", lineage, k, err)
						}
						mu.Lock()
						ok := bytes.Equal(state, goldens[k])
						mu.Unlock()
						if !ok {
							return fmt.Errorf("%s: checkpoint %d torn by concurrent compaction", lineage, k)
						}
						verified++
					}
					return nil
				}
				for {
					select {
					case <-pusherDone:
						// Final settled pull must succeed and verify.
						deadline := time.Now().Add(10 * time.Second)
						for {
							before := verified
							if err := verify(); err != nil {
								return err
							}
							if verified > before {
								return nil
							}
							if time.Now().After(deadline) {
								return fmt.Errorf("%s: no successful pull after %d attempts", lineage, attempts)
							}
							time.Sleep(5 * time.Millisecond)
						}
					default:
						if err := verify(); err != nil {
							return err
						}
					}
				}
			}()
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Error(err)
		}
	}
}
