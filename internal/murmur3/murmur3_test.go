package murmur3

import (
	"bytes"
	"testing"
	"testing/quick"
)

// Reference vectors for MurmurHash3 x64 128 with seed 0, cross-checked
// against Austin Appleby's reference implementation.
var refVectors = []struct {
	in     string
	h1, h2 uint64
}{
	{"", 0x0000000000000000, 0x0000000000000000},
	{"hello", 0xcbd8a7b341bd9b02, 0x5b1e906a48ae1d19},
	{"hello, world", 0x342fac623a5ebc8e, 0x4cdcbc079642414d},
}

func TestReferenceVectors(t *testing.T) {
	for _, v := range refVectors {
		got := Sum128([]byte(v.in), 0)
		if got.H1 != v.h1 || got.H2 != v.h2 {
			t.Errorf("Sum128(%q) = %#x,%#x; want %#x,%#x", v.in, got.H1, got.H2, v.h1, v.h2)
		}
	}
}

func TestSeedChangesDigest(t *testing.T) {
	data := []byte("checkpoint chunk")
	a := Sum128(data, 0)
	b := Sum128(data, 1)
	if a == b {
		t.Fatalf("different seeds produced identical digests: %v", a)
	}
}

func TestAllTailLengths(t *testing.T) {
	// Exercise every tail-switch arm (lengths 0..48 cover 0..15 mod 16
	// with zero, one and more blocks) and check digests are pairwise
	// distinct for distinct prefixes of a fixed pattern.
	base := make([]byte, 48)
	for i := range base {
		base[i] = byte(i*37 + 11)
	}
	seen := make(map[Digest]int)
	for n := 0; n <= len(base); n++ {
		d := Sum128(base[:n], 7)
		if prev, dup := seen[d]; dup {
			t.Fatalf("digest collision between lengths %d and %d", prev, n)
		}
		seen[d] = n
	}
}

func TestDeterminism(t *testing.T) {
	f := func(data []byte, seed uint32) bool {
		return Sum128(data, seed) == Sum128(data, seed)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBytesRoundTrip(t *testing.T) {
	f := func(h1, h2 uint64) bool {
		d := Digest{H1: h1, H2: h2}
		return FromBytes(d.Bytes()) == d
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAvalanche(t *testing.T) {
	// Flipping any single bit of a 64-byte chunk must change the digest.
	data := make([]byte, 64)
	for i := range data {
		data[i] = byte(i)
	}
	orig := Sum128(data, 0)
	for byteIdx := 0; byteIdx < len(data); byteIdx++ {
		for bit := 0; bit < 8; bit++ {
			data[byteIdx] ^= 1 << bit
			if Sum128(data, 0) == orig {
				t.Fatalf("bit flip at byte %d bit %d left digest unchanged", byteIdx, bit)
			}
			data[byteIdx] ^= 1 << bit
		}
	}
}

func TestSumPairMatchesConcat(t *testing.T) {
	f := func(a1, a2, b1, b2 uint64, seed uint32) bool {
		l := Digest{a1, a2}
		r := Digest{b1, b2}
		lb := l.Bytes()
		rb := r.Bytes()
		concat := append(lb[:], rb[:]...)
		return SumPair(l, r, seed) == Sum128(concat, seed)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIsZero(t *testing.T) {
	if !(Digest{}).IsZero() {
		t.Error("zero digest not reported as zero")
	}
	if (Digest{H1: 1}).IsZero() || (Digest{H2: 1}).IsZero() {
		t.Error("non-zero digest reported as zero")
	}
}

func TestZeroFilledChunksDiffer(t *testing.T) {
	// Chunks of different lengths but identical (zero) content must
	// still hash differently: length is folded into the finalizer.
	a := Sum128(make([]byte, 32), 0)
	b := Sum128(make([]byte, 64), 0)
	if a == b {
		t.Fatal("zero chunks of different lengths collided")
	}
}

func BenchmarkSum128(b *testing.B) {
	for _, size := range []int{32, 64, 128, 256, 512, 4096} {
		data := bytes.Repeat([]byte{0xa5}, size)
		b.Run(byteSizeName(size), func(b *testing.B) {
			b.SetBytes(int64(size))
			for i := 0; i < b.N; i++ {
				_ = Sum128(data, 0)
			}
		})
	}
}

func byteSizeName(n int) string {
	switch {
	case n >= 1024:
		return string(rune('0'+n/1024)) + "KiB"
	default:
		digits := [4]byte{}
		i := len(digits)
		for n > 0 {
			i--
			digits[i] = byte('0' + n%10)
			n /= 10
		}
		return string(digits[i:]) + "B"
	}
}
