package murmur3

import "testing"

// TestSum128ZeroAlloc pins the zero-allocation property of the digest
// path for the chunk sizes the dedup pipeline actually hashes (§3.3
// sweeps 32 B–512 B; 4 KiB covers coarse-grained configurations).
// Hashing is the single hottest operation in Algorithm 1, so an escape
// here would dominate every checkpoint.
func TestSum128ZeroAlloc(t *testing.T) {
	for _, size := range []int{32, 64, 128, 256, 512, 1024, 4096} {
		data := make([]byte, size)
		for i := range data {
			data[i] = byte(i * 31)
		}
		var sink Digest
		avg := testing.AllocsPerRun(100, func() {
			sink = Sum128(data, 42)
		})
		if avg != 0 {
			t.Errorf("Sum128(%d bytes): %.2f allocs per run, want 0", size, avg)
		}
		if sink.IsZero() {
			t.Errorf("Sum128(%d bytes): zero digest", size)
		}
	}
}

// TestSumPairZeroAlloc covers the interior-node combine used by the
// bottom-up consolidation sweeps.
func TestSumPairZeroAlloc(t *testing.T) {
	left := Sum128([]byte("left"), 1)
	right := Sum128([]byte("right"), 1)
	var sink Digest
	avg := testing.AllocsPerRun(100, func() {
		sink = SumPair(left, right, 42)
	})
	if avg != 0 {
		t.Errorf("SumPair: %.2f allocs per run, want 0", avg)
	}
	if sink.IsZero() {
		t.Error("SumPair: zero digest")
	}
}

// TestDigestBytesZeroAlloc covers the fixed-size conversion helpers.
func TestDigestBytesZeroAlloc(t *testing.T) {
	d := Sum128([]byte("digest"), 7)
	var sink Digest
	avg := testing.AllocsPerRun(100, func() {
		sink = FromBytes(d.Bytes())
	})
	if avg != 0 {
		t.Errorf("Bytes/FromBytes: %.2f allocs per run, want 0", avg)
	}
	if sink != d {
		t.Error("Bytes/FromBytes round trip mismatch")
	}
}
