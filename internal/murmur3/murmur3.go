// Package murmur3 implements the 128-bit x64 variant of MurmurHash3,
// the non-cryptographic hash function used by the paper to fingerprint
// checkpoint chunks (Tan et al., ICPP 2023, §2.4).
//
// The implementation follows Austin Appleby's reference
// (MurmurHash3_x64_128) and is allocation-free: Sum128 returns the
// digest as a value type so hot loops hashing millions of chunks do
// not touch the garbage collector.
package murmur3

import (
	"encoding/binary"
	"math/bits"
)

// Digest is a 128-bit hash value. The two halves correspond to the h1
// and h2 state words of the reference implementation.
type Digest struct {
	H1 uint64
	H2 uint64
}

// IsZero reports whether d is the all-zero digest. The all-zero digest
// is reserved by callers (e.g. the Merkle tree) as "no hash recorded";
// Sum128 never returns it for non-degenerate input except for the
// empty string with seed 0, which callers never hash.
func (d Digest) IsZero() bool { return d.H1 == 0 && d.H2 == 0 }

// Bytes returns the canonical little-endian 16-byte serialization of d.
func (d Digest) Bytes() [16]byte {
	var b [16]byte
	binary.LittleEndian.PutUint64(b[0:8], d.H1)
	binary.LittleEndian.PutUint64(b[8:16], d.H2)
	return b
}

// FromBytes reconstructs a Digest from its Bytes serialization.
func FromBytes(b [16]byte) Digest {
	return Digest{
		H1: binary.LittleEndian.Uint64(b[0:8]),
		H2: binary.LittleEndian.Uint64(b[8:16]),
	}
}

const (
	c1 = 0x87c37b91114253d5
	c2 = 0x4cf5ad432745937f
)

//ckptlint:noalloc
func fmix64(k uint64) uint64 {
	k ^= k >> 33
	k *= 0xff51afd7ed558ccd
	k ^= k >> 33
	k *= 0xc4ceb9fe1a85ec53
	k ^= k >> 33
	return k
}

// Sum128 computes the MurmurHash3 x64 128-bit hash of data with the
// given seed.
//
//ckptlint:noalloc
func Sum128(data []byte, seed uint32) Digest {
	h1 := uint64(seed)
	h2 := uint64(seed)

	n := len(data)
	nblocks := n / 16
	for i := 0; i < nblocks; i++ {
		k1 := binary.LittleEndian.Uint64(data[i*16:])
		k2 := binary.LittleEndian.Uint64(data[i*16+8:])

		k1 *= c1
		k1 = bits.RotateLeft64(k1, 31)
		k1 *= c2
		h1 ^= k1

		h1 = bits.RotateLeft64(h1, 27)
		h1 += h2
		h1 = h1*5 + 0x52dce729

		k2 *= c2
		k2 = bits.RotateLeft64(k2, 33)
		k2 *= c1
		h2 ^= k2

		h2 = bits.RotateLeft64(h2, 31)
		h2 += h1
		h2 = h2*5 + 0x38495ab5
	}

	tail := data[nblocks*16:]
	var k1, k2 uint64
	switch len(tail) & 15 {
	case 15:
		k2 ^= uint64(tail[14]) << 48
		fallthrough
	case 14:
		k2 ^= uint64(tail[13]) << 40
		fallthrough
	case 13:
		k2 ^= uint64(tail[12]) << 32
		fallthrough
	case 12:
		k2 ^= uint64(tail[11]) << 24
		fallthrough
	case 11:
		k2 ^= uint64(tail[10]) << 16
		fallthrough
	case 10:
		k2 ^= uint64(tail[9]) << 8
		fallthrough
	case 9:
		k2 ^= uint64(tail[8])
		k2 *= c2
		k2 = bits.RotateLeft64(k2, 33)
		k2 *= c1
		h2 ^= k2
		fallthrough
	case 8:
		k1 ^= uint64(tail[7]) << 56
		fallthrough
	case 7:
		k1 ^= uint64(tail[6]) << 48
		fallthrough
	case 6:
		k1 ^= uint64(tail[5]) << 40
		fallthrough
	case 5:
		k1 ^= uint64(tail[4]) << 32
		fallthrough
	case 4:
		k1 ^= uint64(tail[3]) << 24
		fallthrough
	case 3:
		k1 ^= uint64(tail[2]) << 16
		fallthrough
	case 2:
		k1 ^= uint64(tail[1]) << 8
		fallthrough
	case 1:
		k1 ^= uint64(tail[0])
		k1 *= c1
		k1 = bits.RotateLeft64(k1, 31)
		k1 *= c2
		h1 ^= k1
	}

	h1 ^= uint64(n)
	h2 ^= uint64(n)

	h1 += h2
	h2 += h1

	h1 = fmix64(h1)
	h2 = fmix64(h2)

	h1 += h2
	h2 += h1

	return Digest{H1: h1, H2: h2}
}

// SumPair hashes the concatenation of two digests. It is the node
// combiner of the Merkle tree: Tree(node) = SumPair(left, right).
// It avoids allocating an intermediate 32-byte buffer on the heap.
//
//ckptlint:noalloc
func SumPair(left, right Digest, seed uint32) Digest {
	var buf [32]byte
	binary.LittleEndian.PutUint64(buf[0:8], left.H1)
	binary.LittleEndian.PutUint64(buf[8:16], left.H2)
	binary.LittleEndian.PutUint64(buf[16:24], right.H1)
	binary.LittleEndian.PutUint64(buf[24:32], right.H2)
	return Sum128(buf[:], seed)
}
