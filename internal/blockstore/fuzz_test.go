package blockstore

import (
	"bytes"
	"fmt"
	"testing"
)

// fuzzIndexSeeds builds a few valid snapshots of varying size for the
// seed corpus.
func fuzzIndexSeeds(f *testing.F) [][]byte {
	f.Helper()
	var seeds [][]byte
	for _, n := range []int{0, 1, 3, 17} {
		entries := map[ID]entry{}
		var ids []ID
		for i := 0; i < n; i++ {
			id := IDOf([]byte(fmt.Sprintf("seed-%d-%d", n, i)))
			entries[id] = entry{len: uint32(4096), crc: uint32(i * 31), refs: uint32(i)}
			ids = append(ids, id)
		}
		sortIDs(ids)
		b, err := encodeIndex(uint64(n), ids, entries)
		if err != nil {
			f.Fatal(err)
		}
		seeds = append(seeds, b)
	}
	return seeds
}

// FuzzBlockIndexDecode feeds arbitrary bytes to the index-snapshot
// decoder. An input that decodes must re-encode to the identical byte
// stream (the encoding is canonical: ascending-ID order, whole-file
// CRC), and the decoder must never panic or allocate unboundedly on
// garbage — the snapshot is the commit record of GC, so a corrupted
// one must fail typed, not half-load.
func FuzzBlockIndexDecode(f *testing.F) {
	for _, s := range fuzzIndexSeeds(f) {
		f.Add(s)
	}
	// Invalid-by-construction seeds steer the fuzzer at the validation
	// paths: wrong magic, absurd count, truncated footer.
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0x47, 0x42, 0x49, 0x58, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		gen, entries, err := DecodeIndex(data)
		if err != nil {
			return
		}
		ids := make([]ID, 0, len(entries))
		for id := range entries {
			ids = append(ids, id)
		}
		sortIDs(ids)
		b, err := encodeIndex(gen, ids, entries)
		if err != nil {
			t.Fatalf("re-encode of decoded index failed: %v", err)
		}
		if !bytes.Equal(b, data) {
			t.Fatalf("decoded index is not canonical: %d vs %d bytes", len(b), len(data))
		}
	})
}

// FuzzBlockJournalDecode feeds arbitrary bytes to the ref-journal
// decoder. Decoded records must re-encode to a journal that decodes to
// the same records with the same generation; inputs the decoder
// rejects must do so without panicking.
func FuzzBlockJournalDecode(f *testing.F) {
	hdr := encodeJournalHeader(3)
	f.Add(append([]byte(nil), hdr...))
	full := append([]byte(nil), hdr...)
	full = appendJournalRec(full, journalRec{op: opRef, id: IDOf([]byte("a")), len: 64, crc: 7})
	full = appendJournalRec(full, journalRec{op: opRelease, id: IDOf([]byte("a"))})
	f.Add(full)
	f.Add(full[:len(full)-3]) // torn tail
	f.Fuzz(func(t *testing.T, data []byte) {
		gen, recs, err := DecodeJournal(data)
		if err != nil {
			return
		}
		b := encodeJournalHeader(gen)
		for _, r := range recs {
			b = appendJournalRec(b, r)
		}
		gen2, recs2, err := DecodeJournal(b)
		if err != nil {
			t.Fatalf("decode of re-encoded journal failed: %v", err)
		}
		if gen2 != gen || len(recs2) != len(recs) {
			t.Fatalf("round trip diverged: gen %d/%d, %d/%d records", gen, gen2, len(recs), len(recs2))
		}
		for i := range recs {
			if recs[i] != recs2[i] {
				t.Fatalf("record %d diverged: %+v vs %+v", i, recs[i], recs2[i])
			}
		}
	})
}
