// Package blockstore is a shared, content-addressed immutable block
// store with refcounted, crash-safe garbage collection — the storage
// plane that lets de-duplication cross lineage and tenant boundaries.
//
// A block is addressed by the 128-bit Murmur3 digest of its payload
// (the same hash family the paper's GPU kernels use to fingerprint
// chunks, §2.4), so identical chunks produced by ANY lineage resolve
// to the same on-disk file and are stored exactly once. Every block
// file carries a CRC32C footer and every read re-derives the digest,
// so bit rot surfaces as a typed ErrCorrupt, never as silently wrong
// restore bytes.
//
// # Planes
//
// Following the split index/data streams of klauspost/dedup and the
// hash-addressed block layout of blox, the store keeps three planes
// under one directory:
//
//   - data plane: data/xx/<hex>.blk — immutable payload files, fanned
//     out by the first ID byte, written once via temp+fsync+rename.
//   - index plane: blockstore.index — an atomic snapshot of every live
//     block's {length, CRC, refcount}, the commit record of GC.
//   - journal plane: blockstore.journal — an append-only, fsynced log
//     of refcount deltas since the last snapshot, replayed on open.
//
// # Crash safety
//
// Intern orders its writes so that a crash at any instant leaves the
// store consistent: the payload file is made durable first, then the
// journal records are appended and fsynced, and only then does the
// caller commit whatever references the block (a diff file rename).
// An orphaned payload with no journal record is therefore
// unreferenced by construction and is swept on the next open.
//
// GC is a transaction in the PR 4 idiom: fold journal into a new
// snapshot (refcounted entries only), commit it by atomic rename,
// reset the journal to the new generation, then delete zero-ref
// payload files. A crash before the rename loses nothing; a crash
// after it is completed on the next open (stale-generation journals
// are discarded — their effects are inside the snapshot — and
// unreferenced payload files are swept).
//
// Refcounts err on the side of leaking, never of freeing live data: a
// release is journaled only after the referencing file is durably
// gone, so a crash in between leaves an over-count (reclaimed by a
// later release-less GC never — documented leak) rather than an
// under-count that would let GC delete a block a restore still needs.
package blockstore

import (
	"bytes"
	"encoding/hex"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"syscall"

	"github.com/gpuckpt/gpuckpt/internal/metrics"
	"github.com/gpuckpt/gpuckpt/internal/murmur3"
)

const (
	// idSize is the byte length of a block ID: a full Murmur3 x64
	// 128-bit digest.
	idSize = 16

	// idSeed is the fixed Murmur3 seed of block addressing. Content
	// addressing only de-duplicates across independent producers if
	// every producer derives the same ID from the same bytes, so this
	// seed is a format constant, never a configuration knob.
	idSeed uint32 = 0x9747b28c

	// blockFooterSize is the per-block integrity footer: 4-byte magic
	// plus the CRC32C of the payload.
	blockFooterSize = 8
	blockMagic      = 0x4b_4c_42_47 // "GBLK"

	// DirName is the conventional name of a shared block store
	// directory placed next to the lineage directories it serves
	// (e.g. a ckptd root holds <root>/_blocks beside <root>/<lineage>).
	// The leading underscore keeps it out of the server's lineage
	// namespace.
	DirName = "_blocks"

	indexFileName   = "blockstore.index"
	journalFileName = "blockstore.journal"
	lockFileName    = "blockstore.lock"
	dataDirName     = "data"
	tmpSuffix       = ".tmp"
)

// IDSize is the byte length of an ID, for formats that embed block
// references.
const IDSize = idSize

// ID is the content address of a block: the canonical serialization of
// the Murmur3 128-bit digest of its payload.
type ID [idSize]byte

// IDOf derives the content address of a payload.
func IDOf(p []byte) ID {
	return ID(murmur3.Sum128(p, idSeed).Bytes())
}

// String renders the ID as lowercase hex.
func (id ID) String() string { return hex.EncodeToString(id[:]) }

// Ref is a durable reference to one stored block: the address plus the
// payload length, which lets a reader pre-validate reassembly sizes
// without touching the data plane.
type Ref struct {
	ID  ID
	Len uint32
}

// Errors.
var (
	// ErrCorrupt matches every integrity failure surfaced by the
	// store: block checksum or digest mismatches, rotten index or
	// journal bytes. Callers branch on it with errors.Is.
	ErrCorrupt = errors.New("blockstore: corrupt")
	// ErrNotFound reports a Get/AddRef of a block the store does not
	// hold.
	ErrNotFound = errors.New("blockstore: block not found")
	// ErrCollision reports an intern whose payload hashes to an
	// existing ID but disagrees with the stored length or CRC — the
	// astronomically unlikely 128-bit collision, refused rather than
	// silently aliased.
	ErrCollision = errors.New("blockstore: block ID collision")
	// ErrClosed reports use after Close.
	ErrClosed = errors.New("blockstore: store is closed")
	// ErrUnderflow reports a Release of a reference the store does not
	// hold. The count clamps at zero instead of wrapping; callers doing
	// best-effort cleanup (pruning files that may predate the store)
	// treat it as a soft failure.
	ErrUnderflow = errors.New("blockstore: refcount underflow")
	// ErrReadOnly reports a mutating operation on a store opened with
	// Options.ReadOnly.
	ErrReadOnly = errors.New("blockstore: store is read-only")
	// ErrBusy reports a writable Open of a directory whose lock another
	// live Store holds (typically a running ckptd server). Retry later,
	// or open with Options.ReadOnly to inspect alongside the owner.
	ErrBusy = errors.New("blockstore: store directory is locked by another owner")
)

// Hooks intercepts the GC transaction at its crash points; tests use
// them to kill the process (by returning an error that aborts the
// transaction with state exactly as a dying process would leave it).
// Production stores leave it nil.
type Hooks struct {
	// BeforeGCCommit runs after zero-ref blocks are identified, before
	// the new index snapshot is renamed into place.
	BeforeGCCommit func() error
	// AfterGCCommit runs after the snapshot rename, before the journal
	// reset and the deletion of zero-ref payload files.
	AfterGCCommit func() error
}

// Options parameterizes Open.
type Options struct {
	// ChunkSize is the granularity producers split payloads at before
	// interning (default 4096). It is a property of the store, not of
	// each producer: cross-lineage de-duplication requires every
	// producer to chunk identically.
	ChunkSize int

	// ReadOnly opens the store without running mutating recovery (no
	// temp sweep, no journal rewrite, no orphan sweep), without taking
	// the directory lock, and without an append handle: Intern,
	// Release, and GC return ErrReadOnly. This is the safe way for
	// tooling to inspect a store whose writable lock a live ckptd
	// server holds — the reader sees the state as of its open (the
	// owner's later interns are invisible) but can never delete a
	// payload file the owner is about to commit a reference to.
	ReadOnly bool
}

// Stats is a snapshot of the store counters.
type Stats struct {
	// Blocks and StoredBytes describe the live data plane.
	Blocks      int
	StoredBytes int64
	// Interned counts unique blocks written since open; DedupHits
	// counts interns resolved to an already-present block; SavedBytes
	// sums the payload bytes those hits avoided writing.
	Interned  uint64
	DedupHits uint64
	// SavedBytes is the cross-producer de-duplication win: bytes that
	// were referenced but never stored twice.
	SavedBytes uint64
	// GCBlocks / GCBytes count blocks and payload bytes reclaimed by
	// committed GC transactions since open.
	GCBlocks uint64
	GCBytes  uint64
}

// Store is a content-addressed block store rooted at one directory.
// It is safe for concurrent use by multiple goroutines (and is
// typically shared by every FileStore of a server). Writable opens are
// serialized by an advisory directory lock — a second writable Open
// while an owner lives fails with ErrBusy instead of running mutating
// recovery (orphan sweep, journal rewrite) under the owner's feet.
// Read-only opens coexist with a live owner; see Options.ReadOnly.
type Store struct {
	dir   string
	chunk int

	// entries, gen, journal, closed, hooks, jbuf and lock are protected
	// by mu. Helpers that run with mu already held carry a
	// //ckptlint:locked mu precondition, which the guardedby analyzer
	// verifies at every call site.
	mu sync.Mutex
	//ckptlint:guardedby mu
	entries map[ID]entry
	//ckptlint:guardedby mu
	gen uint64
	//ckptlint:guardedby mu
	journal *os.File
	//ckptlint:guardedby mu
	closed bool
	//ckptlint:guardedby mu
	hooks *Hooks
	// jbuf is the reusable journal-batch staging buffer.
	//ckptlint:guardedby mu
	jbuf []byte

	// ro marks a store opened with Options.ReadOnly; mutations return
	// ErrReadOnly. Set once in Open, immutable afterwards.
	ro bool
	// lock is the held writable-owner lock file handle (nil in
	// read-only mode or where the platform offers no flock).
	//ckptlint:guardedby mu
	lock *os.File

	interned  metrics.Counter //ckptlint:atomic
	dedupHits metrics.Counter //ckptlint:atomic
	savedB    metrics.Counter //ckptlint:atomic
	gcBlocks  metrics.Counter //ckptlint:atomic
	gcBytes   metrics.Counter //ckptlint:atomic
}

// New creates (or reopens) a block store directory. It is Open with
// default options; both spellings carry the same Close contract.
func New(dir string) (*Store, error) { return Open(dir, Options{}) }

// Open creates or reopens a block store. A writable open first takes
// the directory's advisory owner lock (ErrBusy if another live Store
// holds it), then runs recovery before the store is usable: stale temp
// files are swept, a stale-generation journal (the tail of a GC that
// committed its snapshot but crashed before resetting the journal) is
// discarded, the journal is replayed onto the snapshot and rewritten
// canonically if the on-disk file carried a torn tail, and
// unreferenced payload files are deleted — completing both interrupted
// GC deletions and torn interns.
//
// With Options.ReadOnly the directory must already exist, no lock is
// taken, and recovery is in-memory only: nothing on disk is touched.
//
// The returned Store must be Closed when no longer needed.
func Open(dir string, opts Options) (*Store, error) {
	if opts.ChunkSize <= 0 {
		opts.ChunkSize = 4096
	}
	s := &Store{dir: dir, chunk: opts.ChunkSize, ro: opts.ReadOnly}
	// Nothing shares the store yet, but recovery runs through the same
	// locked helpers the steady state uses; holding mu for the rest of
	// Open keeps their precondition true and is uncontended.
	s.mu.Lock()
	defer s.mu.Unlock()
	if opts.ReadOnly {
		if fi, err := os.Stat(dir); err != nil {
			return nil, fmt.Errorf("blockstore: opening %s read-only: %w", dir, err)
		} else if !fi.IsDir() {
			return nil, fmt.Errorf("blockstore: %s is not a directory", dir)
		}
		if err := s.recover(); err != nil {
			return nil, err
		}
		return s, nil
	}
	if err := os.MkdirAll(filepath.Join(dir, dataDirName), 0o755); err != nil {
		return nil, fmt.Errorf("blockstore: creating %s: %w", dir, err)
	}
	lock, err := acquireDirLock(filepath.Join(dir, lockFileName))
	if err != nil {
		return nil, err
	}
	s.lock = lock
	fail := func(err error) (*Store, error) {
		releaseDirLock(lock)
		return nil, err
	}
	if err := s.sweepTemp(); err != nil {
		return fail(err)
	}
	if err := s.recover(); err != nil {
		return fail(err)
	}
	j, err := os.OpenFile(s.journalPath(), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fail(fmt.Errorf("blockstore: opening journal: %w", err))
	}
	s.journal = j
	return s, nil
}

// Close releases the journal handle and the owner lock. Idempotent; a
// closed store rejects every other operation.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	var jerr error
	if s.journal != nil {
		jerr = s.journal.Close()
		s.journal = nil
	}
	releaseDirLock(s.lock)
	s.lock = nil
	if jerr != nil {
		return fmt.Errorf("blockstore: closing journal: %w", jerr)
	}
	return nil
}

// failLocked transitions the store to closed after an unrecoverable
// post-commit failure, so no further mutation can reach a journal
// whose on-disk generation no longer matches the committed index.
//
//ckptlint:locked mu
func (s *Store) failLocked(err error) error {
	s.closed = true
	if s.journal != nil {
		s.journal.Close()
		s.journal = nil
	}
	releaseDirLock(s.lock)
	s.lock = nil
	return fmt.Errorf("%w (store disabled; reopen to recover)", err)
}

// SetHooks installs GC crash hooks. Test-only seam.
func (s *Store) SetHooks(h *Hooks) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.hooks = h
}

// Dir returns the store directory.
func (s *Store) Dir() string { return s.dir }

// ChunkSize returns the store's intern granularity.
func (s *Store) ChunkSize() int { return s.chunk }

// ReadOnly reports whether the store was opened with Options.ReadOnly.
func (s *Store) ReadOnly() bool { return s.ro }

// LockingSupported reports whether this platform enforces the writable
// owner lock (flock). Where false, writable opens never return ErrBusy
// and single-owner discipline falls to the operator.
func LockingSupported() bool { return lockingSupported }

func (s *Store) indexPath() string   { return filepath.Join(s.dir, indexFileName) }
func (s *Store) journalPath() string { return filepath.Join(s.dir, journalFileName) }

// BlockPath returns the payload file of id. Exposed for forensics and
// fault-injection tests; production readers go through Get.
func (s *Store) BlockPath(id ID) string {
	h := id.String()
	return filepath.Join(s.dir, dataDirName, h[:2], h+".blk")
}

// sweepTemp removes temp debris left by a crash between CreateTemp
// and rename, in both the store root and the data fan-out.
func (s *Store) sweepTemp() error {
	var sweep func(dir string) error
	sweep = func(dir string) error {
		entries, err := os.ReadDir(dir)
		if err != nil {
			if os.IsNotExist(err) {
				return nil
			}
			return fmt.Errorf("blockstore: sweeping %s: %w", dir, err)
		}
		for _, e := range entries {
			if e.IsDir() {
				if err := sweep(filepath.Join(dir, e.Name())); err != nil {
					return err
				}
				continue
			}
			if strings.HasSuffix(e.Name(), tmpSuffix) {
				if err := os.Remove(filepath.Join(dir, e.Name())); err != nil && !os.IsNotExist(err) {
					return fmt.Errorf("blockstore: removing stale temp %s: %w", e.Name(), err)
				}
			}
		}
		return nil
	}
	return sweep(s.dir)
}

// recover loads the snapshot, replays (or discards) the journal,
// rewrites the journal canonically when the on-disk bytes are not, and
// sweeps unreferenced payload files. In read-only mode recovery is
// in-memory only: torn tails and stale journals are dropped from the
// replayed state but every file is left exactly as found.
//
//ckptlint:locked mu
func (s *Store) recover() error {
	s.entries = make(map[ID]entry)
	s.gen = 0
	if b, err := os.ReadFile(s.indexPath()); err == nil {
		gen, entries, derr := DecodeIndex(b)
		if derr != nil {
			return fmt.Errorf("blockstore: index %s: %w", s.indexPath(), derr)
		}
		s.gen, s.entries = gen, entries
	} else if !os.IsNotExist(err) {
		return fmt.Errorf("blockstore: reading index: %w", err)
	}

	// keep holds the journal records that survive recovery; canonical
	// reports whether the on-disk journal already IS exactly those
	// records (right generation, no torn tail, no extra bytes).
	var keep []journalRec
	canonical := false
	if b, err := os.ReadFile(s.journalPath()); err == nil {
		gen, recs, derr := DecodeJournal(b)
		switch {
		case derr != nil:
			return fmt.Errorf("blockstore: journal %s: %w", s.journalPath(), derr)
		case gen != s.gen:
			// A GC committed its snapshot (folding this journal in) but
			// crashed before resetting the journal: discard it.
		default:
			for _, r := range recs {
				s.applyRec(r)
			}
			keep = recs
			canonical = len(b) == journalHdrSize+len(recs)*journalRecSize
		}
	} else if !os.IsNotExist(err) {
		return fmt.Errorf("blockstore: reading journal: %w", err)
	}
	if s.ro {
		return nil
	}
	if !canonical {
		// The on-disk journal is stale, missing, or ends in a torn
		// tail. It MUST be rewritten before the append handle opens:
		// records appended after torn garbage sit misaligned, and the
		// next open's decode would classify every one of them as more
		// torn tail — silently dropping durably committed references
		// and then sweeping their payload files.
		if err := s.rewriteJournal(keep); err != nil {
			return err
		}
	}
	return s.sweepOrphans()
}

// applyRec folds one journal record into the in-memory state.
// Refcount underflow (a Release journaled twice around a crash is
// impossible by ordering, but rot is not) clamps at zero rather than
// wrapping.
//
//ckptlint:locked mu
func (s *Store) applyRec(r journalRec) {
	e := s.entries[r.id]
	switch r.op {
	case opRef:
		if e.refs == 0 && e.len == 0 && e.crc == 0 {
			e = entry{len: r.len, crc: r.crc}
		}
		e.refs++
	case opRelease:
		if e.refs > 0 {
			e.refs--
		}
	}
	s.entries[r.id] = e
}

// resetJournal atomically replaces the journal with an empty one at
// the current generation.
//
//ckptlint:locked mu
func (s *Store) resetJournal() error { return s.rewriteJournal(nil) }

// rewriteJournal atomically replaces the journal with a canonical file
// at the current generation holding exactly recs. Recovery calls it
// whenever the on-disk journal is not already canonical, so the append
// handle never writes live records after garbage bytes.
//
//ckptlint:locked mu
func (s *Store) rewriteJournal(recs []journalRec) error {
	buf := encodeJournalHeader(s.gen)
	for _, r := range recs {
		buf = appendJournalRec(buf, r)
	}
	tmp, err := os.CreateTemp(s.dir, journalFileName+"-*"+tmpSuffix)
	if err != nil {
		return fmt.Errorf("blockstore: journal temp: %w", err)
	}
	tmpName := tmp.Name()
	fail := func(err error) error {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if _, err := tmp.Write(buf); err != nil {
		return fail(fmt.Errorf("blockstore: writing journal: %w", err))
	}
	if err := tmp.Sync(); err != nil {
		return fail(fmt.Errorf("blockstore: syncing journal: %w", err))
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("blockstore: closing journal temp: %w", err)
	}
	if err := os.Rename(tmpName, s.journalPath()); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("blockstore: publishing journal: %w", err)
	}
	return syncDir(s.dir)
}

// sweepOrphans deletes payload files with no entry: the tail of a
// committed GC that crashed mid-delete, or a torn intern whose journal
// record never made it to disk (and whose referencing diff therefore
// never committed either).
//
//ckptlint:locked mu
func (s *Store) sweepOrphans() error {
	root := filepath.Join(s.dir, dataDirName)
	fans, err := os.ReadDir(root)
	if err != nil {
		return fmt.Errorf("blockstore: reading data plane: %w", err)
	}
	for _, fan := range fans {
		if !fan.IsDir() {
			continue
		}
		files, err := os.ReadDir(filepath.Join(root, fan.Name()))
		if err != nil {
			return fmt.Errorf("blockstore: reading data fan %s: %w", fan.Name(), err)
		}
		for _, f := range files {
			id, ok := parseBlockName(f.Name())
			if !ok {
				continue
			}
			if _, live := s.entries[id]; live {
				continue
			}
			if err := os.Remove(filepath.Join(root, fan.Name(), f.Name())); err != nil && !os.IsNotExist(err) {
				return fmt.Errorf("blockstore: sweeping orphan block %s: %w", id, err)
			}
		}
	}
	return nil
}

// parseBlockName extracts the block ID from a data-plane file name.
func parseBlockName(name string) (ID, bool) {
	var id ID
	if !strings.HasSuffix(name, ".blk") {
		return id, false
	}
	raw, err := hex.DecodeString(strings.TrimSuffix(name, ".blk"))
	if err != nil || len(raw) != idSize {
		return id, false
	}
	copy(id[:], raw)
	return id, true
}

// Split cuts a payload into the store's chunk-sized slices (the last
// one short). The slices alias p; Intern copies what it stores.
func (s *Store) Split(p []byte) [][]byte {
	if len(p) == 0 {
		return nil
	}
	out := make([][]byte, 0, (len(p)+s.chunk-1)/s.chunk)
	for len(p) > s.chunk {
		out = append(out, p[:s.chunk])
		p = p[s.chunk:]
	}
	return append(out, p)
}

// Intern stores every chunk that is not already present and takes one
// reference on each (a chunk appearing twice in the batch takes two).
// The batch is durable when Intern returns: payload files are fsynced
// before their journal records, and the journal append is one fsynced
// write — so a crash either keeps the whole reference batch or, if it
// hits earlier, leaves only orphaned payload files the next open
// sweeps. On error the journaled partial state keeps the leak-only
// invariant (references may over-count, never under-count).
func (s *Store) Intern(chunks [][]byte) ([]Ref, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	if s.ro {
		return nil, ErrReadOnly
	}
	refs := make([]Ref, 0, len(chunks))
	s.jbuf = s.jbuf[:0]
	for _, p := range chunks {
		id := IDOf(p)
		crc := crc32.Checksum(p, castagnoli)
		if e, ok := s.entries[id]; ok {
			if e.len != uint32(len(p)) || e.crc != crc {
				return nil, fmt.Errorf("%w: id %s holds %d bytes crc %08x, interning %d bytes crc %08x",
					ErrCollision, id, e.len, e.crc, len(p), crc)
			}
			s.dedupHits.Add(1)
			s.savedB.Add(uint64(len(p)))
		} else {
			if err := s.writeBlock(id, p, crc); err != nil {
				return nil, err
			}
			s.entries[id] = entry{len: uint32(len(p)), crc: crc}
			s.interned.Add(1)
		}
		s.jbuf = appendJournalRec(s.jbuf, journalRec{op: opRef, id: id, len: uint32(len(p)), crc: crc})
		e := s.entries[id]
		e.refs++
		s.entries[id] = e
		refs = append(refs, Ref{ID: id, Len: uint32(len(p))})
	}
	if err := s.appendJournalLocked(); err != nil {
		return nil, err
	}
	return refs, nil
}

// Release drops one reference per ref. Call it only after the
// referencing file is durably gone: the journal append makes the
// decrement permanent, and a block whose count reaches zero is
// reclaimed by the next GC. Unknown IDs and zero counts are clamped
// (and reported), never wrapped.
func (s *Store) Release(refs []Ref) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if s.ro {
		return ErrReadOnly
	}
	s.jbuf = s.jbuf[:0]
	var clampErr error
	for _, r := range refs {
		e, ok := s.entries[r.ID]
		if !ok || e.refs == 0 {
			clampErr = fmt.Errorf("%w: release of %s", ErrUnderflow, r.ID)
			continue
		}
		e.refs--
		s.entries[r.ID] = e
		s.jbuf = appendJournalRec(s.jbuf, journalRec{op: opRelease, id: r.ID})
	}
	if err := s.appendJournalLocked(); err != nil {
		return err
	}
	return clampErr
}

// appendJournalLocked flushes s.jbuf to the journal with one fsync.
//
//ckptlint:locked mu
func (s *Store) appendJournalLocked() error {
	if len(s.jbuf) == 0 {
		return nil
	}
	if _, err := s.journal.Write(s.jbuf); err != nil {
		return fmt.Errorf("blockstore: appending journal: %w", err)
	}
	if err := s.journal.Sync(); err != nil {
		return fmt.Errorf("blockstore: syncing journal: %w", err)
	}
	return nil
}

// writeBlock persists one payload file: temp, payload+footer, fsync,
// rename, directory fsync.
func (s *Store) writeBlock(id ID, p []byte, crc uint32) error {
	path := s.BlockPath(id)
	fan := filepath.Dir(path)
	if err := os.MkdirAll(fan, 0o755); err != nil {
		return fmt.Errorf("blockstore: creating fan dir: %w", err)
	}
	tmp, err := os.CreateTemp(fan, "blk-*"+tmpSuffix)
	if err != nil {
		return fmt.Errorf("blockstore: block temp: %w", err)
	}
	tmpName := tmp.Name()
	fail := func(err error) error {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	var footer [blockFooterSize]byte
	putU32(footer[0:], blockMagic)
	putU32(footer[4:], crc)
	if _, err := tmp.Write(p); err != nil {
		return fail(fmt.Errorf("blockstore: writing block %s: %w", id, err))
	}
	if _, err := tmp.Write(footer[:]); err != nil {
		return fail(fmt.Errorf("blockstore: writing block %s footer: %w", id, err))
	}
	if err := tmp.Sync(); err != nil {
		return fail(fmt.Errorf("blockstore: syncing block %s: %w", id, err))
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("blockstore: closing block temp: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("blockstore: publishing block %s: %w", id, err)
	}
	return syncDir(fan)
}

// Get reads and verifies one block: footer CRC, payload length AND a
// full digest recomputation must all agree with the reference before
// any byte is returned. Every failure is typed (ErrCorrupt or
// ErrNotFound) so a caller can quarantine or repair instead of
// restoring garbage.
func (s *Store) Get(ref Ref) ([]byte, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	e, ok := s.entries[ref.ID]
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, ref.ID)
	}
	raw, err := os.ReadFile(s.BlockPath(ref.ID))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, fmt.Errorf("%w: %s (payload file missing)", ErrCorrupt, ref.ID)
		}
		return nil, fmt.Errorf("blockstore: reading block %s: %w", ref.ID, err)
	}
	if len(raw) < blockFooterSize {
		return nil, fmt.Errorf("%w: block %s truncated at %d bytes", ErrCorrupt, ref.ID, len(raw))
	}
	p := raw[:len(raw)-blockFooterSize]
	if getU32(raw[len(raw)-blockFooterSize:]) != blockMagic {
		return nil, fmt.Errorf("%w: block %s footer magic missing", ErrCorrupt, ref.ID)
	}
	want := getU32(raw[len(raw)-4:])
	if uint32(len(p)) != e.len || (ref.Len != 0 && ref.Len != e.len) {
		return nil, fmt.Errorf("%w: block %s holds %d bytes, reference says %d (index %d)",
			ErrCorrupt, ref.ID, len(p), ref.Len, e.len)
	}
	if got := crc32.Checksum(p, castagnoli); got != want || got != e.crc {
		return nil, fmt.Errorf("%w: block %s CRC %08x, footer %08x, index %08x",
			ErrCorrupt, ref.ID, got, want, e.crc)
	}
	if IDOf(p) != ref.ID {
		return nil, fmt.Errorf("%w: block %s bytes hash to a different ID", ErrCorrupt, ref.ID)
	}
	return p, nil
}

// Contains reports whether the store holds a block for id.
func (s *Store) Contains(id ID) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.entries[id]
	return ok
}

// Refcount returns the current reference count of id (0 if unknown).
func (s *Store) Refcount(id ID) uint32 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.entries[id].refs
}

// GCStats reports one committed GC transaction.
type GCStats struct {
	// Live is how many referenced blocks the new snapshot retains.
	Live int
	// Reclaimed counts deleted zero-ref blocks; ReclaimedBytes their
	// payload bytes.
	Reclaimed      int
	ReclaimedBytes int64
}

// GC folds the journal into a fresh index snapshot holding only
// referenced blocks, commits it by atomic rename, resets the journal
// to the new generation, and deletes the payload files of every
// zero-ref block. Crash-safe at every point: before the rename the old
// snapshot+journal still hold the full state; after it, recovery on
// the next open discards the stale journal and finishes the deletions.
func (s *Store) GC() (GCStats, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return GCStats{}, ErrClosed
	}
	if s.ro {
		return GCStats{}, ErrReadOnly
	}
	var st GCStats
	live := make([]ID, 0, len(s.entries))
	var dead []ID
	for id, e := range s.entries {
		if e.refs > 0 {
			live = append(live, id)
		} else {
			dead = append(dead, id)
		}
	}
	sortIDs(live)
	st.Live = len(live)

	if s.hooks != nil && s.hooks.BeforeGCCommit != nil {
		if err := s.hooks.BeforeGCCommit(); err != nil {
			return st, err
		}
	}

	// Commit point: the snapshot rename.
	snap, err := encodeIndex(s.gen+1, live, s.entries)
	if err != nil {
		return st, err
	}
	if err := writeFileAtomic(s.dir, s.indexPath(), snap); err != nil {
		return st, err
	}
	s.gen++

	if s.hooks != nil && s.hooks.AfterGCCommit != nil {
		if err := s.hooks.AfterGCCommit(); err != nil {
			return st, err
		}
	}

	// Reset the journal to the new generation; its old contents are
	// folded into the committed snapshot. Reopen the handle on the new
	// file. A failure anywhere in here is fatal for this handle: the
	// snapshot is already committed, so further appends would land in a
	// journal whose on-disk generation the next open discards wholesale
	// — silently losing every post-GC intern and release. Fail stop
	// instead: the store closes, mutations return ErrClosed, and the
	// next Open recovers cleanly from the committed snapshot.
	if err := s.resetJournal(); err != nil {
		return st, s.failLocked(fmt.Errorf("blockstore: post-GC journal reset: %w", err))
	}
	if err := s.journal.Close(); err != nil {
		s.journal = nil
		return st, s.failLocked(fmt.Errorf("blockstore: closing journal: %w", err))
	}
	s.journal = nil
	j, err := os.OpenFile(s.journalPath(), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return st, s.failLocked(fmt.Errorf("blockstore: reopening journal: %w", err))
	}
	s.journal = j

	// Reclaim the dead blocks. A failure mid-loop leaves orphans the
	// next open sweeps.
	for _, id := range dead {
		e := s.entries[id]
		if err := os.Remove(s.BlockPath(id)); err != nil && !os.IsNotExist(err) {
			return st, fmt.Errorf("blockstore: reclaiming block %s: %w", id, err)
		}
		delete(s.entries, id)
		st.Reclaimed++
		st.ReclaimedBytes += int64(e.len)
	}
	s.gcBlocks.Add(uint64(st.Reclaimed))
	s.gcBytes.Add(uint64(st.ReclaimedBytes))
	return st, nil
}

// Stats returns a snapshot of the store counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	blocks := len(s.entries)
	var bytes int64
	for _, e := range s.entries {
		bytes += int64(e.len)
	}
	s.mu.Unlock()
	return Stats{
		Blocks:      blocks,
		StoredBytes: bytes,
		Interned:    s.interned.Load(),
		DedupHits:   s.dedupHits.Load(),
		SavedBytes:  s.savedB.Load(),
		GCBlocks:    s.gcBlocks.Load(),
		GCBytes:     s.gcBytes.Load(),
	}
}

// writeFileAtomic writes data to path via temp+fsync+rename+dir-fsync.
func writeFileAtomic(dir, path string, data []byte) error {
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+"-*"+tmpSuffix)
	if err != nil {
		return fmt.Errorf("blockstore: temp for %s: %w", path, err)
	}
	tmpName := tmp.Name()
	fail := func(err error) error {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		return fail(fmt.Errorf("blockstore: writing %s: %w", path, err))
	}
	if err := tmp.Sync(); err != nil {
		return fail(fmt.Errorf("blockstore: syncing %s: %w", path, err))
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("blockstore: closing temp for %s: %w", path, err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("blockstore: publishing %s: %w", path, err)
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so a just-renamed file survives power
// loss; filesystems that refuse directory fsync report EINVAL or
// ENOTSUP, which is treated as success (same posture as the checkpoint
// store). The raw errno values must be matched — a *PathError wrapping
// syscall.EINVAL never matches os.ErrInvalid.
func syncDir(dir string) error {
	f, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("blockstore: opening %s for sync: %w", dir, err)
	}
	defer f.Close()
	if err := f.Sync(); err != nil && !errors.Is(err, syscall.EINVAL) && !errors.Is(err, errors.ErrUnsupported) {
		return fmt.Errorf("blockstore: syncing %s: %w", dir, err)
	}
	return nil
}

// sortIDs orders ids ascending by their byte serialization, the
// canonical order of index snapshots.
func sortIDs(ids []ID) {
	sort.Slice(ids, func(i, j int) bool { return bytes.Compare(ids[i][:], ids[j][:]) < 0 })
}

func putU32(b []byte, v uint32) {
	b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
}

func getU32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}
