package blockstore

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// On-disk formats of the two metadata planes, both little-endian and
// decoded defensively (bounded counts, exact lengths, whole-file CRC)
// like every other untrusted surface in the repository.
//
// # Index snapshot (blockstore.index)
//
//	u32  magic "GBIX"
//	u8   version (1)
//	u64  generation
//	u32  entry count
//	entries: {id [16]byte, len u32, crc u32, refs u32} x count
//	u32  footer magic "GBIF"
//	u32  CRC32C of every preceding byte
//
// The snapshot is the commit record of a GC transaction: it lists every
// live block with its durable refcount, and its atomic rename is the
// single commit point (mirroring the lineage manifest of PR 4).
//
// # Ref journal (blockstore.journal)
//
//	u32  magic "GBJL"
//	u8   version (1)
//	u64  generation (must equal the committed snapshot's)
//	records: {op u8, id [16]byte, len u32, crc u32, reccrc u32} x N
//
// Every record carries its own CRC32C (of the record bytes before the
// reccrc field), so a torn tail — the crash mode of an append-only
// file — is distinguishable from mid-file rot: a short or CRC-bad
// final record is dropped as a torn append, while a bad record with
// bytes after it is corruption and fails the open.
const (
	indexMagic       = 0x58_49_42_47 // "GBIX"
	indexFooterMagic = 0x46_49_42_47 // "GBIF"
	journalMagic     = 0x4c_4a_42_47 // "GBJL"
	formatVersion    = 1

	indexHdrSize    = 4 + 1 + 8 + 4
	indexEntrySize  = idSize + 4 + 4 + 4
	indexFooterSize = 4 + 4
	journalHdrSize  = 4 + 1 + 8
	journalRecSize  = 1 + idSize + 4 + 4 + 4

	// maxIndexEntries bounds a declared entry count before any
	// allocation; with 4 KiB blocks this is already a 4 TiB store.
	maxIndexEntries = 1 << 30
)

// Journal operations.
const (
	opRef     = 1 // refcount++ (block data present on disk)
	opRelease = 2 // refcount--
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// entry is the in-memory state of one block.
type entry struct {
	len  uint32
	crc  uint32
	refs uint32
}

// encodeIndex serializes a snapshot. Entries are written in ascending
// ID order so the byte stream is deterministic for a given state.
func encodeIndex(gen uint64, ids []ID, entries map[ID]entry) ([]byte, error) {
	if len(ids) > maxIndexEntries {
		return nil, fmt.Errorf("blockstore: %d entries exceed the index format limit", len(ids))
	}
	buf := make([]byte, 0, indexHdrSize+indexEntrySize*len(ids)+indexFooterSize)
	buf = binary.LittleEndian.AppendUint32(buf, indexMagic)
	buf = append(buf, formatVersion)
	buf = binary.LittleEndian.AppendUint64(buf, gen)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(ids)))
	for _, id := range ids {
		e, ok := entries[id]
		if !ok {
			return nil, fmt.Errorf("blockstore: encoding unknown block %s", id)
		}
		buf = append(buf, id[:]...)
		buf = binary.LittleEndian.AppendUint32(buf, e.len)
		buf = binary.LittleEndian.AppendUint32(buf, e.crc)
		buf = binary.LittleEndian.AppendUint32(buf, e.refs)
	}
	buf = binary.LittleEndian.AppendUint32(buf, indexFooterMagic)
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf, castagnoli))
	return buf, nil
}

// DecodeIndex parses an index snapshot. The declared entry count is
// bounded by the actual byte length before any allocation and the
// whole-file CRC must verify; any mismatch is ErrCorrupt.
func DecodeIndex(b []byte) (uint64, map[ID]entry, error) {
	if len(b) < indexHdrSize+indexFooterSize {
		return 0, nil, fmt.Errorf("%w: index truncated at %d bytes", ErrCorrupt, len(b))
	}
	body, foot := b[:len(b)-indexFooterSize], b[len(b)-indexFooterSize:]
	if binary.LittleEndian.Uint32(foot) != indexFooterMagic {
		return 0, nil, fmt.Errorf("%w: index footer magic missing", ErrCorrupt)
	}
	want := binary.LittleEndian.Uint32(foot[4:])
	got := crc32.Checksum(b[:len(b)-4], castagnoli)
	if got != want {
		return 0, nil, fmt.Errorf("%w: index footer records %08x, bytes hash to %08x", ErrCorrupt, want, got)
	}
	if binary.LittleEndian.Uint32(body) != indexMagic {
		return 0, nil, fmt.Errorf("%w: bad index magic", ErrCorrupt)
	}
	if body[4] != formatVersion {
		return 0, nil, fmt.Errorf("blockstore: unsupported index version %d", body[4])
	}
	gen := binary.LittleEndian.Uint64(body[5:])
	count := binary.LittleEndian.Uint32(body[13:])
	rest := body[indexHdrSize:]
	if uint64(count) > maxIndexEntries || uint64(count)*indexEntrySize != uint64(len(rest)) {
		return 0, nil, fmt.Errorf("%w: index declares %d entries but carries %d entry bytes",
			ErrCorrupt, count, len(rest))
	}
	entries := make(map[ID]entry, count)
	var prev ID
	for i := 0; i < int(count); i++ {
		rec := rest[i*indexEntrySize:]
		var id ID
		copy(id[:], rec[:idSize])
		// Snapshots are canonical: strictly ascending ID order. This both
		// rejects duplicates and makes decode(encode(x)) byte-identical.
		if i > 0 && bytes.Compare(prev[:], id[:]) >= 0 {
			return 0, nil, fmt.Errorf("%w: index entry %d (%s) out of order", ErrCorrupt, i, id)
		}
		prev = id
		entries[id] = entry{
			len:  binary.LittleEndian.Uint32(rec[idSize:]),
			crc:  binary.LittleEndian.Uint32(rec[idSize+4:]),
			refs: binary.LittleEndian.Uint32(rec[idSize+8:]),
		}
	}
	return gen, entries, nil
}

// journalRec is one decoded journal record.
type journalRec struct {
	op  uint8
	id  ID
	len uint32
	crc uint32
}

// encodeJournalHeader serializes the journal file header.
func encodeJournalHeader(gen uint64) []byte {
	buf := make([]byte, 0, journalHdrSize)
	buf = binary.LittleEndian.AppendUint32(buf, journalMagic)
	buf = append(buf, formatVersion)
	buf = binary.LittleEndian.AppendUint64(buf, gen)
	return buf
}

// appendJournalRec serializes one record (with its per-record CRC)
// onto buf.
func appendJournalRec(buf []byte, r journalRec) []byte {
	start := len(buf)
	buf = append(buf, r.op)
	buf = append(buf, r.id[:]...)
	buf = binary.LittleEndian.AppendUint32(buf, r.len)
	buf = binary.LittleEndian.AppendUint32(buf, r.crc)
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf[start:], castagnoli))
	return buf
}

// errTornJournal marks a journal whose final record is short or
// CRC-bad: the signature of a crash mid-append, recovered by dropping
// the torn tail rather than failing the open.
var errTornJournal = errors.New("blockstore: torn journal tail")

// DecodeJournal parses a journal file: generation from the header,
// then every intact record. A short or CRC-bad FINAL record is dropped
// (torn append); bad bytes with further records after them are
// corruption.
func DecodeJournal(b []byte) (uint64, []journalRec, error) {
	if len(b) < journalHdrSize {
		return 0, nil, fmt.Errorf("%w: journal truncated at %d bytes", ErrCorrupt, len(b))
	}
	if binary.LittleEndian.Uint32(b) != journalMagic {
		return 0, nil, fmt.Errorf("%w: bad journal magic", ErrCorrupt)
	}
	if b[4] != formatVersion {
		return 0, nil, fmt.Errorf("blockstore: unsupported journal version %d", b[4])
	}
	gen := binary.LittleEndian.Uint64(b[5:])
	rest := b[journalHdrSize:]
	var recs []journalRec
	for len(rest) > 0 {
		r, err := decodeJournalRec(rest)
		if err != nil {
			if errors.Is(err, errTornJournal) {
				// A batch append tears at one point and everything after
				// it is garbage from the same interrupted write; rot in
				// the middle of the file leaves intact records after the
				// bad one. Distinguish by scanning forward: any decodable
				// record past this point means corruption, none means a
				// torn tail that is safe to drop.
				for probe := rest[min(journalRecSize, len(rest)):]; len(probe) >= journalRecSize; probe = probe[journalRecSize:] {
					if _, perr := decodeJournalRec(probe); perr == nil {
						return 0, nil, fmt.Errorf("%w: journal record %d bytes before end: %v",
							ErrCorrupt, len(rest), err)
					}
				}
				break // crash mid-append: drop the torn tail
			}
			return 0, nil, err
		}
		recs = append(recs, r)
		rest = rest[journalRecSize:]
	}
	return gen, recs, nil
}

// decodeJournalRec parses the record at the head of b.
func decodeJournalRec(b []byte) (journalRec, error) {
	if len(b) < journalRecSize {
		return journalRec{}, errTornJournal
	}
	want := binary.LittleEndian.Uint32(b[journalRecSize-4:])
	if got := crc32.Checksum(b[:journalRecSize-4], castagnoli); got != want {
		return journalRec{}, fmt.Errorf("%w: journal record CRC %08x, bytes hash to %08x",
			errTornJournal, want, got)
	}
	r := journalRec{op: b[0]}
	copy(r.id[:], b[1:1+idSize])
	r.len = binary.LittleEndian.Uint32(b[1+idSize:])
	r.crc = binary.LittleEndian.Uint32(b[1+idSize+4:])
	if r.op != opRef && r.op != opRelease {
		return journalRec{}, fmt.Errorf("%w: unknown journal op %d", ErrCorrupt, r.op)
	}
	return r, nil
}
