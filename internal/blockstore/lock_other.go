//go:build !unix

package blockstore

import "os"

// Platforms without flock carry no cross-process owner guard (the
// pre-lock behavior): single-owner discipline is on the operator.
const lockingSupported = false

func acquireDirLock(path string) (*os.File, error) { return nil, nil }

func releaseDirLock(f *os.File) {
	if f != nil {
		f.Close()
	}
}
