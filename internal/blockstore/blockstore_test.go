package blockstore

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func testPayload(seed int64, n int) []byte {
	rng := rand.New(rand.NewSource(seed))
	p := make([]byte, n)
	rng.Read(p)
	return p
}

func mustOpen(t *testing.T, dir string) *Store {
	t.Helper()
	s, err := New(dir)
	if err != nil {
		t.Fatalf("New(%s): %v", dir, err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestInternGetRoundTrip(t *testing.T) {
	s := mustOpen(t, t.TempDir())
	chunks := [][]byte{testPayload(1, 4096), testPayload(2, 4096), testPayload(3, 100)}
	refs, err := s.Intern(chunks)
	if err != nil {
		t.Fatalf("Intern: %v", err)
	}
	if len(refs) != 3 {
		t.Fatalf("got %d refs, want 3", len(refs))
	}
	for i, r := range refs {
		got, err := s.Get(r)
		if err != nil {
			t.Fatalf("Get(%d): %v", i, err)
		}
		if !bytes.Equal(got, chunks[i]) {
			t.Fatalf("chunk %d mismatch", i)
		}
		if r.Len != uint32(len(chunks[i])) {
			t.Fatalf("chunk %d ref len %d, want %d", i, r.Len, len(chunks[i]))
		}
	}
}

func TestInternDeduplicates(t *testing.T) {
	s := mustOpen(t, t.TempDir())
	p := testPayload(7, 4096)
	refs1, err := s.Intern([][]byte{p})
	if err != nil {
		t.Fatalf("Intern 1: %v", err)
	}
	refs2, err := s.Intern([][]byte{append([]byte(nil), p...)})
	if err != nil {
		t.Fatalf("Intern 2: %v", err)
	}
	if refs1[0] != refs2[0] {
		t.Fatalf("same payload got different refs: %v vs %v", refs1[0], refs2[0])
	}
	st := s.Stats()
	if st.Blocks != 1 {
		t.Fatalf("store holds %d blocks, want 1", st.Blocks)
	}
	if st.DedupHits != 1 || st.SavedBytes != 4096 {
		t.Fatalf("dedup hits %d saved %d, want 1/4096", st.DedupHits, st.SavedBytes)
	}
	if rc := s.Refcount(refs1[0].ID); rc != 2 {
		t.Fatalf("refcount %d, want 2", rc)
	}
	// Only one payload file exists on disk.
	var files int
	filepath.Walk(filepath.Join(s.Dir(), dataDirName), func(path string, info os.FileInfo, err error) error {
		if err == nil && !info.IsDir() {
			files++
		}
		return nil
	})
	if files != 1 {
		t.Fatalf("%d payload files on disk, want 1", files)
	}
}

func TestSplit(t *testing.T) {
	s := mustOpen(t, t.TempDir())
	for _, n := range []int{0, 1, 4095, 4096, 4097, 3 * 4096} {
		p := testPayload(int64(n), n)
		chunks := s.Split(p)
		var total int
		for i, c := range chunks {
			if i < len(chunks)-1 && len(c) != s.ChunkSize() {
				t.Fatalf("n=%d: chunk %d has %d bytes", n, i, len(c))
			}
			total += len(c)
		}
		if total != n {
			t.Fatalf("n=%d: chunks total %d", n, total)
		}
		if n == 0 && chunks != nil {
			t.Fatalf("Split of empty payload returned %d chunks", len(chunks))
		}
	}
}

func TestReleaseAndGC(t *testing.T) {
	s := mustOpen(t, t.TempDir())
	keep := testPayload(1, 4096)
	drop := testPayload(2, 4096)
	refs, err := s.Intern([][]byte{keep, drop})
	if err != nil {
		t.Fatalf("Intern: %v", err)
	}
	if err := s.Release(refs[1:]); err != nil {
		t.Fatalf("Release: %v", err)
	}
	st, err := s.GC()
	if err != nil {
		t.Fatalf("GC: %v", err)
	}
	if st.Live != 1 || st.Reclaimed != 1 || st.ReclaimedBytes != 4096 {
		t.Fatalf("GC stats %+v", st)
	}
	if _, err := s.Get(refs[1]); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get of reclaimed block: %v, want ErrNotFound", err)
	}
	got, err := s.Get(refs[0])
	if err != nil || !bytes.Equal(got, keep) {
		t.Fatalf("kept block after GC: %v", err)
	}
	if _, err := os.Stat(s.BlockPath(refs[1].ID)); !os.IsNotExist(err) {
		t.Fatalf("reclaimed payload file still present: %v", err)
	}
}

func TestReleaseUnderflowClamps(t *testing.T) {
	s := mustOpen(t, t.TempDir())
	refs, err := s.Intern([][]byte{testPayload(1, 64)})
	if err != nil {
		t.Fatalf("Intern: %v", err)
	}
	if err := s.Release(refs); err != nil {
		t.Fatalf("first Release: %v", err)
	}
	if err := s.Release(refs); err == nil {
		t.Fatal("second Release reported no underflow")
	}
	if rc := s.Refcount(refs[0].ID); rc != 0 {
		t.Fatalf("refcount %d after underflow, want 0", rc)
	}
}

func TestReopenReplaysJournal(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	p1, p2 := testPayload(1, 4096), testPayload(2, 4096)
	refs, err := s.Intern([][]byte{p1, p2, p1})
	if err != nil {
		t.Fatalf("Intern: %v", err)
	}
	if err := s.Release(refs[1:2]); err != nil {
		t.Fatalf("Release: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	s2 := mustOpen(t, dir)
	if rc := s2.Refcount(refs[0].ID); rc != 2 {
		t.Fatalf("p1 refcount %d after reopen, want 2", rc)
	}
	if rc := s2.Refcount(refs[1].ID); rc != 0 {
		t.Fatalf("p2 refcount %d after reopen, want 0", rc)
	}
	got, err := s2.Get(refs[0])
	if err != nil || !bytes.Equal(got, p1) {
		t.Fatalf("Get after reopen: %v", err)
	}
}

func TestReopenAfterGCLoadsSnapshot(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	p := testPayload(1, 4096)
	refs, err := s.Intern([][]byte{p, testPayload(2, 4096)})
	if err != nil {
		t.Fatalf("Intern: %v", err)
	}
	if err := s.Release(refs[1:]); err != nil {
		t.Fatalf("Release: %v", err)
	}
	if _, err := s.GC(); err != nil {
		t.Fatalf("GC: %v", err)
	}
	// More journal traffic on the post-GC generation.
	refs2, err := s.Intern([][]byte{testPayload(3, 100)})
	if err != nil {
		t.Fatalf("Intern post-GC: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	s2 := mustOpen(t, dir)
	for _, r := range []Ref{refs[0], refs2[0]} {
		if _, err := s2.Get(r); err != nil {
			t.Fatalf("Get(%s) after GC+reopen: %v", r.ID, err)
		}
	}
	if s2.Contains(refs[1].ID) {
		t.Fatal("reclaimed block resurrected by reopen")
	}
}

// TestCrashBeforeGCCommit aborts GC before the snapshot rename: the
// old state must survive a reopen untouched.
func TestCrashBeforeGCCommit(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	refs, err := s.Intern([][]byte{testPayload(1, 4096), testPayload(2, 4096)})
	if err != nil {
		t.Fatalf("Intern: %v", err)
	}
	if err := s.Release(refs[1:]); err != nil {
		t.Fatalf("Release: %v", err)
	}
	boom := errors.New("simulated crash")
	s.SetHooks(&Hooks{BeforeGCCommit: func() error { return boom }})
	if _, err := s.GC(); !errors.Is(err, boom) {
		t.Fatalf("GC: %v, want injected crash", err)
	}
	s.Close() // the "crash"

	s2 := mustOpen(t, dir)
	if rc := s2.Refcount(refs[0].ID); rc != 1 {
		t.Fatalf("live refcount %d, want 1", rc)
	}
	if rc := s2.Refcount(refs[1].ID); rc != 0 {
		t.Fatalf("released refcount %d, want 0", rc)
	}
	if _, err := s2.Get(refs[0]); err != nil {
		t.Fatalf("Get after aborted GC: %v", err)
	}
	// The zero-ref block is reclaimed by the orphan logic only after a
	// COMMITTED GC removes it from the index; an aborted one keeps it.
	if !s2.Contains(refs[1].ID) {
		t.Fatal("aborted GC lost the zero-ref entry")
	}
}

// TestCrashAfterGCCommit aborts GC after the snapshot rename but
// before journal reset and file deletion: reopen must finish the
// transaction (stale journal discarded, dead payload swept).
func TestCrashAfterGCCommit(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	refs, err := s.Intern([][]byte{testPayload(1, 4096), testPayload(2, 4096)})
	if err != nil {
		t.Fatalf("Intern: %v", err)
	}
	if err := s.Release(refs[1:]); err != nil {
		t.Fatalf("Release: %v", err)
	}
	boom := errors.New("simulated crash")
	s.SetHooks(&Hooks{AfterGCCommit: func() error { return boom }})
	if _, err := s.GC(); !errors.Is(err, boom) {
		t.Fatalf("GC: %v, want injected crash", err)
	}
	s.Close() // the "crash": snapshot committed, journal stale, file undeleted

	s2 := mustOpen(t, dir)
	if rc := s2.Refcount(refs[0].ID); rc != 1 {
		t.Fatalf("live refcount %d, want 1", rc)
	}
	if s2.Contains(refs[1].ID) {
		t.Fatal("committed GC left the dead entry live after recovery")
	}
	if _, err := os.Stat(s2.BlockPath(refs[1].ID)); !os.IsNotExist(err) {
		t.Fatalf("dead payload file not swept on recovery: %v", err)
	}
	if _, err := s2.Get(refs[0]); err != nil {
		t.Fatalf("Get after recovered GC: %v", err)
	}
}

func TestOrphanSweptOnOpen(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	refs, err := s.Intern([][]byte{testPayload(1, 4096)})
	if err != nil {
		t.Fatalf("Intern: %v", err)
	}
	// Plant an orphan: a payload file with no index/journal entry, the
	// residue of a torn intern.
	orphan := testPayload(99, 512)
	oid := IDOf(orphan)
	opath := s.BlockPath(oid)
	if err := os.MkdirAll(filepath.Dir(opath), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(opath, orphan, 0o644); err != nil {
		t.Fatal(err)
	}
	s.Close()

	s2 := mustOpen(t, dir)
	if _, err := os.Stat(opath); !os.IsNotExist(err) {
		t.Fatalf("orphan not swept: %v", err)
	}
	if _, err := s2.Get(refs[0]); err != nil {
		t.Fatalf("referenced block lost by sweep: %v", err)
	}
}

func TestGetDetectsBitRot(t *testing.T) {
	s := mustOpen(t, t.TempDir())
	refs, err := s.Intern([][]byte{testPayload(1, 4096)})
	if err != nil {
		t.Fatalf("Intern: %v", err)
	}
	path := s.BlockPath(refs[0].ID)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[100] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(refs[0]); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Get of rotten block: %v, want ErrCorrupt", err)
	}
}

func TestGetDetectsTruncatedBlock(t *testing.T) {
	s := mustOpen(t, t.TempDir())
	refs, err := s.Intern([][]byte{testPayload(1, 4096)})
	if err != nil {
		t.Fatalf("Intern: %v", err)
	}
	path := s.BlockPath(refs[0].ID)
	if err := os.Truncate(path, 10); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(refs[0]); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Get of truncated block: %v, want ErrCorrupt", err)
	}
}

func TestCorruptIndexFailsOpen(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	if _, err := s.Intern([][]byte{testPayload(1, 64)}); err != nil {
		t.Fatalf("Intern: %v", err)
	}
	if _, err := s.GC(); err != nil {
		t.Fatalf("GC: %v", err)
	}
	s.Close()

	path := filepath.Join(dir, indexFileName)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open with rotten index: %v, want ErrCorrupt", err)
	}
}

func TestTornJournalTailRecovered(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	refs, err := s.Intern([][]byte{testPayload(1, 4096)})
	if err != nil {
		t.Fatalf("Intern: %v", err)
	}
	s.Close()

	// Simulate a crash mid-append: half a record of garbage at the end.
	path := filepath.Join(dir, journalFileName)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(make([]byte, journalRecSize/2)); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2 := mustOpen(t, dir)
	if rc := s2.Refcount(refs[0].ID); rc != 1 {
		t.Fatalf("refcount %d after torn-tail recovery, want 1", rc)
	}
}

// TestAppendAfterTornTailSurvivesReopen is the regression for the
// torn-tail append hazard: recovery must REWRITE a journal whose tail
// tore, not just skip the garbage in memory. The append handle is
// O_APPEND, so without the rewrite this session's records land after
// the torn bytes, misaligned; the next open would classify every one
// of them as more torn tail, drop them, and sweep their payload files
// — permanently corrupting committed diffs.
func TestAppendAfterTornTailSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	refs1, err := s.Intern([][]byte{testPayload(1, 4096)})
	if err != nil {
		t.Fatalf("Intern: %v", err)
	}
	s.Close()

	// Crash mid-append: garbage shorter than one record at the end.
	path := filepath.Join(dir, journalFileName)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(bytes.Repeat([]byte{0xff}, journalRecSize-3)); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// The recovered session appends new, durably committed references.
	s2 := mustOpen(t, dir)
	refs2, err := s2.Intern([][]byte{testPayload(2, 4096)})
	if err != nil {
		t.Fatalf("Intern after torn-tail recovery: %v", err)
	}
	s2.Close()

	// Both the pre-tear and post-recovery references must survive the
	// NEXT open intact.
	s3 := mustOpen(t, dir)
	for i, r := range []Ref{refs1[0], refs2[0]} {
		if rc := s3.Refcount(r.ID); rc != 1 {
			t.Fatalf("ref %d: refcount %d after torn-tail+append+reopen, want 1", i, rc)
		}
		if _, err := s3.Get(r); err != nil {
			t.Fatalf("ref %d: Get after torn-tail+append+reopen: %v", i, err)
		}
	}
	// And the rewritten journal is canonical: header plus whole records.
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if (info.Size()-journalHdrSize)%journalRecSize != 0 {
		t.Fatalf("journal not canonical after recovery: %d bytes", info.Size())
	}
}

// TestGCJournalResetFailureFailsStop: once the GC snapshot is
// committed, a journal reset failure must disable the store. Appending
// to the old journal would write records under a stale generation that
// the next open discards wholesale — silent loss of every post-GC
// intern and release.
func TestGCJournalResetFailureFailsStop(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	refs, err := s.Intern([][]byte{testPayload(1, 4096), testPayload(2, 4096)})
	if err != nil {
		t.Fatalf("Intern: %v", err)
	}
	if err := s.Release(refs[1:]); err != nil {
		t.Fatalf("Release: %v", err)
	}
	// Sabotage the post-commit reset: replace the journal path with a
	// directory so the canonical rewrite's rename fails.
	jpath := filepath.Join(dir, journalFileName)
	s.SetHooks(&Hooks{AfterGCCommit: func() error {
		if err := os.Remove(jpath); err != nil {
			return err
		}
		return os.Mkdir(jpath, 0o755)
	}})
	if _, err := s.GC(); err == nil {
		t.Fatal("GC with unresettable journal reported success")
	}
	if _, err := s.Intern([][]byte{testPayload(3, 64)}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Intern after failed post-commit reset: %v, want ErrClosed", err)
	}
	if err := s.Release(refs[:1]); !errors.Is(err, ErrClosed) {
		t.Fatalf("Release after failed post-commit reset: %v, want ErrClosed", err)
	}

	// Reopen recovers from the committed snapshot once the obstruction
	// is gone (here: the empty directory squatting on the journal path).
	if err := os.Remove(jpath); err != nil {
		t.Fatal(err)
	}
	s2 := mustOpen(t, dir)
	if _, err := s2.Get(refs[0]); err != nil {
		t.Fatalf("Get after fail-stop and reopen: %v", err)
	}
	if s2.Contains(refs[1].ID) {
		t.Fatal("dead block survived the committed GC snapshot")
	}
}

// TestReadOnlyOpenCoexistsWithOwner: a writable owner excludes other
// writable opens (ErrBusy) but not read-only ones, and a read-only
// store serves reads while refusing every mutation.
func TestReadOnlyOpenCoexistsWithOwner(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	p := testPayload(1, 4096)
	refs, err := s.Intern([][]byte{p})
	if err != nil {
		t.Fatalf("Intern: %v", err)
	}
	if lockingSupported {
		if _, err := Open(dir, Options{}); !errors.Is(err, ErrBusy) {
			t.Fatalf("second writable Open under a live owner: %v, want ErrBusy", err)
		}
	}
	ro, err := Open(dir, Options{ReadOnly: true})
	if err != nil {
		t.Fatalf("read-only Open under a live owner: %v", err)
	}
	defer ro.Close()
	if !ro.ReadOnly() {
		t.Fatal("ReadOnly() false on a read-only store")
	}
	got, err := ro.Get(refs[0])
	if err != nil || !bytes.Equal(got, p) {
		t.Fatalf("read-only Get: %v", err)
	}
	if _, err := ro.Intern([][]byte{testPayload(2, 64)}); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("read-only Intern: %v, want ErrReadOnly", err)
	}
	if err := ro.Release(refs); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("read-only Release: %v, want ErrReadOnly", err)
	}
	if _, err := ro.GC(); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("read-only GC: %v, want ErrReadOnly", err)
	}
	// Closing the owner frees the lock for the next writable open.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	w2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("writable Open after owner closed: %v", err)
	}
	w2.Close()
}

// TestReadOnlyOpenLeavesDebris: read-only recovery must not touch the
// directory — a tool inspecting a crashed store must not race the
// owner that will later recover it for real.
func TestReadOnlyOpenLeavesDebris(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	refs, err := s.Intern([][]byte{testPayload(1, 4096)})
	if err != nil {
		t.Fatalf("Intern: %v", err)
	}
	s.Close()

	// Plant crash debris: an orphan payload and a torn journal tail.
	orphan := testPayload(99, 512)
	opath := s.BlockPath(IDOf(orphan))
	if err := os.MkdirAll(filepath.Dir(opath), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(opath, orphan, 0o644); err != nil {
		t.Fatal(err)
	}
	jpath := filepath.Join(dir, journalFileName)
	jf, err := os.OpenFile(jpath, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := jf.Write([]byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	jf.Close()
	before, err := os.Stat(jpath)
	if err != nil {
		t.Fatal(err)
	}

	ro, err := Open(dir, Options{ReadOnly: true})
	if err != nil {
		t.Fatalf("read-only Open over crash debris: %v", err)
	}
	defer ro.Close()
	if _, err := ro.Get(refs[0]); err != nil {
		t.Fatalf("read-only Get over crash debris: %v", err)
	}
	if _, err := os.Stat(opath); err != nil {
		t.Fatalf("read-only open swept the orphan payload: %v", err)
	}
	after, err := os.Stat(jpath)
	if err != nil {
		t.Fatal(err)
	}
	if after.Size() != before.Size() {
		t.Fatalf("read-only open rewrote the journal: %d -> %d bytes", before.Size(), after.Size())
	}
}

func TestRottenJournalMidFileFailsOpen(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	if _, err := s.Intern([][]byte{testPayload(1, 64), testPayload(2, 64), testPayload(3, 64)}); err != nil {
		t.Fatalf("Intern: %v", err)
	}
	s.Close()

	path := filepath.Join(dir, journalFileName)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte inside the FIRST record, leaving intact records after
	// it — rot, not a torn tail.
	raw[journalHdrSize+2] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open with rotten journal: %v, want ErrCorrupt", err)
	}
}

func TestClosedStoreRejectsOps(t *testing.T) {
	s := mustOpen(t, t.TempDir())
	refs, err := s.Intern([][]byte{testPayload(1, 64)})
	if err != nil {
		t.Fatalf("Intern: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, err := s.Intern([][]byte{testPayload(2, 64)}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Intern after Close: %v", err)
	}
	if _, err := s.Get(refs[0]); !errors.Is(err, ErrClosed) {
		t.Fatalf("Get after Close: %v", err)
	}
	if err := s.Release(refs); !errors.Is(err, ErrClosed) {
		t.Fatalf("Release after Close: %v", err)
	}
	if _, err := s.GC(); !errors.Is(err, ErrClosed) {
		t.Fatalf("GC after Close: %v", err)
	}
}

func TestConcurrentIntern(t *testing.T) {
	s := mustOpen(t, t.TempDir())
	shared := testPayload(42, 4096)
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				chunks := [][]byte{shared, testPayload(int64(g*1000+i), 512)}
				refs, err := s.Intern(chunks)
				if err != nil {
					errs[g] = err
					return
				}
				if _, err := s.Get(refs[0]); err != nil {
					errs[g] = err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", g, err)
		}
	}
	if rc := s.Refcount(IDOf(shared)); rc != 8*20 {
		t.Fatalf("shared refcount %d, want %d", rc, 8*20)
	}
	st := s.Stats()
	if st.DedupHits != 8*20-1 {
		t.Fatalf("dedup hits %d, want %d", st.DedupHits, 8*20-1)
	}
}

func TestIndexEncodeDecodeRoundTrip(t *testing.T) {
	entries := map[ID]entry{}
	var ids []ID
	for i := 0; i < 50; i++ {
		id := IDOf([]byte(fmt.Sprintf("block-%d", i)))
		entries[id] = entry{len: uint32(i * 7), crc: uint32(i * 13), refs: uint32(i % 5)}
		ids = append(ids, id)
	}
	sortIDs(ids)
	b, err := encodeIndex(99, ids, entries)
	if err != nil {
		t.Fatalf("encodeIndex: %v", err)
	}
	gen, got, err := DecodeIndex(b)
	if err != nil {
		t.Fatalf("DecodeIndex: %v", err)
	}
	if gen != 99 || len(got) != len(entries) {
		t.Fatalf("gen %d entries %d", gen, len(got))
	}
	for id, e := range entries {
		if got[id] != e {
			t.Fatalf("entry %s: %+v vs %+v", id, got[id], e)
		}
	}
}

// TestIndexDecodeTruncationEveryBoundary truncates a valid snapshot at
// every byte offset: no truncation may decode successfully, and every
// failure must be typed.
func TestIndexDecodeTruncationEveryBoundary(t *testing.T) {
	entries := map[ID]entry{}
	var ids []ID
	for i := 0; i < 5; i++ {
		id := IDOf([]byte(fmt.Sprintf("t-%d", i)))
		entries[id] = entry{len: 100, crc: uint32(i), refs: 1}
		ids = append(ids, id)
	}
	b, err := encodeIndex(7, ids, entries)
	if err != nil {
		t.Fatalf("encodeIndex: %v", err)
	}
	for cut := 0; cut < len(b); cut++ {
		if _, _, err := DecodeIndex(b[:cut]); err == nil {
			t.Fatalf("truncation at %d/%d decoded successfully", cut, len(b))
		} else if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncation at %d: untyped error %v", cut, err)
		}
	}
}

// TestIndexDecodeBitFlips flips each byte of a small snapshot; decode
// must fail (CRC) and never panic.
func TestIndexDecodeBitFlips(t *testing.T) {
	id := IDOf([]byte("flip"))
	b, err := encodeIndex(1, []ID{id}, map[ID]entry{id: {len: 8, crc: 9, refs: 1}})
	if err != nil {
		t.Fatalf("encodeIndex: %v", err)
	}
	for i := range b {
		mut := append([]byte(nil), b...)
		mut[i] ^= 0xff
		if _, _, err := DecodeIndex(mut); err == nil {
			t.Fatalf("bit flip at %d decoded successfully", i)
		}
	}
}

func TestIDStability(t *testing.T) {
	// The block address of a payload is a format constant: if this
	// value ever changes, every existing store becomes unreadable.
	got := IDOf([]byte("gpuckpt block address stability probe")).String()
	const want = "08286ea6f9d895660b677649839512db"
	if got != want {
		t.Fatalf("IDOf drifted: %s, want %s", got, want)
	}
}
