//go:build unix

package blockstore

import (
	"errors"
	"fmt"
	"os"
	"syscall"
)

// lockingSupported reports whether this platform enforces the writable
// owner lock. Tests that assert ErrBusy semantics skip where it is
// false.
const lockingSupported = true

// acquireDirLock takes a non-blocking exclusive flock on path, creating
// the file if needed. The lock is advisory, scoped to the open file
// description, and vanishes with the process — a crashed owner never
// wedges the store. A lock held by another live owner reports ErrBusy.
// Filesystems that cannot lock (ENOLCK, ENOTSUP) degrade to the
// unguarded pre-lock behavior rather than making the store unusable.
func acquireDirLock(path string) (*os.File, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("blockstore: opening lock file: %w", err)
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		switch {
		case errors.Is(err, syscall.EWOULDBLOCK) || errors.Is(err, syscall.EAGAIN):
			return nil, fmt.Errorf("%w: %s", ErrBusy, path)
		case errors.Is(err, syscall.ENOLCK) || errors.Is(err, errors.ErrUnsupported):
			return nil, nil
		}
		return nil, fmt.Errorf("blockstore: locking %s: %w", path, err)
	}
	return f, nil
}

// releaseDirLock drops the flock by closing the handle. nil-safe.
func releaseDirLock(f *os.File) {
	if f != nil {
		f.Close()
	}
}
