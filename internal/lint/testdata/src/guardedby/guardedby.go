// Package guardedby is a golden fixture for the repo-wide guardedby
// check: mutex-guarded field accesses, ckptlint:locked helper
// preconditions verified at call sites, goroutine non-inheritance of
// the spawner's locks, and annotation hygiene (stale or argument-less
// directives are findings too).
package guardedby

import (
	"sync"
	"time"
)

type counter struct {
	mu sync.Mutex
	//ckptlint:guardedby mu
	n int
	//ckptlint:guardedby mu
	clock time.Duration
}

func (c *counter) badRead() int {
	return c.n // want:guardedby
}

func (c *counter) badWrite(dt time.Duration) {
	c.clock += dt // want:guardedby
}

func (c *counter) goodRead() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

func (c *counter) goodExplicit() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

// addLocked may only be called with c.mu held; the analyzer verifies
// that at every call site instead of requiring a Lock in this body.
//
//ckptlint:locked mu
func (c *counter) addLocked(d int) {
	c.n += d
	c.addMoreLocked(d)
}

// addMoreLocked shows the precondition chaining through helpers.
//
//ckptlint:locked mu
func (c *counter) addMoreLocked(d int) {
	c.n += d
}

func (c *counter) goodCall() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.addLocked(1)
}

func (c *counter) badCall() {
	c.addLocked(1) // want:guardedby
}

// badGo: a goroutine does not inherit the spawner's locks — the
// access inside the literal needs its own Lock.
func (c *counter) badGo() {
	var wg sync.WaitGroup
	c.mu.Lock()
	defer c.mu.Unlock()
	wg.Add(1)
	go func() {
		defer wg.Done()
		c.n++ // want:guardedby
	}()
	wg.Wait()
}

func (c *counter) goodGo() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		c.mu.Lock()
		c.n++
		c.mu.Unlock()
	}()
	wg.Wait()
}

// stale holds hygiene cases: annotations that stopped proving anything
// because the mutex they name does not exist (or was never named).
type stale struct {
	mu sync.Mutex
	//ckptlint:guardedby gone
	x int // want:guardedby
	//ckptlint:guardedby
	y int // want:guardedby
}

//ckptlint:locked gone
func (s *stale) helper() {} // want:guardedby

//ckptlint:locked
func (s *stale) bare() {} // want:guardedby

func (s *stale) use() {
	s.mu.Lock()
	s.x, s.y = 1, 2
	s.mu.Unlock()
	s.helper()
	s.bare()
}
