package retryable

import (
	"errors"
	"io"
)

// outOfScope is a file that does not import internal/wire: local
// stream handling may match io.EOF directly (there is no wire boundary
// to classify), so nothing here is flagged.
func outOfScope(err error) bool {
	return errors.Is(err, io.EOF) || err == io.EOF
}
