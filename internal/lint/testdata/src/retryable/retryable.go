// Package retryable is a golden fixture for the retryable check. The
// file imports an internal/wire path, putting it in scope; fixtures
// parse but never build, so the import needs no real module.
package retryable

import (
	"errors"
	"io"
	"net"
	"os"

	"example.com/internal/wire"
)

func badErrorsIsEOF(err error) bool {
	return errors.Is(err, io.EOF) // want:retryable
}

func badErrorsIsUnexpectedEOF(err error) bool {
	return errors.Is(err, io.ErrUnexpectedEOF) // want:retryable
}

func badErrorsIsClosed(err error) bool {
	return errors.Is(err, net.ErrClosed) // want:retryable
}

func badErrorsIsDeadline(err error) bool {
	return errors.Is(err, os.ErrDeadlineExceeded) // want:retryable
}

func badDirectCompare(err error) bool {
	return err == io.EOF // want:retryable
}

func badTimeoutSniff(err error) bool {
	var ne net.Error
	if errors.As(err, &ne) {
		return ne.Timeout() // want:retryable
	}
	return false
}

func goodTransient(err error) bool {
	return wire.Transient(err)
}

func goodClean(err error) bool {
	return wire.IsClean(err)
}

func goodDomainSentinel(err error) bool {
	// Matching wire's own domain sentinels is not transport
	// classification — only the transport sentinel set is flagged.
	return errors.Is(err, wire.ErrBusy)
}

func goodWaived(err error) bool {
	return errors.Is(err, net.ErrClosed) //ckptlint:ignore retryable deliberate exception with a reason
}
