// Package nowallclock is a golden fixture for the nowallclock check
// (the package name opts the fixture into the device-only rule).
package nowallclock

import "time"

type clockModel struct {
	now time.Duration
}

func (c *clockModel) badStamp() time.Time {
	return time.Now() // want:nowallclock
}

//ckptlint:allowwallclock
func wallDeadline(d time.Duration) time.Time {
	return time.Now().Add(d)
}

func goodAdvance(c *clockModel, d time.Duration) {
	c.now += d
}
