// Package clockguard is a golden fixture for the clockguard check.
package clockguard

import (
	"sync/atomic"
)

type device struct {
	//ckptlint:atomic
	requests atomic.Uint64
	//ckptlint:atomic
	bytes atomic.Uint64
}

func (d *device) badAtomic() uint64 {
	var u atomic.Uint64
	u.Store(1)
	_ = &d.requests // want:clockguard
	return u.Load()
}

func (d *device) badCopy() uint64 {
	n := d.bytes // want:clockguard
	return n.Load()
}

func (d *device) goodAtomic() uint64 {
	d.requests.Add(1)
	d.bytes.Store(2)
	return d.requests.Load()
}
