// Package clockguard is a golden fixture for the clockguard check.
package clockguard

import (
	"sync"
	"sync/atomic"
	"time"
)

type device struct {
	mu sync.Mutex
	//ckptlint:guardedby mu
	clock time.Duration
	//ckptlint:atomic
	requests atomic.Uint64
}

func (d *device) badRead() time.Duration {
	return d.clock // want:clockguard
}

func (d *device) badWrite(dt time.Duration) {
	d.clock += dt // want:clockguard
}

func (d *device) goodRead() time.Duration {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.clock
}

func (d *device) badAtomic() uint64 {
	var u atomic.Uint64
	u.Store(1)
	_ = &d.requests // want:clockguard
	return u.Load()
}

func (d *device) goodAtomic() uint64 {
	d.requests.Add(1)
	return d.requests.Load()
}
