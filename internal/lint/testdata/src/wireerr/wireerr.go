// Package wireerr is a golden fixture for the wireerr check. The
// `wire` qualifier is matched by name only, so no import is needed —
// fixtures parse but never build.
package wireerr

func badDiscard(b []byte) {
	wire.DecodeList(b) // want:wireerr
}

func badBlank(b []byte) int {
	infos, _ := wire.DecodeList(b) // want:wireerr
	return len(infos)
}

func badTruncate(payload []byte) uint32 {
	return uint32(len(payload)) // want:wireerr
}

func badNamedLen(dataLen int) uint64 {
	return uint64(dataLen) // want:wireerr
}

func goodHandled(b []byte) error {
	_, err := wire.DecodeList(b)
	return err
}

func goodChecked(payload []byte, max int) (uint32, bool) {
	if len(payload) > max {
		return 0, false
	}
	return uint32(len(payload)), true
}

func goodInCondition(n int, limit uint32) bool {
	if uint32(n) > limit { // the conversion is itself part of the check
		return false
	}
	return true
}

func goodNotALength(code int) uint32 {
	return uint32(code) // not a length-ish name: out of scope
}
