// Package noalloc is a golden fixture for the noalloc check. Lines
// carrying a want-marker trailing comment must produce exactly one
// diagnostic of the named check; unmarked lines must produce none.
// The files parse but are never built (testdata is invisible to the
// go tool).
package noalloc

import "fmt"

type point struct{ x, y int }

//ckptlint:noalloc
func badSliceLit() []int {
	return []int{1, 2, 3} // want:noalloc
}

//ckptlint:noalloc
func badMapLit() map[string]int {
	return map[string]int{"a": 1} // want:noalloc
}

//ckptlint:noalloc
func badEscape() *point {
	return &point{1, 2} // want:noalloc
}

//ckptlint:noalloc
func badFmt(v int) {
	fmt.Println(v) // want:noalloc
}

//ckptlint:noalloc
func badAppend(n int) int {
	xs := make([]int, 0, n)
	for i := 0; i < n; i++ {
		xs = append(xs, i) // want:noalloc
	}
	return len(xs)
}

//ckptlint:noalloc
func badConcat(a string) string {
	return a + "-suffix" // want:noalloc
}

//ckptlint:noalloc
func badBox(v int) interface{} {
	return any(v) // want:noalloc
}

//ckptlint:noalloc
func badLoopCapture(fns *[]func()) {
	for i := 0; i < 4; i++ {
		*fns = append(*fns, func() { _ = i }) // want:noalloc
	}
}

type kernel struct {
	body func(int)
}

// The directive also attaches to stored kernel-body closures, the way
// dedup's tree sweep bodies are annotated.
func (k *kernel) init() {
	//ckptlint:noalloc
	k.body = func(n int) {
		_ = fmt.Sprint(n) // want:noalloc
	}
}
