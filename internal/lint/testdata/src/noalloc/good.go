package noalloc

import "fmt"

//ckptlint:noalloc
func goodRecycle(buf []byte, b byte) []byte {
	buf = buf[:0]
	buf = append(buf, b) // append to a parameter: caller recycles
	return buf
}

//ckptlint:noalloc
func goodValueLit() point {
	return point{3, 4} // value struct literal stays on the stack
}

//ckptlint:noalloc
func goodErrPath(err error) error {
	if err != nil {
		return fmt.Errorf("wrapped: %w", err) // error paths may allocate
	}
	return nil
}

//ckptlint:noalloc
func ignoredFinding() []int {
	//ckptlint:ignore noalloc fixture exercising the waiver
	return []int{1}
}

func unannotated() []int {
	return []int{1, 2} // no directive, no findings
}
