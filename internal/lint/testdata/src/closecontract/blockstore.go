// Golden fixture for the blockstore closer constructors: a Store owns
// an open journal handle, so every construction must Close on all
// paths or hand ownership off. The `blockstore` qualifier is matched
// by name only, so no import is needed.
package closecontract

func badBlockStoreLeak(dir string) error {
	bs, err := blockstore.Open(dir, blockstore.Options{}) // want:closecontract
	if err != nil {
		return err
	}
	bs.Intern(nil)
	return nil
}

func badBlockStoreNewEarlyReturn(dir string, flag bool) error {
	bs, err := blockstore.New(dir) // want:closecontract
	if err != nil {
		return err
	}
	if flag {
		return nil // leaks bs: Close only happens below
	}
	bs.Close()
	return nil
}

func goodBlockStoreDefer(dir string) error {
	bs, err := blockstore.Open(dir, blockstore.Options{})
	if err != nil {
		return err
	}
	defer bs.Close()
	bs.Intern(nil)
	return nil
}

func goodBlockStoreHandoff(dir string) (*Store, error) {
	bs, err := blockstore.New(dir)
	if err != nil {
		return nil, err
	}
	return bs, nil
}

// Store stands in for the real blockstore.Store in the fixture.
type Store struct{}
