// Package closecontract is a golden fixture for the closecontract
// check. NewPool stands in for the repository's closer constructors
// (the check matches the bare name as well as the qualified forms).
package closecontract

type Pool struct{}

func NewPool(n int) (*Pool, error) { return &Pool{}, nil }

func (p *Pool) Close() {}

func (p *Pool) work() {}

func badLeak(n int) error {
	p, err := NewPool(n) // want:closecontract
	if err != nil {
		return err
	}
	p.work()
	return nil
}

func badEarlyReturn(n int, flag bool) error {
	p, err := NewPool(n) // want:closecontract
	if err != nil {
		return err
	}
	if flag {
		return nil // leaks p: Close only happens below
	}
	p.work()
	p.Close()
	return nil
}

func goodDefer(n int) error {
	p, err := NewPool(n)
	if err != nil {
		return err
	}
	defer p.Close()
	p.work()
	return nil
}

func goodExplicit(n int) {
	p, _ := NewPool(n)
	p.work()
	p.Close()
}

func goodHandoff(n int) (*Pool, error) {
	p, err := NewPool(n)
	if err != nil {
		return nil, err
	}
	return p, nil
}

type holder struct{ pool *Pool }

func goodStored(h *holder, n int) error {
	p, err := NewPool(n)
	if err != nil {
		return err
	}
	h.pool = p // ownership handed to h
	return nil
}

// Manager and the lifecycle variable mimic the qualified
// lifecycle.New spelling used by the rest of the repository, so the
// fixture also pins the contract on lifecycle managers.
type Manager struct{}

func (m *Manager) Close() error { return nil }

func (m *Manager) Compact() error { return nil }

type lifecycleAPI struct{}

func (lifecycleAPI) New(n int) (*Manager, error) { return &Manager{}, nil }

var lifecycle lifecycleAPI

func badManagerLeak(n int) error {
	m, err := lifecycle.New(n) // want:closecontract
	if err != nil {
		return err
	}
	return m.Compact()
}

func goodManagerDefer(n int) error {
	m, err := lifecycle.New(n)
	if err != nil {
		return err
	}
	defer m.Close()
	return m.Compact()
}

type lineage struct{ mgr *Manager }

func goodManagerStored(n int) (*lineage, error) {
	m, err := lifecycle.New(n)
	if err != nil {
		return nil, err
	}
	return &lineage{mgr: m}, nil
}
