// Package lockorder is a golden fixture for the lockorder check: two
// annotated mutexes acquired in opposite orders by two functions — one
// of them nesting through a helper call, which exercises the
// call-graph propagation — form a cycle, and both edges are reported.
package lockorder

import (
	"sync"
)

type state struct {
	a sync.Mutex
	b sync.Mutex
	//ckptlint:guardedby a
	x int
	//ckptlint:guardedby b
	y int
}

// bumpY acquires b on its own; callers holding a create an a -> b
// edge through the call graph, not through a Lock in their body.
func (s *state) bumpY() {
	s.b.Lock()
	s.y++
	s.b.Unlock()
}

func (s *state) aThenB() {
	s.a.Lock()
	defer s.a.Unlock()
	s.x++
	s.bumpY() // want:lockorder
}

func (s *state) bThenA() {
	s.b.Lock()
	defer s.b.Unlock()
	s.y++
	s.a.Lock() // want:lockorder
	s.x++
	s.a.Unlock()
}

// safe releases a before taking b: no edge, no finding.
func (s *state) safe() {
	s.a.Lock()
	s.x++
	s.a.Unlock()
	s.b.Lock()
	s.y++
	s.b.Unlock()
}
