// Package bufreuse is a golden fixture for the bufreuse check.
package bufreuse

import (
	"io"
	"net"

	"github.com/gpuckpt/gpuckpt/internal/wire"
)

// conn models the per-connection session the real client keeps: its
// buffers persist across frames, which is what the check demands.
type conn struct {
	stage   []byte
	vec     net.Buffers
	resp    wire.Frame
	scratch []byte
}

// goodFieldBuffers stages every frame out of the session's persistent
// buffers: nothing is re-created per iteration.
func (c *conn) goodFieldBuffers(w io.Writer, r io.Reader, frames int) error {
	for k := 0; k < frames; k++ {
		stage, err := wire.AppendFrameHeader(c.stage[:0], 1, 0, 1, uint32(k), 0)
		if err != nil {
			return err
		}
		c.stage = stage
		c.vec = append(c.vec[:0], stage)
		if err := wire.WriteFrameVec(w, &c.vec); err != nil {
			return err
		}
		if err := wire.ReadFrameInto(r, 0, &c.resp, &c.scratch); err != nil {
			return err
		}
	}
	return nil
}

// goodHoistedLocals declares the buffers once, before the loop: they
// persist across iterations, so reuse works.
func goodHoistedLocals(w io.Writer, r io.Reader, frames int) error {
	var stage []byte
	var vec net.Buffers
	var resp wire.Frame
	var scratch []byte
	for k := 0; k < frames; k++ {
		var err error
		stage, err = wire.AppendFrameHeader(stage[:0], 1, 0, 1, uint32(k), 0)
		if err != nil {
			return err
		}
		vec = append(vec[:0], stage)
		if err := wire.WriteFrameVec(w, &vec); err != nil {
			return err
		}
		if err := wire.ReadFrameInto(r, 0, &resp, &scratch); err != nil {
			return err
		}
	}
	return nil
}

// goodSingleShot stages one frame outside any loop: nothing to reuse,
// nothing to flag.
func goodSingleShot(w io.Writer) error {
	var vec net.Buffers
	buf, err := wire.AppendFrameHeader(nil, 1, 0, 1, 0, 0)
	if err != nil {
		return err
	}
	vec = append(vec, buf)
	return wire.WriteFrameVec(w, &vec)
}

// badLoopLocals re-creates every buffer on every iteration — each
// call allocates per frame, defeating the reusable API.
func badLoopLocals(w io.Writer, r io.Reader, frames int) error {
	for k := 0; k < frames; k++ {
		buf := make([]byte, 0, 64)
		stage, err := wire.AppendFrameHeader(buf, 1, 0, 1, uint32(k), 0) // want:bufreuse
		if err != nil {
			return err
		}
		vec := net.Buffers{stage}
		if err := wire.WriteFrameVec(w, &vec); err != nil { // want:bufreuse
			return err
		}
		var resp wire.Frame
		var scratch []byte
		if err := wire.ReadFrameInto(r, 0, &resp, &scratch); err != nil { // want:bufreuse (twice: frame and scratch)
			return err
		}
	}
	return nil
}

// badInlineFresh passes freshly built values directly in the argument
// position inside a range loop.
func badInlineFresh(w io.Writer, frames []uint32) error {
	for _, k := range frames {
		stage, err := wire.AppendFrameHeader(make([]byte, 0, 64), 1, 0, 1, k, 0) // want:bufreuse
		if err != nil {
			return err
		}
		if err := wire.WriteFrameVec(w, &net.Buffers{stage}); err != nil { // want:bufreuse
			return err
		}
	}
	return nil
}

// badNilScratch grows a fresh payload buffer per frame by passing nil.
func badNilScratch(r io.Reader, frames int) error {
	var resp wire.Frame
	for k := 0; k < frames; k++ {
		_ = k
		if err := wire.ReadFrameInto(r, 0, &resp, nil); err != nil { // want:bufreuse
			return err
		}
	}
	return nil
}

// waived shows the escape hatch: a reviewed per-iteration buffer.
func waived(w io.Writer, frames int) error {
	for k := 0; k < frames; k++ {
		vec := net.Buffers{[]byte{byte(k)}}
		//ckptlint:ignore bufreuse fixture demonstrates the waiver syntax
		if err := wire.WriteFrameVec(w, &vec); err != nil {
			return err
		}
	}
	return nil
}
