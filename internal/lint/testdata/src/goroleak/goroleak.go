// Package goroleak is a golden fixture for the goroleak check: every
// go statement must join via a WaitGroup Add/Done pair or a received
// join channel, or carry a reasoned //ckptlint:detached waiver.
package goroleak

import (
	"sync"
)

type worker struct {
	wg   sync.WaitGroup
	done chan struct{}
}

func (w *worker) leak() {
	go func() { // want:goroleak
		_ = 1 + 1
	}()
}

// spawnValue launches a function value: the body is unresolvable, so
// the spawn site must be tied down or waived.
func spawnValue(f func()) {
	go f() // want:goroleak
}

func (w *worker) waitGrouped() {
	w.wg.Add(1)
	go func() {
		defer w.wg.Done()
	}()
	w.wg.Wait()
}

func (w *worker) localWaitGroup() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
	}()
	wg.Wait()
}

func (w *worker) channelJoined() {
	done := make(chan struct{})
	go func() {
		close(done)
	}()
	<-done
}

// fieldJoined hands the join channel to a field that drain receives
// from: the Close/Stop-contract form.
func (w *worker) fieldJoined() {
	w.done = make(chan struct{})
	go w.run()
}

func (w *worker) run() { close(w.done) }

func (w *worker) drain() { <-w.done }

// assignedField stores a local channel into a field before spawning;
// the package-level receive in drain still counts as the join.
func (w *worker) assignedField() {
	done := make(chan struct{})
	w.done = done
	go func() {
		close(done)
	}()
}

func (w *worker) waived() {
	//ckptlint:detached best-effort cache warmup, bounded by process exit
	go func() {
		_ = 1 + 1
	}()
}

func (w *worker) badWaiver() {
	//ckptlint:detached
	go func() { // want:goroleak
		_ = 1 + 1
	}()
}
