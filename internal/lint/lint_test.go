package lint

import (
	"bufio"
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestFixtures runs the full suite over every golden package under
// testdata/src and compares the surviving diagnostics against the
// `// want:<check>` markers in the fixture sources: every marked line
// must produce that check's diagnostic, and nothing unmarked may fire.
func TestFixtures(t *testing.T) {
	dirs, err := filepath.Glob(filepath.Join("testdata", "src", "*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(dirs) == 0 {
		t.Fatal("no fixture packages under testdata/src")
	}
	for _, dir := range dirs {
		dir := dir
		t.Run(filepath.Base(dir), func(t *testing.T) {
			want := collectWantMarkers(t, dir)
			diags, err := Run(dir, Checks())
			if err != nil {
				t.Fatal(err)
			}
			got := map[string]bool{}
			for _, d := range diags {
				key := fmt.Sprintf("%s:%d:%s", filepath.Base(d.Pos.Filename), d.Pos.Line, d.Check)
				if got[key] {
					continue // collapse duplicates on the same line
				}
				got[key] = true
				if !want[key] {
					t.Errorf("unexpected diagnostic: %s", d)
				}
			}
			for key := range want {
				if !got[key] {
					t.Errorf("missing diagnostic: want %s", key)
				}
			}
		})
	}
}

// collectWantMarkers scans the fixture sources for `// want:<check>`
// markers, keyed file:line:check.
func collectWantMarkers(t *testing.T, dir string) map[string]bool {
	t.Helper()
	out := map[string]bool{}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := os.Open(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		sc := bufio.NewScanner(f)
		for line := 1; sc.Scan(); line++ {
			for _, field := range strings.Fields(sc.Text()) {
				check, ok := strings.CutPrefix(field, "want:")
				if !ok {
					continue
				}
				if !knownCheck(check) {
					t.Fatalf("%s:%d: marker names unknown check %q", e.Name(), line, check)
				}
				out[fmt.Sprintf("%s:%d:%s", e.Name(), line, check)] = true
			}
		}
		if err := sc.Err(); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}
	return out
}

func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{
		Pos:     token.Position{Filename: "internal/wire/wire.go", Line: 42},
		Check:   "wireerr",
		Message: "error from wire.DecodeList is discarded",
	}
	got := d.String()
	want := "internal/wire/wire.go:42: [wireerr] error from wire.DecodeList is discarded"
	if got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}

// TestWaiverHygiene asserts every waiver-style directive in the real
// tree carries its argument: //ckptlint:detached needs a reason,
// //ckptlint:locked and //ckptlint:guardedby need a mutex field, and
// //ckptlint:ignore needs a check name. The guardedby analyzer already
// turns stale or bare annotations into findings (see the guardedby
// fixture); this test is the backstop for directives the analyzers
// would otherwise silently honour, like a bare detached on a file the
// goroleak scope rule skips.
func TestWaiverHygiene(t *testing.T) {
	pkgs, err := Load(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	needsArg := []string{"detached", "locked", "guardedby", "ignore"}
	seen := 0
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
					for _, d := range needsArg {
						prefix := "ckptlint:" + d
						if text != prefix && !strings.HasPrefix(text, prefix+" ") {
							continue
						}
						seen++
						if strings.TrimSpace(strings.TrimPrefix(text, prefix)) == "" {
							t.Errorf("%s: //ckptlint:%s without an argument (reason, mutex, or check name)",
								pkg.Fset.Position(c.Pos()), d)
						}
					}
				}
			}
		}
	}
	if seen == 0 {
		t.Fatal("no ckptlint waiver directives found in the repo; the scan is broken")
	}
}

// TestRunOnRepo asserts the suite is clean over the repository itself —
// this is the same invocation `make lint` performs, so a regression in
// any annotated invariant fails this unit test too.
func TestRunOnRepo(t *testing.T) {
	diags, err := Run(filepath.Join("..", ".."), Checks())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}
