package lint

import (
	"bufio"
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestFixtures runs the full suite over every golden package under
// testdata/src and compares the surviving diagnostics against the
// `// want:<check>` markers in the fixture sources: every marked line
// must produce that check's diagnostic, and nothing unmarked may fire.
func TestFixtures(t *testing.T) {
	dirs, err := filepath.Glob(filepath.Join("testdata", "src", "*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(dirs) == 0 {
		t.Fatal("no fixture packages under testdata/src")
	}
	for _, dir := range dirs {
		dir := dir
		t.Run(filepath.Base(dir), func(t *testing.T) {
			want := collectWantMarkers(t, dir)
			diags, err := Run(dir, Checks())
			if err != nil {
				t.Fatal(err)
			}
			got := map[string]bool{}
			for _, d := range diags {
				key := fmt.Sprintf("%s:%d:%s", filepath.Base(d.Pos.Filename), d.Pos.Line, d.Check)
				if got[key] {
					continue // collapse duplicates on the same line
				}
				got[key] = true
				if !want[key] {
					t.Errorf("unexpected diagnostic: %s", d)
				}
			}
			for key := range want {
				if !got[key] {
					t.Errorf("missing diagnostic: want %s", key)
				}
			}
		})
	}
}

// collectWantMarkers scans the fixture sources for `// want:<check>`
// markers, keyed file:line:check.
func collectWantMarkers(t *testing.T, dir string) map[string]bool {
	t.Helper()
	out := map[string]bool{}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := os.Open(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		sc := bufio.NewScanner(f)
		for line := 1; sc.Scan(); line++ {
			for _, field := range strings.Fields(sc.Text()) {
				check, ok := strings.CutPrefix(field, "want:")
				if !ok {
					continue
				}
				if !knownCheck(check) {
					t.Fatalf("%s:%d: marker names unknown check %q", e.Name(), line, check)
				}
				out[fmt.Sprintf("%s:%d:%s", e.Name(), line, check)] = true
			}
		}
		if err := sc.Err(); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}
	return out
}

func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{
		Pos:     token.Position{Filename: "internal/wire/wire.go", Line: 42},
		Check:   "wireerr",
		Message: "error from wire.DecodeList is discarded",
	}
	got := d.String()
	want := "internal/wire/wire.go:42: [wireerr] error from wire.DecodeList is discarded"
	if got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}

// TestRunOnRepo asserts the suite is clean over the repository itself —
// this is the same invocation `make lint` performs, so a regression in
// any annotated invariant fails this unit test too.
func TestRunOnRepo(t *testing.T) {
	diags, err := Run(filepath.Join("..", ".."), Checks())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}
