package lint

import (
	"fmt"
	"go/ast"
	"go/token"
)

// noallocCheck enforces the //ckptlint:noalloc directive: annotated
// functions (and annotated stored kernel-body closures) are the
// steady-state hot path of Algorithm 1 and must not contain
// allocation-prone constructs. The check is syntactic — it flags the
// construct, not the escape analysis verdict — so it is deliberately
// conservative about what it reports:
//
//   - slice and map composite literals, and composite literals whose
//     address is taken (value struct literals on the stack pass);
//   - append to a slice declared fresh in the same function (appends
//     to parameters, struct fields and reslices of recycled buffers
//     pass — that is what "recycled" means here);
//   - closures created inside loops that capture the loop variable;
//   - fmt.* calls;
//   - string concatenation;
//   - explicit boxing conversions to any / interface{}.
//
// Branches guarded by an error check (`if err != nil { ... }`) are
// exempt: failure paths are allowed to allocate.
type noallocCheck struct{}

func (noallocCheck) Name() string { return "noalloc" }

func (noallocCheck) Doc() string {
	return "//ckptlint:noalloc functions must stay allocation-free on the steady path"
}

func (c noallocCheck) CheckPackage(pkg *Package) []Diagnostic {
	var diags []Diagnostic
	for _, f := range pkg.Files {
		for _, fb := range funcBodies(f) {
			if !hasDirective(fb.Doc, "noalloc") {
				continue
			}
			diags = append(diags, checkNoallocBody(pkg, fb.Name, fb.Type, fb.Body)...)
		}
		for _, al := range assignedFuncLits(pkg.Fset, f) {
			if !hasDirective(al.Doc, "noalloc") {
				continue
			}
			diags = append(diags, checkNoallocBody(pkg, al.Target, al.Lit.Type, al.Lit.Body)...)
		}
	}
	return diags
}

// checkNoallocBody walks one annotated function body.
func checkNoallocBody(pkg *Package, name string, ftype *ast.FuncType, body *ast.BlockStmt) []Diagnostic {
	var diags []Diagnostic
	report := func(pos token.Pos, format string, args ...any) {
		diags = append(diags, Diagnostic{
			Pos:     pkg.Fset.Position(pos),
			Check:   "noalloc",
			Message: fmt.Sprintf("%s: ", name) + fmt.Sprintf(format, args...),
		})
	}

	fresh := freshLocalSlices(body)
	params := map[string]bool{}
	if ftype != nil && ftype.Params != nil {
		for _, field := range ftype.Params.List {
			for _, n := range field.Names {
				params[n.Name] = true
			}
		}
	}

	walkStack(body, func(n ast.Node, stack []ast.Node) {
		if inErrGuard(n, stack, body) {
			return
		}
		switch x := n.(type) {
		case *ast.CompositeLit:
			switch t := x.Type.(type) {
			case *ast.ArrayType:
				if t.Len == nil {
					report(x.Pos(), "slice literal allocates")
				}
			case *ast.MapType:
				report(x.Pos(), "map literal allocates")
			default:
				// Escaping struct literal: &T{...}.
				if len(stack) > 0 {
					if u, ok := stack[len(stack)-1].(*ast.UnaryExpr); ok && u.Op == token.AND {
						report(x.Pos(), "escaping composite literal (&T{...}) allocates")
					}
				}
			}
		case *ast.CallExpr:
			if sel, ok := x.Fun.(*ast.SelectorExpr); ok {
				if id, ok := sel.X.(*ast.Ident); ok && id.Name == "fmt" {
					report(x.Pos(), "fmt.%s allocates", sel.Sel.Name)
				}
			}
			if id, ok := x.Fun.(*ast.Ident); ok {
				switch id.Name {
				case "append":
					if len(x.Args) > 0 {
						if arg, ok := x.Args[0].(*ast.Ident); ok && fresh[arg.Name] && !params[arg.Name] {
							report(x.Pos(), "append to function-local slice %q allocates; recycle a buffer", arg.Name)
						}
					}
				case "any":
					if len(x.Args) == 1 {
						report(x.Pos(), "conversion to any boxes its operand")
					}
				}
			}
			if _, ok := x.Fun.(*ast.InterfaceType); ok {
				report(x.Pos(), "conversion to interface type boxes its operand")
			}
		case *ast.BinaryExpr:
			if x.Op == token.ADD && (isStringish(x.X) || isStringish(x.Y)) {
				report(x.Pos(), "string concatenation allocates")
			}
		case *ast.FuncLit:
			if v := capturedLoopVar(x, stack); v != "" {
				report(x.Pos(), "closure captures loop variable %q (allocates per iteration)", v)
			}
		}
	})
	return diags
}

// freshLocalSlices collects identifiers declared in body as new slices
// or maps (`x := make(...)`, `x := []T{...}`, `var x []T`). Appending
// to these grows fresh storage every call, which the hot path forbids.
func freshLocalSlices(body *ast.BlockStmt) map[string]bool {
	out := map[string]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			if x.Tok != token.DEFINE || len(x.Lhs) != len(x.Rhs) {
				return true
			}
			for i, lhs := range x.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				switch rhs := x.Rhs[i].(type) {
				case *ast.CallExpr:
					if fid, ok := rhs.Fun.(*ast.Ident); ok && fid.Name == "make" {
						out[id.Name] = true
					}
				case *ast.CompositeLit:
					if at, ok := rhs.Type.(*ast.ArrayType); ok && at.Len == nil {
						out[id.Name] = true
					}
				}
			}
		case *ast.DeclStmt:
			gd, ok := x.Decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				return true
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Values) != 0 {
					continue
				}
				if at, ok := vs.Type.(*ast.ArrayType); ok && at.Len == nil {
					for _, n := range vs.Names {
						out[n.Name] = true
					}
				}
			}
		}
		return true
	})
	return out
}

// isStringish reports whether e is evidently a string expression:
// a string literal or a string(...) conversion.
func isStringish(e ast.Expr) bool {
	switch x := e.(type) {
	case *ast.BasicLit:
		return x.Kind == token.STRING
	case *ast.CallExpr:
		if id, ok := x.Fun.(*ast.Ident); ok {
			return id.Name == "string"
		}
	}
	return false
}

// inErrGuard reports whether n sits inside an if-branch guarded by an
// error check within body.
func inErrGuard(n ast.Node, stack []ast.Node, body *ast.BlockStmt) bool {
	for _, anc := range stack {
		ifs, ok := anc.(*ast.IfStmt)
		if !ok {
			continue
		}
		// The condition itself is part of the guard; only the branch
		// bodies are exempt.
		if ifs.Cond != nil && n.Pos() >= ifs.Body.Pos() && isErrGuard(ifs.Cond) {
			return true
		}
	}
	return false
}

// capturedLoopVar returns the name of a loop variable of an enclosing
// for/range statement referenced inside lit, or "".
func capturedLoopVar(lit *ast.FuncLit, stack []ast.Node) string {
	loopVars := map[string]bool{}
	for _, anc := range stack {
		switch s := anc.(type) {
		case *ast.RangeStmt:
			for _, e := range []ast.Expr{s.Key, s.Value} {
				if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
					loopVars[id.Name] = true
				}
			}
		case *ast.ForStmt:
			if as, ok := s.Init.(*ast.AssignStmt); ok {
				for _, lhs := range as.Lhs {
					if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" {
						loopVars[id.Name] = true
					}
				}
			}
		}
	}
	if len(loopVars) == 0 {
		return ""
	}
	captured := ""
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && loopVars[id.Name] && captured == "" {
			captured = id.Name
		}
		return captured == ""
	})
	return captured
}
