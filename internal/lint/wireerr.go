package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// wireerrCheck guards the untrusted decode surface:
//
//  1. Errors returned by wire.*/checkpoint.* Decode and Read functions
//     must not be discarded — no bare-statement calls and no `_` in the
//     error position of an assignment.
//  2. Narrowing length conversions `uint32(x)` / `uint64(x)` whose
//     operand mentions len(...) or a variable named like a length/count
//     must be preceded (lexically, same function) by a bounds
//     comparison of the same operand — the pattern that produced the
//     WriteFrame payload-length truncation.
//
// Like the rest of ckptlint this is syntax-level: a decode call is
// recognized by its package qualifier and name prefix, which matches
// every decode entry point wire and checkpoint export.
type wireerrCheck struct{}

func (wireerrCheck) Name() string { return "wireerr" }

func (wireerrCheck) Doc() string {
	return "decode errors must be handled; length narrowing needs a bounds check"
}

// decodePackages are selector bases whose Decode*/Read* results carry
// errors that must be handled.
var decodePackages = map[string]bool{"wire": true, "checkpoint": true}

func isDecodeCall(call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	name := sel.Sel.Name
	if !strings.HasPrefix(name, "Decode") && !strings.HasPrefix(name, "Read") {
		return "", false
	}
	if id, ok := sel.X.(*ast.Ident); ok && decodePackages[id.Name] {
		return id.Name + "." + name, true
	}
	return "", false
}

func (c wireerrCheck) CheckPackage(pkg *Package) []Diagnostic {
	var diags []Diagnostic
	for _, f := range pkg.Files {
		for _, fb := range funcBodies(f) {
			diags = append(diags, checkDiscardedErrors(pkg, fb.Name, fb.Body)...)
			diags = append(diags, checkLenConversions(pkg, fb.Name, fb.Body)...)
		}
	}
	return diags
}

// checkDiscardedErrors flags decode calls whose error result is dropped.
func checkDiscardedErrors(pkg *Package, fname string, body *ast.BlockStmt) []Diagnostic {
	var diags []Diagnostic
	report := func(pos token.Pos, call string) {
		diags = append(diags, Diagnostic{
			Pos:     pkg.Fset.Position(pos),
			Check:   "wireerr",
			Message: fmt.Sprintf("%s: error from %s is discarded", fname, call),
		})
	}
	walkStack(body, func(n ast.Node, stack []ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		name, ok := isDecodeCall(call)
		if !ok || len(stack) == 0 {
			return
		}
		switch p := stack[len(stack)-1].(type) {
		case *ast.ExprStmt:
			// Bare statement: every result (including the error) dropped.
			report(call.Pos(), name)
		case *ast.AssignStmt:
			// The error is by convention the last result; flag `_` in the
			// last LHS slot of a direct multi-assign from this call.
			if len(p.Rhs) == 1 && p.Rhs[0] == call && len(p.Lhs) > 0 {
				if id, ok := p.Lhs[len(p.Lhs)-1].(*ast.Ident); ok && id.Name == "_" {
					report(call.Pos(), name)
				}
			}
		case *ast.DeferStmt, *ast.GoStmt:
			report(call.Pos(), name)
		}
	})
	return diags
}

// checkLenConversions flags uint32(x)/uint64(x) length narrowing with
// no preceding bounds check on the same operand.
func checkLenConversions(pkg *Package, fname string, body *ast.BlockStmt) []Diagnostic {
	// Gather the source text of every comparison operand so a later
	// conversion of the same expression counts as checked. A comparison
	// of a converted form — `uint64(x) > max` — also counts for x, so
	// the idiomatic overflow guard satisfies the check.
	compared := map[string]token.Pos{} // expr text -> earliest comparison pos
	record := func(e ast.Expr, pos token.Pos) {
		s := exprString(pkg.Fset, e)
		if prev, ok := compared[s]; !ok || pos < prev {
			compared[s] = pos
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok {
			return true
		}
		switch be.Op {
		case token.LSS, token.GTR, token.LEQ, token.GEQ, token.EQL, token.NEQ:
			for _, side := range []ast.Expr{be.X, be.Y} {
				record(side, be.Pos())
				if call, ok := side.(*ast.CallExpr); ok && len(call.Args) == 1 {
					record(call.Args[0], be.Pos())
				}
			}
		}
		return true
	})

	lenLocals := lenDerivedLocals(body)

	var diags []Diagnostic
	walkStack(body, func(n ast.Node, stack []ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) != 1 {
			return
		}
		id, ok := call.Fun.(*ast.Ident)
		if !ok || (id.Name != "uint32" && id.Name != "uint64") {
			return
		}
		arg := call.Args[0]
		if !isLengthExpr(arg) {
			return
		}
		// uint64 cannot truncate an int; the only hazard is a negative
		// value, which a len()-derived operand cannot be.
		if id.Name == "uint64" && isLenDerived(arg, lenLocals) {
			return
		}
		// A conversion inside an if-condition is itself part of a check.
		for _, anc := range stack {
			if ifs, ok := anc.(*ast.IfStmt); ok && ifs.Cond != nil &&
				arg.Pos() >= ifs.Cond.Pos() && arg.End() <= ifs.Cond.End() {
				return
			}
		}
		s := exprString(pkg.Fset, arg)
		if p, ok := compared[s]; ok && p < call.Pos() {
			return
		}
		diags = append(diags, Diagnostic{
			Pos:   pkg.Fset.Position(call.Pos()),
			Check: "wireerr",
			Message: fmt.Sprintf("%s: %s(%s) narrows a length without a preceding bounds check on %s",
				fname, id.Name, s, s),
		})
	})
	return diags
}

// lenDerivedLocals collects local identifiers assigned directly from
// len(...) within body.
func lenDerivedLocals(body *ast.BlockStmt) map[string]bool {
	out := map[string]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			if call, ok := as.Rhs[i].(*ast.CallExpr); ok {
				if fid, ok := call.Fun.(*ast.Ident); ok && fid.Name == "len" {
					out[id.Name] = true
				}
			}
		}
		return true
	})
	return out
}

// isLenDerived reports whether e is len(...) itself or a local proven
// to hold a len(...) result.
func isLenDerived(e ast.Expr, lenLocals map[string]bool) bool {
	switch x := e.(type) {
	case *ast.CallExpr:
		if id, ok := x.Fun.(*ast.Ident); ok && id.Name == "len" {
			return true
		}
	case *ast.Ident:
		return lenLocals[x.Name]
	}
	return false
}

// isLengthExpr reports whether e is evidently a length: len(...) or an
// identifier/selector whose name suggests a size or count.
func isLengthExpr(e ast.Expr) bool {
	switch x := e.(type) {
	case *ast.CallExpr:
		if id, ok := x.Fun.(*ast.Ident); ok && id.Name == "len" {
			return true
		}
	case *ast.Ident:
		return lengthyName(x.Name)
	case *ast.SelectorExpr:
		return lengthyName(x.Sel.Name)
	}
	return false
}

func lengthyName(name string) bool {
	l := strings.ToLower(name)
	if l == "n" {
		return true
	}
	for _, frag := range []string{"len", "size", "count"} {
		if l == frag || strings.HasSuffix(l, frag) {
			return true
		}
	}
	return false
}
