package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"strconv"
	"strings"
)

// retryableCheck enforces the single-classification-point rule at the
// wire boundary: code that imports internal/wire must not hand-roll
// transient-vs-terminal decisions on transport errors. Matching a
// transport sentinel (io.EOF, io.ErrUnexpectedEOF, net.ErrClosed,
// os.ErrDeadlineExceeded) via errors.Is or direct comparison, or
// sniffing net.Error.Timeout(), scatters retry policy across callers
// and drifts the moment the wire package's taxonomy changes —
// wire.Transient and wire.IsClean are the shared helpers.
//
// The wire package itself is exempt (it defines the classification),
// and a deliberate exception is waived the usual way with
// //ckptlint:ignore retryable <reason>.
type retryableCheck struct{}

func (retryableCheck) Name() string { return "retryable" }

func (retryableCheck) Doc() string {
	return "wire-boundary errors must be classified via wire.Transient/wire.IsClean"
}

// transportSentinels are the pkg.Ident error values whose ad-hoc
// matching this check flags.
var transportSentinels = map[string]bool{
	"io.EOF":                 true,
	"io.ErrUnexpectedEOF":    true,
	"net.ErrClosed":          true,
	"os.ErrDeadlineExceeded": true,
}

func sentinelName(e ast.Expr) (string, bool) {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	name := id.Name + "." + sel.Sel.Name
	return name, transportSentinels[name]
}

// importsWire reports whether f imports a package path ending in
// internal/wire.
func importsWire(f *ast.File) bool {
	for _, imp := range f.Imports {
		path, err := strconv.Unquote(imp.Path.Value)
		if err != nil {
			continue
		}
		if path == "internal/wire" || strings.HasSuffix(path, "/internal/wire") {
			return true
		}
	}
	return false
}

func (c retryableCheck) CheckPackage(pkg *Package) []Diagnostic {
	if pkg.Name == "wire" {
		return nil
	}
	var diags []Diagnostic
	for _, f := range pkg.Files {
		if !importsWire(f) {
			continue
		}
		for _, fb := range funcBodies(f) {
			diags = append(diags, c.checkBody(pkg, fb.Name, fb.Body)...)
		}
	}
	return diags
}

func (c retryableCheck) checkBody(pkg *Package, fname string, body *ast.BlockStmt) []Diagnostic {
	var diags []Diagnostic
	report := func(pos token.Pos, what string) {
		diags = append(diags, Diagnostic{
			Pos:   pkg.Fset.Position(pos),
			Check: "retryable",
			Message: fmt.Sprintf("%s: ad-hoc classification of %s; route through wire.Transient or wire.IsClean",
				fname, what),
		})
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			sel, ok := x.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			// errors.Is(err, <transport sentinel>)
			if id, ok := sel.X.(*ast.Ident); ok && id.Name == "errors" && sel.Sel.Name == "Is" && len(x.Args) == 2 {
				if name, ok := sentinelName(x.Args[1]); ok {
					report(x.Pos(), "errors.Is(_, "+name+")")
				}
				return true
			}
			// <err>.Timeout() — sniffing net.Error directly.
			if sel.Sel.Name == "Timeout" && len(x.Args) == 0 {
				report(x.Pos(), exprString(pkg.Fset, x.Fun)+"()")
			}
		case *ast.BinaryExpr:
			// err == io.EOF and friends.
			if x.Op == token.EQL || x.Op == token.NEQ {
				for _, side := range []ast.Expr{x.X, x.Y} {
					if name, ok := sentinelName(side); ok {
						report(x.Pos(), "comparison with "+name)
					}
				}
			}
		}
		return true
	})
	return diags
}
