package lint

import (
	"fmt"
	"go/ast"
	"go/token"
)

// closecontractCheck enforces the resource-release contract on the
// repository's pooled types: any function that constructs one of the
// known closer-owning values must release it on every path — via
// `defer v.Close()` (or Shutdown), an explicit Close before each
// return, or by handing ownership off (returning the value, storing
// it into a field/slice/map, passing it to another call, or sending
// it on a channel).
//
// Returns that sit inside an error-guarded branch immediately after
// construction are treated as constructor-failure paths and exempt:
// when the constructor errored there is nothing to close.
type closecontractCheck struct{}

func (closecontractCheck) Name() string { return "closecontract" }

func (closecontractCheck) Doc() string {
	return "constructed pools/checkpointers/servers must be released on every path"
}

// closerConstructors maps "pkg.Func" (or bare "Func" for same-package
// calls) to the methods that release the constructed value. For the
// server, Serve owns the full lifecycle (it drains and closes every
// connection before returning), so calling it discharges the contract
// just as Shutdown would.
var closerConstructors = map[string][]string{
	"parallel.NewPool": {"Close"},
	"dedup.New":        {"Close"},
	"server.New":       {"Shutdown", "Serve"},
	"gpuckpt.New":      {"Close"},
	// A lifecycle.Manager owns a worker pool for its restore sweeps;
	// leaking one leaks goroutine-pool capacity on every compaction.
	"lifecycle.New": {"Close"},
	// A blockstore.Store owns an append-mode journal handle; leaking
	// one keeps the journal open past the store's life and blocks a
	// clean reopen of the same directory.
	"blockstore.New":  {"Close"},
	"blockstore.Open": {"Close"},
	// A connpool.Pool owns up to MaxActive sockets and a reaper
	// goroutine; leaking one leaks both.
	"connpool.New": {"Close"},
	// A follower.Follower owns a connection pool and the mirror's
	// FileStore; Promote hands serving state to the caller but the
	// resources stay owned until Close.
	"follower.New": {"Close"},
	// Same-package spelling so the check also fires inside the owning
	// package itself (and inside fixtures).
	"NewPool": {"Close"},
}

func (c closecontractCheck) CheckPackage(pkg *Package) []Diagnostic {
	var diags []Diagnostic
	for _, f := range pkg.Files {
		for _, fb := range funcBodies(f) {
			diags = append(diags, checkCloseBody(pkg, fb.Name, fb.Body)...)
		}
	}
	return diags
}

// constructedVal is one identifier bound to a fresh closer value.
type constructedVal struct {
	name    string
	methods []string // accepted release methods
	pos     token.Pos
	ctor    string
	escaped bool
	closed  bool // released on at least one path AND no uncovered return
}

func (v *constructedVal) releases(name string) bool {
	for _, m := range v.methods {
		if m == name {
			return true
		}
	}
	return false
}

func checkCloseBody(pkg *Package, fname string, body *ast.BlockStmt) []Diagnostic {
	var vals []*constructedVal

	// Pass 1: find `v, err := pkg.Ctor(...)` / `v := pkg.Ctor(...)`.
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return true
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return true
		}
		ctor := callName(call)
		methods, ok := closerConstructors[ctor]
		if !ok {
			return true
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok || id.Name == "_" {
			return true
		}
		vals = append(vals, &constructedVal{name: id.Name, methods: methods, pos: as.Pos(), ctor: ctor})
		return true
	})
	if len(vals) == 0 {
		return nil
	}

	byName := map[string]*constructedVal{}
	for _, v := range vals {
		byName[v.name] = v
	}

	// Pass 2: classify every later use of each constructed identifier.
	type releaseSite struct {
		val      *constructedVal
		deferred bool
		pos      token.Pos
	}
	var releases []releaseSite
	walkStack(body, func(n ast.Node, stack []ast.Node) {
		id, ok := n.(*ast.Ident)
		if !ok {
			return
		}
		v, ok := byName[id.Name]
		if !ok || id.Pos() <= v.pos {
			return
		}
		if len(stack) == 0 {
			return
		}
		parent := stack[len(stack)-1]
		switch p := parent.(type) {
		case *ast.SelectorExpr:
			if p.X != id {
				return
			}
			if v.releases(p.Sel.Name) {
				// v.Close() or v.Shutdown(...) — possibly deferred.
				if len(stack) >= 2 {
					if call, ok := stack[len(stack)-2].(*ast.CallExpr); ok && call.Fun == p {
						isDefer := false
						for _, anc := range stack {
							if ds, ok := anc.(*ast.DeferStmt); ok && ds.Call == call {
								isDefer = true
							}
						}
						releases = append(releases, releaseSite{val: v, deferred: isDefer, pos: call.Pos()})
					}
				}
			}
		case *ast.ReturnStmt:
			v.escaped = true // ownership transferred to the caller
		case *ast.CallExpr:
			// Passed as an argument (not the Fun) → handed off.
			for _, arg := range p.Args {
				if arg == id {
					v.escaped = true
				}
			}
		case *ast.CompositeLit, *ast.KeyValueExpr, *ast.SendStmt, *ast.IndexExpr:
			v.escaped = true
		case *ast.UnaryExpr:
			if p.Op == token.AND {
				v.escaped = true
			}
		case *ast.AssignStmt:
			// Stored somewhere (field, map entry, another variable) on
			// the RHS → handed off. `_ = v` is not a hand-off.
			for i, rhs := range p.Rhs {
				if rhs != id {
					continue
				}
				if i < len(p.Lhs) {
					if lid, ok := p.Lhs[i].(*ast.Ident); ok && lid.Name == "_" {
						continue
					}
				}
				v.escaped = true
			}
		}
	})

	// Determine, per value, whether a deferred release exists, and
	// whether each return statement after construction is covered by an
	// explicit release that precedes it.
	for _, v := range vals {
		var deferAt token.Pos = token.NoPos
		var explicit []token.Pos
		for _, r := range releases {
			if r.val != v {
				continue
			}
			if r.deferred {
				if deferAt == token.NoPos || r.pos < deferAt {
					deferAt = r.pos
				}
			} else {
				explicit = append(explicit, r.pos)
			}
		}
		if v.escaped {
			v.closed = true
			continue
		}
		if deferAt != token.NoPos {
			v.closed = true
			continue
		}
		if len(explicit) == 0 {
			continue // never released at all
		}
		// Explicit releases only: every return after construction must
		// have a release before it, unless it is an error-guard return.
		ok := true
		walkStack(body, func(n ast.Node, stack []ast.Node) {
			ret, isRet := n.(*ast.ReturnStmt)
			if !isRet || ret.Pos() <= v.pos {
				return
			}
			if inErrGuard(ret, stack, body) {
				return
			}
			covered := false
			for _, p := range explicit {
				if p < ret.Pos() {
					covered = true
				}
			}
			if !covered {
				ok = false
			}
		})
		v.closed = ok
	}

	var diags []Diagnostic
	for _, v := range vals {
		if v.closed {
			continue
		}
		diags = append(diags, Diagnostic{
			Pos:   pkg.Fset.Position(v.pos),
			Check: "closecontract",
			Message: fmt.Sprintf("%s: %q constructed by %s is not %s'd on all paths (defer %s.%s(), release before each return, or hand ownership off)",
				fname, v.name, v.ctor, v.methods[0], v.name, v.methods[0]),
		})
	}
	return diags
}

// callName renders a call target as "pkg.Func" or "Func".
func callName(call *ast.CallExpr) string {
	switch f := call.Fun.(type) {
	case *ast.Ident:
		return f.Name
	case *ast.SelectorExpr:
		if id, ok := f.X.(*ast.Ident); ok {
			return id.Name + "." + f.Sel.Name
		}
		return "." + f.Sel.Name
	}
	return ""
}
