package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"strconv"
	"strings"
)

// bufreuseCheck enforces the reuse contract of the zero-copy wire
// APIs. wire.AppendFrameHeader, wire.ReadFrameInto and
// wire.WriteFrameVec exist so a connection can stage, send and receive
// frames out of per-connection buffers that persist across frames;
// handing them a buffer that is re-created on every loop iteration
// silently reintroduces the per-frame allocation the API was built to
// remove — the code still compiles, still passes, and still burns an
// allocation per frame, which is why a linter has to catch it.
//
// The check fires when a reuse-oriented call inside a for/range loop
// receives a buffer argument that is freshly created per iteration:
// an identifier declared inside that same innermost loop, or an
// inline make(...) / composite literal / nil in the argument
// position. Buffers reaching the call from outside the loop — struct
// fields (the per-connection session), parameters, locals declared
// before the loop — pass: they persist across iterations, which is
// the whole point.
//
// Calls outside any loop are exempt: a single-shot frame has no reuse
// to get wrong.
type bufreuseCheck struct{}

func (bufreuseCheck) Name() string { return "bufreuse" }

func (bufreuseCheck) Doc() string {
	return "reusable wire frame APIs must be fed buffers that persist across loop iterations"
}

// reuseArgs maps each reuse-oriented wire function to the indices of
// its buffer arguments.
var reuseArgs = map[string][]int{
	"AppendFrameHeader": {0},    // buf
	"ReadFrameInto":     {2, 3}, // *Frame, *scratch
	"WriteFrameVec":     {1},    // *net.Buffers
}

func (c bufreuseCheck) CheckPackage(pkg *Package) []Diagnostic {
	var diags []Diagnostic
	for _, f := range pkg.Files {
		alias := wireImportName(f)
		if alias == "" {
			continue
		}
		walkStack(f, func(n ast.Node, stack []ast.Node) {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return
			}
			base, ok := sel.X.(*ast.Ident)
			if !ok || base.Name != alias {
				return
			}
			args, ok := reuseArgs[sel.Sel.Name]
			if !ok {
				return
			}
			loop := innermostLoopBody(stack)
			if loop == nil {
				return
			}
			perIter := localsDeclaredIn(loop)
			for _, idx := range args {
				if idx >= len(call.Args) {
					continue
				}
				arg := call.Args[idx]
				switch verdict := freshPerIteration(arg, perIter); verdict {
				case "":
				default:
					diags = append(diags, Diagnostic{
						Pos:   pkg.Fset.Position(arg.Pos()),
						Check: "bufreuse",
						Message: fmt.Sprintf("%s.%s buffer %s; hoist it out of the loop or use a per-connection field",
							alias, sel.Sel.Name, verdict),
					})
				}
			}
		})
	}
	return diags
}

// wireImportName returns the local name under which f imports the
// internal/wire package, or "".
func wireImportName(f *ast.File) string {
	for _, imp := range f.Imports {
		path, err := strconv.Unquote(imp.Path.Value)
		if err != nil {
			continue
		}
		if path != "internal/wire" && !strings.HasSuffix(path, "/internal/wire") {
			continue
		}
		if imp.Name != nil {
			return imp.Name.Name
		}
		return "wire"
	}
	return ""
}

// innermostLoopBody returns the body of the innermost enclosing
// for/range statement on the ancestor stack, or nil.
func innermostLoopBody(stack []ast.Node) *ast.BlockStmt {
	for i := len(stack) - 1; i >= 0; i-- {
		switch s := stack[i].(type) {
		case *ast.ForStmt:
			return s.Body
		case *ast.RangeStmt:
			return s.Body
		}
	}
	return nil
}

// localsDeclaredIn collects every identifier declared inside body via
// := or a var declaration — values that are re-created on each
// iteration when body is a loop body.
func localsDeclaredIn(body *ast.BlockStmt) map[string]bool {
	out := map[string]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			if x.Tok != token.DEFINE {
				return true
			}
			for _, lhs := range x.Lhs {
				if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" {
					out[id.Name] = true
				}
			}
		case *ast.GenDecl:
			if x.Tok != token.VAR {
				return true
			}
			for _, spec := range x.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, name := range vs.Names {
						if name.Name != "_" {
							out[name.Name] = true
						}
					}
				}
			}
		}
		return true
	})
	return out
}

// freshPerIteration classifies a buffer argument: it returns a
// human-readable reason when the argument is created fresh on every
// iteration of the enclosing loop, and "" when it persists. perIter
// holds the identifiers declared inside the loop body.
func freshPerIteration(arg ast.Expr, perIter map[string]bool) string {
	switch x := arg.(type) {
	case *ast.ParenExpr:
		return freshPerIteration(x.X, perIter)
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			if _, ok := x.X.(*ast.CompositeLit); ok {
				return "is a fresh composite literal every iteration"
			}
			return freshPerIteration(x.X, perIter)
		}
	case *ast.SliceExpr:
		return freshPerIteration(x.X, perIter)
	case *ast.IndexExpr:
		return freshPerIteration(x.X, perIter)
	case *ast.CompositeLit:
		return "is a fresh composite literal every iteration"
	case *ast.CallExpr:
		if id, ok := x.Fun.(*ast.Ident); ok && (id.Name == "make" || id.Name == "new") {
			return fmt.Sprintf("is %s'd fresh every iteration", id.Name)
		}
	case *ast.Ident:
		if x.Name == "nil" {
			return "is nil (a fresh allocation every iteration); reuse a scratch buffer"
		}
		if perIter[x.Name] {
			return fmt.Sprintf("%q is declared inside the loop, so it is re-created every iteration", x.Name)
		}
	}
	return ""
}
