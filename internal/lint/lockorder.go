package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// lockorderCheck is a static deadlock detector over the annotated
// mutexes. Nodes of the lock graph are the mutex fields named by
// //ckptlint:guardedby and //ckptlint:locked annotations; an edge
// A -> B means "somewhere, B is acquired while A is held" — either by
// a direct Lock/RLock in the same body, or transitively: the function
// calls (with A held) something that acquires B anywhere down the call
// graph. A cycle in that graph is a lock-order inversion two
// goroutines can interleave into a deadlock, so every edge that lies
// on a cycle is reported at its acquisition (or call) site.
//
// The held model matches guardedby's: positional within one body, an
// explicit (non-deferred) Unlock releases, `defer Unlock` holds to the
// end of the function, and a //ckptlint:locked <mu> annotation seeds
// the entry-held set. Function literals are analyzed as their own
// anonymous roots with nothing held (a go-literal runs on another
// goroutine; a stored callback runs who-knows-where), which
// under-approximates: the analyzer misses orderings through callbacks
// invoked under a lock, and never reports a false cycle for them.
type lockorderCheck struct{}

func (lockorderCheck) Name() string { return "lockorder" }

func (lockorderCheck) Doc() string {
	return "acquisition graph over annotated mutexes must be acyclic (static deadlock detector)"
}

const (
	evLock = iota
	evUnlock
	evCall
)

type lockEvent struct {
	kind   int
	expr   string      // mutex operand source form ("s.mu"), lock/unlock only
	mu     *types.Var  // annotated mutex field, lock/unlock only
	callee *types.Func // call events only
	pos    token.Pos
}

// lockSummary is the per-function view the fixpoint runs over.
type lockSummary struct {
	pkg      *Package
	name     string
	entry    *lockedSpec
	events   []lockEvent
	acquires map[*types.Var]bool
}

type lockEdge struct {
	from, to *types.Var
	pos      token.Pos
	detail   string
}

func (c lockorderCheck) CheckRepo(r *Repo) []Diagnostic {
	// Node set and labels come from the same annotations guardedby
	// consumes (hygiene diagnostics are guardedby's job, not repeated
	// here).
	guards := make(map[*types.Var]guardSpec)
	locked := make(map[*types.Func]lockedSpec)
	for _, pkg := range r.Pkgs {
		collectGuardSpecs(pkg, guards)
		collectLockedSpecs(pkg, locked)
	}
	nodes := make(map[*types.Var]string)
	for _, g := range guards {
		nodes[g.mu] = g.mu.Pkg().Name() + "." + g.structName + "." + g.mu.Name()
	}
	for _, l := range locked {
		nodes[l.mu] = l.mu.Pkg().Name() + "." + l.structName + "." + l.mu.Name()
	}
	if len(nodes) == 0 {
		return nil
	}

	// Summaries: every declared function, plus every function literal
	// as an anonymous root (edges only — literals never propagate their
	// acquires, since their call sites are not resolvable).
	var summaries []*lockSummary
	byFunc := make(map[*types.Func]*lockSummary)
	for fn, fd := range r.Funcs() {
		s := buildLockSummary(fd.Pkg, fd.Decl.Name.Name, fd.Decl.Body, nodes)
		if spec, ok := locked[fn]; ok {
			s.entry = &spec
		}
		summaries = append(summaries, s)
		byFunc[fn] = s
	}
	for _, pkg := range r.Pkgs {
		if pkg.Info == nil {
			continue
		}
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					summaries = append(summaries, buildLockSummary(pkg, "func literal", lit.Body, nodes))
				}
				return true
			})
		}
	}

	// Fixpoint: acquires(F) = direct locks ∪ acquires of every resolved
	// callee. Terminates because the sets only grow within a finite
	// node universe.
	for changed := true; changed; {
		changed = false
		for _, s := range summaries {
			for _, e := range s.events {
				if e.kind != evCall {
					continue
				}
				callee, ok := byFunc[e.callee]
				if !ok {
					continue
				}
				for mu := range callee.acquires {
					if !s.acquires[mu] {
						s.acquires[mu] = true
						changed = true
					}
				}
			}
		}
	}

	// Edge generation: replay each summary with a positional held set.
	type edgeKey struct{ from, to *types.Var }
	edges := make(map[edgeKey]lockEdge)
	addEdge := func(e lockEdge) {
		k := edgeKey{e.from, e.to}
		if old, ok := edges[k]; !ok || e.pos < old.pos {
			edges[k] = e
		}
	}
	type heldKey struct {
		expr string
		mu   *types.Var
	}
	for _, s := range summaries {
		held := make(map[heldKey]int)
		heldList := func() []heldKey {
			var out []heldKey
			for k, n := range held {
				if n > 0 {
					out = append(out, k)
				}
			}
			sort.Slice(out, func(i, j int) bool { return out[i].expr < out[j].expr })
			return out
		}
		if s.entry != nil {
			held[heldKey{s.entry.recvName + "." + s.entry.muName, s.entry.mu}] = 1
		}
		for _, e := range s.events {
			switch e.kind {
			case evLock:
				for _, h := range heldList() {
					addEdge(lockEdge{
						from: h.mu, to: e.mu, pos: e.pos,
						detail: fmt.Sprintf("%s acquires %s while holding %s", s.name, e.expr, h.expr),
					})
				}
				held[heldKey{e.expr, e.mu}]++
			case evUnlock:
				k := heldKey{e.expr, e.mu}
				if held[k] > 0 {
					held[k]--
				}
			case evCall:
				callee, ok := byFunc[e.callee]
				if !ok {
					continue
				}
				for _, h := range heldList() {
					for mu := range callee.acquires {
						addEdge(lockEdge{
							from: h.mu, to: mu, pos: e.pos,
							detail: fmt.Sprintf("%s calls %s (which acquires %s) while holding %s", s.name, e.callee.Name(), nodes[mu], h.expr),
						})
					}
				}
			}
		}
	}

	// Cycle detection: report every edge whose target can reach its
	// source back through the graph.
	adj := make(map[*types.Var][]*types.Var)
	for k := range edges {
		adj[k.from] = append(adj[k.from], k.to)
	}
	reaches := func(from, to *types.Var) [](*types.Var) {
		// BFS returning the path from `from` to `to`, nil if unreachable.
		prev := map[*types.Var]*types.Var{from: nil}
		queue := []*types.Var{from}
		for len(queue) > 0 {
			n := queue[0]
			queue = queue[1:]
			if n == to {
				var path []*types.Var
				for at := n; ; at = prev[at] {
					path = append([]*types.Var{at}, path...)
					if at == from && len(path) > 1 || prev[at] == nil {
						break
					}
				}
				return path
			}
			next := append([]*types.Var(nil), adj[n]...)
			sort.Slice(next, func(i, j int) bool { return nodes[next[i]] < nodes[next[j]] })
			for _, m := range next {
				if _, seen := prev[m]; !seen {
					prev[m] = n
					queue = append(queue, m)
				}
			}
		}
		return nil
	}

	var diags []Diagnostic
	for k, e := range edges {
		if k.from == k.to {
			diags = append(diags, Diagnostic{
				Pos:   r.Fset.Position(e.pos),
				Check: "lockorder",
				Message: fmt.Sprintf("self-deadlock: %s is acquired while already held (%s)",
					nodes[k.to], e.detail),
			})
			continue
		}
		path := reaches(k.to, k.from)
		if path == nil {
			continue
		}
		// path runs k.to ... k.from, so prefixing k.from renders the
		// full cycle A -> B -> ... -> A.
		cycle := nodes[k.from]
		for _, n := range path {
			cycle += " -> " + nodes[n]
		}
		diags = append(diags, Diagnostic{
			Pos:   r.Fset.Position(e.pos),
			Check: "lockorder",
			Message: fmt.Sprintf("lock order inversion: %s; cycle %s",
				e.detail, cycle),
		})
	}
	return diags
}

// buildLockSummary extracts the lock/unlock/call event stream of one
// body, skipping nested function literals (they are separate roots).
func buildLockSummary(pkg *Package, name string, body *ast.BlockStmt, nodes map[*types.Var]string) *lockSummary {
	s := &lockSummary{pkg: pkg, name: name, acquires: make(map[*types.Var]bool)}
	if pkg.Info == nil {
		return s
	}
	// Deferred calls: a deferred Unlock does not release positionally
	// (the lock is held to the end of the function).
	deferred := make(map[*ast.CallExpr]bool)
	inspectSkipLits(body, func(n ast.Node) bool {
		if ds, ok := n.(*ast.DeferStmt); ok {
			deferred[ds.Call] = true
		}
		return true
	})
	inspectSkipLits(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			switch sel.Sel.Name {
			case "Lock", "RLock", "Unlock", "RUnlock":
				mu := varObjOf(pkg.Info, sel.X)
				if mu != nil {
					if _, isNode := nodes[mu]; isNode {
						kind := evLock
						if sel.Sel.Name == "Unlock" || sel.Sel.Name == "RUnlock" {
							if deferred[call] {
								return true // defer Unlock: held to end
							}
							kind = evUnlock
						}
						s.events = append(s.events, lockEvent{
							kind: kind,
							expr: exprString(pkg.Fset, sel.X),
							mu:   mu,
							pos:  call.Pos(),
						})
						return true
					}
				}
			}
		}
		if callee := funcObjOf(pkg.Info, call.Fun); callee != nil {
			s.events = append(s.events, lockEvent{kind: evCall, callee: callee, pos: call.Pos()})
		}
		return true
	})
	sort.SliceStable(s.events, func(i, j int) bool { return s.events[i].pos < s.events[j].pos })
	for _, e := range s.events {
		if e.kind == evLock {
			s.acquires[e.mu] = true
		}
	}
	return s
}

// inspectSkipLits is ast.Inspect that does not descend into function
// literals below the root node.
func inspectSkipLits(root ast.Node, fn func(ast.Node) bool) {
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			return true
		}
		if _, ok := n.(*ast.FuncLit); ok && n != root {
			return false
		}
		return fn(n)
	})
}
