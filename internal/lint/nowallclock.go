package lint

import (
	"fmt"
	"go/ast"
)

// nowallclockCheck forbids time.Now inside internal/device: the device
// cost model is a deterministic simulation whose clock advances only
// by modeled transfer/hash durations, and a wall-clock read anywhere
// in those paths silently turns reproducible experiment output into
// machine-dependent output.
//
// A function that legitimately needs the wall clock (none do today)
// can be tagged //ckptlint:allowwallclock.
type nowallclockCheck struct{}

func (nowallclockCheck) Name() string { return "nowallclock" }

func (nowallclockCheck) Doc() string {
	return "time.Now is forbidden in the simulated-clock device packages"
}

// wallclockDirs are the module-relative package directories the check
// applies to. Fixture packages opt in by living in a directory whose
// base name matches.
var wallclockDirs = map[string]bool{
	"internal/device": true,
	"nowallclock":     true, // fixture packages under testdata/src/nowallclock
}

func (c nowallclockCheck) CheckPackage(pkg *Package) []Diagnostic {
	base := pkg.Rel
	if !wallclockDirs[base] && !wallclockDirs[pkg.Name] {
		return nil
	}
	var diags []Diagnostic
	for _, f := range pkg.Files {
		for _, fb := range funcBodies(f) {
			if hasDirective(fb.Doc, "allowwallclock") {
				continue
			}
			fname := fb.Name
			ast.Inspect(fb.Body, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				if id, ok := sel.X.(*ast.Ident); ok && id.Name == "time" && sel.Sel.Name == "Now" {
					diags = append(diags, Diagnostic{
						Pos:     pkg.Fset.Position(sel.Pos()),
						Check:   "nowallclock",
						Message: fmt.Sprintf("%s: time.Now is forbidden in the device cost model (clock must stay deterministic)", fname),
					})
				}
				return true
			})
		}
	}
	return diags
}
