package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"
)

// goroleakCheck requires every `go` statement under internal/... to be
// tied to a lifecycle, so background workers (compaction loop, pool
// reaper, dedup backend, stream drain) provably join on shutdown. A
// goroutine is considered tracked when:
//
//  1. its body calls Done on a sync.WaitGroup that the spawning
//     function calls Add on (same WaitGroup object, resolved through
//     the type checker — fields and captured locals both work);
//  2. its body closes or sends on a join channel that is received
//     from either later in the spawning function, or — when the
//     channel is (or is assigned to) a struct field — anywhere in the
//     package. The field form is the Close/Stop contract: the
//     closecontract check independently guarantees the owning type's
//     release method runs on every path, and that release method is
//     where the receive lives (connpool.Close draining reapDone,
//     dedup.waitBackend draining backDone);
//  3. it carries an explicit //ckptlint:detached <reason> waiver on
//     the `go` line or the line above. A detached waiver without a
//     reason is itself a finding — undocumented fire-and-forget is
//     exactly what the check exists to remove.
//
// `go` statements whose target cannot be resolved to a body in the
// repo (interface methods, stored function values) cannot be verified
// and are reported; tie them to a WaitGroup at the spawn site or waive
// them.
type goroleakCheck struct{}

func (goroleakCheck) Name() string { return "goroleak" }

func (goroleakCheck) Doc() string {
	return "every go statement in internal/... joins via WaitGroup, join channel, or ckptlint:detached waiver"
}

func (c goroleakCheck) CheckRepo(r *Repo) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range r.Pkgs {
		if !goroleakInScope(r, pkg) || pkg.Info == nil {
			continue
		}
		fieldRecv := fieldReceives(pkg)
		detached := detachedWaivers(pkg)
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				diags = append(diags, checkGoStmts(r, pkg, fd, fieldRecv, detached)...)
			}
		}
	}
	return diags
}

// goroleakInScope limits the check to internal/... of the module; when
// the root has no go.mod (fixture packages) everything is in scope.
func goroleakInScope(r *Repo, pkg *Package) bool {
	if r.ModulePath == "" {
		return true
	}
	rel := filepath.ToSlash(pkg.Rel)
	return rel == "internal" || strings.HasPrefix(rel, "internal/")
}

// fieldReceives collects every channel-typed struct field the package
// receives from somewhere (Close/Stop contract joins).
func fieldReceives(pkg *Package) map[*types.Var]bool {
	out := make(map[*types.Var]bool)
	record := func(e ast.Expr) {
		if sel, ok := ast.Unparen(e).(*ast.SelectorExpr); ok {
			if v := fieldObjOf(pkg.Info, sel); v != nil {
				out[v] = true
			}
		}
	}
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.UnaryExpr:
				if x.Op == token.ARROW {
					record(x.X)
				}
			case *ast.RangeStmt:
				if tv, ok := pkg.Info.Types[x.X]; ok {
					if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
						record(x.X)
					}
				}
			}
			return true
		})
	}
	return out
}

// detachedWaivers maps file:line to the //ckptlint:detached reason
// ("" when the directive has no reason). Like ignore directives, a
// waiver covers its own line and the line below.
type waiverKey struct {
	file string
	line int
}

func detachedWaivers(pkg *Package) map[waiverKey]string {
	out := make(map[waiverKey]string)
	for i, f := range pkg.Files {
		name := pkg.FileNames[i]
		for _, cg := range f.Comments {
			for _, cmt := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(cmt.Text, "//"))
				if text != "ckptlint:detached" && !strings.HasPrefix(text, "ckptlint:detached ") {
					continue
				}
				reason := strings.TrimSpace(strings.TrimPrefix(text, "ckptlint:detached"))
				line := pkg.Fset.Position(cmt.Pos()).Line
				out[waiverKey{name, line}] = reason
				out[waiverKey{name, line + 1}] = reason
			}
		}
	}
	return out
}

// checkGoStmts verifies every go statement inside one declaration.
func checkGoStmts(r *Repo, pkg *Package, fd *ast.FuncDecl, fieldRecv map[*types.Var]bool, detached map[waiverKey]string) []Diagnostic {
	var diags []Diagnostic
	walkStack(fd.Body, func(n ast.Node, stack []ast.Node) {
		g, ok := n.(*ast.GoStmt)
		if !ok {
			return
		}
		// The spawner is the innermost enclosing function body: a
		// nested literal if any, else the declaration itself.
		spawner := fd.Body
		for i := len(stack) - 1; i >= 0; i-- {
			if lit, ok := stack[i].(*ast.FuncLit); ok {
				spawner = lit.Body
				break
			}
		}
		pos := pkg.Fset.Position(g.Pos())
		if reason, ok := detached[waiverKey{pos.Filename, pos.Line}]; ok {
			if reason == "" {
				diags = append(diags, Diagnostic{
					Pos:     pos,
					Check:   "goroleak",
					Message: fmt.Sprintf("%s: ckptlint:detached waiver needs a reason", fd.Name.Name),
				})
			}
			return
		}

		// Resolve the goroutine body.
		var body *ast.BlockStmt
		var bodyInfo *types.Info = pkg.Info
		switch fun := g.Call.Fun.(type) {
		case *ast.FuncLit:
			body = fun.Body
		default:
			if callee := funcObjOf(pkg.Info, fun); callee != nil {
				if fdecl, ok := r.Funcs()[callee]; ok {
					body = fdecl.Decl.Body
					bodyInfo = fdecl.Pkg.Info
				}
			}
		}
		if body == nil {
			diags = append(diags, Diagnostic{
				Pos:   pos,
				Check: "goroleak",
				Message: fmt.Sprintf("%s: goroutine target is not a resolvable function; tie it to a WaitGroup or waive with //ckptlint:detached <reason>",
					fd.Name.Name),
			})
			return
		}
		if goroutineJoins(pkg, spawner, g, body, bodyInfo, fieldRecv) {
			return
		}
		diags = append(diags, Diagnostic{
			Pos:   pos,
			Check: "goroleak",
			Message: fmt.Sprintf("%s: go statement is not tied to a lifecycle (WaitGroup Add/Done, a join channel received on shutdown, or //ckptlint:detached <reason>)",
				fd.Name.Name),
		})
	})
	return diags
}

// goroutineJoins reports whether the goroutine running body is joined
// by the spawner or the package.
func goroutineJoins(pkg *Package, spawner *ast.BlockStmt, g *ast.GoStmt, body *ast.BlockStmt, bodyInfo *types.Info, fieldRecv map[*types.Var]bool) bool {
	// Pattern 1: WaitGroup Done in the body, Add on the same object in
	// the spawner.
	for _, wg := range waitGroupDones(bodyInfo, body) {
		if waitGroupAdds(pkg.Info, spawner, wg) {
			return true
		}
	}
	// Pattern 2: the body closes or sends on a channel…
	for _, ch := range signalChannels(bodyInfo, body) {
		objs := map[*types.Var]bool{ch: true}
		// …possibly a local later stored into a field (d.backDone =
		// done before the go statement)…
		ast.Inspect(spawner, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for i, rhs := range as.Rhs {
				if varObjOf(pkg.Info, rhs) != ch || i >= len(as.Lhs) {
					continue
				}
				if sel, ok := as.Lhs[i].(*ast.SelectorExpr); ok {
					if fv := fieldObjOf(pkg.Info, sel); fv != nil {
						objs[fv] = true
					}
				}
			}
			return true
		})
		// …that the spawner receives from after the go statement, or
		// that is a struct field some function of the package drains.
		if spawnerReceives(pkg.Info, spawner, g.Pos(), objs) {
			return true
		}
		for obj := range objs {
			if fieldRecv[obj] {
				return true
			}
		}
	}
	return false
}

// waitGroupDones returns the WaitGroup objects body calls Done on.
func waitGroupDones(info *types.Info, body *ast.BlockStmt) []*types.Var {
	var out []*types.Var
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Done" {
			return true
		}
		if v := varObjOf(info, sel.X); v != nil && isWaitGroup(v.Type()) {
			out = append(out, v)
		}
		return true
	})
	return out
}

// waitGroupAdds reports whether spawner calls Add on exactly wg.
func waitGroupAdds(info *types.Info, spawner *ast.BlockStmt, wg *types.Var) bool {
	found := false
	ast.Inspect(spawner, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Add" {
			return true
		}
		if varObjOf(info, sel.X) == wg {
			found = true
		}
		return !found
	})
	return found
}

func isWaitGroup(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "WaitGroup" && obj.Pkg() != nil && obj.Pkg().Path() == "sync"
}

// signalChannels returns the channel objects body closes or sends on.
func signalChannels(info *types.Info, body *ast.BlockStmt) []*types.Var {
	var out []*types.Var
	add := func(e ast.Expr) {
		if v := varObjOf(info, ast.Unparen(e)); v != nil {
			if _, ok := v.Type().Underlying().(*types.Chan); ok {
				out = append(out, v)
			}
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			if id, ok := x.Fun.(*ast.Ident); ok && id.Name == "close" && len(x.Args) == 1 {
				add(x.Args[0])
			}
		case *ast.SendStmt:
			add(x.Chan)
		}
		return true
	})
	return out
}

// spawnerReceives reports whether spawner receives from any of objs at
// a position after the go statement.
func spawnerReceives(info *types.Info, spawner *ast.BlockStmt, after token.Pos, objs map[*types.Var]bool) bool {
	found := false
	check := func(e ast.Expr, pos token.Pos) {
		if pos <= after {
			return
		}
		if v := varObjOf(info, ast.Unparen(e)); v != nil && objs[v] {
			found = true
		}
	}
	ast.Inspect(spawner, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				check(x.X, x.Pos())
			}
		case *ast.RangeStmt:
			if tv, ok := info.Types[x.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					check(x.X, x.Pos())
				}
			}
		}
		return !found
	})
	return found
}
