package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// guardedbyCheck is the repo-wide, type-resolved generalization of the
// original device-only clockguard mutex analysis. Struct fields carry
//
//	//ckptlint:guardedby <mutexField>
//
// and may then only be read or written while that mutex is held. The
// analyzer accepts three proofs of "held":
//
//  1. a Lock/RLock call on the same instance's mutex earlier in the
//     same function body (`s.mu.Lock()` before `s.entries`; the usual
//     `defer s.mu.Unlock()` pattern holds to the end of the function
//     and needs nothing extra);
//  2. the enclosing function is a helper annotated
//     `//ckptlint:locked <mutexField>` on its declaration — a
//     precondition that the caller already holds the receiver's mutex;
//  3. for a call *to* such a locked helper, the analyzer turns the
//     precondition around and verifies it at every call site: the
//     caller must itself hold the mutex by rule 1 or 2.
//
// Code inside a `go func(){...}` literal runs on another goroutine, so
// locks held by the spawner do not count there: the literal must take
// the lock itself.
//
// Annotation hygiene is part of the check: a guardedby/locked
// annotation with no argument, or naming a mutex field that does not
// exist in the struct, is itself reported — stale waivers must not
// silently stop proving anything.
//
// Known blind spots (documented in DESIGN.md §14): the held model is
// positional, so an access after an early `mu.Unlock()` in the same
// body still counts as held (the race detector covers that hole);
// helpers that acquire a lock and return a release closure do not mark
// the caller as holding; composite literals initializing a fresh,
// not-yet-shared struct are exempt by construction (field keys are not
// selector accesses).
type guardedbyCheck struct{}

func (guardedbyCheck) Name() string { return "guardedby" }

func (guardedbyCheck) Doc() string {
	return "fields tagged ckptlint:guardedby accessed only under their mutex (repo-wide, call-site verified)"
}

// guardSpec is one annotated field.
type guardSpec struct {
	structName string
	muName     string
	mu         *types.Var
}

// lockedSpec is one //ckptlint:locked helper precondition.
type lockedSpec struct {
	structName string
	muName     string
	mu         *types.Var
	recvName   string
}

func (c guardedbyCheck) CheckRepo(r *Repo) []Diagnostic {
	guards := make(map[*types.Var]guardSpec)
	locked := make(map[*types.Func]lockedSpec)
	var diags []Diagnostic
	for _, pkg := range r.Pkgs {
		diags = append(diags, collectGuardSpecs(pkg, guards)...)
		diags = append(diags, collectLockedSpecs(pkg, locked)...)
	}
	if len(guards) == 0 && len(locked) == 0 {
		return diags
	}
	for _, pkg := range r.Pkgs {
		if pkg.Info == nil {
			continue
		}
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				diags = append(diags, checkGuardedBody(pkg, fd, guards, locked)...)
			}
		}
	}
	return diags
}

// collectGuardSpecs gathers //ckptlint:guardedby fields of one package
// into guards, returning hygiene diagnostics for malformed or stale
// annotations.
func collectGuardSpecs(pkg *Package, guards map[*types.Var]guardSpec) []Diagnostic {
	var diags []Diagnostic
	if pkg.Info == nil {
		return nil
	}
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				for _, doc := range []*ast.CommentGroup{field.Doc, field.Comment} {
					mu, ok := directiveArg(doc, "guardedby")
					if !ok {
						continue
					}
					if mu == "" {
						diags = append(diags, Diagnostic{
							Pos:     pkg.Fset.Position(field.Pos()),
							Check:   "guardedby",
							Message: fmt.Sprintf("ckptlint:guardedby on %s needs a mutex field argument", ts.Name.Name),
						})
						continue
					}
					muVar := structFieldVar(pkg.Info, st, mu)
					if muVar == nil {
						diags = append(diags, Diagnostic{
							Pos:     pkg.Fset.Position(field.Pos()),
							Check:   "guardedby",
							Message: fmt.Sprintf("stale annotation: struct %s has no mutex field %q (ckptlint:guardedby)", ts.Name.Name, mu),
						})
						continue
					}
					for _, name := range field.Names {
						if v, ok := pkg.Info.Defs[name].(*types.Var); ok {
							guards[v.Origin()] = guardSpec{structName: ts.Name.Name, muName: mu, mu: muVar}
						}
					}
				}
			}
			return true
		})
	}
	return diags
}

// collectLockedSpecs gathers //ckptlint:locked method preconditions of
// one package into locked, with the same hygiene reporting.
func collectLockedSpecs(pkg *Package, locked map[*types.Func]lockedSpec) []Diagnostic {
	var diags []Diagnostic
	if pkg.Info == nil {
		return nil
	}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			mu, ok := directiveArg(fd.Doc, "locked")
			if !ok {
				continue
			}
			if mu == "" {
				diags = append(diags, Diagnostic{
					Pos:     pkg.Fset.Position(fd.Pos()),
					Check:   "guardedby",
					Message: fmt.Sprintf("ckptlint:locked on %s needs a mutex field argument", fd.Name.Name),
				})
				continue
			}
			fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
			if fn == nil {
				continue
			}
			recvName, structName, muVar := recvMutexField(fd, fn, mu)
			if recvName == "" {
				diags = append(diags, Diagnostic{
					Pos:     pkg.Fset.Position(fd.Pos()),
					Check:   "guardedby",
					Message: fmt.Sprintf("ckptlint:locked on %s requires a named struct receiver", fd.Name.Name),
				})
				continue
			}
			if muVar == nil {
				diags = append(diags, Diagnostic{
					Pos:     pkg.Fset.Position(fd.Pos()),
					Check:   "guardedby",
					Message: fmt.Sprintf("stale annotation: receiver of %s has no mutex field %q (ckptlint:locked)", fd.Name.Name, mu),
				})
				continue
			}
			locked[fn.Origin()] = lockedSpec{structName: structName, muName: mu, mu: muVar, recvName: recvName}
		}
	}
	return diags
}

// structFieldVar finds the field named name in the struct literal st,
// resolved to its type object.
func structFieldVar(info *types.Info, st *ast.StructType, name string) *types.Var {
	for _, field := range st.Fields.List {
		for _, id := range field.Names {
			if id.Name == name {
				if v, ok := info.Defs[id].(*types.Var); ok {
					return v.Origin()
				}
			}
		}
	}
	return nil
}

// recvMutexField resolves fd's receiver name, its struct type name,
// and the receiver struct's field named mu (nil when absent).
func recvMutexField(fd *ast.FuncDecl, fn *types.Func, mu string) (recvName, structName string, muVar *types.Var) {
	if fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return "", "", nil
	}
	recvName = fd.Recv.List[0].Names[0].Name
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", "", nil
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return "", "", nil
	}
	structName = named.Obj().Name()
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return "", "", nil
	}
	for i := 0; i < st.NumFields(); i++ {
		if st.Field(i).Name() == mu {
			return recvName, structName, st.Field(i).Origin()
		}
	}
	return recvName, structName, nil
}

// heldModel is the positional lock evidence of one function body.
type heldModel struct {
	pkg    *Package
	locks  []lockSite // Lock/RLock calls, in source order
	goLits [][2]token.Pos
	entry  *lockedSpec // non-nil when the function is ckptlint:locked
}

type lockSite struct {
	expr string // source form of the mutex operand, e.g. "s.mu"
	mu   *types.Var
	pos  token.Pos
}

// holds reports whether mutex mu of instance base ("s" for field
// accesses spelled s.f) is provably held at pos.
func (h *heldModel) holds(base string, mu *types.Var, pos token.Pos) bool {
	lit := goLitAt(h.goLits, pos)
	for _, l := range h.locks {
		if l.mu == mu && l.pos < pos && l.expr == base+"."+mu.Name() && goLitAt(h.goLits, l.pos) == lit {
			return true
		}
	}
	if lit == -1 && h.entry != nil && h.entry.mu == mu && h.entry.recvName == base {
		return true
	}
	return false
}

// buildHeldModel collects the lock evidence of one declared function.
func buildHeldModel(pkg *Package, fd *ast.FuncDecl, locked map[*types.Func]lockedSpec) *heldModel {
	h := &heldModel{pkg: pkg, goLits: goLitRanges(fd.Body)}
	if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok && fn != nil {
		if spec, ok := locked[fn.Origin()]; ok {
			h.entry = &spec
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
			return true
		}
		mu := varObjOf(pkg.Info, sel.X)
		if mu == nil {
			return true
		}
		h.locks = append(h.locks, lockSite{
			expr: exprString(pkg.Fset, sel.X),
			mu:   mu,
			pos:  call.Pos(),
		})
		return true
	})
	return h
}

// checkGuardedBody verifies every guarded-field access and every call
// to a locked helper inside one function declaration.
func checkGuardedBody(pkg *Package, fd *ast.FuncDecl, guards map[*types.Var]guardSpec, locked map[*types.Func]lockedSpec) []Diagnostic {
	h := buildHeldModel(pkg, fd, locked)
	fname := fd.Name.Name
	var diags []Diagnostic
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.SelectorExpr:
			fv := fieldObjOf(pkg.Info, x)
			if fv == nil {
				return true
			}
			g, ok := guards[fv]
			if !ok {
				return true
			}
			base := exprString(pkg.Fset, x.X)
			if h.holds(base, g.mu, x.Pos()) {
				return true
			}
			diags = append(diags, Diagnostic{
				Pos:   pkg.Fset.Position(x.Pos()),
				Check: "guardedby",
				Message: fmt.Sprintf("%s: access to %s.%s (ckptlint:guardedby %s) without holding %s.%s (lock it, or mark the helper //ckptlint:locked %s)",
					fname, g.structName, x.Sel.Name, g.muName, base, g.muName, g.muName),
			})
		case *ast.CallExpr:
			sel, ok := x.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			callee := funcObjOf(pkg.Info, sel)
			if callee == nil {
				return true
			}
			spec, ok := locked[callee]
			if !ok {
				return true
			}
			base := exprString(pkg.Fset, sel.X)
			if h.holds(base, spec.mu, x.Pos()) {
				return true
			}
			diags = append(diags, Diagnostic{
				Pos:   pkg.Fset.Position(x.Pos()),
				Check: "guardedby",
				Message: fmt.Sprintf("%s: call to %s.%s (ckptlint:locked %s) without holding %s.%s",
					fname, spec.structName, sel.Sel.Name, spec.muName, base, spec.muName),
			})
		}
		return true
	})
	return diags
}
