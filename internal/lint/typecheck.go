package lint

import (
	"go/ast"
	"go/importer"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// Repo is the whole loaded tree: every package parsed into one shared
// file set and type-checked in dependency order, so RepoChecks can
// resolve identifiers to types.Objects and follow calls across
// packages.
type Repo struct {
	Root string
	Fset *token.FileSet
	// ModulePath is the module path from root/go.mod, or "" when the
	// root has no go.mod (fixture packages are loaded that way).
	ModulePath string
	Pkgs       []*Package

	byImport map[string]*Package
	funcs    map[*types.Func]*funcDecl
}

// funcDecl is one function declaration found anywhere in the repo,
// indexed by its (origin) type object.
type funcDecl struct {
	Pkg  *Package
	Decl *ast.FuncDecl
}

// BuildRepo loads and type-checks every package under root. Packages
// that fail to type-check (fixtures import paths that do not resolve,
// deliberately broken golden files) keep partial type information; the
// parse-only checks still run over them and the type-aware checks skip
// what they cannot resolve.
func BuildRepo(root string) (*Repo, error) {
	pkgs, err := Load(root)
	if err != nil {
		return nil, err
	}
	r := &Repo{
		Root:       root,
		ModulePath: modulePath(root),
		Pkgs:       pkgs,
		byImport:   make(map[string]*Package),
	}
	if len(pkgs) > 0 {
		r.Fset = pkgs[0].Fset
	} else {
		r.Fset = token.NewFileSet()
	}
	for _, pkg := range pkgs {
		if r.ModulePath != "" {
			pkg.ImportPath = r.ModulePath
			if pkg.Rel != "" {
				pkg.ImportPath += "/" + filepath.ToSlash(pkg.Rel)
			}
			r.byImport[pkg.ImportPath] = pkg
		}
	}
	r.typecheck()
	return r, nil
}

var moduleLine = regexp.MustCompile(`(?m)^module\s+(\S+)`)

// modulePath extracts the module path from root/go.mod, if present.
func modulePath(root string) string {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return ""
	}
	if m := moduleLine.FindSubmatch(data); m != nil {
		return string(m[1])
	}
	return ""
}

// repoImporter resolves module-internal imports from the packages
// already checked and everything else (stdlib) through the compiled
// export data of the host toolchain.
type repoImporter struct {
	def     types.Importer
	checked map[string]*types.Package
}

func (ri *repoImporter) Import(path string) (*types.Package, error) {
	if p, ok := ri.checked[path]; ok {
		return p, nil
	}
	return ri.def.Import(path)
}

// typecheck type-checks every package in module-dependency order.
// Type errors are collected per package, never fatal: the syntax-level
// checks must keep working on trees (fixtures) that do not compile.
func (r *Repo) typecheck() {
	imp := &repoImporter{def: importer.Default(), checked: make(map[string]*types.Package)}
	for _, pkg := range r.topoOrder() {
		pkg := pkg
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Implicits:  make(map[ast.Node]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
		}
		conf := types.Config{
			Importer: imp,
			Error:    func(err error) { pkg.TypeErrs = append(pkg.TypeErrs, err) },
		}
		path := pkg.ImportPath
		if path == "" {
			path = pkg.Name
		}
		tpkg, _ := conf.Check(path, r.Fset, pkg.Files, info)
		pkg.Types = tpkg
		pkg.Info = info
		if pkg.ImportPath != "" && tpkg != nil {
			imp.checked[pkg.ImportPath] = tpkg
		}
	}
}

// topoOrder sorts packages so that every module-internal import of a
// package precedes it. Cycles (illegal in Go anyway) and unresolved
// imports fall back to lexical order.
func (r *Repo) topoOrder() []*Package {
	var order []*Package
	state := make(map[*Package]int) // 0 unvisited, 1 visiting, 2 done
	var visit func(p *Package)
	visit = func(p *Package) {
		if state[p] != 0 {
			return
		}
		state[p] = 1
		for _, f := range p.Files {
			for _, im := range f.Imports {
				path := strings.Trim(im.Path.Value, `"`)
				if dep, ok := r.byImport[path]; ok && state[dep] == 0 {
					visit(dep)
				}
			}
		}
		state[p] = 2
		order = append(order, p)
	}
	for _, p := range r.Pkgs {
		visit(p)
	}
	return order
}

// Funcs returns (building on first use) the index of every function
// and method declaration in the repo, keyed by its origin type object.
func (r *Repo) Funcs() map[*types.Func]*funcDecl {
	if r.funcs != nil {
		return r.funcs
	}
	r.funcs = make(map[*types.Func]*funcDecl)
	for _, pkg := range r.Pkgs {
		if pkg.Info == nil {
			continue
		}
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if obj, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
					r.funcs[obj.Origin()] = &funcDecl{Pkg: pkg, Decl: fd}
				}
			}
		}
	}
	return r.funcs
}

// --- shared type-resolution helpers --------------------------------------

// fieldObjOf resolves a selector expression to the struct field it
// selects, or nil when it selects anything else (method, package
// member, unresolved).
func fieldObjOf(info *types.Info, sel *ast.SelectorExpr) *types.Var {
	if info == nil {
		return nil
	}
	if s, ok := info.Selections[sel]; ok && s.Kind() == types.FieldVal {
		if v, ok := s.Obj().(*types.Var); ok {
			return v.Origin()
		}
	}
	return nil
}

// funcObjOf resolves a call target expression (identifier or selector)
// to the function or method object it names, or nil.
func funcObjOf(info *types.Info, fun ast.Expr) *types.Func {
	if info == nil {
		return nil
	}
	switch f := fun.(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[f].(*types.Func); ok {
			return fn.Origin()
		}
	case *ast.SelectorExpr:
		if s, ok := info.Selections[f]; ok {
			if fn, ok := s.Obj().(*types.Func); ok {
				return fn.Origin()
			}
			return nil
		}
		// Package-qualified call: pkg.Fn.
		if fn, ok := info.Uses[f.Sel].(*types.Func); ok {
			return fn.Origin()
		}
	}
	return nil
}

// varObjOf resolves an identifier or selector to the variable (local,
// param, or field) it denotes, or nil.
func varObjOf(info *types.Info, e ast.Expr) *types.Var {
	if info == nil {
		return nil
	}
	switch x := e.(type) {
	case *ast.Ident:
		obj := info.Uses[x]
		if obj == nil {
			obj = info.Defs[x]
		}
		if v, ok := obj.(*types.Var); ok {
			return v.Origin()
		}
	case *ast.SelectorExpr:
		if v := fieldObjOf(info, x); v != nil {
			return v
		}
		if v, ok := info.Uses[x.Sel].(*types.Var); ok {
			return v.Origin()
		}
	case *ast.ParenExpr:
		return varObjOf(info, x.X)
	}
	return nil
}

// goLitRanges returns the source ranges of every function literal that
// is launched directly by a go statement inside body. Code inside such
// a literal runs on another goroutine: locks held by the spawner do
// not protect it.
func goLitRanges(body *ast.BlockStmt) [][2]token.Pos {
	var out [][2]token.Pos
	ast.Inspect(body, func(n ast.Node) bool {
		g, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		if lit, ok := g.Call.Fun.(*ast.FuncLit); ok {
			out = append(out, [2]token.Pos{lit.Pos(), lit.End()})
		}
		return true
	})
	return out
}

// goLitAt returns the index of the innermost go-launched literal range
// containing pos, or -1.
func goLitAt(ranges [][2]token.Pos, pos token.Pos) int {
	best := -1
	for i, r := range ranges {
		if pos <= r[0] || pos >= r[1] {
			continue
		}
		if best == -1 || r[0] > ranges[best][0] {
			best = i
		}
	}
	return best
}
