// Package lint implements ckptlint, the repository's project-specific
// static-analysis suite. It loads every package of the module with the
// standard library's go/parser and go/types (no go/packages, no
// external dependency — the tool builds and runs in any environment
// the repository itself builds in) and runs a set of checks encoding
// invariants that ordinary Go tooling cannot see:
//
//   - noalloc:       functions tagged //ckptlint:noalloc must not
//     contain allocation-prone constructs (the PR 2 hot path is
//     required to stay at 0 allocs/op).
//   - clockguard:    struct fields tagged //ckptlint:atomic must only
//     be touched through sync/atomic method calls.
//   - closecontract: values built by the known pool/deduplicator
//     constructors must be Closed on every path or handed off.
//   - wireerr:       errors from wire/checkpoint Decode and Read
//     functions must not be discarded, and int→uint32/uint64 length
//     conversions need a preceding bounds check.
//   - retryable:     packages importing internal/wire must classify
//     transport errors through wire.Transient/wire.IsClean, not by
//     hand-matching io.EOF, net.ErrClosed, os.ErrDeadlineExceeded or
//     sniffing net.Error.Timeout().
//   - nowallclock:   time.Now is forbidden in internal/device (the
//     modeled cost clock must stay deterministic).
//   - bufreuse:      the reusable wire frame APIs (AppendFrameHeader,
//     ReadFrameInto, WriteFrameVec) must not be fed buffers created
//     fresh on every loop iteration — that silently reintroduces the
//     per-frame allocation they exist to remove.
//   - guardedby:     struct fields tagged //ckptlint:guardedby <mu>
//     are only read or written while <mu> is held — via a Lock/RLock
//     in the same function, or inside a helper carrying a
//     //ckptlint:locked <mu> precondition that is itself verified at
//     every call site. Type-resolved and repo-wide.
//   - lockorder:     the acquisition graph over annotated mutexes
//     ("A held while acquiring B", propagated through the call graph)
//     must be acyclic — a static deadlock detector.
//   - goroleak:      every `go` statement under internal/... must be
//     tied to a lifecycle: a sync.WaitGroup Add/Done pair, a join
//     channel that some function in the package receives from, or an
//     explicit //ckptlint:detached <reason> waiver.
//
// A finding on a specific line can be waived with a trailing or
// preceding comment of the form:
//
//	//ckptlint:ignore <check> [reason]
//
// Diagnostics render as "file:line: [check] message" and the cmd/
// ckptlint driver exits nonzero when any survive, which is how `make
// lint` gates `make ci`.
package lint

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/build"
	"go/parser"
	"go/printer"
	"go/token"
	"go/types"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Diagnostic is one finding of one check.
type Diagnostic struct {
	Pos     token.Position
	Check   string
	Message string
	// Waived is true when a //ckptlint:ignore directive covers the
	// finding. Run drops waived diagnostics; RunAll keeps them so the
	// -json output can surface them.
	Waived bool
}

// String renders the canonical file:line: [check] message form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Check, d.Message)
}

// Package is one parsed package directory.
type Package struct {
	// Fset is the file set the package was parsed into. All packages of
	// one Load share a single file set so type objects can be resolved
	// across packages.
	Fset *token.FileSet
	// Dir is the package directory as given to Load.
	Dir string
	// Rel is the module-relative directory ("" for the module root).
	Rel string
	// Name is the package name from the package clause.
	Name string
	// ImportPath is the module import path of the package, or "" when
	// the tree has no go.mod (fixture packages).
	ImportPath string
	// Files holds the parsed non-test files, parallel to FileNames.
	Files     []*ast.File
	FileNames []string
	// Types and Info are filled by BuildRepo's type-checking pass. Info
	// may be incomplete when TypeErrs is non-empty; type-aware checks
	// must tolerate missing map entries.
	Types    *types.Package
	Info     *types.Info
	TypeErrs []error
}

// Check identifies one analysis pass. Every concrete check implements
// either PackageCheck (syntax-level, runs once per package) or
// RepoCheck (type-aware, runs once over the whole tree).
type Check interface {
	Name() string
	Doc() string
}

// PackageCheck is a syntax-level analysis over a single package.
type PackageCheck interface {
	Check
	CheckPackage(pkg *Package) []Diagnostic
}

// RepoCheck is a whole-repository analysis with access to type
// information and the cross-package call graph.
type RepoCheck interface {
	Check
	CheckRepo(r *Repo) []Diagnostic
}

// Checks returns the full suite in stable order.
func Checks() []Check {
	return []Check{
		noallocCheck{},
		clockguardCheck{},
		closecontractCheck{},
		wireerrCheck{},
		retryableCheck{},
		nowallclockCheck{},
		bufreuseCheck{},
		guardedbyCheck{},
		lockorderCheck{},
		goroleakCheck{},
	}
}

// skipDirs are directory names never descended into while loading.
var skipDirs = map[string]bool{
	"testdata": true, ".git": true, "vendor": true, "node_modules": true,
}

// Load parses every package under root (excluding _test.go files,
// files excluded by build constraints for the host platform, and
// testdata trees) into one shared file set. The root directory itself
// is always loaded, even when it is named testdata — that is how the
// fixture tests load their golden packages.
func Load(root string) ([]*Package, error) {
	fset := token.NewFileSet()
	var pkgs []*Package
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		if path != root && (skipDirs[d.Name()] || strings.HasPrefix(d.Name(), ".")) {
			return filepath.SkipDir
		}
		pkg, err := loadDir(fset, root, path)
		if err != nil {
			return err
		}
		if pkg != nil {
			pkgs = append(pkgs, pkg)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Rel < pkgs[j].Rel })
	return pkgs, nil
}

// loadDir parses the non-test Go files of one directory, returning nil
// when the directory holds none. Files ruled out by build constraints
// (//go:build lines, GOOS suffixes) are skipped so platform-variant
// pairs like lock_unix.go / lock_other.go do not collide during
// type-checking.
func loadDir(fset *token.FileSet, root, dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	rel, err := filepath.Rel(root, dir)
	if err != nil {
		return nil, err
	}
	if rel == "." {
		rel = ""
	}
	pkg := &Package{Fset: fset, Dir: dir, Rel: rel}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		if match, err := build.Default.MatchFile(dir, name); err != nil || !match {
			continue
		}
		path := filepath.Join(dir, name)
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: parsing %s: %w", path, err)
		}
		pkg.Files = append(pkg.Files, f)
		pkg.FileNames = append(pkg.FileNames, path)
		pkg.Name = f.Name.Name
	}
	if len(pkg.Files) == 0 {
		return nil, nil
	}
	return pkg, nil
}

// Run loads every package under root and applies checks, returning the
// surviving (non-waived) diagnostics sorted by position.
func Run(root string, checks []Check) ([]Diagnostic, error) {
	all, err := RunAll(root, checks)
	if err != nil {
		return nil, err
	}
	diags := all[:0]
	for _, d := range all {
		if !d.Waived {
			diags = append(diags, d)
		}
	}
	return diags, nil
}

// RunAll is Run without the waiver filter: diagnostics covered by a
// //ckptlint:ignore directive are returned with Waived set instead of
// being dropped.
func RunAll(root string, checks []Check) ([]Diagnostic, error) {
	repo, err := BuildRepo(root)
	if err != nil {
		return nil, err
	}
	ignored := make(map[ignoreKey]bool)
	for _, pkg := range repo.Pkgs {
		for k, v := range ignoredLines(pkg) {
			ignored[k] = v
		}
	}
	var diags []Diagnostic
	run := func(name string, ds []Diagnostic) {
		for _, d := range ds {
			d.Waived = ignored[ignoreKey{d.Pos.Filename, d.Pos.Line, name}]
			diags = append(diags, d)
		}
	}
	for _, c := range checks {
		switch cc := c.(type) {
		case RepoCheck:
			run(c.Name(), cc.CheckRepo(repo))
		case PackageCheck:
			for _, pkg := range repo.Pkgs {
				run(c.Name(), cc.CheckPackage(pkg))
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Check < b.Check
	})
	return diags, nil
}

type ignoreKey struct {
	file  string
	line  int
	check string
}

// ignoredLines collects //ckptlint:ignore directives. A directive
// waives the named checks on its own line and on the line below it
// (so it works both as a trailing comment and as a standalone line).
func ignoredLines(pkg *Package) map[ignoreKey]bool {
	out := make(map[ignoreKey]bool)
	for i, f := range pkg.Files {
		name := pkg.FileNames[i]
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, "ckptlint:ignore") {
					continue
				}
				fields := strings.Fields(strings.TrimPrefix(text, "ckptlint:ignore"))
				line := pkg.Fset.Position(c.Pos()).Line
				for _, check := range fields {
					if !knownCheck(check) {
						break // remaining fields are the free-form reason
					}
					out[ignoreKey{name, line, check}] = true
					out[ignoreKey{name, line + 1, check}] = true
				}
			}
		}
	}
	return out
}

func knownCheck(name string) bool {
	for _, c := range Checks() {
		if c.Name() == name {
			return true
		}
	}
	return false
}

// --- shared AST helpers -------------------------------------------------

// hasDirective reports whether a comment group carries the given
// //ckptlint:<name> directive.
func hasDirective(doc *ast.CommentGroup, name string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if text == "ckptlint:"+name || strings.HasPrefix(text, "ckptlint:"+name+" ") {
			return true
		}
	}
	return false
}

// directiveArg returns the first argument of //ckptlint:<name> <arg>
// in doc, and whether the directive is present.
func directiveArg(doc *ast.CommentGroup, name string) (string, bool) {
	if doc == nil {
		return "", false
	}
	for _, c := range doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if !strings.HasPrefix(text, "ckptlint:"+name) {
			continue
		}
		rest := strings.Fields(strings.TrimPrefix(text, "ckptlint:"+name))
		if len(rest) > 0 {
			return rest[0], true
		}
		return "", true
	}
	return "", false
}

// exprString renders an expression in source form (used to compare
// "the same expression" structurally, e.g. lock bases and len args).
func exprString(fset *token.FileSet, e ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, e); err != nil {
		return ""
	}
	return buf.String()
}

// walkStack traverses n depth-first, invoking fn with every node and
// the stack of its ancestors (outermost first, not including n).
func walkStack(n ast.Node, fn func(n ast.Node, stack []ast.Node)) {
	var stack []ast.Node
	ast.Inspect(n, func(node ast.Node) bool {
		if node == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		fn(node, stack)
		stack = append(stack, node)
		return true
	})
}

// funcBodies yields every function body of the file together with its
// declaration documentation: FuncDecls, plus FuncLits that are the
// sole RHS of an assignment (so directives can be placed on stored
// kernel-body assignments like `d.leafBody = func(lo, hi int) {...}`).
type funcBody struct {
	Doc  *ast.CommentGroup
	Name string
	Body *ast.BlockStmt
	Type *ast.FuncType
}

func funcBodies(f *ast.File) []funcBody {
	var out []funcBody
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok {
			continue
		}
		if fd.Body == nil {
			continue
		}
		out = append(out, funcBody{Doc: fd.Doc, Name: fd.Name.Name, Body: fd.Body, Type: fd.Type})
	}
	return out
}

// assignedFuncLits returns FuncLits assigned in simple statements
// (`x = func(...) {...}` or `x := func(...) {...}`) keyed by the
// comment group lexically preceding the assignment.
type assignedLit struct {
	Doc    *ast.CommentGroup
	Target string
	Lit    *ast.FuncLit
}

func assignedFuncLits(fset *token.FileSet, f *ast.File) []assignedLit {
	// Collect comment groups by their end line so an assignment on line
	// n can find a directive comment ending on line n-1.
	byEndLine := make(map[int]*ast.CommentGroup)
	for _, cg := range f.Comments {
		byEndLine[fset.Position(cg.End()).Line] = cg
	}
	var out []assignedLit
	ast.Inspect(f, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return true
		}
		lit, ok := as.Rhs[0].(*ast.FuncLit)
		if !ok {
			return true
		}
		line := fset.Position(as.Pos()).Line
		out = append(out, assignedLit{
			Doc:    byEndLine[line-1],
			Target: exprString(fset, as.Lhs[0]),
			Lit:    lit,
		})
		return true
	})
	return out
}

// isErrGuard reports whether an if-condition looks like an error
// check (mentions an identifier containing "err"). noalloc exempts
// such branches: error paths may allocate.
func isErrGuard(cond ast.Expr) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if strings.Contains(strings.ToLower(id.Name), "err") {
				found = true
			}
		}
		return !found
	})
	return found
}
