package lint

import (
	"fmt"
	"go/ast"
)

// clockguardCheck enforces the field-guard annotations declared next
// to struct fields:
//
//	//ckptlint:guardedby <mutexField>
//	//ckptlint:atomic
//
// A guardedby field may only be read or written after a Lock/RLock
// call on the owning mutex of the same base expression earlier in the
// same function (`d.mu.Lock()` before `d.clock`). An atomic field may
// only appear as the receiver of an atomic method call (Load, Store,
// Add, Swap, CompareAndSwap, CompareAndSwapWeak, Or, And).
//
// The check is intra-package and name-based: it tracks every selector
// whose final field name matches an annotated field, which is exactly
// right for the unexported device clock / server counter fields it
// exists to protect (annotated names must therefore be unique within
// their package).
type clockguardCheck struct{}

func (clockguardCheck) Name() string { return "clockguard" }

func (clockguardCheck) Doc() string {
	return "annotated device clock/stats fields accessed under their mutex or via atomics"
}

// guardInfo describes one annotated field.
type guardInfo struct {
	structName string
	mutex      string // non-empty for guardedby
	atomic     bool
}

var atomicMethods = map[string]bool{
	"Load": true, "Store": true, "Add": true, "Swap": true,
	"CompareAndSwap": true, "Or": true, "And": true,
}

func (c clockguardCheck) Check(pkg *Package) []Diagnostic {
	guards := collectGuards(pkg)
	if len(guards) == 0 {
		return nil
	}
	var diags []Diagnostic
	for _, f := range pkg.Files {
		for _, fb := range funcBodies(f) {
			diags = append(diags, checkGuardsInBody(pkg, guards, fb.Name, fb.Body)...)
		}
	}
	return diags
}

// collectGuards finds annotated struct fields across the package.
func collectGuards(pkg *Package) map[string]guardInfo {
	out := map[string]guardInfo{}
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				for _, doc := range []*ast.CommentGroup{field.Doc, field.Comment} {
					if mu, ok := directiveArg(doc, "guardedby"); ok && mu != "" {
						for _, name := range field.Names {
							out[name.Name] = guardInfo{structName: ts.Name.Name, mutex: mu}
						}
					}
					if hasDirective(doc, "atomic") {
						for _, name := range field.Names {
							out[name.Name] = guardInfo{structName: ts.Name.Name, atomic: true}
						}
					}
				}
			}
			return true
		})
	}
	return out
}

// checkGuardsInBody verifies every annotated-field access in one
// function body.
func checkGuardsInBody(pkg *Package, guards map[string]guardInfo, fname string, body *ast.BlockStmt) []Diagnostic {
	// Collect lock-call positions per (base, mutex) first.
	type lockSite struct {
		base  string
		mutex string
		pos   int // byte offset ordering via token.Pos is fine
	}
	var locks []lockSite
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
			return true
		}
		muSel, ok := sel.X.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		locks = append(locks, lockSite{
			base:  exprString(pkg.Fset, muSel.X),
			mutex: muSel.Sel.Name,
			pos:   int(call.Pos()),
		})
		return true
	})

	lockedBefore := func(base, mutex string, pos int) bool {
		for _, l := range locks {
			if l.base == base && l.mutex == mutex && l.pos < pos {
				return true
			}
		}
		return false
	}

	var diags []Diagnostic
	walkStack(body, func(n ast.Node, stack []ast.Node) {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return
		}
		g, ok := guards[sel.Sel.Name]
		if !ok {
			return
		}
		if g.atomic {
			// Must be the receiver of an atomic method call:
			// parent is SelectorExpr{X: sel, Sel: atomicMethod} whose
			// own parent is a CallExpr using it as Fun.
			if len(stack) >= 2 {
				if psel, ok := stack[len(stack)-1].(*ast.SelectorExpr); ok && psel.X == sel && atomicMethods[psel.Sel.Name] {
					if call, ok := stack[len(stack)-2].(*ast.CallExpr); ok && call.Fun == psel {
						return
					}
				}
			}
			diags = append(diags, Diagnostic{
				Pos:   pkg.Fset.Position(sel.Pos()),
				Check: "clockguard",
				Message: fmt.Sprintf("%s: field %s.%s is annotated ckptlint:atomic and must be accessed via atomic method calls",
					fname, g.structName, sel.Sel.Name),
			})
			return
		}
		// guardedby: require a preceding Lock on the same base.
		base := exprString(pkg.Fset, sel.X)
		if lockedBefore(base, g.mutex, int(sel.Pos())) {
			return
		}
		diags = append(diags, Diagnostic{
			Pos:   pkg.Fset.Position(sel.Pos()),
			Check: "clockguard",
			Message: fmt.Sprintf("%s: access to %s.%s (annotated ckptlint:guardedby %s) without a preceding %s.%s.Lock()",
				fname, g.structName, sel.Sel.Name, g.mutex, base, g.mutex),
		})
	})
	return diags
}
