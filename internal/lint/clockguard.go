package lint

import (
	"fmt"
	"go/ast"
)

// clockguardCheck enforces the atomic-field annotation declared next
// to struct fields:
//
//	//ckptlint:atomic
//
// An atomic field may only appear as the receiver of an atomic method
// call (Load, Store, Add, Swap, CompareAndSwap, Or, And). Taking its
// address, copying it, or reading it directly all defeat the memory
// ordering the annotation promises.
//
// The check is intra-package and name-based: it tracks every selector
// whose final field name matches an annotated field, which is exactly
// right for the unexported device clock / server counter fields it
// exists to protect (annotated names must therefore be unique within
// their package). Mutex-guarded fields — //ckptlint:guardedby <mu> —
// are handled by the type-resolved, repo-wide guardedby check.
type clockguardCheck struct{}

func (clockguardCheck) Name() string { return "clockguard" }

func (clockguardCheck) Doc() string {
	return "annotated device clock/stats fields accessed only via atomic method calls"
}

// atomicInfo describes one annotated field.
type atomicInfo struct {
	structName string
}

var atomicMethods = map[string]bool{
	"Load": true, "Store": true, "Add": true, "Swap": true,
	"CompareAndSwap": true, "Or": true, "And": true,
}

func (c clockguardCheck) CheckPackage(pkg *Package) []Diagnostic {
	atomics := collectAtomics(pkg)
	if len(atomics) == 0 {
		return nil
	}
	var diags []Diagnostic
	for _, f := range pkg.Files {
		for _, fb := range funcBodies(f) {
			diags = append(diags, checkAtomicsInBody(pkg, atomics, fb.Name, fb.Body)...)
		}
	}
	return diags
}

// collectAtomics finds //ckptlint:atomic struct fields across the
// package.
func collectAtomics(pkg *Package) map[string]atomicInfo {
	out := map[string]atomicInfo{}
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				for _, doc := range []*ast.CommentGroup{field.Doc, field.Comment} {
					if hasDirective(doc, "atomic") {
						for _, name := range field.Names {
							out[name.Name] = atomicInfo{structName: ts.Name.Name}
						}
					}
				}
			}
			return true
		})
	}
	return out
}

// checkAtomicsInBody verifies every annotated-field access in one
// function body.
func checkAtomicsInBody(pkg *Package, atomics map[string]atomicInfo, fname string, body *ast.BlockStmt) []Diagnostic {
	var diags []Diagnostic
	walkStack(body, func(n ast.Node, stack []ast.Node) {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return
		}
		g, ok := atomics[sel.Sel.Name]
		if !ok {
			return
		}
		// Must be the receiver of an atomic method call: parent is
		// SelectorExpr{X: sel, Sel: atomicMethod} whose own parent is a
		// CallExpr using it as Fun.
		if len(stack) >= 2 {
			if psel, ok := stack[len(stack)-1].(*ast.SelectorExpr); ok && psel.X == sel && atomicMethods[psel.Sel.Name] {
				if call, ok := stack[len(stack)-2].(*ast.CallExpr); ok && call.Fun == psel {
					return
				}
			}
		}
		diags = append(diags, Diagnostic{
			Pos:   pkg.Fset.Position(sel.Pos()),
			Check: "clockguard",
			Message: fmt.Sprintf("%s: field %s.%s is annotated ckptlint:atomic and must be accessed via atomic method calls",
				fname, g.structName, sel.Sel.Name),
		})
	})
	return diags
}
