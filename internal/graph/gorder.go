package graph

import "container/heap"

// Gorder computes a cache-friendly vertex ordering using the windowed
// greedy of Wei et al., "Speedup Graph Processing by Graph Ordering"
// (SIGMOD 2016), the pre-processing step the paper applies to every
// input (§3.2). It returns perm with perm[old] = new.
//
// The greedy places vertices one at a time, always choosing the
// unplaced vertex with the most neighbors among the last `window`
// placed vertices. Priorities are maintained lazily: increments push
// stale heap entries, and the exact priority is recomputed against the
// window when an entry is popped. This simplification of the paper's
// full scoring (which also counts shared in-neighbors) preserves the
// property the checkpointing study needs: topologically close vertices
// receive nearby ids.
func Gorder(g *Graph, window int) []int32 {
	n := g.NumVertices()
	if window < 1 {
		window = 5
	}
	perm := make([]int32, n)
	placed := make([]bool, n)
	inWindow := make([]bool, n)
	ring := make([]int32, 0, window)

	// exact recomputes the true window score of v.
	exact := func(v int32) int {
		s := 0
		for _, u := range g.Neighbors(v) {
			if inWindow[u] {
				s++
			}
		}
		return s
	}

	pq := &gorderHeap{}
	heap.Init(pq)
	next := 0 // fallback scan position for disconnected pieces

	for placedCount := 0; placedCount < n; placedCount++ {
		var v int32 = -1
		for pq.Len() > 0 {
			top := (*pq)[0]
			if placed[top.v] {
				heap.Pop(pq)
				continue
			}
			cur := exact(top.v)
			if cur != top.prio {
				// Stale entry: reinsert with the true score.
				(*pq)[0].prio = cur
				heap.Fix(pq, 0)
				continue
			}
			v = top.v
			heap.Pop(pq)
			break
		}
		if v < 0 {
			for placed[next] {
				next++
			}
			v = int32(next)
		}

		perm[v] = int32(placedCount)
		placed[v] = true
		// Slide the window.
		if len(ring) == window {
			old := ring[0]
			ring = ring[1:]
			inWindow[old] = false
		}
		ring = append(ring, v)
		inWindow[v] = true
		// Neighbors of v gained a window neighbor.
		for _, u := range g.Neighbors(v) {
			if !placed[u] {
				heap.Push(pq, gorderEntry{v: u, prio: exact(u)})
			}
		}
	}
	return perm
}

// ApplyGorder reorders g with the Gorder permutation.
func ApplyGorder(g *Graph, window int) (*Graph, error) {
	return g.Relabel(Gorder(g, window))
}

type gorderEntry struct {
	v    int32
	prio int
}

type gorderHeap []gorderEntry

func (h gorderHeap) Len() int            { return len(h) }
func (h gorderHeap) Less(i, j int) bool  { return h[i].prio > h[j].prio }
func (h gorderHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *gorderHeap) Push(x interface{}) { *h = append(*h, x.(gorderEntry)) }
func (h *gorderHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
