package graph

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestBuildBasics(t *testing.T) {
	g, err := Build("t", 5, []Edge{{0, 1}, {1, 2}, {2, 0}, {3, 4}, {1, 0}, {2, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 5 {
		t.Fatalf("|V|=%d", g.NumVertices())
	}
	// {0,1} deduped, {2,2} self loop dropped: edges {0,1},{1,2},{0,2},{3,4} -> 8 entries.
	if g.NumEdges() != 8 {
		t.Fatalf("|E| entries=%d want 8", g.NumEdges())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) || !g.HasEdge(3, 4) {
		t.Fatal("missing edges")
	}
	if g.HasEdge(0, 3) || g.HasEdge(2, 2) {
		t.Fatal("phantom edges")
	}
	if g.Degree(1) != 2 || g.Degree(3) != 1 {
		t.Fatal("degrees wrong")
	}
	ns := g.Neighbors(2)
	for i := 1; i < len(ns); i++ {
		if ns[i-1] >= ns[i] {
			t.Fatal("adjacency not sorted/deduped")
		}
	}
	if g.MaxDegree() != 2 {
		t.Fatalf("max degree %d", g.MaxDegree())
	}
	s := g.Summary()
	if s.Vertices != 5 || s.Edges != 8 || s.AvgDegree != 1.6 {
		t.Fatalf("summary %+v", s)
	}
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build("t", 0, nil); err == nil {
		t.Fatal("zero vertices accepted")
	}
	if _, err := Build("t", 2, []Edge{{0, 5}}); err == nil {
		t.Fatal("out-of-range edge accepted")
	}
}

func TestRelabel(t *testing.T) {
	g, _ := Build("t", 4, []Edge{{0, 1}, {1, 2}, {2, 3}})
	perm := []int32{3, 2, 1, 0} // reverse
	r, err := g.Relabel(perm)
	if err != nil {
		t.Fatal(err)
	}
	if !r.HasEdge(3, 2) || !r.HasEdge(2, 1) || !r.HasEdge(1, 0) {
		t.Fatal("relabel lost edges")
	}
	if r.NumEdges() != g.NumEdges() {
		t.Fatal("relabel changed edge count")
	}
	if _, err := g.Relabel([]int32{0, 1}); err == nil {
		t.Fatal("short permutation accepted")
	}
	if _, err := g.Relabel([]int32{0, 0, 1, 2}); err == nil {
		t.Fatal("non-bijective permutation accepted")
	}
}

func checkUndirectedSimple(t *testing.T, g *Graph) {
	t.Helper()
	for v := 0; v < g.NumVertices(); v++ {
		prev := int32(-1)
		for _, u := range g.Neighbors(int32(v)) {
			if u == int32(v) {
				t.Fatalf("self loop at %d", v)
			}
			if u <= prev {
				t.Fatalf("adjacency of %d not strictly sorted", v)
			}
			prev = u
			if !g.HasEdge(u, int32(v)) {
				t.Fatalf("edge (%d,%d) not symmetric", v, u)
			}
		}
	}
}

func TestGenerators(t *testing.T) {
	cases := []struct {
		name   string
		build  func() (*Graph, error)
		minAvg float64
		maxAvg float64
	}{
		{"MessageRace", func() (*Graph, error) { return MessageRace(32, 100, 1) }, 2.0, 4.0},
		{"UnstructuredMesh", func() (*Graph, error) { return UnstructuredMesh(6, 6, 100, 1) }, 2.0, 3.2},
		{"RoadNetwork", func() (*Graph, error) { return RoadNetwork(60, 60, 1) }, 1.6, 2.6},
		{"Bubbles", func() (*Graph, error) { return Bubbles(60, 60, 1) }, 5.0, 6.2},
		{"DelaunayLike", func() (*Graph, error) { return DelaunayLike(60, 60, 1) }, 5.0, 6.2},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			g, err := c.build()
			if err != nil {
				t.Fatal(err)
			}
			checkUndirectedSimple(t, g)
			avg := g.Summary().AvgDegree
			if avg < c.minAvg || avg > c.maxAvg {
				t.Fatalf("avg degree %.2f outside [%.1f, %.1f]", avg, c.minAvg, c.maxAvg)
			}
			if g.Name() == "" {
				t.Fatal("generator left graph unnamed")
			}
		})
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	a, _ := MessageRace(16, 50, 7)
	b, _ := MessageRace(16, 50, 7)
	c, _ := MessageRace(16, 50, 8)
	if a.NumEdges() != b.NumEdges() {
		t.Fatal("same seed produced different graphs")
	}
	for v := 0; v < a.NumVertices(); v++ {
		na, nb := a.Neighbors(int32(v)), b.Neighbors(int32(v))
		if len(na) != len(nb) {
			t.Fatal("same seed produced different adjacency")
		}
		for i := range na {
			if na[i] != nb[i] {
				t.Fatal("same seed produced different adjacency")
			}
		}
	}
	if a.NumEdges() == c.NumEdges() {
		// Different seeds *may* coincide in count, but identical
		// adjacency everywhere would be suspicious; spot-check.
		same := true
		for v := 0; v < a.NumVertices() && same; v++ {
			na, nc := a.Neighbors(int32(v)), c.Neighbors(int32(v))
			if len(na) != len(nc) {
				same = false
				break
			}
			for i := range na {
				if na[i] != nc[i] {
					same = false
					break
				}
			}
		}
		if same {
			t.Fatal("different seeds produced identical graphs")
		}
	}
}

func TestGeneratorValidation(t *testing.T) {
	if _, err := MessageRace(1, 10, 0); err == nil {
		t.Fatal("MessageRace with 1 proc accepted")
	}
	if _, err := UnstructuredMesh(1, 5, 10, 0); err == nil {
		t.Fatal("UnstructuredMesh 1-wide accepted")
	}
	if _, err := RoadNetwork(1, 5, 0); err == nil {
		t.Fatal("RoadNetwork 1-wide accepted")
	}
	if _, err := Bubbles(1, 1, 0); err == nil {
		t.Fatal("Bubbles 1x1 accepted")
	}
	if _, err := DelaunayLike(0, 0, 0); err == nil {
		t.Fatal("DelaunayLike 0x0 accepted")
	}
}

func TestCatalog(t *testing.T) {
	entries := Catalog()
	if len(entries) != 5 {
		t.Fatalf("catalog has %d entries, want 5", len(entries))
	}
	for _, e := range entries {
		g, err := e.Generate(2000, 42)
		if err != nil {
			t.Fatalf("%s: %v", e.Name, err)
		}
		checkUndirectedSimple(t, g)
		n := g.NumVertices()
		if n < 500 || n > 8000 {
			t.Fatalf("%s: target 2000 vertices, got %d", e.Name, n)
		}
		if e.PaperVertices < 10_000_000 {
			t.Fatalf("%s: paper vertex count %d implausible", e.Name, e.PaperVertices)
		}
	}
	if _, err := CatalogByName("Asia OSM"); err != nil {
		t.Fatal(err)
	}
	if _, err := CatalogByName("nope"); err == nil {
		t.Fatal("unknown catalog name accepted")
	}
}

func TestGorderPermValid(t *testing.T) {
	g, _ := DelaunayLike(20, 20, 3)
	perm := Gorder(g, 5)
	seen := make([]bool, len(perm))
	for _, p := range perm {
		if p < 0 || int(p) >= len(perm) || seen[p] {
			t.Fatal("Gorder produced invalid permutation")
		}
		seen[p] = true
	}
}

func TestGorderImprovesLocality(t *testing.T) {
	// Scramble a mesh, then check Gorder recovers most locality.
	g, _ := Bubbles(40, 40, 9)
	n := g.NumVertices()
	rng := rand.New(rand.NewSource(9))
	scramble := make([]int32, n)
	for i := range scramble {
		scramble[i] = int32(i)
	}
	rng.Shuffle(n, func(i, j int) { scramble[i], scramble[j] = scramble[j], scramble[i] })
	scrambled, err := g.Relabel(scramble)
	if err != nil {
		t.Fatal(err)
	}
	reordered, err := ApplyGorder(scrambled, 8)
	if err != nil {
		t.Fatal(err)
	}
	before := scrambled.EdgeLocality()
	after := reordered.EdgeLocality()
	if after >= before/2 {
		t.Fatalf("Gorder locality %.1f not well below scrambled %.1f", after, before)
	}
	if reordered.NumEdges() != g.NumEdges() {
		t.Fatal("Gorder changed the graph")
	}
}

func TestGorderHandlesDisconnected(t *testing.T) {
	g, _ := Build("t", 6, []Edge{{0, 1}, {2, 3}}) // vertices 4,5 isolated
	perm := Gorder(g, 3)
	seen := make([]bool, 6)
	for _, p := range perm {
		seen[p] = true
	}
	for i, s := range seen {
		if !s {
			t.Fatalf("position %d unassigned", i)
		}
	}
}

func TestMatrixMarketRoundTrip(t *testing.T) {
	g, _ := DelaunayLike(12, 12, 4)
	var buf bytes.Buffer
	if err := WriteMatrixMarket(&buf, g); err != nil {
		t.Fatal(err)
	}
	got, err := ReadMatrixMarket(&buf, g.Name())
	if err != nil {
		t.Fatal(err)
	}
	if got.NumVertices() != g.NumVertices() || got.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip: %d/%d vs %d/%d vertices/edges",
			got.NumVertices(), got.NumEdges(), g.NumVertices(), g.NumEdges())
	}
	for v := 0; v < g.NumVertices(); v++ {
		na, nb := g.Neighbors(int32(v)), got.Neighbors(int32(v))
		if len(na) != len(nb) {
			t.Fatalf("vertex %d adjacency differs", v)
		}
		for i := range na {
			if na[i] != nb[i] {
				t.Fatalf("vertex %d adjacency differs", v)
			}
		}
	}
}

func TestMatrixMarketParsing(t *testing.T) {
	good := `%%MatrixMarket matrix coordinate pattern symmetric
% a comment
3 3 2
1 2
2 3
`
	g, err := ReadMatrixMarket(strings.NewReader(good), "mm")
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 3 || g.NumEdges() != 4 {
		t.Fatalf("parsed %d vertices %d entries", g.NumVertices(), g.NumEdges())
	}
	bad := []string{
		"",
		"%%MatrixMarket matrix array real general\n2 2\n",
		"%%MatrixMarket matrix coordinate complex general\n2 2 1\n1 2\n",
		"%%MatrixMarket matrix coordinate pattern skew-symmetric\n2 2 1\n1 2\n",
		"%%MatrixMarket matrix coordinate pattern general\n2 3 1\n1 2\n",
		"%%MatrixMarket matrix coordinate pattern general\n2 2 1\n1 9\n",
		"%%MatrixMarket matrix coordinate pattern general\n2 2 1\nx y\n",
	}
	for i, s := range bad {
		if _, err := ReadMatrixMarket(strings.NewReader(s), "bad"); err == nil {
			t.Fatalf("bad input %d accepted", i)
		}
	}
	// Real-valued entries with weights are accepted, values ignored.
	weighted := "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 2 3.25\n"
	if _, err := ReadMatrixMarket(strings.NewReader(weighted), "w"); err != nil {
		t.Fatal(err)
	}
}

func TestEdgeLocalityQuick(t *testing.T) {
	f := func(raw uint8) bool {
		side := int(raw)%10 + 3
		g, err := Bubbles(side, side, 3)
		if err != nil {
			return false
		}
		// Identity order of a grid has locality <= side+1.
		return g.EdgeLocality() <= float64(side+1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestGeneratorsLargelyConnected(t *testing.T) {
	for _, e := range Catalog() {
		g, err := e.Generate(4000, 13)
		if err != nil {
			t.Fatalf("%s: %v", e.Name, err)
		}
		frac := float64(g.LargestComponent()) / float64(g.NumVertices())
		if frac < 0.75 {
			t.Errorf("%s: largest component only %.0f%% of the graph", e.Name, frac*100)
		}
	}
	// Explicit small case: two components of 3 and 2.
	g, _ := Build("t", 6, []Edge{{0, 1}, {1, 2}, {3, 4}})
	if g.LargestComponent() != 3 {
		t.Fatalf("largest component %d, want 3", g.LargestComponent())
	}
}
