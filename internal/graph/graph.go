// Package graph provides the input substrate of the paper's
// evaluation (Tan et al., ICPP 2023, §3.2): compressed sparse row
// graphs, synthetic generators matching the topology classes of Table
// 1 (HPC event graphs and SuiteSparse meshes), the Gorder cache
// reordering pre-process, and Matrix Market I/O for user-supplied
// graphs.
package graph

import (
	"fmt"
	"sort"
)

// Graph is an undirected simple graph in CSR form. Adjacency lists are
// sorted; every undirected edge appears in both endpoints' lists, so
// NumEdges counts directed entries (the SuiteSparse nnz convention).
type Graph struct {
	name    string
	offsets []int64
	adj     []int32
}

// Name returns the graph's label for reports.
func (g *Graph) Name() string { return g.name }

// SetName relabels the graph.
func (g *Graph) SetName(name string) { g.name = name }

// NumVertices returns |V|.
func (g *Graph) NumVertices() int { return len(g.offsets) - 1 }

// NumEdges returns the number of directed adjacency entries (twice the
// undirected edge count).
func (g *Graph) NumEdges() int64 { return int64(len(g.adj)) }

// Degree returns the degree of v.
func (g *Graph) Degree(v int32) int {
	return int(g.offsets[v+1] - g.offsets[v])
}

// Neighbors returns the sorted adjacency list of v. The returned slice
// aliases the graph; callers must not modify it.
func (g *Graph) Neighbors(v int32) []int32 {
	return g.adj[g.offsets[v]:g.offsets[v+1]]
}

// HasEdge reports whether {u, v} is an edge, by binary search.
func (g *Graph) HasEdge(u, v int32) bool {
	ns := g.Neighbors(u)
	i := sort.Search(len(ns), func(i int) bool { return ns[i] >= v })
	return i < len(ns) && ns[i] == v
}

// MaxDegree returns the largest vertex degree.
func (g *Graph) MaxDegree() int {
	maxDeg := 0
	for v := 0; v < g.NumVertices(); v++ {
		if d := g.Degree(int32(v)); d > maxDeg {
			maxDeg = d
		}
	}
	return maxDeg
}

// Edge is one undirected edge.
type Edge struct{ U, V int32 }

// Build constructs a graph from an edge list: self loops are dropped,
// duplicates merged, both directions materialized, and adjacency
// sorted.
func Build(name string, n int, edges []Edge) (*Graph, error) {
	if n <= 0 {
		return nil, fmt.Errorf("graph: vertex count %d must be positive", n)
	}
	deg := make([]int64, n)
	for _, e := range edges {
		if e.U < 0 || int(e.U) >= n || e.V < 0 || int(e.V) >= n {
			return nil, fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", e.U, e.V, n)
		}
		if e.U == e.V {
			continue
		}
		deg[e.U]++
		deg[e.V]++
	}
	offsets := make([]int64, n+1)
	for v := 0; v < n; v++ {
		offsets[v+1] = offsets[v] + deg[v]
	}
	adj := make([]int32, offsets[n])
	fill := make([]int64, n)
	for _, e := range edges {
		if e.U == e.V {
			continue
		}
		adj[offsets[e.U]+fill[e.U]] = e.V
		fill[e.U]++
		adj[offsets[e.V]+fill[e.V]] = e.U
		fill[e.V]++
	}
	g := &Graph{name: name, offsets: offsets, adj: adj}
	g.sortAndDedup()
	return g, nil
}

// sortAndDedup sorts each adjacency list and removes duplicates,
// compacting the CSR arrays.
func (g *Graph) sortAndDedup() {
	n := g.NumVertices()
	newAdj := make([]int32, 0, len(g.adj))
	newOff := make([]int64, n+1)
	for v := 0; v < n; v++ {
		ns := g.adj[g.offsets[v]:g.offsets[v+1]]
		sort.Slice(ns, func(i, j int) bool { return ns[i] < ns[j] })
		prevLen := len(newAdj)
		var last int32 = -1
		for _, u := range ns {
			if u != last {
				newAdj = append(newAdj, u)
				last = u
			}
		}
		newOff[v+1] = newOff[v] + int64(len(newAdj)-prevLen)
	}
	g.adj = newAdj
	g.offsets = newOff
}

// Relabel returns a new graph where old vertex v becomes perm[v].
// perm must be a permutation of [0, n).
func (g *Graph) Relabel(perm []int32) (*Graph, error) {
	n := g.NumVertices()
	if len(perm) != n {
		return nil, fmt.Errorf("graph: permutation length %d != %d vertices", len(perm), n)
	}
	seen := make([]bool, n)
	for _, p := range perm {
		if p < 0 || int(p) >= n || seen[p] {
			return nil, fmt.Errorf("graph: invalid permutation")
		}
		seen[p] = true
	}
	deg := make([]int64, n)
	for v := 0; v < n; v++ {
		deg[perm[v]] = int64(g.Degree(int32(v)))
	}
	offsets := make([]int64, n+1)
	for v := 0; v < n; v++ {
		offsets[v+1] = offsets[v] + deg[v]
	}
	adj := make([]int32, len(g.adj))
	for v := 0; v < n; v++ {
		nv := perm[v]
		out := adj[offsets[nv]:offsets[nv+1]]
		for i, u := range g.Neighbors(int32(v)) {
			out[i] = perm[u]
		}
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	}
	return &Graph{name: g.name, offsets: offsets, adj: adj}, nil
}

// EdgeLocality returns the mean |u-v| over all directed edges — the
// cache-locality proxy that Gorder minimizes. Lower is better.
func (g *Graph) EdgeLocality() float64 {
	if len(g.adj) == 0 {
		return 0
	}
	var sum float64
	for v := 0; v < g.NumVertices(); v++ {
		for _, u := range g.Neighbors(int32(v)) {
			d := int64(u) - int64(v)
			if d < 0 {
				d = -d
			}
			sum += float64(d)
		}
	}
	return sum / float64(len(g.adj))
}

// Stats summarizes a graph for Table 1 style reports.
type Stats struct {
	Name      string
	Vertices  int
	Edges     int64 // directed entries
	MaxDegree int
	AvgDegree float64
}

// Summary computes the graph's Stats.
func (g *Graph) Summary() Stats {
	n := g.NumVertices()
	avg := 0.0
	if n > 0 {
		avg = float64(len(g.adj)) / float64(n)
	}
	return Stats{
		Name:      g.name,
		Vertices:  n,
		Edges:     g.NumEdges(),
		MaxDegree: g.MaxDegree(),
		AvgDegree: avg,
	}
}

// LargestComponent returns the vertex count of the largest connected
// component — the generators' sanity metric (a Table 1 stand-in must
// be dominated by one component, or GDV structure degenerates).
func (g *Graph) LargestComponent() int {
	n := g.NumVertices()
	seen := make([]bool, n)
	queue := make([]int32, 0, 1024)
	best := 0
	for s := 0; s < n; s++ {
		if seen[s] {
			continue
		}
		seen[s] = true
		queue = append(queue[:0], int32(s))
		size := 0
		for len(queue) > 0 {
			v := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			size++
			for _, u := range g.Neighbors(v) {
				if !seen[u] {
					seen[u] = true
					queue = append(queue, u)
				}
			}
		}
		if size > best {
			best = size
		}
	}
	return best
}
