package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ReadMatrixMarket parses a Matrix Market coordinate file (the
// SuiteSparse interchange format, §3.2) into an undirected graph.
// Pattern, integer and real fields are accepted (values are ignored);
// general and symmetric symmetry are accepted. Indices are 1-based.
func ReadMatrixMarket(r io.Reader, name string) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)

	if !sc.Scan() {
		return nil, fmt.Errorf("graph: empty matrix market input")
	}
	header := strings.Fields(strings.ToLower(sc.Text()))
	if len(header) < 5 || header[0] != "%%matrixmarket" || header[1] != "matrix" || header[2] != "coordinate" {
		return nil, fmt.Errorf("graph: unsupported matrix market header %q", sc.Text())
	}
	switch header[3] {
	case "pattern", "integer", "real":
	default:
		return nil, fmt.Errorf("graph: unsupported field type %q", header[3])
	}
	switch header[4] {
	case "general", "symmetric":
	default:
		return nil, fmt.Errorf("graph: unsupported symmetry %q", header[4])
	}

	// Skip comments, read the size line.
	var rows, cols, nnz int
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		if _, err := fmt.Sscanf(line, "%d %d %d", &rows, &cols, &nnz); err != nil {
			return nil, fmt.Errorf("graph: bad size line %q: %w", line, err)
		}
		break
	}
	if rows <= 0 || rows != cols {
		return nil, fmt.Errorf("graph: adjacency matrix must be square and non-empty (got %dx%d)", rows, cols)
	}

	edges := make([]Edge, 0, nnz)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("graph: bad entry line %q", line)
		}
		u, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("graph: bad row index %q: %w", fields[0], err)
		}
		v, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("graph: bad column index %q: %w", fields[1], err)
		}
		if u < 1 || u > rows || v < 1 || v > rows {
			return nil, fmt.Errorf("graph: entry (%d,%d) out of range", u, v)
		}
		edges = append(edges, Edge{int32(u - 1), int32(v - 1)})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: reading matrix market: %w", err)
	}
	return Build(name, rows, edges)
}

// WriteMatrixMarket writes g as a symmetric pattern coordinate file,
// one line per undirected edge (u <= v in 1-based indices).
func WriteMatrixMarket(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "%%MatrixMarket matrix coordinate pattern symmetric"); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(bw, "%% %s\n", g.Name()); err != nil {
		return err
	}
	n := g.NumVertices()
	undirected := g.NumEdges() / 2
	if _, err := fmt.Fprintf(bw, "%d %d %d\n", n, n, undirected); err != nil {
		return err
	}
	for v := 0; v < n; v++ {
		for _, u := range g.Neighbors(int32(v)) {
			if int32(v) <= u {
				if _, err := fmt.Fprintf(bw, "%d %d\n", v+1, u+1); err != nil {
					return err
				}
			}
		}
	}
	return bw.Flush()
}
