package graph

import (
	"fmt"
	"math"
	"math/rand"
)

// The generators below synthesize the five input-graph classes of
// Table 1. The real inputs (HPC event traces and SuiteSparse matrices,
// 11-18 M vertices) are not redistributable here, so each generator
// reproduces the *topology class* the paper's analysis depends on —
// sparse event chains for Message Race / Unstructured Mesh (which
// de-duplicate well), low-degree road networks, and triangulated
// meshes (which de-duplicate poorly) — at any requested scale.

// MessageRace builds an event graph of a message-race benchmark:
// `procs` processes each execute `steps` events in program order
// (chain edges); at every step each process receives a message from a
// rotating partner (the racing senders of the benchmark), with a small
// random fraction of receives dropped. The pattern is highly
// repetitive — most events have identical local structure, so most
// GDVs coincide — which is exactly why the paper's event graphs
// de-duplicate so well (§3.2: "Graphs will also have repeated
// substructures which can result in some GDVs being similar").
func MessageRace(procs, steps int, seed int64) (*Graph, error) {
	if procs < 2 || steps < 2 {
		return nil, fmt.Errorf("graph: MessageRace needs procs,steps >= 2 (got %d,%d)", procs, steps)
	}
	rng := rand.New(rand.NewSource(seed))
	n := procs * steps
	vid := func(p, t int) int32 { return int32(t*procs + p) }
	edges := make([]Edge, 0, 2*n)
	for p := 0; p < procs; p++ {
		for t := 1; t < steps; t++ {
			edges = append(edges, Edge{vid(p, t-1), vid(p, t)})
		}
	}
	for t := 1; t < steps; t++ {
		shift := 1 + t%3 // rotating sender
		for p := 0; p < procs; p++ {
			if rng.Intn(32) == 0 {
				continue // a dropped/late message
			}
			q := (p + shift) % procs
			edges = append(edges, Edge{vid(q, t-1), vid(p, t)})
		}
	}
	return Build("Message Race", n, edges)
}

// UnstructuredMesh builds the event graph of a halo-exchange mesh
// benchmark: processes form a gridW x gridH grid; each even step every
// process receives from one grid neighbor, rotating direction. The
// communication pattern is almost exactly periodic — halo exchanges
// repeat every iteration, with a ~1.5% perturbation — so GDV updates
// repeat across processes and time: the spatial and temporal
// redundancy §3.2 calls out.
func UnstructuredMesh(gridW, gridH, steps int, seed int64) (*Graph, error) {
	rng := rand.New(rand.NewSource(seed))
	if gridW < 2 || gridH < 2 || steps < 2 {
		return nil, fmt.Errorf("graph: UnstructuredMesh needs grid >= 2x2 and steps >= 2")
	}
	procs := gridW * gridH
	n := procs * steps
	vid := func(p, t int) int32 { return int32(t*procs + p) }
	edges := make([]Edge, 0, n+n/2)
	for p := 0; p < procs; p++ {
		for t := 1; t < steps; t++ {
			edges = append(edges, Edge{vid(p, t-1), vid(p, t)})
		}
	}
	dirs := [4][2]int{{1, 0}, {0, 1}, {-1, 0}, {0, -1}}
	for t := 2; t < steps; t += 2 {
		d := dirs[(t/2)%4]
		for y := 0; y < gridH; y++ {
			for x := 0; x < gridW; x++ {
				nx, ny := x+d[0], y+d[1]
				if nx < 0 || nx >= gridW || ny < 0 || ny >= gridH {
					continue
				}
				if rng.Intn(64) == 0 {
					continue // a perturbed exchange
				}
				p := y*gridW + x
				q := ny*gridW + nx
				edges = append(edges, Edge{vid(q, t-1), vid(p, t)})
			}
		}
	}
	return Build("Unstructured Mesh", n, edges)
}

// RoadNetwork builds an Asia-OSM-like graph: a w x h jittered street
// grid where each vertex keeps its right/down edge with probability
// ~0.54, yielding the ~2.1 adjacency entries per vertex of large road
// networks — long paths, almost no triangles.
func RoadNetwork(w, h int, seed int64) (*Graph, error) {
	if w < 2 || h < 2 {
		return nil, fmt.Errorf("graph: RoadNetwork needs w,h >= 2 (got %d,%d)", w, h)
	}
	rng := rand.New(rand.NewSource(seed))
	n := w * h
	vid := func(x, y int) int32 { return int32(y*w + x) }
	edges := make([]Edge, 0, n)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if x+1 < w && rng.Float64() < 0.55 {
				edges = append(edges, Edge{vid(x, y), vid(x+1, y)})
			}
			if y+1 < h && rng.Float64() < 0.52 {
				edges = append(edges, Edge{vid(x, y), vid(x, y+1)})
			}
		}
	}
	g, err := Build("Asia OSM", n, edges)
	if err != nil {
		return nil, err
	}
	return g, nil
}

// Bubbles builds a Hugebubbles-like graph: a triangulated w x h grid
// (right, down and down-right diagonals) with ~12% of the edges
// removed, the irregular planar-triangulation family of the 2-D bubble
// simulations behind the SuiteSparse Hugebubbles matrices. The
// resulting degree variation makes GDVs diverse, which is why the
// SuiteSparse meshes de-duplicate worse than the event graphs (§3.2).
func Bubbles(w, h int, seed int64) (*Graph, error) {
	if w < 2 || h < 2 {
		return nil, fmt.Errorf("graph: Bubbles needs w,h >= 2 (got %d,%d)", w, h)
	}
	rng := rand.New(rand.NewSource(seed))
	n := w * h
	vid := func(x, y int) int32 { return int32(y*w + x) }
	edges := make([]Edge, 0, 3*n)
	keep := func() bool { return rng.Float64() >= 0.12 }
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if x+1 < w && keep() {
				edges = append(edges, Edge{vid(x, y), vid(x+1, y)})
			}
			if y+1 < h && keep() {
				edges = append(edges, Edge{vid(x, y), vid(x, y+1)})
			}
			if x+1 < w && y+1 < h && keep() {
				edges = append(edges, Edge{vid(x, y), vid(x+1, y+1)})
			}
		}
	}
	g, err := Build("Hugebubbles", n, edges)
	if err != nil {
		return nil, err
	}
	return g, nil
}

// DelaunayLike builds a Delaunay-triangulation-like graph: a
// triangulated jittered grid whose diagonal orientation is randomized
// per cell, giving the irregular ~6 adjacency entries per vertex of
// the SuiteSparse delaunay_n24 input used for the scaling study.
func DelaunayLike(w, h int, seed int64) (*Graph, error) {
	if w < 2 || h < 2 {
		return nil, fmt.Errorf("graph: DelaunayLike needs w,h >= 2 (got %d,%d)", w, h)
	}
	rng := rand.New(rand.NewSource(seed))
	n := w * h
	vid := func(x, y int) int32 { return int32(y*w + x) }
	edges := make([]Edge, 0, 3*n)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if x+1 < w && rng.Float64() >= 0.05 {
				edges = append(edges, Edge{vid(x, y), vid(x+1, y)})
			}
			if y+1 < h && rng.Float64() >= 0.05 {
				edges = append(edges, Edge{vid(x, y), vid(x, y+1)})
			}
			if x+1 < w && y+1 < h {
				if rng.Intn(2) == 0 {
					edges = append(edges, Edge{vid(x, y), vid(x+1, y+1)})
				} else {
					edges = append(edges, Edge{vid(x+1, y), vid(x, y+1)})
				}
			}
		}
	}
	g, err := Build("Delaunay N24", n, edges)
	if err != nil {
		return nil, err
	}
	return g, nil
}

// CatalogEntry describes one Table 1 input at any scale.
type CatalogEntry struct {
	// Name matches Table 1.
	Name string
	// PaperVertices is |V| of the paper's input, for scale math.
	PaperVertices int
	// Generate builds the graph with approximately targetV vertices.
	Generate func(targetV int, seed int64) (*Graph, error)
}

// Catalog returns the five Table 1 inputs. Scale 1.0 reproduces the
// paper's vertex counts (11-18 M); benchmarks default to ~1/100.
func Catalog() []CatalogEntry {
	return []CatalogEntry{
		{
			Name:          "Message Race",
			PaperVertices: 11174336,
			Generate: func(targetV int, seed int64) (*Graph, error) {
				procs := clamp(targetV/512, 8, 1024)
				steps := maxInt(2, targetV/procs)
				return MessageRace(procs, steps, seed)
			},
		},
		{
			Name:          "Unstructured Mesh",
			PaperVertices: 14418368,
			Generate: func(targetV int, seed int64) (*Graph, error) {
				side := clamp(int(math.Sqrt(float64(targetV)/256)), 2, 32)
				steps := maxInt(2, targetV/(side*side))
				return UnstructuredMesh(side, side, steps, seed)
			},
		},
		{
			Name:          "Asia OSM",
			PaperVertices: 11950757,
			Generate: func(targetV int, seed int64) (*Graph, error) {
				side := maxInt(2, int(math.Sqrt(float64(targetV))))
				return RoadNetwork(side, side, seed)
			},
		},
		{
			Name:          "Hugebubbles",
			PaperVertices: 18318143,
			Generate: func(targetV int, seed int64) (*Graph, error) {
				side := maxInt(2, int(math.Sqrt(float64(targetV))))
				return Bubbles(side, side, seed)
			},
		},
		{
			Name:          "Delaunay N24",
			PaperVertices: 16777216,
			Generate: func(targetV int, seed int64) (*Graph, error) {
				side := maxInt(2, int(math.Sqrt(float64(targetV))))
				return DelaunayLike(side, side, seed)
			},
		},
	}
}

// CatalogByName returns the catalog entry with the given Table 1 name.
func CatalogByName(name string) (CatalogEntry, error) {
	for _, e := range Catalog() {
		if e.Name == name {
			return e, nil
		}
	}
	return CatalogEntry{}, fmt.Errorf("graph: unknown catalog graph %q", name)
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
