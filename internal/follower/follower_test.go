// Follower tests run a real server and a real client: the primary is
// fed over the public push path, the follower tails it over the wire,
// and every scenario ends with a byte-exact comparison between the
// promoted state and the source images. The external test package is
// deliberate — it exercises the same surface ckptd's standby mode
// uses, and keeps the ckptlint closecontract key ("follower.New")
// honest.
package follower_test

import (
	"bytes"
	"context"
	"math/rand"
	"net"
	"sync/atomic"
	"testing"
	"time"

	gpuckpt "github.com/gpuckpt/gpuckpt"
	"github.com/gpuckpt/gpuckpt/internal/follower"
	"github.com/gpuckpt/gpuckpt/internal/server"
)

const (
	testDataLen = 4096
	testChunk   = 256
)

// testImages is the seeded mutation series shared with the chaos
// suite: a random base image, then chunk-sized splotches per step.
func testImages(seed int64, n int) [][]byte {
	rng := rand.New(rand.NewSource(seed))
	img := make([]byte, testDataLen)
	rng.Read(img)
	out := make([][]byte, n)
	out[0] = append([]byte(nil), img...)
	for i := 1; i < n; i++ {
		for s := 0; s < 8; s++ {
			off := rng.Intn(testDataLen - 32)
			rng.Read(img[off : off+32])
		}
		out[i] = append([]byte(nil), img...)
	}
	return out
}

func startServer(t *testing.T, cfg server.Config) (*server.Server, string, func()) {
	t.Helper()
	cfg.Logf = func(string, ...any) {}
	srv, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ctx, ln) }()
	stop := func() {
		cancel()
		if err := <-done; err != nil {
			t.Errorf("Serve returned %v", err)
		}
	}
	return srv, ln.Addr().String(), stop
}

// checkpointer holds images[:n] as a tree-method chain ready to push.
func checkpointer(t *testing.T, images [][]byte) *gpuckpt.Checkpointer {
	t.Helper()
	ck, err := gpuckpt.New(gpuckpt.Config{Method: gpuckpt.MethodTree, ChunkSize: testChunk}, testDataLen)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ck.Close() })
	for _, img := range images {
		if _, err := ck.Checkpoint(img); err != nil {
			t.Fatal(err)
		}
	}
	return ck
}

// runFollower builds a follower with test defaults, starts Run, and
// registers cleanup. Extra options are applied over the defaults.
func runFollower(t *testing.T, addr, lineage string, tweak func(*follower.Options)) *follower.Follower {
	t.Helper()
	opts := follower.Options{
		Addr:         addr,
		Lineage:      lineage,
		Dir:          t.TempDir(),
		Timeout:      5 * time.Second,
		PollInterval: 20 * time.Millisecond,
		MinBackoff:   5 * time.Millisecond,
		MaxBackoff:   100 * time.Millisecond,
		Logf:         t.Logf,
	}
	if tweak != nil {
		tweak(&opts)
	}
	fl, err := follower.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fl.Close() })
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	done := make(chan struct{})
	go func() { defer close(done); fl.Run(ctx) }()
	t.Cleanup(func() {
		cancel()
		fl.Close()
		<-done
	})
	return fl
}

// waitNext blocks until the follower's cursor reaches want.
func waitNext(t *testing.T, fl *follower.Follower, want int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if fl.Stats().Next >= want {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("follower stuck at %+v, want Next >= %d", fl.Stats(), want)
}

// verifyPromotion checks the promoted replica byte-for-byte: the
// materialized state against the final image, and every restorable
// checkpoint against its source.
func verifyPromotion(t *testing.T, p *follower.Promotion, images [][]byte, base int) {
	t.Helper()
	if p.Base != base || p.Len != len(images) {
		t.Fatalf("promotion span [%d,%d), want [%d,%d)", p.Base, p.Len, base, len(images))
	}
	if !bytes.Equal(p.State, images[len(images)-1]) {
		t.Fatal("promoted state diverges from the final image")
	}
	for k := base; k < len(images); k++ {
		got, err := p.Record.Restore(k - base)
		if err != nil {
			t.Fatalf("restore %d from promoted record: %v", k, err)
		}
		if !bytes.Equal(got, images[k]) {
			t.Fatalf("promoted restore %d diverges", k)
		}
	}
}

// The happy path: subscribe on v5, receive the backlog, then live
// frames as the primary keeps pushing, and promote with zero applies.
func TestFollowerLiveTailAndPromote(t *testing.T) {
	images := testImages(901, 6)
	_, addr, stop := startServer(t, server.Config{Root: t.TempDir()})
	defer stop()
	cl, err := gpuckpt.Dial(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ck := checkpointer(t, images[:3])
	if _, err := cl.PushCheckpointer("live", ck); err != nil {
		t.Fatal(err)
	}

	var applies atomic.Int64
	fl := runFollower(t, addr, "live", func(o *follower.Options) {
		o.OnApply = func(int) { applies.Add(1) }
	})
	waitNext(t, fl, 3) // backlog replay

	for _, img := range images[3:] {
		if _, err := ck.Checkpoint(img); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := cl.PushCheckpointer("live", ck); err != nil {
		t.Fatal(err)
	}
	waitNext(t, fl, 6) // live frames

	st := fl.Stats()
	if st.TailFrames < 6 || st.Polls != 0 {
		t.Fatalf("expected pure v5 tailing, got %+v", st)
	}
	// OnApply fires after the cursor is published; give it a beat.
	deadline := time.Now().Add(5 * time.Second)
	for applies.Load() != 6 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := applies.Load(); got != 6 {
		t.Fatalf("OnApply fired %d times, want 6", got)
	}

	appliedBefore := st.Applied
	p, err := fl.Promote()
	if err != nil {
		t.Fatal(err)
	}
	// Promotion performs zero diff applies: the state was materialized
	// before the call.
	if after := fl.Stats().Applied; after != appliedBefore {
		t.Fatalf("promote replayed diffs: applied %d -> %d", appliedBefore, after)
	}
	verifyPromotion(t, p, images, 0)
	if !fl.Stats().Promoted {
		t.Fatal("Stats does not report promotion")
	}
	if _, err := fl.Promote(); err != nil {
		t.Fatalf("second promote: %v", err)
	}
	if err := fl.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := fl.Promote(); err == nil {
		t.Fatal("promote after close succeeded")
	}
}

// Interop: a v5 follower against a primary pinned to wire v4 must
// degrade to poll-based tailing and still converge byte-exactly.
func TestFollowerPollFallbackAgainstV4(t *testing.T) {
	images := testImages(902, 5)
	_, addr, stop := startServer(t, server.Config{Root: t.TempDir(), Protocol: 4})
	defer stop()
	cl, err := gpuckpt.Dial(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ck := checkpointer(t, images[:2])
	if _, err := cl.PushCheckpointer("v4", ck); err != nil {
		t.Fatal(err)
	}

	fl := runFollower(t, addr, "v4", nil)
	waitNext(t, fl, 2)

	for _, img := range images[2:] {
		if _, err := ck.Checkpoint(img); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := cl.PushCheckpointer("v4", ck); err != nil {
		t.Fatal(err)
	}
	waitNext(t, fl, 5)

	st := fl.Stats()
	if st.Polls == 0 || st.TailFrames != 0 {
		t.Fatalf("expected poll fallback, got %+v", st)
	}
	p, err := fl.Promote()
	if err != nil {
		t.Fatal(err)
	}
	verifyPromotion(t, p, images, 0)
}

// A compaction fold on the primary invalidates the follower's cursor
// mid-stream. The follower must receive the barrier, re-pull the
// folded span, and converge byte-exactly on the new baseline.
func TestFollowerResyncAcrossFold(t *testing.T) {
	images := testImages(903, 8)
	_, addr, stop := startServer(t, server.Config{Root: t.TempDir()})
	defer stop()
	cl, err := gpuckpt.Dial(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ck := checkpointer(t, images[:5])
	if _, err := cl.PushCheckpointer("fold", ck); err != nil {
		t.Fatal(err)
	}

	fl := runFollower(t, addr, "fold", nil)
	waitNext(t, fl, 5)

	// Fold the primary to base 3 while the subscription is live.
	if _, err := cl.CompactTo("fold", 3); err != nil {
		t.Fatal(err)
	}
	for _, img := range images[5:] {
		if _, err := ck.Checkpoint(img); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := cl.PushCheckpointer("fold", ck); err != nil {
		t.Fatal(err)
	}
	waitNext(t, fl, 8)

	deadline := time.Now().Add(5 * time.Second)
	for fl.Stats().Base != 3 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	st := fl.Stats()
	if st.Base != 3 {
		t.Fatalf("follower base = %d after fold, want 3 (%+v)", st.Base, st)
	}
	if st.Resyncs == 0 {
		t.Fatalf("fold did not force a resync: %+v", st)
	}
	p, err := fl.Promote()
	if err != nil {
		t.Fatal(err)
	}
	verifyPromotion(t, p, images, 3)
}

// A restarted standby must resume from its mirror's stored cursor —
// re-subscribing where the previous process stopped instead of
// re-pulling the chain.
func TestFollowerRestartResumesFromMirror(t *testing.T) {
	images := testImages(904, 6)
	_, addr, stop := startServer(t, server.Config{Root: t.TempDir()})
	defer stop()
	cl, err := gpuckpt.Dial(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ck := checkpointer(t, images[:4])
	if _, err := cl.PushCheckpointer("restart", ck); err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	fl := runFollower(t, addr, "restart", func(o *follower.Options) { o.Dir = dir })
	waitNext(t, fl, 4)
	if err := fl.Close(); err != nil {
		t.Fatal(err)
	}

	for _, img := range images[4:] {
		if _, err := ck.Checkpoint(img); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := cl.PushCheckpointer("restart", ck); err != nil {
		t.Fatal(err)
	}

	fl2 := runFollower(t, addr, "restart", func(o *follower.Options) { o.Dir = dir })
	waitNext(t, fl2, 6)
	st := fl2.Stats()
	if st.Applied != 2 {
		t.Fatalf("restarted follower applied %d diffs, want only the 2 new ones (%+v)", st.Applied, st)
	}
	if st.Resyncs != 0 {
		t.Fatalf("clean resume should not resync: %+v", st)
	}
	p, err := fl2.Promote()
	if err != nil {
		t.Fatal(err)
	}
	verifyPromotion(t, p, images, 0)
}

// A fresh follower joining an already folded lineage has no local
// cursor at all; the subscribe must be redirected through a full span
// pull before streaming starts.
func TestFollowerJoinsFoldedLineage(t *testing.T) {
	images := testImages(905, 6)
	_, addr, stop := startServer(t, server.Config{Root: t.TempDir()})
	defer stop()
	cl, err := gpuckpt.Dial(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ck := checkpointer(t, images)
	if _, err := cl.PushCheckpointer("folded", ck); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.CompactTo("folded", 4); err != nil {
		t.Fatal(err)
	}

	fl := runFollower(t, addr, "folded", nil)
	waitNext(t, fl, 6)
	st := fl.Stats()
	if st.Base != 4 || st.Resyncs == 0 {
		t.Fatalf("fresh join of folded lineage: %+v, want base 4 via resync", st)
	}
	p, err := fl.Promote()
	if err != nil {
		t.Fatal(err)
	}
	verifyPromotion(t, p, images, 4)
}

// Lineages is the discovery call behind ckptd's standby mode.
func TestFollowerLineagesDiscovery(t *testing.T) {
	images := testImages(906, 3)
	_, addr, stop := startServer(t, server.Config{Root: t.TempDir()})
	defer stop()
	cl, err := gpuckpt.Dial(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ck := checkpointer(t, images)
	if _, err := cl.PushCheckpointer("disco", ck); err != nil {
		t.Fatal(err)
	}
	infos, err := follower.Lineages(addr, 5*time.Second, nil)
	if err != nil {
		t.Fatal(err)
	}
	var found bool
	for _, info := range infos {
		if info.Name == "disco" && info.Len == 3 {
			found = true
		}
	}
	if !found {
		t.Fatalf("lineage directory %+v misses disco/3", infos)
	}
}
