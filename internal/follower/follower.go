// Package follower implements the hot-standby side of live
// replication: a subscriber that dials a ckptd primary, tails the
// server-pushed diff stream of one lineage (wire v5 TSubscRIBE), and
// applies every diff as it arrives into both a local FileStore mirror
// (durability) and a live in-memory Record plus materialized state
// buffer (serving readiness). Because the state buffer is advanced on
// every arrival, Promote is O(1) — it returns the already-current
// state without replaying the chain, which is the paper's restore
// cost moved off the failure path (ROADMAP item 4; the PhoenixOS /
// CRIUgpu "keep the standby warm" model).
//
// # Resume cursors
//
// The follower's position is the cursor {base, next, crc}: the
// baseline it mirrors, the next checkpoint id it needs, and the
// CRC32C of the last diff it holds. Every reconnect re-subscribes
// with the cursor; the primary either resumes the stream exactly
// there (re-verifying continuity against its stored bytes) or answers
// with a TResync barrier naming the authoritative [base, len) span,
// which the follower pulls over the same connection and installs
// atomically (FileStore.InstallSpan — the PR 4 manifest transaction),
// then re-subscribes. Being shed for lag, a primary crash mid-frame,
// and a compaction fold racing the stream all collapse into the same
// loop: reconnect, re-subscribe, maybe resync.
//
// # v4 fallback
//
// Against a primary that negotiates wire v4 or below (no TSubscribe)
// the follower degrades to poll-based tailing: a TOpen length probe
// every PollInterval, pulling whatever appeared. Same convergence,
// higher latency — the interop contract of the v5 bump.
package follower

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/gpuckpt/gpuckpt/internal/checkpoint"
	"github.com/gpuckpt/gpuckpt/internal/connpool"
	"github.com/gpuckpt/gpuckpt/internal/wire"
)

// Dialer opens the transport to the primary; tests inject fault-
// wrapped dialers through it (the PR 5 network seam).
type Dialer func(addr string, timeout time.Duration) (net.Conn, error)

// Defaults applied by New for zero Options fields.
const (
	DefaultTimeout      = 10 * time.Second
	DefaultPollInterval = 200 * time.Millisecond
	DefaultMinBackoff   = 50 * time.Millisecond
	DefaultMaxBackoff   = 2 * time.Second

	// tailTick is the read-deadline granularity of the tail loop: how
	// often an idle subscriber wakes to check for cancellation.
	tailTick = 250 * time.Millisecond
	// connBufSize matches the server's per-connection buffer.
	connBufSize = 64 << 10
	// resubscribeAttempts bounds same-connection resync+re-subscribe
	// rounds before the follower tears the connection down and starts
	// over (a live primary folding continuously could otherwise pin
	// the loop).
	resubscribeAttempts = 4
)

// Options configures a Follower.
type Options struct {
	// Addr is the primary's host:port. Required.
	Addr string
	// Lineage is the lineage to mirror. Required.
	Lineage string
	// Dir is the local mirror directory (a checkpoint.FileStore).
	// Required.
	Dir string
	// Timeout bounds dials and request round trips (default 10s).
	Timeout time.Duration
	// PollInterval is the tail probe cadence against a v4 primary
	// (default 200ms). Unused when the primary speaks v5.
	PollInterval time.Duration
	// MinBackoff/MaxBackoff bound the reconnect backoff (defaults
	// 50ms/2s; backoff resets whenever a session makes progress).
	MinBackoff, MaxBackoff time.Duration
	// Dialer overrides the transport dial (default net.DialTimeout);
	// the chaos suite injects fault-wrapped connections here.
	Dialer Dialer
	// Logf sinks follower logs (default: silent).
	Logf func(format string, args ...any)
	// OnApply, when set, runs after checkpoint ckpt is applied and
	// durable in the mirror — without internal locks held, so it may
	// call Stats. The failover experiment uses it to timestamp
	// replication lag.
	OnApply func(ckpt int)
}

func (o *Options) fill() error {
	if o.Addr == "" || o.Lineage == "" || o.Dir == "" {
		return errors.New("follower: Addr, Lineage and Dir are required")
	}
	if o.Timeout <= 0 {
		o.Timeout = DefaultTimeout
	}
	if o.PollInterval <= 0 {
		o.PollInterval = DefaultPollInterval
	}
	if o.MinBackoff <= 0 {
		o.MinBackoff = DefaultMinBackoff
	}
	if o.MaxBackoff < o.MinBackoff {
		o.MaxBackoff = DefaultMaxBackoff
	}
	if o.Dialer == nil {
		o.Dialer = defaultDial
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	return nil
}

// Stats is a snapshot of a follower's replication progress.
type Stats struct {
	// Base and Next delimit the mirrored cursor: diffs [Base, Next)
	// are applied and durable locally.
	Base, Next int
	// Applied counts diffs applied since New.
	Applied uint64
	// TailFrames counts diffs that arrived via the v5 stream; Polls
	// counts v4 length probes.
	TailFrames, Polls uint64
	// Resyncs counts span re-pulls after a fold barrier; Reconnects
	// counts sessions ended by any error or barrier.
	Resyncs, Reconnects uint64
	// Healed counts mirror diffs repaired by Heal — rot detected on
	// the standby's own disk and re-pulled from the primary.
	Healed uint64
	// Promoted reports whether Promote has been called.
	Promoted bool
}

// Promotion is the serving-ready outcome of Promote.
type Promotion struct {
	// Lineage and Dir identify the mirror.
	Lineage, Dir string
	// Base and Len delimit the promoted span: checkpoints [Base, Len)
	// are restorable. Len == Base means the lineage was empty.
	Base, Len int
	// Record is the live in-memory record (indices relative to Base).
	// Nil when the lineage was empty.
	Record *checkpoint.Record
	// State is the materialized buffer of checkpoint Len-1 — current
	// BEFORE Promote was called; no replay happened. Nil when empty.
	State []byte
	// Store is the mirror's FileStore, still open and owned by the
	// Follower: it remains valid until Close. A promoted daemon that
	// wants to serve the directory with its own store must Close the
	// follower first.
	Store *checkpoint.FileStore
}

// session is the per-connection protocol state parked in the pool.
type session struct {
	version uint8
	br      *bufio.Reader
	bw      *bufio.Writer
	frame   wire.Frame
	scratch []byte
}

// errStopped ends a session loop because Close or Promote was called.
var errStopped = errors.New("follower: stopped")

func defaultDial(addr string, timeout time.Duration) (net.Conn, error) {
	return net.DialTimeout("tcp", addr, timeout)
}

// Follower mirrors one lineage from a primary. Create with New, drive
// with Run (one goroutine, owned by the caller), finish with Promote
// and/or Close. A Follower must be Closed (ckptlint closecontract).
type Follower struct {
	opts Options
	pool *connpool.Pool

	mu sync.Mutex
	//ckptlint:guardedby mu
	store *checkpoint.FileStore
	// rec/state are the live serving replica: rec holds diffs rebased
	// to the mirror baseline, state is the materialized buffer of
	// checkpoint next-1. Maintained incrementally by every apply.
	//ckptlint:guardedby mu
	rec *checkpoint.Record
	//ckptlint:guardedby mu
	state []byte
	//ckptlint:guardedby mu
	base int
	//ckptlint:guardedby mu
	next int
	//ckptlint:guardedby mu
	lastCRC uint32
	//ckptlint:guardedby mu
	promoted bool
	//ckptlint:guardedby mu
	closed bool
	// cur is the connection of the running session, severed by
	// Close/Promote to interrupt a blocked read.
	//ckptlint:guardedby mu
	cur net.Conn

	// stop is closed (once) by Close or Promote to wake sleeps.
	stop     chan struct{}
	stopOnce sync.Once

	applied    atomic.Uint64 //ckptlint:atomic
	tailFrames atomic.Uint64 //ckptlint:atomic
	polls      atomic.Uint64 //ckptlint:atomic
	resyncs    atomic.Uint64 //ckptlint:atomic
	reconnects atomic.Uint64 //ckptlint:atomic
	healed     atomic.Uint64 //ckptlint:atomic
}

// New opens (or reopens) the mirror directory and builds a Follower.
// A non-empty mirror resumes from its stored cursor — a restarted
// standby re-subscribes where it crashed instead of re-pulling.
func New(opts Options) (*Follower, error) {
	if err := opts.fill(); err != nil {
		return nil, err
	}
	store, err := checkpoint.NewFileStore(opts.Dir)
	if err != nil {
		return nil, err
	}
	f := &Follower{opts: opts, store: store, stop: make(chan struct{})}
	f.pool, err = connpool.New(connpool.Options{
		Dial:        f.dial,
		MaxActive:   1,
		WaitTimeout: opts.Timeout,
	})
	if err != nil {
		store.Close()
		return nil, err
	}
	n, lerr := store.Len()
	if lerr == nil && (n > 0 || store.Base() > 0) {
		f.mu.Lock()
		lerr = f.reloadLocked()
		f.mu.Unlock()
	}
	if lerr != nil {
		f.pool.Close()
		store.Close()
		return nil, fmt.Errorf("follower: mirror %s unusable: %w", opts.Dir, lerr)
	}
	return f, nil
}

// dial opens and handshakes one pooled connection.
func (f *Follower) dial() (net.Conn, any, error) {
	nc, err := f.opts.Dialer(f.opts.Addr, f.opts.Timeout)
	if err != nil {
		return nil, nil, err
	}
	nc.SetDeadline(time.Now().Add(f.opts.Timeout))
	v, err := wire.Handshake(nc)
	if err != nil {
		nc.Close()
		return nil, nil, err
	}
	nc.SetDeadline(time.Time{})
	return nc, &session{
		version: v,
		br:      bufio.NewReaderSize(nc, connBufSize),
		bw:      bufio.NewWriterSize(nc, connBufSize),
	}, nil
}

// Run drives replication until ctx is cancelled or Close/Promote is
// called: dial, subscribe (or poll), apply, reconnect with backoff.
// It always returns nil on a deliberate stop; it never returns on a
// primary failure — that is the condition the standby exists for.
func (f *Follower) Run(ctx context.Context) error {
	backoff := f.opts.MinBackoff
	for {
		if ctx.Err() != nil || f.stopped() {
			return nil
		}
		progress, err := f.session(ctx)
		if ctx.Err() != nil || f.stopped() {
			return nil
		}
		f.reconnects.Add(1)
		if err != nil && !errors.Is(err, errStopped) {
			f.opts.Logf("follower %s: session: %v", f.opts.Lineage, err)
		}
		if progress {
			backoff = f.opts.MinBackoff
		} else {
			backoff = min(backoff*2, f.opts.MaxBackoff)
		}
		timer := time.NewTimer(backoff)
		select {
		case <-ctx.Done():
			timer.Stop()
			return nil
		case <-f.stop:
			timer.Stop()
			return nil
		case <-timer.C:
		}
	}
}

// session runs one connection's worth of replication and reports
// whether it made progress (applied, resynced, or reached the
// primary's length).
func (f *Follower) session(ctx context.Context) (bool, error) {
	c, err := f.pool.Get()
	if err != nil {
		return false, err
	}
	f.setConn(c.NC)
	healthy := false
	defer func() {
		f.setConn(nil)
		if healthy {
			c.Release()
		} else {
			c.Discard()
		}
	}()
	sess := c.Session.(*session)
	handle, err := f.openLineage(c)
	if err != nil {
		return false, err
	}
	if sess.version >= 5 {
		return f.subscribe(ctx, c, handle)
	}
	progress, err := f.poll(ctx, c, handle)
	// A poll session ends only on error or stop; the connection is
	// reusable after a deliberate stop.
	healthy = err == nil
	return progress, err
}

// setConn records the live connection so Close/Promote can sever it.
func (f *Follower) setConn(nc net.Conn) {
	f.mu.Lock()
	f.cur = nc
	f.mu.Unlock()
}

// openLineage resolves the lineage name to this connection's handle.
func (f *Follower) openLineage(c *connpool.Conn) (uint32, error) {
	resp, err := f.roundTrip(c, &wire.Frame{Type: wire.TOpen, Payload: []byte(f.opts.Lineage)})
	if err != nil {
		return 0, err
	}
	if err := resp.Err(); err != nil {
		return 0, err
	}
	return resp.Lineage, nil
}

// roundTrip writes one request and reads one response under Timeout
// deadlines. An unsolicited TErr frame (the server's over-capacity
// greeting) surfaces as its typed error.
func (f *Follower) roundTrip(c *connpool.Conn, req *wire.Frame) (*wire.Frame, error) {
	sess := c.Session.(*session)
	c.NC.SetWriteDeadline(time.Now().Add(f.opts.Timeout))
	if err := wire.WriteFrame(sess.bw, req); err != nil {
		return nil, err
	}
	if err := sess.bw.Flush(); err != nil {
		return nil, err
	}
	c.NC.SetReadDeadline(time.Now().Add(f.opts.Timeout))
	if err := wire.ReadFrameInto(sess.br, wire.DefaultMaxPayload, &sess.frame, &sess.scratch); err != nil {
		return nil, err
	}
	resp := &sess.frame
	if resp.Type == wire.TErr {
		return nil, resp.Err()
	}
	return resp, nil
}

// cursor snapshots the resume position.
func (f *Follower) cursor() wire.Cursor {
	f.mu.Lock()
	defer f.mu.Unlock()
	return wire.Cursor{Base: uint32(f.base), Next: uint32(f.next), CRC: f.lastCRC}
}

// subscribe drives the v5 path on one connection: subscribe (resync
// and retry on a barrier response), then tail the stream.
func (f *Follower) subscribe(ctx context.Context, c *connpool.Conn, handle uint32) (bool, error) {
	progress := false
	for attempt := 0; attempt < resubscribeAttempts; attempt++ {
		if ctx.Err() != nil || f.stopped() {
			return progress, nil
		}
		req := &wire.Frame{Type: wire.TSubscribe, Lineage: handle,
			Payload: wire.EncodeSubscribe(f.cursor())}
		resp, err := f.roundTrip(c, req)
		if err != nil {
			return progress, err
		}
		switch {
		case resp.Type == wire.TResync && resp.Status == wire.StatusOK:
			// Cursor rejected; the connection is still in request
			// mode. Pull the authoritative span right here, then
			// re-subscribe with the fresh cursor.
			info, err := wire.DecodeResync(resp.Payload)
			if err != nil {
				return progress, err
			}
			if err := f.resync(c, handle, info); err != nil {
				return progress, err
			}
			progress = true
			continue
		case resp.Type == wire.TSubscribe && resp.Status == wire.StatusOK:
			if _, err := wire.DecodeSubscribeAck(resp.Payload); err != nil {
				return progress, err
			}
			tailed, err := f.tail(ctx, c)
			return progress || tailed, err
		default:
			err := resp.Err()
			if errors.Is(err, wire.ErrUnsupported) {
				// A v5 hello but no subscription support (version pin
				// newer than the feature): degrade to polling.
				return f.poll(ctx, c, handle)
			}
			if err == nil {
				err = fmt.Errorf("follower: unexpected %#x response to subscribe", resp.Type)
			}
			return progress, err
		}
	}
	return progress, fmt.Errorf("follower: cursor not settled after %d resyncs", resubscribeAttempts)
}

// tail reads server-pushed frames until the stream ends. Reads use
// short deadlines as idle ticks so cancellation is noticed between
// frames; bufio.Peek keeps partially arrived bytes buffered across
// ticks, so a frame straddling a tick is never torn.
func (f *Follower) tail(ctx context.Context, c *connpool.Conn) (bool, error) {
	sess := c.Session.(*session)
	progress := false
	var stalled time.Duration
	prevBuffered := 0
	for {
		if ctx.Err() != nil || f.stopped() {
			return progress, nil
		}
		c.NC.SetReadDeadline(time.Now().Add(tailTick))
		_, err := sess.br.Peek(wire.HeaderSize)
		if err != nil {
			if wire.Timeout(err) {
				// Idle tick. A partial frame that stops growing for a
				// full Timeout is a stalled primary, not idleness.
				if b := sess.br.Buffered(); b > 0 && b == prevBuffered {
					stalled += tailTick
					if stalled >= f.opts.Timeout {
						return progress, fmt.Errorf("follower: stream stalled mid-frame (%d bytes buffered)", b)
					}
				} else {
					prevBuffered = sess.br.Buffered()
					stalled = 0
				}
				continue
			}
			return progress, err
		}
		stalled, prevBuffered = 0, 0
		c.NC.SetReadDeadline(time.Now().Add(f.opts.Timeout))
		if err := wire.ReadFrameInto(sess.br, wire.DefaultMaxPayload, &sess.frame, &sess.scratch); err != nil {
			return progress, err
		}
		fr := &sess.frame
		switch fr.Type {
		case wire.TTail:
			crc, encoded, err := wire.DecodePush(fr.Payload)
			if err != nil {
				return progress, err
			}
			f.tailFrames.Add(1)
			if err := f.applyEncoded(int(fr.Ckpt), encoded, crc); err != nil {
				if errors.Is(err, errStopped) {
					return progress, nil
				}
				return progress, err
			}
			progress = true
		case wire.TResync:
			// Mid-stream barrier: terminal for this connection. The
			// next session's subscribe resolves it (a lag shed resumes
			// via cursor; a fold triggers the resync response path).
			info, err := wire.DecodeResync(fr.Payload)
			if err != nil {
				return progress, err
			}
			f.opts.Logf("follower %s: stream barrier: %s [%d,%d)",
				f.opts.Lineage, wire.ResyncReasonString(info.Reason), info.Base, info.Len)
			return progress, nil
		default:
			return progress, fmt.Errorf("follower: unexpected frame %#x in tail stream", fr.Type)
		}
	}
}

// poll is the v4 fallback: probe the lineage length every
// PollInterval and pull whatever appeared.
func (f *Follower) poll(ctx context.Context, c *connpool.Conn, handle uint32) (bool, error) {
	progress := false
	for {
		if ctx.Err() != nil || f.stopped() {
			return progress, nil
		}
		resp, err := f.roundTrip(c, &wire.Frame{Type: wire.TOpen, Payload: []byte(f.opts.Lineage)})
		if err != nil {
			return progress, err
		}
		if err := resp.Err(); err != nil {
			return progress, err
		}
		n := int(resp.Ckpt)
		base32, err := wire.DecodeOpenInfo(resp.Payload)
		if err != nil {
			return progress, err
		}
		f.polls.Add(1)
		cur := f.cursor()
		if int(cur.Base) != int(base32) || int(cur.Next) > n {
			// The primary folded (or regressed, which resync rejects).
			if err := f.resync(c, handle, wire.Resync{Reason: wire.ResyncFold, Base: base32, Len: uint32(n)}); err != nil {
				return progress, err
			}
			progress = true
			cur = f.cursor()
		}
		for k := int(cur.Next); k < n; k++ {
			encoded, err := f.pull(c, handle, k)
			if err != nil {
				return progress, err
			}
			if err := f.applyEncoded(k, encoded, wire.Checksum(encoded)); err != nil {
				if errors.Is(err, errStopped) {
					return progress, nil
				}
				return progress, err
			}
			progress = true
		}
		timer := time.NewTimer(f.opts.PollInterval)
		select {
		case <-ctx.Done():
			timer.Stop()
			return progress, nil
		case <-f.stop:
			timer.Stop()
			return progress, nil
		case <-timer.C:
		}
	}
}

// pull fetches one encoded diff (no CRC prefix — TPull serves the
// stored bytes, whose integrity footer the store already verified).
func (f *Follower) pull(c *connpool.Conn, handle uint32, k int) ([]byte, error) {
	resp, err := f.roundTrip(c, &wire.Frame{Type: wire.TPull, Lineage: handle, Ckpt: uint32(k)})
	if err != nil {
		return nil, err
	}
	if err := resp.Err(); err != nil {
		return nil, err
	}
	return resp.Payload, nil
}

// resync pulls the authoritative span [info.Base, info.Len) and
// installs it atomically over the mirror, then rebuilds the live
// replica. O(span), but only runs when a fold invalidated the cursor.
func (f *Follower) resync(c *connpool.Conn, handle uint32, info wire.Resync) error {
	if info.Len == info.Base {
		if info.Base == 0 {
			cur := f.cursor()
			if cur.Next > 0 {
				return errors.New("follower: mirror is ahead of an empty primary (diverged lineage?)")
			}
			return nil // both empty: nothing to do
		}
		return fmt.Errorf("follower: resync span [%d,%d) is empty", info.Base, info.Len)
	}
	diffs := make([]*checkpoint.Diff, 0, info.Len-info.Base)
	for k := info.Base; k < info.Len; k++ {
		encoded, err := f.pull(c, handle, int(k))
		if err != nil {
			return fmt.Errorf("follower: resync pull %d: %w", k, err)
		}
		d, err := checkpoint.Decode(bytes.NewReader(encoded))
		if err != nil {
			return fmt.Errorf("follower: resync decode %d: %w", k, err)
		}
		if uint32(d.CkptID) != k {
			return fmt.Errorf("follower: resync pull %d returned diff %d", k, d.CkptID)
		}
		diffs = append(diffs, d)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed || f.promoted {
		return errStopped
	}
	if err := f.store.InstallSpan(int(info.Base), diffs); err != nil {
		return fmt.Errorf("follower: installing resync span: %w", err)
	}
	if err := f.reloadLocked(); err != nil {
		return fmt.Errorf("follower: reloading after resync: %w", err)
	}
	f.resyncs.Add(1)
	return nil
}

// reloadLocked rebuilds the in-memory replica (record, materialized
// state, cursor) from the mirror store — the slow path used at
// startup with a non-empty mirror and after a resync install.
//
//ckptlint:locked mu
func (f *Follower) reloadLocked() error {
	n, err := f.store.Len()
	if err != nil {
		return err
	}
	base := f.store.Base()
	if n == base {
		f.rec, f.state = nil, nil
		f.base, f.next, f.lastCRC = base, n, 0
		return nil
	}
	rec, err := f.store.Load()
	if err != nil {
		return err
	}
	state, err := rec.RestoreLatest()
	if err != nil {
		return err
	}
	last, err := f.store.DiffBytes(n - 1)
	if err != nil {
		return err
	}
	f.rec, f.state = rec, state
	f.base, f.next, f.lastCRC = base, n, wire.Checksum(last)
	return nil
}

// applyEncoded applies one arrived diff: durable append to the mirror
// first, then the live record and the materialized state buffer, then
// the cursor. encoded may alias the session scratch buffer — Decode
// copies what it keeps.
func (f *Follower) applyEncoded(k int, encoded []byte, crc uint32) error {
	d, err := checkpoint.Decode(bytes.NewReader(encoded))
	if err != nil {
		return fmt.Errorf("follower: decoding diff %d: %w", k, err)
	}
	if int(d.CkptID) != k {
		return fmt.Errorf("follower: frame ckpt %d carries diff %d", k, d.CkptID)
	}
	f.mu.Lock()
	if f.closed || f.promoted {
		f.mu.Unlock()
		return errStopped
	}
	if k < f.next {
		f.mu.Unlock()
		return nil // replay of an already-applied diff
	}
	if k != f.next {
		f.mu.Unlock()
		return fmt.Errorf("follower: gap: got diff %d, cursor at %d", k, f.next)
	}
	if err := f.store.Append(d); err != nil {
		f.mu.Unlock()
		return fmt.Errorf("follower: mirroring diff %d: %w", k, err)
	}
	// Mirror is durable; extend the live replica. The record gets a
	// rebased shallow clone (the mirror stored the absolute original).
	if err := f.applyLiveLocked(d, k); err != nil {
		// The store accepted what the replica rejected (or apply
		// failed mid-flight): rebuild the replica from the store
		// rather than serving a diverged state. Rare enough that the
		// O(chain) reload is acceptable.
		f.opts.Logf("follower %s: live apply %d failed (%v); reloading replica", f.opts.Lineage, k, err)
		if rerr := f.reloadLocked(); rerr != nil {
			f.mu.Unlock()
			return fmt.Errorf("follower: replica reload after failed apply %d: %w", k, rerr)
		}
	} else {
		f.next = k + 1
		f.lastCRC = crc
	}
	// Counted before the unlock so a Stats() that already observes the
	// advanced cursor also observes the count.
	f.applied.Add(1)
	f.mu.Unlock()
	if f.opts.OnApply != nil {
		f.opts.OnApply(k)
	}
	return nil
}

//ckptlint:locked mu
func (f *Follower) applyLiveLocked(d *checkpoint.Diff, k int) error {
	rd := d.CloneShallow()
	if f.base != 0 {
		if err := rd.Rebase(-int64(f.base)); err != nil {
			return err
		}
	}
	if f.rec == nil {
		f.rec = checkpoint.NewRecord()
	}
	if err := f.rec.Append(rd); err != nil {
		return err
	}
	if f.state == nil {
		f.state = make([]byte, f.rec.DataLen())
	}
	return f.rec.Apply(f.state, k-f.base)
}

// Stats snapshots replication progress.
func (f *Follower) Stats() Stats {
	f.mu.Lock()
	base, next, promoted := f.base, f.next, f.promoted
	f.mu.Unlock()
	return Stats{
		Base:       base,
		Next:       next,
		Applied:    f.applied.Load(),
		TailFrames: f.tailFrames.Load(),
		Polls:      f.polls.Load(),
		Resyncs:    f.resyncs.Load(),
		Reconnects: f.reconnects.Load(),
		Healed:     f.healed.Load(),
		Promoted:   promoted,
	}
}

// stopped reports whether Close or Promote ended replication.
func (f *Follower) stopped() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.closed || f.promoted
}

// severLocked interrupts the running session's blocked read.
//
//ckptlint:locked mu
func (f *Follower) severLocked() {
	if f.cur != nil {
		f.cur.Close()
		f.cur = nil
	}
	f.stopOnce.Do(func() { close(f.stop) })
}

// ErrMirrorCorrupt matches (via errors.Is) a *MirrorCorruptError:
// Promote found mirror bytes whose integrity footer no longer
// verifies and refused to seal them as authoritative state.
var ErrMirrorCorrupt = errors.New("follower: mirror failed verification")

// MirrorCorruptError is Promote's typed refusal. A refused Promote
// leaves the follower running: the standby may Heal the mirror from
// the primary (if it is still reachable) and retry.
type MirrorCorruptError struct {
	Lineage, Dir string
	Err          error
}

func (e *MirrorCorruptError) Error() string {
	return fmt.Sprintf("follower: lineage %q mirror %s failed verification: %v",
		e.Lineage, e.Dir, e.Err)
}

// Unwrap exposes the store's *checkpoint.CorruptError.
func (e *MirrorCorruptError) Unwrap() error { return e.Err }

// Is matches a MirrorCorruptError against ErrMirrorCorrupt.
func (e *MirrorCorruptError) Is(target error) bool { return target == ErrMirrorCorrupt }

// Promote ends replication and returns the serving-ready replica:
// the state buffer is already materialized at the last applied
// checkpoint, so this performs ZERO diff applies — promotion cost is
// O(last diff), paid incrementally before the failure. The returned
// resources stay owned by the Follower; call Close when the promoted
// state has been handed off (and before reopening Dir elsewhere).
//
// Promote re-verifies every mirrored diff against its integrity
// footer before sealing. Bit rot accumulated on the standby's disk
// while it idled must surface here as a typed *MirrorCorruptError
// refusal — a failover must never trade a dead primary for a replica
// serving silently corrupt state. A refused Promote does NOT end
// replication: the follower keeps running so the caller can Heal and
// retry.
func (f *Follower) Promote() (*Promotion, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return nil, errors.New("follower: promote after close")
	}
	if err := f.store.VerifySpan(); err != nil {
		return nil, &MirrorCorruptError{Lineage: f.opts.Lineage, Dir: f.opts.Dir, Err: err}
	}
	f.promoted = true
	f.severLocked()
	return &Promotion{
		Lineage: f.opts.Lineage,
		Dir:     f.opts.Dir,
		Base:    f.base,
		Len:     f.next,
		Record:  f.rec,
		State:   f.state,
		Store:   f.store,
	}, nil
}

// Close ends replication and releases the pool and the mirror store.
// Idempotent.
func (f *Follower) Close() error {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return nil
	}
	f.closed = true
	f.severLocked()
	store := f.store
	f.mu.Unlock()
	f.pool.Close()
	return store.Close()
}

// Heal runs one anti-entropy pass of the standby against its primary:
// scan the mirrored span for on-disk rot, and repair each damaged
// diff by re-pulling its canonical bytes over a dedicated repair
// connection (the replication session owns the pooled one). The
// rotten file is quarantined before the verified replacement lands,
// so the damaged bytes survive as forensics and a crash mid-heal
// leaves a typed hole, never a half-written diff posing as healthy.
//
// The in-memory replica needs no rebuild afterwards: every mirrored
// diff was decode-verified when it arrived, so rot is strictly an
// on-disk phenomenon and the live record/state stay correct
// throughout. Missing suffixes and fold barriers are likewise NOT
// Heal's job — the replication stream converges those. Heal covers
// exactly the damage the stream cannot see: bytes that rotted after
// they were applied.
//
// Returns the number of diffs repaired. A clean pass costs one
// checksum sweep of the mirror and no network traffic.
func (f *Follower) Heal() (healed int, err error) {
	var nc net.Conn
	var handle uint32
	defer func() {
		if nc != nil {
			nc.Close()
		}
	}()
	for {
		f.mu.Lock()
		st, base, next := f.store, f.base, f.next
		stopped := f.closed || f.promoted
		f.mu.Unlock()
		if stopped || next <= base {
			return healed, nil
		}
		_, serr := st.SpanChecksums(base, next)
		if serr == nil {
			return healed, nil
		}
		var ce *checkpoint.CorruptError
		if !errors.As(serr, &ce) {
			return healed, serr
		}
		if nc == nil {
			if nc, handle, err = f.healDial(); err != nil {
				return healed, fmt.Errorf("follower: healing checkpoint %d: %w", ce.Ckpt, err)
			}
		}
		d, derr := f.healPull(nc, handle, ce.Ckpt)
		if derr != nil {
			return healed, fmt.Errorf("follower: healing checkpoint %d: %w", ce.Ckpt, derr)
		}
		f.mu.Lock()
		if f.closed || f.promoted {
			f.mu.Unlock()
			return healed, nil
		}
		ierr := func() error {
			if err := f.store.QuarantineDiff(ce.Ckpt); err != nil {
				return err
			}
			if err := f.store.ReinstallDiff(d); err != nil {
				return err
			}
			return f.store.ClearQuarantine(ce.Ckpt)
		}()
		f.mu.Unlock()
		if ierr != nil {
			return healed, fmt.Errorf("follower: healing checkpoint %d: %w", ce.Ckpt, ierr)
		}
		healed++
		f.healed.Add(1)
		f.opts.Logf("follower %s: healed checkpoint %d from %s", f.opts.Lineage, ce.Ckpt, f.opts.Addr)
	}
}

// healDial opens the throwaway repair connection: handshake plus one
// TOpen for the lineage handle.
func (f *Follower) healDial() (net.Conn, uint32, error) {
	nc, err := f.opts.Dialer(f.opts.Addr, f.opts.Timeout)
	if err != nil {
		return nil, 0, err
	}
	nc.SetDeadline(time.Now().Add(f.opts.Timeout))
	if _, err := wire.Handshake(nc); err != nil {
		nc.Close()
		return nil, 0, err
	}
	resp, err := healRoundTrip(nc, f.opts.Timeout,
		&wire.Frame{Type: wire.TOpen, Payload: []byte(f.opts.Lineage)})
	if err != nil {
		nc.Close()
		return nil, 0, err
	}
	return nc, resp.Lineage, nil
}

// healPull fetches and structurally verifies one diff on the repair
// connection.
func (f *Follower) healPull(nc net.Conn, handle uint32, k int) (*checkpoint.Diff, error) {
	resp, err := healRoundTrip(nc, f.opts.Timeout,
		&wire.Frame{Type: wire.TPull, Lineage: handle, Ckpt: uint32(k)})
	if err != nil {
		return nil, err
	}
	d, err := checkpoint.Decode(bytes.NewReader(resp.Payload))
	if err != nil {
		return nil, fmt.Errorf("pulled bytes do not decode: %w", err)
	}
	if int(d.CkptID) != k {
		return nil, fmt.Errorf("pull returned diff %d", d.CkptID)
	}
	return d, nil
}

// healRoundTrip writes one request and reads one response on the
// repair connection under a fresh deadline.
func healRoundTrip(nc net.Conn, timeout time.Duration, req *wire.Frame) (*wire.Frame, error) {
	nc.SetDeadline(time.Now().Add(timeout))
	if err := wire.WriteFrame(nc, req); err != nil {
		return nil, err
	}
	resp, err := wire.ReadFrame(nc, wire.DefaultMaxPayload)
	if err != nil {
		return nil, err
	}
	if err := resp.Err(); err != nil {
		return nil, err
	}
	return resp, nil
}

// Lineages fetches the primary's lineage directory with one TList
// round trip on a throwaway connection — the discovery call behind
// ckptd's standby mode. dialer may be nil (net.DialTimeout).
func Lineages(addr string, timeout time.Duration, dialer Dialer) ([]wire.LineageInfo, error) {
	if timeout <= 0 {
		timeout = DefaultTimeout
	}
	if dialer == nil {
		dialer = defaultDial
	}
	nc, err := dialer(addr, timeout)
	if err != nil {
		return nil, err
	}
	defer nc.Close()
	nc.SetDeadline(time.Now().Add(timeout))
	if _, err := wire.Handshake(nc); err != nil {
		return nil, err
	}
	if err := wire.WriteFrame(nc, &wire.Frame{Type: wire.TList}); err != nil {
		return nil, err
	}
	resp, err := wire.ReadFrame(nc, wire.DefaultMaxPayload)
	if err != nil {
		return nil, err
	}
	if err := resp.Err(); err != nil {
		return nil, err
	}
	return wire.DecodeList(resp.Payload)
}
