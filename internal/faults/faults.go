// Package faults is the repository's deterministic fault-injection
// framework: the machinery behind the chaos suite (chaos_test.go,
// `make chaos-smoke`) and `ckptbench -exp faults`.
//
// An Injector is seeded once and then consulted at three seams of the
// stack, each of which the production code exposes explicitly rather
// than being monkey-patched:
//
//   - storage: checkpoint.IOHooks built by StorageHooks intercepts
//     FileStore I/O — short/torn diff writes, ENOSPC, fsync failures,
//     simulated crashes on either side of the publishing rename, and
//     bit rot on read.
//   - network: WrapConn (plus the Dialer and Listener conveniences)
//     wraps a net.Conn on either end of the wire protocol — mid-frame
//     connection resets, stalls past the peer's deadline, short reads,
//     and slow-loris byte-at-a-time writes.
//   - pipeline: PipelineInjector builds the dedup.Options.FaultInjector
//     callback, failing the front, back, or append stage of
//     dedup.CheckpointAsync as a kernel failure would.
//
// Determinism is the point: every decision is either a pure function
// of an occurrence ordinal (On, Every, From, Upto) or a draw from the
// injector's single seeded PRNG (Prob, and bit-rot positions), taken
// in call order. Re-running a single-goroutine schedule with the same
// seed reproduces the same fault sequence, which the chaos suite
// asserts via Trace. Concurrent schedules stay reproducible in their
// per-event counts even when goroutine interleaving reorders the
// trace.
//
// Every injected failure wraps ErrInjected, so tests can tell an
// injected fault (and the typed errors the stack is required to turn
// it into) from an accidental one.
package faults

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
)

// ErrInjected is the base sentinel wrapped by every error this package
// injects. errors.Is(err, ErrInjected) identifies a scheduled fault
// anywhere it surfaces.
var ErrInjected = errors.New("faults: injected fault")

// injected wraps cause (or creates a bare error from msg when cause is
// nil) so it matches ErrInjected.
type injectedError struct {
	msg   string
	cause error
}

func (e *injectedError) Error() string {
	if e.cause != nil {
		return "faults: " + e.msg + ": " + e.cause.Error()
	}
	return "faults: " + e.msg
}

func (e *injectedError) Unwrap() error { return e.cause }

func (e *injectedError) Is(target error) bool { return target == ErrInjected }

func inject(msg string, cause error) error { return &injectedError{msg: msg, cause: cause} }

// Hits decides whether the n-th occurrence of an event (1-based)
// fires. A nil Hits never fires.
type Hits func(n int) bool

// On fires on exactly the listed occurrence ordinals.
func On(ns ...int) Hits {
	return func(n int) bool {
		for _, want := range ns {
			if n == want {
				return true
			}
		}
		return false
	}
}

// Every fires on every k-th occurrence (k, 2k, 3k, ...). Every(1)
// fires always.
func Every(k int) Hits {
	if k <= 0 {
		k = 1
	}
	return func(n int) bool { return n%k == 0 }
}

// From fires on occurrence n0 and every occurrence after it.
func From(n0 int) Hits { return func(n int) bool { return n >= n0 } }

// Upto fires on the first k occurrences only — the shape of a fault
// that heals (a restarting peer, a filling-then-freed disk).
func Upto(k int) Hits { return func(n int) bool { return n <= k } }

// And fires when both predicates fire.
func And(a, b Hits) Hits {
	return func(n int) bool { return a != nil && b != nil && a(n) && b(n) }
}

// Injector is a seeded source of fault decisions shared by the three
// seams. It is safe for concurrent use.
type Injector struct {
	seed int64

	mu     sync.Mutex
	rng    *rand.Rand
	counts map[string]int
	trace  []string
}

// New returns an injector whose schedule is fully determined by seed.
func New(seed int64) *Injector {
	return &Injector{
		seed:   seed,
		rng:    rand.New(rand.NewSource(seed)),
		counts: make(map[string]int),
	}
}

// Seed returns the seed the injector was built with.
func (in *Injector) Seed() int64 { return in.seed }

// Prob returns a predicate that fires with probability p on each
// occurrence, drawn from the injector's seeded PRNG in call order.
func (in *Injector) Prob(p float64) Hits {
	return func(int) bool {
		in.mu.Lock()
		defer in.mu.Unlock()
		return in.rng.Float64() < p
	}
}

// fire advances the occurrence counter of event, consults h, records
// the decision in the trace, and reports whether the fault fires.
func (in *Injector) fire(event string, h Hits) bool {
	in.mu.Lock()
	in.counts[event]++
	n := in.counts[event]
	in.mu.Unlock()
	// h may itself lock in.mu (Prob), so consult it unlocked.
	fired := h != nil && h(n)
	in.mu.Lock()
	if fired {
		in.trace = append(in.trace, fmt.Sprintf("%s#%d", event, n))
	}
	in.mu.Unlock()
	return fired
}

// intn draws a deterministic value in [0, n) from the seeded PRNG.
func (in *Injector) intn(n int) int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.rng.Intn(n)
}

// Count returns how many times the named event has been evaluated
// (fired or not).
func (in *Injector) Count(event string) int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.counts[event]
}

// Fired returns how many entries of the trace belong to event — the
// number of times it actually fired.
func (in *Injector) Fired(event string) int {
	prefix := event + "#"
	n := 0
	for _, t := range in.Trace() {
		if len(t) > len(prefix) && t[:len(prefix)] == prefix {
			n++
		}
	}
	return n
}

// Trace returns the ordered record of fired faults ("event#ordinal").
// For a single-goroutine schedule it is identical across runs with the
// same seed.
func (in *Injector) Trace() []string {
	in.mu.Lock()
	defer in.mu.Unlock()
	return append([]string(nil), in.trace...)
}
