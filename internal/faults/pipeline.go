package faults

// Pipeline seam event names. The occurrence ordinal counts invocations
// of that stage (one per checkpoint), so On(3) fails the stage of the
// third checkpoint the pipeline processes.
const (
	EvFrontFail  = "pipeline.front"
	EvBackFail   = "pipeline.back"
	EvAppendFail = "pipeline.append"
)

// PipelinePlan schedules kernel failures inside dedup.CheckpointAsync:
// Front fails on the caller's goroutine before the front half runs,
// Back fails the backend stage (hash/gather kernels), Append fails
// just before the record append.
type PipelinePlan struct {
	Front  Hits
	Back   Hits
	Append Hits
}

// ErrKernel is the injected GPU-kernel failure. Matches ErrInjected.
var ErrKernel = inject("kernel launch failed", nil)

// PipelineInjector builds the callback for dedup.Options.FaultInjector
// implementing plan.
func (in *Injector) PipelineInjector(plan PipelinePlan) func(stage string, ckpt uint32) error {
	return func(stage string, ckpt uint32) error {
		switch stage {
		case "front":
			if in.fire(EvFrontFail, plan.Front) {
				return ErrKernel
			}
		case "back":
			if in.fire(EvBackFail, plan.Back) {
				return ErrKernel
			}
		case "append":
			if in.fire(EvAppendFail, plan.Append) {
				return ErrKernel
			}
		}
		return nil
	}
}
