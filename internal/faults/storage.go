package faults

import (
	"io"
	"syscall"

	"github.com/gpuckpt/gpuckpt/internal/checkpoint"
)

// Storage seam event names, as they appear in Trace.
const (
	EvTornWrite   = "storage.torn-write"
	EvWriteErr    = "storage.write-err"
	EvSyncErr     = "storage.sync-err"
	EvCrashBefore = "storage.crash-before-rename"
	EvCrashAfter  = "storage.crash-after-rename"
	EvBitRot      = "storage.bit-rot"
)

// StoragePlan schedules faults at the FileStore I/O seam. Each field
// is a Hits predicate over that event's occurrence ordinal; nil never
// fires.
type StoragePlan struct {
	// TornWrite truncates the selected diff write after TornAfter
	// bytes and then fails it — a torn write, as when the process dies
	// or the disk fills mid-encode. The temp file never publishes.
	TornWrite Hits
	// TornAfter is how many bytes a torn write lets through
	// (default 64).
	TornAfter int
	// WriteErr fails the selected diff write immediately with an
	// injected ENOSPC.
	WriteErr Hits
	// SyncErr fails the selected temp-file fsync with an injected EIO.
	SyncErr Hits
	// CrashBeforeRename simulates the process dying after the temp
	// file is durable but before the publishing rename: the store
	// propagates checkpoint.ErrSimulatedCrash without cleanup, leaving
	// the orphaned temp file for reopen-recovery to sweep.
	CrashBeforeRename Hits
	// CrashAfterRename simulates the process dying right after the
	// rename, before the directory fsync.
	CrashAfterRename Hits
	// BitRot flips one deterministically-chosen bit of the selected
	// diff read, modeling storage-medium rot. The flip lands in the
	// encoded payload (not the footer magic), so a checksummed file
	// must detect it.
	BitRot Hits
}

// ErrNoSpace is the injected disk-full error. It matches both
// ErrInjected and syscall.ENOSPC via errors.Is.
var ErrNoSpace = inject("disk full", syscall.ENOSPC)

// ErrIO is the injected generic I/O error (fsync failures). It matches
// both ErrInjected and syscall.EIO via errors.Is.
var ErrIO = inject("i/o error", syscall.EIO)

// StorageHooks builds the checkpoint.IOHooks implementing plan,
// sharing the injector's seed and trace. Install with
// FileStore.SetIOHooks.
func (in *Injector) StorageHooks(plan StoragePlan) *checkpoint.IOHooks {
	tornAfter := plan.TornAfter
	if tornAfter <= 0 {
		tornAfter = 64
	}
	return &checkpoint.IOHooks{
		WrapDiffWrite: func(ck int, w io.Writer) io.Writer {
			if in.fire(EvWriteErr, plan.WriteErr) {
				return errWriter{err: ErrNoSpace}
			}
			if in.fire(EvTornWrite, plan.TornWrite) {
				return &tornWriter{w: w, left: tornAfter}
			}
			return w
		},
		BeforeSync: func(path string) error {
			if in.fire(EvSyncErr, plan.SyncErr) {
				return ErrIO
			}
			return nil
		},
		BeforeRename: func(tmp, final string) error {
			if in.fire(EvCrashBefore, plan.CrashBeforeRename) {
				return inject("crash before rename", checkpoint.ErrSimulatedCrash)
			}
			return nil
		},
		AfterRename: func(final string) error {
			if in.fire(EvCrashAfter, plan.CrashAfterRename) {
				return inject("crash after rename", checkpoint.ErrSimulatedCrash)
			}
			return nil
		},
		OnDiffRead: func(ck int, raw []byte) []byte {
			if !in.fire(EvBitRot, plan.BitRot) || len(raw) == 0 {
				return raw
			}
			return in.FlipBit(raw)
		},
	}
}

// FlipBit returns a copy of raw with one bit flipped at a position
// drawn from the injector's seeded PRNG. When raw is long enough to
// carry an integrity footer the flip is confined to the bytes before
// it, so the corruption attacks the payload rather than knocking out
// the footer magic (which would merely demote the file to legacy
// unverified).
func (in *Injector) FlipBit(raw []byte) []byte {
	n := len(raw)
	if n == 0 {
		return raw
	}
	span := n
	if n > checkpoint.FooterSize {
		span = n - checkpoint.FooterSize
	}
	pos := in.intn(span * 8)
	out := append([]byte(nil), raw...)
	out[pos/8] ^= 1 << (pos % 8)
	return out
}

// errWriter fails every write with err.
type errWriter struct{ err error }

func (w errWriter) Write(p []byte) (int, error) { return 0, w.err }

// tornWriter forwards the first `left` bytes and then fails — a short
// write followed by an error, the classic torn-write shape.
type tornWriter struct {
	w    io.Writer
	left int
}

func (tw *tornWriter) Write(p []byte) (int, error) {
	if tw.left <= 0 {
		return 0, ErrNoSpace
	}
	if len(p) <= tw.left {
		n, err := tw.w.Write(p)
		tw.left -= n
		return n, err
	}
	n, err := tw.w.Write(p[:tw.left])
	tw.left -= n
	if err != nil {
		return n, err
	}
	return n, ErrNoSpace
}
