// Chaos suite, replication seam: seeded fault schedules against a live
// v5 subscription follower (internal/follower). The invariant matches
// the rest of the suite — whatever the network does to the tail
// stream, the promoted standby state is byte-exact or the failure is
// typed; never silent divergence. `make chaos-smoke` runs these with
// the race detector.
package faults_test

import (
	"bytes"
	"context"
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"

	gpuckpt "github.com/gpuckpt/gpuckpt"
	"github.com/gpuckpt/gpuckpt/internal/checkpoint"
	"github.com/gpuckpt/gpuckpt/internal/dedup"
	"github.com/gpuckpt/gpuckpt/internal/faults"
	"github.com/gpuckpt/gpuckpt/internal/follower"
	"github.com/gpuckpt/gpuckpt/internal/server"
)

// startFaultServer is startServer with the accept side wrapped in a
// faults plan: every accepted connection carries the schedule, so the
// follower's subscription stream can be torn or slowed server-side.
// The returned stop is idempotent (the kill scenario stops mid-test).
func startFaultServer(t *testing.T, cfg server.Config, in *faults.Injector, plan faults.ConnPlan) (*server.Server, string, func()) {
	t.Helper()
	cfg.Logf = func(string, ...any) {}
	srv, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ctx, in.Listener(ln, plan)) }()
	var once sync.Once
	stop := func() {
		once.Do(func() {
			cancel()
			if err := <-done; err != nil {
				t.Errorf("Serve returned %v", err)
			}
		})
	}
	return srv, ln.Addr().String(), stop
}

// runChaosFollower starts a follower with chaos-friendly timing (tight
// backoff so injected disconnects heal within the test budget) and
// joins its Run loop on cleanup.
func runChaosFollower(t *testing.T, opts follower.Options) *follower.Follower {
	t.Helper()
	opts.Timeout = 5 * time.Second
	opts.PollInterval = 20 * time.Millisecond
	opts.MinBackoff = 5 * time.Millisecond
	opts.MaxBackoff = 50 * time.Millisecond
	opts.Logf = t.Logf
	fl, err := follower.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { defer close(done); fl.Run(ctx) }()
	t.Cleanup(func() {
		cancel()
		<-done
		fl.Close()
	})
	return fl
}

// waitFollower polls until the follower's cursor reaches next.
func waitFollower(t *testing.T, fl *follower.Follower, next int) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if fl.Stats().Next >= next {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("follower stuck at %+v, want next >= %d", fl.Stats(), next)
}

// verifyPromoted promotes the follower and byte-compares the promoted
// span against images — the suite's one invariant, at the replication
// seam. Promotion itself must replay nothing, so Applied is checked
// across the call.
func verifyPromoted(t *testing.T, fl *follower.Follower, images [][]byte, base int) {
	t.Helper()
	before := fl.Stats().Applied
	p, err := fl.Promote()
	if err != nil {
		t.Fatalf("promote: %v", err)
	}
	if fl.Stats().Applied != before {
		t.Fatalf("promotion replayed %d diffs, want 0", fl.Stats().Applied-before)
	}
	if p.Base != base || p.Len != len(images) {
		t.Fatalf("promoted span [%d,%d), want [%d,%d)", p.Base, p.Len, base, len(images))
	}
	if !bytes.Equal(p.State, images[len(images)-1]) {
		t.Fatal("promoted state diverges from the last pushed image")
	}
	for k := base; k < len(images); k++ {
		got, err := p.Record.Restore(k - base)
		if err != nil {
			t.Fatalf("promoted restore %d: %v", k, err)
		}
		if !bytes.Equal(got, images[k]) {
			t.Fatalf("promoted restore %d diverges", k)
		}
	}
}

// Scenario 15: a slow follower is shed by the bounded fan-out queue
// and resumes by cursor. The follower's first subscription connection
// is a receive-limited peer — every server write to it fragments and
// pauses 100ms — so while the pusher's burst lands, the subscription
// writer is provably mid-write and the capacity-1 queue must
// overflow. The hub sheds the subscriber with a lag verdict, the
// follower reconnects (the second connection is healthy), and —
// because a lag shed keeps the cursor continuable — it resumes the
// backlog without a single span re-pull. The promoted state is
// byte-exact.
func TestChaosFollowerLagResume(t *testing.T) {
	const (
		lagLen   = 16 << 10
		lagCkpts = 12
	)
	rng := rand.New(rand.NewSource(151))
	images := make([][]byte, lagCkpts)
	encoded := make([][]byte, lagCkpts)
	for k := range images {
		img := make([]byte, lagLen)
		rng.Read(img)
		images[k] = img
		var buf bytes.Buffer
		d := &checkpoint.Diff{
			Method: checkpoint.MethodFull, CkptID: uint32(k),
			DataLen: lagLen, ChunkSize: chaosChunk, Data: img,
		}
		if err := d.Encode(&buf); err != nil {
			t.Fatal(err)
		}
		encoded[k] = buf.Bytes()
	}

	in := faults.New(151)
	srv, addr, stop := startFaultServer(t,
		server.Config{Root: t.TempDir(), SubscriberQueue: 1},
		// Connection 1 is the follower's subscription: slow-lorised
		// with a 100ms pre-write pause. Connection 2 (the pusher) and
		// connection 3 (the follower's resume) are healthy.
		in, faults.ConnPlan{
			SlowWrite: faults.On(1), SlowWritePause: 100 * time.Millisecond,
		})
	defer stop()

	fl := runChaosFollower(t, follower.Options{
		Addr: addr, Lineage: "lag", Dir: t.TempDir(),
	})
	deadline := time.Now().Add(10 * time.Second)
	for srv.Subscribes() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if srv.Subscribes() == 0 {
		t.Fatal("follower never subscribed")
	}

	cl, err := gpuckpt.Dial(addr, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for k, enc := range encoded {
		if err := cl.Push("lag", k, enc); err != nil {
			t.Fatalf("push %d: %v", k, err)
		}
	}

	waitFollower(t, fl, lagCkpts)
	st := fl.Stats()
	if srv.SubscriberSheds() == 0 {
		t.Fatalf("queue never overflowed; trace %v, follower %+v", in.Trace(), st)
	}
	if st.Reconnects == 0 {
		t.Fatalf("shed follower never reconnected: %+v", st)
	}
	if st.Resyncs != 0 {
		t.Fatalf("lag resume forced %d span re-pulls, want 0 (cursor stays valid): %+v", st.Resyncs, st)
	}
	verifyPromoted(t, fl, images, 0)
}

// Scenario 16 (the acceptance scenario): the follower straddles a
// compaction fold. Mid-tail, the retained prefix folds to a baseline;
// the hub's fold barrier sheds the subscriber with a fold verdict, the
// follower's next dial is refused (the injected flap), and the retry's
// re-subscribe is refused with the corrected span — forcing a manifest
// resync that re-pulls [newBase, len) and converges byte-exactly.
func TestChaosFollowerMidFoldResync(t *testing.T) {
	images := seededImages(252, chaosCkpts)
	_, encoded := buildLineage(t, checkpoint.MethodTree, images, dedup.Options{})
	srv, addr, stop := startServer(t, server.Config{Root: t.TempDir()})
	defer stop()

	cl, err := gpuckpt.Dial(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for k := 0; k < 4; k++ {
		if err := cl.Push("fold", k, encoded[k]); err != nil {
			t.Fatalf("push %d: %v", k, err)
		}
	}

	in := faults.New(252)
	fl := runChaosFollower(t, follower.Options{
		Addr: addr, Lineage: "fold", Dir: t.TempDir(),
		// Dial 1 carries the pre-fold tail; dial 2 — the reconnect the
		// fold barrier forces — is refused, so recovery also rides the
		// backoff path before dial 3 resyncs.
		Dialer: in.Dialer(faults.ConnPlan{FailDial: faults.On(2)}),
	})
	waitFollower(t, fl, 4)

	if _, err := cl.CompactTo("fold", 3); err != nil {
		t.Fatalf("compact: %v", err)
	}
	for k := 4; k < len(encoded); k++ {
		if err := cl.Push("fold", k, encoded[k]); err != nil {
			t.Fatalf("push %d: %v", k, err)
		}
	}

	waitFollower(t, fl, len(images))
	st := fl.Stats()
	if st.Base != 3 {
		t.Fatalf("follower base %d after fold, want 3: %+v", st.Base, st)
	}
	if st.Resyncs == 0 {
		t.Fatalf("fold never forced a resync: %+v", st)
	}
	if srv.FoldBarriers() == 0 {
		t.Fatal("server never shed the subscriber at the fold barrier")
	}
	if got := in.Fired(faults.EvDialFail); got != 1 {
		t.Fatalf("dial flap fired %d times, want 1; trace %v", got, in.Trace())
	}
	verifyPromoted(t, fl, images, 3)
}

// Scenario 17: the primary dies mid-frame. The server-side plan tears
// the follower's connection after 600 written bytes — inside the first
// tail frame's payload, exactly what a crashing primary leaves on the
// wire. The follower must discard the torn frame, reconnect, resume
// from its cursor without a re-pull, and survive the real kill that
// follows: the primary is stopped for good and the follower promotes a
// byte-exact serving state.
func TestChaosFollowerPrimaryKillMidFrame(t *testing.T) {
	images := seededImages(353, chaosCkpts)
	_, encoded := buildLineage(t, checkpoint.MethodTree, images, dedup.Options{})

	in := faults.New(353)
	_, addr, stop := startFaultServer(t,
		server.Config{Root: t.TempDir()}, in,
		// Connection 1 is the pusher; connection 2 — the follower's
		// subscription — tears after the greeting, the open response,
		// the subscribe ack and part of the first backlog frame.
		faults.ConnPlan{Reset: faults.On(2), ResetAfter: 600})
	defer stop()

	cl, err := gpuckpt.Dial(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	for k, enc := range encoded {
		if err := cl.Push("kill", k, enc); err != nil {
			t.Fatalf("push %d: %v", k, err)
		}
	}
	cl.Close()

	fl := runChaosFollower(t, follower.Options{
		Addr: addr, Lineage: "kill", Dir: t.TempDir(),
	})
	waitFollower(t, fl, len(images))
	st := fl.Stats()
	if got := in.Fired(faults.EvReset); got != 1 {
		t.Fatalf("mid-frame reset fired %d times, want 1; trace %v", got, in.Trace())
	}
	if st.Reconnects == 0 {
		t.Fatalf("torn stream never forced a reconnect: %+v", st)
	}
	if st.Resyncs != 0 {
		t.Fatalf("torn frame forced %d span re-pulls, want 0: %+v", st.Resyncs, st)
	}

	// Now the primary dies for real; promotion needs nothing from it.
	stop()
	verifyPromoted(t, fl, images, 0)
}
