// Chaos suite, anti-entropy seam: seeded damage against peered ckptd
// replicas running the background reconciler (internal/antientropy).
// The invariant extends the suite's one rule to the cluster: replicas
// converge to byte-exact state on their own, or the damaged lineage
// fail-stops with a typed error — never silent divergence, never
// repair ping-pong. `make chaos-smoke` runs these with the race
// detector.
package faults_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	gpuckpt "github.com/gpuckpt/gpuckpt"
	"github.com/gpuckpt/gpuckpt/internal/checkpoint"
	"github.com/gpuckpt/gpuckpt/internal/dedup"
	"github.com/gpuckpt/gpuckpt/internal/faults"
	"github.com/gpuckpt/gpuckpt/internal/follower"
	"github.com/gpuckpt/gpuckpt/internal/server"
)

// aeInterval is the reconciler cadence for the chaos scenarios: tight
// enough that convergence (or fail-stop) lands well inside the wait
// budget.
const aeInterval = 25 * time.Millisecond

// startServerOn serves cfg on a pre-bound listener — peered servers
// need each other's address before either starts. The returned stop
// is idempotent (kill scenarios stop mid-test).
func startServerOn(t *testing.T, cfg server.Config, ln net.Listener) (*server.Server, func()) {
	t.Helper()
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	srv, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ctx, ln) }()
	var once sync.Once
	stop := func() {
		once.Do(func() {
			cancel()
			if err := <-done; err != nil {
				t.Errorf("Serve returned %v", err)
			}
			// Release the root (blockstore lock): kill scenarios restart
			// a server over the same directory.
			if err := srv.Close(); err != nil {
				t.Errorf("Close returned %v", err)
			}
		})
	}
	t.Cleanup(stop)
	return srv, stop
}

// listenLocal binds an ephemeral localhost port.
func listenLocal(t *testing.T) net.Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	return ln
}

// pushTo pushes the encoded lineage to one server.
func pushTo(t *testing.T, addr, name string, encoded [][]byte) {
	t.Helper()
	cl, err := gpuckpt.Dial(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for i, enc := range encoded {
		if err := cl.Push(name, i, enc); err != nil {
			t.Fatalf("push %d to %s: %v", i, addr, err)
		}
	}
}

// rotServerDiff flips one bit of a stored diff file under a server
// root, returning the rotten image for no-ping-pong assertions.
func rotServerDiff(t *testing.T, root, lineage string, ck int, seed int64) []byte {
	t.Helper()
	path := filepath.Join(root, lineage, fmt.Sprintf("ckpt-%06d.gckp", ck))
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	rotten := faults.New(seed).FlipBit(raw)
	if err := os.WriteFile(path, rotten, 0o644); err != nil {
		t.Fatal(err)
	}
	return rotten
}

// waitUntil polls cond until it holds or the budget runs out.
func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// Scenario 20: one replica of a two-peer pair rots on disk. The
// damaged replica's own reconciler must detect the divergence via
// span digests, bisect to the victim, quarantine it and re-pull the
// verified bytes from its healthy peer — with ZERO manual Repair
// calls — until both replicas restore byte-exactly. The healthy peer
// must never be mutated by the damaged one (pull-only repair).
func TestChaosAntiEntropyOneReplicaRot(t *testing.T) {
	images := seededImages(1101, chaosCkpts)
	_, encoded := buildLineage(t, checkpoint.MethodList, images, dedup.Options{})

	rootA, rootB := t.TempDir(), t.TempDir()
	lnA, lnB := listenLocal(t), listenLocal(t)
	addrA, addrB := lnA.Addr().String(), lnB.Addr().String()

	// Seed both replicas before anti-entropy starts, so the rot is the
	// only difference the digests can see.
	srvSeedA, stopSeedA := startServerOn(t, server.Config{Root: rootA}, lnA)
	_, stopSeedB := startServerOn(t, server.Config{Root: rootB}, lnB)
	_ = srvSeedA
	pushTo(t, addrA, "lin", encoded)
	pushTo(t, addrB, "lin", encoded)
	stopSeedA()
	stopSeedB()

	victim := 3
	rotServerDiff(t, rootA, "lin", victim, 1101)

	lnA2, err := net.Listen("tcp", addrA)
	if err != nil {
		t.Fatal(err)
	}
	lnB2, err := net.Listen("tcp", addrB)
	if err != nil {
		t.Fatal(err)
	}
	srvA, _ := startServerOn(t, server.Config{
		Root: rootA, Peers: []string{addrB}, AntiEntropyInterval: aeInterval,
	}, lnA2)
	srvB, _ := startServerOn(t, server.Config{
		Root: rootB, Peers: []string{addrA}, AntiEntropyInterval: aeInterval,
	}, lnB2)

	waitUntil(t, "rot healed from peer", func() bool {
		st := srvA.Stats()
		return st.SpansHealed >= 1 && st.Quarantined == 0
	})

	stA, stB := srvA.Stats(), srvB.Stats()
	if stA.HealQuarantines != 0 || stB.HealQuarantines != 0 {
		t.Fatalf("healable rot fail-stopped a lineage: A=%d B=%d quarantines",
			stA.HealQuarantines, stB.HealQuarantines)
	}
	if stA.BytesRefetched == 0 {
		t.Fatal("heal reported no refetched bytes")
	}
	if stB.SpansHealed != 0 {
		t.Fatalf("healthy replica healed %d spans: the damaged peer pushed repairs at it", stB.SpansHealed)
	}
	// Both replicas restore every checkpoint byte-exactly.
	verifyLineage(t, addrA, "lin", images)
	verifyLineage(t, addrB, "lin", images)
}

// Scenario 21: the SAME checkpoint rots on BOTH replicas. Neither
// side holds verified bytes to heal from, so the reconcilers must
// fail-stop the lineage with a typed quarantine — not ping-pong
// half-repairs between damaged copies, and not converge on garbage.
// The rotten files must survive untouched as forensic evidence.
func TestChaosAntiEntropyBothRottenFailStop(t *testing.T) {
	images := seededImages(1202, chaosCkpts)
	_, encoded := buildLineage(t, checkpoint.MethodBasic, images, dedup.Options{})

	rootA, rootB := t.TempDir(), t.TempDir()
	lnA, lnB := listenLocal(t), listenLocal(t)
	addrA, addrB := lnA.Addr().String(), lnB.Addr().String()

	_, stopSeedA := startServerOn(t, server.Config{Root: rootA}, lnA)
	_, stopSeedB := startServerOn(t, server.Config{Root: rootB}, lnB)
	pushTo(t, addrA, "lin", encoded)
	pushTo(t, addrB, "lin", encoded)
	stopSeedA()
	stopSeedB()

	victim := 4
	rottenA := rotServerDiff(t, rootA, "lin", victim, 1202)
	rottenB := rotServerDiff(t, rootB, "lin", victim, 1203)

	lnA2, err := net.Listen("tcp", addrA)
	if err != nil {
		t.Fatal(err)
	}
	lnB2, err := net.Listen("tcp", addrB)
	if err != nil {
		t.Fatal(err)
	}
	srvA, _ := startServerOn(t, server.Config{
		Root: rootA, Peers: []string{addrB}, AntiEntropyInterval: aeInterval,
	}, lnA2)
	srvB, _ := startServerOn(t, server.Config{
		Root: rootB, Peers: []string{addrA}, AntiEntropyInterval: aeInterval,
	}, lnB2)

	waitUntil(t, "both replicas fail-stopped the lineage", func() bool {
		return srvA.Stats().HealQuarantines >= 1 && srvB.Stats().HealQuarantines >= 1
	})

	if h := srvA.Stats().SpansHealed + srvB.Stats().SpansHealed; h != 0 {
		t.Fatalf("%d spans 'healed' between two damaged copies", h)
	}
	// No ping-pong: the rotten bytes are exactly what the injector
	// wrote — no remote reconciler overwrote them with its own rot.
	pathA := filepath.Join(rootA, "lin", fmt.Sprintf("ckpt-%06d.gckp", victim))
	pathB := filepath.Join(rootB, "lin", fmt.Sprintf("ckpt-%06d.gckp", victim))
	gotA, err := os.ReadFile(pathA)
	if err != nil {
		t.Fatal(err)
	}
	gotB, err := os.ReadFile(pathB)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotA, rottenA) || !bytes.Equal(gotB, rottenB) {
		t.Fatal("fail-stopped replicas kept mutating the damaged diff")
	}
}

// Scenario 22: a network partition separates the pair while one side
// is rotten. The damaged replica must flag itself degraded (gauge in
// STATS), back off its probes, and heal nothing; when the partition
// heals, the degraded flag must clear and the rot converge. An
// unreachable peer says nothing about local data, so fail-stop must
// NOT trigger.
func TestChaosAntiEntropyPartitionRejoin(t *testing.T) {
	images := seededImages(1303, chaosCkpts)
	_, encoded := buildLineage(t, checkpoint.MethodTree, images, dedup.Options{})

	rootA, rootB := t.TempDir(), t.TempDir()
	lnA, lnB := listenLocal(t), listenLocal(t)
	addrA, addrB := lnA.Addr().String(), lnB.Addr().String()

	_, stopSeedA := startServerOn(t, server.Config{Root: rootA}, lnA)
	_, stopSeedB := startServerOn(t, server.Config{Root: rootB}, lnB)
	pushTo(t, addrA, "lin", encoded)
	pushTo(t, addrB, "lin", encoded)
	stopSeedA()
	stopSeedB()

	rotServerDiff(t, rootA, "lin", 2, 1303)

	// The partition: A's peer dialer rejects while the flag is up.
	var partitioned atomic.Bool
	partitioned.Store(true)
	dialer := func(addr string, timeout time.Duration) (net.Conn, error) {
		if partitioned.Load() {
			return nil, faults.ErrConnRefused
		}
		return net.DialTimeout("tcp", addr, timeout)
	}

	lnA2, err := net.Listen("tcp", addrA)
	if err != nil {
		t.Fatal(err)
	}
	lnB2, err := net.Listen("tcp", addrB)
	if err != nil {
		t.Fatal(err)
	}
	srvA, _ := startServerOn(t, server.Config{
		Root: rootA, Peers: []string{addrB}, AntiEntropyInterval: aeInterval,
		PeerDialer: dialer,
	}, lnA2)
	startServerOn(t, server.Config{Root: rootB}, lnB2)

	waitUntil(t, "degraded flag raised during partition", func() bool {
		return srvA.Stats().Degraded >= 1
	})
	if st := srvA.Stats(); st.SpansHealed != 0 || st.HealQuarantines != 0 {
		t.Fatalf("partitioned replica healed %d spans, quarantined %d lineages; wanted neither",
			st.SpansHealed, st.HealQuarantines)
	}

	partitioned.Store(false)
	waitUntil(t, "rejoin clears degraded and heals the rot", func() bool {
		st := srvA.Stats()
		return st.Degraded == 0 && st.SpansHealed >= 1 && st.Quarantined == 0
	})
	if q := srvA.Stats().HealQuarantines; q != 0 {
		t.Fatalf("transient partition fail-stopped %d lineages", q)
	}
	verifyLineage(t, addrA, "lin", images)
}

// Scenario 23: the healthy peer is killed in the middle of a heal —
// its first serving connection tears mid-stream, then the process
// goes down entirely — and later comes back. Transport failures must
// degrade (backoff, degraded flag), never fail-stop: when the peer
// returns, the reconciler must finish healing and converge
// byte-exactly.
func TestChaosAntiEntropyNodeKillMidHeal(t *testing.T) {
	images := seededImages(1404, chaosCkpts)
	_, encoded := buildLineage(t, checkpoint.MethodList, images, dedup.Options{})

	rootA, rootB := t.TempDir(), t.TempDir()
	lnA, lnB := listenLocal(t), listenLocal(t)
	addrA, addrB := lnA.Addr().String(), lnB.Addr().String()

	_, stopSeedA := startServerOn(t, server.Config{Root: rootA}, lnA)
	_, stopSeedB := startServerOn(t, server.Config{Root: rootB}, lnB)
	pushTo(t, addrA, "lin", encoded)
	pushTo(t, addrB, "lin", encoded)
	stopSeedA()
	stopSeedB()

	// Several rotten diffs so the heal has real work in flight when
	// the peer dies.
	for _, victim := range []int{1, 3, 5} {
		rotServerDiff(t, rootA, "lin", victim, int64(1404+victim))
	}

	// B comes back wrapped in a fault plan: its first accepted
	// connection (A's first heal session) tears after 600 bytes —
	// enough for the handshake, the open and a digest, so the cut
	// lands inside the repair conversation.
	in := faults.New(1404)
	lnB2, err := net.Listen("tcp", addrB)
	if err != nil {
		t.Fatal(err)
	}
	_, stopB := startServerOn(t, server.Config{Root: rootB}, in.Listener(lnB2, faults.ConnPlan{
		Reset: faults.On(1), ResetAfter: 600,
	}))

	lnA2, err := net.Listen("tcp", addrA)
	if err != nil {
		t.Fatal(err)
	}
	srvA, _ := startServerOn(t, server.Config{
		Root: rootA, Peers: []string{addrB}, AntiEntropyInterval: aeInterval,
	}, lnA2)

	// Let at least one reconciliation attempt hit the torn peer, then
	// kill the peer outright.
	waitUntil(t, "first digest rounds against the torn peer", func() bool {
		return srvA.Stats().DigestRounds >= 2
	})
	stopB()
	waitUntil(t, "peer death flagged degraded", func() bool {
		return srvA.Stats().Degraded >= 1
	})
	if q := srvA.Stats().HealQuarantines; q != 0 {
		t.Fatalf("node kill mid-heal fail-stopped %d lineages; transport failures must not", q)
	}

	// The node returns on the same address, healthy this time.
	lnB3, err := net.Listen("tcp", addrB)
	if err != nil {
		t.Fatal(err)
	}
	startServerOn(t, server.Config{Root: rootB}, lnB3)

	waitUntil(t, "recovered peer finishes the heal", func() bool {
		st := srvA.Stats()
		return st.Degraded == 0 && st.SpansHealed >= 3 && st.Quarantined == 0
	})
	if q := srvA.Stats().HealQuarantines; q != 0 {
		t.Fatalf("recovered heal still fail-stopped %d lineages", q)
	}
	verifyLineage(t, addrA, "lin", images)
}

// Scenario 24: a standby's mirror rots UNDER an active subscription
// stream. The follower's anti-entropy pass (Heal) must repair the
// mirror from the primary without disturbing replication, and the
// subsequently promoted state must be byte-exact — including the
// diffs that kept streaming in while the heal ran.
func TestChaosAntiEntropyRotDuringSubscribe(t *testing.T) {
	images := seededImages(1505, chaosCkpts)
	_, encoded := buildLineage(t, checkpoint.MethodBasic, images, dedup.Options{})

	_, addr, stop := startServer(t, server.Config{Root: t.TempDir()})
	defer stop()

	half := len(encoded) / 2
	pushTo(t, addr, "lin", encoded[:half])

	dir := t.TempDir()
	fl := runChaosFollower(t, follower.Options{Addr: addr, Lineage: "lin", Dir: dir})
	waitFollower(t, fl, half)

	// Rot a mirrored diff while the subscription is live.
	victim := 1
	path := filepath.Join(dir, fmt.Sprintf("ckpt-%06d.gckp", victim))
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, faults.New(1505).FlipBit(raw), 0o644); err != nil {
		t.Fatal(err)
	}

	healed, err := fl.Heal()
	if err != nil {
		t.Fatalf("heal: %v", err)
	}
	if healed != 1 {
		t.Fatalf("healed %d diffs, want 1", healed)
	}
	if fl.Stats().Healed != 1 {
		t.Fatalf("stats report %d healed", fl.Stats().Healed)
	}

	// The stream keeps flowing after the heal.
	pushTo(t, addr, "lin", encoded)
	waitFollower(t, fl, len(encoded))
	if healed, err := fl.Heal(); err != nil || healed != 0 {
		t.Fatalf("clean mirror healed %d (err %v)", healed, err)
	}
	verifyPromoted(t, fl, images, 0)
}

// Scenario 25: a standby idles, its mirror rots, and the primary dies
// — the failover path. Promote must re-verify the mirror and refuse
// with a typed error (ErrMirrorCorrupt) rather than serve bytes whose
// footers no longer verify. The refusal must leave the follower
// unpromoted so a later heal (were the primary to return) could still
// rescue it.
func TestChaosStandbyRotPromoteRefusal(t *testing.T) {
	images := seededImages(1606, chaosCkpts)
	_, encoded := buildLineage(t, checkpoint.MethodTree, images, dedup.Options{})

	_, addr, stop := startServer(t, server.Config{Root: t.TempDir()})
	pushTo(t, addr, "lin", encoded)

	dir := t.TempDir()
	fl := runChaosFollower(t, follower.Options{Addr: addr, Lineage: "lin", Dir: dir})
	waitFollower(t, fl, len(encoded))

	// Primary dies; then the idle mirror rots.
	stop()
	path := filepath.Join(dir, fmt.Sprintf("ckpt-%06d.gckp", 2))
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, faults.New(1606).FlipBit(raw), 0o644); err != nil {
		t.Fatal(err)
	}

	_, perr := fl.Promote()
	if perr == nil {
		t.Fatal("promotion of a rotten mirror succeeded")
	}
	if !errors.Is(perr, follower.ErrMirrorCorrupt) {
		t.Fatalf("refusal %v does not match ErrMirrorCorrupt", perr)
	}
	var mce *follower.MirrorCorruptError
	if !errors.As(perr, &mce) || mce.Lineage != "lin" {
		t.Fatalf("refusal %v carries no mirror identity", perr)
	}
	if !errors.Is(perr, checkpoint.ErrCorrupt) {
		t.Fatalf("refusal %v does not unwrap to the store's ErrCorrupt", perr)
	}
	if fl.Stats().Promoted {
		t.Fatal("refused promotion still marked the follower promoted")
	}
}
