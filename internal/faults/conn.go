package faults

import (
	"net"
	"sync"
	"syscall"
	"time"
)

// Network seam event names. Reset/stall/slow/short events are decided
// once per connection at wrap time (the ordinal is the connection
// index); dial-fail is decided per dial attempt.
const (
	EvDialFail  = "net.dial-fail"
	EvReset     = "net.reset"
	EvStall     = "net.stall"
	EvSlowWrite = "net.slow-write"
	EvShortRead = "net.short-read"
)

// ConnPlan schedules faults at the net.Conn seam. The per-connection
// predicates (Reset, Stall, SlowWrite, ShortRead) are evaluated once
// when a connection is wrapped, with the connection ordinal (1-based,
// per injector) as the occurrence; FailDial is evaluated per dial.
type ConnPlan struct {
	// FailDial rejects the selected dial attempts with an injected
	// ECONNREFUSED before any connection is made.
	FailDial Hits
	// Reset arms the selected connections to die mid-stream: after
	// ResetAfter bytes have been written the next write tears the
	// connection with an injected ECONNRESET, exactly as a crashing
	// peer or dropped NAT entry would.
	Reset Hits
	// ResetAfter is how many written bytes a reset-armed connection
	// allows before tearing (default 21: the handshake plus part of
	// the first frame header, so the peer sees a torn frame).
	ResetAfter int
	// Stall makes one read of the selected connections sleep StallFor
	// before touching the socket — a peer that went silent. With a
	// per-operation deadline armed, the read then fails with a
	// timeout; without one, it merely arrives late.
	Stall Hits
	// StallFor is the stall duration (default 200ms).
	StallFor time.Duration
	// StallReadN selects which read of the connection stalls (1-based,
	// default 1: the first). A client's first read is always the
	// handshake hello, so stalling inside a push stream — after the
	// handshake and the open exchange — takes a higher ordinal.
	StallReadN int
	// SlowWrite turns the selected connections into slow-loris peers:
	// every write is issued one byte per syscall, so the receiver sees
	// maximally fragmented frames.
	SlowWrite Hits
	// SlowWritePause, when >0, additionally sleeps this long at the
	// start of every write of a SlowWrite-armed connection — a
	// receive-window-limited peer that stays connected but drains
	// slowly. The replication lag scenario uses it to hold the
	// subscription writer busy while a push burst overflows the
	// bounded fan-out queue.
	SlowWritePause time.Duration
	// ShortRead makes every read of the selected connections return at
	// most one byte, exercising the peer-side reassembly loops.
	ShortRead Hits
}

// ErrConnRefused is the injected dial failure. Matches ErrInjected and
// syscall.ECONNREFUSED.
var ErrConnRefused = inject("dial refused", syscall.ECONNREFUSED)

// ErrConnReset is the injected mid-stream connection reset. Matches
// ErrInjected and syscall.ECONNRESET.
var ErrConnReset = inject("connection reset", syscall.ECONNRESET)

// WrapConn wraps c with the faults plan schedules for the next
// connection ordinal. The wrapper preserves deadlines (they apply to
// the underlying conn, so an injected stall followed by a read
// surfaces as a genuine deadline timeout).
func (in *Injector) WrapConn(c net.Conn, plan ConnPlan) net.Conn {
	fc := &faultConn{Conn: c, in: in}
	if in.fire(EvReset, plan.Reset) {
		fc.resetAfter = plan.ResetAfter
		if fc.resetAfter <= 0 {
			fc.resetAfter = 21
		}
	}
	if in.fire(EvStall, plan.Stall) {
		// The conn is not shared yet; the lock only satisfies the
		// guardedby contract on the one mutable schedule field.
		fc.mu.Lock()
		fc.stall = plan.StallFor
		if fc.stall <= 0 {
			fc.stall = 200 * time.Millisecond
		}
		fc.mu.Unlock()
		fc.stallReadN = plan.StallReadN
		if fc.stallReadN <= 0 {
			fc.stallReadN = 1
		}
	}
	if in.fire(EvSlowWrite, plan.SlowWrite) {
		fc.slowWrite = true
		fc.writePause = plan.SlowWritePause
	}
	if in.fire(EvShortRead, plan.ShortRead) {
		fc.shortRead = true
	}
	return fc
}

// Dialer returns a client-side dial function (the shape of
// gpuckpt.DialConfig.Dialer) that applies plan to every dial and
// connection.
func (in *Injector) Dialer(plan ConnPlan) func(addr string, timeout time.Duration) (net.Conn, error) {
	return func(addr string, timeout time.Duration) (net.Conn, error) {
		if in.fire(EvDialFail, plan.FailDial) {
			return nil, ErrConnRefused
		}
		c, err := net.DialTimeout("tcp", addr, timeout)
		if err != nil {
			return nil, err
		}
		return in.WrapConn(c, plan), nil
	}
}

// Listener wraps ln so every accepted connection carries plan — the
// server-side half of the network seam.
func (in *Injector) Listener(ln net.Listener, plan ConnPlan) net.Listener {
	return &faultListener{Listener: ln, in: in, plan: plan}
}

type faultListener struct {
	net.Listener
	in   *Injector
	plan ConnPlan
}

func (l *faultListener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return l.in.WrapConn(c, l.plan), nil
}

// faultConn is a net.Conn with scheduled failure behaviors. Deadline
// methods pass through to the embedded conn. Like the net.Conn it
// wraps, it tolerates one concurrent reader and one concurrent writer
// (the v5 subscription path reads a watchdog byte while the tail loop
// writes); the schedule state is mutex-guarded, and the lock is never
// held across blocking I/O.
type faultConn struct {
	net.Conn
	in *Injector

	mu sync.Mutex
	//ckptlint:guardedby mu
	written int
	//ckptlint:guardedby mu
	torn bool
	//ckptlint:guardedby mu
	stall time.Duration // one-shot pre-read sleep
	//ckptlint:guardedby mu
	reads int

	// Immutable after WrapConn.
	resetAfter int // >0: tear after this many written bytes
	stallReadN int // which read (1-based) stalls
	slowWrite  bool
	writePause time.Duration // pre-write sleep of a SlowWrite conn
	shortRead  bool
}

func (c *faultConn) Read(p []byte) (int, error) {
	c.mu.Lock()
	if c.torn {
		c.mu.Unlock()
		return 0, ErrConnReset
	}
	c.reads++
	var d time.Duration
	if c.stall > 0 && c.reads >= c.stallReadN {
		d = c.stall
		c.stall = 0
	}
	c.mu.Unlock()
	if d > 0 {
		time.Sleep(d)
	}
	if c.shortRead && len(p) > 1 {
		p = p[:1]
	}
	return c.Conn.Read(p)
}

func (c *faultConn) Write(p []byte) (int, error) {
	c.mu.Lock()
	if c.torn {
		c.mu.Unlock()
		return 0, ErrConnReset
	}
	if c.resetAfter > 0 && c.written+len(p) > c.resetAfter {
		allow := c.resetAfter - c.written
		c.written = c.resetAfter
		c.torn = true
		c.mu.Unlock()
		n := 0
		if allow > 0 {
			n, _ = c.Conn.Write(p[:allow])
		}
		c.Conn.Close()
		return n, ErrConnReset
	}
	c.written += len(p)
	c.mu.Unlock()
	if c.slowWrite {
		if c.writePause > 0 {
			time.Sleep(c.writePause)
		}
		for i := range p {
			if _, err := c.Conn.Write(p[i : i+1]); err != nil {
				return i, err
			}
		}
		return len(p), nil
	}
	return c.Conn.Write(p)
}
