// Chaos suite: seeded fault schedules against full push/pull/compact/
// restore workloads across the Basic, List and Tree methods. Every
// scenario asserts the one invariant the whole PR exists for:
//
//	a restore is either byte-exact or a typed error — never silent
//	corruption.
//
// Schedules are deterministic (see TestChaosSameSeedReproducible):
// rerunning a scenario with the same seed injects the same faults in
// the same order. `make chaos-smoke` runs this file.
package faults_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"os"
	"path/filepath"
	"testing"
	"time"

	gpuckpt "github.com/gpuckpt/gpuckpt"
	"github.com/gpuckpt/gpuckpt/internal/blockstore"
	"github.com/gpuckpt/gpuckpt/internal/checkpoint"
	"github.com/gpuckpt/gpuckpt/internal/dedup"
	"github.com/gpuckpt/gpuckpt/internal/device"
	"github.com/gpuckpt/gpuckpt/internal/faults"
	"github.com/gpuckpt/gpuckpt/internal/parallel"
	"github.com/gpuckpt/gpuckpt/internal/server"
	"github.com/gpuckpt/gpuckpt/internal/wire"
)

const (
	chaosDataLen = 4096
	chaosChunk   = 256
	chaosCkpts   = 7
)

var chaosMethods = []struct {
	name   string
	method checkpoint.Method
}{
	{"Basic", checkpoint.MethodBasic},
	{"List", checkpoint.MethodList},
	{"Tree", checkpoint.MethodTree},
}

// seededImages builds a deterministic mutation series: a seeded random
// base image, then ~8 chunk-sized splotches rewritten per step.
func seededImages(seed int64, n int) [][]byte {
	rng := rand.New(rand.NewSource(seed))
	img := make([]byte, chaosDataLen)
	rng.Read(img)
	out := make([][]byte, n)
	out[0] = append([]byte(nil), img...)
	for i := 1; i < n; i++ {
		for s := 0; s < 8; s++ {
			off := rng.Intn(chaosDataLen - 32)
			rng.Read(img[off : off+32])
		}
		out[i] = append([]byte(nil), img...)
	}
	return out
}

// buildLineage checkpoints images through the given method and returns
// the in-memory record plus each diff's canonical encoding.
func buildLineage(t *testing.T, method checkpoint.Method, images [][]byte, opts dedup.Options) (*checkpoint.Record, [][]byte) {
	t.Helper()
	pool := parallel.NewPool(2)
	t.Cleanup(pool.Close)
	dev := device.New(device.A100(), pool, nil)
	opts.ChunkSize = chaosChunk
	d, err := dedup.New(method, chaosDataLen, dev, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)
	for _, img := range images {
		if _, _, err := d.Checkpoint(img); err != nil {
			t.Fatal(err)
		}
	}
	rec := d.Record()
	encoded := make([][]byte, rec.Len())
	for i := 0; i < rec.Len(); i++ {
		var buf bytes.Buffer
		if err := rec.Diff(i).Encode(&buf); err != nil {
			t.Fatal(err)
		}
		encoded[i] = buf.Bytes()
	}
	return rec, encoded
}

// verifyStore loads the lineage directory and byte-compares every
// restorable index against images.
func verifyStore(t *testing.T, dir string, images [][]byte) {
	t.Helper()
	fs, err := checkpoint.NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := fs.Load()
	if err != nil {
		t.Fatalf("load after recovery: %v", err)
	}
	if rec.Len() != len(images) {
		t.Fatalf("store holds %d checkpoints, want %d", rec.Len(), len(images))
	}
	for k := range images {
		got, err := rec.Restore(k)
		if err != nil {
			t.Fatalf("restore %d: %v", k, err)
		}
		if !bytes.Equal(got, images[k]) {
			t.Fatalf("restore %d diverges from source image", k)
		}
	}
}

func startServer(t *testing.T, cfg server.Config) (*server.Server, string, func()) {
	t.Helper()
	cfg.Logf = func(string, ...any) {}
	srv, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ctx, ln) }()
	stop := func() {
		cancel()
		if err := <-done; err != nil {
			t.Errorf("Serve returned %v", err)
		}
	}
	return srv, ln.Addr().String(), stop
}

// appendWithRetry appends rec's diffs [from, Len) to fs, retrying
// each one: every error must be typed (ErrInjected), and a retried
// append must eventually land. maxRetries bounds a scenario whose
// schedule never heals.
func appendWithRetry(t *testing.T, fs *checkpoint.FileStore, rec *checkpoint.Record, from, maxRetries int) {
	t.Helper()
	for i := from; i < rec.Len(); i++ {
		var err error
		for attempt := 0; attempt <= maxRetries; attempt++ {
			if err = fs.Append(rec.Diff(i)); err == nil {
				break
			}
			if !errors.Is(err, faults.ErrInjected) {
				t.Fatalf("append %d: untyped error %v", i, err)
			}
		}
		if err != nil {
			t.Fatalf("append %d never recovered: %v", i, err)
		}
	}
}

// --- storage seam -------------------------------------------------------

// Scenario 1: a torn diff write (short write, then failure) surfaces
// as a typed error, the store stays consistent, and a retry completes
// the lineage; every restore is byte-exact.
func TestChaosStorageTornWrite(t *testing.T) {
	for _, m := range chaosMethods {
		t.Run(m.name, func(t *testing.T) {
			images := seededImages(101, chaosCkpts)
			rec, _ := buildLineage(t, m.method, images, dedup.Options{})
			dir := t.TempDir()
			fs, err := checkpoint.NewFileStore(dir)
			if err != nil {
				t.Fatal(err)
			}
			in := faults.New(101)
			fs.SetIOHooks(in.StorageHooks(faults.StoragePlan{
				TornWrite: faults.On(3), TornAfter: 40,
			}))
			appendWithRetry(t, fs, rec, 0, 1)
			if got := in.Fired(faults.EvTornWrite); got != 1 {
				t.Fatalf("torn write fired %d times, want 1", got)
			}
			fs.SetIOHooks(nil)
			verifyStore(t, dir, images)
		})
	}
}

// Scenario 2: ENOSPC on alternating writes; appends fail typed and
// succeed on retry once the "disk" frees up.
func TestChaosStorageENOSPCRetry(t *testing.T) {
	for _, m := range chaosMethods {
		t.Run(m.name, func(t *testing.T) {
			images := seededImages(202, chaosCkpts)
			rec, _ := buildLineage(t, m.method, images, dedup.Options{})
			dir := t.TempDir()
			fs, err := checkpoint.NewFileStore(dir)
			if err != nil {
				t.Fatal(err)
			}
			in := faults.New(202)
			fs.SetIOHooks(in.StorageHooks(faults.StoragePlan{
				WriteErr: faults.And(faults.Every(2), faults.Upto(6)),
			}))
			appendWithRetry(t, fs, rec, 0, 2)
			fs.SetIOHooks(nil)
			verifyStore(t, dir, images)
		})
	}
}

// Scenario 3: fsync of the temp file fails (flaky disk); the append
// reports a typed error wrapping EIO and the retry succeeds.
func TestChaosStorageSyncFailure(t *testing.T) {
	images := seededImages(303, chaosCkpts)
	rec, _ := buildLineage(t, checkpoint.MethodList, images, dedup.Options{})
	dir := t.TempDir()
	fs, err := checkpoint.NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	in := faults.New(303)
	fs.SetIOHooks(in.StorageHooks(faults.StoragePlan{SyncErr: faults.On(2)}))
	if err := fs.Append(rec.Diff(0)); err != nil {
		t.Fatal(err)
	}
	err = fs.Append(rec.Diff(1))
	if !errors.Is(err, faults.ErrIO) || !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("sync failure surfaced as %v", err)
	}
	appendWithRetry(t, fs, rec, 1, 1)
	fs.SetIOHooks(nil)
	verifyStore(t, dir, images)
}

// crashScenario drives an append into a simulated crash at the given
// rename-adjacent hook, then reopens the directory (the "restarted
// process") and finishes the lineage. wantSurvived is how many diffs
// the store must hold after recovery: the crashed write is lost before
// the rename and durable after it.
func crashScenario(t *testing.T, method checkpoint.Method, seed int64, plan faults.StoragePlan, crashAt, wantSurvived int) {
	t.Helper()
	images := seededImages(seed, chaosCkpts)
	rec, _ := buildLineage(t, method, images, dedup.Options{})
	dir := t.TempDir()
	fs, err := checkpoint.NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	in := faults.New(seed)
	fs.SetIOHooks(in.StorageHooks(plan))
	var crashErr error
	for i := 0; i < rec.Len(); i++ {
		if err := fs.Append(rec.Diff(i)); err != nil {
			crashErr = err
			break
		}
	}
	if !errors.Is(crashErr, checkpoint.ErrSimulatedCrash) {
		t.Fatalf("crash at append %d surfaced as %v", crashAt, crashErr)
	}

	// "Restart": reopen the directory. Recovery must sweep crash
	// debris (orphaned temp files) and report a consistent length.
	fs2, err := checkpoint.NewFileStore(dir)
	if err != nil {
		t.Fatalf("reopen after crash: %v", err)
	}
	if n, err := fs2.Len(); err != nil || n != wantSurvived {
		t.Fatalf("store holds %d diffs after crash recovery, want %d (err %v)", n, wantSurvived, err)
	}
	for _, name := range mustFiles(t, dir) {
		if filepath.Ext(name) == ".tmp" {
			t.Fatalf("crash debris %s survived reopen", name)
		}
	}
	for i := wantSurvived; i < rec.Len(); i++ {
		if err := fs2.Append(rec.Diff(i)); err != nil {
			t.Fatalf("post-recovery append %d: %v", i, err)
		}
	}
	verifyStore(t, dir, images)
}

func mustFiles(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		names = append(names, e.Name())
	}
	return names
}

// Scenario 4: the process dies between the temp file's fsync and the
// publishing rename — the diff is lost, the temp file is swept on
// reopen, and the lineage continues from the last published diff.
func TestChaosStorageCrashBeforeRename(t *testing.T) {
	for _, m := range chaosMethods {
		t.Run(m.name, func(t *testing.T) {
			crashScenario(t, m.method, 404,
				faults.StoragePlan{CrashBeforeRename: faults.On(4)}, 3, 3)
		})
	}
}

// Scenario 5: the process dies right after the rename, before the
// directory fsync — the published diff must survive and count.
func TestChaosStorageCrashAfterRename(t *testing.T) {
	for _, m := range chaosMethods {
		t.Run(m.name, func(t *testing.T) {
			crashScenario(t, m.method, 505,
				faults.StoragePlan{CrashAfterRename: faults.On(4)}, 3, 4)
		})
	}
}

// Scenario 6 (the acceptance scenario): one bit flips on disk. The
// store must refuse to restore (typed ErrCorrupt — never silent
// corruption), Scrub must quarantine exactly the rotten diff, and
// Repair must refetch it from a ckptd peer holding the same lineage,
// after which every restore is byte-exact again.
func TestChaosBitRotScrubRepair(t *testing.T) {
	for mi, m := range chaosMethods {
		t.Run(m.name, func(t *testing.T) {
			images := seededImages(606, chaosCkpts)
			rec, encoded := buildLineage(t, m.method, images, dedup.Options{})

			// Local store and server-side replica of the same lineage.
			dir := t.TempDir()
			fs, err := checkpoint.NewFileStore(dir)
			if err != nil {
				t.Fatal(err)
			}
			appendWithRetry(t, fs, rec, 0, 0)
			_, addr, stop := startServer(t, server.Config{Root: t.TempDir()})
			defer stop()
			cl, err := gpuckpt.Dial(addr, 5*time.Second)
			if err != nil {
				t.Fatal(err)
			}
			defer cl.Close()
			name := "rot-" + m.name
			for i, enc := range encoded {
				if err := cl.Push(name, i, enc); err != nil {
					t.Fatal(err)
				}
			}

			// Rot: flip one payload bit of diff #victim on disk.
			victim := 2 + mi
			files, err := fs.Files()
			if err != nil {
				t.Fatal(err)
			}
			path := files[victim]
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, faults.New(606).FlipBit(raw), 0o644); err != nil {
				t.Fatal(err)
			}

			// Never silent: a full load fails typed.
			if _, err := fs.Load(); !errors.Is(err, checkpoint.ErrCorrupt) {
				t.Fatalf("load of rotten store returned %v, want ErrCorrupt", err)
			}

			// Scrub quarantines exactly the victim.
			rep, err := gpuckpt.ScrubDir(dir)
			if err != nil {
				t.Fatal(err)
			}
			if len(rep.Corrupt) != 1 || rep.Corrupt[0] != victim {
				t.Fatalf("scrub found corrupt %v, want [%d]", rep.Corrupt, victim)
			}
			q, err := checkpoint.NewFileStore(dir)
			if err != nil {
				t.Fatal(err)
			}
			if qs, err := q.Quarantined(); err != nil || len(qs) != 1 {
				t.Fatalf("quarantined files %v (err %v), want exactly one", qs, err)
			}

			// Repair refetches from the peer; restore is byte-exact.
			rrep, err := cl.Repair(dir, name)
			if err != nil {
				t.Fatalf("repair: %v", err)
			}
			if !rrep.OK() || len(rrep.Repaired) != 1 || rrep.Repaired[0] != victim {
				t.Fatalf("repair report %+v", rrep)
			}
			verifyStore(t, dir, images)
		})
	}
}

// --- network seam -------------------------------------------------------

// Scenario 7: connections die mid-frame while a client pushes a full
// lineage, the server compacts it, and a clean client pulls it back.
// The retry policy redials, replayed pushes stay idempotent (no
// duplicate appends, no conflicts), and every retained restore is
// byte-exact.
func TestChaosNetworkMidFrameReset(t *testing.T) {
	for _, m := range chaosMethods {
		t.Run(m.name, func(t *testing.T) {
			images := seededImages(707, chaosCkpts)
			_, encoded := buildLineage(t, m.method, images, dedup.Options{})
			_, addr, stop := startServer(t, server.Config{Root: t.TempDir()})
			defer stop()

			in := faults.New(707)
			cl, err := gpuckpt.DialConfigured(addr, gpuckpt.DialConfig{
				Timeout: 2 * time.Second,
				Retry: gpuckpt.RetryPolicy{
					MaxAttempts: 5, BaseDelay: time.Millisecond, Seed: 707,
				},
				Dialer: in.Dialer(faults.ConnPlan{
					// Connections 1 and 2 tear mid-frame; the third
					// attempt of the interrupted push goes through.
					Reset: faults.On(1, 2), ResetAfter: 600,
				}),
			})
			if err != nil {
				t.Fatal(err)
			}
			defer cl.Close()

			name := "reset-" + m.name
			for i, enc := range encoded {
				if err := cl.Push(name, i, enc); err != nil {
					t.Fatalf("push %d: %v", i, err)
				}
			}
			if fired := in.Fired(faults.EvReset); fired != 2 {
				t.Fatalf("reset fired on %d connections, want 2", fired)
			}
			if n, err := cl.Len(name); err != nil || n != len(encoded) {
				t.Fatalf("server holds %d checkpoints (err %v), want %d", n, err, len(encoded))
			}
			if _, err := cl.CompactTo(name, 3); err != nil {
				t.Fatalf("compact: %v", err)
			}

			clean, err := gpuckpt.Dial(addr, 5*time.Second)
			if err != nil {
				t.Fatal(err)
			}
			defer clean.Close()
			pulled, err := clean.Pull(name)
			if err != nil {
				t.Fatal(err)
			}
			if pulled.Base() != 3 {
				t.Fatalf("pulled base %d, want 3", pulled.Base())
			}
			for k := 3; k < len(images); k++ {
				got, err := pulled.Restore(k)
				if err != nil {
					t.Fatalf("restore %d: %v", k, err)
				}
				if !bytes.Equal(got, images[k]) {
					t.Fatalf("restore %d diverges after reset-laden push", k)
				}
			}
		})
	}
}

// Scenario 8: the server "restarts" under the client — one connection
// tears, the next two dial attempts are refused — and the bounded
// backoff policy rides it out.
func TestChaosNetworkDialFlaps(t *testing.T) {
	images := seededImages(808, chaosCkpts)
	_, encoded := buildLineage(t, checkpoint.MethodBasic, images, dedup.Options{})
	_, addr, stop := startServer(t, server.Config{Root: t.TempDir()})
	defer stop()

	in := faults.New(808)
	var slept []time.Duration
	cl, err := gpuckpt.DialConfigured(addr, gpuckpt.DialConfig{
		Timeout: 2 * time.Second,
		Retry: gpuckpt.RetryPolicy{
			MaxAttempts: 6, BaseDelay: 4 * time.Millisecond, Seed: 808,
			Sleep: func(d time.Duration) { slept = append(slept, d) },
		},
		Dialer: in.Dialer(faults.ConnPlan{
			Reset: faults.On(1), ResetAfter: 600,
			// Dial 1 made the first connection; dials 2 and 3 are the
			// "restarting" window.
			FailDial: faults.On(2, 3),
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for i, enc := range encoded {
		if err := cl.Push("flap", i, enc); err != nil {
			t.Fatalf("push %d: %v", i, err)
		}
	}
	if len(slept) < 3 {
		t.Fatalf("retry policy slept %d times, want >=3 (reset + 2 refused dials)", len(slept))
	}
	// Backoff grows between consecutive retries of one request
	// (jittered exponential, factor 2 with ±0.2 jitter).
	if !(slept[1] > slept[0]) {
		t.Fatalf("backoff did not grow: %v", slept)
	}
	if n, err := cl.Len("flap"); err != nil || n != len(encoded) {
		t.Fatalf("server holds %d (err %v), want %d", n, err, len(encoded))
	}
}

// Scenario 9: slow-loris peers. The client writes one byte per
// syscall, the server reads one byte per read; frames must reassemble
// and the lineage must land intact.
func TestChaosNetworkSlowLoris(t *testing.T) {
	images := seededImages(909, 4)
	_, encoded := buildLineage(t, checkpoint.MethodTree, images, dedup.Options{})

	srvIn := faults.New(909)
	srv, err := server.New(server.Config{Root: t.TempDir(), Logf: func(string, ...any) {}})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- srv.Serve(ctx, srvIn.Listener(ln, faults.ConnPlan{ShortRead: faults.Every(1)}))
	}()
	defer func() {
		cancel()
		if err := <-done; err != nil {
			t.Errorf("Serve returned %v", err)
		}
	}()

	clIn := faults.New(910)
	cl, err := gpuckpt.DialConfigured(ln.Addr().String(), gpuckpt.DialConfig{
		Timeout: 10 * time.Second,
		Retry:   gpuckpt.RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, Seed: 910},
		Dialer:  clIn.Dialer(faults.ConnPlan{SlowWrite: faults.On(1)}),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for i, enc := range encoded {
		if err := cl.Push("loris", i, enc); err != nil {
			t.Fatalf("push %d: %v", i, err)
		}
	}
	pulled, err := cl.Pull("loris")
	if err != nil {
		t.Fatal(err)
	}
	for k := range images {
		got, err := pulled.Restore(k)
		if err != nil || !bytes.Equal(got, images[k]) {
			t.Fatalf("restore %d after slow-loris push: err %v", k, err)
		}
	}
}

// Scenario 10: a peer stalls past the client's deadline mid-session.
// The read times out (a typed transient per wire.Transient), the
// client redials, and the operation completes.
func TestChaosNetworkStallTimeout(t *testing.T) {
	images := seededImages(111, 4)
	_, encoded := buildLineage(t, checkpoint.MethodList, images, dedup.Options{})
	_, addr, stop := startServer(t, server.Config{Root: t.TempDir()})
	defer stop()

	in := faults.New(111)
	cl, err := gpuckpt.DialConfigured(addr, gpuckpt.DialConfig{
		Timeout: 150 * time.Millisecond,
		Retry:   gpuckpt.RetryPolicy{MaxAttempts: 5, BaseDelay: time.Millisecond, Seed: 111},
		Dialer: in.Dialer(faults.ConnPlan{
			// Connection 1 tears mid-frame; connection 2 stalls its
			// first read past the deadline; connection 3 is healthy.
			Reset: faults.On(1), ResetAfter: 80,
			Stall: faults.On(2), StallFor: 400 * time.Millisecond,
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for i, enc := range encoded {
		if err := cl.Push("stall", i, enc); err != nil {
			t.Fatalf("push %d: %v", i, err)
		}
	}
	if in.Fired(faults.EvStall) != 1 || in.Fired(faults.EvReset) != 1 {
		t.Fatalf("schedule did not run: trace %v", in.Trace())
	}
	if n, err := cl.Len("stall"); err != nil || n != len(encoded) {
		t.Fatalf("server holds %d (err %v), want %d", n, err, len(encoded))
	}
}

// Scenario 11: load shedding. A full server greets an over-limit
// client with StatusBusy plus a retry-after hint; the client treats it
// as backoff, not an error, and completes once a slot frees.
func TestChaosServerBusyShed(t *testing.T) {
	srv, addr, stop := startServer(t, server.Config{
		Root: t.TempDir(), MaxConns: 1, RetryAfterHint: 20 * time.Millisecond,
	})
	defer stop()

	holder, err := gpuckpt.Dial(addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		time.Sleep(250 * time.Millisecond)
		holder.Close()
	}()

	cl, err := gpuckpt.DialConfigured(addr, gpuckpt.DialConfig{
		Timeout: 2 * time.Second,
		Retry:   gpuckpt.RetryPolicy{MaxAttempts: 12, BaseDelay: 25 * time.Millisecond, Seed: 112},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.Len("busy"); err != nil {
		t.Fatalf("operation failed despite busy-retry policy: %v", err)
	}
	if st := srv.Stats(); st.BusyRejects == 0 {
		t.Fatal("server never shed a connection")
	}
}

// streamCheckpointer builds a gpuckpt.Checkpointer holding images as
// a tree-method chain — the shape PushCheckpointer streams to a v4
// server.
func streamCheckpointer(t *testing.T, images [][]byte) *gpuckpt.Checkpointer {
	t.Helper()
	ck, err := gpuckpt.New(gpuckpt.Config{Method: gpuckpt.MethodTree, ChunkSize: chaosChunk}, chaosDataLen)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ck.Close() })
	for _, img := range images {
		if _, err := ck.Checkpoint(img); err != nil {
			t.Fatal(err)
		}
	}
	return ck
}

// verifyLineage pulls name with a clean client and byte-compares every
// restore against images.
func verifyLineage(t *testing.T, addr, name string, images [][]byte) {
	t.Helper()
	clean, err := gpuckpt.Dial(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer clean.Close()
	if n, err := clean.Len(name); err != nil || n != len(images) {
		t.Fatalf("server holds %d checkpoints (err %v), want %d", n, err, len(images))
	}
	pulled, err := clean.Pull(name)
	if err != nil {
		t.Fatal(err)
	}
	for k := range images {
		got, err := pulled.Restore(k)
		if err != nil {
			t.Fatalf("restore %d: %v", k, err)
		}
		if !bytes.Equal(got, images[k]) {
			t.Fatalf("restore %d diverges after chaotic stream push", k)
		}
	}
}

// Scenario 13: a connection reset mid-window during a v4 streaming
// push. Several frames are in flight when the stream tears; the retry
// re-opens for the server's authoritative length and resumes exactly
// at the gap — frames that landed before the tear are not re-sent,
// frames lost with the stream are, and the lineage is byte-exact.
func TestChaosStreamMidWindowReset(t *testing.T) {
	images := seededImages(131, chaosCkpts)
	ck := streamCheckpointer(t, images)
	srv, addr, stop := startServer(t, server.Config{Root: t.TempDir()})
	defer stop()

	in := faults.New(131)
	cl, err := gpuckpt.DialConfigured(addr, gpuckpt.DialConfig{
		Timeout: 2 * time.Second,
		Retry:   gpuckpt.RetryPolicy{MaxAttempts: 5, BaseDelay: time.Millisecond, Seed: 131},
		Dialer: in.Dialer(faults.ConnPlan{
			// Connection 1 tears after the handshake, the open and the
			// first stream frames — mid-window, acks still outstanding.
			Reset: faults.On(1), ResetAfter: 900,
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	if _, err := cl.PushCheckpointer("stream-reset", ck); err != nil {
		t.Fatalf("streamed push never recovered: %v", err)
	}
	if in.Fired(faults.EvReset) != 1 {
		t.Fatalf("reset never fired: trace %v", in.Trace())
	}
	if srv.StreamPushes() == 0 {
		t.Fatal("push never took the streaming path")
	}
	verifyLineage(t, addr, "stream-reset", images)
}

// Scenario 14: the server goes silent inside a push stream — the
// client's ack read (not the handshake: StallReadN skips past it)
// stalls beyond the per-operation deadline. The timeout is a typed
// transient, the retry resumes from the server's length, and the
// lineage is byte-exact.
func TestChaosStreamStallInsideWindow(t *testing.T) {
	images := seededImages(141, chaosCkpts)
	ck := streamCheckpointer(t, images)
	srv, addr, stop := startServer(t, server.Config{Root: t.TempDir()})
	defer stop()

	in := faults.New(141)
	cl, err := gpuckpt.DialConfigured(addr, gpuckpt.DialConfig{
		Timeout: 150 * time.Millisecond,
		Retry:   gpuckpt.RetryPolicy{MaxAttempts: 5, BaseDelay: time.Millisecond, Seed: 141},
		Dialer: in.Dialer(faults.ConnPlan{
			// Reads 1-3 of connection 1 are the handshake hello and the
			// open response (header + payload); read 4 is the first
			// stream ack — stall there, past the deadline.
			Stall: faults.On(1), StallReadN: 4, StallFor: 400 * time.Millisecond,
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	if _, err := cl.PushCheckpointer("stream-stall", ck); err != nil {
		t.Fatalf("streamed push never recovered from the stall: %v", err)
	}
	if in.Fired(faults.EvStall) != 1 {
		t.Fatalf("stall never fired: trace %v", in.Trace())
	}
	if srv.StreamPushes() == 0 {
		t.Fatal("push never took the streaming path")
	}
	verifyLineage(t, addr, "stream-stall", images)
}

// --- pipeline seam ------------------------------------------------------

// Scenario 12: kernel failures inside the async pipeline. A front
// failure rejects the checkpoint synchronously; a back failure poisons
// the pipeline (every later call reports it); the record keeps only
// fully-committed checkpoints and restores them byte-exactly.
func TestChaosPipelineKernelFailure(t *testing.T) {
	for _, m := range []struct {
		name   string
		method checkpoint.Method
	}{{"Basic", checkpoint.MethodBasic}, {"Tree", checkpoint.MethodTree}} {
		t.Run(m.name, func(t *testing.T) {
			images := seededImages(113, 5)
			pool := parallel.NewPool(2)
			t.Cleanup(pool.Close)
			dev := device.New(device.A100(), pool, nil)

			in := faults.New(113)
			d, err := dedup.New(m.method, chaosDataLen, dev, dedup.Options{
				ChunkSize: chaosChunk,
				FaultInjector: in.PipelineInjector(faults.PipelinePlan{
					Front: faults.On(2), // second checkpoint dies on the spot
					Back:  faults.On(4), // fourth *attempted* back stage poisons
				}),
			})
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(d.Close)

			var committed []int
			var sawFront, sawBack bool
			for i, img := range images {
				ch, err := d.CheckpointAsync(img)
				if err != nil {
					if !errors.Is(err, faults.ErrKernel) {
						t.Fatalf("checkpoint %d: untyped pipeline error %v", i, err)
					}
					if !sawBack {
						sawFront = true
					}
					continue
				}
				res := <-ch
				if res.Err != nil {
					if !errors.Is(res.Err, faults.ErrKernel) {
						t.Fatalf("checkpoint %d backend: untyped error %v", i, res.Err)
					}
					sawBack = true
					continue
				}
				committed = append(committed, i)
			}
			if !sawFront || !sawBack {
				t.Fatalf("schedule incomplete: front=%v back=%v trace=%v", sawFront, sawBack, in.Trace())
			}
			// Everything the record admitted restores byte-exactly.
			rec := d.Record()
			if rec.Len() != len(committed) {
				t.Fatalf("record holds %d diffs, committed %d", rec.Len(), len(committed))
			}
			for k, img := range committed {
				got, err := rec.Restore(k)
				if err != nil {
					t.Fatalf("restore %d: %v", k, err)
				}
				if !bytes.Equal(got, images[img]) {
					t.Fatalf("restore %d diverges", k)
				}
			}
		})
	}
}

// --- determinism --------------------------------------------------------

// Rerunning a schedule with the same seed must reproduce the same
// fault sequence; different seeds must diverge (here: the bit-rot
// positions).
func TestChaosSameSeedReproducible(t *testing.T) {
	run := func(seed int64) []string {
		images := seededImages(seed, chaosCkpts)
		rec, _ := buildLineage(t, checkpoint.MethodBasic, images, dedup.Options{})
		dir := t.TempDir()
		fs, err := checkpoint.NewFileStore(dir)
		if err != nil {
			t.Fatal(err)
		}
		in := faults.New(seed)
		fs.SetIOHooks(in.StorageHooks(faults.StoragePlan{
			WriteErr:  in.Prob(0.4),
			TornWrite: faults.On(5),
			BitRot:    faults.Every(3),
		}))
		appendWithRetry(t, fs, rec, 0, 8)
		for i := 0; i < rec.Len(); i++ {
			// Reads draw the bit-rot schedule (and rot positions); a
			// corrupt read here is expected and typed.
			if _, err := fs.DiffBytes(i); err != nil && !errors.Is(err, checkpoint.ErrCorrupt) {
				t.Fatalf("read %d: untyped error %v", i, err)
			}
		}
		return in.Trace()
	}
	a, b := run(42), run(42)
	if len(a) == 0 {
		t.Fatal("schedule fired no faults")
	}
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("same seed diverged:\n %v\n %v", a, b)
	}

	// Different seeds pick different rot positions.
	buf := make([]byte, 4096)
	x, y := faults.New(1).FlipBit(buf), faults.New(2).FlipBit(buf)
	same := true
	for i := range x {
		if x[i] != y[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seeds 1 and 2 flipped the same bit sequence")
	}

	// And the wire classification the scenarios rely on is itself
	// stable: busy is transient, checksum mismatch is terminal.
	if !wire.Transient(wire.ErrBusy) || wire.Transient(wire.ErrChecksum) {
		t.Fatal("wire.Transient classification drifted")
	}
}

// --- block store seam ---------------------------------------------------

// blockChaosLineages builds a root with a shared content-addressed
// block store and two lineages holding identical diff chains (every
// block shared), then folds lineage a's prefix to baseline so the
// store carries dead blocks for GC to reclaim. It returns the root,
// the open store and the source images.
func blockChaosLineages(t *testing.T, seed int64) (string, *blockstore.Store, [][]byte) {
	t.Helper()
	images := seededImages(seed, chaosCkpts)
	rec, _ := buildLineage(t, checkpoint.MethodTree, images, dedup.Options{})

	root := t.TempDir()
	bs, err := blockstore.Open(filepath.Join(root, blockstore.DirName), blockstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"a", "b"} {
		fs, err := checkpoint.NewFileStoreWith(filepath.Join(root, name), bs)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < rec.Len(); i++ {
			if err := fs.Append(rec.Diff(i)); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Fold a's prefix: a full baseline at index 3 replaces the chain,
	// the pruned diffs release their block references, and since b
	// still holds every block, only blocks unique to the replaced
	// diff... none — the fold instead ADDS a's baseline blocks. Give
	// GC genuinely dead blocks by pruning a scratch lineage outright.
	scratch, err := checkpoint.NewFileStoreWith(filepath.Join(root, "scratch"), bs)
	if err != nil {
		t.Fatal(err)
	}
	junk := seededImages(seed+1, 2)
	jrec, _ := buildLineage(t, checkpoint.MethodTree, junk, dedup.Options{})
	for i := 0; i < jrec.Len(); i++ {
		if err := scratch.Append(jrec.Diff(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Fold the scratch prefix into a full baseline at index 1 and
	// prune below it: diff 0's blocks (a full random image nothing
	// else references) go dead in the store.
	full := &checkpoint.Diff{Method: checkpoint.MethodFull, CkptID: 1,
		DataLen: uint64(len(junk[1])), ChunkSize: chaosChunk, Data: junk[1]}
	if err := scratch.ReplaceDiff(1, full); err != nil {
		t.Fatal(err)
	}
	if err := scratch.CommitManifest(checkpoint.Manifest{Base: 1, Generation: 1}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := scratch.PruneBelowBase(); err != nil {
		t.Fatal(err)
	}
	return root, bs, images
}

// verifyBlockLineages restores both shared-store lineages byte-exact
// through a freshly recovered block store.
func verifyBlockLineages(t *testing.T, root string, bs *blockstore.Store, images [][]byte) {
	t.Helper()
	for _, name := range []string{"a", "b"} {
		fs, err := checkpoint.NewFileStoreWith(filepath.Join(root, name), bs)
		if err != nil {
			t.Fatal(err)
		}
		rec, err := fs.Load()
		if err != nil {
			t.Fatalf("lineage %s: load after recovery: %v", name, err)
		}
		for k := range images {
			got, err := rec.Restore(k)
			if err != nil {
				t.Fatalf("lineage %s: restore %d: %v", name, k, err)
			}
			if !bytes.Equal(got, images[k]) {
				t.Fatalf("lineage %s: restore %d diverges from source image", name, k)
			}
		}
	}
}

// Scenario: the process dies after GC has chosen its victims but
// before the index snapshot rename — the commit point. Nothing was
// published, so recovery must see the pre-GC state: every block of
// both lineages intact, restores byte-exact, and a clean rerun of GC
// still reclaims the garbage.
func TestChaosBlockGCCrashBeforeCommit(t *testing.T) {
	root, bs, images := blockChaosLineages(t, 901)
	bs.SetHooks(&blockstore.Hooks{BeforeGCCommit: func() error { return faults.ErrInjected }})
	if _, err := bs.GC(); !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("GC with pre-commit crash returned %v, want ErrInjected", err)
	}

	// The dying process holds its torn state; closing the handle stands
	// in for process death (it releases the advisory owner lock without
	// touching the on-disk transaction debris). Recovery opens fresh.
	if err := bs.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := blockstore.Open(filepath.Join(root, blockstore.DirName), blockstore.Options{})
	if err != nil {
		t.Fatalf("reopen after pre-commit crash: %v", err)
	}
	verifyBlockLineages(t, root, re, images)
	gc, err := re.GC()
	if err != nil {
		t.Fatal(err)
	}
	if gc.Reclaimed == 0 {
		t.Fatal("rerun GC reclaimed nothing; the pruned scratch blocks leaked permanently")
	}
	verifyBlockLineages(t, root, re, images)
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}
}

// Scenario: the process dies right after the index snapshot rename —
// GC committed, but the stale journal and the dead block files were
// never cleaned. Recovery must discard the stale-generation journal,
// sweep the unreferenced payload files, and leave both lineages
// byte-exact.
func TestChaosBlockGCCrashAfterCommit(t *testing.T) {
	root, bs, images := blockChaosLineages(t, 902)
	bs.SetHooks(&blockstore.Hooks{AfterGCCommit: func() error { return faults.ErrInjected }})
	if _, err := bs.GC(); !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("GC with post-commit crash returned %v, want ErrInjected", err)
	}

	// Close stands in for process death: the owner lock is released, the
	// committed-snapshot-plus-stale-journal state stays on disk.
	if err := bs.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := blockstore.Open(filepath.Join(root, blockstore.DirName), blockstore.Options{})
	if err != nil {
		t.Fatalf("reopen after post-commit crash: %v", err)
	}
	verifyBlockLineages(t, root, re, images)
	// The committed snapshot already dropped the dead blocks; a rerun
	// finds nothing more to reclaim and the store stays consistent.
	if _, err := re.GC(); err != nil {
		t.Fatal(err)
	}
	verifyBlockLineages(t, root, re, images)
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}
}

// Scenario: one bit rots inside a payload block that BOTH lineages
// reference. Every affected restore must fail typed (ErrCorrupt) in
// every lineage — never silent corruption, and never a partial answer
// where one lineage trusts a block another lineage already saw rot.
func TestChaosBlockSharedRot(t *testing.T) {
	root, bs, _ := blockChaosLineages(t, 903)
	if err := bs.Close(); err != nil {
		t.Fatal(err)
	}

	// Flip one bit in one stored payload block.
	var blk string
	dataDir := filepath.Join(root, blockstore.DirName, "data")
	err := filepath.WalkDir(dataDir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if blk == "" && !d.IsDir() && filepath.Ext(path) == ".blk" {
			blk = path
		}
		return nil
	})
	if err != nil || blk == "" {
		t.Fatalf("no payload block found under %s (err %v)", dataDir, err)
	}
	raw, err := os.ReadFile(blk)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(blk, faults.New(903).FlipBit(raw), 0o644); err != nil {
		t.Fatal(err)
	}

	re, err := blockstore.Open(filepath.Join(root, blockstore.DirName), blockstore.Options{})
	if err != nil {
		t.Fatalf("reopen with rotten payload: %v", err)
	}
	defer re.Close()
	for _, name := range []string{"a", "b"} {
		fs, err := checkpoint.NewFileStoreWith(filepath.Join(root, name), re)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := fs.Load(); !errors.Is(err, checkpoint.ErrCorrupt) {
			t.Fatalf("lineage %s: load over rotten shared block returned %v, want ErrCorrupt", name, err)
		}
	}
}
