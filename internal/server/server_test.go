package server

import (
	"bytes"
	"context"
	"errors"
	"net"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"github.com/gpuckpt/gpuckpt/internal/checkpoint"
	"github.com/gpuckpt/gpuckpt/internal/wire"
)

func quiet(cfg Config) Config {
	cfg.Logf = func(string, ...any) {}
	return cfg
}

// startServer runs a server on an ephemeral port and returns its
// address plus a shutdown func that waits for Serve to return.
func startServer(t *testing.T, cfg Config) (*Server, string, func()) {
	t.Helper()
	srv, err := New(quiet(cfg))
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ctx, ln) }()
	stop := func() {
		cancel()
		if err := <-done; err != nil {
			t.Errorf("Serve returned %v", err)
		}
		if err := srv.Close(); err != nil {
			t.Errorf("Close returned %v", err)
		}
	}
	return srv, ln.Addr().String(), stop
}

// testConn dials and handshakes a raw protocol connection.
func testConn(t *testing.T, addr string) net.Conn {
	t.Helper()
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	conn.SetDeadline(time.Now().Add(10 * time.Second))
	if _, err := wire.Handshake(conn); err != nil {
		conn.Close()
		t.Fatal(err)
	}
	return conn
}

func call(t *testing.T, conn net.Conn, req *wire.Frame) *wire.Frame {
	t.Helper()
	if err := wire.WriteFrame(conn, req); err != nil {
		t.Fatal(err)
	}
	resp, err := wire.ReadFrame(conn, 0)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func encodedDiff(t *testing.T, ck int, tag byte) []byte {
	t.Helper()
	d := &checkpoint.Diff{Method: checkpoint.MethodFull, CkptID: uint32(ck),
		DataLen: 64, ChunkSize: 16, Data: bytes.Repeat([]byte{tag}, 64)}
	var buf bytes.Buffer
	if err := d.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestServerOpenPushPull(t *testing.T) {
	root := t.TempDir()
	_, addr, stop := startServer(t, Config{Root: root})
	defer stop()
	conn := testConn(t, addr)
	defer conn.Close()

	open := call(t, conn, &wire.Frame{Type: wire.TOpen, Payload: []byte("lin-a")})
	if open.Status != wire.StatusOK || open.Ckpt != 0 {
		t.Fatalf("open: %+v", open)
	}
	h := open.Lineage

	enc := encodedDiff(t, 0, 0xAA)
	push := call(t, conn, &wire.Frame{Type: wire.TPush, Lineage: h, Ckpt: 0, Payload: wire.EncodePush(enc)})
	if push.Status != wire.StatusOK || push.Ckpt != 1 {
		t.Fatalf("push: %+v (%s)", push, push.Payload)
	}

	pull := call(t, conn, &wire.Frame{Type: wire.TPull, Lineage: h, Ckpt: 0})
	if pull.Status != wire.StatusOK || !bytes.Equal(pull.Payload, enc) {
		t.Fatalf("pull returned %d bytes, want %d", len(pull.Payload), len(enc))
	}

	// The lineage landed as a FileStore directory under root.
	if _, err := os.Stat(filepath.Join(root, "lin-a", "ckpt-000000.gckp")); err != nil {
		t.Fatalf("lineage file missing: %v", err)
	}

	list := call(t, conn, &wire.Frame{Type: wire.TList})
	infos, err := wire.DecodeList(list.Payload)
	if err != nil || len(infos) != 1 || infos[0].Name != "lin-a" || infos[0].Len != 1 {
		t.Fatalf("list: %+v err %v", infos, err)
	}
	// On-disk bytes reflect the block-mapped container, which is
	// smaller than the canonical encoding it reassembles to: the data
	// section is replaced by references into the shared block store.
	fi, err := os.Stat(filepath.Join(root, "lin-a", "ckpt-000000.gckp"))
	if err != nil {
		t.Fatalf("stat lineage file: %v", err)
	}
	if infos[0].Bytes != uint64(fi.Size()) {
		t.Fatalf("list bytes %d, want on-disk %d", infos[0].Bytes, fi.Size())
	}
	if infos[0].Bytes >= uint64(len(enc)+checkpoint.FooterSize) {
		t.Fatalf("block-mapped file is %d bytes, not smaller than canonical %d",
			infos[0].Bytes, len(enc)+checkpoint.FooterSize)
	}
}

func TestServerRequestErrors(t *testing.T) {
	_, addr, stop := startServer(t, Config{Root: t.TempDir()})
	defer stop()
	conn := testConn(t, addr)
	defer conn.Close()

	cases := []*wire.Frame{
		{Type: wire.TOpen, Payload: []byte("../escape")}, // bad name
		{Type: wire.TOpen, Payload: []byte("a/b")},       // path separator
		{Type: wire.TOpen},                               // empty name
	}
	for _, req := range cases {
		resp := call(t, conn, req)
		if resp.Status != wire.StatusErr {
			t.Fatalf("request %+v succeeded: %+v", req, resp)
		}
	}
	// A stale/unknown handle gets the dedicated v4 status on this
	// (v4-negotiated) connection, and round-trips through Err() as
	// wire.ErrUnknownHandle so the client's re-open path triggers.
	for _, req := range []*wire.Frame{
		{Type: wire.TPush, Lineage: 99, Payload: []byte("x")},
		{Type: wire.TPull, Lineage: 99},
	} {
		resp := call(t, conn, req)
		if resp.Status != wire.StatusUnknownHandle {
			t.Fatalf("unknown handle %+v: status %d, want StatusUnknownHandle", req, resp.Status)
		}
		if err := resp.Err(); !errors.Is(err, wire.ErrUnknownHandle) {
			t.Fatalf("unknown handle error %v does not match wire.ErrUnknownHandle", err)
		}
	}
	// An unknown opcode gets the dedicated unsupported status (not a
	// generic error), so clients can distinguish "old server" from "bad
	// request", and the error frame must round-trip through Err() as
	// wire.ErrUnsupported.
	resp0 := call(t, conn, &wire.Frame{Type: 0x77})
	if resp0.Status != wire.StatusUnsupported {
		t.Fatalf("unknown opcode: status = %d, want StatusUnsupported; frame %+v", resp0.Status, resp0)
	}
	if err := resp0.Err(); !errors.Is(err, wire.ErrUnsupported) {
		t.Fatalf("unknown opcode error %v does not match wire.ErrUnsupported", err)
	}

	// A malformed diff must be rejected before touching the store.
	open := call(t, conn, &wire.Frame{Type: wire.TOpen, Payload: []byte("lin")})
	resp := call(t, conn, &wire.Frame{Type: wire.TPush, Lineage: open.Lineage, Ckpt: 0, Payload: []byte("garbage")})
	if resp.Status != wire.StatusErr {
		t.Fatal("garbage diff accepted")
	}
	// Frame ckpt id and diff id must agree.
	resp = call(t, conn, &wire.Frame{Type: wire.TPush, Lineage: open.Lineage, Ckpt: 1, Payload: wire.EncodePush(encodedDiff(t, 0, 1))})
	if resp.Status != wire.StatusErr {
		t.Fatal("mismatched ckpt id accepted")
	}
	// Non-contiguous push.
	resp = call(t, conn, &wire.Frame{Type: wire.TPush, Lineage: open.Lineage, Ckpt: 5, Payload: wire.EncodePush(encodedDiff(t, 5, 1))})
	if resp.Status != wire.StatusErr {
		t.Fatal("non-contiguous push accepted")
	}
	// The connection survives request errors.
	if st := call(t, conn, &wire.Frame{Type: wire.TStats}); st.Status != wire.StatusOK {
		t.Fatal("connection broken after request errors")
	}
}

// TestServerStreamPush drives the v4 pipelined push over raw frames:
// a window of TPushStream frames is written without reading a single
// ack, then all acks are drained and matched by checkpoint id. A bad
// frame in the middle must produce an error ack without tearing the
// stream — the frames behind it still land.
func TestServerStreamPush(t *testing.T) {
	srv, addr, stop := startServer(t, Config{Root: t.TempDir()})
	defer stop()
	conn := testConn(t, addr)
	defer conn.Close()

	open := call(t, conn, &wire.Frame{Type: wire.TOpen, Payload: []byte("stream")})
	if open.Status != wire.StatusOK {
		t.Fatalf("open: %+v", open)
	}
	h := open.Lineage

	const n = 16
	const badCkpt = 7
	for i := 0; i < n; i++ {
		payload := wire.EncodePush(encodedDiff(t, i, byte(i)))
		if i == badCkpt {
			// Frame ckpt disagrees with the encoded diff id: a
			// per-frame error, not a stream teardown.
			payload = wire.EncodePush(encodedDiff(t, 99, byte(i)))
		}
		f := &wire.Frame{Type: wire.TPushStream, Lineage: h, Ckpt: uint32(i), Payload: payload}
		if err := wire.WriteFrame(conn, f); err != nil {
			t.Fatalf("stream frame %d: %v", i, err)
		}
	}
	acked := make(map[uint32]wire.StreamAck)
	statuses := make(map[uint32]uint8)
	for i := 0; i < n; i++ {
		resp, err := wire.ReadFrame(conn, 0)
		if err != nil {
			t.Fatalf("ack %d: %v", i, err)
		}
		if resp.Type != wire.TPushStream {
			t.Fatalf("ack %d has type %d", i, resp.Type)
		}
		ack, err := wire.DecodeStreamAck(resp.Payload)
		if err != nil {
			t.Fatalf("ack %d payload: %v", i, err)
		}
		if ack.Ckpt != resp.Ckpt {
			t.Fatalf("ack payload ckpt %d != header ckpt %d", ack.Ckpt, resp.Ckpt)
		}
		if _, dup := acked[ack.Ckpt]; dup {
			t.Fatalf("checkpoint %d acked twice", ack.Ckpt)
		}
		acked[ack.Ckpt] = ack
		statuses[ack.Ckpt] = resp.Status
	}
	for i := uint32(0); i < n; i++ {
		ack, ok := acked[i]
		if !ok {
			t.Fatalf("checkpoint %d never acked", i)
		}
		if i < badCkpt {
			if statuses[i] != wire.StatusOK {
				t.Fatalf("checkpoint %d ack status %d: %s", i, statuses[i], ack.Msg)
			}
			continue
		}
		// The bad frame fails on its own terms; the frames already in
		// flight behind it fail the contiguity check (the lineage
		// stopped at the gap). Every failure is a typed per-frame ack,
		// never a torn connection.
		if statuses[i] == wire.StatusOK {
			t.Fatalf("checkpoint %d acked OK across the gap: %+v", i, ack)
		}
		if ack.Msg == "" {
			t.Fatalf("error ack %d carries no message", i)
		}
		var re *wire.RemoteError
		if !errors.As(ack.Err(statuses[i]), &re) {
			t.Fatalf("error ack %d does not decode to a RemoteError: %v", i, ack.Err(statuses[i]))
		}
	}
	if got := srv.StreamPushes(); got != n {
		t.Fatalf("StreamPushes() = %d, want %d", got, n)
	}

	// The stream stayed usable: the client resumes from the gap over
	// the same connection and the suffix lands.
	for i := badCkpt; i < n; i++ {
		tag := byte(i)
		if i == badCkpt {
			tag = 0xEE
		}
		repush := call(t, conn, &wire.Frame{Type: wire.TPushStream, Lineage: h, Ckpt: uint32(i),
			Payload: wire.EncodePush(encodedDiff(t, i, tag))})
		if repush.Status != wire.StatusOK {
			t.Fatalf("resume push %d after error ack: %+v (%s)", i, repush, repush.Payload)
		}
		ack, err := wire.DecodeStreamAck(repush.Payload)
		if err != nil || ack.Ckpt != uint32(i) || ack.NewLen != uint32(i+1) {
			t.Fatalf("resume ack %+v err %v", ack, err)
		}
	}

	// Every slot restorable and byte-exact.
	for i := 0; i < n; i++ {
		pull := call(t, conn, &wire.Frame{Type: wire.TPull, Lineage: h, Ckpt: uint32(i)})
		if pull.Status != wire.StatusOK {
			t.Fatalf("pull %d: %+v", i, pull)
		}
		tag := byte(i)
		if i == badCkpt {
			tag = 0xEE
		}
		want := encodedDiff(t, i, tag)
		if !bytes.Equal(pull.Payload, want) {
			t.Fatalf("pull %d diverges from pushed bytes", i)
		}
	}
}

// TestServerStreamUnknownHandleAck: a stream frame naming a stale
// handle is answered with a StatusUnknownHandle ack on a v4
// connection, still without tearing the stream.
func TestServerStreamUnknownHandleAck(t *testing.T) {
	_, addr, stop := startServer(t, Config{Root: t.TempDir()})
	defer stop()
	conn := testConn(t, addr)
	defer conn.Close()

	resp := call(t, conn, &wire.Frame{Type: wire.TPushStream, Lineage: 42, Ckpt: 0,
		Payload: wire.EncodePush(encodedDiff(t, 0, 1))})
	if resp.Status != wire.StatusUnknownHandle {
		t.Fatalf("stale-handle stream push: status %d, want StatusUnknownHandle", resp.Status)
	}
	ack, err := wire.DecodeStreamAck(resp.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(ack.Err(resp.Status), wire.ErrUnknownHandle) {
		t.Fatalf("ack error %v does not match ErrUnknownHandle", ack.Err(resp.Status))
	}
	// The connection is still alive.
	if st := call(t, conn, &wire.Frame{Type: wire.TStats}); st.Status != wire.StatusOK {
		t.Fatalf("connection dead after unknown-handle ack: %+v", st)
	}
}

// TestServerProtocolPin: a server pinned to v3 negotiates v3 with a
// v4 client, answers TPushStream with StatusUnsupported (it never
// advertised the op), and keeps plain TPush working.
func TestServerProtocolPin(t *testing.T) {
	_, addr, stop := startServer(t, Config{Root: t.TempDir(), Protocol: 3})
	defer stop()
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(10 * time.Second))
	v, err := wire.Handshake(conn)
	if err != nil {
		t.Fatal(err)
	}
	if v != 3 {
		t.Fatalf("negotiated v%d against a v3-pinned server", v)
	}

	open := call(t, conn, &wire.Frame{Type: wire.TOpen, Payload: []byte("v3lin")})
	if open.Status != wire.StatusOK {
		t.Fatalf("open: %+v", open)
	}
	push := call(t, conn, &wire.Frame{Type: wire.TPush, Lineage: open.Lineage, Ckpt: 0,
		Payload: wire.EncodePush(encodedDiff(t, 0, 0x11))})
	if push.Status != wire.StatusOK {
		t.Fatalf("v3 push: %+v", push)
	}
	stream := call(t, conn, &wire.Frame{Type: wire.TPushStream, Lineage: open.Lineage, Ckpt: 1,
		Payload: wire.EncodePush(encodedDiff(t, 1, 0x22))})
	if stream.Status != wire.StatusUnsupported {
		t.Fatalf("TPushStream on v3 conn: status %d, want StatusUnsupported", stream.Status)
	}
	// Stale handles on a v3 conn keep the legacy generic status.
	stale := call(t, conn, &wire.Frame{Type: wire.TPull, Lineage: 77})
	if stale.Status != wire.StatusErr {
		t.Fatalf("stale handle on v3 conn: status %d, want StatusErr", stale.Status)
	}
}

func TestServerReopensLineages(t *testing.T) {
	root := t.TempDir()
	_, addr, stop := startServer(t, Config{Root: root})
	conn := testConn(t, addr)
	open := call(t, conn, &wire.Frame{Type: wire.TOpen, Payload: []byte("persisted")})
	call(t, conn, &wire.Frame{Type: wire.TPush, Lineage: open.Lineage, Ckpt: 0, Payload: wire.EncodePush(encodedDiff(t, 0, 3))})
	conn.Close()
	stop()

	// A fresh server over the same root sees the lineage and its diff.
	_, addr2, stop2 := startServer(t, Config{Root: root})
	defer stop2()
	conn2 := testConn(t, addr2)
	defer conn2.Close()
	open2 := call(t, conn2, &wire.Frame{Type: wire.TOpen, Payload: []byte("persisted")})
	if open2.Status != wire.StatusOK || open2.Ckpt != 1 {
		t.Fatalf("reopened lineage: %+v", open2)
	}
}

func TestServerConnectionLimit(t *testing.T) {
	_, addr, stop := startServer(t, Config{Root: t.TempDir(), MaxConns: 2})
	defer stop()

	c1 := testConn(t, addr)
	defer c1.Close()
	c2 := testConn(t, addr)
	defer c2.Close()
	// Ensure both are fully admitted before over-subscribing.
	call(t, c1, &wire.Frame{Type: wire.TStats})
	call(t, c2, &wire.Frame{Type: wire.TStats})

	// The third connection is greeted, then shed with StatusBusy and a
	// retry-after hint.
	c3, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c3.Close()
	c3.SetDeadline(time.Now().Add(10 * time.Second))
	if _, err := wire.Handshake(c3); err != nil {
		t.Fatalf("over-limit handshake failed: %v", err)
	}
	f, err := wire.ReadFrame(c3, 0)
	if err != nil {
		t.Fatalf("over-limit conn: %v", err)
	}
	if f.Type != wire.TErr || f.Status != wire.StatusBusy {
		t.Fatalf("over-limit conn got %+v", f)
	}
	var re *wire.RemoteError
	if err := f.Err(); !errors.As(err, &re) || !re.Busy || re.RetryAfter <= 0 {
		t.Fatalf("over-limit error %v is not a busy error with a hint", err)
	}

	// Releasing a slot admits new connections again.
	c1.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		c4, err := net.DialTimeout("tcp", addr, time.Second)
		if err == nil {
			c4.SetDeadline(time.Now().Add(5 * time.Second))
			if _, err := wire.Handshake(c4); err == nil {
				if err := wire.WriteFrame(c4, &wire.Frame{Type: wire.TStats}); err == nil {
					if resp, err := wire.ReadFrame(c4, 0); err == nil && resp.Status == wire.StatusOK {
						c4.Close()
						break
					}
				}
			}
			c4.Close()
		}
		if time.Now().After(deadline) {
			t.Fatal("slot never released")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestServerGracefulShutdown(t *testing.T) {
	srv, addr, stop := startServer(t, Config{Root: t.TempDir(), DrainTimeout: time.Second})
	conn := testConn(t, addr)
	defer conn.Close()
	call(t, conn, &wire.Frame{Type: wire.TOpen, Payload: []byte("x")})
	stop() // cancels ctx; Serve must return without error

	if _, err := net.DialTimeout("tcp", addr, 500*time.Millisecond); err == nil {
		t.Fatal("server still accepting after shutdown")
	}
	st := srv.Stats()
	if st.Requests == 0 || st.Conns == 0 {
		t.Fatalf("counters empty after traffic: %+v", st)
	}
}

func TestServerStatsCounters(t *testing.T) {
	srv, addr, stop := startServer(t, Config{Root: t.TempDir()})
	defer stop()
	conn := testConn(t, addr)
	defer conn.Close()

	call(t, conn, &wire.Frame{Type: wire.TOpen, Payload: []byte("s")})
	open := call(t, conn, &wire.Frame{Type: wire.TOpen, Payload: []byte("s")})
	enc := encodedDiff(t, 0, 9)
	call(t, conn, &wire.Frame{Type: wire.TPush, Lineage: open.Lineage, Ckpt: 0, Payload: wire.EncodePush(enc)})
	resp := call(t, conn, &wire.Frame{Type: wire.TStats})
	st, err := wire.DecodeStats(resp.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if st.Requests != 4 {
		t.Fatalf("requests %d, want 4", st.Requests)
	}
	if st.ActiveConns != 1 || st.Conns != 1 || st.Lineages != 1 {
		t.Fatalf("conn/lineage counters: %+v", st)
	}
	// Bytes in: hello + 4 request frames (two opens carry "s", push
	// carries the diff plus its CRC32C prefix).
	wantIn := uint64(wire.HelloSize + 4*wire.HeaderSize + 1 + 1 + wire.PushChecksumSize + len(enc))
	if st.BytesIn != wantIn {
		t.Fatalf("bytesIn %d, want %d", st.BytesIn, wantIn)
	}
	if st.BytesOut == 0 {
		t.Fatal("bytesOut not counted")
	}
	if got := srv.Stats(); got.Requests < st.Requests {
		t.Fatalf("server-side stats regressed: %+v", got)
	}
}

func TestServerRejectsOversizedFrame(t *testing.T) {
	_, addr, stop := startServer(t, Config{Root: t.TempDir(), MaxPayload: 128})
	defer stop()
	conn := testConn(t, addr)
	defer conn.Close()
	// A frame over the server's payload limit tears the connection
	// down (the server cannot trust the stream afterwards).
	err := wire.WriteFrame(conn, &wire.Frame{Type: wire.TOpen, Payload: make([]byte, 4096)})
	if err != nil {
		t.Skipf("write failed early: %v", err)
	}
	if _, err := wire.ReadFrame(conn, 0); err == nil {
		t.Fatal("oversized frame answered")
	}
}

func TestServerBadHandshake(t *testing.T) {
	_, addr, stop := startServer(t, Config{Root: t.TempDir()})
	defer stop()
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(5 * time.Second))
	conn.Write([]byte("GET / HTTP/1.1\r\n\r\n"))
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("server answered a non-protocol client")
	}
}

func TestServerConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("empty root accepted")
	}
}

// TestServerCompactAndPolicy drives the v2 lifecycle ops over raw
// frames: policy get/set, explicit-target and policy-driven
// compaction, post-compaction serving bounds, and stats accounting.
func TestServerCompactAndPolicy(t *testing.T) {
	root := t.TempDir()
	_, addr, stop := startServer(t, Config{Root: root})
	defer stop()
	conn := testConn(t, addr)
	defer conn.Close()

	open := call(t, conn, &wire.Frame{Type: wire.TOpen, Payload: []byte("lin")})
	if open.Status != wire.StatusOK {
		t.Fatalf("open: %+v", open)
	}
	h := open.Lineage
	for k := 0; k < 8; k++ {
		push := call(t, conn, &wire.Frame{Type: wire.TPush, Lineage: h, Ckpt: uint32(k),
			Payload: wire.EncodePush(encodedDiff(t, k, byte(k)))})
		if push.Status != wire.StatusOK {
			t.Fatalf("push %d: %s", k, push.Payload)
		}
	}

	// Policy defaults to the server-wide retention (keep-all here).
	pol := call(t, conn, &wire.Frame{Type: wire.TPolicy, Lineage: h})
	if pol.Status != wire.StatusOK || string(pol.Payload) != "keep-all" {
		t.Fatalf("policy get: %q (%d)", pol.Payload, pol.Status)
	}
	if bad := call(t, conn, &wire.Frame{Type: wire.TPolicy, Lineage: h,
		Payload: []byte("lru")}); bad.Status == wire.StatusOK {
		t.Fatal("bogus policy accepted")
	}

	// Explicit-target compaction to baseline 4.
	comp := call(t, conn, &wire.Frame{Type: wire.TCompact, Lineage: h, Ckpt: 4})
	if comp.Status != wire.StatusOK {
		t.Fatalf("compact: %s", comp.Payload)
	}
	res, err := wire.DecodeCompactResult(comp.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if res.OldBase != 0 || res.NewBase != 4 || res.Pruned != 4 {
		t.Fatalf("compact result %+v", res)
	}

	// Folded checkpoints are gone; the baseline serves as a full diff.
	if pull := call(t, conn, &wire.Frame{Type: wire.TPull, Lineage: h, Ckpt: 2}); pull.Status == wire.StatusOK {
		t.Fatal("pull below the baseline succeeded")
	}
	if pull := call(t, conn, &wire.Frame{Type: wire.TPull, Lineage: h, Ckpt: 4}); pull.Status != wire.StatusOK {
		t.Fatalf("pull at baseline: %s", pull.Payload)
	}

	// A fresh open reports span [4, 8).
	open2 := call(t, conn, &wire.Frame{Type: wire.TOpen, Payload: []byte("lin")})
	base, err := wire.DecodeOpenInfo(open2.Payload)
	if err != nil || open2.Ckpt != 8 || base != 4 {
		t.Fatalf("reopen: len %d base %d (%v)", open2.Ckpt, base, err)
	}

	// Policy-driven compaction: keep-last=2 folds up to 6.
	set := call(t, conn, &wire.Frame{Type: wire.TPolicy, Lineage: h, Payload: []byte("keep-last=2")})
	if set.Status != wire.StatusOK || string(set.Payload) != "keep-last=2" {
		t.Fatalf("policy set: %q (%d)", set.Payload, set.Status)
	}
	comp2 := call(t, conn, &wire.Frame{Type: wire.TCompact, Lineage: h, Ckpt: wire.CompactAuto})
	res2, err := wire.DecodeCompactResult(comp2.Payload)
	if err != nil || res2.NewBase != 6 {
		t.Fatalf("auto compact: %+v (%v)", res2, err)
	}

	// Both compactions land in the stats counters.
	stats := call(t, conn, &wire.Frame{Type: wire.TStats})
	st, err := wire.DecodeStats(stats.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if st.Compactions != 2 || st.CompactedDiffs != 6 {
		t.Fatalf("stats: %+v", st)
	}

	// The list reports the compacted span.
	list := call(t, conn, &wire.Frame{Type: wire.TList})
	infos, err := wire.DecodeList(list.Payload)
	if err != nil || len(infos) != 1 || infos[0].Base != 6 || infos[0].Len != 8 {
		t.Fatalf("list: %+v (%v)", infos, err)
	}
}

// TestServerBackgroundCompaction configures a retention policy and a
// short compaction interval and waits for the worker to fold the
// lineage on its own.
func TestServerBackgroundCompaction(t *testing.T) {
	_, addr, stop := startServer(t, Config{Root: t.TempDir(),
		Retention: "keep-last=2", CompactInterval: 20 * time.Millisecond})
	defer stop()
	conn := testConn(t, addr)
	defer conn.Close()

	open := call(t, conn, &wire.Frame{Type: wire.TOpen, Payload: []byte("bg")})
	h := open.Lineage
	for k := 0; k < 6; k++ {
		push := call(t, conn, &wire.Frame{Type: wire.TPush, Lineage: h, Ckpt: uint32(k),
			Payload: wire.EncodePush(encodedDiff(t, k, byte(k)))})
		if push.Status != wire.StatusOK {
			t.Fatalf("push %d: %s", k, push.Payload)
		}
	}

	deadline := time.Now().Add(10 * time.Second)
	for {
		stats := call(t, conn, &wire.Frame{Type: wire.TStats})
		st, err := wire.DecodeStats(stats.Payload)
		if err != nil {
			t.Fatal(err)
		}
		if st.Compactions >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("background compaction never ran")
		}
		time.Sleep(10 * time.Millisecond)
	}
	open2 := call(t, conn, &wire.Frame{Type: wire.TOpen, Payload: []byte("bg")})
	base, err := wire.DecodeOpenInfo(open2.Payload)
	if err != nil || base != 4 || open2.Ckpt != 6 {
		t.Fatalf("after background compaction: len %d base %d (%v)", open2.Ckpt, base, err)
	}
	// The retained span still pulls cleanly.
	for k := uint32(4); k < 6; k++ {
		if pull := call(t, conn, &wire.Frame{Type: wire.TPull, Lineage: h, Ckpt: k}); pull.Status != wire.StatusOK {
			t.Fatalf("pull %d after compaction: %s", k, pull.Payload)
		}
	}
}

// TestServerCrossLineageDedup pushes the same checkpoint payload into
// two lineages over the wire and checks the shared block store interned
// the data section once, that both pulls reassemble the canonical
// bytes, and that the dedup shows up in STATS.
func TestServerCrossLineageDedup(t *testing.T) {
	root := t.TempDir()
	_, addr, stop := startServer(t, Config{Root: root})
	defer stop()
	conn := testConn(t, addr)
	defer conn.Close()

	enc := encodedDiff(t, 0, 0x5A)
	handles := make([]uint32, 2)
	for i, name := range []string{"job-a", "job-b"} {
		open := call(t, conn, &wire.Frame{Type: wire.TOpen, Payload: []byte(name)})
		if open.Status != wire.StatusOK {
			t.Fatalf("open %s: %+v", name, open)
		}
		handles[i] = open.Lineage
		push := call(t, conn, &wire.Frame{Type: wire.TPush, Lineage: handles[i], Ckpt: 0,
			Payload: wire.EncodePush(enc)})
		if push.Status != wire.StatusOK {
			t.Fatalf("push %s: %+v (%s)", name, push, push.Payload)
		}
	}
	for i := range handles {
		pull := call(t, conn, &wire.Frame{Type: wire.TPull, Lineage: handles[i], Ckpt: 0})
		if pull.Status != wire.StatusOK || !bytes.Equal(pull.Payload, enc) {
			t.Fatalf("pull lineage %d: status %d, %d bytes", i, pull.Status, len(pull.Payload))
		}
	}

	resp := call(t, conn, &wire.Frame{Type: wire.TStats})
	st, err := wire.DecodeStats(resp.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if st.BlocksInterned == 0 {
		t.Fatal("stats report zero interned blocks after two pushes")
	}
	if st.BlockDedupHits != st.BlocksInterned {
		t.Fatalf("dedup hits %d, want %d (second lineage should hit every block)",
			st.BlockDedupHits, st.BlocksInterned)
	}
	if st.BlockBytesSaved == 0 {
		t.Fatal("stats report zero bytes saved")
	}
}

// TestServerReservedLineageName checks that underscore-prefixed names —
// the namespace the _blocks store lives in — are rejected at open, and
// that an existing _blocks directory is not misread as a lineage when
// the server restarts over the root.
func TestServerReservedLineageName(t *testing.T) {
	root := t.TempDir()
	srv, addr, stop := startServer(t, Config{Root: root})
	conn := testConn(t, addr)
	open := call(t, conn, &wire.Frame{Type: wire.TOpen, Payload: []byte("_blocks")})
	if open.Status != wire.StatusErr {
		t.Fatalf("open _blocks: %+v", open)
	}
	if n := len(srv.snapshot()); n != 0 {
		t.Fatalf("reserved open registered %d lineages", n)
	}
	conn.Close()
	stop()

	// Reopen over the same root: the _blocks directory created by the
	// first server must be skipped by the lineage scan.
	srv2, _, stop2 := startServer(t, Config{Root: root})
	defer stop2()
	if n := len(srv2.snapshot()); n != 0 {
		t.Fatalf("restart scanned %d lineages, want 0", n)
	}
}

// TestRaceServeJoinsWorkersOnListenerError pulls the listener out from
// under Serve — the terminal accept-error path — and checks that Serve
// still joins its background workers before returning. The caller's
// next move after Serve returns is Close, which tears down the block
// store the compaction worker shares; a worker that only watched ctx
// (the old behavior) kept compacting against a closed store. The
// goroutine-count poll makes the leak fail deterministically: a leaked
// compactLoop never exits, so the count never settles.
func TestRaceServeJoinsWorkersOnListenerError(t *testing.T) {
	before := runtime.NumGoroutine()
	srv, err := New(quiet(Config{Root: t.TempDir(), CompactInterval: time.Millisecond}))
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(context.Background(), ln) }()
	time.Sleep(10 * time.Millisecond) // let the compaction ticker fire
	ln.Close()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("Serve returned nil after the listener was closed underneath it")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("Serve did not return after the listener was closed underneath it")
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked past Serve: %d, want <= %d", runtime.NumGoroutine(), before)
		}
		time.Sleep(time.Millisecond)
	}
}
