// Package server implements ckptd, the networked checkpoint service:
// a concurrent TCP server hosting many named checkpoint lineages, each
// backed by a checkpoint.FileStore directory under a common root.
//
// This is the paper's §2.3 storage endpoint made into a real service:
// many processes drain their incremental diffs into one storage node,
// the "many concurrent writers, one parallel file system" regime of
// Figure 3. The protocol is the framed binary transport of
// internal/wire; concurrency control is one mutex per lineage
// (FileStore.Append is contiguous, so interleaved writers must be
// serialized per lineage while distinct lineages proceed in parallel).
//
// Operational guardrails: a connection limit (excess connections are
// greeted, told the limit was reached, and closed), per-request read
// and write deadlines, a maximum frame size, graceful shutdown on
// context cancel (stop accepting, drain in-flight requests, then force
// close), and atomic counters served via the STATS request.
package server

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"fmt"
	"log"
	"math"
	"net"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/gpuckpt/gpuckpt/internal/antientropy"
	"github.com/gpuckpt/gpuckpt/internal/blockstore"
	"github.com/gpuckpt/gpuckpt/internal/checkpoint"
	"github.com/gpuckpt/gpuckpt/internal/lifecycle"
	"github.com/gpuckpt/gpuckpt/internal/wire"
)

// Config parameterizes a Server.
type Config struct {
	// Root is the directory holding one FileStore sub-directory per
	// lineage. Required.
	Root string
	// MaxConns bounds concurrently served connections (default 64).
	MaxConns int
	// MaxPayload bounds a request/response payload in bytes
	// (default wire.DefaultMaxPayload).
	MaxPayload uint32
	// ReadTimeout is the per-frame read deadline: how long a connected
	// client may stay idle between requests (default 30s).
	ReadTimeout time.Duration
	// WriteTimeout is the per-response write deadline (default 30s).
	WriteTimeout time.Duration
	// DrainTimeout bounds how long shutdown waits for in-flight
	// requests before force-closing connections (default 5s).
	DrainTimeout time.Duration
	// MaxLineagePending bounds how many requests may queue on one
	// lineage's lock before further arrivals are shed with StatusBusy
	// instead of piling onto the mutex (default 32; <0 disables
	// shedding).
	MaxLineagePending int
	// RetryAfterHint is the backoff hint attached to every StatusBusy
	// response — how long a shed client should wait before retrying
	// (default 100ms).
	RetryAfterHint time.Duration
	// Retention is the default lifecycle policy of every lineage
	// ("keep-all", "keep-last=N", "keep-every=K"; default keep-all).
	// Clients can override it per lineage with a POLICY request.
	Retention string
	// CompactInterval enables the background compaction worker: every
	// interval, each lineage is compacted to its retention policy's
	// target. 0 (the default) disables background compaction; COMPACT
	// requests still work.
	CompactInterval time.Duration
	// SubscriberQueue bounds the per-subscriber event queue of the v5
	// tail-stream hub (default 64). A subscriber that falls further
	// behind than this many appends beyond its store backlog is shed
	// with a lag barrier and resumes via its cursor.
	SubscriberQueue int
	// Protocol pins the wire version this server advertises in its
	// hello (0 = wire.Version). The effective version of a connection
	// is min(advertised, client's); pinning 3 exercises the client's
	// v3 request/response fallback against a current build.
	Protocol uint8
	// Peers lists replica addresses (host:port) this server runs
	// anti-entropy reconciliation against: every interval, each open
	// lineage's digest is compared with each peer's and local damage
	// is healed by pulling verified diffs (wire v6 TDigest). Empty
	// disables the reconciler.
	Peers []string
	// AntiEntropyInterval is the reconciliation cadence per peer
	// (default 5s). An unreachable peer is re-probed on a jittered
	// exponential backoff instead and flagged degraded in STATS.
	AntiEntropyInterval time.Duration
	// PeerDialer overrides the reconciler's transport dial (default
	// TCP); the chaos suite injects fault-wrapped connections here.
	PeerDialer antientropy.Dialer
	// Logf sinks server logs (default log.Printf; use a no-op in
	// tests).
	Logf func(format string, args ...any)
}

func (c *Config) fill() {
	if c.MaxConns <= 0 {
		c.MaxConns = 64
	}
	if c.MaxPayload == 0 {
		c.MaxPayload = wire.DefaultMaxPayload
	}
	if c.ReadTimeout <= 0 {
		c.ReadTimeout = 30 * time.Second
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = 30 * time.Second
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 5 * time.Second
	}
	if c.MaxLineagePending == 0 {
		c.MaxLineagePending = 32
	}
	if c.RetryAfterHint <= 0 {
		c.RetryAfterHint = 100 * time.Millisecond
	}
	if c.Retention == "" {
		c.Retention = "keep-all"
	}
	if c.SubscriberQueue <= 0 {
		c.SubscriberQueue = 64
	}
	if c.Protocol == 0 {
		c.Protocol = wire.Version
	}
	if c.AntiEntropyInterval <= 0 {
		c.AntiEntropyInterval = 5 * time.Second
	}
	if c.Logf == nil {
		c.Logf = log.Printf
	}
}

// lineage is one named checkpoint lineage: a FileStore plus the mutex
// that serializes its contiguous appends and its compactions. Holding
// mu across a whole compaction is what makes background GC safe
// against concurrent Push/Pull: a pull either sees the pre-transaction
// files or the post-commit state, never a half-replaced suffix.
type lineage struct {
	name  string
	mu    sync.Mutex
	store *checkpoint.FileStore
	//ckptlint:guardedby mu
	mgr *lifecycle.Manager
	// pending counts requests queued on (or holding) mu; arrivals
	// beyond Config.MaxLineagePending are shed with StatusBusy.
	pending atomic.Int64 //ckptlint:atomic
}

// acquire takes ln.mu unless the lineage queue is saturated, in which
// case it sheds the request with wire.ErrBusy — the caller turns that
// into a StatusBusy response with a retry-after hint rather than an
// error, and the client backs off. limit<0 disables shedding.
func (ln *lineage) acquire(limit int) (release func(), err error) {
	n := ln.pending.Add(1)
	if limit >= 0 && n > int64(limit) {
		ln.pending.Add(-1)
		return nil, fmt.Errorf("server: lineage %q queue saturated (%d pending): %w",
			ln.name, n-1, wire.ErrBusy)
	}
	ln.mu.Lock()
	return func() {
		ln.mu.Unlock()
		ln.pending.Add(-1)
	}, nil
}

// Server hosts checkpoint lineages over the wire protocol.
type Server struct {
	cfg Config

	mu sync.Mutex
	//ckptlint:guardedby mu
	byName map[string]uint32
	//ckptlint:guardedby mu
	lineages []*lineage

	// retention is the parsed default policy for new lineages.
	retention lifecycle.Policy

	// blocks is the root-wide content-addressed block store
	// (<Root>/_blocks) every lineage's FileStore interns into: the
	// subsystem that makes de-duplication cross lineage and tenant
	// boundaries. Opened by New, closed by Close.
	blocks *blockstore.Store

	// Atomic counters, served via TStats.
	requests       atomic.Uint64 //ckptlint:atomic
	bytesIn        atomic.Uint64 //ckptlint:atomic
	bytesOut       atomic.Uint64 //ckptlint:atomic
	activeConns    atomic.Uint64 //ckptlint:atomic
	conns          atomic.Uint64 //ckptlint:atomic
	compactions    atomic.Uint64 //ckptlint:atomic
	compactedDiffs atomic.Uint64 //ckptlint:atomic
	reclaimedBytes atomic.Uint64 //ckptlint:atomic
	busyRejects    atomic.Uint64 //ckptlint:atomic
	streamPushes   atomic.Uint64 //ckptlint:atomic
	subscribes     atomic.Uint64 //ckptlint:atomic
	tailFrames     atomic.Uint64 //ckptlint:atomic
	subSheds       atomic.Uint64 //ckptlint:atomic
	foldBarriers   atomic.Uint64 //ckptlint:atomic

	// Anti-entropy counters (v6 stats trailer). degraded is a gauge:
	// the number of peers currently unreachable.
	digestRounds    atomic.Uint64 //ckptlint:atomic
	spansHealed     atomic.Uint64 //ckptlint:atomic
	bytesRefetched  atomic.Uint64 //ckptlint:atomic
	healQuarantines atomic.Uint64 //ckptlint:atomic
	degraded        atomic.Uint64 //ckptlint:atomic

	// hub fans appended diffs out to v5 subscribers.
	hub *hub

	// conn tracking for forced shutdown
	connMu sync.Mutex
	//ckptlint:guardedby connMu
	openConns map[net.Conn]struct{}
}

// New creates a Server over cfg.Root, reopening any lineages already
// on disk (each sub-directory of Root is a lineage).
func New(cfg Config) (*Server, error) {
	cfg.fill()
	if cfg.Root == "" {
		return nil, errors.New("server: Root directory is required")
	}
	if err := os.MkdirAll(cfg.Root, 0o755); err != nil {
		return nil, fmt.Errorf("server: creating root: %w", err)
	}
	retention, err := lifecycle.ParsePolicy(cfg.Retention)
	if err != nil {
		return nil, fmt.Errorf("server: %w", err)
	}
	if cfg.Protocol < wire.MinVersion || cfg.Protocol > wire.Version {
		return nil, fmt.Errorf("server: cannot advertise protocol %d (this build speaks %d..%d)",
			cfg.Protocol, wire.MinVersion, wire.Version)
	}
	s := &Server{
		cfg:       cfg,
		retention: retention,
		byName:    make(map[string]uint32),
		openConns: make(map[net.Conn]struct{}),
		hub:       newHub(),
	}
	bs, err := blockstore.Open(filepath.Join(cfg.Root, blockstore.DirName), blockstore.Options{})
	if err != nil {
		return nil, fmt.Errorf("server: opening block store: %w", err)
	}
	s.blocks = bs
	entries, err := os.ReadDir(cfg.Root)
	if err != nil {
		bs.Close()
		return nil, fmt.Errorf("server: reading root: %w", err)
	}
	for _, e := range entries {
		// The block store lives beside the lineages; its reserved name
		// (leading underscore) keeps it out of the lineage namespace.
		if !e.IsDir() || strings.HasPrefix(e.Name(), "_") {
			continue
		}
		if _, _, _, err := s.open(e.Name()); err != nil {
			bs.Close()
			return nil, fmt.Errorf("server: reopening lineage %s: %w", e.Name(), err)
		}
	}
	return s, nil
}

// Close releases the shared block store. Call it once the server is no
// longer serving (Serve has returned).
func (s *Server) Close() error {
	return s.blocks.Close()
}

// validName rejects lineage names that would escape the root or break
// the on-disk layout.
func validName(name string) error {
	if name == "" || len(name) > 255 {
		return fmt.Errorf("server: invalid lineage name length %d", len(name))
	}
	if strings.ContainsAny(name, "/\\\x00") || name == "." || name == ".." {
		return fmt.Errorf("server: invalid lineage name %q", name)
	}
	if strings.HasPrefix(name, "_") {
		// Reserved for server-side directories (the _blocks store).
		return fmt.Errorf("server: lineage name %q is reserved", name)
	}
	return nil
}

// open resolves a lineage name to its handle, creating the backing
// store (and its lifecycle manager) on first use, and returns the
// current lineage length and baseline.
func (s *Server) open(name string) (uint32, int, int, error) {
	if err := validName(name); err != nil {
		return 0, 0, 0, err
	}
	s.mu.Lock()
	h, ok := s.byName[name]
	if !ok {
		store, err := checkpoint.NewFileStoreWith(filepath.Join(s.cfg.Root, name), s.blocks)
		if err != nil {
			s.mu.Unlock()
			return 0, 0, 0, err
		}
		// The OnFold hook captures the lineage pointer created a few
		// lines below; by the time any compaction can run, newLn has
		// long been published (under s.mu, then ln.mu).
		var newLn *lineage
		mgr, err := lifecycle.New(store, s.retention, lifecycle.Options{
			OnFold: func(oldBase, newBase int) {
				if newLn != nil {
					s.foldBarrier(newLn, newBase)
				}
			},
		})
		if err != nil {
			s.mu.Unlock()
			return 0, 0, 0, err
		}
		if uint64(len(s.lineages)) >= math.MaxUint32 {
			s.mu.Unlock()
			return 0, 0, 0, errors.New("server: lineage handle space exhausted")
		}
		h = uint32(len(s.lineages))
		s.byName[name] = h
		newLn = &lineage{name: name, store: store, mgr: mgr}
		s.lineages = append(s.lineages, newLn)
	}
	ln := s.lineages[h]
	s.mu.Unlock()
	n, err := ln.store.Len()
	if err != nil {
		return 0, 0, 0, err
	}
	return h, n, ln.store.Base(), nil
}

// errUnknownHandle marks a request naming a handle this server never
// issued — a pooled client replaying against a restarted server. v4
// connections get it back as StatusUnknownHandle so the client prunes
// its cache and re-resolves by name; v3 connections see a plain error.
var errUnknownHandle = errors.New("unknown lineage handle")

// get returns the lineage for a handle.
func (s *Server) get(h uint32) (*lineage, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if int(h) >= len(s.lineages) {
		return nil, fmt.Errorf("server: %w %d", errUnknownHandle, h)
	}
	return s.lineages[h], nil
}

// snapshot lists all lineages for TList.
func (s *Server) snapshot() []*lineage {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*lineage, len(s.lineages))
	copy(out, s.lineages)
	return out
}

// StreamPushes reports how many TPushStream frames the server has
// served (successful or not). It is a server-side observability
// counter, deliberately not part of the wire.Stats payload: that
// layout is version-frozen and shared with v3 peers.
func (s *Server) StreamPushes() uint64 { return s.streamPushes.Load() }

// Subscribes reports accepted v5 subscriptions; TailFrames the TTail
// frames pushed; SubscriberSheds subscribers shed for lag (bounded
// queue overflow); FoldBarriers subscribers shed because a compaction
// fold moved their lineage's baseline. Like StreamPushes these are
// server-side counters, not part of the version-frozen wire.Stats
// payload.
func (s *Server) Subscribes() uint64      { return s.subscribes.Load() }
func (s *Server) TailFrames() uint64      { return s.tailFrames.Load() }
func (s *Server) SubscriberSheds() uint64 { return s.subSheds.Load() }
func (s *Server) FoldBarriers() uint64    { return s.foldBarriers.Load() }

// Stats returns the current counters. The Quarantined gauge counts
// diff files sitting in quarantine across every open lineage — the
// operator's rot alarm; it re-lists the store directories on every
// call, so a STATS round trip always reports current holes, not a
// cached impression of health.
func (s *Server) Stats() wire.Stats {
	s.mu.Lock()
	nLineages := len(s.lineages)
	s.mu.Unlock()
	var quarantined uint64
	for _, ln := range s.snapshot() {
		if names, err := ln.store.Quarantined(); err == nil {
			quarantined += uint64(len(names))
		}
	}
	bst := s.blocks.Stats()
	return wire.Stats{
		Requests:        s.requests.Load(),
		BytesIn:         s.bytesIn.Load(),
		BytesOut:        s.bytesOut.Load(),
		ActiveConns:     s.activeConns.Load(),
		Conns:           s.conns.Load(),
		Lineages:        uint64(nLineages),
		Compactions:     s.compactions.Load(),
		CompactedDiffs:  s.compactedDiffs.Load(),
		ReclaimedBytes:  s.reclaimedBytes.Load(),
		BusyRejects:     s.busyRejects.Load(),
		BlocksInterned:  bst.Interned,
		BlockDedupHits:  bst.DedupHits,
		BlockBytesSaved: bst.SavedBytes,
		BlockGCBlocks:   bst.GCBlocks,
		BlockGCBytes:    bst.GCBytes,
		Quarantined:     quarantined,
		DigestRounds:    s.digestRounds.Load(),
		SpansHealed:     s.spansHealed.Load(),
		BytesRefetched:  s.bytesRefetched.Load(),
		HealQuarantines: s.healQuarantines.Load(),
		Degraded:        s.degraded.Load(),
	}
}

// Serve accepts connections on ln until ctx is cancelled, then drains
// in-flight requests (up to DrainTimeout) and returns. The listener is
// closed on return.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	var wg sync.WaitGroup

	// stop fires on every exit path — graceful cancellation and
	// terminal accept errors alike — so the listener closer and the
	// compaction worker always join before Serve returns. The
	// compaction loop in particular shares the block store with
	// whoever calls Close next; it must not outlive Serve.
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		select {
		case <-ctx.Done():
		case <-stop:
		}
		ln.Close()
	}()

	if s.cfg.CompactInterval > 0 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.compactLoop(ctx, stop)
		}()
	}

	// One reconciler worker per peer, joined through the same
	// WaitGroup as the compaction loop: anti-entropy mutates lineage
	// stores (under their locks), so it must not outlive Serve either.
	for i, addr := range s.cfg.Peers {
		wg.Add(1)
		go func(addr string, seed int64) {
			defer wg.Done()
			s.antiEntropyLoop(ctx, stop, addr, seed)
		}(addr, int64(i)+1)
	}

	var retErr error
	for {
		conn, err := ln.Accept()
		if err != nil {
			if ctx.Err() != nil {
				break // graceful shutdown
			}
			// Transient accept failures (timeouts, resource pressure,
			// one aborted connection) keep the loop alive; terminal ones
			// (listener closed underneath us) end Serve — through the
			// same drain as a graceful shutdown.
			if wire.Transient(err) {
				s.cfg.Logf("server: accept (retrying): %v", err)
				continue
			}
			retErr = fmt.Errorf("server: accept: %w", err)
			break
		}
		s.conns.Add(1)
		if int(s.activeConns.Add(1)) > s.cfg.MaxConns {
			s.activeConns.Add(^uint64(0))
			wg.Add(1)
			go func() {
				defer wg.Done()
				s.rejectConn(conn)
			}()
			continue
		}
		s.trackConn(conn, true)
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer s.activeConns.Add(^uint64(0))
			defer s.trackConn(conn, false)
			s.handleConn(ctx, stop, conn)
		}()
	}

	// Stop the background workers, then drain: give in-flight requests
	// DrainTimeout, then force-close.
	close(stop)
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(s.cfg.DrainTimeout):
		s.connMu.Lock()
		for c := range s.openConns {
			c.Close()
		}
		s.connMu.Unlock()
		<-done
	}
	return retErr
}

func (s *Server) trackConn(c net.Conn, add bool) {
	s.connMu.Lock()
	if add {
		s.openConns[c] = struct{}{}
	} else {
		delete(s.openConns, c)
	}
	s.connMu.Unlock()
}

// rejectConn greets an over-limit client and sheds it with StatusBusy
// plus a retry-after hint, so it backs off and reconnects instead of
// treating the full server as a hard failure (or seeing a bare EOF).
func (s *Server) rejectConn(conn net.Conn) {
	defer conn.Close()
	s.busyRejects.Add(1)
	conn.SetDeadline(time.Now().Add(s.cfg.WriteTimeout))
	if _, err := wire.ReadHello(conn); err != nil {
		return
	}
	s.bytesIn.Add(wire.HelloSize)
	if err := wire.WriteHelloVersion(conn, s.cfg.Protocol); err != nil {
		return
	}
	s.bytesOut.Add(wire.HelloSize)
	f := &wire.Frame{Type: wire.TErr, Status: wire.StatusBusy,
		Payload: wire.EncodeRetryAfter(s.cfg.RetryAfterHint)}
	if wire.WriteFrame(conn, f) == nil {
		s.bytesOut.Add(uint64(f.WireSize()))
	}
}

// connBufSize sizes the per-connection bufio reader and writer. Large
// enough that a window of small stream acks coalesces into one
// segment; payloads bigger than this stream through it without extra
// copies beyond bufio's own.
const connBufSize = 64 << 10

// handleConn runs the request loop of one connection. stop fires when
// Serve begins draining; subscriptions use it to end their tail
// streams with a shutdown barrier instead of waiting out the drain.
func (s *Server) handleConn(ctx context.Context, stop <-chan struct{}, conn net.Conn) {
	defer conn.Close()
	caddr := conn.RemoteAddr().String()

	// Handshake under a deadline: read the client's highest version,
	// answer with ours, settle on the minimum.
	conn.SetDeadline(time.Now().Add(s.cfg.ReadTimeout))
	theirs, err := wire.ReadHello(conn)
	if err != nil {
		s.cfg.Logf("server: %s: handshake: %v", caddr, err)
		return
	}
	s.bytesIn.Add(wire.HelloSize)
	if err := wire.WriteHelloVersion(conn, s.cfg.Protocol); err != nil {
		return
	}
	s.bytesOut.Add(wire.HelloSize)
	if theirs < wire.MinVersion {
		s.cfg.Logf("server: %s: handshake: peer protocol %d below supported floor %d",
			caddr, theirs, wire.MinVersion)
		return
	}
	protocol := min(theirs, s.cfg.Protocol)

	// The request loop is sequential, but reads and writes are
	// buffered so a pipelined v4 client gets its acks batched: while
	// the next request is already buffered, responses pile into bw;
	// the flush happens only when the loop is about to block on the
	// socket, so a request/response client still sees every response
	// before the server waits for its next request.
	//
	// TPushStream frames additionally group-commit: contiguous frames
	// that arrived back-to-back are staged into batch and appended
	// with one store durability point (FileStore.AppendBatch), their
	// acks written together. The batch only ever holds frames that
	// were ALREADY buffered — the loop never waits for more input
	// while acks are owed, so a client blocked on its window always
	// drains: as soon as the read side would block, the batch commits
	// and every pending ack is flushed.
	br := bufio.NewReaderSize(conn, connBufSize)
	bw := bufio.NewWriterSize(conn, connBufSize)
	var req wire.Frame
	var scratch []byte
	var batch streamBatch
	for ctx.Err() == nil {
		if br.Buffered() == 0 {
			if err := s.commitStream(&batch, bw, conn); err != nil {
				s.cfg.Logf("server: %s: stream commit: %v", caddr, err)
				return
			}
			conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
			if err := bw.Flush(); err != nil {
				s.cfg.Logf("server: %s: flush: %v", caddr, err)
				return
			}
		}
		conn.SetReadDeadline(time.Now().Add(s.cfg.ReadTimeout))
		if err := wire.ReadFrameInto(br, s.cfg.MaxPayload, &req, &scratch); err != nil {
			// A clean disconnect (EOF between frames, or our own
			// shutdown closing the socket) is normal teardown; anything
			// else — torn frames, deadline expiry — is worth a log line.
			if !wire.IsClean(err) && ctx.Err() == nil {
				s.cfg.Logf("server: %s: read: %v", caddr, err)
			}
			return
		}
		s.requests.Add(1)
		s.bytesIn.Add(uint64(req.WireSize()))

		if req.Type == wire.TPushStream && protocol >= 4 {
			if err := s.serveStream(&batch, &req, bw, conn); err != nil {
				s.cfg.Logf("server: %s: stream: %v", caddr, err)
				return
			}
			continue
		}
		if req.Type == wire.TSubscribe && protocol >= 5 {
			// Settle staged stream frames first, as for any
			// non-stream request.
			if err := s.commitStream(&batch, bw, conn); err != nil {
				s.cfg.Logf("server: %s: stream commit: %v", caddr, err)
				return
			}
			if !s.serveSubscribe(ctx, stop, conn, br, bw, &req) {
				return
			}
			continue
		}
		// A non-stream request inside a stream burst: settle the
		// staged frames first so responses never jump their pushes.
		if err := s.commitStream(&batch, bw, conn); err != nil {
			s.cfg.Logf("server: %s: stream commit: %v", caddr, err)
			return
		}
		resp := s.dispatch(&req, protocol)
		conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
		if err := wire.WriteFrame(bw, resp); err != nil {
			s.cfg.Logf("server: %s: write: %v", caddr, err)
			return
		}
		s.bytesOut.Add(uint64(resp.WireSize()))
	}
	s.commitStream(&batch, bw, conn)
	conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
	bw.Flush()
}

// compactLoop periodically applies every lineage's retention policy —
// the background GC of the lifecycle subsystem. It shares the
// per-lineage mutex with the request path, so it is safe against
// concurrent Push/Pull.
func (s *Server) compactLoop(ctx context.Context, stop <-chan struct{}) {
	tick := time.NewTicker(s.cfg.CompactInterval)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-stop:
			return
		case <-tick.C:
			for _, ln := range s.snapshot() {
				s.compactLineage(ln)
			}
			// Compactions released block references; fold the journal
			// into a fresh snapshot and reclaim unreferenced payloads.
			if _, err := s.blocks.GC(); err != nil {
				s.cfg.Logf("server: block store GC: %v", err)
			}
		}
	}
}

// antiEntropyLoop is one peer's reconciler worker: every interval it
// runs a reconciliation round for every open lineage against addr,
// healing local damage by pulling verified diffs. An unreachable
// peer switches the loop onto a jittered exponential backoff and
// raises the Degraded gauge until contact resumes; a lineage whose
// heals keep failing is fail-stopped by its Reconciler and only
// reports its standing quarantine from then on.
func (s *Server) antiEntropyLoop(ctx context.Context, stop <-chan struct{}, addr string, seed int64) {
	peer, err := antientropy.NewWirePeer(addr, antientropy.PeerOptions{Dialer: s.cfg.PeerDialer})
	if err != nil {
		s.cfg.Logf("server: anti-entropy peer %s: %v", addr, err)
		return
	}
	defer peer.Close()
	// Reconcilers persist across rounds so the per-lineage fail-stop
	// budget and quarantine verdicts survive between sweeps. The map
	// is confined to this goroutine.
	recs := make(map[string]*antientropy.Reconciler)
	quarantined := make(map[string]bool)
	backoff := antientropy.NewBackoff(s.cfg.AntiEntropyInterval, 8*s.cfg.AntiEntropyInterval, seed)
	degraded := false
	setDegraded := func(d bool) {
		if d == degraded {
			return
		}
		degraded = d
		if d {
			s.degraded.Add(1)
		} else {
			s.degraded.Add(^uint64(0))
		}
	}
	defer setDegraded(false)
	for {
		delay := s.cfg.AntiEntropyInterval
		if s.reconcilePeer(peer, recs, quarantined) {
			setDegraded(false)
			backoff.Reset()
		} else {
			setDegraded(true)
			delay = backoff.Next()
		}
		timer := time.NewTimer(delay)
		select {
		case <-ctx.Done():
			timer.Stop()
			return
		case <-stop:
			timer.Stop()
			return
		case <-timer.C:
		}
	}
}

// reconcilePeer runs one reconciliation sweep of every open lineage
// against one peer and reports whether the peer was reachable.
func (s *Server) reconcilePeer(peer antientropy.Peer, recs map[string]*antientropy.Reconciler,
	quarantined map[string]bool) bool {
	reachable := true
	for _, ln := range s.snapshot() {
		rec, ok := recs[ln.name]
		if !ok {
			var err error
			ln := ln
			rec, err = antientropy.NewReconciler(antientropy.Config{
				Lineage: ln.name,
				Store:   ln.store,
				Peer:    peer,
				// Heals serialize with pushes and compactions through
				// the lineage queue; a saturated lineage sheds the heal
				// like any other request and the next round retries.
				Locked: func(fn func() error) error {
					release, err := ln.acquire(s.cfg.MaxLineagePending)
					if err != nil {
						return err
					}
					defer release()
					return fn()
				},
				Logf: s.cfg.Logf,
			})
			if err != nil {
				s.cfg.Logf("server: anti-entropy lineage %q: %v", ln.name, err)
				continue
			}
			recs[ln.name] = rec
		}
		res, err := rec.Round()
		s.digestRounds.Add(1)
		s.spansHealed.Add(uint64(res.Healed))
		s.bytesRefetched.Add(uint64(res.BytesPulled))
		switch {
		case err == nil:
		case errors.Is(err, antientropy.ErrQuarantined):
			if !quarantined[ln.name] {
				quarantined[ln.name] = true
				s.healQuarantines.Add(1)
				s.cfg.Logf("server: anti-entropy: %v", err)
			}
		case errors.Is(err, antientropy.ErrHealFailed):
			s.cfg.Logf("server: anti-entropy lineage %q vs %s: %v", ln.name, peer.Addr(), err)
		default:
			// Transport-level failure: the peer (or the local disk)
			// did not answer. Degrade this worker onto its backoff.
			s.cfg.Logf("server: anti-entropy peer %s unreachable: %v", peer.Addr(), err)
			reachable = false
		}
	}
	return reachable
}

// compactLineage runs one policy-driven compaction under the lineage
// lock and folds the outcome into the server counters.
func (s *Server) compactLineage(ln *lineage) (lifecycle.Stats, error) {
	ln.mu.Lock()
	st, err := ln.mgr.Compact()
	ln.mu.Unlock()
	if err != nil {
		s.cfg.Logf("server: compacting lineage %q: %v", ln.name, err)
		return st, err
	}
	s.accountCompaction(ln.name, st)
	return st, nil
}

// accountCompaction folds a committed compaction into the counters.
func (s *Server) accountCompaction(name string, st lifecycle.Stats) {
	if st.NewBase <= st.OldBase {
		return
	}
	s.compactions.Add(1)
	s.compactedDiffs.Add(uint64(st.PrunedDiffs))
	if st.FreedBytes > 0 {
		s.reclaimedBytes.Add(uint64(st.FreedBytes))
	}
	s.cfg.Logf("server: lineage %q compacted: baseline %d -> %d, %d diffs pruned, %d rewritten, %d bytes freed",
		name, st.OldBase, st.NewBase, st.PrunedDiffs, st.RewrittenDiffs, st.FreedBytes)
}

// dispatch serves one request and returns the response frame. Request
// failures come back as StatusErr (or StatusUnsupported for unknown
// request types, StatusUnknownHandle for stale handles on v4
// connections) responses on the same connection; only transport
// errors tear the connection down.
func (s *Server) dispatch(req *wire.Frame, protocol uint8) *wire.Frame {
	if req.Type == wire.TPushStream && protocol >= 4 {
		s.streamPushes.Add(1)
		return s.dispatchStream(req)
	}
	resp, err := s.serve(req, protocol)
	if err != nil {
		if errors.Is(err, wire.ErrBusy) {
			// Load shed: the request was NOT executed. The payload is a
			// retry-after hint the client honors as backoff.
			s.busyRejects.Add(1)
			return &wire.Frame{Type: req.Type, Status: wire.StatusBusy,
				Payload: wire.EncodeRetryAfter(s.cfg.RetryAfterHint)}
		}
		status := wire.StatusErr
		switch {
		case errors.Is(err, wire.ErrUnsupported):
			status = wire.StatusUnsupported
		case protocol >= 4 && errors.Is(err, errUnknownHandle):
			status = wire.StatusUnknownHandle
		}
		return &wire.Frame{Type: req.Type, Status: status, Payload: []byte(err.Error())}
	}
	resp.Type = req.Type
	resp.Status = wire.StatusOK
	return resp
}

// retryAfterMs clamps the configured busy backoff hint to the
// StreamAck millisecond field.
func (s *Server) retryAfterMs() uint32 {
	ms := s.cfg.RetryAfterHint.Milliseconds()
	if ms < 0 {
		ms = 0
	}
	if ms > math.MaxUint32 {
		ms = math.MaxUint32
	}
	return uint32(ms)
}

// streamBatch is one connection's staged run of contiguous
// TPushStream frames awaiting a group commit: decoded, validated
// diffs for a single lineage, starting at the lineage's current
// length. Frames are only staged when they arrived back-to-back on
// the socket; the batch commits (and acks) the moment the connection
// would otherwise block, so staging never delays an ack the client is
// waiting on.
type streamBatch struct {
	ln     *lineage
	handle uint32 // wire handle, echoed in the acks
	start  uint32 // checkpoint id of diffs[0]
	diffs  []*checkpoint.Diff
	bytes  int64
}

// Caps on a single group commit: a batch holds at most
// streamBatchFrames diffs or streamBatchBytes of decoded payload,
// whichever trips first, bounding both ack latency and the memory a
// fast pusher can pin on the server.
const (
	streamBatchFrames = 64
	streamBatchBytes  = 16 << 20
)

// serveStream handles one TPushStream frame on a v4 connection:
// frames that extend the connection's staged batch are buffered for
// the next group commit; everything else — replays, conflicts, stale
// handles, malformed payloads — takes the per-frame dispatchStream
// path so its ack carries the precise typed failure.
func (s *Server) serveStream(b *streamBatch, req *wire.Frame, bw *bufio.Writer, conn net.Conn) error {
	s.streamPushes.Add(1)
	switch s.tryStage(b, req) {
	case stageOK:
		if len(b.diffs) >= streamBatchFrames || b.bytes >= streamBatchBytes {
			return s.commitStream(b, bw, conn)
		}
		return nil
	case stageCommitFirst:
		if err := s.commitStream(b, bw, conn); err != nil {
			return err
		}
		if s.tryStage(b, req) == stageOK {
			return nil
		}
	}
	resp := s.dispatchStream(req)
	conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
	if err := wire.WriteFrame(bw, resp); err != nil {
		return fmt.Errorf("write: %w", err)
	}
	s.bytesOut.Add(uint64(resp.WireSize()))
	return nil
}

// tryStage outcomes: the frame was staged onto the batch, the open
// batch must commit before this frame can be reconsidered, or the
// frame needs the individual servePush path.
const (
	stageOK = iota
	stageCommitFirst
	stageSolo
)

// tryStage decodes and validates req and stages it if it contiguously
// extends the connection's batch (or starts a fresh one at the
// lineage's current length). Validation failures are NOT staged: the
// per-frame path reruns them to produce the typed error ack.
func (s *Server) tryStage(b *streamBatch, req *wire.Frame) int {
	ln, err := s.get(req.Lineage)
	if err != nil {
		return stageSolo
	}
	if len(b.diffs) > 0 && b.ln != ln {
		return stageCommitFirst
	}
	_, encoded, err := wire.DecodePush(req.Payload)
	if err != nil {
		return stageSolo
	}
	d, err := checkpoint.Decode(bytes.NewReader(encoded))
	if err != nil || d.CkptID != req.Ckpt {
		return stageSolo
	}
	var next uint32
	if len(b.diffs) > 0 {
		next = b.start + uint32(len(b.diffs))
	} else {
		n, err := ln.store.Len()
		if err != nil || n < 0 || int64(n) >= math.MaxUint32 {
			return stageSolo
		}
		next = uint32(n)
	}
	if req.Ckpt != next {
		if len(b.diffs) > 0 {
			// The id does not extend the staged run, but it may be
			// exactly right once the run has committed.
			return stageCommitFirst
		}
		return stageSolo // replay or conflict: answered per frame
	}
	if len(b.diffs) == 0 {
		b.ln, b.handle, b.start = ln, req.Lineage, next
	}
	b.diffs = append(b.diffs, d)
	b.bytes += d.TotalBytes()
	return stageOK
}

// commitStream appends the staged batch with one store durability
// point and writes one ack per staged frame. Append failures fail the
// batch's uncommitted tail with typed error acks — the committed
// prefix still acks OK — and the client's retry resumes from the
// length the server reports. The returned error is transport-only
// (ack write failure); store errors travel inside the acks.
func (s *Server) commitStream(b *streamBatch, bw *bufio.Writer, conn net.Conn) error {
	if len(b.diffs) == 0 {
		return nil
	}
	diffs, ln, handle, start := b.diffs, b.ln, b.handle, b.start
	b.diffs, b.ln, b.bytes = nil, nil, 0

	var appended int
	release, err := ln.acquire(s.cfg.MaxLineagePending)
	if err == nil {
		appended, err = ln.store.AppendBatch(diffs)
		if appended > 0 {
			// Still under the lineage lock: subscribers must see the
			// batch before any later append.
			s.publishBatch(ln, start, diffs[:appended])
		}
		release()
	}
	conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
	for i := range diffs {
		ckpt := start + uint32(i)
		var resp *wire.Frame
		if i < appended {
			resp = s.streamAckFrame(handle, ckpt, ckpt+1, nil)
		} else {
			resp = s.streamAckFrame(handle, ckpt, 0, err)
		}
		if werr := wire.WriteFrame(bw, resp); werr != nil {
			return fmt.Errorf("ack write: %w", werr)
		}
		s.bytesOut.Add(uint64(resp.WireSize()))
	}
	return nil
}

// streamAckFrame builds the StreamAck response frame for one stream
// push outcome, mapping err onto the v4 status byte exactly as
// dispatch does for request/response.
func (s *Server) streamAckFrame(handle, ckpt, newLen uint32, err error) *wire.Frame {
	ack := wire.StreamAck{Ckpt: ckpt, NewLen: newLen}
	status := wire.StatusOK
	if err != nil {
		ack.NewLen = 0
		switch {
		case errors.Is(err, wire.ErrBusy):
			s.busyRejects.Add(1)
			status = wire.StatusBusy
			ack.RetryAfterMs = s.retryAfterMs()
			ack.Msg = "server busy"
		case errors.Is(err, errUnknownHandle):
			status = wire.StatusUnknownHandle
			ack.Msg = err.Error()
		default:
			status = wire.StatusErr
			ack.Msg = err.Error()
		}
	}
	payload, perr := wire.AppendStreamAck(nil, &ack)
	if perr != nil { // error message beyond the format limit: truncate it
		ack.Msg = ack.Msg[:math.MaxUint16]
		payload, _ = wire.AppendStreamAck(nil, &ack)
	}
	return &wire.Frame{Type: wire.TPushStream, Status: status,
		Lineage: handle, Ckpt: ckpt, Payload: payload}
}

// dispatchStream serves one TPushStream frame individually — the slow
// path for replays, conflicts, and malformed frames that cannot join
// a group commit. Every outcome is answered with a StreamAck on the
// same connection: a failed frame must not tear the stream, because
// the client has a window of later frames already in flight behind
// it.
func (s *Server) dispatchStream(req *wire.Frame) *wire.Frame {
	newLen, err := s.servePush(req)
	return s.streamAckFrame(req.Lineage, req.Ckpt, newLen, err)
}

// servePush appends one pushed diff — the body shared by TPush and
// TPushStream — and returns the lineage length after the append.
func (s *Server) servePush(req *wire.Frame) (uint32, error) {
	ln, err := s.get(req.Lineage)
	if err != nil {
		return 0, err
	}
	// The push payload carries a CRC32C of the encoded diff: verify
	// the bytes survived the wire before anything else.
	crc, encoded, err := wire.DecodePush(req.Payload)
	if err != nil {
		return 0, fmt.Errorf("server: push lineage %q: %w", ln.name, err)
	}
	// Decode-validate before touching the store: a malformed diff
	// must never become a lineage file.
	d, err := checkpoint.Decode(bytes.NewReader(encoded))
	if err != nil {
		return 0, fmt.Errorf("server: push lineage %q: %w", ln.name, err)
	}
	if d.CkptID != req.Ckpt {
		return 0, fmt.Errorf("server: push frame ckpt %d but diff id %d", req.Ckpt, d.CkptID)
	}
	release, err := ln.acquire(s.cfg.MaxLineagePending)
	if err != nil {
		return 0, err
	}
	defer release()
	// Idempotent replay: if this id is already stored, a retried
	// push whose content hash matches the stored bytes is the same
	// write arriving twice (the client's response was lost) — answer
	// OK without re-appending. A mismatching hash is a genuine
	// conflict with the one-winner append guarantee.
	if n, _ := ln.store.Len(); int(req.Ckpt) < n && int(req.Ckpt) >= ln.store.Base() {
		stored, err := ln.store.DiffBytes(int(req.Ckpt))
		if err == nil && wire.Checksum(stored) == crc {
			if n < 0 || int64(n) > math.MaxUint32 {
				return 0, fmt.Errorf("server: lineage length %d does not fit the frame header", n)
			}
			return uint32(n), nil
		}
		return 0, fmt.Errorf("server: push %d conflicts with already-stored diff (lineage %q)",
			req.Ckpt, ln.name)
	}
	if err := ln.store.Append(d); err != nil {
		return 0, err
	}
	s.publishTail(ln, req.Ckpt, req.Payload)
	return req.Ckpt + 1, nil
}

func (s *Server) serve(req *wire.Frame, protocol uint8) (*wire.Frame, error) {
	switch req.Type {
	case wire.TOpen:
		h, n, base, err := s.open(string(req.Payload))
		if err != nil {
			return nil, err
		}
		if n < 0 || int64(n) > math.MaxUint32 {
			return nil, fmt.Errorf("server: lineage length %d does not fit the frame header", n)
		}
		return &wire.Frame{Lineage: h, Ckpt: uint32(n), Payload: wire.EncodeOpenInfo(uint32(base))}, nil

	case wire.TPush:
		newLen, err := s.servePush(req)
		if err != nil {
			return nil, err
		}
		return &wire.Frame{Lineage: req.Lineage, Ckpt: newLen}, nil

	case wire.TPull:
		ln, err := s.get(req.Lineage)
		if err != nil {
			return nil, err
		}
		release, err := ln.acquire(s.cfg.MaxLineagePending)
		if err != nil {
			return nil, err
		}
		b, err := ln.store.DiffBytes(int(req.Ckpt))
		release()
		if err != nil {
			return nil, fmt.Errorf("server: pull lineage %q: %w", ln.name, err)
		}
		return &wire.Frame{Lineage: req.Lineage, Ckpt: req.Ckpt, Payload: b}, nil

	case wire.TList:
		lineages := s.snapshot()
		infos := make([]wire.LineageInfo, 0, len(lineages))
		for _, ln := range lineages {
			ln.mu.Lock()
			n, err := ln.store.Len()
			base := ln.store.Base()
			var total int64
			if err == nil {
				total, err = ln.store.TotalBytes()
			}
			ln.mu.Unlock()
			if err != nil {
				return nil, fmt.Errorf("server: list lineage %q: %w", ln.name, err)
			}
			if n < 0 || int64(n) > math.MaxUint32 {
				return nil, fmt.Errorf("server: lineage %q length %d does not fit the list format", ln.name, n)
			}
			infos = append(infos, wire.LineageInfo{Name: ln.name, Len: uint32(n), Base: uint32(base), Bytes: uint64(total)})
		}
		payload, err := wire.EncodeList(infos)
		if err != nil {
			return nil, err
		}
		return &wire.Frame{Payload: payload}, nil

	case wire.TStats:
		st := s.Stats()
		return &wire.Frame{Payload: st.Encode()}, nil

	case wire.TCompact:
		ln, err := s.get(req.Lineage)
		if err != nil {
			return nil, err
		}
		var st lifecycle.Stats
		if req.Ckpt == wire.CompactAuto {
			if st, err = s.compactLineage(ln); err != nil {
				return nil, fmt.Errorf("server: compact lineage %q: %w", ln.name, err)
			}
		} else {
			ln.mu.Lock()
			st, err = ln.mgr.MaterializeTo(int(req.Ckpt))
			ln.mu.Unlock()
			if err != nil {
				return nil, fmt.Errorf("server: compact lineage %q: %w", ln.name, err)
			}
			s.accountCompaction(ln.name, st)
		}
		res := wire.CompactResult{
			OldBase:    uint32(st.OldBase),
			NewBase:    uint32(st.NewBase),
			Pruned:     uint32(st.PrunedDiffs),
			Rewritten:  uint32(st.RewrittenDiffs),
			FreedBytes: st.FreedBytes,
		}
		return &wire.Frame{Lineage: req.Lineage, Ckpt: res.NewBase, Payload: res.Encode()}, nil

	case wire.TPolicy:
		ln, err := s.get(req.Lineage)
		if err != nil {
			return nil, err
		}
		var policy lifecycle.Policy
		if len(req.Payload) > 0 {
			if policy, err = lifecycle.ParsePolicy(string(req.Payload)); err != nil {
				return nil, fmt.Errorf("server: lineage %q: %w", ln.name, err)
			}
		}
		ln.mu.Lock()
		if policy != nil {
			ln.mgr.SetPolicy(policy)
		}
		name := ln.mgr.PolicyName()
		base := ln.store.Base()
		ln.mu.Unlock()
		if base < 0 || int64(base) > math.MaxUint32 {
			return nil, fmt.Errorf("server: lineage %q baseline %d does not fit the frame header", ln.name, base)
		}
		return &wire.Frame{Lineage: req.Lineage, Ckpt: uint32(base), Payload: []byte(name)}, nil

	case wire.TDigest:
		// Gated on the negotiated version like TSubscribe: a v5
		// connection gets StatusUnsupported, and its reconciler
		// degrades to doing nothing against this server.
		if protocol < 6 {
			return nil, fmt.Errorf("server: digest requires protocol 6: %w", wire.ErrUnsupported)
		}
		ln, err := s.get(req.Lineage)
		if err != nil {
			return nil, err
		}
		q, err := wire.DecodeDigestReq(req.Payload)
		if err != nil {
			return nil, fmt.Errorf("server: digest lineage %q: %w", ln.name, err)
		}
		// Digest under the lineage lock: the span checksummed is one
		// consistent committed state, never a half-replaced compaction
		// suffix. Shed with StatusBusy when the queue is saturated,
		// like any other lineage request.
		release, err := ln.acquire(s.cfg.MaxLineagePending)
		if err != nil {
			return nil, err
		}
		resp, err := antientropy.BuildResp(ln.store, q)
		release()
		if err != nil {
			return nil, fmt.Errorf("server: digest lineage %q: %w", ln.name, err)
		}
		return &wire.Frame{Lineage: req.Lineage, Payload: wire.EncodeDigestResp(resp)}, nil

	default:
		return nil, fmt.Errorf("server: request type 0x%02x: %w", req.Type, wire.ErrUnsupported)
	}
}
