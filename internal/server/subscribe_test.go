package server

import (
	"bytes"
	"errors"
	"net"
	"testing"
	"time"

	"github.com/gpuckpt/gpuckpt/internal/wire"
)

// subscribeOn opens name on conn and issues a TSubscribe with cur,
// returning the handle and the raw response frame.
func subscribeOn(t *testing.T, conn net.Conn, name string, cur wire.Cursor) (uint32, *wire.Frame) {
	t.Helper()
	open := call(t, conn, &wire.Frame{Type: wire.TOpen, Payload: []byte(name)})
	if open.Status != wire.StatusOK {
		t.Fatalf("open: %+v", open)
	}
	resp := call(t, conn, &wire.Frame{Type: wire.TSubscribe, Lineage: open.Lineage,
		Payload: wire.EncodeSubscribe(cur)})
	return open.Lineage, resp
}

// readTail reads the next server-pushed frame off a subscribed
// connection and, for TTail, decodes and checks the carried diff.
func readTail(t *testing.T, conn net.Conn) *wire.Frame {
	t.Helper()
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	fr, err := wire.ReadFrame(conn, 0)
	if err != nil {
		t.Fatalf("reading tail stream: %v", err)
	}
	return fr
}

// TestSubscribeBacklogThenLive is the core v5 contract: an accepted
// subscription first replays the stored backlog past the cursor, then
// streams every subsequently pushed diff, in order, checksummed.
func TestSubscribeBacklogThenLive(t *testing.T) {
	srv, addr, stop := startServer(t, Config{Root: t.TempDir()})
	defer stop()

	pusher := testConn(t, addr)
	defer pusher.Close()
	open := call(t, pusher, &wire.Frame{Type: wire.TOpen, Payload: []byte("sub")})
	h := open.Lineage
	want := make([][]byte, 0, 3)
	for ck := 0; ck < 2; ck++ {
		enc := encodedDiff(t, ck, byte(0x10+ck))
		want = append(want, enc)
		if resp := call(t, pusher, &wire.Frame{Type: wire.TPush, Lineage: h, Ckpt: uint32(ck),
			Payload: wire.EncodePush(enc)}); resp.Status != wire.StatusOK {
			t.Fatalf("push %d: %+v", ck, resp)
		}
	}

	sub := testConn(t, addr)
	defer sub.Close()
	_, resp := subscribeOn(t, sub, "sub", wire.Cursor{})
	if resp.Type != wire.TSubscribe || resp.Status != wire.StatusOK {
		t.Fatalf("subscribe: %+v", resp)
	}
	ack, err := wire.DecodeSubscribeAck(resp.Payload)
	if err != nil || ack.Base != 0 || ack.Len != 2 {
		t.Fatalf("ack %+v (%v), want [0,2)", ack, err)
	}

	// A third diff pushed while the subscription is live.
	enc := encodedDiff(t, 2, 0x12)
	want = append(want, enc)
	if resp := call(t, pusher, &wire.Frame{Type: wire.TPush, Lineage: h, Ckpt: 2,
		Payload: wire.EncodePush(enc)}); resp.Status != wire.StatusOK {
		t.Fatalf("live push: %+v", resp)
	}

	for ck := 0; ck < 3; ck++ {
		fr := readTail(t, sub)
		if fr.Type != wire.TTail || fr.Ckpt != uint32(ck) {
			t.Fatalf("tail frame %d: type %#x ckpt %d", ck, fr.Type, fr.Ckpt)
		}
		crc, encoded, err := wire.DecodePush(fr.Payload)
		if err != nil {
			t.Fatal(err)
		}
		if crc != wire.Checksum(encoded) {
			t.Fatalf("tail frame %d checksum mismatch", ck)
		}
		if !bytes.Equal(encoded, want[ck]) {
			t.Fatalf("tail frame %d carries wrong bytes", ck)
		}
	}
	if srv.Subscribes() != 1 || srv.TailFrames() < 3 {
		t.Fatalf("counters: subscribes %d tailFrames %d", srv.Subscribes(), srv.TailFrames())
	}
}

// TestSubscribeStaleCursorKeepsConnection: a rejected cursor answers
// with a TResync RESPONSE and leaves the connection in request mode —
// the subscriber pulls the span and re-subscribes on the same socket.
func TestSubscribeStaleCursorKeepsConnection(t *testing.T) {
	_, addr, stop := startServer(t, Config{Root: t.TempDir()})
	defer stop()

	pusher := testConn(t, addr)
	defer pusher.Close()
	open := call(t, pusher, &wire.Frame{Type: wire.TOpen, Payload: []byte("stale")})
	enc := encodedDiff(t, 0, 0x77)
	call(t, pusher, &wire.Frame{Type: wire.TPush, Lineage: open.Lineage, Ckpt: 0,
		Payload: wire.EncodePush(enc)})

	sub := testConn(t, addr)
	defer sub.Close()
	// CRC does not match the stored diff 0: continuity is unprovable.
	h, resp := subscribeOn(t, sub, "stale", wire.Cursor{Base: 0, Next: 1, CRC: 0xDEAD})
	if resp.Type != wire.TResync || resp.Status != wire.StatusOK {
		t.Fatalf("stale cursor: %+v, want TResync response", resp)
	}
	info, err := wire.DecodeResync(resp.Payload)
	if err != nil || info.Reason != wire.ResyncFold || info.Base != 0 || info.Len != 1 {
		t.Fatalf("resync info %+v (%v)", info, err)
	}

	// Same connection still serves requests: pull the span...
	pull := call(t, sub, &wire.Frame{Type: wire.TPull, Lineage: h, Ckpt: 0})
	if pull.Status != wire.StatusOK || !bytes.Equal(pull.Payload, enc) {
		t.Fatalf("pull on kept connection: %+v", pull)
	}
	// ...and accepts the corrected cursor.
	resp = call(t, sub, &wire.Frame{Type: wire.TSubscribe, Lineage: h,
		Payload: wire.EncodeSubscribe(wire.Cursor{Base: 0, Next: 1, CRC: wire.Checksum(enc)})})
	if resp.Type != wire.TSubscribe || resp.Status != wire.StatusOK {
		t.Fatalf("re-subscribe: %+v", resp)
	}
}

// TestSubscribeRefusals: malformed cursors and unknown handles refuse
// without tearing the connection down.
func TestSubscribeRefusals(t *testing.T) {
	_, addr, stop := startServer(t, Config{Root: t.TempDir()})
	defer stop()
	conn := testConn(t, addr)
	defer conn.Close()

	resp := call(t, conn, &wire.Frame{Type: wire.TSubscribe, Lineage: 42,
		Payload: wire.EncodeSubscribe(wire.Cursor{})})
	if resp.Status != wire.StatusUnknownHandle {
		t.Fatalf("bogus handle: %+v", resp)
	}
	open := call(t, conn, &wire.Frame{Type: wire.TOpen, Payload: []byte("refuse")})
	resp = call(t, conn, &wire.Frame{Type: wire.TSubscribe, Lineage: open.Lineage,
		Payload: []byte{1, 2, 3}})
	if resp.Status != wire.StatusErr {
		t.Fatalf("truncated cursor: %+v", resp)
	}
	// The connection survived both refusals.
	if resp := call(t, conn, &wire.Frame{Type: wire.TList}); resp.Status != wire.StatusOK {
		t.Fatalf("list after refusals: %+v", resp)
	}
}

// TestSubscribeUnsupportedOnV4 is the down-level interop direction: a
// v5 client talking to a primary pinned at wire v4 gets the typed
// ErrUnsupported refusal it needs to fall back to poll-based tailing.
func TestSubscribeUnsupportedOnV4(t *testing.T) {
	_, addr, stop := startServer(t, Config{Root: t.TempDir(), Protocol: 4})
	defer stop()
	conn := testConn(t, addr)
	defer conn.Close()

	_, resp := subscribeOn(t, conn, "v4pin", wire.Cursor{})
	if resp.Status != wire.StatusUnsupported {
		t.Fatalf("subscribe on v4: %+v", resp)
	}
	if err := resp.Err(); !errors.Is(err, wire.ErrUnsupported) {
		t.Fatalf("refusal is not typed ErrUnsupported: %v", err)
	}
	// The session keeps working for v4 verbs.
	open := call(t, conn, &wire.Frame{Type: wire.TOpen, Payload: []byte("v4pin")})
	enc := encodedDiff(t, 0, 0x44)
	if resp := call(t, conn, &wire.Frame{Type: wire.TPush, Lineage: open.Lineage, Ckpt: 0,
		Payload: wire.EncodePush(enc)}); resp.Status != wire.StatusOK {
		t.Fatalf("push after refusal: %+v", resp)
	}
}

// TestV4ClientUnaffectedByV5Server is the up-level interop direction:
// a client that only speaks v4 negotiates down and sees identical
// push/pull behavior from a v5 server.
func TestV4ClientUnaffectedByV5Server(t *testing.T) {
	_, addr, stop := startServer(t, Config{Root: t.TempDir()})
	defer stop()
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(10 * time.Second))
	v, err := wire.HandshakeVersion(conn, 4)
	if err != nil {
		t.Fatal(err)
	}
	if v != 4 {
		t.Fatalf("negotiated %d, want 4", v)
	}
	open := call(t, conn, &wire.Frame{Type: wire.TOpen, Payload: []byte("old")})
	enc := encodedDiff(t, 0, 0x55)
	if resp := call(t, conn, &wire.Frame{Type: wire.TPush, Lineage: open.Lineage, Ckpt: 0,
		Payload: wire.EncodePush(enc)}); resp.Status != wire.StatusOK {
		t.Fatalf("v4 push: %+v", resp)
	}
	pull := call(t, conn, &wire.Frame{Type: wire.TPull, Lineage: open.Lineage, Ckpt: 0})
	if pull.Status != wire.StatusOK || !bytes.Equal(pull.Payload, enc) {
		t.Fatalf("v4 pull: %+v", pull)
	}
	// TSubscribe from a v4-negotiated session is refused, not served.
	resp := call(t, conn, &wire.Frame{Type: wire.TSubscribe, Lineage: open.Lineage,
		Payload: wire.EncodeSubscribe(wire.Cursor{})})
	if resp.Status != wire.StatusUnsupported {
		t.Fatalf("v4 session subscribe: %+v", resp)
	}
}

// TestHubShedSlowSubscriber drives the hub directly: a full queue
// sheds the subscriber with a lag verdict instead of blocking the
// publisher, and a fold sheds everyone with a fold verdict.
func TestHubShedSlowSubscriber(t *testing.T) {
	h := newHub()
	ln := &lineage{name: "x"}
	slow := h.register(ln, 1)
	fast := h.register(ln, 4)

	if shed := h.publish(ln, 0, []byte{1}, 0, 1); shed != 0 {
		t.Fatalf("first publish shed %d", shed)
	}
	// slow's queue (cap 1) is full; the next publish must shed it and
	// deliver to fast regardless.
	if shed := h.publish(ln, 1, []byte{2}, 0, 2); shed != 1 {
		t.Fatalf("overflow publish shed %d, want 1", shed)
	}
	select {
	case <-slow.stop:
	default:
		t.Fatal("slow subscriber not stopped")
	}
	reason, base, n := slow.verdict()
	if reason != wire.ResyncLag || base != 0 || n != 2 {
		t.Fatalf("verdict %d [%d,%d), want lag [0,2)", reason, base, n)
	}
	if got := len(fast.ch); got != 2 {
		t.Fatalf("fast subscriber holds %d events, want 2", got)
	}
	if h.count(ln) != 1 {
		t.Fatalf("count = %d after shed, want 1", h.count(ln))
	}

	if shed := h.fold(ln, 3, 5); shed != 1 {
		t.Fatalf("fold shed %d, want 1", shed)
	}
	reason, base, n = fast.verdict()
	if reason != wire.ResyncFold || base != 3 || n != 5 {
		t.Fatalf("fold verdict %d [%d,%d)", reason, base, n)
	}
	if h.count(ln) != 0 {
		t.Fatalf("count = %d after fold, want 0", h.count(ln))
	}
	h.unregister(ln, slow) // double-remove must be safe
}
