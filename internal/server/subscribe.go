// The v5 TSubscribe serving path: cursor validation, store-backlog
// replay, and the live tail loop fed by the hub.
//
// Protocol contract (DESIGN.md §15): a rejected cursor is answered
// with a TResync RESPONSE and the connection stays in request mode —
// the subscriber pulls the authoritative span over the same
// connection and re-subscribes. An accepted subscription consumes the
// connection: the server pushes TTail frames until the client closes,
// the server shuts down, or a barrier (fold, lag) ends the stream
// with a final TResync — after which the server closes the
// connection, so a mid-stream TResync is always terminal.

package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/binary"
	"fmt"
	"math"
	"net"
	"sync"
	"time"

	"github.com/gpuckpt/gpuckpt/internal/checkpoint"
	"github.com/gpuckpt/gpuckpt/internal/wire"
)

// serveSubscribe handles one TSubscribe request on a v5 connection.
// It returns true when the connection can keep serving requests (the
// subscription was refused with a typed response) and false when the
// subscription consumed the connection.
func (s *Server) serveSubscribe(ctx context.Context, stop <-chan struct{}, conn net.Conn,
	br *bufio.Reader, bw *bufio.Writer, req *wire.Frame) bool {
	caddr := conn.RemoteAddr().String()
	refuse := func(status uint8, payload []byte) bool {
		resp := &wire.Frame{Type: wire.TSubscribe, Status: status, Lineage: req.Lineage, Payload: payload}
		conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
		if err := wire.WriteFrame(bw, resp); err != nil {
			s.cfg.Logf("server: %s: subscribe refuse: %v", caddr, err)
			return false
		}
		s.bytesOut.Add(uint64(resp.WireSize()))
		return true
	}

	cur, err := wire.DecodeSubscribe(req.Payload)
	if err != nil {
		return refuse(wire.StatusErr, []byte(err.Error()))
	}
	ln, err := s.get(req.Lineage)
	if err != nil {
		return refuse(wire.StatusUnknownHandle, []byte(err.Error()))
	}
	release, err := ln.acquire(s.cfg.MaxLineagePending)
	if err != nil {
		s.busyRejects.Add(1)
		return refuse(wire.StatusBusy, wire.EncodeRetryAfter(s.cfg.RetryAfterHint))
	}
	n, err := ln.store.Len()
	if err != nil || int64(n) > math.MaxUint32 {
		release()
		return refuse(wire.StatusErr, []byte(fmt.Sprintf("lineage length unusable: %v", err)))
	}
	base := ln.store.Base()
	if !s.cursorContinuable(ln, cur, base, n) {
		release()
		// The cursor cannot be resumed: answer with a TResync response
		// carrying the authoritative span. The connection stays in
		// request mode so the subscriber can pull it right here.
		resp := &wire.Frame{Type: wire.TResync, Status: wire.StatusOK, Lineage: req.Lineage,
			Payload: wire.EncodeResync(wire.Resync{Reason: wire.ResyncFold, Base: uint32(base), Len: uint32(n)})}
		conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
		if err := wire.WriteFrame(bw, resp); err != nil {
			s.cfg.Logf("server: %s: subscribe resync: %v", caddr, err)
			return false
		}
		s.bytesOut.Add(uint64(resp.WireSize()))
		return true
	}
	// Registration happens under the lineage lock: every append after
	// this point reaches sub.ch, every earlier diff is in the store —
	// the backlog [cur.Next, n) plus the queue is gap-free.
	sub := s.hub.register(ln, s.cfg.SubscriberQueue)
	release()
	s.subscribes.Add(1)

	ack := &wire.Frame{Type: wire.TSubscribe, Status: wire.StatusOK, Lineage: req.Lineage,
		Ckpt: uint32(n), Payload: wire.EncodeSubscribeAck(wire.SubscribeAck{Base: uint32(base), Len: uint32(n)})}
	conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
	werr := wire.WriteFrame(bw, ack)
	if werr == nil {
		werr = bw.Flush()
	}
	if werr != nil {
		s.cfg.Logf("server: %s: subscribe ack: %v", caddr, werr)
		s.hub.unregister(ln, sub)
		return false
	}
	s.bytesOut.Add(uint64(ack.WireSize()))
	s.runSubscription(ctx, stop, conn, br, sub, ln, req.Lineage, cur.Next, uint32(n))
	return false
}

// cursorContinuable decides whether a resume cursor can continue the
// stored lineage without a re-pull: same baseline, next within
// [base, n], and — when the subscriber already holds diffs — a CRC
// match between its last diff and the server's stored copy. Called
// with the lineage lock held.
func (s *Server) cursorContinuable(ln *lineage, cur wire.Cursor, base, n int) bool {
	if cur.Base != uint32(base) || int64(cur.Next) > int64(n) {
		return false
	}
	if cur.Next == cur.Base {
		return true // subscriber holds nothing past the baseline
	}
	stored, err := ln.store.DiffBytes(int(cur.Next) - 1)
	return err == nil && wire.Checksum(stored) == cur.CRC
}

// runSubscription owns the connection from ack to teardown: replay
// the store backlog [next, n), then relay live hub events. Frames
// are written straight to the socket (bypassing bw, which was flushed
// before this call) with the v4 zero-copy staging: header — plus CRC
// prefix for backlog frames — staged into a reused buffer, payload
// bytes handed to writev untouched.
func (s *Server) runSubscription(ctx context.Context, stop <-chan struct{}, conn net.Conn,
	br *bufio.Reader, sub *tailSub, ln *lineage, handle, next, n uint32) {
	caddr := conn.RemoteAddr().String()
	defer s.hub.unregister(ln, sub)

	// Watchdog: a subscribed client sends nothing more, so any byte —
	// or EOF, or a reset — means the subscription is over. The read
	// goes through br (the client's half of the subscribe exchange is
	// fully consumed, but a pipelined byte could already sit there).
	// The deferred conn.Close unblocks the read; the WaitGroup joins
	// the goroutine before return (ckptlint goroleak).
	conn.SetReadDeadline(time.Time{})
	readerGone := make(chan struct{})
	var wg sync.WaitGroup
	defer wg.Wait()
	defer conn.Close()
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(readerGone)
		_, _ = br.ReadByte()
	}()

	var stage []byte
	var vec net.Buffers
	// writeVec stages hdr (and any prefix already appended to stage)
	// plus parts into one writev.
	writeVec := func(payloadLen int, parts ...[]byte) error {
		vec = vec[:0]
		vec = append(vec, stage)
		vec = append(vec, parts...)
		conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
		if err := wire.WriteFrameVec(conn, &vec); err != nil {
			return err
		}
		s.bytesOut.Add(uint64(wire.HeaderSize + payloadLen))
		return nil
	}
	sendResync := func(reason uint8, base, length uint32) {
		var err error
		stage, err = wire.AppendFrameHeader(stage[:0], wire.TResync, wire.StatusOK, handle, 0, wire.ResyncSize)
		if err != nil {
			return
		}
		stage = wire.AppendResync(stage, wire.Resync{Reason: reason, Base: base, Len: length})
		if err := writeVec(wire.ResyncSize); err != nil && !wire.IsClean(err) {
			s.cfg.Logf("server: %s: resync write: %v", caddr, err)
		}
	}
	// sendResyncNow reads the current span from the store. The
	// lineage lock is NOT held here, so (base, len) may straddle a
	// concurrent fold — harmless: the reported span only seeds the
	// subscriber's next subscribe attempt, which revalidates.
	sendResyncNow := func(reason uint8) {
		length, err := ln.store.Len()
		if err != nil {
			return
		}
		sendResync(reason, uint32(ln.store.Base()), uint32(length))
	}

	// Backlog: serve [next, n) from the store without the lineage
	// lock — DiffBytes is internally consistent, and if a concurrent
	// fold prunes a diff out from under us the read error is exactly
	// the fold barrier the subscriber would have received anyway.
	for next < n {
		select {
		case <-sub.stop:
			reason, base, length := sub.verdict()
			sendResync(reason, base, length)
			return
		case <-readerGone:
			return
		case <-stop:
			sendResyncNow(wire.ResyncShutdown)
			return
		case <-ctx.Done():
			sendResyncNow(wire.ResyncShutdown)
			return
		default:
		}
		encoded, err := ln.store.DiffBytes(int(next))
		if err != nil {
			sendResyncNow(wire.ResyncFold)
			return
		}
		payloadLen := wire.PushChecksumSize + len(encoded)
		stage, err = wire.AppendFrameHeader(stage[:0], wire.TTail, wire.StatusOK, handle, next, payloadLen)
		if err != nil {
			s.cfg.Logf("server: %s: tail frame: %v", caddr, err)
			return
		}
		stage = binary.BigEndian.AppendUint32(stage, wire.Checksum(encoded))
		if err := writeVec(payloadLen, encoded); err != nil {
			if !wire.IsClean(err) {
				s.cfg.Logf("server: %s: tail write: %v", caddr, err)
			}
			return
		}
		s.tailFrames.Add(1)
		next++
	}

	// Live loop: relay hub events in order. A gap means the bounded
	// queue dropped events after the registration snapshot — the
	// cursor is still valid, so it is a lag barrier, not a fold.
	for {
		select {
		case ev := <-sub.ch:
			if ev.ckpt < next {
				continue // already served from the backlog
			}
			if ev.ckpt != next {
				sendResyncNow(wire.ResyncLag)
				return
			}
			var err error
			stage, err = wire.AppendFrameHeader(stage[:0], wire.TTail, wire.StatusOK, handle, ev.ckpt, len(ev.payload))
			if err != nil {
				s.cfg.Logf("server: %s: tail frame: %v", caddr, err)
				return
			}
			if err := writeVec(len(ev.payload), ev.payload); err != nil {
				if !wire.IsClean(err) {
					s.cfg.Logf("server: %s: tail write: %v", caddr, err)
				}
				return
			}
			s.tailFrames.Add(1)
			next++
		case <-sub.stop:
			reason, base, length := sub.verdict()
			sendResync(reason, base, length)
			return
		case <-readerGone:
			return
		case <-stop:
			sendResyncNow(wire.ResyncShutdown)
			return
		case <-ctx.Done():
			sendResyncNow(wire.ResyncShutdown)
			return
		}
	}
}

// publishTail fans one just-appended diff out to the lineage's
// subscribers. Called with the lineage lock held so subscribers see
// appends in order. payload is the crc-prefixed push payload; it
// aliases the connection's scratch buffer, so it is copied — but only
// when a subscriber exists, keeping the non-replicated push path
// copy-free.
func (s *Server) publishTail(ln *lineage, ckpt uint32, payload []byte) {
	if s.hub.count(ln) == 0 {
		return
	}
	n, err := ln.store.Len()
	if err != nil || int64(n) > math.MaxUint32 {
		return
	}
	shed := s.hub.publish(ln, ckpt, append([]byte(nil), payload...), uint32(ln.store.Base()), uint32(n))
	s.subSheds.Add(uint64(shed))
}

// publishBatch fans a just-committed stream batch out. The staged
// diffs no longer carry their wire payloads, so each is re-encoded —
// the canonical encoding is deterministic, hence byte- and
// CRC-identical to what the pusher sent — and again only when a
// subscriber exists.
func (s *Server) publishBatch(ln *lineage, start uint32, diffs []*checkpoint.Diff) {
	if s.hub.count(ln) == 0 {
		return
	}
	n, err := ln.store.Len()
	if err != nil || int64(n) > math.MaxUint32 {
		return
	}
	base := uint32(ln.store.Base())
	for i, d := range diffs {
		var buf bytes.Buffer
		if err := d.Encode(&buf); err != nil {
			s.cfg.Logf("server: lineage %q: re-encoding diff %d for subscribers: %v", ln.name, start+uint32(i), err)
			return
		}
		shed := s.hub.publish(ln, start+uint32(i), wire.EncodePush(buf.Bytes()), base, uint32(n))
		s.subSheds.Add(uint64(shed))
	}
}

// foldBarrier is the lifecycle OnFold hook of a lineage: a compaction
// just committed a baseline move, so every live subscriber's cursor
// is stale. Runs under the lineage and manager locks; the hub is a
// leaf, so the barrier is delivered without new lock-order edges.
func (s *Server) foldBarrier(ln *lineage, newBase int) {
	if s.hub.count(ln) == 0 {
		return
	}
	n, err := ln.store.Len()
	if err != nil || int64(n) > math.MaxUint32 {
		return
	}
	shed := s.hub.fold(ln, uint32(newBase), uint32(n))
	s.foldBarriers.Add(uint64(shed))
}
