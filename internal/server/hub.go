// The per-lineage subscription hub: fan-out of appended diffs to the
// live v5 tail streams of this server.
//
// Design constraints, in order:
//
//   - The publish path piggybacks on the push hot path (it runs with
//     the lineage lock held, which is what gives subscribers the
//     append order for free), so with zero subscribers it must cost
//     one mutex-protected map lookup and nothing else — no copies, no
//     allocation.
//   - A slow subscriber must never stall an append. Every subscriber
//     owns a bounded queue; a publish that would block sheds the
//     subscriber instead, and the resume cursor (wire.Cursor) makes
//     shedding safe — the follower reconnects and resumes exactly
//     where it stopped.
//   - hub.mu is a strict leaf lock: hub methods take no other lock
//     and call into no other subsystem, so the hub can be invoked
//     from under any combination of lineage/lifecycle locks without
//     adding lock-order edges (the ckptlint lockorder analyzer checks
//     this holds).

package server

import (
	"sync"
	"sync/atomic"

	"github.com/gpuckpt/gpuckpt/internal/wire"
)

// tailEvent is one appended diff on its way to a subscriber: the
// absolute checkpoint id and the crc-prefixed encoded bytes (the
// TTail payload, shared read-only between subscribers).
type tailEvent struct {
	ckpt    uint32
	payload []byte
}

// tailSub is one live subscriber of one lineage. The serving
// goroutine selects on ch (ordered events) and stop (shed barrier);
// after stop is closed the verdict fields say why and what span to
// report in the final TResync frame.
type tailSub struct {
	ch   chan tailEvent
	stop chan struct{}
	once sync.Once

	// Verdict, stored before stop closes (the channel close is the
	// happens-before edge that publishes them to the serving
	// goroutine).
	reason  atomic.Uint32 //ckptlint:atomic
	newBase atomic.Uint32 //ckptlint:atomic
	newLen  atomic.Uint32 //ckptlint:atomic
}

// shed records the barrier verdict and releases the serving
// goroutine. Idempotent: the first reason wins.
func (t *tailSub) shed(reason uint8, base, n uint32) {
	t.once.Do(func() {
		t.reason.Store(uint32(reason))
		t.newBase.Store(base)
		t.newLen.Store(n)
		close(t.stop)
	})
}

// verdict reads the barrier outcome after stop closed.
func (t *tailSub) verdict() (reason uint8, base, n uint32) {
	return uint8(t.reason.Load()), t.newBase.Load(), t.newLen.Load()
}

// hub tracks the subscribers of every lineage.
type hub struct {
	mu sync.Mutex
	//ckptlint:guardedby mu
	subs map[*lineage][]*tailSub
}

func newHub() *hub {
	return &hub{subs: make(map[*lineage][]*tailSub)}
}

// register adds a subscriber with a queue of the given capacity.
// Called with the lineage lock held, so the registration point is a
// consistent cut: every diff appended after it is published to ch,
// every earlier one is readable from the store.
func (h *hub) register(ln *lineage, queue int) *tailSub {
	sub := &tailSub{
		ch:   make(chan tailEvent, queue),
		stop: make(chan struct{}),
	}
	h.mu.Lock()
	h.subs[ln] = append(h.subs[ln], sub)
	h.mu.Unlock()
	return sub
}

// unregister removes a subscriber if it is still registered (a shed
// already removed it). Safe to call exactly once per register, from
// the serving goroutine's defer.
func (h *hub) unregister(ln *lineage, sub *tailSub) {
	h.mu.Lock()
	h.removeLocked(ln, sub)
	h.mu.Unlock()
}

//ckptlint:locked mu
func (h *hub) removeLocked(ln *lineage, sub *tailSub) {
	subs := h.subs[ln]
	for i, s := range subs {
		if s == sub {
			subs[i] = subs[len(subs)-1]
			subs[len(subs)-1] = nil
			h.subs[ln] = subs[:len(subs)-1]
			break
		}
	}
	if len(h.subs[ln]) == 0 {
		delete(h.subs, ln)
	}
}

// count reports the number of live subscribers of ln — the publish
// path's zero-cost guard before it copies anything.
func (h *hub) count(ln *lineage) int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.subs[ln])
}

// publish fans one appended diff out to every subscriber of ln.
// payload must be owned by the hub (no aliasing of per-connection
// scratch). A subscriber whose queue is full is shed with a lag
// barrier carrying the current [base, n) span; it returns how many
// were shed. Called with the lineage lock held — that lock, not the
// hub's, is what orders events.
func (h *hub) publish(ln *lineage, ckpt uint32, payload []byte, base, n uint32) int {
	h.mu.Lock()
	var shed []*tailSub
	for _, sub := range h.subs[ln] {
		select {
		case sub.ch <- tailEvent{ckpt: ckpt, payload: payload}:
		default:
			shed = append(shed, sub)
		}
	}
	for _, sub := range shed {
		h.removeLocked(ln, sub)
	}
	h.mu.Unlock()
	for _, sub := range shed {
		sub.shed(wire.ResyncLag, base, n)
	}
	return len(shed)
}

// fold sheds every subscriber of ln with a fold barrier: the baseline
// moved, so their resume cursors are stale and they must re-pull
// [base, n) before re-subscribing. Returns how many were shed.
func (h *hub) fold(ln *lineage, base, n uint32) int {
	h.mu.Lock()
	shed := append([]*tailSub(nil), h.subs[ln]...)
	delete(h.subs, ln)
	h.mu.Unlock()
	for _, sub := range shed {
		sub.shed(wire.ResyncFold, base, n)
	}
	return len(shed)
}
