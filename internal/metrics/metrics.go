// Package metrics renders experiment results as aligned text tables
// and CSV, the output layer of the benchmark harness.
package metrics

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// Table is a simple column-aligned report.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// Add appends a row; the cell count must match the header.
func (t *Table) Add(cells ...string) {
	if len(cells) != len(t.Columns) {
		panic(fmt.Sprintf("metrics: row has %d cells, table has %d columns", len(cells), len(t.Columns)))
	}
	t.Rows = append(t.Rows, cells)
}

// Render writes the aligned table.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString(t.Title)
		sb.WriteByte('\n')
	}
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(cell)
			for p := len(cell); p < widths[i]; p++ {
				sb.WriteByte(' ')
			}
		}
		sb.WriteByte('\n')
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// WriteCSV writes the table as CSV (header + rows, no title).
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Columns); err != nil {
		return err
	}
	if err := cw.WriteAll(t.Rows); err != nil {
		return err
	}
	cw.Flush()
	return cw.Error()
}

// Bytes formats a byte count with binary units.
func Bytes(n int64) string {
	const unit = 1024
	if n < unit {
		return fmt.Sprintf("%d B", n)
	}
	div, exp := int64(unit), 0
	for m := n / unit; m >= unit; m /= unit {
		div *= unit
		exp++
	}
	return fmt.Sprintf("%.2f %ciB", float64(n)/float64(div), "KMGTPE"[exp])
}

// GBps formats a bytes/second rate in GB/s (decimal, as the paper's
// throughput plots do).
func GBps(bps float64) string {
	return fmt.Sprintf("%.2f GB/s", bps/1e9)
}

// Ratio formats a de-duplication or compression ratio.
func Ratio(r float64) string {
	if r >= 100 {
		return fmt.Sprintf("%.0fx", r)
	}
	return fmt.Sprintf("%.2fx", r)
}
