package metrics

import "sync/atomic"

// Counter is a monotonically increasing, concurrency-safe event
// counter. The zero value is ready to use. It is the shared primitive
// behind the server STATS counters and the blockstore de-duplication
// accounting, so every subsystem reports through one idiom.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() uint64 { return c.v.Load() }
