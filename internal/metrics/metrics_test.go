package metrics

import (
	"bytes"
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tb := NewTable("Title", "a", "long-column")
	tb.Add("1", "2")
	tb.Add("333", "4")
	var buf bytes.Buffer
	if err := tb.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "Title\n") {
		t.Fatalf("missing title:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title + header + separator + 2 rows
		t.Fatalf("expected 5 lines, got %d:\n%s", len(lines), out)
	}
	// All lines align to the same column start for field 2.
	idx := strings.Index(lines[1], "long-column")
	for _, ln := range lines[2:] {
		if len(ln) <= idx {
			t.Fatalf("row shorter than header: %q", ln)
		}
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("", "x", "y")
	tb.Add("1", "a,b")
	var buf bytes.Buffer
	if err := tb.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	want := "x,y\n1,\"a,b\"\n"
	if buf.String() != want {
		t.Fatalf("csv = %q want %q", buf.String(), want)
	}
}

func TestTableAddPanicsOnArity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on wrong arity")
		}
	}()
	NewTable("", "a").Add("1", "2")
}

func TestFormatters(t *testing.T) {
	cases := map[int64]string{
		12:      "12 B",
		2048:    "2.00 KiB",
		3 << 20: "3.00 MiB",
		5 << 30: "5.00 GiB",
		7 << 40: "7.00 TiB",
	}
	for n, want := range cases {
		if got := Bytes(n); got != want {
			t.Errorf("Bytes(%d)=%q want %q", n, got, want)
		}
	}
	if GBps(2.5e9) != "2.50 GB/s" {
		t.Errorf("GBps wrong: %q", GBps(2.5e9))
	}
	if Ratio(2.345) != "2.35x" || Ratio(215.4) != "215x" {
		t.Errorf("Ratio wrong: %q %q", Ratio(2.345), Ratio(215.4))
	}
}
