package parallel

import (
	"math/rand"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestForCoversAllIndices(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8} {
		p := NewPool(workers)
		for _, n := range []int{0, 1, 2, 7, 100, 1023} {
			hits := make([]int32, n)
			p.For(n, func(i int) { atomic.AddInt32(&hits[i], 1) })
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", workers, n, i, h)
				}
			}
		}
	}
}

func TestForRangePartition(t *testing.T) {
	p := NewPool(4)
	n := 1000
	var covered int64
	p.ForRange(n, func(lo, hi int) {
		if lo < 0 || hi > n || lo >= hi {
			t.Errorf("bad range [%d,%d)", lo, hi)
		}
		atomic.AddInt64(&covered, int64(hi-lo))
	})
	if covered != int64(n) {
		t.Fatalf("covered %d of %d iterations", covered, n)
	}
}

func TestForZeroAndNegative(t *testing.T) {
	p := NewPool(4)
	called := false
	p.For(0, func(int) { called = true })
	p.For(-5, func(int) { called = true })
	p.ForRange(0, func(int, int) { called = true })
	if called {
		t.Fatal("body invoked for empty iteration space")
	}
}

func TestReduceInt64Sum(t *testing.T) {
	p := NewPool(8)
	f := func(raw []int8) bool {
		var want int64
		for _, v := range raw {
			want += int64(v)
		}
		got := ReduceInt64(p, len(raw), 0,
			func(i int) int64 { return int64(raw[i]) },
			func(a, b int64) int64 { return a + b })
		return got == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestReduceMax(t *testing.T) {
	p := NewPool(3)
	in := []int64{3, -7, 22, 9, 22, -100, 4}
	got := ReduceInt64(p, len(in), -1<<62,
		func(i int) int64 { return in[i] },
		func(a, b int64) int64 {
			if a > b {
				return a
			}
			return b
		})
	if got != 22 {
		t.Fatalf("max = %d, want 22", got)
	}
}

func TestScanExclusiveMatchesSequential(t *testing.T) {
	for _, workers := range []int{1, 2, 5, 16} {
		p := NewPool(workers)
		rng := rand.New(rand.NewSource(42))
		for _, n := range []int{0, 1, 2, 3, 17, 256, 4097} {
			in := make([]int64, n)
			for i := range in {
				in[i] = int64(rng.Intn(1000))
			}
			want := make([]int64, n)
			var acc int64
			for i := 0; i < n; i++ {
				want[i] = acc
				acc += in[i]
			}
			out := make([]int64, n)
			total := ScanExclusive(p, in, out)
			if total != acc {
				t.Fatalf("workers=%d n=%d total=%d want %d", workers, n, total, acc)
			}
			for i := range want {
				if out[i] != want[i] {
					t.Fatalf("workers=%d n=%d out[%d]=%d want %d", workers, n, i, out[i], want[i])
				}
			}
		}
	}
}

func TestScanExclusiveInPlace(t *testing.T) {
	p := NewPool(4)
	in := []int64{5, 3, 8, 1}
	total := ScanExclusive(p, in, in)
	want := []int64{0, 5, 8, 16}
	if total != 17 {
		t.Fatalf("total=%d want 17", total)
	}
	for i := range want {
		if in[i] != want[i] {
			t.Fatalf("in-place scan wrong at %d: %v", i, in)
		}
	}
}

func TestScanExclusiveLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	ScanExclusive(NewPool(2), make([]int64, 3), make([]int64, 4))
}

func TestCollector(t *testing.T) {
	p := NewPool(8)
	var c Collector[int]
	n := 500
	p.For(n, func(i int) { c.Append(i) })
	items := c.Items()
	if len(items) != n || c.Len() != n {
		t.Fatalf("collected %d items, want %d", len(items), n)
	}
	seen := make(map[int]bool, n)
	for _, v := range items {
		if seen[v] {
			t.Fatalf("duplicate item %d", v)
		}
		seen[v] = true
	}
	var empty Collector[int]
	empty.Append()
	if empty.Len() != 0 || len(empty.Items()) != 0 {
		t.Fatal("empty append changed collector")
	}
}

func TestForTeams(t *testing.T) {
	p := NewPool(4)
	league, teamSize := 13, 4
	var ranks [13]int32
	var work int64
	p.ForTeams(league, teamSize, func(tm Team) {
		atomic.AddInt32(&ranks[tm.LeagueRank()], 1)
		if tm.LeagueSize() != league || tm.Size() != teamSize {
			t.Errorf("bad team geometry %d/%d", tm.LeagueSize(), tm.Size())
		}
		tm.ThreadRange(10, func(int) { atomic.AddInt64(&work, 1) })
	})
	for r, c := range ranks {
		if c != 1 {
			t.Fatalf("team %d executed %d times", r, c)
		}
	}
	if work != int64(league*10) {
		t.Fatalf("thread-range work = %d, want %d", work, league*10)
	}
	p.ForTeams(0, 4, func(Team) { t.Error("body called for empty league") })
	p.ForTeams(2, 0, func(tm Team) {
		if tm.Size() != 1 {
			t.Errorf("teamSize 0 not clamped to 1")
		}
	})
}

func TestNewPoolDefaults(t *testing.T) {
	if NewPool(0).Workers() < 1 {
		t.Fatal("default pool has no workers")
	}
	if NewPool(-3).Workers() < 1 {
		t.Fatal("negative pool has no workers")
	}
	if NewPool(7).Workers() != 7 {
		t.Fatal("explicit worker count not honored")
	}
}

func BenchmarkParallelForHash(b *testing.B) {
	p := NewPool(0)
	data := make([]byte, 1<<20)
	b.SetBytes(int64(len(data)))
	for i := 0; i < b.N; i++ {
		var sink int64
		p.ForRange(len(data)/64, func(lo, hi int) {
			var acc int64
			for c := lo; c < hi; c++ {
				for _, by := range data[c*64 : c*64+64] {
					acc += int64(by)
				}
			}
			atomic.AddInt64(&sink, acc)
		})
	}
}
