package parallel

// Team is the handle passed to the body of a team-policy launch,
// mirroring Kokkos TeamPolicy member types. A team corresponds to a
// GPU thread block: LeagueRank identifies the block, Size the number
// of cooperating threads.
type Team struct {
	leagueRank int
	leagueSize int
	teamSize   int
}

// LeagueRank returns the index of this team within the league.
func (t Team) LeagueRank() int { return t.leagueRank }

// LeagueSize returns the number of teams in the league.
func (t Team) LeagueSize() int { return t.leagueSize }

// Size returns the number of threads in the team.
func (t Team) Size() int { return t.teamSize }

// ThreadRange executes body(i) for i in [0, n), the work the team's
// threads would perform cooperatively (Kokkos TeamThreadRange). On the
// CPU substrate the team's threads are simulated by a single worker,
// so the range runs sequentially; the device cost model accounts for
// the coalescing benefit separately.
func (t Team) ThreadRange(n int, body func(i int)) {
	for i := 0; i < n; i++ {
		body(i)
	}
}

// ForTeams launches league teams of teamSize threads each and executes
// body once per team, distributing teams across the pool's persistent
// workers like any other launch. Small leagues run inline on the
// submitting goroutine.
func (p *Pool) ForTeams(league, teamSize int, body func(t Team)) {
	if league <= 0 {
		return
	}
	if teamSize <= 0 {
		teamSize = 1
	}
	p.checkOpen()
	grain := p.grainSize(league)
	run := func(lo, hi int) {
		for r := lo; r < hi; r++ {
			body(Team{leagueRank: r, leagueSize: league, teamSize: teamSize})
		}
	}
	if p.workers == 1 || league <= grain {
		run(0, league)
		return
	}
	p.launch(league, grain, run)
}
