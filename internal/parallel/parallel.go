// Package parallel provides Kokkos-style data-parallel execution
// primitives (parallel-for, parallel-reduce, exclusive parallel-scan
// and team policies) over a goroutine worker pool.
//
// The paper's implementation uses the Kokkos performance-portability
// framework to launch fused GPU kernels (Tan et al., ICPP 2023, §2.4).
// This package is the CPU-side stand-in for that layer: the same
// level-by-level data-parallel algorithms execute for real across CPU
// cores, while the simulated device (package device) accounts modeled
// GPU time for each launch.
package parallel

import (
	"runtime"
	"sync"
)

// Pool is a reusable set of workers executing data-parallel loops. A
// Pool is safe for concurrent use; independent loops submitted from
// different goroutines simply share the worker budget.
type Pool struct {
	workers int
}

// NewPool returns a pool that runs loop bodies on up to workers
// goroutines. workers <= 0 selects GOMAXPROCS.
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{workers: workers}
}

// Workers reports the parallelism of the pool.
func (p *Pool) Workers() int { return p.workers }

// grainSize splits n iterations across workers into contiguous blocks,
// mirroring Kokkos RangePolicy chunking: successive threads process
// successive chunks so that memory accesses stay coalesced.
func (p *Pool) grainSize(n int) int {
	if n <= 0 {
		return 1
	}
	g := (n + p.workers - 1) / p.workers
	if g < 1 {
		g = 1
	}
	return g
}

// For executes body(i) for every i in [0, n) using all workers. The
// iteration space is split into contiguous blocks, one per worker.
func (p *Pool) For(n int, body func(i int)) {
	p.ForRange(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			body(i)
		}
	})
}

// ForRange executes body(lo, hi) over a partition of [0, n) into
// contiguous blocks. It is the bulk variant of For, avoiding one
// closure call per element in hot loops.
func (p *Pool) ForRange(n int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	grain := p.grainSize(n)
	if n <= grain || p.workers == 1 {
		body(0, n)
		return
	}
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += grain {
		hi := lo + grain
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			body(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// ReduceInt64 computes a parallel reduction of body(i) over [0, n)
// combined with join, starting from identity. join must be
// associative and commutative.
func ReduceInt64(p *Pool, n int, identity int64, body func(i int) int64, join func(a, b int64) int64) int64 {
	if n <= 0 {
		return identity
	}
	grain := p.grainSize(n)
	nblocks := (n + grain - 1) / grain
	partial := make([]int64, nblocks)
	var wg sync.WaitGroup
	for b := 0; b < nblocks; b++ {
		lo := b * grain
		hi := lo + grain
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(b, lo, hi int) {
			defer wg.Done()
			acc := identity
			for i := lo; i < hi; i++ {
				acc = join(acc, body(i))
			}
			partial[b] = acc
		}(b, lo, hi)
	}
	wg.Wait()
	acc := identity
	for _, v := range partial {
		acc = join(acc, v)
	}
	return acc
}

// ScanExclusive computes the exclusive prefix sum of in, writing the
// result to out (which may alias in) and returning the total. It is
// the offset-precalculation primitive used by the serializer to place
// scattered chunks in the consolidated difference buffer (§2.1,
// design principle 3).
func ScanExclusive(p *Pool, in []int64, out []int64) int64 {
	n := len(in)
	if len(out) != n {
		panic("parallel: ScanExclusive length mismatch")
	}
	if n == 0 {
		return 0
	}
	grain := p.grainSize(n)
	nblocks := (n + grain - 1) / grain
	if nblocks == 1 {
		var acc int64
		for i := 0; i < n; i++ {
			v := in[i]
			out[i] = acc
			acc += v
		}
		return acc
	}
	blockSums := make([]int64, nblocks)
	// Pass 1: per-block sums.
	var wg sync.WaitGroup
	for b := 0; b < nblocks; b++ {
		lo := b * grain
		hi := lo + grain
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(b, lo, hi int) {
			defer wg.Done()
			var s int64
			for i := lo; i < hi; i++ {
				s += in[i]
			}
			blockSums[b] = s
		}(b, lo, hi)
	}
	wg.Wait()
	// Sequential scan of block sums (nblocks is small).
	var total int64
	for b := 0; b < nblocks; b++ {
		s := blockSums[b]
		blockSums[b] = total
		total += s
	}
	// Pass 2: per-block exclusive scan seeded with the block offset.
	for b := 0; b < nblocks; b++ {
		lo := b * grain
		hi := lo + grain
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(b, lo, hi int) {
			defer wg.Done()
			acc := blockSums[b]
			for i := lo; i < hi; i++ {
				v := in[i]
				out[i] = acc
				acc += v
			}
		}(b, lo, hi)
	}
	wg.Wait()
	return total
}

// Collector accumulates values produced concurrently by loop bodies.
// Each worker appends to a private shard; Items merges shards. This is
// the idiom used to "save roots" from the level-parallel labeling
// sweep of Algorithm 1 without a global atomic append.
type Collector[T any] struct {
	mu     sync.Mutex
	shards [][]T
}

// Append adds values to the collector. It is safe for concurrent use;
// each call locks once regardless of how many values it adds, so
// callers batch per-block.
func (c *Collector[T]) Append(values ...T) {
	if len(values) == 0 {
		return
	}
	shard := make([]T, len(values))
	copy(shard, values)
	c.mu.Lock()
	c.shards = append(c.shards, shard)
	c.mu.Unlock()
}

// Items returns all collected values in unspecified order.
func (c *Collector[T]) Items() []T {
	c.mu.Lock()
	defer c.mu.Unlock()
	var total int
	for _, s := range c.shards {
		total += len(s)
	}
	out := make([]T, 0, total)
	for _, s := range c.shards {
		out = append(out, s...)
	}
	return out
}

// Len returns the number of collected values.
func (c *Collector[T]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	var total int
	for _, s := range c.shards {
		total += len(s)
	}
	return total
}
