// Package parallel provides Kokkos-style data-parallel execution
// primitives (parallel-for, parallel-reduce, exclusive parallel-scan
// and team policies) over a persistent goroutine worker pool.
//
// The paper's implementation uses the Kokkos performance-portability
// framework to launch fused GPU kernels (Tan et al., ICPP 2023, §2.4).
// This package is the CPU-side stand-in for that layer: the same
// level-by-level data-parallel algorithms execute for real across CPU
// cores, while the simulated device (package device) accounts modeled
// GPU time for each launch.
//
// Workers are long-lived: NewPool parks workers-1 goroutines on a work
// channel, and each kernel launch publishes one work descriptor that
// the submitter and any idle workers drain cooperatively. A launch
// therefore costs a channel wake instead of spawning fresh goroutines,
// which keeps the per-launch overhead flat for the many small kernels
// of Algorithm 1. Tiny iteration spaces short-circuit inline on the
// submitting goroutine without touching the pool at all.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// inlineThreshold is the iteration count below which a launch runs
// inline on the submitting goroutine: distributing fewer iterations
// than this costs more in wakeups than the parallelism recovers.
const inlineThreshold = 128

// launchState is one kernel launch in flight: a body, a block
// partition of [0, n), and the bookkeeping that lets the submitter and
// any helping workers claim blocks cooperatively. States are recycled
// through a sync.Pool so steady-state launches allocate nothing.
type launchState struct {
	body    func(lo, hi int)
	n       int
	grain   int
	nblocks int64
	next    atomic.Int64 // next block index to claim
	undone  atomic.Int64 // blocks not yet completed
	refs    atomic.Int64 // goroutines holding a reference
	done    chan struct{}
}

var statePool = sync.Pool{
	New: func() any { return &launchState{done: make(chan struct{}, 1)} },
}

// run claims and executes blocks until none remain. The goroutine that
// completes the final block signals the (buffered) done channel.
func (ls *launchState) run() {
	for {
		b := ls.next.Add(1) - 1
		if b >= ls.nblocks {
			return
		}
		lo := int(b) * ls.grain
		hi := lo + ls.grain
		if hi > ls.n {
			hi = ls.n
		}
		ls.body(lo, hi)
		if ls.undone.Add(-1) == 0 {
			ls.done <- struct{}{}
		}
	}
}

// release drops one reference; the final holder recycles the state.
func (ls *launchState) release() {
	if ls.refs.Add(-1) == 0 {
		ls.body = nil
		statePool.Put(ls)
	}
}

// Pool is a reusable set of persistent workers executing data-parallel
// loops. A Pool is safe for concurrent use; independent loops
// submitted from different goroutines simply share the worker budget.
//
// Close must not race in-flight launches; launching on a closed Pool
// panics.
type Pool struct {
	workers int
	work    chan *launchState
	wg      sync.WaitGroup
	closed  atomic.Bool
}

// NewPool returns a pool that runs loop bodies on up to workers
// goroutines. workers <= 0 selects GOMAXPROCS. The submitting
// goroutine participates in every launch, so workers-1 persistent
// helper goroutines are parked on the work channel (none for a
// single-worker pool). Call Close to release them.
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &Pool{workers: workers}
	if workers > 1 {
		p.work = make(chan *launchState, 4*workers)
		p.wg.Add(workers - 1)
		for i := 0; i < workers-1; i++ {
			go p.workerLoop()
		}
	}
	return p
}

func (p *Pool) workerLoop() {
	defer p.wg.Done()
	for ls := range p.work {
		ls.run()
		ls.release()
	}
}

// Close terminates the pool's persistent workers after draining any
// queued work. It is idempotent. Launching on a closed pool panics;
// Close must not be called concurrently with launches.
func (p *Pool) Close() {
	if p.closed.Swap(true) {
		return
	}
	if p.work != nil {
		close(p.work)
		p.wg.Wait()
	}
}

// Workers reports the parallelism of the pool.
func (p *Pool) Workers() int { return p.workers }

func (p *Pool) checkOpen() {
	if p.closed.Load() {
		panic("parallel: launch on closed Pool")
	}
}

// grainSize splits n iterations across workers into contiguous blocks,
// mirroring Kokkos RangePolicy chunking: successive threads process
// successive chunks so that memory accesses stay coalesced.
func (p *Pool) grainSize(n int) int {
	if n <= 0 {
		return 1
	}
	g := (n + p.workers - 1) / p.workers
	if g < 1 {
		g = 1
	}
	return g
}

// launch partitions [0, n) into blocks of size grain and executes body
// over every block, using the submitting goroutine plus as many parked
// workers as there are spare blocks. It returns when all blocks have
// completed.
func (p *Pool) launch(n, grain int, body func(lo, hi int)) {
	nblocks := (n + grain - 1) / grain
	ls := statePool.Get().(*launchState)
	ls.body, ls.n, ls.grain, ls.nblocks = body, n, grain, int64(nblocks)
	ls.next.Store(0)
	ls.undone.Store(int64(nblocks))
	ls.refs.Store(1)
	helpers := nblocks - 1
	if helpers > p.workers-1 {
		helpers = p.workers - 1
	}
enqueue:
	for i := 0; i < helpers; i++ {
		ls.refs.Add(1)
		select {
		case p.work <- ls:
		default:
			// Every worker is busy (or the queue is full): stop waking
			// helpers — the submitter processes the remaining blocks.
			ls.refs.Add(-1)
			break enqueue
		}
	}
	ls.run()
	<-ls.done
	ls.release()
}

// For executes body(i) for every i in [0, n) using all workers. The
// iteration space is split into contiguous blocks, one per worker.
func (p *Pool) For(n int, body func(i int)) {
	p.ForRange(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			body(i)
		}
	})
}

// ForRange executes body(lo, hi) over a partition of [0, n) into
// contiguous blocks. It is the bulk variant of For, avoiding one
// closure call per element in hot loops. Small n runs inline on the
// submitting goroutine as the single block [0, n).
func (p *Pool) ForRange(n int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	p.checkOpen()
	grain := p.grainSize(n)
	if p.workers == 1 || n <= grain || n < inlineThreshold {
		body(0, n)
		return
	}
	p.launch(n, grain, body)
}

// scratchPool recycles the per-launch block-accumulator slices of
// ReduceInt64 and ScanExclusive (nblocks entries, bounded by the
// worker count), so steady-state reductions allocate nothing.
var scratchPool sync.Pool

func getScratch(n int) *[]int64 {
	v, _ := scratchPool.Get().(*[]int64)
	if v == nil {
		v = new([]int64)
	}
	if cap(*v) < n {
		*v = make([]int64, n)
	}
	s := (*v)[:n]
	for i := range s {
		s[i] = 0
	}
	*v = s
	return v
}

func putScratch(v *[]int64) { scratchPool.Put(v) }

// ReduceInt64 computes a parallel reduction of body(i) over [0, n)
// combined with join, starting from identity. join must be
// associative and commutative.
func ReduceInt64(p *Pool, n int, identity int64, body func(i int) int64, join func(a, b int64) int64) int64 {
	if n <= 0 {
		return identity
	}
	p.checkOpen()
	grain := p.grainSize(n)
	nblocks := (n + grain - 1) / grain
	if nblocks == 1 || p.workers == 1 || n < inlineThreshold {
		acc := identity
		for i := 0; i < n; i++ {
			acc = join(acc, body(i))
		}
		return acc
	}
	pv := getScratch(nblocks)
	partial := *pv
	p.launch(n, grain, func(lo, hi int) {
		acc := identity
		for i := lo; i < hi; i++ {
			acc = join(acc, body(i))
		}
		partial[lo/grain] = acc
	})
	acc := identity
	for _, v := range partial {
		acc = join(acc, v)
	}
	putScratch(pv)
	return acc
}

// ScanExclusive computes the exclusive prefix sum of in, writing the
// result to out (which may alias in) and returning the total. It is
// the offset-precalculation primitive used by the serializer to place
// scattered chunks in the consolidated difference buffer (§2.1,
// design principle 3).
func ScanExclusive(p *Pool, in []int64, out []int64) int64 {
	n := len(in)
	if len(out) != n {
		panic("parallel: ScanExclusive length mismatch")
	}
	if n == 0 {
		return 0
	}
	p.checkOpen()
	grain := p.grainSize(n)
	nblocks := (n + grain - 1) / grain
	if nblocks == 1 || p.workers == 1 || n < inlineThreshold {
		var acc int64
		for i := 0; i < n; i++ {
			v := in[i]
			out[i] = acc
			acc += v
		}
		return acc
	}
	pv := getScratch(nblocks)
	blockSums := *pv
	// Pass 1: per-block sums.
	p.launch(n, grain, func(lo, hi int) {
		var s int64
		for i := lo; i < hi; i++ {
			s += in[i]
		}
		blockSums[lo/grain] = s
	})
	// Sequential scan of block sums (nblocks is small).
	var total int64
	for b := 0; b < nblocks; b++ {
		s := blockSums[b]
		blockSums[b] = total
		total += s
	}
	// Pass 2: per-block exclusive scan seeded with the block offset.
	p.launch(n, grain, func(lo, hi int) {
		acc := blockSums[lo/grain]
		for i := lo; i < hi; i++ {
			v := in[i]
			out[i] = acc
			acc += v
		}
	})
	putScratch(pv)
	return total
}

// Collector accumulates values produced concurrently by loop bodies.
// Each worker appends to a private shard; Items merges shards. This is
// the idiom used to "save roots" from the level-parallel labeling
// sweep of Algorithm 1 without a global atomic append.
type Collector[T any] struct {
	mu sync.Mutex
	//ckptlint:guardedby mu
	shards [][]T
}

// Append adds values to the collector. It is safe for concurrent use;
// each call locks once regardless of how many values it adds, so
// callers batch per-block.
func (c *Collector[T]) Append(values ...T) {
	if len(values) == 0 {
		return
	}
	shard := make([]T, len(values))
	copy(shard, values)
	c.mu.Lock()
	c.shards = append(c.shards, shard)
	c.mu.Unlock()
}

// Items returns all collected values in unspecified order.
func (c *Collector[T]) Items() []T {
	c.mu.Lock()
	defer c.mu.Unlock()
	var total int
	for _, s := range c.shards {
		total += len(s)
	}
	out := make([]T, 0, total)
	for _, s := range c.shards {
		out = append(out, s...)
	}
	return out
}

// Len returns the number of collected values.
func (c *Collector[T]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	var total int
	for _, s := range c.shards {
		total += len(s)
	}
	return total
}
