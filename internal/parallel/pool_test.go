package parallel

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestPoolConcurrentLaunchStress drives many goroutines through one
// shared Pool at once, mixing For/ForRange/Reduce/Scan/ForTeams
// launches. Run under -race this exercises the descriptor recycling
// and cooperative block claiming of the persistent workers.
func TestPoolConcurrentLaunchStress(t *testing.T) {
	p := NewPool(4)
	defer p.Close()

	const (
		goroutines = 8
		rounds     = 50
		n          = 4096 // above inlineThreshold so launches hit the pool
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			in := make([]int64, n)
			out := make([]int64, n)
			for i := range in {
				in[i] = int64(i % 7)
			}
			for r := 0; r < rounds; r++ {
				switch r % 4 {
				case 0:
					var sum atomic.Int64
					p.ForRange(n, func(lo, hi int) {
						var s int64
						for i := lo; i < hi; i++ {
							s += int64(i)
						}
						sum.Add(s)
					})
					want := int64(n) * int64(n-1) / 2
					if got := sum.Load(); got != want {
						t.Errorf("goroutine %d round %d: ForRange sum = %d, want %d", g, r, got, want)
						return
					}
				case 1:
					got := ReduceInt64(p, n, 0,
						func(i int) int64 { return int64(i) },
						func(a, b int64) int64 { return a + b })
					want := int64(n) * int64(n-1) / 2
					if got != want {
						t.Errorf("goroutine %d round %d: Reduce = %d, want %d", g, r, got, want)
						return
					}
				case 2:
					total := ScanExclusive(p, in, out)
					var want int64
					for i := 0; i < n; i++ {
						if out[i] != want {
							t.Errorf("goroutine %d round %d: scan[%d] = %d, want %d", g, r, i, out[i], want)
							return
						}
						want += in[i]
					}
					if total != want {
						t.Errorf("goroutine %d round %d: scan total = %d, want %d", g, r, total, want)
						return
					}
				case 3:
					var visits atomic.Int64
					p.ForTeams(37, 4, func(tm Team) {
						tm.ThreadRange(3, func(int) { visits.Add(1) })
					})
					if got := visits.Load(); got != 37*3 {
						t.Errorf("goroutine %d round %d: team visits = %d, want %d", g, r, got, 37*3)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestPoolCloseContract pins down the Close semantics: idempotent, and
// any launch after Close panics.
func TestPoolCloseContract(t *testing.T) {
	p := NewPool(4)
	p.For(1000, func(int) {})
	p.Close()
	p.Close() // idempotent

	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s on closed Pool did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("ForRange", func() { p.ForRange(1000, func(lo, hi int) {}) })
	mustPanic("For", func() { p.For(1000, func(int) {}) })
	mustPanic("inline ForRange", func() { p.ForRange(4, func(lo, hi int) {}) })
	mustPanic("ReduceInt64", func() {
		ReduceInt64(p, 1000, 0, func(i int) int64 { return 0 }, func(a, b int64) int64 { return a })
	})
	mustPanic("ScanExclusive", func() {
		in := make([]int64, 1000)
		ScanExclusive(p, in, in)
	})
	mustPanic("ForTeams", func() { p.ForTeams(8, 4, func(Team) {}) })
}

// TestPoolSingleWorkerHasNoHelpers checks that a 1-worker pool runs
// everything inline and Close is still safe.
func TestPoolSingleWorkerHasNoHelpers(t *testing.T) {
	p := NewPool(1)
	var sum int64 // no atomics needed: everything runs on this goroutine
	p.ForRange(100000, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			sum += int64(i)
		}
	})
	if want := int64(100000) * 99999 / 2; sum != want {
		t.Fatalf("sum = %d, want %d", sum, want)
	}
	p.Close()
}

// TestPoolTinyLaunchInline verifies the short-circuit: a launch below
// the inline threshold must execute on the submitting goroutine even
// on a multi-worker pool (checked by writing to a plain variable).
func TestPoolTinyLaunchInline(t *testing.T) {
	p := NewPool(8)
	defer p.Close()
	ran := false
	p.ForRange(inlineThreshold-1, func(lo, hi int) {
		if lo != 0 || hi != inlineThreshold-1 {
			t.Errorf("inline launch got block [%d,%d), want [0,%d)", lo, hi, inlineThreshold-1)
		}
		ran = true
	})
	if !ran {
		t.Fatal("inline body did not run")
	}
}
