// Package device simulates the GPU execution substrate of the paper
// (Tan et al., ICPP 2023, §2.1, §2.3, §3.1).
//
// No GPU is available to this reproduction, so the substitution works
// as follows (see DESIGN.md §1): kernels launched through a Device
// execute for real on a CPU worker pool — every data-parallel
// algorithm in the dedup pipeline actually runs and is verified for
// bit-exact correctness — while the time they *would* have taken on a
// GPU is charged to a simulated clock using an analytical cost model
// with A100-like parameters (HBM bandwidth, hash throughput, hash
// table op rate, kernel launch latency, PCIe bandwidth).
//
// De-duplication ratios are therefore exact, and throughput numbers
// are deterministic, reproducible, and shaped like the paper's: the
// chunk-size knee appears where per-chunk metadata operations overtake
// transfer savings, and multi-GPU scaling saturates the shared host
// ingest bandwidth exactly as in Figure 6.
package device

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/gpuckpt/gpuckpt/internal/parallel"
)

// Params describes the modeled accelerator.
type Params struct {
	// Name identifies the device model in reports.
	Name string
	// MemBandwidth is the effective device global-memory bandwidth in
	// bytes/second, applied to kernel-internal reads+writes.
	MemBandwidth float64
	// PCIeBandwidth is the device-to-host transfer bandwidth in
	// bytes/second for a single uncontended GPU.
	PCIeBandwidth float64
	// HashRate is the aggregate chunk-hashing throughput in
	// bytes/second across all device cores.
	HashRate float64
	// MapOpRate is the aggregate hash-table operation rate
	// (insert/find) in operations/second.
	MapOpRate float64
	// ChunkSetupRate is the aggregate per-chunk fixed-overhead rate
	// (chunks/second): thread scheduling, offset math and short-read
	// inefficiency charged once per processed chunk. It is what makes
	// very small chunks expensive (§3.3: "throughput performance
	// starts to degrade with chunks smaller than 256 bytes").
	ChunkSetupRate float64
	// KernelLaunchLatency is the fixed cost of submitting one kernel.
	KernelLaunchLatency time.Duration
	// MemCapacity is the device memory size in bytes available to the
	// application (checkpoint record + scratch).
	MemCapacity int64
}

// A100 returns parameters modeled on the NVIDIA A100-40GB GPUs of
// ThetaGPU/Polaris (§3.1): ~1.4 TB/s effective HBM2e bandwidth, ~22
// GB/s effective PCIe gen4 device-to-host, hashing limited to roughly
// half the memory bandwidth (Murmur3 is memory-bound, §2.4), and a
// lock-free map sustaining ~1.5 G ops/s.
func A100() Params {
	return Params{
		Name:                "A100-sim",
		MemBandwidth:        1.4e12,
		PCIeBandwidth:       22e9,
		HashRate:            700e9,
		MapOpRate:           1.5e9,
		ChunkSetupRate:      3e9,
		KernelLaunchLatency: 8 * time.Microsecond,
		MemCapacity:         40 << 30,
	}
}

// Cost describes the modeled work of one kernel launch. Each component
// is charged at the corresponding device rate; the components are
// summed because the pipeline phases inside a fused kernel are
// dependent "waves" (§2.4), not overlapped.
type Cost struct {
	// HashBytes is the number of bytes run through the hash function.
	HashBytes int64
	// MemBytes is kernel-internal global-memory traffic (reads+writes)
	// beyond the hashed bytes, e.g. gather copies and label sweeps.
	MemBytes int64
	// MapOps counts hash-table inserts and lookups.
	MapOps int64
	// ChunkOps counts per-chunk fixed overheads (one per chunk
	// touched by a hashing or gather wave).
	ChunkOps int64
	// UncoalescedPenalty multiplies MemBytes cost when memory accesses
	// do not coalesce (used by the gather ablation, §2.4). Zero means
	// 1.0 (fully coalesced).
	UncoalescedPenalty float64
}

// Add returns the sum of two costs (for fusing kernels).
func (c Cost) Add(o Cost) Cost {
	p := c.UncoalescedPenalty
	if o.UncoalescedPenalty > p {
		p = o.UncoalescedPenalty
	}
	return Cost{
		HashBytes:          c.HashBytes + o.HashBytes,
		MemBytes:           c.MemBytes + o.MemBytes,
		MapOps:             c.MapOps + o.MapOps,
		ChunkOps:           c.ChunkOps + o.ChunkOps,
		UncoalescedPenalty: p,
	}
}

// Duration converts a cost to modeled device time under p, excluding
// launch latency (the Device adds launch latency per Launch call).
func (c Cost) Duration(p Params) time.Duration {
	var secs float64
	if c.HashBytes > 0 {
		secs += float64(c.HashBytes) / p.HashRate
	}
	if c.MemBytes > 0 {
		pen := c.UncoalescedPenalty
		if pen <= 0 {
			pen = 1
		}
		secs += float64(c.MemBytes) * pen / p.MemBandwidth
	}
	if c.MapOps > 0 {
		secs += float64(c.MapOps) / p.MapOpRate
	}
	if c.ChunkOps > 0 && p.ChunkSetupRate > 0 {
		secs += float64(c.ChunkOps) / p.ChunkSetupRate
	}
	return time.Duration(secs * float64(time.Second))
}

// KernelStat accumulates per-kernel-name modeled time for reporting.
type KernelStat struct {
	Launches int64
	Modeled  time.Duration
}

// Device is one simulated GPU owned by one application process. The
// clock, statistics and memory accounting are mutex-guarded so that a
// pipelined checkpoint engine may charge modeled time from its
// background stage while the foreground stage launches kernels; the
// data parallelism still lives *inside* kernel launches.
type Device struct {
	params Params
	pool   *parallel.Pool
	node   *Node

	mu sync.Mutex
	//ckptlint:guardedby mu
	clock time.Duration
	//ckptlint:guardedby mu
	allocated int64
	//ckptlint:guardedby mu
	stats map[string]*KernelStat
}

// New creates a device with the given parameters executing kernels on
// pool. If node is nil the device gets a private, uncontended node.
func New(params Params, pool *parallel.Pool, node *Node) *Device {
	if pool == nil {
		pool = parallel.NewPool(0)
	}
	if node == nil {
		node = NewNode(params.PCIeBandwidth * 4)
	}
	return &Device{
		params: params,
		pool:   pool,
		node:   node,
		stats:  make(map[string]*KernelStat),
	}
}

// Params returns the modeled device parameters.
func (d *Device) Params() Params { return d.params }

// Pool returns the worker pool kernels execute on.
func (d *Device) Pool() *parallel.Pool { return d.pool }

// Node returns the compute node hosting this device.
func (d *Device) Node() *Node { return d.node }

// account adds dur to the clock and the named kernel statistic.
func (d *Device) account(name string, dur time.Duration) {
	d.mu.Lock()
	d.clock += dur
	st := d.stats[name]
	if st == nil {
		st = &KernelStat{}
		d.stats[name] = st
	}
	st.Launches++
	st.Modeled += dur
	d.mu.Unlock()
}

// Launch executes kernel body fn on the device pool, charges the
// modeled cost plus one kernel-launch latency to the device clock, and
// returns the charged duration.
func (d *Device) Launch(name string, c Cost, fn func(p *parallel.Pool)) time.Duration {
	if fn != nil {
		fn(d.pool)
	}
	dur := c.Duration(d.params) + d.params.KernelLaunchLatency
	d.account(name, dur)
	return dur
}

// Charge advances the clock by the modeled cost without executing
// anything (used when the real work happened outside a Launch body)
// and returns the charged duration.
func (d *Device) Charge(name string, c Cost) time.Duration { return d.Launch(name, c, nil) }

// ChargeDuration advances the clock by a pre-computed modeled duration
// (used for work whose rate is not expressed by Cost, e.g. on-device
// compression at a codec-specific rate). No launch latency is added.
func (d *Device) ChargeDuration(name string, dur time.Duration) {
	if dur <= 0 {
		return
	}
	d.account(name, dur)
}

// EstimateTransfer returns the modeled device-to-host duration for n
// bytes under the current contention level, without charging it.
func (d *Device) EstimateTransfer(n int64) time.Duration {
	bw := d.node.EffectiveBandwidth(d.params.PCIeBandwidth)
	return time.Duration(float64(n) / bw * float64(time.Second))
}

// CopyToHost charges the modeled device-to-host transfer of n bytes,
// honoring the node-level contention model, and returns the modeled
// transfer duration.
func (d *Device) CopyToHost(n int64) time.Duration {
	bw := d.node.EffectiveBandwidth(d.params.PCIeBandwidth)
	dur := time.Duration(float64(n) / bw * float64(time.Second))
	d.account("d2h", dur)
	return dur
}

// Elapsed returns the modeled time consumed so far.
func (d *Device) Elapsed() time.Duration {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.clock
}

// ResetClock zeroes the modeled clock and kernel statistics.
func (d *Device) ResetClock() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.clock = 0
	d.stats = make(map[string]*KernelStat)
}

// Stats returns the per-kernel modeled time table.
func (d *Device) Stats() map[string]KernelStat {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make(map[string]KernelStat, len(d.stats))
	for k, v := range d.stats {
		out[k] = *v
	}
	return out
}

// Malloc reserves n bytes of device memory, failing when the modeled
// capacity would be exceeded. This is how the dedup layer honors the
// paper's constraint that "the spare GPU memory available for
// checkpointing is limited" (§2.1).
func (d *Device) Malloc(n int64) error {
	if n < 0 {
		return fmt.Errorf("device: negative allocation %d", n)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.allocated+n > d.params.MemCapacity {
		return fmt.Errorf("device: out of memory: %d + %d > capacity %d",
			d.allocated, n, d.params.MemCapacity)
	}
	d.allocated += n
	return nil
}

// Free releases n bytes of device memory.
func (d *Device) Free(n int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.allocated -= n
	if d.allocated < 0 {
		d.allocated = 0
	}
}

// Allocated returns the currently reserved device memory in bytes.
func (d *Device) Allocated() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.allocated
}

// Node models one compute node: several GPUs share the host-memory
// ingest bandwidth, so concurrent device-to-host transfers contend
// ("multiple GPUs copying data to a shared CPU can impact
// performance", §3.3). The model is deterministic: with k transfers in
// flight each GPU sees min(PCIe, hostIngest/k).
type Node struct {
	hostIngest float64
	// concurrency is read by EffectiveBandwidth from whichever
	// goroutine performs a transfer (the pipelined engine's backend
	// included) while experiments reconfigure it, so it must be atomic.
	//ckptlint:atomic
	concurrency atomic.Int64
}

// NewNode creates a node with the given aggregate host-memory ingest
// bandwidth in bytes/second.
func NewNode(hostIngestBandwidth float64) *Node {
	n := &Node{hostIngest: hostIngestBandwidth}
	n.concurrency.Store(1)
	return n
}

// ThetaGPUNode models one DGX A100 node: 8 GPUs sharing roughly 160
// GB/s of practical host DDR4 write bandwidth (§3.1).
func ThetaGPUNode() *Node { return NewNode(160e9) }

// SetConcurrentTransfers declares how many GPUs on this node transfer
// simultaneously during a checkpoint (the strong-scaling experiments
// checkpoint all ranks at once).
func (n *Node) SetConcurrentTransfers(k int) {
	if k < 1 {
		k = 1
	}
	n.concurrency.Store(int64(k))
}

// ConcurrentTransfers returns the configured transfer concurrency.
func (n *Node) ConcurrentTransfers() int { return int(n.concurrency.Load()) }

// EffectiveBandwidth returns the per-GPU device-to-host bandwidth
// under the current contention level.
func (n *Node) EffectiveBandwidth(pcie float64) float64 {
	shared := n.hostIngest / float64(n.concurrency.Load())
	if shared < pcie {
		return shared
	}
	return pcie
}
