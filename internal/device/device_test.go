package device

import (
	"testing"
	"time"

	"github.com/gpuckpt/gpuckpt/internal/parallel"
)

func testParams() Params {
	return Params{
		Name:                "test",
		MemBandwidth:        1e9,
		PCIeBandwidth:       1e8,
		HashRate:            5e8,
		MapOpRate:           1e6,
		KernelLaunchLatency: 10 * time.Microsecond,
		MemCapacity:         1 << 20,
	}
}

func TestCostDuration(t *testing.T) {
	p := testParams()
	cases := []struct {
		cost Cost
		want time.Duration
	}{
		{Cost{}, 0},
		{Cost{HashBytes: 5e8}, time.Second},
		{Cost{MemBytes: 1e9}, time.Second},
		{Cost{MapOps: 1e6}, time.Second},
		{Cost{MemBytes: 1e9, UncoalescedPenalty: 2}, 2 * time.Second},
		{Cost{HashBytes: 5e8, MemBytes: 1e9, MapOps: 1e6}, 3 * time.Second},
	}
	for i, c := range cases {
		got := c.cost.Duration(p)
		if diff := got - c.want; diff < -time.Millisecond || diff > time.Millisecond {
			t.Fatalf("case %d: duration %v want %v", i, got, c.want)
		}
	}
}

func TestCostAdd(t *testing.T) {
	a := Cost{HashBytes: 1, MemBytes: 2, MapOps: 3, UncoalescedPenalty: 1.5}
	b := Cost{HashBytes: 10, MemBytes: 20, MapOps: 30, UncoalescedPenalty: 4}
	s := a.Add(b)
	if s.HashBytes != 11 || s.MemBytes != 22 || s.MapOps != 33 || s.UncoalescedPenalty != 4 {
		t.Fatalf("Add = %+v", s)
	}
}

func TestLaunchAdvancesClockAndRunsBody(t *testing.T) {
	d := New(testParams(), parallel.NewPool(2), nil)
	ran := false
	d.Launch("k", Cost{MapOps: 1e6}, func(p *parallel.Pool) {
		if p == nil {
			t.Error("nil pool passed to kernel body")
		}
		ran = true
	})
	if !ran {
		t.Fatal("kernel body did not run")
	}
	want := time.Second + 10*time.Microsecond
	if d.Elapsed() != want {
		t.Fatalf("elapsed %v want %v", d.Elapsed(), want)
	}
	st := d.Stats()["k"]
	if st.Launches != 1 || st.Modeled != want {
		t.Fatalf("stats %+v", st)
	}
}

func TestChargeWithoutBody(t *testing.T) {
	d := New(testParams(), nil, nil)
	d.Charge("x", Cost{HashBytes: 5e8})
	if d.Elapsed() <= time.Second {
		t.Fatalf("charge did not advance clock: %v", d.Elapsed())
	}
}

func TestCopyToHostUncontended(t *testing.T) {
	p := testParams()
	// Private node default ingest is 4x PCIe, so PCIe is the limiter.
	d := New(p, nil, nil)
	dur := d.CopyToHost(1e8)
	if dur != time.Second {
		t.Fatalf("transfer took %v want 1s", dur)
	}
	if d.Elapsed() != time.Second {
		t.Fatalf("clock %v want 1s", d.Elapsed())
	}
}

func TestCopyToHostContention(t *testing.T) {
	p := testParams()
	node := NewNode(2e8) // host ingest = 2x PCIe
	node.SetConcurrentTransfers(8)
	d := New(p, nil, node)
	// Effective bw = min(1e8, 2e8/8) = 2.5e7 -> 4s for 1e8 bytes.
	dur := d.CopyToHost(1e8)
	if dur != 4*time.Second {
		t.Fatalf("contended transfer took %v want 4s", dur)
	}
	if node.ConcurrentTransfers() != 8 {
		t.Fatal("concurrency not recorded")
	}
	node.SetConcurrentTransfers(0)
	if node.ConcurrentTransfers() != 1 {
		t.Fatal("concurrency not clamped to 1")
	}
}

func TestResetClock(t *testing.T) {
	d := New(testParams(), nil, nil)
	d.Charge("k", Cost{MapOps: 1e6})
	d.ResetClock()
	if d.Elapsed() != 0 || len(d.Stats()) != 0 {
		t.Fatal("reset did not clear clock/stats")
	}
}

func TestMallocCapacity(t *testing.T) {
	d := New(testParams(), nil, nil) // capacity 1 MiB
	if err := d.Malloc(1 << 19); err != nil {
		t.Fatalf("first alloc failed: %v", err)
	}
	if err := d.Malloc(1 << 19); err != nil {
		t.Fatalf("second alloc failed: %v", err)
	}
	if err := d.Malloc(1); err == nil {
		t.Fatal("over-capacity alloc succeeded")
	}
	if d.Allocated() != 1<<20 {
		t.Fatalf("allocated %d want %d", d.Allocated(), 1<<20)
	}
	d.Free(1 << 19)
	if err := d.Malloc(1 << 18); err != nil {
		t.Fatalf("alloc after free failed: %v", err)
	}
	d.Free(1 << 30) // over-free clamps to zero
	if d.Allocated() != 0 {
		t.Fatalf("allocated %d after over-free", d.Allocated())
	}
	if err := d.Malloc(-1); err == nil {
		t.Fatal("negative alloc succeeded")
	}
}

func TestA100ParamsSane(t *testing.T) {
	p := A100()
	if p.MemBandwidth < p.PCIeBandwidth {
		t.Fatal("HBM slower than PCIe")
	}
	if p.HashRate > p.MemBandwidth {
		t.Fatal("hashing faster than memory bandwidth")
	}
	if p.MemCapacity < 16<<30 {
		t.Fatal("A100 capacity too small")
	}
	if p.KernelLaunchLatency <= 0 {
		t.Fatal("zero launch latency")
	}
}

func TestThetaGPUNodeContention(t *testing.T) {
	p := A100()
	n := ThetaGPUNode()
	solo := n.EffectiveBandwidth(p.PCIeBandwidth)
	n.SetConcurrentTransfers(8)
	contended := n.EffectiveBandwidth(p.PCIeBandwidth)
	if contended >= solo {
		t.Fatalf("8-way contention did not reduce bandwidth: %v vs %v", contended, solo)
	}
}

func TestChargeDuration(t *testing.T) {
	d := New(testParams(), nil, nil)
	d.ChargeDuration("compress", 2*time.Second)
	d.ChargeDuration("compress", 0) // no-op
	d.ChargeDuration("compress", -time.Second)
	if d.Elapsed() != 2*time.Second {
		t.Fatalf("elapsed %v", d.Elapsed())
	}
	if st := d.Stats()["compress"]; st.Launches != 1 || st.Modeled != 2*time.Second {
		t.Fatalf("stats %+v", st)
	}
}

func TestEstimateTransferMatchesCopy(t *testing.T) {
	d := New(testParams(), nil, nil)
	est := d.EstimateTransfer(1e8)
	before := d.Elapsed()
	got := d.CopyToHost(1e8)
	if est != got {
		t.Fatalf("estimate %v != actual %v", est, got)
	}
	if d.Elapsed()-before != got {
		t.Fatal("estimate charged the clock")
	}
}
