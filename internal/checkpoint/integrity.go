package checkpoint

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"syscall"
)

// On-disk integrity: every diff file the FileStore writes ends with an
// 8-byte footer — a magic marker plus the CRC32C (Castagnoli) of every
// byte before it. The footer is storage-local: it is written when a
// diff is committed to disk and stripped before the bytes are decoded
// or served over the wire, so the wire format and the Record are
// unaffected. A file whose footer fails verification is surfaced as a
// typed *CorruptError (matching ErrCorrupt via errors.Is) — bit rot is
// detected at read time, never silently restored.
//
// Files without a footer (written before checksumming existed) are
// accepted as legacy and pass through unverified; Decode's structural
// validation is their only guard. The odds of corruption forging the
// footer magic are 2^-32 and a forged magic still has to survive the
// CRC check, so the fallback does not weaken detection of real rot.
const (
	// FooterSize is the length of the integrity footer: 4-byte magic +
	// 4-byte CRC32C, both little-endian like the diff format.
	FooterSize = 8

	footerMagic = 0x46_4b_43_47 // "GCKF" little-endian
)

// castagnoli matches the polynomial of the wire package's push
// checksum, so a diff's stored footer CRC equals the content hash the
// v3 PUSH precondition compares.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// DiffChecksum returns the CRC32C recorded in a diff file's footer for
// the given encoded diff bytes.
func DiffChecksum(encoded []byte) uint32 { return crc32.Checksum(encoded, castagnoli) }

// AppendFooter returns encoded with its integrity footer appended.
func AppendFooter(encoded []byte) []byte {
	out := make([]byte, len(encoded)+FooterSize)
	copy(out, encoded)
	binary.LittleEndian.PutUint32(out[len(encoded):], footerMagic)
	binary.LittleEndian.PutUint32(out[len(encoded)+4:], DiffChecksum(encoded))
	return out
}

// footerFor serializes the footer for encoded bytes whose CRC32C has
// already been computed incrementally.
func footerFor(crc uint32) [FooterSize]byte {
	var f [FooterSize]byte
	binary.LittleEndian.PutUint32(f[0:], footerMagic)
	binary.LittleEndian.PutUint32(f[4:], crc)
	return f
}

// SplitFooter separates a raw diff file image into the encoded diff
// and its verification state. verified reports that a footer was
// present and its CRC matched; a missing footer (legacy file) returns
// the bytes unverified with no error; a present footer with a
// mismatching CRC returns ErrChecksumMismatch.
func SplitFooter(raw []byte) (encoded []byte, verified bool, err error) {
	if len(raw) < FooterSize || binary.LittleEndian.Uint32(raw[len(raw)-FooterSize:]) != footerMagic {
		return raw, false, nil
	}
	encoded = raw[:len(raw)-FooterSize]
	want := binary.LittleEndian.Uint32(raw[len(raw)-4:])
	if got := DiffChecksum(encoded); got != want {
		return nil, false, fmt.Errorf("%w: footer records %08x, data hashes to %08x",
			ErrChecksumMismatch, want, got)
	}
	return encoded, true, nil
}

// Integrity errors.
var (
	// ErrCorrupt matches (via errors.Is) every *CorruptError: a stored
	// diff failed its integrity check and must not be restored.
	ErrCorrupt = errors.New("checkpoint: corrupt diff")
	// ErrChecksumMismatch reports a diff file whose footer CRC does not
	// cover its bytes. It wraps into a *CorruptError at the FileStore
	// surface.
	ErrChecksumMismatch = errors.New("checkpoint: diff checksum mismatch")
	// ErrSimulatedCrash marks an error injected by a fault-injection
	// hook that models the process dying at that instant: the FileStore
	// propagates it WITHOUT running its usual cleanup (temp files stay,
	// partial state stays), exactly as a real crash would leave the
	// directory. Only the internal/faults seams return it.
	ErrSimulatedCrash = errors.New("checkpoint: simulated crash")
)

// CorruptError is a stored diff that failed verification: a checksum
// mismatch, an undecodable payload, or an id that does not match its
// file name. It matches ErrCorrupt via errors.Is. Scrub quarantines
// the file; a client can then repair it from a ckptd peer.
type CorruptError struct {
	Path string
	Ckpt int
	Err  error
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("checkpoint: diff %d (%s) is corrupt: %v", e.Ckpt, e.Path, e.Err)
}

// Unwrap exposes the underlying cause to errors.Is/As.
func (e *CorruptError) Unwrap() error { return e.Err }

// Is lets errors.Is match any CorruptError against ErrCorrupt.
func (e *CorruptError) Is(target error) bool { return target == ErrCorrupt }

// IOHooks intercepts FileStore I/O at its failure points. Every field
// is optional; a nil hook struct (the default) costs one nil check per
// operation. This is the storage seam of the fault-injection framework
// (internal/faults): short and torn writes, rename-time crashes,
// fsync failures and read-time bit rot are all injected here rather
// than by patching the filesystem.
type IOHooks struct {
	// WrapDiffWrite wraps the writer a diff is encoded into; the
	// returned writer can truncate, error (ENOSPC) or tear the stream.
	WrapDiffWrite func(ck int, w io.Writer) io.Writer
	// BeforeSync runs before a temp file is fsynced.
	BeforeSync func(path string) error
	// BeforeRename runs between the temp file's fsync+close and the
	// rename that publishes it.
	BeforeRename func(tmp, final string) error
	// AfterRename runs between the rename and the directory fsync that
	// makes it crash-durable.
	AfterRename func(final string) error
	// OnDiffRead may transform (corrupt) the raw bytes read from a
	// diff file before verification sees them.
	OnDiffRead func(ck int, raw []byte) []byte
}

// crcWriter forwards writes while accumulating the CRC32C of every
// byte successfully written, so the footer is computed in the same
// pass as the encode (no second read of the data).
type crcWriter struct {
	w   io.Writer
	crc uint32
	n   int64
}

func (cw *crcWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.crc = crc32.Update(cw.crc, castagnoli, p[:n])
	cw.n += int64(n)
	return n, err
}

// syncDir fsyncs a directory, making a just-renamed file durable
// across power loss. Filesystems that refuse directory fsync (some
// network mounts) report EINVAL or ENOTSUP, which is treated as
// success. The raw errno values must be matched — a *PathError
// wrapping syscall.EINVAL never matches os.ErrInvalid.
func syncDir(dir string) error {
	f, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("checkpoint: opening %s for sync: %w", dir, err)
	}
	defer f.Close()
	if err := f.Sync(); err != nil && !errors.Is(err, syscall.EINVAL) && !errors.Is(err, errors.ErrUnsupported) {
		return fmt.Errorf("checkpoint: syncing %s: %w", dir, err)
	}
	return nil
}
