package checkpoint

import (
	"strings"
	"testing"
)

// TestInstallSpanAdoptsForwardBase covers the replication resync case
// CommitManifest cannot express: a lagging mirror (here holding diffs
// [0,2)) installs a post-fold span [5,8) whose baseline lies beyond
// its current length, and the store's committed state becomes exactly
// that span — including after a reopen.
func TestInstallSpanAdoptsForwardBase(t *testing.T) {
	dir := t.TempDir()
	fs, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	for ck := 0; ck < 2; ck++ {
		if err := fs.Append(storeDiff(ck, byte(ck+1))); err != nil {
			t.Fatal(err)
		}
	}
	span := []*Diff{storeDiff(5, 50), storeDiff(6, 60), storeDiff(7, 70)}
	if err := fs.InstallSpan(5, span); err != nil {
		t.Fatal(err)
	}
	check := func(fs *FileStore, label string) {
		t.Helper()
		if got := fs.Base(); got != 5 {
			t.Fatalf("%s: base = %d, want 5", label, got)
		}
		n, err := fs.Len()
		if err != nil || n != 8 {
			t.Fatalf("%s: len = %d (%v), want 8", label, n, err)
		}
		rec, err := fs.Load()
		if err != nil {
			t.Fatal(err)
		}
		for i, tag := range []byte{50, 60, 70} {
			got, err := rec.Restore(i)
			if err != nil {
				t.Fatal(err)
			}
			if got[0] != tag {
				t.Fatalf("%s: restore %d = tag %d, want %d", label, i, got[0], tag)
			}
		}
	}
	check(fs, "installed")
	// The pre-span diffs must be pruned, not stranded.
	files, err := fs.Files()
	if err != nil || len(files) != 3 {
		t.Fatalf("files after install: %v %v", files, err)
	}
	// Appending continues from the span's end.
	if err := fs.Append(storeDiff(8, 80)); err != nil {
		t.Fatal(err)
	}
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}
	fs2, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer fs2.Close()
	if n, _ := fs2.Len(); n != 9 {
		t.Fatalf("reopened len = %d, want 9", n)
	}
	if fs2.Base() != 5 {
		t.Fatalf("reopened base = %d, want 5", fs2.Base())
	}
}

// TestInstallSpanOverwritesDivergedSuffix: a same-base install
// replaces the stored bytes — the resync path for a mirror whose
// suffix diverged from the primary after a fold rewrite.
func TestInstallSpanOverwritesDivergedSuffix(t *testing.T) {
	fs, err := NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	for ck := 0; ck < 3; ck++ {
		if err := fs.Append(storeDiff(ck, 1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := fs.InstallSpan(0, []*Diff{storeDiff(0, 9), storeDiff(1, 8), storeDiff(2, 7)}); err != nil {
		t.Fatal(err)
	}
	if fs.Base() != 0 {
		t.Fatalf("base moved to %d on same-base install", fs.Base())
	}
	rec, err := fs.Load()
	if err != nil {
		t.Fatal(err)
	}
	for i, tag := range []byte{9, 8, 7} {
		got, err := rec.Restore(i)
		if err != nil {
			t.Fatal(err)
		}
		if got[0] != tag {
			t.Fatalf("restore %d = tag %d, want %d", i, got[0], tag)
		}
	}
}

func TestInstallSpanValidation(t *testing.T) {
	fs, err := NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	if err := fs.InstallSpan(3, nil); err == nil || !strings.Contains(err.Error(), "no diffs") {
		t.Fatalf("empty span: %v", err)
	}
	// Non-contiguous ids.
	if err := fs.InstallSpan(3, []*Diff{storeDiff(3, 1), storeDiff(5, 2)}); err == nil {
		t.Fatal("gap in span accepted")
	}
	// First id not at base.
	if err := fs.InstallSpan(3, []*Diff{storeDiff(4, 1)}); err == nil {
		t.Fatal("span starting past base accepted")
	}
	// Shift reference below the span baseline.
	d := storeDiff(4, 1)
	d.Method = MethodList
	d.ShiftDupl = []ShiftRegion{{SrcCkpt: 2}}
	if err := fs.InstallSpan(4, []*Diff{d}); err == nil {
		t.Fatal("span with sub-baseline shift reference accepted")
	}
	// Baseline behind an already committed one.
	if err := fs.InstallSpan(5, []*Diff{storeDiff(5, 1), storeDiff(6, 2)}); err != nil {
		t.Fatal(err)
	}
	if err := fs.InstallSpan(4, []*Diff{storeDiff(4, 1), storeDiff(5, 2)}); err == nil {
		t.Fatal("backwards baseline accepted")
	}
}
