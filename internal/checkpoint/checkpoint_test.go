package checkpoint

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/gpuckpt/gpuckpt/internal/merkle"
	"github.com/gpuckpt/gpuckpt/internal/parallel"
)

func TestMethodString(t *testing.T) {
	wants := map[Method]string{
		MethodFull: "Full", MethodBasic: "Basic", MethodList: "List", MethodTree: "Tree",
	}
	for m, w := range wants {
		if m.String() != w {
			t.Fatalf("%d.String()=%q want %q", m, m.String(), w)
		}
	}
	if Method(99).String() == "" {
		t.Fatal("unknown method has empty name")
	}
	if len(Methods()) != 4 {
		t.Fatal("Methods() incomplete")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	d := &Diff{
		Method:    MethodTree,
		CkptID:    3,
		DataLen:   1000,
		ChunkSize: 64,
		FirstOcur: []uint32{1, 7, 9},
		ShiftDupl: []ShiftRegion{{Node: 12, SrcNode: 4, SrcCkpt: 1}, {Node: 20, SrcNode: 20, SrcCkpt: 0}},
		Data:      bytes.Repeat([]byte{0xee}, 100),
	}
	var buf bytes.Buffer
	if err := d.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	if int64(buf.Len()) != d.TotalBytes() {
		t.Fatalf("encoded %d bytes, TotalBytes=%d", buf.Len(), d.TotalBytes())
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Method != d.Method || got.CkptID != d.CkptID || got.DataLen != d.DataLen ||
		got.ChunkSize != d.ChunkSize {
		t.Fatalf("header mismatch: %+v", got)
	}
	if len(got.FirstOcur) != 3 || got.FirstOcur[1] != 7 {
		t.Fatalf("first-ocur mismatch: %v", got.FirstOcur)
	}
	if len(got.ShiftDupl) != 2 || got.ShiftDupl[0] != d.ShiftDupl[0] {
		t.Fatalf("shift-dupl mismatch: %v", got.ShiftDupl)
	}
	if !bytes.Equal(got.Data, d.Data) {
		t.Fatal("data mismatch")
	}
}

func TestEncodeDecodeBasicWithBitmap(t *testing.T) {
	d := &Diff{
		Method:    MethodBasic,
		CkptID:    1,
		DataLen:   320,
		ChunkSize: 64,
		Bitmap:    []byte{0b10101},
		Data:      bytes.Repeat([]byte{1}, 192),
	}
	var buf bytes.Buffer
	if err := d.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bitmap, d.Bitmap) || !bytes.Equal(got.Data, d.Data) {
		t.Fatal("basic diff round trip failed")
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode(bytes.NewReader(nil)); err == nil {
		t.Fatal("decode of empty input succeeded")
	}
	bad := make([]byte, headerSize)
	if _, err := Decode(bytes.NewReader(bad)); err == nil {
		t.Fatal("decode with bad magic succeeded")
	}
	var buf bytes.Buffer
	d := &Diff{Method: MethodFull, DataLen: 10, ChunkSize: 4, Data: make([]byte, 10)}
	if err := d.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	b[4] = 99 // version
	if _, err := Decode(bytes.NewReader(b)); err == nil {
		t.Fatal("decode with bad version succeeded")
	}
	// Truncated data section.
	buf.Reset()
	_ = d.Encode(&buf)
	if _, err := Decode(bytes.NewReader(buf.Bytes()[:buf.Len()-3])); err == nil {
		t.Fatal("decode of truncated diff succeeded")
	}
}

func TestBitmapOps(t *testing.T) {
	f := func(raw uint16) bool {
		n := int(raw)%200 + 1
		bm := make([]byte, BitmapLen(n))
		for i := 2; i < n; i += 3 {
			BitmapSet(bm, i)
		}
		for i := 0; i < n; i++ {
			want := i >= 2 && (i-2)%3 == 0
			if BitmapGet(bm, i) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	if BitmapLen(0) != 0 || BitmapLen(1) != 1 || BitmapLen(8) != 1 || BitmapLen(9) != 2 {
		t.Fatal("BitmapLen wrong")
	}
}

// buildState is a tiny helper making a deterministic buffer.
func buildState(n int, tag byte) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i)*3 + tag
	}
	return b
}

func TestRecordFullMethodRoundTrip(t *testing.T) {
	r := NewRecord()
	states := [][]byte{buildState(100, 1), buildState(100, 2), buildState(100, 3)}
	for i, s := range states {
		data := make([]byte, len(s))
		copy(data, s)
		d := &Diff{Method: MethodFull, CkptID: uint32(i), DataLen: 100, ChunkSize: 16, Data: data}
		if err := r.Append(d); err != nil {
			t.Fatal(err)
		}
	}
	for i, s := range states {
		got, err := r.Restore(i)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, s) {
			t.Fatalf("restore %d mismatch", i)
		}
	}
	if r.Len() != 3 || r.ChunkSize() != 16 || r.DataLen() != 100 {
		t.Fatal("record geometry wrong")
	}
	if r.TotalBytes() <= 300 {
		t.Fatalf("TotalBytes=%d implausible", r.TotalBytes())
	}
}

func TestRecordBasicMethod(t *testing.T) {
	r := NewRecord()
	base := buildState(100, 0) // 7 chunks of 16 (last short)
	d0 := &Diff{Method: MethodFull, CkptID: 0, DataLen: 100, ChunkSize: 16, Data: append([]byte(nil), base...)}
	if err := r.Append(d0); err != nil {
		t.Fatal(err)
	}
	// Change chunks 1 and 6 (the short tail).
	next := append([]byte(nil), base...)
	for i := 16; i < 32; i++ {
		next[i] = 0xAA
	}
	for i := 96; i < 100; i++ {
		next[i] = 0xBB
	}
	bm := make([]byte, BitmapLen(7))
	BitmapSet(bm, 1)
	BitmapSet(bm, 6)
	data := append(append([]byte(nil), next[16:32]...), next[96:100]...)
	d1 := &Diff{Method: MethodBasic, CkptID: 1, DataLen: 100, ChunkSize: 16, Bitmap: bm, Data: data}
	if err := r.Append(d1); err != nil {
		t.Fatal(err)
	}
	got, err := r.Restore(1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, next) {
		t.Fatal("basic restore mismatch")
	}
}

func TestRecordTreeMethodWithShifts(t *testing.T) {
	// Geometry: 8 chunks of 8 bytes, 64-byte buffer. Tree has 15
	// nodes; leaves are nodes 7..14 (power of two, no rotation).
	const chunk, n = 8, 64
	geom := merkle.NewGeometry(8)
	if geom.LeafNode(0) != 7 {
		t.Fatal("unexpected geometry")
	}
	base := buildState(n, 5)
	r := NewRecord()
	// Checkpoint 0: one first-ocur region at the root (node 0).
	d0 := &Diff{Method: MethodTree, CkptID: 0, DataLen: n, ChunkSize: chunk,
		FirstOcur: []uint32{0}, Data: append([]byte(nil), base...)}
	if err := r.Append(d0); err != nil {
		t.Fatal(err)
	}
	// Checkpoint 1: chunks 0-1 get new content (region node 3),
	// chunks 2-3 become a shifted copy of checkpoint 0's chunks 0-1
	// (dst node 4, src node 3 of ckpt 0), rest fixed.
	next := append([]byte(nil), base...)
	newBytes := bytes.Repeat([]byte{0xCD}, 16)
	copy(next[0:16], newBytes)
	copy(next[16:32], base[0:16])
	d1 := &Diff{Method: MethodTree, CkptID: 1, DataLen: n, ChunkSize: chunk,
		FirstOcur: []uint32{3},
		ShiftDupl: []ShiftRegion{{Node: 4, SrcNode: 3, SrcCkpt: 0}},
		Data:      newBytes}
	if err := r.Append(d1); err != nil {
		t.Fatal(err)
	}
	got, err := r.Restore(1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, next) {
		t.Fatalf("tree restore mismatch:\n got %x\nwant %x", got, next)
	}
	// Checkpoint 2: chunks 4-5 become a same-checkpoint shifted copy
	// of new chunks 6-7.
	third := append([]byte(nil), next...)
	newTail := bytes.Repeat([]byte{0x42}, 16)
	copy(third[48:64], newTail)
	copy(third[32:48], newTail)
	d2 := &Diff{Method: MethodTree, CkptID: 2, DataLen: n, ChunkSize: chunk,
		FirstOcur: []uint32{6},
		ShiftDupl: []ShiftRegion{{Node: 5, SrcNode: 6, SrcCkpt: 2}},
		Data:      newTail}
	if err := r.Append(d2); err != nil {
		t.Fatal(err)
	}
	got, err = r.RestoreLatest()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, third) {
		t.Fatalf("same-ckpt shift restore mismatch:\n got %x\nwant %x", got, third)
	}
	// Sub-region resolution: restore a region referencing a *child*
	// of a stored region (node 8 = chunk 1 inside ckpt 0's root).
	fourth := append([]byte(nil), third...)
	copy(fourth[0:8], base[8:16])
	d3 := &Diff{Method: MethodTree, CkptID: 3, DataLen: n, ChunkSize: chunk,
		ShiftDupl: []ShiftRegion{{Node: 7, SrcNode: 8, SrcCkpt: 0}}}
	if err := r.Append(d3); err != nil {
		t.Fatal(err)
	}
	got, err = r.RestoreLatest()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, fourth) {
		t.Fatalf("sub-region restore mismatch:\n got %x\nwant %x", got, fourth)
	}
}

func TestRecordAppendValidation(t *testing.T) {
	r := NewRecord()
	d0 := &Diff{Method: MethodFull, CkptID: 0, DataLen: 100, ChunkSize: 16, Data: make([]byte, 100)}
	if err := r.Append(d0); err != nil {
		t.Fatal(err)
	}
	bad := []*Diff{
		{Method: MethodFull, CkptID: 2, DataLen: 100, ChunkSize: 16, Data: make([]byte, 100)}, // out of order
		{Method: MethodFull, CkptID: 1, DataLen: 99, ChunkSize: 16, Data: make([]byte, 99)},   // wrong length
		{Method: MethodFull, CkptID: 1, DataLen: 100, ChunkSize: 8, Data: make([]byte, 100)},  // wrong chunk
		{Method: MethodFull, CkptID: 1, DataLen: 100, ChunkSize: 16, Data: make([]byte, 50)},  // short data
		{Method: MethodTree, CkptID: 1, DataLen: 100, ChunkSize: 16, FirstOcur: []uint32{999}},
		{Method: Method(42), CkptID: 1, DataLen: 100, ChunkSize: 16},
	}
	for i, d := range bad {
		if err := r.Append(d); err == nil {
			t.Fatalf("bad diff %d accepted", i)
		}
	}
	if r.Len() != 1 {
		t.Fatalf("record grew on failed appends: %d", r.Len())
	}
}

func TestRecordRestoreErrors(t *testing.T) {
	r := NewRecord()
	if _, err := r.Restore(0); err == nil {
		t.Fatal("restore of empty record succeeded")
	}
	d0 := &Diff{Method: MethodFull, CkptID: 0, DataLen: 10, ChunkSize: 4, Data: make([]byte, 10)}
	if err := r.Append(d0); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Restore(-1); err == nil {
		t.Fatal("negative restore succeeded")
	}
	if _, err := r.Restore(1); err == nil {
		t.Fatal("future restore succeeded")
	}
	if err := r.Apply(make([]byte, 5), 0); err == nil {
		t.Fatal("apply with wrong state length succeeded")
	}
	// A shift referencing a future checkpoint is rejected at Append
	// time, so a poisoned diff can never enter the lineage.
	d1 := &Diff{Method: MethodTree, CkptID: 1, DataLen: 10, ChunkSize: 4,
		ShiftDupl: []ShiftRegion{{Node: 3, SrcNode: 3, SrcCkpt: 9}}}
	if err := r.Append(d1); err == nil {
		t.Fatal("diff with dangling shift reference accepted")
	}
	// A source region shorter than its destination still fails at
	// Restore, where resolution happens: node 0 is the root (10 bytes),
	// node 3 a single leaf chunk.
	d1 = &Diff{Method: MethodTree, CkptID: 1, DataLen: 10, ChunkSize: 4,
		ShiftDupl: []ShiftRegion{{Node: 0, SrcNode: 3, SrcCkpt: 0}}}
	if err := r.Append(d1); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Restore(1); err == nil {
		t.Fatal("restore with undersized source region succeeded")
	}
}

// TestDecodeRobustness feeds random garbage and mutated valid diffs to
// Decode: it must return errors, never panic or hang.
func TestDecodeRobustness(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	// Pure garbage of various lengths.
	for i := 0; i < 200; i++ {
		n := rng.Intn(200)
		b := make([]byte, n)
		rng.Read(b)
		if d, err := Decode(bytes.NewReader(b)); err == nil {
			// Random bytes matching the magic+version is astronomically
			// unlikely; a nil error here means validation is too lax.
			t.Fatalf("garbage of %d bytes decoded: %+v", n, d)
		}
	}
	// Bit-flipped valid encodings: decode may succeed (the flip could
	// land in data) but must never panic.
	valid := &Diff{
		Method: MethodTree, CkptID: 0, DataLen: 600, ChunkSize: 64,
		FirstOcur: []uint32{0},
		Data:      bytes.Repeat([]byte{7}, 600),
	}
	var enc bytes.Buffer
	if err := valid.Encode(&enc); err != nil {
		t.Fatal(err)
	}
	orig := enc.Bytes()
	for i := 0; i < 300; i++ {
		b := append([]byte(nil), orig...)
		pos := rng.Intn(len(b))
		b[pos] ^= 1 << rng.Intn(8)
		d, err := Decode(bytes.NewReader(b))
		if err != nil {
			continue
		}
		// If it decoded, appending to a record must also not panic.
		rec := NewRecord()
		_ = rec.Append(d)
	}
}

// TestRecordParallelRestoreMatchesSequential checks the §5 parallel
// reconstruction produces identical bytes.
func TestRecordParallelRestoreMatchesSequential(t *testing.T) {
	const chunk, n = 16, 16 * 64
	base := make([]byte, n)
	rand.New(rand.NewSource(77)).Read(base)
	build := func() *Record {
		rng := rand.New(rand.NewSource(78)) // same bytes for both builds
		r := NewRecord()
		d0 := &Diff{Method: MethodTree, CkptID: 0, DataLen: n, ChunkSize: chunk,
			FirstOcur: []uint32{0}, Data: append([]byte(nil), base...)}
		if err := r.Append(d0); err != nil {
			t.Fatal(err)
		}
		// A diff with many single-leaf regions to exercise the
		// parallel path (>= 16 regions).
		geom := merkle.NewGeometry(64)
		var firsts []uint32
		var data []byte
		for c := 0; c < 32; c++ {
			firsts = append(firsts, uint32(geom.LeafNode(c*2)))
			piece := make([]byte, chunk)
			rng.Read(piece)
			data = append(data, piece...)
		}
		d1 := &Diff{Method: MethodTree, CkptID: 1, DataLen: n, ChunkSize: chunk,
			FirstOcur: firsts, Data: data}
		if err := r.Append(d1); err != nil {
			t.Fatal(err)
		}
		return r
	}
	seqRec := build()
	seq, err := seqRec.Restore(1)
	if err != nil {
		t.Fatal(err)
	}
	parRec := build()
	parRec.SetPool(parallel.NewPool(8))
	par, err := parRec.Restore(1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(seq, par) {
		t.Fatal("parallel restore differs from sequential")
	}
}

func BenchmarkEncodeDecode(b *testing.B) {
	d := &Diff{
		Method: MethodTree, CkptID: 0, DataLen: 1 << 20, ChunkSize: 128,
		FirstOcur: []uint32{0},
		Data:      bytes.Repeat([]byte{0x5a}, 1<<20),
	}
	b.SetBytes(d.TotalBytes())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := d.Encode(&buf); err != nil {
			b.Fatal(err)
		}
		if _, err := Decode(&buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRestoreParallelVsSequential(b *testing.B) {
	rng := rand.New(rand.NewSource(62))
	const chunk = 128
	const n = chunk * 8192 // 1 MiB
	base := make([]byte, n)
	rng.Read(base)
	build := func() *Record {
		r := NewRecord()
		d0 := &Diff{Method: MethodTree, CkptID: 0, DataLen: n, ChunkSize: chunk,
			FirstOcur: []uint32{0}, Data: append([]byte(nil), base...)}
		if err := r.Append(d0); err != nil {
			b.Fatal(err)
		}
		geom := merkle.NewGeometry(8192)
		var firsts []uint32
		var data []byte
		for c := 0; c < 2048; c++ {
			firsts = append(firsts, uint32(geom.LeafNode(c*4)))
			piece := make([]byte, chunk)
			rng.Read(piece)
			data = append(data, piece...)
		}
		d1 := &Diff{Method: MethodTree, CkptID: 1, DataLen: n, ChunkSize: chunk,
			FirstOcur: firsts, Data: data}
		if err := r.Append(d1); err != nil {
			b.Fatal(err)
		}
		return r
	}
	b.Run("sequential", func(b *testing.B) {
		r := build()
		b.SetBytes(n)
		for i := 0; i < b.N; i++ {
			if _, err := r.Restore(1); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("parallel", func(b *testing.B) {
		r := build()
		r.SetPool(parallel.NewPool(0))
		b.SetBytes(n)
		for i := 0; i < b.N; i++ {
			if _, err := r.Restore(1); err != nil {
				b.Fatal(err)
			}
		}
	})
}
