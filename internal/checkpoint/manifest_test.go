package checkpoint

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func TestManifestRoundTrip(t *testing.T) {
	cases := []Manifest{
		{},
		{Base: 0, Generation: 1},
		{Base: 7, Generation: 42},
		{Base: 8, Generation: 3, Pins: []uint32{8, 12, 60}},
	}
	for _, m := range cases {
		b, err := m.Encode()
		if err != nil {
			t.Fatalf("%+v: %v", m, err)
		}
		got, err := DecodeManifest(b)
		if err != nil {
			t.Fatalf("%+v: %v", m, err)
		}
		if !reflect.DeepEqual(*got, m) {
			t.Fatalf("round trip: got %+v, want %+v", *got, m)
		}
	}
}

func TestManifestEncodeRejectsInvalid(t *testing.T) {
	cases := []struct {
		name string
		m    Manifest
	}{
		{"pin below base", Manifest{Base: 10, Pins: []uint32{5}}},
		{"unsorted pins", Manifest{Pins: []uint32{9, 3}}},
		{"duplicate pins", Manifest{Pins: []uint32{3, 3}}},
	}
	for _, tc := range cases {
		if _, err := tc.m.Encode(); err == nil {
			t.Errorf("%s: encoded", tc.name)
		}
	}
}

func TestManifestDecodeDefensive(t *testing.T) {
	valid, err := (&Manifest{Base: 2, Generation: 1, Pins: []uint32{4}}).Encode()
	if err != nil {
		t.Fatal(err)
	}
	mutate := func(f func(b []byte) []byte) []byte {
		b := append([]byte(nil), valid...)
		return f(b)
	}
	cases := []struct {
		name string
		b    []byte
	}{
		{"empty", nil},
		{"truncated header", valid[:manifestHdrSize-1]},
		{"bad magic", mutate(func(b []byte) []byte { b[0] ^= 0xFF; return b })},
		{"bad version", mutate(func(b []byte) []byte { b[4] = 99; return b })},
		{"pin count over payload", mutate(func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[17:], 1<<30)
			return b
		})},
		{"trailing garbage", append(append([]byte(nil), valid...), 0)},
		{"pin below base", mutate(func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[manifestHdrSize:], 1)
			return b
		})},
	}
	for _, tc := range cases {
		if _, err := DecodeManifest(tc.b); err == nil {
			t.Errorf("%s: decoded", tc.name)
		}
	}
}

func TestManifestFileIO(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, ManifestFileName)
	want := &Manifest{Base: 5, Generation: 2, Pins: []uint32{6, 9}}
	if err := WriteManifestFile(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := ReadManifestFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %+v, want %+v", got, want)
	}
	// The atomic write must leave no temp debris behind.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), tmpSuffix) {
			t.Fatalf("temp file left behind: %s", e.Name())
		}
	}
	// A missing manifest surfaces as os.IsNotExist so the store can
	// treat it as "legacy, base 0".
	if _, err := ReadManifestFile(filepath.Join(dir, "absent")); !os.IsNotExist(err) {
		t.Fatalf("missing manifest: got %v, want not-exist", err)
	}
}

func TestDiffRebase(t *testing.T) {
	d := &Diff{
		Method: MethodTree, CkptID: 57, DataLen: 64, ChunkSize: 8,
		ShiftDupl: []ShiftRegion{{Node: 1, SrcNode: 2, SrcCkpt: 50}, {Node: 3, SrcNode: 4, SrcCkpt: 57}},
	}
	if err := d.Rebase(-50); err != nil {
		t.Fatal(err)
	}
	if d.CkptID != 7 || d.ShiftDupl[0].SrcCkpt != 0 || d.ShiftDupl[1].SrcCkpt != 7 {
		t.Fatalf("rebase result wrong: %+v", d)
	}
	if err := d.Rebase(50); err != nil {
		t.Fatal(err)
	}
	if d.CkptID != 57 || d.ShiftDupl[0].SrcCkpt != 50 {
		t.Fatalf("rebase not symmetric: %+v", d)
	}

	// A shift out of uint32 range fails atomically: no field changes.
	bad := &Diff{
		CkptID:    10,
		ShiftDupl: []ShiftRegion{{SrcCkpt: 10}, {SrcCkpt: 3}},
	}
	if err := bad.Rebase(-5); err == nil {
		t.Fatal("out-of-range rebase accepted")
	}
	if bad.CkptID != 10 || bad.ShiftDupl[0].SrcCkpt != 10 || bad.ShiftDupl[1].SrcCkpt != 3 {
		t.Fatalf("failed rebase mutated the diff: %+v", bad)
	}
}

func TestDiffCloneShallow(t *testing.T) {
	d := &Diff{
		CkptID:    4,
		ShiftDupl: []ShiftRegion{{SrcCkpt: 2}},
		Data:      []byte{1, 2, 3},
	}
	cp := d.CloneShallow()
	if err := cp.Rebase(10); err != nil {
		t.Fatal(err)
	}
	if d.CkptID != 4 || d.ShiftDupl[0].SrcCkpt != 2 {
		t.Fatalf("rebase of clone mutated original: %+v", d)
	}
	if &cp.Data[0] != &d.Data[0] {
		t.Fatal("clone copied the data section")
	}
}
