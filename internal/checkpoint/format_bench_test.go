package checkpoint

import (
	"bytes"
	"io"
	"testing"
)

func benchDiff() *Diff {
	firsts := make([]uint32, 96)
	shifts := make([]ShiftRegion, 32)
	var dataLen int
	for i := range firsts {
		firsts[i] = uint32(1023 + 4*i) // leaves of a 1024-leaf tree
		dataLen += 128
	}
	for i := range shifts {
		shifts[i] = ShiftRegion{Node: uint32(1023 + 4*96 + i), SrcNode: 1023, SrcCkpt: 0}
	}
	data := make([]byte, dataLen)
	for i := range data {
		data[i] = byte(i)
	}
	return &Diff{
		Method:    MethodTree,
		CkptID:    3,
		DataLen:   1024 * 128,
		ChunkSize: 128,
		FirstOcur: firsts,
		ShiftDupl: shifts,
		Data:      data,
	}
}

// TestEncodeSteadyStateAllocs proves the pooled staging buffer makes
// Encode allocation-free once warm.
func TestEncodeSteadyStateAllocs(t *testing.T) {
	d := benchDiff()
	// Warm the buffer pool.
	for i := 0; i < 10; i++ {
		if err := d.Encode(io.Discard); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(100, func() {
		if err := d.Encode(io.Discard); err != nil {
			t.Fatal(err)
		}
	})
	if avg >= 1 {
		t.Errorf("Encode allocates %.2f per op steady-state, want 0", avg)
	}
}

func BenchmarkDiffEncode(b *testing.B) {
	d := benchDiff()
	b.SetBytes(d.TotalBytes())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := d.Encode(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDiffRoundTrip(b *testing.B) {
	d := benchDiff()
	var buf bytes.Buffer
	if err := d.Encode(&buf); err != nil {
		b.Fatal(err)
	}
	wire := buf.Bytes()
	b.SetBytes(int64(len(wire)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got, err := Decode(bytes.NewReader(wire))
		if err != nil {
			b.Fatal(err)
		}
		if got.CkptID != d.CkptID || len(got.FirstOcur) != len(d.FirstOcur) {
			b.Fatal("round trip mismatch")
		}
	}
}
