package checkpoint

import (
	"bytes"
	"reflect"
	"testing"
)

// encodeSeed returns the encoding of d for use as a fuzz seed.
func encodeSeed(f *testing.F, d *Diff) []byte {
	f.Helper()
	var buf bytes.Buffer
	if err := d.Encode(&buf); err != nil {
		f.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzDiffDecode feeds arbitrary bytes to the diff decoder and, when a
// diff decodes, checks that encode(decode(x)) survives a second decode
// with identical content. RawDataLen is excluded from the comparison:
// with no codec set the encoder canonicalizes it to len(Data).
func FuzzDiffDecode(f *testing.F) {
	for _, d := range sampleDiffs() {
		f.Add(encodeSeed(f, d))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := Decode(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := d.Encode(&buf); err != nil {
			t.Fatalf("re-encode of decoded diff failed: %v", err)
		}
		d2, err := Decode(&buf)
		if err != nil {
			t.Fatalf("decode of re-encoded diff failed: %v", err)
		}
		d.RawDataLen, d2.RawDataLen = 0, 0
		if !reflect.DeepEqual(d, d2) {
			t.Fatalf("round trip diverged:\n %+v\n %+v", d, d2)
		}
	})
}

// FuzzManifestDecode feeds arbitrary bytes to the lineage-manifest
// decoder. A manifest that decodes must satisfy its own invariants
// (validate) and survive an encode/decode round trip unchanged — the
// manifest is the commit record of the compaction transaction, so a
// corrupted file must never decode into an inconsistent baseline.
func FuzzManifestDecode(f *testing.F) {
	seeds := []Manifest{
		{},
		{Base: 0, Generation: 1},
		{Base: 8, Generation: 3, Pins: []uint32{8, 12, 60}},
		{Base: 1, Generation: 1 << 40, Pins: []uint32{1}},
	}
	for _, m := range seeds {
		b, err := m.Encode()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
	}
	// Invalid-by-construction seeds steer the fuzzer at the validation
	// paths: wrong magic, truncated header, unsorted pins.
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0x4d, 0x4c, 0x43, 0x47, 1, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodeManifest(data)
		if err != nil {
			return
		}
		if err := m.validate(); err != nil {
			t.Fatalf("decoded manifest violates invariants: %v (%+v)", err, m)
		}
		b, err := m.Encode()
		if err != nil {
			t.Fatalf("re-encode of decoded manifest failed: %v", err)
		}
		m2, err := DecodeManifest(b)
		if err != nil {
			t.Fatalf("decode of re-encoded manifest failed: %v", err)
		}
		if !reflect.DeepEqual(m, m2) {
			t.Fatalf("round trip diverged:\n %+v\n %+v", m, m2)
		}
	})
}

// FuzzDiffChecksum attacks the integrity footer with arbitrary file
// images and arbitrary single-byte corruptions of footered images. The
// invariant under fuzz: SplitFooter must never report verified=true
// unless the returned bytes hash to the footer CRC; AppendFooter must
// round-trip; and any corruption of a footered image is either
// detected (ErrChecksumMismatch) or demotes the file to the legacy
// unverified path — silent verified corruption is the one forbidden
// outcome.
func FuzzDiffChecksum(f *testing.F) {
	for _, d := range sampleDiffs() {
		f.Add(encodeSeed(f, d), uint16(0), byte(0))
	}
	f.Add([]byte{}, uint16(3), byte(0xFF))
	f.Add(bytes.Repeat([]byte{0x5A}, 64), uint16(70), byte(1))
	f.Fuzz(func(t *testing.T, data []byte, pos uint16, mask byte) {
		// Arbitrary raw image: whatever SplitFooter verifies must
		// actually hash to its recorded CRC.
		if enc, verified, err := SplitFooter(data); err == nil && verified {
			if DiffChecksum(enc) != DiffChecksum(data[:len(data)-FooterSize]) ||
				!bytes.Equal(enc, data[:len(data)-FooterSize]) {
				t.Fatalf("SplitFooter verified bytes that are not the footered prefix")
			}
		}

		// A freshly footered image must verify and round-trip.
		footered := AppendFooter(data)
		enc, verified, err := SplitFooter(footered)
		if err != nil || !verified {
			t.Fatalf("AppendFooter image did not verify: verified=%v err=%v", verified, err)
		}
		if !bytes.Equal(enc, data) {
			t.Fatalf("footer round trip changed the bytes")
		}

		// Corrupt one byte anywhere in the footered image: detection or
		// demotion to legacy-unverified, never verified with altered
		// content.
		if mask == 0 {
			mask = 1
		}
		p := int(pos) % len(footered)
		mut := append([]byte(nil), footered...)
		mut[p] ^= mask
		enc, verified, err = SplitFooter(mut)
		if err == nil && verified && !bytes.Equal(enc, data) {
			t.Fatalf("flip of byte %d (mask %02x) verified with altered content", p, mask)
		}
	})
}

// fuzzRestoreMaxData bounds the buffer the restore harness will
// reconstruct; the format itself admits terabyte buffers, but the fuzz
// engine should not allocate them.
const fuzzRestoreMaxData = 1 << 22

// FuzzRestore decodes a concatenated sequence of diffs, appends each to
// a lineage and restores the latest checkpoint. Append validates
// geometry, bitmaps and shift references, so any input that survives it
// must replay without a panic or out-of-range access.
func FuzzRestore(f *testing.F) {
	var lineage bytes.Buffer
	full := &Diff{Method: MethodFull, CkptID: 0, DataLen: 40, ChunkSize: 8,
		Data: bytes.Repeat([]byte{1}, 40)}
	if err := full.Encode(&lineage); err != nil {
		f.Fatal(err)
	}
	tree := &Diff{Method: MethodTree, CkptID: 1, DataLen: 40, ChunkSize: 8,
		FirstOcur: []uint32{1}, ShiftDupl: []ShiftRegion{{Node: 6, SrcNode: 1, SrcCkpt: 1}},
		Data: bytes.Repeat([]byte{4}, 24)}
	if err := tree.Encode(&lineage); err != nil {
		f.Fatal(err)
	}
	f.Add(lineage.Bytes())
	for _, d := range sampleDiffs() {
		f.Add(encodeSeed(f, d))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		rec := NewRecord()
		for rec.Len() < 8 {
			d, err := Decode(r)
			if err != nil {
				break
			}
			if d.DataLen > fuzzRestoreMaxData {
				return
			}
			// Cap the chunk count too: the lineage index builds a
			// merkle geometry with ~32 bytes per chunk.
			if d.ChunkSize > 0 && NumChunksU64(d.DataLen, uint64(d.ChunkSize)) > 1<<16 {
				return
			}
			if err := rec.Append(d); err != nil {
				break
			}
		}
		if rec.Len() == 0 {
			return
		}
		state, err := rec.RestoreLatest()
		if err != nil {
			return
		}
		if len(state) != rec.DataLen() {
			t.Fatalf("restored %d bytes, record says %d", len(state), rec.DataLen())
		}
	})
}
