package checkpoint

import (
	"fmt"
	"math"
	"sort"

	"github.com/gpuckpt/gpuckpt/internal/compress"
	"github.com/gpuckpt/gpuckpt/internal/merkle"
	"github.com/gpuckpt/gpuckpt/internal/parallel"
)

// storedRegion locates the bytes of one first-occurrence region inside
// a diff's data section.
type storedRegion struct {
	leafLo, leafHi int   // chunk range [lo, hi)
	dataOff        int64 // byte offset in Diff.Data
}

// Record is the checkpoint lineage of one process: the ordered
// sequence of diffs for a fixed buffer geometry, with an index that
// resolves shifted-duplicate references (ckpt, node) to stored bytes.
type Record struct {
	chunkSize int
	dataLen   int
	geom      *merkle.Tree
	diffs     []*Diff
	regions   [][]storedRegion
	plain     [][]byte // decompressed data sections (alias Diff.Data when raw)
	pool      *parallel.Pool
}

// NewRecord creates an empty lineage.
func NewRecord() *Record { return &Record{} }

// SetPool enables parallel region assembly during Apply/Restore — the
// §5 future-work "scalable reconstruction" extension. All emitted
// regions of one diff cover disjoint byte ranges and same-checkpoint
// shift sources are first-occurrence regions (written in the preceding
// pass), so each pass parallelizes race-free. Restored bytes are
// identical with or without a pool.
func (r *Record) SetPool(p *parallel.Pool) { r.pool = p }

// forRegions runs body over [0, n), on the pool when one is set.
func (r *Record) forRegions(n int, body func(i int)) {
	if r.pool == nil || n < 16 {
		for i := 0; i < n; i++ {
			body(i)
		}
		return
	}
	r.pool.For(n, body)
}

// Len returns the number of checkpoints in the lineage.
func (r *Record) Len() int { return len(r.diffs) }

// Diff returns the i-th stored diff.
func (r *Record) Diff(i int) *Diff { return r.diffs[i] }

// ChunkSize returns the chunk geometry of the lineage (0 when empty).
func (r *Record) ChunkSize() int { return r.chunkSize }

// DataLen returns the checkpointed buffer length (0 when empty).
func (r *Record) DataLen() int { return r.dataLen }

// TotalBytes returns the cumulative serialized size of all diffs: the
// space utilization of the entire checkpoint record (§1).
func (r *Record) TotalBytes() int64 {
	var total int64
	for _, d := range r.diffs {
		total += d.TotalBytes()
	}
	return total
}

// Append adds the next diff to the lineage and indexes its
// first-occurrence regions so later checkpoints can reference them.
func (r *Record) Append(d *Diff) error {
	// Geometry sanity first: every index, span and allocation below is
	// derived from DataLen and ChunkSize, so a decoded diff must not be
	// able to smuggle in values that wrap int arithmetic or divide by
	// zero (found by FuzzRestore).
	if d.DataLen > math.MaxInt64-math.MaxUint32 {
		return fmt.Errorf("checkpoint: diff %d data length %d exceeds supported range", d.CkptID, d.DataLen)
	}
	if d.Method != MethodFull && d.ChunkSize == 0 {
		return fmt.Errorf("checkpoint: diff %d (method %v) has zero chunk size", d.CkptID, d.Method)
	}
	if len(r.diffs) == 0 {
		if d.DataLen == 0 && d.Method != MethodFull {
			return fmt.Errorf("checkpoint: first diff has zero data length")
		}
		r.chunkSize = int(d.ChunkSize)
		r.dataLen = int(d.DataLen)
		if r.chunkSize > 0 {
			r.geom = merkle.NewGeometry(merkle.NumChunks(r.dataLen, r.chunkSize))
		}
	} else {
		if int(d.DataLen) != r.dataLen {
			return fmt.Errorf("checkpoint: diff %d data length %d != record %d",
				d.CkptID, d.DataLen, r.dataLen)
		}
		if int(d.ChunkSize) != r.chunkSize {
			return fmt.Errorf("checkpoint: diff %d chunk size %d != record %d",
				d.CkptID, d.ChunkSize, r.chunkSize)
		}
	}
	if int(d.CkptID) != len(r.diffs) {
		return fmt.Errorf("checkpoint: diff id %d out of order (have %d diffs)",
			d.CkptID, len(r.diffs))
	}
	plain := d.Data
	if d.DataCodec != 0 {
		codec, err := compress.ByID(d.DataCodec)
		if err != nil {
			return fmt.Errorf("checkpoint: diff %d: %w", d.CkptID, err)
		}
		plain, err = codec.Decompress(d.Data, int(d.RawDataLen))
		if err != nil {
			return fmt.Errorf("checkpoint: diff %d data section: %w", d.CkptID, err)
		}
	}
	idx, err := r.indexRegions(d, plain)
	if err != nil {
		return err
	}
	r.diffs = append(r.diffs, d)
	r.regions = append(r.regions, idx)
	r.plain = append(r.plain, plain)
	return nil
}

// indexRegions builds the (sorted) first-occurrence region index of d
// and validates that the data section has exactly the declared bytes.
func (r *Record) indexRegions(d *Diff, plain []byte) ([]storedRegion, error) {
	switch d.Method {
	case MethodFull:
		if int(d.DataLen) != len(plain) {
			return nil, fmt.Errorf("checkpoint: full diff %d has %d data bytes, want %d",
				d.CkptID, len(plain), d.DataLen)
		}
		if r.geom == nil {
			return nil, nil
		}
		return []storedRegion{{leafLo: 0, leafHi: r.geom.NumLeaves, dataOff: 0}}, nil
	case MethodBasic:
		// Basic diffs are never referenced by shifted duplicates, but
		// Apply walks the bitmap, so its length and the bytes it claims
		// must be validated here (found by FuzzRestore: a short bitmap
		// read out of range, a long one replayed stale chunks).
		nChunks := merkle.NumChunks(r.dataLen, r.chunkSize)
		if len(d.Bitmap) != BitmapLen(nChunks) {
			return nil, fmt.Errorf("checkpoint: basic diff %d bitmap %d bytes, want %d",
				d.CkptID, len(d.Bitmap), BitmapLen(nChunks))
		}
		var want int64
		for c := 0; c < nChunks; c++ {
			if !BitmapGet(d.Bitmap, c) {
				continue
			}
			hi := min((c+1)*r.chunkSize, r.dataLen)
			want += int64(hi - c*r.chunkSize)
		}
		if want != int64(len(plain)) {
			return nil, fmt.Errorf("checkpoint: basic diff %d data section %d bytes, bitmap covers %d",
				d.CkptID, len(plain), want)
		}
		return nil, nil
	case MethodList, MethodTree:
		// Shift references are resolved lazily during Apply; reject
		// out-of-range nodes and future sources now so replay can only
		// fail with an error, never an out-of-bounds copy.
		for _, sr := range d.ShiftDupl {
			if int(sr.Node) >= r.geom.NumNodes || int(sr.SrcNode) >= r.geom.NumNodes {
				return nil, fmt.Errorf("checkpoint: diff %d shift region node %d<-%d out of range",
					d.CkptID, sr.Node, sr.SrcNode)
			}
			if sr.SrcCkpt > d.CkptID {
				return nil, fmt.Errorf("checkpoint: diff %d shift source checkpoint %d is in the future",
					d.CkptID, sr.SrcCkpt)
			}
		}
		idx := make([]storedRegion, 0, len(d.FirstOcur))
		var off int64
		for _, node := range d.FirstOcur {
			if int(node) >= r.geom.NumNodes {
				return nil, fmt.Errorf("checkpoint: diff %d region node %d out of range", d.CkptID, node)
			}
			lo, hi := r.geom.LeafRange(int(node))
			spanOff, spanEnd := r.geom.NodeSpan(int(node), r.chunkSize, r.dataLen)
			idx = append(idx, storedRegion{leafLo: lo, leafHi: hi, dataOff: off})
			off += int64(spanEnd - spanOff)
		}
		if off != int64(len(plain)) {
			return nil, fmt.Errorf("checkpoint: diff %d data section %d bytes, regions cover %d",
				d.CkptID, len(plain), off)
		}
		if !sort.SliceIsSorted(idx, func(i, j int) bool { return idx[i].leafLo < idx[j].leafLo }) {
			return nil, fmt.Errorf("checkpoint: diff %d regions not in chunk order", d.CkptID)
		}
		return idx, nil
	default:
		return nil, fmt.Errorf("checkpoint: unknown method %v", d.Method)
	}
}

// resolve returns the stored bytes of tree node `node` as of
// checkpoint ck. The node must lie inside a first-occurrence region of
// that checkpoint — which Algorithm 1 guarantees for every entry of
// the historical record of unique hashes.
func (r *Record) resolve(ck, node uint32) ([]byte, error) {
	if int(ck) >= len(r.diffs) {
		return nil, fmt.Errorf("checkpoint: reference to future checkpoint %d", ck)
	}
	spanOff, spanEnd := r.geom.NodeSpan(int(node), r.chunkSize, r.dataLen)
	lo, _ := r.geom.LeafRange(int(node))
	regions := r.regions[ck]
	// Find the last region with leafLo <= lo.
	i := sort.Search(len(regions), func(i int) bool { return regions[i].leafLo > lo }) - 1
	if i < 0 {
		return nil, fmt.Errorf("checkpoint: node %d not stored in checkpoint %d", node, ck)
	}
	reg := regions[i]
	_, hi := r.geom.LeafRange(int(node))
	if hi > reg.leafHi {
		return nil, fmt.Errorf("checkpoint: node %d (chunks [%d,%d)) exceeds stored region [%d,%d) of checkpoint %d",
			node, lo, hi, reg.leafLo, reg.leafHi, ck)
	}
	byteOff := reg.dataOff + int64((lo-reg.leafLo)*r.chunkSize)
	n := int64(spanEnd - spanOff)
	data := r.plain[ck]
	if byteOff+n > int64(len(data)) {
		return nil, fmt.Errorf("checkpoint: region bytes [%d,%d) beyond data section of checkpoint %d",
			byteOff, byteOff+n, ck)
	}
	return data[byteOff : byteOff+n], nil
}

// RegionBytes returns the stored (uncompressed) bytes of tree node
// `node` as of checkpoint ck — the §2.4 collision-mitigation path and
// external consumers use it to read region content without a full
// restore.
func (r *Record) RegionBytes(ck, node uint32) ([]byte, error) {
	return r.resolve(ck, node)
}

// Apply replays diff i onto state, which must hold the reconstruction
// of checkpoint i-1 (or anything, for i==0 with MethodFull/first-ckpt
// diffs that cover the whole buffer).
func (r *Record) Apply(state []byte, i int) error {
	if i < 0 || i >= len(r.diffs) {
		return fmt.Errorf("checkpoint: apply index %d out of range [0,%d)", i, len(r.diffs))
	}
	if len(state) != r.dataLen {
		return fmt.Errorf("checkpoint: state length %d != record %d", len(state), r.dataLen)
	}
	d := r.diffs[i]
	switch d.Method {
	case MethodFull:
		copy(state, r.plain[i])
		return nil
	case MethodBasic:
		var off int
		nChunks := merkle.NumChunks(r.dataLen, r.chunkSize)
		data := r.plain[i]
		for c := 0; c < nChunks; c++ {
			if !BitmapGet(d.Bitmap, c) {
				continue
			}
			lo := c * r.chunkSize
			hi := lo + r.chunkSize
			if hi > r.dataLen {
				hi = r.dataLen
			}
			n := copy(state[lo:hi], data[off:])
			off += n
		}
		if off != len(data) {
			return fmt.Errorf("checkpoint: basic diff %d consumed %d of %d data bytes", i, off, len(d.Data))
		}
		return nil
	case MethodList, MethodTree:
		// Pass 1: first occurrences (new bytes). Regions are disjoint,
		// so the copies parallelize.
		data := r.plain[i]
		r.forRegions(len(d.FirstOcur), func(j int) {
			node := d.FirstOcur[j]
			reg := r.regions[i][j]
			spanOff, spanEnd := r.geom.NodeSpan(int(node), r.chunkSize, r.dataLen)
			copy(state[spanOff:spanEnd], data[reg.dataOff:reg.dataOff+int64(spanEnd-spanOff)])
		})
		// Pass 2: shifted duplicates. Same-checkpoint references read
		// from the state (their source regions were written in pass
		// 1); older references read from the stored diff bytes.
		// Destinations are disjoint and sources are never shifted
		// destinations, so this pass parallelizes too.
		errs := make([]error, len(d.ShiftDupl))
		r.forRegions(len(d.ShiftDupl), func(j int) {
			s := d.ShiftDupl[j]
			dstOff, dstEnd := r.geom.NodeSpan(int(s.Node), r.chunkSize, r.dataLen)
			if s.SrcCkpt == d.CkptID {
				srcOff, srcEnd := r.geom.NodeSpan(int(s.SrcNode), r.chunkSize, r.dataLen)
				if srcEnd-srcOff < dstEnd-dstOff {
					errs[j] = fmt.Errorf("checkpoint: diff %d shift source node %d shorter than destination %d",
						i, s.SrcNode, s.Node)
					return
				}
				copy(state[dstOff:dstEnd], state[srcOff:srcOff+(dstEnd-dstOff)])
				return
			}
			src, err := r.resolve(s.SrcCkpt, s.SrcNode)
			if err != nil {
				errs[j] = fmt.Errorf("checkpoint: diff %d shift region node %d: %w", i, s.Node, err)
				return
			}
			if len(src) < dstEnd-dstOff {
				errs[j] = fmt.Errorf("checkpoint: diff %d shift source %d bytes < destination %d",
					i, len(src), dstEnd-dstOff)
				return
			}
			copy(state[dstOff:dstEnd], src[:dstEnd-dstOff])
		})
		for _, err := range errs {
			if err != nil {
				return err
			}
		}
		// Pass 3: fixed duplicates need no action — state already
		// carries the previous checkpoint's bytes.
		return nil
	default:
		return fmt.Errorf("checkpoint: unknown method %v", d.Method)
	}
}

// Restore reconstructs the buffer as of checkpoint k by replaying
// diffs 0..k ("start from the first-time occurrences, then fill the
// fixed duplicates and finally assemble the shifted duplicates", §2.2).
func (r *Record) Restore(k int) ([]byte, error) {
	if k < 0 || k >= len(r.diffs) {
		return nil, fmt.Errorf("checkpoint: restore index %d out of range [0,%d)", k, len(r.diffs))
	}
	state := make([]byte, r.dataLen)
	for i := 0; i <= k; i++ {
		if err := r.Apply(state, i); err != nil {
			return nil, err
		}
	}
	return state, nil
}

// RestoreLatest reconstructs the most recent checkpoint.
func (r *Record) RestoreLatest() ([]byte, error) {
	return r.Restore(len(r.diffs) - 1)
}
