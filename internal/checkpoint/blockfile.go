package checkpoint

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"github.com/gpuckpt/gpuckpt/internal/blockstore"
)

// Block-mapped diff container ("GCKD"): the on-disk form of a diff
// whose data section lives in the shared content-addressed block
// store instead of being embedded in the file. The container keeps the
// canonical diff prefix (header, region metadata, bitmap) verbatim and
// replaces the data section with a list of block references, so a
// reader reassembles the EXACT canonical encoding — wire format,
// Record, checksums and clients are all unchanged; only the lineage
// directory's bytes are.
//
//	u32  magic "GCKD"
//	u8   version (1)
//	u32  prefix length
//	u32  block count
//	u64  data length (sum of the block lengths)
//	prefix bytes (canonical diff encoding up to the data section)
//	refs: {id [16]byte, len u32} x count
//
// The container is wrapped in the same CRC32C integrity footer as a
// self-contained diff file, so SplitFooter and the scrub/quarantine
// machinery treat both identically; the block payloads themselves are
// verified by the block store on every read (footer CRC plus a full
// digest recomputation).
const (
	blockDiffMagic   = 0x44_4b_43_47 // "GCKD" little-endian
	blockDiffVersion = 1
	blockDiffHdrSize = 4 + 1 + 4 + 4 + 8
	blockRefSize     = blockstore.IDSize + 4

	// maxBlockRefs bounds a declared reference count before any
	// allocation; a diff's data section is capped at maxDataLen (4 TiB)
	// and blocks are at least one byte.
	maxBlockRefs = 1 << 32
)

// IsBlockMapped reports whether encoded (a diff file image with the
// integrity footer already stripped) is a block-mapped container
// rather than a self-contained diff encoding.
func IsBlockMapped(encoded []byte) bool {
	return len(encoded) >= 4 && binary.LittleEndian.Uint32(encoded) == blockDiffMagic
}

// encodeBlockDiff serializes a container from the canonical prefix and
// the interned data-section blocks.
func encodeBlockDiff(prefix []byte, refs []blockstore.Ref, dataLen uint64) ([]byte, error) {
	if uint64(len(prefix)) > math.MaxUint32 || uint64(len(refs)) > math.MaxUint32 {
		return nil, errors.New("checkpoint: block container metadata exceeds format limits")
	}
	buf := make([]byte, 0, blockDiffHdrSize+len(prefix)+blockRefSize*len(refs))
	buf = binary.LittleEndian.AppendUint32(buf, blockDiffMagic)
	buf = append(buf, blockDiffVersion)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(prefix)))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(refs)))
	buf = binary.LittleEndian.AppendUint64(buf, dataLen)
	buf = append(buf, prefix...)
	for _, r := range refs {
		buf = append(buf, r.ID[:]...)
		buf = binary.LittleEndian.AppendUint32(buf, r.Len)
	}
	return buf, nil
}

// decodeBlockDiff parses a container image. Validation is defensive in
// the repository's usual style: counts are checked against the actual
// byte length before any allocation, and the declared data length must
// equal the sum of the reference lengths, so a corrupted container
// fails here rather than reassembling a wrong-sized diff.
func decodeBlockDiff(b []byte) (prefix []byte, refs []blockstore.Ref, dataLen uint64, err error) {
	if len(b) < blockDiffHdrSize {
		return nil, nil, 0, fmt.Errorf("checkpoint: block container truncated at %d bytes", len(b))
	}
	if binary.LittleEndian.Uint32(b) != blockDiffMagic {
		return nil, nil, 0, errors.New("checkpoint: bad block container magic")
	}
	if b[4] != blockDiffVersion {
		return nil, nil, 0, fmt.Errorf("checkpoint: unsupported block container version %d", b[4])
	}
	prefixLen := binary.LittleEndian.Uint32(b[5:])
	count := binary.LittleEndian.Uint32(b[9:])
	dataLen = binary.LittleEndian.Uint64(b[13:])
	rest := b[blockDiffHdrSize:]
	if uint64(prefixLen) > uint64(len(rest)) {
		return nil, nil, 0, fmt.Errorf("checkpoint: block container declares %d prefix bytes, carries %d",
			prefixLen, len(rest))
	}
	prefix = rest[:prefixLen]
	rest = rest[prefixLen:]
	if uint64(count) >= maxBlockRefs || uint64(count)*blockRefSize != uint64(len(rest)) {
		return nil, nil, 0, fmt.Errorf("checkpoint: block container declares %d refs, carries %d ref bytes",
			count, len(rest))
	}
	refs = make([]blockstore.Ref, count)
	var sum uint64
	for i := range refs {
		rec := rest[i*blockRefSize:]
		copy(refs[i].ID[:], rec[:blockstore.IDSize])
		rl := binary.LittleEndian.Uint32(rec[blockstore.IDSize:])
		refs[i].Len = rl
		sum += uint64(rl)
	}
	if sum != dataLen {
		return nil, nil, 0, fmt.Errorf("checkpoint: block container refs sum to %d bytes, header says %d",
			sum, dataLen)
	}
	return prefix, refs, dataLen, nil
}
