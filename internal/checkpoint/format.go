// Package checkpoint defines the wire format of incremental checkpoint
// differences and the checkpoint record (lineage) that stores and
// restores them.
//
// A Diff is the "consolidated difference" of the paper (Tan et al.,
// ICPP 2023, §2.1): a small header, compact metadata describing
// first-time occurrences and shifted duplicates, and a contiguous data
// section holding the gathered bytes of the first-time occurrences —
// exactly the object that is serialized on the GPU and shipped to host
// memory in a single transfer.
//
// A Record is the per-process checkpoint lineage (§1: "the entire
// checkpoint record"): it retains every Diff and can reconstruct the
// application buffer at any checkpoint, resolving shifted-duplicate
// references across checkpoints ("assemble the shifted duplicates from
// the corresponding checkpoint ID", §2.2).
package checkpoint

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"sync"
)

// Method identifies the de-duplication strategy that produced a Diff.
type Method uint8

const (
	// MethodFull stores the complete buffer every checkpoint.
	MethodFull Method = iota
	// MethodBasic stores a change bitmap plus changed chunks (dirty
	// chunk tracking against the same offset of the previous
	// checkpoint only).
	MethodBasic
	// MethodList stores per-chunk first-occurrence and
	// shifted-duplicate entries with no metadata compaction.
	MethodList
	// MethodTree is the paper's contribution: Merkle-tree compacted
	// region metadata.
	MethodTree
)

// String returns the method name used throughout the paper's figures.
func (m Method) String() string {
	switch m {
	case MethodFull:
		return "Full"
	case MethodBasic:
		return "Basic"
	case MethodList:
		return "List"
	case MethodTree:
		return "Tree"
	default:
		return fmt.Sprintf("Method(%d)", uint8(m))
	}
}

// Methods lists all implemented methods in the order the paper
// introduces them.
func Methods() []Method {
	return []Method{MethodFull, MethodBasic, MethodList, MethodTree}
}

// ShiftRegion describes one shifted-duplicate region: the tree node it
// covers in the current checkpoint and the (node, checkpoint) of the
// identical region recorded in the historical record of unique hashes.
type ShiftRegion struct {
	Node    uint32
	SrcNode uint32
	SrcCkpt uint32
}

// Diff is one incremental checkpoint difference.
type Diff struct {
	Method    Method
	CkptID    uint32
	DataLen   uint64
	ChunkSize uint32

	// FirstOcur lists the tree nodes of first-occurrence regions, in
	// ascending chunk order; Data holds their bytes in the same order.
	// For MethodFull it is empty and Data is the whole buffer. For
	// MethodBasic it is empty and Bitmap+Data describe changed chunks.
	FirstOcur []uint32

	// ShiftDupl lists shifted-duplicate regions (MethodList and
	// MethodTree), in ascending chunk order.
	ShiftDupl []ShiftRegion

	// Bitmap marks changed chunks for MethodBasic, one bit per chunk,
	// LSB-first within each byte.
	Bitmap []byte

	// DataCodec identifies the codec compressing the Data section
	// (0 = uncompressed). Compressing the first-time occurrences
	// inside the difference is the §5 future-work extension
	// ("combining our method with compression techniques").
	DataCodec uint8

	// RawDataLen is the uncompressed length of the data section when
	// DataCodec != 0 (equal to len(Data) otherwise).
	RawDataLen uint64

	// Data is the gathered data section (compressed when DataCodec is
	// set).
	Data []byte
}

const (
	diffMagic     = 0x50_4b_43_47 // "GCKP" little-endian
	formatVersion = 2
	headerSize    = 4 + 1 + 1 + 4 + 8 + 4 + 4 + 4 + 4 + 8 + 1 + 8 // see Encode
)

// MetadataBytes returns the size of the serialized metadata sections
// (everything except the header and the data payload). This is the
// quantity whose "explosion" the Tree method exists to prevent (§2.2).
func (d *Diff) MetadataBytes() int64 {
	return int64(4*len(d.FirstOcur) + 12*len(d.ShiftDupl) + len(d.Bitmap))
}

// TotalBytes returns the full serialized size of the diff: header,
// metadata and data. Checkpoint sizes and de-duplication ratios in the
// benchmarks are computed from this.
func (d *Diff) TotalBytes() int64 {
	return headerSize + d.MetadataBytes() + int64(len(d.Data))
}

// encodeBufPool recycles the header+metadata staging buffers of
// Encode, making steady-state encoding allocation-free. Pointers to
// slices are pooled (not slices) so Put does not itself allocate.
var encodeBufPool sync.Pool

// errMetadataTooLarge reports a Diff whose region metadata cannot be
// expressed in the format's 32-bit counts.
var errMetadataTooLarge = errors.New("checkpoint: region metadata exceeds format limits")

// Encode writes the canonical little-endian serialization of d: the
// prefix (header, region metadata, bitmap) followed by the data
// section.
//
//ckptlint:noalloc
func (d *Diff) Encode(w io.Writer) error {
	if err := d.encodePrefix(w); err != nil {
		return err
	}
	if _, err := w.Write(d.Data); err != nil {
		return fmt.Errorf("checkpoint: write data: %w", err)
	}
	return nil
}

// PrefixBytes returns the encoded length of everything before the data
// section — the split point of the block-mapped container, which
// stores the prefix verbatim and replaces the data section with block
// references.
func (d *Diff) PrefixBytes() int64 { return headerSize + d.MetadataBytes() }

// AppendPrefix appends the serialization of d up to (excluding) the
// bitmap and data sections — the header and region metadata — to buf
// and returns the extended slice. It is the zero-copy counterpart of
// encodePrefix: the streaming push path stages these bytes behind a
// frame header in a reused buffer and ships Bitmap and Data by
// reference (writev), so the full encoding AppendPrefix+Bitmap+Data
// is byte-identical to Encode's output without gathering it.
//
//ckptlint:noalloc
func (d *Diff) AppendPrefix(buf []byte) ([]byte, error) {
	if uint64(len(d.FirstOcur)) > math.MaxUint32 ||
		uint64(len(d.ShiftDupl)) > math.MaxUint32 ||
		uint64(len(d.Bitmap)) > math.MaxUint32 {
		return buf, errMetadataTooLarge
	}
	var hdr [headerSize]byte
	binary.LittleEndian.PutUint32(hdr[0:], diffMagic)
	hdr[4] = formatVersion
	hdr[5] = uint8(d.Method)
	binary.LittleEndian.PutUint32(hdr[6:], d.CkptID)
	binary.LittleEndian.PutUint64(hdr[10:], d.DataLen)
	binary.LittleEndian.PutUint32(hdr[18:], d.ChunkSize)
	binary.LittleEndian.PutUint32(hdr[22:], uint32(len(d.FirstOcur)))
	binary.LittleEndian.PutUint32(hdr[26:], uint32(len(d.ShiftDupl)))
	binary.LittleEndian.PutUint32(hdr[30:], uint32(len(d.Bitmap)))
	binary.LittleEndian.PutUint64(hdr[34:], uint64(len(d.Data)))
	hdr[42] = d.DataCodec
	binary.LittleEndian.PutUint64(hdr[43:], d.rawLen())
	buf = append(buf, hdr[:]...)
	for _, n := range d.FirstOcur {
		buf = binary.LittleEndian.AppendUint32(buf, n)
	}
	for _, s := range d.ShiftDupl {
		buf = binary.LittleEndian.AppendUint32(buf, s.Node)
		buf = binary.LittleEndian.AppendUint32(buf, s.SrcNode)
		buf = binary.LittleEndian.AppendUint32(buf, s.SrcCkpt)
	}
	return buf, nil
}

// encodePrefix writes the serialization of d up to (excluding) the
// data section. The header and region metadata are staged in one
// pooled buffer and written together; the byte stream is unchanged.
//
//ckptlint:noalloc
func (d *Diff) encodePrefix(w io.Writer) error {
	bp, _ := encodeBufPool.Get().(*[]byte)
	if bp == nil {
		bp = new([]byte)
	}
	// Pre-size for the whole prefix so a pool miss costs one
	// allocation, not a chain of append growths.
	if need := headerSize + 4*len(d.FirstOcur) + 12*len(d.ShiftDupl); cap(*bp) < need {
		*bp = make([]byte, 0, need)
	}
	buf, perr := d.AppendPrefix((*bp)[:0])
	if perr != nil {
		encodeBufPool.Put(bp)
		return perr
	}
	_, err := w.Write(buf)
	*bp = buf
	encodeBufPool.Put(bp)
	if err != nil {
		return fmt.Errorf("checkpoint: write header/metadata: %w", err)
	}
	if len(d.Bitmap) > 0 {
		if _, err := w.Write(d.Bitmap); err != nil {
			return fmt.Errorf("checkpoint: write bitmap: %w", err)
		}
	}
	return nil
}

// Decode reads a Diff previously written by Encode.
func Decode(r io.Reader) (*Diff, error) {
	var hdr [headerSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("checkpoint: read header: %w", err)
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != diffMagic {
		return nil, errors.New("checkpoint: bad magic")
	}
	if hdr[4] != formatVersion {
		return nil, fmt.Errorf("checkpoint: unsupported version %d", hdr[4])
	}
	if Method(hdr[5]) > MethodTree {
		return nil, fmt.Errorf("checkpoint: unknown method %d", hdr[5])
	}
	d := &Diff{
		Method:    Method(hdr[5]),
		CkptID:    binary.LittleEndian.Uint32(hdr[6:]),
		DataLen:   binary.LittleEndian.Uint64(hdr[10:]),
		ChunkSize: binary.LittleEndian.Uint32(hdr[18:]),
	}
	nFirst := binary.LittleEndian.Uint32(hdr[22:])
	nShift := binary.LittleEndian.Uint32(hdr[26:])
	nBitmap := binary.LittleEndian.Uint32(hdr[30:])
	nData := binary.LittleEndian.Uint64(hdr[34:])
	d.DataCodec = hdr[42]
	d.RawDataLen = binary.LittleEndian.Uint64(hdr[43:])

	// Validate declared sizes against the geometry before allocating
	// anything, so corrupt or hostile headers cannot demand huge
	// buffers (found by the decode-robustness fuzz test).
	const maxDataLen = 1 << 42
	if d.DataLen > maxDataLen {
		return nil, fmt.Errorf("checkpoint: implausible data length %d", d.DataLen)
	}
	if d.ChunkSize == 0 && (nFirst > 0 || nShift > 0 || nBitmap > 0) {
		return nil, errors.New("checkpoint: zero chunk size with chunk metadata")
	}
	var numNodes uint64 = 1
	if d.ChunkSize > 0 {
		numNodes = 2*uint64(NumChunksU64(d.DataLen, uint64(d.ChunkSize))) - 1
	}
	if uint64(nFirst) > numNodes || uint64(nShift) > numNodes {
		return nil, fmt.Errorf("checkpoint: %d+%d regions exceed %d tree nodes", nFirst, nShift, numNodes)
	}
	if d.ChunkSize > 0 {
		maxBitmap := (NumChunksU64(d.DataLen, uint64(d.ChunkSize)) + 7) / 8
		if uint64(nBitmap) > maxBitmap {
			return nil, fmt.Errorf("checkpoint: bitmap %d bytes exceeds %d chunks", nBitmap, maxBitmap*8)
		}
	}
	if nData > d.DataLen+headerSize {
		return nil, fmt.Errorf("checkpoint: data section %d exceeds buffer length %d", nData, d.DataLen)
	}
	if d.DataCodec != 0 && d.RawDataLen > d.DataLen {
		return nil, fmt.Errorf("checkpoint: raw data length %d exceeds buffer length %d", d.RawDataLen, d.DataLen)
	}

	meta, err := readExactly(r, 4*uint64(nFirst)+12*uint64(nShift))
	if err != nil {
		return nil, fmt.Errorf("checkpoint: read metadata: %w", err)
	}
	d.FirstOcur = make([]uint32, nFirst)
	for i := range d.FirstOcur {
		d.FirstOcur[i] = binary.LittleEndian.Uint32(meta[4*i:])
	}
	base := 4 * int(nFirst)
	d.ShiftDupl = make([]ShiftRegion, nShift)
	for i := range d.ShiftDupl {
		off := base + 12*i
		d.ShiftDupl[i] = ShiftRegion{
			Node:    binary.LittleEndian.Uint32(meta[off:]),
			SrcNode: binary.LittleEndian.Uint32(meta[off+4:]),
			SrcCkpt: binary.LittleEndian.Uint32(meta[off+8:]),
		}
	}
	if nBitmap > 0 {
		d.Bitmap, err = readExactly(r, uint64(nBitmap))
		if err != nil {
			return nil, fmt.Errorf("checkpoint: read bitmap: %w", err)
		}
	}
	d.Data, err = readExactly(r, nData)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: read data: %w", err)
	}
	return d, nil
}

// readExactly reads exactly n bytes without trusting n for the initial
// allocation: the buffer grows only as bytes actually arrive, so a
// lying header fails with ErrUnexpectedEOF instead of a giant make().
func readExactly(r io.Reader, n uint64) ([]byte, error) {
	var buf bytes.Buffer
	copied, err := io.Copy(&buf, io.LimitReader(r, int64(n)))
	if err != nil {
		return nil, err
	}
	if uint64(copied) != n {
		return nil, io.ErrUnexpectedEOF
	}
	return buf.Bytes(), nil
}

// NumChunksU64 is NumChunks for unvalidated 64-bit geometry.
func NumChunksU64(dataLen, chunkSize uint64) uint64 {
	if dataLen == 0 {
		return 1
	}
	return (dataLen + chunkSize - 1) / chunkSize
}

// BitmapSet marks chunk i as changed in bm.
func BitmapSet(bm []byte, i int) { bm[i/8] |= 1 << (i % 8) }

// BitmapGet reports whether chunk i is marked changed in bm.
func BitmapGet(bm []byte, i int) bool { return bm[i/8]&(1<<(i%8)) != 0 }

// BitmapLen returns the byte length of a bitmap for n chunks.
func BitmapLen(n int) int { return (n + 7) / 8 }

// rawLen returns the uncompressed data-section length.
func (d *Diff) rawLen() uint64 {
	if d.DataCodec != 0 {
		return d.RawDataLen
	}
	return uint64(len(d.Data))
}
