package checkpoint

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func storeDiff(ck int, tag byte) *Diff {
	data := bytes.Repeat([]byte{tag}, 100)
	return &Diff{Method: MethodFull, CkptID: uint32(ck), DataLen: 100, ChunkSize: 16, Data: data}
}

func TestFileStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	fs, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := fs.Len(); n != 0 {
		t.Fatalf("fresh store has %d diffs", n)
	}
	for ck := 0; ck < 3; ck++ {
		if err := fs.Append(storeDiff(ck, byte(ck+1))); err != nil {
			t.Fatal(err)
		}
	}
	if n, _ := fs.Len(); n != 3 {
		t.Fatalf("store has %d diffs, want 3", n)
	}
	files, err := fs.Files()
	if err != nil || len(files) != 3 {
		t.Fatalf("files: %v %v", files, err)
	}
	rec, err := fs.Load()
	if err != nil {
		t.Fatal(err)
	}
	for ck := 0; ck < 3; ck++ {
		got, err := rec.Restore(ck)
		if err != nil {
			t.Fatal(err)
		}
		if got[0] != byte(ck+1) {
			t.Fatalf("restore %d wrong content", ck)
		}
	}
	// Reopen and append more.
	fs2, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := fs2.Append(storeDiff(3, 9)); err != nil {
		t.Fatal(err)
	}
	if n, _ := fs2.Len(); n != 4 {
		t.Fatalf("reopened store has %d diffs", n)
	}
	if fs2.Dir() != dir {
		t.Fatal("dir accessor wrong")
	}
}

func TestFileStoreContiguity(t *testing.T) {
	fs, err := NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.Append(storeDiff(2, 1)); err == nil {
		t.Fatal("non-contiguous append accepted")
	}
	if err := fs.Append(storeDiff(0, 1)); err != nil {
		t.Fatal(err)
	}
	if err := fs.Append(storeDiff(0, 1)); err == nil {
		t.Fatal("duplicate append accepted")
	}
}

func TestFileStoreEmptyLoad(t *testing.T) {
	fs, err := NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Load(); err == nil {
		t.Fatal("empty store loaded")
	}
}

func TestFileStoreIgnoresStrayFiles(t *testing.T) {
	dir := t.TempDir()
	fs, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "README.txt"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "ckpt-junk.tmp"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := fs.Append(storeDiff(0, 5)); err != nil {
		t.Fatal(err)
	}
	if n, _ := fs.Len(); n != 1 {
		t.Fatalf("stray files confused Len: %d", n)
	}
}

func TestFileStoreCorruptDiff(t *testing.T) {
	dir := t.TempDir()
	fs, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.Append(storeDiff(0, 1)); err != nil {
		t.Fatal(err)
	}
	files, _ := fs.Files()
	if err := os.WriteFile(files[0], []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Load(); err == nil {
		t.Fatal("corrupt diff loaded")
	}
}

func TestFileStoreWriteRecord(t *testing.T) {
	rec := NewRecord()
	for ck := 0; ck < 2; ck++ {
		if err := rec.Append(storeDiff(ck, byte(ck))); err != nil {
			t.Fatal(err)
		}
	}
	fs, err := NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteRecord(rec); err != nil {
		t.Fatal(err)
	}
	back, err := fs.Load()
	if err != nil || back.Len() != 2 {
		t.Fatalf("write-record round trip failed: %v", err)
	}
	if err := fs.WriteRecord(rec); err == nil {
		t.Fatal("write into non-empty store accepted")
	}
}
