package checkpoint

import (
	"bytes"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func storeDiff(ck int, tag byte) *Diff {
	data := bytes.Repeat([]byte{tag}, 100)
	return &Diff{Method: MethodFull, CkptID: uint32(ck), DataLen: 100, ChunkSize: 16, Data: data}
}

func TestFileStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	fs, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := fs.Len(); n != 0 {
		t.Fatalf("fresh store has %d diffs", n)
	}
	for ck := 0; ck < 3; ck++ {
		if err := fs.Append(storeDiff(ck, byte(ck+1))); err != nil {
			t.Fatal(err)
		}
	}
	if n, _ := fs.Len(); n != 3 {
		t.Fatalf("store has %d diffs, want 3", n)
	}
	files, err := fs.Files()
	if err != nil || len(files) != 3 {
		t.Fatalf("files: %v %v", files, err)
	}
	rec, err := fs.Load()
	if err != nil {
		t.Fatal(err)
	}
	for ck := 0; ck < 3; ck++ {
		got, err := rec.Restore(ck)
		if err != nil {
			t.Fatal(err)
		}
		if got[0] != byte(ck+1) {
			t.Fatalf("restore %d wrong content", ck)
		}
	}
	// Reopen and append more.
	fs2, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := fs2.Append(storeDiff(3, 9)); err != nil {
		t.Fatal(err)
	}
	if n, _ := fs2.Len(); n != 4 {
		t.Fatalf("reopened store has %d diffs", n)
	}
	if fs2.Dir() != dir {
		t.Fatal("dir accessor wrong")
	}
}

func TestFileStoreContiguity(t *testing.T) {
	fs, err := NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.Append(storeDiff(2, 1)); err == nil {
		t.Fatal("non-contiguous append accepted")
	}
	if err := fs.Append(storeDiff(0, 1)); err != nil {
		t.Fatal(err)
	}
	if err := fs.Append(storeDiff(0, 1)); err == nil {
		t.Fatal("duplicate append accepted")
	}
}

func TestFileStoreEmptyLoad(t *testing.T) {
	fs, err := NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Load(); err == nil {
		t.Fatal("empty store loaded")
	}
}

func TestFileStoreIgnoresStrayFiles(t *testing.T) {
	dir := t.TempDir()
	fs, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "README.txt"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "ckpt-junk.tmp"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := fs.Append(storeDiff(0, 5)); err != nil {
		t.Fatal(err)
	}
	if n, _ := fs.Len(); n != 1 {
		t.Fatalf("stray files confused Len: %d", n)
	}
}

func TestFileStoreCorruptDiff(t *testing.T) {
	dir := t.TempDir()
	fs, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.Append(storeDiff(0, 1)); err != nil {
		t.Fatal(err)
	}
	files, _ := fs.Files()
	if err := os.WriteFile(files[0], []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Load(); err == nil {
		t.Fatal("corrupt diff loaded")
	}
}

func TestFileStoreWriteRecord(t *testing.T) {
	rec := NewRecord()
	for ck := 0; ck < 2; ck++ {
		if err := rec.Append(storeDiff(ck, byte(ck))); err != nil {
			t.Fatal(err)
		}
	}
	fs, err := NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteRecord(rec); err != nil {
		t.Fatal(err)
	}
	back, err := fs.Load()
	if err != nil || back.Len() != 2 {
		t.Fatalf("write-record round trip failed: %v", err)
	}
	if err := fs.WriteRecord(rec); err == nil {
		t.Fatal("write into non-empty store accepted")
	}
}

func TestFileStoreSweepsStaleTempFiles(t *testing.T) {
	dir := t.TempDir()
	// Simulate a crash between CreateTemp and Rename: a stale tmp file
	// exists before the store is (re)opened.
	stale := filepath.Join(dir, "ckpt-123456789.tmp")
	if err := os.WriteFile(stale, []byte("half-written diff"), 0o644); err != nil {
		t.Fatal(err)
	}
	// A non-tmp stray and a published diff must survive the sweep.
	keep := filepath.Join(dir, "NOTES.txt")
	if err := os.WriteFile(keep, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	fs, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Fatalf("stale temp file not swept: %v", err)
	}
	if _, err := os.Stat(keep); err != nil {
		t.Fatalf("sweep removed unrelated file: %v", err)
	}
	if err := fs.Append(storeDiff(0, 1)); err != nil {
		t.Fatal(err)
	}
	// Reopen with a fresh stale tmp next to a real diff: only the tmp
	// goes, the lineage stays intact.
	if err := os.WriteFile(stale, []byte("again"), 0o644); err != nil {
		t.Fatal(err)
	}
	fs2, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Fatal("stale temp file survived reopen")
	}
	if n, _ := fs2.Len(); n != 1 {
		t.Fatalf("sweep damaged lineage: len %d", n)
	}
}

func TestFileStoreConcurrentAppendOneWinner(t *testing.T) {
	fs, err := NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// Two goroutines race to append the same next id. Exactly one may
	// win; the loser must see a contiguity error, and exactly one file
	// must exist afterwards. The ckptd server relies on this.
	const racers = 8
	errs := make(chan error, racers)
	var start sync.WaitGroup
	start.Add(1)
	for g := 0; g < racers; g++ {
		tag := byte(g + 1)
		go func() {
			start.Wait()
			errs <- fs.Append(storeDiff(0, tag))
		}()
	}
	start.Done()
	var wins, losses int
	for g := 0; g < racers; g++ {
		if err := <-errs; err == nil {
			wins++
		} else {
			losses++
		}
	}
	if wins != 1 || losses != racers-1 {
		t.Fatalf("got %d winners, %d losers; want exactly 1 winner", wins, losses)
	}
	if n, _ := fs.Len(); n != 1 {
		t.Fatalf("store holds %d diffs after race, want 1", n)
	}
	files, _ := fs.Files()
	if len(files) != 1 {
		t.Fatalf("store holds %d files after race, want 1", len(files))
	}
}

func TestFileStoreDiffBytes(t *testing.T) {
	fs, err := NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	d := storeDiff(0, 7)
	var want bytes.Buffer
	if err := d.Encode(&want); err != nil {
		t.Fatal(err)
	}
	if err := fs.Append(d); err != nil {
		t.Fatal(err)
	}
	got, err := fs.DiffBytes(0)
	if err != nil || !bytes.Equal(got, want.Bytes()) {
		t.Fatalf("DiffBytes mismatch: %d vs %d bytes, err %v", len(got), want.Len(), err)
	}
	if _, err := fs.DiffBytes(1); err == nil {
		t.Fatal("out-of-range DiffBytes accepted")
	}
	if _, err := fs.DiffBytes(-1); err == nil {
		t.Fatal("negative DiffBytes accepted")
	}
	total, err := fs.TotalBytes()
	if err != nil || total != int64(want.Len()) {
		t.Fatalf("TotalBytes %d, want %d (err %v)", total, want.Len(), err)
	}
}
