package checkpoint

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func storeDiff(ck int, tag byte) *Diff {
	data := bytes.Repeat([]byte{tag}, 100)
	return &Diff{Method: MethodFull, CkptID: uint32(ck), DataLen: 100, ChunkSize: 16, Data: data}
}

func TestFileStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	fs, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := fs.Len(); n != 0 {
		t.Fatalf("fresh store has %d diffs", n)
	}
	for ck := 0; ck < 3; ck++ {
		if err := fs.Append(storeDiff(ck, byte(ck+1))); err != nil {
			t.Fatal(err)
		}
	}
	if n, _ := fs.Len(); n != 3 {
		t.Fatalf("store has %d diffs, want 3", n)
	}
	files, err := fs.Files()
	if err != nil || len(files) != 3 {
		t.Fatalf("files: %v %v", files, err)
	}
	rec, err := fs.Load()
	if err != nil {
		t.Fatal(err)
	}
	for ck := 0; ck < 3; ck++ {
		got, err := rec.Restore(ck)
		if err != nil {
			t.Fatal(err)
		}
		if got[0] != byte(ck+1) {
			t.Fatalf("restore %d wrong content", ck)
		}
	}
	// Reopen and append more.
	fs2, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := fs2.Append(storeDiff(3, 9)); err != nil {
		t.Fatal(err)
	}
	if n, _ := fs2.Len(); n != 4 {
		t.Fatalf("reopened store has %d diffs", n)
	}
	if fs2.Dir() != dir {
		t.Fatal("dir accessor wrong")
	}
}

func TestFileStoreContiguity(t *testing.T) {
	fs, err := NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.Append(storeDiff(2, 1)); err == nil {
		t.Fatal("non-contiguous append accepted")
	}
	if err := fs.Append(storeDiff(0, 1)); err != nil {
		t.Fatal(err)
	}
	if err := fs.Append(storeDiff(0, 1)); err == nil {
		t.Fatal("duplicate append accepted")
	}
}

func TestFileStoreEmptyLoad(t *testing.T) {
	fs, err := NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Load(); err == nil {
		t.Fatal("empty store loaded")
	}
}

func TestFileStoreIgnoresStrayFiles(t *testing.T) {
	dir := t.TempDir()
	fs, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "README.txt"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "ckpt-junk.tmp"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := fs.Append(storeDiff(0, 5)); err != nil {
		t.Fatal(err)
	}
	if n, _ := fs.Len(); n != 1 {
		t.Fatalf("stray files confused Len: %d", n)
	}
}

func TestFileStoreCorruptDiff(t *testing.T) {
	dir := t.TempDir()
	fs, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.Append(storeDiff(0, 1)); err != nil {
		t.Fatal(err)
	}
	files, _ := fs.Files()
	if err := os.WriteFile(files[0], []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Load(); err == nil {
		t.Fatal("corrupt diff loaded")
	}
}

// TestFileStoreRenameCrashDurability drives the commit protocol
// through injected rename-time crashes: the temp file must be fsynced
// before every publish, a crash before the rename must lose only the
// in-flight diff (and leave a temp file for reopen to sweep), and a
// crash after the rename must lose nothing.
func TestFileStoreRenameCrashDurability(t *testing.T) {
	dir := t.TempDir()
	fs, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}

	var syncs int
	var crashBefore, crashAfter bool
	fs.SetIOHooks(&IOHooks{
		BeforeSync: func(string) error { syncs++; return nil },
		BeforeRename: func(tmp, final string) error {
			if crashBefore {
				return ErrSimulatedCrash
			}
			return nil
		},
		AfterRename: func(final string) error {
			if crashAfter {
				return ErrSimulatedCrash
			}
			return nil
		},
	})

	for ck := 0; ck < 2; ck++ {
		if err := fs.Append(storeDiff(ck, byte(ck+1))); err != nil {
			t.Fatal(err)
		}
	}
	if syncs != 2 {
		t.Fatalf("%d temp-file fsyncs for 2 appends", syncs)
	}

	// Crash after the fsync but before the publishing rename: the diff
	// is lost, its temp file survives for reopen-recovery to sweep.
	crashBefore = true
	if err := fs.Append(storeDiff(2, 3)); !errorsIsSimulatedCrash(err) {
		t.Fatalf("crash-before-rename append: %v", err)
	}
	crashBefore = false
	if n, _ := fs.Len(); n != 2 {
		t.Fatalf("store advanced through a pre-rename crash: Len %d", n)
	}
	tmps, _ := filepath.Glob(filepath.Join(dir, "*.tmp"))
	if len(tmps) != 1 {
		t.Fatalf("expected 1 orphaned temp file, found %v", tmps)
	}

	// Reopen: the orphan is swept and the same id appends cleanly.
	fs2, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if tmps, _ := filepath.Glob(filepath.Join(dir, "*.tmp")); len(tmps) != 0 {
		t.Fatalf("reopen left temp files: %v", tmps)
	}
	if err := fs2.Append(storeDiff(2, 3)); err != nil {
		t.Fatal(err)
	}

	// Crash between the rename and the directory fsync: the diff was
	// published, so after "reboot" it must be present and verified.
	fs2.SetIOHooks(&IOHooks{AfterRename: func(string) error { return ErrSimulatedCrash }})
	if err := fs2.Append(storeDiff(3, 4)); !errorsIsSimulatedCrash(err) {
		t.Fatalf("crash-after-rename append: %v", err)
	}
	fs3, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := fs3.Len(); n != 4 {
		t.Fatalf("post-rename crash lost the published diff: Len %d", n)
	}
	rec, err := fs3.Load()
	if err != nil {
		t.Fatal(err)
	}
	for ck := 0; ck < 4; ck++ {
		got, err := rec.Restore(ck)
		if err != nil {
			t.Fatal(err)
		}
		if got[0] != byte(ck+1) {
			t.Fatalf("restore %d wrong content after crashes", ck)
		}
	}
}

func errorsIsSimulatedCrash(err error) bool {
	return err != nil && errors.Is(err, ErrSimulatedCrash)
}

func TestFileStoreWriteRecord(t *testing.T) {
	rec := NewRecord()
	for ck := 0; ck < 2; ck++ {
		if err := rec.Append(storeDiff(ck, byte(ck))); err != nil {
			t.Fatal(err)
		}
	}
	fs, err := NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteRecord(rec); err != nil {
		t.Fatal(err)
	}
	back, err := fs.Load()
	if err != nil || back.Len() != 2 {
		t.Fatalf("write-record round trip failed: %v", err)
	}
	if err := fs.WriteRecord(rec); err == nil {
		t.Fatal("write into non-empty store accepted")
	}
}

func TestFileStoreSweepsStaleTempFiles(t *testing.T) {
	dir := t.TempDir()
	// Simulate a crash between CreateTemp and Rename: a stale tmp file
	// exists before the store is (re)opened.
	stale := filepath.Join(dir, "ckpt-123456789.tmp")
	if err := os.WriteFile(stale, []byte("half-written diff"), 0o644); err != nil {
		t.Fatal(err)
	}
	// A non-tmp stray and a published diff must survive the sweep.
	keep := filepath.Join(dir, "NOTES.txt")
	if err := os.WriteFile(keep, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	fs, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Fatalf("stale temp file not swept: %v", err)
	}
	if _, err := os.Stat(keep); err != nil {
		t.Fatalf("sweep removed unrelated file: %v", err)
	}
	if err := fs.Append(storeDiff(0, 1)); err != nil {
		t.Fatal(err)
	}
	// Reopen with a fresh stale tmp next to a real diff: only the tmp
	// goes, the lineage stays intact.
	if err := os.WriteFile(stale, []byte("again"), 0o644); err != nil {
		t.Fatal(err)
	}
	fs2, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Fatal("stale temp file survived reopen")
	}
	if n, _ := fs2.Len(); n != 1 {
		t.Fatalf("sweep damaged lineage: len %d", n)
	}
}

func TestFileStoreConcurrentAppendOneWinner(t *testing.T) {
	fs, err := NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// Two goroutines race to append the same next id. Exactly one may
	// win; the loser must see a contiguity error, and exactly one file
	// must exist afterwards. The ckptd server relies on this.
	const racers = 8
	errs := make(chan error, racers)
	var start sync.WaitGroup
	start.Add(1)
	for g := 0; g < racers; g++ {
		tag := byte(g + 1)
		go func() {
			start.Wait()
			errs <- fs.Append(storeDiff(0, tag))
		}()
	}
	start.Done()
	var wins, losses int
	for g := 0; g < racers; g++ {
		if err := <-errs; err == nil {
			wins++
		} else {
			losses++
		}
	}
	if wins != 1 || losses != racers-1 {
		t.Fatalf("got %d winners, %d losers; want exactly 1 winner", wins, losses)
	}
	if n, _ := fs.Len(); n != 1 {
		t.Fatalf("store holds %d diffs after race, want 1", n)
	}
	files, _ := fs.Files()
	if len(files) != 1 {
		t.Fatalf("store holds %d files after race, want 1", len(files))
	}
}

func TestFileStoreDiffBytes(t *testing.T) {
	fs, err := NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	d := storeDiff(0, 7)
	var want bytes.Buffer
	if err := d.Encode(&want); err != nil {
		t.Fatal(err)
	}
	if err := fs.Append(d); err != nil {
		t.Fatal(err)
	}
	got, err := fs.DiffBytes(0)
	if err != nil || !bytes.Equal(got, want.Bytes()) {
		t.Fatalf("DiffBytes mismatch: %d vs %d bytes, err %v", len(got), want.Len(), err)
	}
	if _, err := fs.DiffBytes(1); err == nil {
		t.Fatal("out-of-range DiffBytes accepted")
	}
	if _, err := fs.DiffBytes(-1); err == nil {
		t.Fatal("negative DiffBytes accepted")
	}
	// On-disk accounting includes the integrity footer; DiffBytes strips
	// it, so the two sizes differ by exactly FooterSize per diff.
	total, err := fs.TotalBytes()
	if err != nil || total != int64(want.Len()+FooterSize) {
		t.Fatalf("TotalBytes %d, want %d (err %v)", total, want.Len()+FooterSize, err)
	}
}

// commitBase commits a new manifest moving the baseline to base, with
// the next generation.
func commitBase(t *testing.T, fs *FileStore, base int) {
	t.Helper()
	m := fs.Manifest()
	m.Base = uint32(base)
	m.Generation++
	kept := m.Pins[:0]
	for _, p := range m.Pins {
		if int(p) >= base {
			kept = append(kept, p)
		}
	}
	m.Pins = kept
	if err := fs.CommitManifest(m); err != nil {
		t.Fatal(err)
	}
}

func TestFileStoreBaseline(t *testing.T) {
	dir := t.TempDir()
	fs, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	for ck := 0; ck < 5; ck++ {
		if err := fs.Append(storeDiff(ck, byte(ck+1))); err != nil {
			t.Fatal(err)
		}
	}
	commitBase(t, fs, 2)
	if fs.Base() != 2 {
		t.Fatalf("base %d, want 2", fs.Base())
	}
	if n, _ := fs.Len(); n != 5 {
		t.Fatalf("len %d, want 5 (absolute)", n)
	}
	// Files below the baseline still exist until the prune runs; the
	// restorable views must already exclude them.
	if _, err := fs.DiffBytes(1); err == nil {
		t.Fatal("DiffBytes below baseline served")
	}
	files, _ := fs.Files()
	if len(files) != 3 {
		t.Fatalf("Files lists %d entries, want 3", len(files))
	}
	removed, freed, err := fs.PruneBelowBase()
	if err != nil || removed != 2 || freed <= 0 {
		t.Fatalf("prune: removed %d, freed %d, err %v", removed, freed, err)
	}
	// Idempotent.
	if removed, _, err := fs.PruneBelowBase(); err != nil || removed != 0 {
		t.Fatalf("second prune: removed %d, err %v", removed, err)
	}
	// Load rebases to 0-based record indices: record index i holds
	// absolute checkpoint base+i.
	rec, err := fs.Load()
	if err != nil {
		t.Fatal(err)
	}
	if rec.Len() != 3 {
		t.Fatalf("record len %d, want 3", rec.Len())
	}
	for i := 0; i < 3; i++ {
		state, err := rec.Restore(i)
		if err != nil {
			t.Fatal(err)
		}
		if state[0] != byte(2+i+1) {
			t.Fatalf("record index %d restored tag %d", i, state[0])
		}
	}
	// Appends continue at the absolute length.
	if err := fs.Append(storeDiff(5, 6)); err != nil {
		t.Fatal(err)
	}
	// The exact cached size equals the bytes on disk.
	var disk int64
	files, _ = fs.Files()
	for _, f := range files {
		st, err := os.Stat(f)
		if err != nil {
			t.Fatal(err)
		}
		disk += st.Size()
	}
	if total, _ := fs.TotalBytes(); total != disk {
		t.Fatalf("cached TotalBytes %d, on-disk %d", total, disk)
	}
}

func TestFileStoreRecoversInterruptedPrune(t *testing.T) {
	dir := t.TempDir()
	fs, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	for ck := 0; ck < 4; ck++ {
		if err := fs.Append(storeDiff(ck, byte(ck+1))); err != nil {
			t.Fatal(err)
		}
	}
	// Simulate a crash after the manifest commit but before the prune:
	// commit without pruning, then reopen.
	commitBase(t, fs, 2)
	if _, err := os.Stat(fs.diffPath(0)); err != nil {
		t.Fatalf("precondition: pruned file should still exist: %v", err)
	}
	fs2, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	for ck := 0; ck < 2; ck++ {
		if _, err := os.Stat(fs2.diffPath(ck)); !os.IsNotExist(err) {
			t.Fatalf("reopen did not complete the prune of diff %d: %v", ck, err)
		}
	}
	if fs2.Base() != 2 {
		t.Fatalf("reopened base %d, want 2", fs2.Base())
	}
	if n, _ := fs2.Len(); n != 4 {
		t.Fatalf("reopened len %d, want 4", n)
	}
	if _, err := fs2.Load(); err != nil {
		t.Fatalf("reopened store does not load: %v", err)
	}
}

func TestFileStoreAppendRejectsPrunedReference(t *testing.T) {
	fs, err := NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for ck := 0; ck < 3; ck++ {
		if err := fs.Append(storeDiff(ck, 1)); err != nil {
			t.Fatal(err)
		}
	}
	commitBase(t, fs, 2)
	// A diff whose shifted duplicate references checkpoint 1 (< base 2)
	// would be unrestorable; the store must refuse it.
	bad := &Diff{Method: MethodTree, CkptID: 3, DataLen: 100, ChunkSize: 16,
		FirstOcur: []uint32{6}, ShiftDupl: []ShiftRegion{{Node: 7, SrcNode: 6, SrcCkpt: 1}},
		Data: bytes.Repeat([]byte{9}, 100)}
	if err := fs.Append(bad); err == nil {
		t.Fatal("append referencing pruned checkpoint accepted")
	}
	ok := &Diff{Method: MethodTree, CkptID: 3, DataLen: 100, ChunkSize: 16,
		FirstOcur: []uint32{6}, ShiftDupl: []ShiftRegion{{Node: 7, SrcNode: 6, SrcCkpt: 2}},
		Data: bytes.Repeat([]byte{9}, 100)}
	if err := fs.Append(ok); err != nil {
		t.Fatal(err)
	}
}

func TestFileStoreCommitManifestValidation(t *testing.T) {
	fs, err := NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for ck := 0; ck < 3; ck++ {
		if err := fs.Append(storeDiff(ck, 1)); err != nil {
			t.Fatal(err)
		}
	}
	commitBase(t, fs, 1)
	cases := []struct {
		name string
		m    Manifest
	}{
		{"backward baseline", Manifest{Base: 0, Generation: 99}},
		{"baseline with no diff", Manifest{Base: 3, Generation: 99}},
		{"stale generation", Manifest{Base: 2, Generation: 1}},
		{"pin out of range", Manifest{Base: 2, Generation: 99, Pins: []uint32{7}}},
	}
	for _, tc := range cases {
		if err := fs.CommitManifest(tc.m); err == nil {
			t.Errorf("%s: committed", tc.name)
		}
	}
	// Validation failures must not have moved the baseline.
	if fs.Base() != 1 {
		t.Fatalf("failed commits moved the baseline to %d", fs.Base())
	}
}

func TestFileStoreReplaceDiff(t *testing.T) {
	fs, err := NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for ck := 0; ck < 2; ck++ {
		if err := fs.Append(storeDiff(ck, 1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := fs.ReplaceDiff(2, storeDiff(2, 9)); err == nil {
		t.Fatal("replace outside range accepted")
	}
	if err := fs.ReplaceDiff(1, storeDiff(0, 9)); err == nil {
		t.Fatal("replace with mismatched id accepted")
	}
	if err := fs.ReplaceDiff(1, storeDiff(1, 9)); err != nil {
		t.Fatal(err)
	}
	b, err := fs.DiffBytes(1)
	if err != nil {
		t.Fatal(err)
	}
	d, err := Decode(bytes.NewReader(b))
	if err != nil || d.Data[0] != 9 {
		t.Fatalf("replacement not visible: %v", err)
	}
	// Cached size tracks the replacement exactly.
	var disk int64
	files, _ := fs.Files()
	for _, f := range files {
		st, err := os.Stat(f)
		if err != nil {
			t.Fatal(err)
		}
		disk += st.Size()
	}
	if total, _ := fs.TotalBytes(); total != disk {
		t.Fatalf("cached TotalBytes %d, on-disk %d", total, disk)
	}
}

// BenchmarkFileStoreLen measures the O(1) cached Len/TotalBytes path;
// before the cache these were a full directory scan per call
// (ReadDir + per-entry Stat), so the benchmark guards the satellite
// optimization against regressing back to I/O.
func BenchmarkFileStoreLen(b *testing.B) {
	fs, err := NewFileStore(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	for ck := 0; ck < 64; ck++ {
		data := bytes.Repeat([]byte{byte(ck)}, 100)
		d := &Diff{Method: MethodFull, CkptID: uint32(ck), DataLen: 100, ChunkSize: 16, Data: data}
		if err := fs.Append(d); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fs.Len(); err != nil {
			b.Fatal(err)
		}
		if _, err := fs.TotalBytes(); err != nil {
			b.Fatal(err)
		}
	}
}
