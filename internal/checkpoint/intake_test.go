package checkpoint

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func batchOf(start, n int) []*Diff {
	ds := make([]*Diff, n)
	for i := range ds {
		ds[i] = storeDiff(start+i, byte(start+i+1))
	}
	return ds
}

// checkRestores loads the store and byte-checks every diff's tag.
func checkRestores(t *testing.T, fs *FileStore, n int) {
	t.Helper()
	rec, err := fs.Load()
	if err != nil {
		t.Fatal(err)
	}
	for ck := 0; ck < n; ck++ {
		got, err := rec.Restore(ck)
		if err != nil {
			t.Fatalf("restore %d: %v", ck, err)
		}
		if got[0] != byte(ck+1) {
			t.Fatalf("restore %d: content %d, want %d", ck, got[0], ck+1)
		}
	}
}

// TestAppendBatchRoundTrip commits a batch through the intake log and
// reads it back: Len reflects the committed tail immediately, and the
// read path (which drains the tail) restores every diff.
func TestAppendBatchRoundTrip(t *testing.T) {
	dir := t.TempDir()
	fs, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	appended, err := fs.AppendBatch(batchOf(0, 5))
	if err != nil || appended != 5 {
		t.Fatalf("AppendBatch = %d, %v", appended, err)
	}
	if n, _ := fs.Len(); n != 5 {
		t.Fatalf("Len = %d after batch, want 5", n)
	}
	// The batch is committed to the log, not yet to per-diff files.
	if _, err := os.Stat(filepath.Join(dir, intakeLogName)); err != nil {
		t.Fatalf("intake log missing after batch: %v", err)
	}
	checkRestores(t, fs, 5)
	// The read drained the tail: files exist, the log is empty.
	files, err := fs.Files()
	if err != nil || len(files) != 5 {
		t.Fatalf("files after drain: %v %v", files, err)
	}
	if fi, err := os.Stat(filepath.Join(dir, intakeLogName)); err == nil && fi.Size() != 0 {
		t.Fatalf("intake log still holds %d bytes after drain", fi.Size())
	}
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, intakeLogName)); !os.IsNotExist(err) {
		t.Fatalf("intake log not removed by Close: %v", err)
	}
}

// TestAppendBatchCrashReplay abandons a store right after AppendBatch
// — tail in memory, containers only in the intake log — and reopens
// the directory. Recovery must replay the log and recover every
// committed diff.
func TestAppendBatchCrashReplay(t *testing.T) {
	dir := t.TempDir()
	fs, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.Append(storeDiff(0, 1)); err != nil {
		t.Fatal(err)
	}
	if n, err := fs.AppendBatch(batchOf(1, 4)); err != nil || n != 4 {
		t.Fatalf("AppendBatch = %d, %v", n, err)
	}
	// No Close: simulate the process dying with the tail unmaterialized.

	fs2, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer fs2.Close()
	if n, _ := fs2.Len(); n != 5 {
		t.Fatalf("reopened Len = %d, want 5", n)
	}
	checkRestores(t, fs2, 5)
	if _, err := os.Stat(filepath.Join(dir, intakeLogName)); !os.IsNotExist(err) {
		t.Fatalf("intake log survived replay: %v", err)
	}
	// The lineage keeps growing normally after recovery.
	if err := fs2.Append(storeDiff(5, 6)); err != nil {
		t.Fatal(err)
	}
	checkRestores(t, fs2, 6)
}

// TestAppendBatchTornLogTail truncates the intake log mid-record —
// the bytes a torn write would leave — and reopens. The valid prefix
// must be recovered and the torn record dropped, exactly as if its
// commit never completed.
func TestAppendBatchTornLogTail(t *testing.T) {
	dir := t.TempDir()
	fs, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if n, err := fs.AppendBatch(batchOf(0, 3)); err != nil || n != 3 {
		t.Fatalf("AppendBatch = %d, %v", n, err)
	}
	// Abandon fs; tear the last record's container in half.
	logPath := filepath.Join(dir, intakeLogName)
	raw, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(logPath, raw[:len(raw)-60], 0o600); err != nil {
		t.Fatal(err)
	}

	fs2, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer fs2.Close()
	if n, _ := fs2.Len(); n != 2 {
		t.Fatalf("reopened Len = %d, want 2 (torn third record dropped)", n)
	}
	checkRestores(t, fs2, 2)
}

// TestAppendBatchCorruptLogRecord flips a byte inside the SECOND of
// three log records: recovery must keep record one, stop at the CRC
// mismatch, and drop the rest of the log — never materialize bytes
// that fail their frame checksum.
func TestAppendBatchCorruptLogRecord(t *testing.T) {
	dir := t.TempDir()
	fs, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	ds := batchOf(0, 3)
	if n, err := fs.AppendBatch(ds); err != nil || n != 3 {
		t.Fatalf("AppendBatch = %d, %v", n, err)
	}
	logPath := filepath.Join(dir, intakeLogName)
	raw, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	// Record layout: 12-byte header + container. Corrupt a payload
	// byte of record two.
	var buf bytes.Buffer
	if err := ds[0].Encode(&buf); err != nil {
		t.Fatal(err)
	}
	rec2 := intakeRecHeader + buf.Len() + intakeRecHeader + 10
	raw[rec2] ^= 0xff
	if err := os.WriteFile(logPath, raw, 0o600); err != nil {
		t.Fatal(err)
	}

	fs2, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer fs2.Close()
	if n, _ := fs2.Len(); n != 1 {
		t.Fatalf("reopened Len = %d, want 1 (corrupt second record ends prefix)", n)
	}
	checkRestores(t, fs2, 1)
}

// TestAppendBatchContiguity rejects a batch that does not start at
// the store length and a batch referencing below the baseline, both
// before anything is committed.
func TestAppendBatchContiguity(t *testing.T) {
	fs, err := NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	if _, err := fs.AppendBatch(batchOf(1, 2)); err == nil {
		t.Fatal("gapped batch accepted")
	}
	if n, _ := fs.Len(); n != 0 {
		t.Fatal("rejected batch changed the store length")
	}
	if n, err := fs.AppendBatch(batchOf(0, 2)); err != nil || n != 2 {
		t.Fatalf("AppendBatch = %d, %v", n, err)
	}
	// A second batch continues from the committed (unmaterialized) tail.
	if n, err := fs.AppendBatch(batchOf(2, 2)); err != nil || n != 2 {
		t.Fatalf("second AppendBatch = %d, %v", n, err)
	}
	checkRestores(t, fs, 4)
}

// TestAppendBatchMixedWithAppend interleaves batched and single
// appends: Append drains the pending tail first, so the on-disk run
// stays contiguous in every order.
func TestAppendBatchMixedWithAppend(t *testing.T) {
	fs, err := NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	if n, err := fs.AppendBatch(batchOf(0, 2)); err != nil || n != 2 {
		t.Fatalf("AppendBatch = %d, %v", n, err)
	}
	if err := fs.Append(storeDiff(2, 3)); err != nil {
		t.Fatal(err)
	}
	if n, err := fs.AppendBatch(batchOf(3, 2)); err != nil || n != 2 {
		t.Fatalf("AppendBatch = %d, %v", n, err)
	}
	checkRestores(t, fs, 5)
}
