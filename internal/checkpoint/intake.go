package checkpoint

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
)

// Write-behind intake: the group-commit path of the FileStore.
//
// AppendBatch makes a run of diffs durable with ONE fsync by appending
// their encoded containers to a per-lineage intake log (`intake.log`)
// instead of publishing one file per diff. The containers stay in
// memory (the tail) and are materialized into the canonical
// `ckpt-NNNNNN.gckp` files off the commit path: when the tail outgrows
// its caps, when any operation needs the file-level view (reads,
// compaction, scrub), or on reopen after a crash, which replays the
// log. Readers therefore never observe the deferral — every path that
// touches diff files drains the tail first.
//
// This is the storage half of the v4 streaming push: a request/response
// peer forces a durability point per diff because each ack must be
// answered before the next request exists, while a windowed stream
// hands the store whole batches and the log turns N file commits into
// one sequential append. It is also the paper's asynchronous-runtime
// argument in miniature — overlap and batching, not per-operation
// speed, set end-to-end throughput.
//
// Crash contract: a batch is durable when AppendBatch returns (block
// payloads and their journal records first, then the log record, each
// fsynced). Recovery materializes the log's valid prefix — records are
// CRC-framed, so a torn tail write is detected and discarded, which
// only drops diffs whose commit never completed. Re-materializing a
// record whose file already exists (crash between materialize and log
// truncate) rewrites identical bytes over it, taking no new block
// references, so replay is idempotent.

// intakeLogName is the per-lineage write-behind log file. The name
// does not parse as a diff file or a temp file, so every directory
// scan (rescan, sweep, prune, quarantine) ignores it.
const intakeLogName = "intake.log"

// Intake log record framing, little-endian like the diff format:
// u32 checkpoint id, u32 container length, u32 CRC32C(container),
// then the container bytes (pre-footer canonical or block-mapped
// encoding — exactly what materialization hands to writeFile).
const intakeRecHeader = 12

// Tail caps: a materialization is forced once the in-memory tail
// holds this many containers or bytes. Bytes is the real memory
// bound — containers of block-mapped diffs are just prefix+refs, so
// 32 MiB of tail covers tens of thousands of diffs — while the count
// cap only bounds the latency spike of a single inline drain. Keeping
// the count cap high matters: a drain inside AppendBatch lands on the
// streaming ack path, and the whole point of the log is that file
// materialization does not.
const (
	tailMaxCount = 8192
	tailMaxBytes = 32 << 20
)

// tailEntry is one committed-but-unmaterialized diff.
type tailEntry struct {
	ck        int
	container []byte
}

func (fs *FileStore) intakePath() string {
	return filepath.Join(fs.dir, intakeLogName)
}

// appendIntakeLocked appends one record per container to the intake
// log and fsyncs once. The first append also fsyncs the directory so
// the log file's own existence survives power loss.
func (fs *FileStore) appendIntakeLocked(cks []int, containers [][]byte) error {
	created := false
	if fs.wal == nil {
		f, err := os.OpenFile(fs.intakePath(), os.O_RDWR|os.O_CREATE|os.O_APPEND, 0o600)
		if err != nil {
			return fmt.Errorf("checkpoint: opening intake log: %w", err)
		}
		fs.wal = f
		created = true
	}
	var buf []byte
	for i, c := range containers {
		if len(c) > math.MaxUint32 {
			return fmt.Errorf("checkpoint: diff %d container %d bytes overflows intake record length", cks[i], len(c))
		}
		var hdr [intakeRecHeader]byte
		binary.LittleEndian.PutUint32(hdr[0:], uint32(cks[i]))
		binary.LittleEndian.PutUint32(hdr[4:], uint32(len(c)))
		binary.LittleEndian.PutUint32(hdr[8:], crc32.Checksum(c, castagnoli))
		buf = append(buf, hdr[:]...)
		buf = append(buf, c...)
	}
	if _, err := fs.wal.Write(buf); err != nil {
		return fmt.Errorf("checkpoint: appending intake log: %w", err)
	}
	if err := fs.wal.Sync(); err != nil {
		return fmt.Errorf("checkpoint: syncing intake log: %w", err)
	}
	if created {
		if err := syncDir(fs.dir); err != nil {
			return err
		}
	}
	return nil
}

// ensureMaterializedLocked drains the tail into per-checkpoint files:
// each container goes through the usual temp-file + fsync + rename
// commit (parent directory synced once at the end), then the log is
// truncated. On a mid-drain error the materialized prefix is dropped
// from the tail and the log is left intact — recovery replays it
// idempotently.
func (fs *FileStore) ensureMaterializedLocked() error {
	if len(fs.tail) == 0 {
		return nil
	}
	for len(fs.tail) > 0 {
		e := fs.tail[0]
		c := e.container
		if _, err := fs.writeFile(e.ck, func(w io.Writer) error {
			_, werr := w.Write(c)
			return werr
		}, false); err != nil {
			return fmt.Errorf("checkpoint: materializing diff %d: %w", e.ck, err)
		}
		fs.tail = fs.tail[1:]
		fs.tailBytes -= int64(len(c))
	}
	fs.tail, fs.tailBytes = nil, 0
	if err := syncDir(fs.dir); err != nil {
		return err
	}
	if err := fs.wal.Truncate(0); err != nil {
		return fmt.Errorf("checkpoint: truncating intake log: %w", err)
	}
	if err := fs.wal.Sync(); err != nil {
		return fmt.Errorf("checkpoint: syncing intake log: %w", err)
	}
	return nil
}

// replayIntakeLocked recovers a crashed write-behind tail on open:
// every valid record is materialized (records whose files already
// exist are rewritten idempotently), a CRC failure or torn record ends
// the valid prefix, and the log is removed once drained. Must run
// after rescanLocked (it needs the file-level length) and before
// pruneBelowBaseLocked.
func (fs *FileStore) replayIntakeLocked() error {
	raw, err := os.ReadFile(fs.intakePath())
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("checkpoint: reading intake log: %w", err)
	}
	wrote := false
	for len(raw) >= intakeRecHeader {
		ck := int(binary.LittleEndian.Uint32(raw[0:]))
		n := int(binary.LittleEndian.Uint32(raw[4:]))
		crc := binary.LittleEndian.Uint32(raw[8:])
		raw = raw[intakeRecHeader:]
		if n < 0 || n > len(raw) {
			break // torn tail record: the commit never completed
		}
		container := raw[:n]
		raw = raw[n:]
		if crc32.Checksum(container, castagnoli) != crc {
			break
		}
		if ck > fs.n {
			break // a gap would strand everything after it
		}
		if _, err := fs.writeFile(ck, func(w io.Writer) error {
			_, werr := w.Write(container)
			return werr
		}, false); err != nil {
			return fmt.Errorf("checkpoint: replaying intake diff %d: %w", ck, err)
		}
		if ck == fs.n {
			fs.n++
		}
		wrote = true
	}
	if wrote {
		if err := syncDir(fs.dir); err != nil {
			return err
		}
	}
	if err := os.Remove(fs.intakePath()); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("checkpoint: removing intake log: %w", err)
	}
	return nil
}

// closeIntakeLocked flushes and releases the write-behind state on
// Close: the tail is materialized, the (now empty) log removed.
func (fs *FileStore) closeIntakeLocked() error {
	if fs.wal == nil {
		return nil
	}
	if err := fs.ensureMaterializedLocked(); err != nil {
		fs.wal.Close()
		return err
	}
	err := fs.wal.Close()
	fs.wal = nil
	if rerr := os.Remove(fs.intakePath()); rerr != nil && !os.IsNotExist(rerr) && err == nil {
		err = rerr
	}
	return err
}
