package checkpoint

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
)

// FileStore persists a checkpoint lineage as a directory of diff
// files, one per checkpoint (`ckpt-000000.gckp`, `ckpt-000001.gckp`,
// ...), plus an optional lifecycle manifest (`lineage.manifest`). Files
// are written atomically (temp file + rename) so a crash mid-checkpoint
// never leaves a truncated diff; on load, the sequence is validated by
// the Record's usual geometry and ordering checks.
//
// File names carry absolute checkpoint ids and so do the diffs inside
// them: after a compaction moves the baseline to index k, the retained
// files keep their names and bytes, the manifest records Base=k, and
// Load rebases ids to the 0-based contiguous ids Record.Append
// requires. The restorable range is [Base(), Len()).
//
// Crash recovery: opening a store sweeps temp debris, then deletes any
// diff file below the manifest baseline — the tail of a compaction
// transaction that committed its manifest but crashed before finishing
// the prune (see internal/lifecycle).
//
// A FileStore is safe for concurrent use by multiple goroutines within
// one process: every method holds an internal mutex, so two goroutines
// racing to append the same next id yield exactly one winner (the loser
// gets a contiguity error instead of silently overwriting the winner's
// file). Two FileStores opened on the same directory — or two
// processes — are NOT coordinated; give each lineage a single owner,
// as the ckptd server does.
//
// This is the bottom of the paper's storage hierarchy (§2.3): what the
// asynchronous runtime eventually flushes to the parallel file system.
type FileStore struct {
	dir string

	// man, n, and size are protected by mu. They are also touched by
	// the *Locked helpers (callers hold mu) and by NewFileStore before
	// the store is shared, which is why they carry no ckptlint
	// guardedby directive — that check requires the Lock call to be in
	// the same function body.
	mu  sync.Mutex
	man Manifest
	// n is one past the highest contiguously stored checkpoint index,
	// starting from the baseline; size is the cumulative on-disk byte
	// count of diffs [man.Base, n). Both are computed once on open and
	// maintained incrementally by Append/ReplaceDiff, so Len and
	// TotalBytes are O(1) instead of a directory scan per call.
	n    int
	size int64
}

const (
	diffFileExt = ".gckp"
	tmpPrefix   = "ckpt-"
	tmpSuffix   = ".tmp"
)

// NewFileStore creates (or reopens) a lineage directory. Orphaned
// temporary files from a previous crash (created but never renamed
// into place) are swept on open, a manifest is loaded if present, and
// an interrupted compaction prune is completed (files below the
// committed baseline are deleted).
func NewFileStore(dir string) (*FileStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("checkpoint: creating store %s: %w", dir, err)
	}
	fs := &FileStore{dir: dir}
	man, err := ReadManifestFile(fs.manifestPath())
	switch {
	case err == nil:
		fs.man = *man
	case os.IsNotExist(err):
		// No manifest: a legacy / never-compacted lineage, baseline 0.
	default:
		return nil, err
	}
	if err := fs.sweepTemp(); err != nil {
		return nil, err
	}
	if _, _, err := fs.pruneBelowBaseLocked(); err != nil {
		return nil, err
	}
	if err := fs.rescanLocked(); err != nil {
		return nil, err
	}
	return fs, nil
}

// sweepTemp removes stale ckpt-*.tmp files left by a crash between
// CreateTemp and Rename.
func (fs *FileStore) sweepTemp() error {
	entries, err := os.ReadDir(fs.dir)
	if err != nil {
		return fmt.Errorf("checkpoint: sweeping store %s: %w", fs.dir, err)
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, tmpPrefix) || !strings.HasSuffix(name, tmpSuffix) {
			continue
		}
		if err := os.Remove(filepath.Join(fs.dir, name)); err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("checkpoint: removing stale temp file %s: %w", name, err)
		}
	}
	return nil
}

// Dir returns the store directory.
func (fs *FileStore) Dir() string { return fs.dir }

// diffPath returns the canonical file name of checkpoint ck.
func (fs *FileStore) diffPath(ck int) string {
	return filepath.Join(fs.dir, fmt.Sprintf("ckpt-%06d%s", ck, diffFileExt))
}

// manifestPath returns the manifest file name.
func (fs *FileStore) manifestPath() string {
	return filepath.Join(fs.dir, ManifestFileName)
}

// parseDiffName extracts the checkpoint index from a diff file name.
func parseDiffName(name string) (int, bool) {
	if !strings.HasPrefix(name, "ckpt-") || !strings.HasSuffix(name, diffFileExt) {
		return 0, false
	}
	var ck int
	if _, err := fmt.Sscanf(name, "ckpt-%06d", &ck); err != nil {
		return 0, false
	}
	return ck, true
}

// rescanLocked recomputes the cached length and byte count from the
// directory: the contiguous run of diff files starting at the
// baseline. Stray files beyond a gap are ignored, as before.
func (fs *FileStore) rescanLocked() error {
	entries, err := os.ReadDir(fs.dir)
	if err != nil {
		return fmt.Errorf("checkpoint: reading store: %w", err)
	}
	sizes := map[int]int64{}
	for _, e := range entries {
		ck, ok := parseDiffName(e.Name())
		if !ok {
			continue
		}
		info, err := e.Info()
		if err != nil {
			return fmt.Errorf("checkpoint: stat %s: %w", e.Name(), err)
		}
		sizes[ck] = info.Size()
	}
	fs.n = int(fs.man.Base)
	fs.size = 0
	for {
		sz, ok := sizes[fs.n]
		if !ok {
			break
		}
		fs.size += sz
		fs.n++
	}
	return nil
}

// Base returns the baseline index: the first restorable checkpoint.
func (fs *FileStore) Base() int {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return int(fs.man.Base)
}

// Manifest returns a copy of the current lifecycle manifest.
func (fs *FileStore) Manifest() Manifest {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.man.Clone()
}

// Len returns one past the highest stored checkpoint index. For a
// never-compacted lineage this is the diff count; after compaction the
// stored diffs span [Base(), Len()). The error return is kept for
// interface stability; the cached value cannot fail.
func (fs *FileStore) Len() (int, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.n, nil
}

// Append writes diff d as the next checkpoint file. The diff's CkptID
// must equal the current length (contiguity), and its shifted
// duplicates must not reference a checkpoint below the baseline —
// after a compaction those bytes are gone, so a stale pusher that
// still holds pre-compaction history gets a clean error instead of
// storing an unrestorable diff. Concurrent appends of the same id are
// serialized and exactly one wins.
func (fs *FileStore) Append(d *Diff) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if int(d.CkptID) != fs.n {
		return fmt.Errorf("checkpoint: store has diffs [%d,%d), cannot append id %d",
			fs.man.Base, fs.n, d.CkptID)
	}
	for _, s := range d.ShiftDupl {
		if s.SrcCkpt < fs.man.Base {
			return fmt.Errorf("checkpoint: diff %d references checkpoint %d, pruned below baseline %d",
				d.CkptID, s.SrcCkpt, fs.man.Base)
		}
	}
	if err := fs.writeDiffLocked(fs.n, d); err != nil {
		return err
	}
	fs.n++
	fs.size += d.TotalBytes()
	return nil
}

// writeDiffLocked encodes d into the file of checkpoint ck via temp
// file + rename.
func (fs *FileStore) writeDiffLocked(ck int, d *Diff) error {
	tmp, err := os.CreateTemp(fs.dir, tmpPrefix+"*"+tmpSuffix)
	if err != nil {
		return fmt.Errorf("checkpoint: temp file: %w", err)
	}
	tmpName := tmp.Name()
	if err := d.Encode(tmp); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("checkpoint: closing temp file: %w", err)
	}
	if err := os.Rename(tmpName, fs.diffPath(ck)); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("checkpoint: publishing diff %d: %w", ck, err)
	}
	return nil
}

// ReplaceDiff atomically overwrites the file of stored checkpoint ck
// with d (temp file + rename). The compaction transaction uses it to
// install the materialized baseline and to rewrite suffix diffs; every
// replacement must be state-equivalent, which internal/lifecycle
// verifies before writing anything. d must carry the absolute id ck.
func (fs *FileStore) ReplaceDiff(ck int, d *Diff) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if ck < int(fs.man.Base) || ck >= fs.n {
		return fmt.Errorf("checkpoint: replace %d outside stored range [%d,%d)", ck, fs.man.Base, fs.n)
	}
	if int(d.CkptID) != ck {
		return fmt.Errorf("checkpoint: replacement for %d carries id %d", ck, d.CkptID)
	}
	old, err := os.Stat(fs.diffPath(ck))
	if err != nil {
		return fmt.Errorf("checkpoint: stat diff %d: %w", ck, err)
	}
	if err := fs.writeDiffLocked(ck, d); err != nil {
		return err
	}
	fs.size += d.TotalBytes() - old.Size()
	return nil
}

// CommitManifest atomically publishes m as the lineage manifest — the
// commit point of a compaction transaction. The baseline may only move
// forward, must keep at least one stored diff, and every pin must lie
// in the retained range. Files below the new baseline are NOT deleted
// here; call PruneBelowBase afterwards (recovery on reopen completes
// the prune if the process dies in between).
func (fs *FileStore) CommitManifest(m Manifest) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if m.Base < fs.man.Base {
		return fmt.Errorf("checkpoint: manifest baseline %d behind committed %d", m.Base, fs.man.Base)
	}
	if int(m.Base) > fs.n || (fs.n > int(fs.man.Base) && int(m.Base) >= fs.n) {
		return fmt.Errorf("checkpoint: manifest baseline %d has no stored diff (range [%d,%d))",
			m.Base, fs.man.Base, fs.n)
	}
	if m.Generation <= fs.man.Generation {
		return fmt.Errorf("checkpoint: manifest generation %d does not advance %d",
			m.Generation, fs.man.Generation)
	}
	for _, p := range m.Pins {
		if int(p) >= fs.n {
			return fmt.Errorf("checkpoint: pin %d beyond stored range [%d,%d)", p, m.Base, fs.n)
		}
	}
	if err := WriteManifestFile(fs.manifestPath(), &m); err != nil {
		return err
	}
	fs.man = m.Clone()
	// The cached byte count covers [Base, n); rescan under the new
	// baseline (files below it still exist until PruneBelowBase runs).
	return fs.rescanLocked()
}

// PruneBelowBase deletes diff files below the committed baseline and
// returns how many files and bytes it removed. It is idempotent: the
// deletions are also performed on reopen, so a crash anywhere in the
// loop loses nothing but disk space until the next open.
func (fs *FileStore) PruneBelowBase() (int, int64, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.pruneBelowBaseLocked()
}

func (fs *FileStore) pruneBelowBaseLocked() (int, int64, error) {
	entries, err := os.ReadDir(fs.dir)
	if err != nil {
		return 0, 0, fmt.Errorf("checkpoint: reading store: %w", err)
	}
	removed, freed := 0, int64(0)
	for _, e := range entries {
		ck, ok := parseDiffName(e.Name())
		if !ok || ck >= int(fs.man.Base) {
			continue
		}
		info, err := e.Info()
		if err != nil {
			return removed, freed, fmt.Errorf("checkpoint: stat %s: %w", e.Name(), err)
		}
		if err := os.Remove(filepath.Join(fs.dir, e.Name())); err != nil && !os.IsNotExist(err) {
			return removed, freed, fmt.Errorf("checkpoint: pruning %s: %w", e.Name(), err)
		}
		removed++
		freed += info.Size()
	}
	return removed, freed, nil
}

// DiffBytes returns the raw encoded bytes of stored checkpoint ck,
// exactly as they sit on disk — the zero-copy path a network server
// uses to serve a pull without decoding.
func (fs *FileStore) DiffBytes(ck int) ([]byte, error) {
	fs.mu.Lock()
	base, length := int(fs.man.Base), fs.n
	fs.mu.Unlock()
	if ck < base || ck >= length {
		return nil, fmt.Errorf("checkpoint: diff %d out of range [%d,%d)", ck, base, length)
	}
	b, err := os.ReadFile(fs.diffPath(ck))
	if err != nil {
		return nil, fmt.Errorf("checkpoint: reading diff %d: %w", ck, err)
	}
	return b, nil
}

// TotalBytes returns the cumulative on-disk size of the stored diffs.
func (fs *FileStore) TotalBytes() (int64, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.size, nil
}

// Load reads the stored lineage [Base, Len) into a restorable Record.
// On-disk diffs carry absolute ids; Load rebases them to the 0-based
// contiguous ids the Record requires, so Record index i is absolute
// checkpoint Base()+i.
func (fs *FileStore) Load() (*Record, error) {
	fs.mu.Lock()
	base, length := int(fs.man.Base), fs.n
	fs.mu.Unlock()
	if length == base {
		return nil, fmt.Errorf("checkpoint: store %s is empty", fs.dir)
	}
	rec := NewRecord()
	for ck := base; ck < length; ck++ {
		f, err := os.Open(fs.diffPath(ck))
		if err != nil {
			return nil, fmt.Errorf("checkpoint: opening diff %d: %w", ck, err)
		}
		d, err := Decode(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("checkpoint: decoding diff %d: %w", ck, err)
		}
		if int(d.CkptID) != ck {
			return nil, fmt.Errorf("checkpoint: file %d holds diff id %d", ck, d.CkptID)
		}
		if err := d.Rebase(-int64(base)); err != nil {
			return nil, fmt.Errorf("checkpoint: diff %d: %w", ck, err)
		}
		if err := rec.Append(d); err != nil {
			return nil, err
		}
	}
	return rec, nil
}

// WriteRecord persists an in-memory record into an empty store.
func (fs *FileStore) WriteRecord(rec *Record) error {
	n, err := fs.Len()
	if err != nil {
		return err
	}
	if n != 0 {
		return fmt.Errorf("checkpoint: store %s already holds diffs up to %d", fs.dir, n)
	}
	for i := 0; i < rec.Len(); i++ {
		if err := fs.Append(rec.Diff(i)); err != nil {
			return err
		}
	}
	return nil
}

// Files lists the stored diff file names in checkpoint order.
func (fs *FileStore) Files() ([]string, error) {
	fs.mu.Lock()
	base, length := int(fs.man.Base), fs.n
	fs.mu.Unlock()
	out := make([]string, 0, length-base)
	for ck := base; ck < length; ck++ {
		out = append(out, fs.diffPath(ck))
	}
	return out, nil
}
