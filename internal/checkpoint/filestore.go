package checkpoint

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// FileStore persists a checkpoint lineage as a directory of diff
// files, one per checkpoint (`ckpt-000000.gckp`, `ckpt-000001.gckp`,
// ...). Files are written atomically (temp file + rename) so a crash
// mid-checkpoint never leaves a truncated diff; on load, the sequence
// is validated by the Record's usual geometry and ordering checks.
//
// A FileStore is safe for concurrent use by multiple goroutines within
// one process: Append holds an internal mutex across the length check
// and the rename, so two goroutines racing to append the same next id
// yield exactly one winner (the loser gets a contiguity error instead
// of silently overwriting the winner's file). Two FileStores opened on
// the same directory — or two processes — are NOT coordinated; give
// each lineage a single owner, as the ckptd server does.
//
// This is the bottom of the paper's storage hierarchy (§2.3): what the
// asynchronous runtime eventually flushes to the parallel file system.
type FileStore struct {
	dir string
	mu  sync.Mutex
}

const (
	diffFileExt = ".gckp"
	tmpPrefix   = "ckpt-"
	tmpSuffix   = ".tmp"
)

// NewFileStore creates (or reopens) a lineage directory. Orphaned
// temporary files from a previous crash (created but never renamed
// into place) are swept on open; they were never part of the lineage.
func NewFileStore(dir string) (*FileStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("checkpoint: creating store %s: %w", dir, err)
	}
	fs := &FileStore{dir: dir}
	if err := fs.sweepTemp(); err != nil {
		return nil, err
	}
	return fs, nil
}

// sweepTemp removes stale ckpt-*.tmp files left by a crash between
// CreateTemp and Rename.
func (fs *FileStore) sweepTemp() error {
	entries, err := os.ReadDir(fs.dir)
	if err != nil {
		return fmt.Errorf("checkpoint: sweeping store %s: %w", fs.dir, err)
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, tmpPrefix) || !strings.HasSuffix(name, tmpSuffix) {
			continue
		}
		if err := os.Remove(filepath.Join(fs.dir, name)); err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("checkpoint: removing stale temp file %s: %w", name, err)
		}
	}
	return nil
}

// Dir returns the store directory.
func (fs *FileStore) Dir() string { return fs.dir }

// diffPath returns the canonical file name of checkpoint ck.
func (fs *FileStore) diffPath(ck int) string {
	return filepath.Join(fs.dir, fmt.Sprintf("ckpt-%06d%s", ck, diffFileExt))
}

// Len returns the number of consecutively stored diffs (0, 1, ...,
// n-1 present).
func (fs *FileStore) Len() (int, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.lenLocked()
}

// lenLocked is Len for callers already holding fs.mu.
func (fs *FileStore) lenLocked() (int, error) {
	entries, err := os.ReadDir(fs.dir)
	if err != nil {
		return 0, fmt.Errorf("checkpoint: reading store: %w", err)
	}
	present := map[int]bool{}
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "ckpt-") || !strings.HasSuffix(name, diffFileExt) {
			continue
		}
		var ck int
		if _, err := fmt.Sscanf(name, "ckpt-%06d", &ck); err == nil {
			present[ck] = true
		}
	}
	n := 0
	for present[n] {
		n++
	}
	return n, nil
}

// Append writes diff d as the next checkpoint file. The diff's CkptID
// must equal the current length (contiguity); concurrent appends of
// the same id are serialized and exactly one wins.
func (fs *FileStore) Append(d *Diff) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	n, err := fs.lenLocked()
	if err != nil {
		return err
	}
	if int(d.CkptID) != n {
		return fmt.Errorf("checkpoint: store has %d diffs, cannot append id %d", n, d.CkptID)
	}
	tmp, err := os.CreateTemp(fs.dir, tmpPrefix+"*"+tmpSuffix)
	if err != nil {
		return fmt.Errorf("checkpoint: temp file: %w", err)
	}
	tmpName := tmp.Name()
	if err := d.Encode(tmp); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("checkpoint: closing temp file: %w", err)
	}
	if err := os.Rename(tmpName, fs.diffPath(n)); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("checkpoint: publishing diff %d: %w", n, err)
	}
	return nil
}

// DiffBytes returns the raw encoded bytes of stored checkpoint ck,
// exactly as Append wrote them — the zero-copy path a network server
// uses to serve a pull without decoding.
func (fs *FileStore) DiffBytes(ck int) ([]byte, error) {
	fs.mu.Lock()
	n, err := fs.lenLocked()
	fs.mu.Unlock()
	if err != nil {
		return nil, err
	}
	if ck < 0 || ck >= n {
		return nil, fmt.Errorf("checkpoint: diff %d out of range [0,%d)", ck, n)
	}
	b, err := os.ReadFile(fs.diffPath(ck))
	if err != nil {
		return nil, fmt.Errorf("checkpoint: reading diff %d: %w", ck, err)
	}
	return b, nil
}

// TotalBytes returns the cumulative on-disk size of the stored diffs.
func (fs *FileStore) TotalBytes() (int64, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	n, err := fs.lenLocked()
	if err != nil {
		return 0, err
	}
	var total int64
	for ck := 0; ck < n; ck++ {
		fi, err := os.Stat(fs.diffPath(ck))
		if err != nil {
			return 0, fmt.Errorf("checkpoint: stat diff %d: %w", ck, err)
		}
		total += fi.Size()
	}
	return total, nil
}

// Load reads the stored lineage into a restorable Record.
func (fs *FileStore) Load() (*Record, error) {
	n, err := fs.Len()
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, fmt.Errorf("checkpoint: store %s is empty", fs.dir)
	}
	rec := NewRecord()
	for ck := 0; ck < n; ck++ {
		f, err := os.Open(fs.diffPath(ck))
		if err != nil {
			return nil, fmt.Errorf("checkpoint: opening diff %d: %w", ck, err)
		}
		d, err := Decode(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("checkpoint: decoding diff %d: %w", ck, err)
		}
		if err := rec.Append(d); err != nil {
			return nil, err
		}
	}
	return rec, nil
}

// WriteRecord persists an in-memory record into an empty store.
func (fs *FileStore) WriteRecord(rec *Record) error {
	n, err := fs.Len()
	if err != nil {
		return err
	}
	if n != 0 {
		return fmt.Errorf("checkpoint: store %s already holds %d diffs", fs.dir, n)
	}
	for i := 0; i < rec.Len(); i++ {
		if err := fs.Append(rec.Diff(i)); err != nil {
			return err
		}
	}
	return nil
}

// Files lists the stored diff file names in checkpoint order.
func (fs *FileStore) Files() ([]string, error) {
	n, err := fs.Len()
	if err != nil {
		return nil, err
	}
	out := make([]string, 0, n)
	for ck := 0; ck < n; ck++ {
		out = append(out, fs.diffPath(ck))
	}
	sort.Strings(out)
	return out, nil
}
