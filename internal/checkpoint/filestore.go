package checkpoint

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// FileStore persists a checkpoint lineage as a directory of diff
// files, one per checkpoint (`ckpt-000000.gckp`, `ckpt-000001.gckp`,
// ...). Files are written atomically (temp file + rename) so a crash
// mid-checkpoint never leaves a truncated diff; on load, the sequence
// is validated by the Record's usual geometry and ordering checks.
//
// This is the bottom of the paper's storage hierarchy (§2.3): what the
// asynchronous runtime eventually flushes to the parallel file system.
type FileStore struct {
	dir string
}

const diffFileExt = ".gckp"

// NewFileStore creates (or reopens) a lineage directory.
func NewFileStore(dir string) (*FileStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("checkpoint: creating store %s: %w", dir, err)
	}
	return &FileStore{dir: dir}, nil
}

// Dir returns the store directory.
func (fs *FileStore) Dir() string { return fs.dir }

// diffPath returns the canonical file name of checkpoint ck.
func (fs *FileStore) diffPath(ck int) string {
	return filepath.Join(fs.dir, fmt.Sprintf("ckpt-%06d%s", ck, diffFileExt))
}

// Len returns the number of consecutively stored diffs (0, 1, ...,
// n-1 present).
func (fs *FileStore) Len() (int, error) {
	entries, err := os.ReadDir(fs.dir)
	if err != nil {
		return 0, fmt.Errorf("checkpoint: reading store: %w", err)
	}
	present := map[int]bool{}
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "ckpt-") || !strings.HasSuffix(name, diffFileExt) {
			continue
		}
		var ck int
		if _, err := fmt.Sscanf(name, "ckpt-%06d", &ck); err == nil {
			present[ck] = true
		}
	}
	n := 0
	for present[n] {
		n++
	}
	return n, nil
}

// Append writes diff d as the next checkpoint file. The diff's CkptID
// must equal the current length (contiguity).
func (fs *FileStore) Append(d *Diff) error {
	n, err := fs.Len()
	if err != nil {
		return err
	}
	if int(d.CkptID) != n {
		return fmt.Errorf("checkpoint: store has %d diffs, cannot append id %d", n, d.CkptID)
	}
	tmp, err := os.CreateTemp(fs.dir, "ckpt-*.tmp")
	if err != nil {
		return fmt.Errorf("checkpoint: temp file: %w", err)
	}
	tmpName := tmp.Name()
	if err := d.Encode(tmp); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("checkpoint: closing temp file: %w", err)
	}
	if err := os.Rename(tmpName, fs.diffPath(n)); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("checkpoint: publishing diff %d: %w", n, err)
	}
	return nil
}

// Load reads the stored lineage into a restorable Record.
func (fs *FileStore) Load() (*Record, error) {
	n, err := fs.Len()
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, fmt.Errorf("checkpoint: store %s is empty", fs.dir)
	}
	rec := NewRecord()
	for ck := 0; ck < n; ck++ {
		f, err := os.Open(fs.diffPath(ck))
		if err != nil {
			return nil, fmt.Errorf("checkpoint: opening diff %d: %w", ck, err)
		}
		d, err := Decode(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("checkpoint: decoding diff %d: %w", ck, err)
		}
		if err := rec.Append(d); err != nil {
			return nil, err
		}
	}
	return rec, nil
}

// WriteRecord persists an in-memory record into an empty store.
func (fs *FileStore) WriteRecord(rec *Record) error {
	n, err := fs.Len()
	if err != nil {
		return err
	}
	if n != 0 {
		return fmt.Errorf("checkpoint: store %s already holds %d diffs", fs.dir, n)
	}
	for i := 0; i < rec.Len(); i++ {
		if err := fs.Append(rec.Diff(i)); err != nil {
			return err
		}
	}
	return nil
}

// Files lists the stored diff file names in checkpoint order.
func (fs *FileStore) Files() ([]string, error) {
	n, err := fs.Len()
	if err != nil {
		return nil, err
	}
	out := make([]string, 0, n)
	for ck := 0; ck < n; ck++ {
		out = append(out, fs.diffPath(ck))
	}
	sort.Strings(out)
	return out, nil
}
